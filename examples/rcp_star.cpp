// RCP* (paper §2.2): three flows start 10 s apart on a 10 Mb/s bottleneck;
// each flow's end-host rate controller collects link state with TPPs,
// runs the RCP control equation locally, and writes the fair-share rate
// back into the bottleneck switch's register with a CEXEC-guarded STORE.
//
//   $ ./rcp_star
#include <cstdio>
#include <memory>
#include <vector>

#include "src/apps/rcpstar.hpp"
#include "src/core/assembler.hpp"
#include "src/core/memory_map.hpp"
#include "src/host/flow.hpp"
#include "src/host/topology.hpp"

int main() {
  using namespace tpp;

  constexpr std::uint64_t kBottleneck = 10'000'000;  // 10 Mb/s (Fig 2)
  host::Testbed tb;
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 64 * 1024;
  cfg.utilizationWindow = sim::Time::ms(50);
  buildDumbbell(tb, 3, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{kBottleneck, sim::Time::ms(1)}, cfg);

  // Control plane initializes every rate register to link capacity.
  for (std::size_t s = 0; s < tb.switchCount(); ++s) {
    for (std::size_t p = 0; p < tb.sw(s).config().ports; ++p) {
      tb.sw(s).scratchWrite(
          core::addr::RcpRateRegister,
          static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(p) / 1000), p);
    }
  }

  std::printf("Phase-1 collect TPP:\n%s\n",
              core::disassemble(apps::makeRcpCollectProgram()).c_str());

  struct Entry {
    std::unique_ptr<host::PacedFlow> flow;
    std::unique_ptr<apps::RcpStarController> controller;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < 3; ++i) {
    host::FlowSpec spec;
    spec.dstMac = tb.host(3 + i).mac();
    spec.dstIp = tb.host(3 + i).ip();
    spec.srcPort = static_cast<std::uint16_t>(21000 + i);
    spec.dstPort = spec.srcPort;
    spec.rateBps = 100e3;
    Entry e;
    e.flow = std::make_unique<host::PacedFlow>(tb.host(i), spec, i + 1);
    apps::RcpStarController::Config ccfg;
    ccfg.params.alpha = 0.5;  // Fig 2 parameters
    ccfg.params.beta = 1.0;
    ccfg.params.rttSeconds = 0.05;
    ccfg.period = sim::Time::ms(50);
    ccfg.dstMac = spec.dstMac;
    ccfg.dstIp = spec.dstIp;
    e.controller = std::make_unique<apps::RcpStarController>(tb.host(i),
                                                             *e.flow, ccfg);
    const sim::Time startAt = sim::Time::sec(static_cast<std::int64_t>(10 * i));
    e.flow->start(startAt);
    e.controller->start(startAt);
    entries.push_back(std::move(e));
  }

  tb.sim().run(sim::Time::sec(30));

  std::printf("t(s),R/C\n");
  for (const auto& [t, rate] : entries[0].controller->rateSeries().points()) {
    std::printf("%.2f,%.3f\n", t.toSeconds(),
                rate / static_cast<double>(kBottleneck));
  }
  std::printf("\nfinal rates (should be ~C/3 each):\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::printf("  flow %zu: %.2f Mb/s\n", i,
                entries[i].controller->currentRateBps() / 1e6);
  }
  return 0;
}
