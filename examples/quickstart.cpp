// Quickstart: build a three-switch network, write a TPP in assembly, send
// it as a probe, and read back per-hop state — the Fig 1 experience in
// ~60 lines.
//
//   $ ./quickstart
#include <cstdio>
#include <variant>

#include "src/core/assembler.hpp"
#include "src/host/collector.hpp"
#include "src/host/topology.hpp"

int main() {
  using namespace tpp;

  // 1. A linear network: h0 — sw0 — sw1 — sw2 — h1, 1 Gb/s links.
  host::Testbed tb;
  buildChain(tb, /*switches=*/3,
             host::LinkParams{1'000'000'000, sim::Time::us(5)});

  // 2. Write a tiny packet program, exactly as the paper does (§2.1 plus
  //    the switch id so we can label hops).
  const char* source = R"(
      # Which switch am I on, and how full is my egress queue?
      PUSH [Switch:SwitchID]
      PUSH [Queue:QueueSize]
  )";
  auto assembled = core::assemble(source);
  if (auto* err = std::get_if<core::AssemblyError>(&assembled)) {
    std::fprintf(stderr, "asm error on line %d: %s\n", err->line,
                 err->message.c_str());
    return 1;
  }
  const auto program = std::get<core::Program>(assembled);
  std::printf("assembled %zu instructions, %zu wire bytes\n",
              program.instructions.size(), program.wireBytes());

  // 3. Send it as a probe; the destination host echoes the executed TPP.
  auto& prober = tb.host(0);
  auto& target = tb.host(1);
  prober.onTppResult([&](const core::ExecutedTpp& tpp) {
    std::printf("\nprobe returned after %u hops (fault: %s)\n",
                tpp.header.hopNumber,
                std::string(core::faultName(tpp.header.faultCode)).c_str());
    const auto records = host::splitStackRecords(tpp, 2);
    std::printf("%-6s %-10s %-12s\n", "hop", "switch-id", "queue-bytes");
    for (std::size_t h = 0; h < records.size(); ++h) {
      std::printf("%-6zu %-10u %-12u\n", h, records[h][0], records[h][1]);
    }
  });
  prober.sendProbe(target.mac(), target.ip(), program);

  // 4. Run the simulation to completion.
  tb.sim().run();
  return 0;
}
