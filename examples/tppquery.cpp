// tppquery — run a TPP from stdin against a simulated network and print
// the per-hop results: the fastest way to try a query idea.
//
//   $ echo 'PUSH [Switch:SwitchID]
//           PUSH [Queue:QueueSize]
//           PUSH [Link:TX-Utilization]' | ./tppquery --switches 4 --load 60
//
// Options:
//   --switches N   chain length (default 3)
//   --load PCT     background load on the path, percent of 1 Gb/s (default 0)
//   --probes N     probes to send, 1 ms apart (default 1; >1 prints means)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <variant>

#include "src/core/assembler.hpp"
#include "src/host/collector.hpp"
#include "src/host/flow.hpp"
#include "src/host/topology.hpp"

int main(int argc, char** argv) {
  using namespace tpp;

  std::size_t switches = 3;
  double loadPct = 0;
  int probes = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--switches")) switches = std::strtoul(argv[i + 1], nullptr, 10);
    if (!std::strcmp(argv[i], "--load")) loadPct = std::strtod(argv[i + 1], nullptr);
    if (!std::strcmp(argv[i], "--probes")) probes = std::atoi(argv[i + 1]);
  }

  std::ostringstream source;
  source << std::cin.rdbuf();
  auto assembled = core::assemble(source.str());
  if (const auto* err = std::get_if<core::AssemblyError>(&assembled)) {
    std::fprintf(stderr, "tppquery: line %d: %s\n", err->line,
                 err->message.c_str());
    return 1;
  }
  const auto& program = std::get<core::Program>(assembled);
  const std::size_t perHop = program.instructions.size();
  if (perHop == 0) {
    std::fprintf(stderr, "tppquery: empty program\n");
    return 1;
  }

  host::Testbed tb;
  buildChain(tb, switches, host::LinkParams{1'000'000'000, sim::Time::us(5)});

  std::unique_ptr<host::PacedFlow> background;
  if (loadPct > 0) {
    host::FlowSpec spec;
    spec.dstMac = tb.host(1).mac();
    spec.dstIp = tb.host(1).ip();
    spec.rateBps = loadPct / 100.0 * 1e9;
    background = std::make_unique<host::PacedFlow>(tb.host(0), spec, 99);
    background->start(sim::Time::zero());
    tb.sim().run(sim::Time::ms(50));  // warm the counters
  }

  host::HopSampleAverager averager(perHop);
  std::size_t answered = 0;
  tb.host(0).onTppResult([&](const core::ExecutedTpp& tpp) {
    if (tpp.header.faultCode != core::Fault::None) {
      std::fprintf(stderr, "tppquery: fault: %s\n",
                   std::string(core::faultName(tpp.header.faultCode)).c_str());
      return;
    }
    const auto records =
        tpp.header.mode == core::AddressingMode::Hop
            ? host::splitHopRecords(tpp)
            : host::splitStackRecords(tpp, perHop,
                                      program.initialSp / core::kWordSize);
    averager.add(records);
    ++answered;
  });

  for (int i = 0; i < probes; ++i) {
    tb.sim().schedule(sim::Time::ms(i), [&] {
      tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
    });
  }
  tb.sim().run(tb.sim().now() + sim::Time::ms(probes + 10));
  if (background) background->stop();

  if (answered == 0) {
    std::fprintf(stderr, "tppquery: no probe returned\n");
    return 1;
  }

  std::printf("answered %zu/%d probes; per-hop means:\n", answered, probes);
  std::printf("%-6s", "hop");
  for (std::size_t v = 0; v < perHop; ++v) {
    char col[32];  // "value" + worst-case 20-digit size_t
    std::snprintf(col, sizeof col, "value%zu", v);
    std::printf(" %-14s", col);
  }
  std::printf("\n");
  for (std::size_t h = 0; h < averager.hopCount(); ++h) {
    std::printf("%-6zu", h);
    for (std::size_t v = 0; v < perHop; ++v) {
      std::printf(" %-14.1f", averager.mean(h, v));
    }
    std::printf("\n");
  }
  std::printf("\nprogram: %zu instructions, %zu wire bytes\n",
              program.instructions.size(), program.wireBytes());
  return 0;
}
