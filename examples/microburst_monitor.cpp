// Micro-burst detection (paper §2.1): a 8:1 incast drives an egress queue
// into sub-millisecond excursions; TPP probes sample the queue per 100 µs
// while a "management plane" poller at 100 ms sees almost nothing.
//
//   $ ./microburst_monitor
#include <cstdio>

#include "src/apps/microburst.hpp"
#include "src/host/topology.hpp"
#include "src/workload/generators.hpp"

int main() {
  using namespace tpp;

  constexpr std::size_t kSenders = 8;
  host::Testbed tb;
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 512 * 1024;
  buildStar(tb, kSenders, host::LinkParams{1'000'000'000, sim::Time::us(2)},
            cfg);
  auto& receiver = tb.host(kSenders);

  // Periodic synchronized bursts: 8 senders x 50 KB every 10 ms.
  workload::IncastBurst::Config icfg;
  icfg.dstMac = receiver.mac();
  icfg.dstIp = receiver.ip();
  icfg.burstBytes = 50'000;
  icfg.period = sim::Time::ms(10);
  std::vector<host::Host*> senders;
  for (std::size_t i = 0; i < kSenders; ++i) senders.push_back(&tb.host(i));
  workload::IncastBurst incast(senders, icfg);
  incast.start(sim::Time::ms(1));

  // The TPP monitor probes the congested path every 100 µs.
  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = receiver.mac();
  mcfg.dstIp = receiver.ip();
  mcfg.interval = sim::Time::us(100);
  apps::MicroburstMonitor monitor(tb.host(0), mcfg);
  monitor.start(sim::Time::zero());

  // Baseline: control-plane polling at a (generous) 100 ms.
  apps::ControlPlanePoller poller(tb.sw(0), kSenders, 0, sim::Time::ms(100));
  poller.start(sim::Time::zero());

  tb.sim().run(sim::Time::ms(500));
  monitor.stop();
  incast.stop();
  poller.stop();
  tb.sim().run();

  const double threshold = 100'000.0;  // bytes
  const auto viaTpp = apps::detectBursts(monitor.hopSeries(0), threshold);
  const auto viaPoll = apps::detectBursts(poller.series(), threshold);

  std::printf("incast rounds fired:            %zu\n", incast.burstsFired());
  std::printf("TPP probes sent / echoed:       %llu / %llu\n",
              static_cast<unsigned long long>(monitor.probesSent()),
              static_cast<unsigned long long>(monitor.resultsReceived()));
  std::printf("bursts seen via TPP probes:     %zu\n", viaTpp.size());
  std::printf("bursts seen via 100ms polling:  %zu\n", viaPoll.size());

  std::printf("\nfirst bursts (TPP view):\n");
  std::printf("%-12s %-12s %-12s\n", "start(ms)", "end(ms)", "peak(KB)");
  for (std::size_t i = 0; i < viaTpp.size() && i < 8; ++i) {
    std::printf("%-12.3f %-12.3f %-12.1f\n", viaTpp[i].start.toMillis(),
                viaTpp[i].end.toMillis(), viaTpp[i].peakBytes / 1e3);
  }
  return 0;
}
