# Interference fixture, task B of a write-write race: see
# race_write_write_a.tpp. Last writer silently wins — rejected by
# `tppverify --interference` with a [write-write] error naming both tasks.
.task 8
STORE [Sram:Word0], 7
