# Rejected by [write-permission]: the STORE destination is a statistic,
# which the ASIC pipeline owns — at runtime this faults ReadOnlyViolation
# on the first hop.
.reserve 1
LOAD [Queue:QueueSize], [Packet:0]
STORE [Switch:SwitchID], [Packet:0]
