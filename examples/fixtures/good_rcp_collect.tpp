# The paper's Phase-1 RCP* collect program (§2.2). Verifies clean: the
# assembler's default reserve leaves one 4-word record of stack room per
# hop for an 8-hop path.
PUSH [Switch:SwitchID]
PUSH [Link:QueueSize]
PUSH [Link:RX-Utilization]
PUSH [Link:RCP-RateRegister]
