# Rejected by [stack-growth]: 2-word hop records over the default 8-hop
# budget need 16 words; .pmem 6 holds only three records, so hop 3's
# record faults HopOverflow.
.mode hop
.perhop 2
.pmem 6
LOAD [Switch:SwitchID], [Packet:hop[0]]
LOAD [Queue:QueueSize], [Packet:hop[1]]
