# Interference fixture, tenant B of a shared sketch region: a second
# task running the same CSTORE read-modify-write increment over the
# counter words sketch_rmw_a.tpp touches. Paired with A the analyzer
# reports shared-rmw (coordinated, admitted); paired instead with
# sketch_plain_write.tpp the plain STORE destroys the compare-and-swap
# invariant and the deployment is rejected as a lost update.
.task 12
.init 0 0
.init 1 1
LOAD [Sram:Word0], [Packet:0]
ADD [Sram:Word0], [Packet:1]
CSTORE [Sram:Word0], [Packet:0], [Packet:1]
.init 2 0
.init 3 1
LOAD [Sram:Word1], [Packet:2]
ADD [Sram:Word1], [Packet:3]
CSTORE [Sram:Word1], [Packet:2], [Packet:3]
