# Per-port drop-tail telemetry: each hop records the egress queue bank's
# cumulative dropped bytes/packets alongside the switch id, so end hosts
# can localize loss without per-switch agents. Verifies clean: read-only
# counters, 3 pushed words per hop fit the default 8-hop stack budget.
PUSH [Switch:SwitchID]
PUSH [Link:DroppedBytes]
PUSH [Link:DroppedPackets]
