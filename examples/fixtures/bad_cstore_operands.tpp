# Rejected by [address-range]: CSTORE consumes two adjacent packet-memory
# words, but [Packet:1] is outside the 1-word packet memory.
.pmem 1
CSTORE [Sram:Word0], [Packet:0], [Packet:1]
