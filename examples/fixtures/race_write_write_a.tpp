# Interference fixture, task A of a write-write race: plain-writes the
# shared scratch word that race_write_write_b.tpp (a different task) also
# plain-writes. Each program verifies clean in isolation — only
# `tppverify --interference a b` sees the deployment-level conflict.
.task 7
STORE [Sram:Word0], 42
