# Rejected by [address-range]: 0x1fff sits in the Switch namespace but
# names no implemented statistic — at runtime this faults UnmappedAddress.
.reserve 8
PUSH [0x1fff]
