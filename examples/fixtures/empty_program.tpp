# Interference fixture: a task directive and comments but zero
# instructions. A CI glob that matches only files like this must NOT be
# certified "conflict-free" — an empty deployment proves nothing. Rejected
# by `tppverify --interference` with "empty program (no instructions)".
.task 9
