# Passes with a [use-before-init] warning (wire zero-fill makes the read
# a silent zero, not a fault); --werror turns it into a rejection. The
# STORE publishes packet-memory word 1, which nothing ever writes.
.pmem 2
.sp 4
STORE [Sram:Word0], [Packet:1]
