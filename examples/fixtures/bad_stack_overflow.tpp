# Rejected by [stack-growth]: two PUSHes per hop need 16 words across the
# default 8-hop budget, but only 4 are reserved — the stack pointer walks
# off the end of packet memory at hop 2.
.reserve 4
PUSH [Switch:SwitchID]
PUSH [Queue:QueueSize]
