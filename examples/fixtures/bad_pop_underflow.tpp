# Rejected by [stack-growth]: POP with an empty stack underflows the
# stack pointer on the first hop (faults PmemOutOfBounds).
.pmem 4
POP [Sram:Word0]
