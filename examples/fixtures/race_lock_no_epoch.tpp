# Interference fixture: mutates the RCP lock word with CSTORE but never
# reads [Switch:BootEpoch], so a reboot that wipes the lock cannot be told
# apart from a held lock (the stuck-lock deadlock of the Minions paper).
# Rejected by `tppverify --interference` with [lock-no-epoch-check]; the
# bundled RCP* lock programs push the epoch every hop for exactly this
# reason.
.task 9
CEXEC [Switch:SwitchID], 0xFFFFFFFF, 4
CSTORE [Link:RCP-LockRegister], 0, 9
STORE [Link:RCP-RateRegister], 500
