# Interference fixture, tenant A of a shared sketch region: the same
# LOAD / ADD / CSTORE increment the resident count-min hook emits
# (DESIGN.md §14), aimed at the scratch words sketch_rmw_b.tpp (a
# different task) also increments. Both sides commit through CSTORE, so
# `tppverify --interference a b` classifies the overlap shared-rmw and
# admits the deployment — concurrent counter updates coordinate through
# the compare-and-swap, nobody's increment is silently lost.
.task 11
.init 0 0
.init 1 1
LOAD [Sram:Word0], [Packet:0]
ADD [Sram:Word0], [Packet:1]
CSTORE [Sram:Word0], [Packet:0], [Packet:1]
.init 2 0
.init 3 1
LOAD [Sram:Word1], [Packet:2]
ADD [Sram:Word1], [Packet:3]
CSTORE [Sram:Word1], [Packet:2], [Packet:3]
