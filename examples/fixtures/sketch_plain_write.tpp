# Interference fixture, the rogue tenant: plain-STOREs a word the sketch
# tasks maintain with CSTORE read-modify-writes. Verifies clean in
# isolation, but deployed next to sketch_rmw_a.tpp the unconditional
# write clobbers increments mid-flight (lost-update), so
# `tppverify --interference` must reject the combination.
.task 13
STORE [Sram:Word0], 0
