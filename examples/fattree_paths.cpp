// ECMP path exploration on a k=4 fat tree: every flow carries the ndb
// trace TPP, so the sender can SEE which of the four cross-pod paths each
// of its flows hashed onto — per-packet path visibility that normally
// requires switch-by-switch counter archaeology.
//
//   $ ./fattree_paths
#include <cstdio>
#include <map>
#include <vector>

#include "src/apps/ndb.hpp"
#include "src/host/topology.hpp"

int main() {
  using namespace tpp;

  host::Testbed tb;
  const auto ix = buildFatTree(tb, 4,
                               host::LinkParams{1'000'000'000,
                                                sim::Time::us(1)});
  std::printf("k=4 fat tree: %zu hosts, %zu switches (%zu cores)\n\n",
              ix.hostCount(), tb.switchCount(), ix.coreCount());

  auto& src = tb.host(ix.host(0, 0, 0));
  auto& dst = tb.host(ix.host(2, 1, 1));
  apps::TraceCollector collector(tb.host(ix.host(2, 1, 1)));

  // 24 flows (distinct source ports) from the same host pair.
  const int kFlows = 24;
  for (std::uint16_t f = 0; f < kFlows; ++f) {
    src.sendUdpWithTpp(dst.mac(), dst.ip(),
                       static_cast<std::uint16_t>(30000 + f), 9000, {},
                       apps::makeTraceProgram(8));
  }
  tb.sim().run();

  std::map<std::vector<std::uint32_t>, int> paths;
  for (const auto& trace : collector.traces()) {
    std::vector<std::uint32_t> path;
    for (const auto& hop : trace.hops) path.push_back(hop.switchId);
    ++paths[path];
  }

  std::printf("%d flows from h%zu to h%zu took %zu distinct paths:\n\n",
              kFlows, ix.host(0, 0, 0), ix.host(2, 1, 1), paths.size());
  std::printf("%-40s %-8s\n", "path (switch ids)", "flows");
  for (const auto& [path, count] : paths) {
    std::string s;
    for (const auto id : path) {
      if (!s.empty()) s += " -> ";
      s += "sw" + std::to_string(id);
    }
    std::printf("%-40s %-8d\n", s.c_str(), count);
  }
  std::printf("\n(each path is edge -> agg -> core -> agg -> edge; the "
              "ECMP hash pins a flow to one of %zu core choices)\n",
              ix.coreCount());
  return paths.size() >= 2 ? 0 : 1;
}
