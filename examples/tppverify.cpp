// tppverify — static lint for tiny packet programs, run before injection.
//
//   $ ./tppverify prog.tpp              # verify one or more .tpp files
//   $ ./tppverify --hops 3 prog.tpp     # prove bounds for a 3-hop path
//   $ echo 'POP [Sram:Word0]' | ./tppverify -    # read from stdin
//
// Diagnostics are "file:line: severity: [check] message", so editors and
// CI annotate the offending source line. Exit status: 0 when every input
// verifies clean, 1 when any input has errors (or warnings with --werror),
// 2 on usage/IO problems.
//
// Deployment mode — whole-set interference analysis instead of per-program
// checks:
//
//   $ ./tppverify --interference taskA.tpp taskB.tpp   # each file = 1 task
//   $ ./tppverify --interference --apps                # the shipped 6 apps
//   $ ./tppverify --interference --apps candidate.tpp  # admit a newcomer?
//
// Every file is assembled, verified, summarized into its switch-memory
// effects, and the set is checked pairwise for write-write races, lost
// updates against CSTORE words, unguarded read-write sharing, and lock
// discipline (the standard RCP lock word is always declared). --apps adds
// the six bundled tasks' programs to the set. Exit 1 on any conflict error.
//
// Options:
//   --hops N       hop budget to prove stack/record growth over (default 8)
//   --mtu N        wire-byte budget (default 1500)
//   --no-CHECK     disable one check: budget, stack-growth,
//                  write-permission, address-range, use-before-init
//   --werror       treat warnings as errors
//   --quiet        suppress the per-file "ok" lines
//   --interference deployment mode (see above)
//   --apps         with --interference: include the shipped six-app set
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "src/apps/deployment.hpp"
#include "src/core/assembler.hpp"
#include "src/core/interference.hpp"
#include "src/core/memory_map.hpp"
#include "src/core/verifier.hpp"

namespace {

using tpp::core::Check;

constexpr Check kChecks[] = {Check::Budget, Check::StackGrowth,
                             Check::WritePermission, Check::AddressRange,
                             Check::UseBeforeInit};

int usage(int status) {
  std::fprintf(status == 0 ? stdout : stderr,
               "usage: tppverify [--hops N] [--mtu N] [--werror] [--quiet]\n"
               "                 [--no-budget] [--no-stack-growth]\n"
               "                 [--no-write-permission] [--no-address-range]\n"
               "                 [--no-use-before-init] FILE... | -\n"
               "       tppverify --interference [--apps] [--hops N]\n"
               "                 [--werror] [--quiet] [FILE...]\n");
  return status;
}

bool readSource(const std::string& file, std::string& out) {
  if (file == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    out = buf.str();
    return true;
  }
  std::ifstream in(file);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

std::string baseName(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tpp") == 0) {
    name.resize(name.size() - 4);
  }
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  tpp::core::VerifyOptions opts;
  bool quiet = false;
  bool interference = false;
  bool withApps = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto numberArg = [&](std::size_t& out) {
      if (i + 1 >= argc) return false;
      out = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 0));
      return true;
    };
    if (arg == "-h" || arg == "--help") return usage(0);
    if (arg == "--werror") {
      opts.werror = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--interference") {
      interference = true;
    } else if (arg == "--apps") {
      withApps = true;
    } else if (arg == "--hops") {
      if (!numberArg(opts.maxHops)) return usage(2);
    } else if (arg == "--mtu") {
      if (!numberArg(opts.mtuBytes)) return usage(2);
    } else if (arg.rfind("--no-", 0) == 0) {
      const std::string_view name = arg.substr(5);
      bool known = false;
      for (const Check c : kChecks) {
        if (name == tpp::core::checkName(c)) {
          opts.checks &= ~tpp::core::checkBit(c);
          known = true;
        }
      }
      if (!known) {
        std::fprintf(stderr, "tppverify: unknown check '%s'\n",
                     std::string(name).c_str());
        return usage(2);
      }
    } else if (arg == "-" || arg.front() != '-') {
      files.emplace_back(arg);
    } else {
      std::fprintf(stderr, "tppverify: unknown option '%s'\n", argv[i]);
      return usage(2);
    }
  }
  if (withApps && !interference) {
    std::fprintf(stderr, "tppverify: --apps requires --interference\n");
    return usage(2);
  }
  if (files.empty() && !withApps) return usage(2);

  const auto& map = tpp::core::MemoryMap::standard();
  bool anyErrors = false;

  // --------------------------------------------- deployment analysis mode
  if (interference) {
    tpp::apps::Deployment dep = withApps
                                    ? tpp::apps::shippedDeployment()
                                    : tpp::apps::Deployment{
                                          {}, tpp::apps::standardLockOptions()};
    for (const auto& file : files) {
      std::string source;
      if (!readSource(file, source)) {
        std::fprintf(stderr, "tppverify: cannot read %s\n", file.c_str());
        return 2;
      }
      const std::string label = file == "-" ? "<stdin>" : file;
      std::vector<int> lines;
      tpp::core::AssembleOptions aopts;
      aopts.outInstructionLines = &lines;
      auto assembled = tpp::core::assemble(source, map, aopts);
      if (const auto* err =
              std::get_if<tpp::core::AssemblyError>(&assembled)) {
        std::fprintf(stderr, "%s:%d: error: [assemble] %s\n", label.c_str(),
                     err->line, err->message.c_str());
        anyErrors = true;
        continue;
      }
      const auto& program = std::get<tpp::core::Program>(assembled);
      if (program.instructions.empty()) {
        std::fprintf(stderr,
                     "%s: error: empty program (no instructions) — nothing "
                     "to certify\n",
                     label.c_str());
        anyErrors = true;
        continue;
      }
      // Per-program verification still applies: a deployment of faulting
      // programs is not worth analyzing for interference.
      auto vopts = opts;
      vopts.instructionLines = lines;
      const auto result = tpp::core::verify(program, map, vopts);
      for (const auto& d : result.diagnostics) {
        std::fprintf(stderr, "%s\n",
                     tpp::core::formatDiagnostic(d, label).c_str());
      }
      if (!result.ok()) {
        anyErrors = true;
        continue;
      }
      dep.tasks.push_back(
          tpp::core::summarize(program, baseName(label), opts.maxHops));
    }

    // An empty task set is trivially "conflict-free"; certifying it would
    // let a CI glob that matched nothing stamp a deployment as verified.
    if (dep.tasks.empty()) {
      std::fprintf(stderr,
                   "tppverify: no programs to analyze — refusing to certify "
                   "an empty deployment\n");
      return anyErrors ? 1 : 2;
    }

    const auto report =
        tpp::core::analyzeInterference(dep.tasks, dep.options);
    for (const auto& f : report.findings) {
      std::fprintf(stderr, "%s\n", tpp::core::formatConflict(f).c_str());
    }
    if (!quiet) {
      for (const auto& b : report.benign) {
        std::printf("note: [%s] %s\n",
                    std::string(tpp::core::conflictKindName(b.kind)).c_str(),
                    b.message.c_str());
      }
      std::printf(
          "interference: %zu task%s, %zu shared scratch word%s, "
          "%zu error%s, %zu warning%s%s\n",
          dep.tasks.size(), dep.tasks.size() == 1 ? "" : "s",
          report.sharedWords, report.sharedWords == 1 ? "" : "s",
          report.errors, report.errors == 1 ? "" : "s", report.warnings,
          report.warnings == 1 ? "" : "s",
          report.ok() && !anyErrors ? " — deployment is conflict-free"
                                    : "");
    }
    const bool warningsFail = opts.werror && report.warnings > 0;
    return anyErrors || !report.ok() || warningsFail ? 1 : 0;
  }

  for (const auto& file : files) {
    std::string source;
    if (!readSource(file, source)) {
      std::fprintf(stderr, "tppverify: cannot read %s\n", file.c_str());
      return 2;
    }
    const std::string label = file == "-" ? "<stdin>" : file;

    std::vector<int> lines;
    tpp::core::AssembleOptions aopts;
    aopts.outInstructionLines = &lines;
    auto assembled = tpp::core::assemble(source, map, aopts);
    if (const auto* err = std::get_if<tpp::core::AssemblyError>(&assembled)) {
      std::fprintf(stderr, "%s:%d: error: [assemble] %s\n", label.c_str(),
                   err->line, err->message.c_str());
      anyErrors = true;
      continue;
    }
    const auto& program = std::get<tpp::core::Program>(assembled);

    auto vopts = opts;
    vopts.instructionLines = lines;
    const auto result = tpp::core::verify(program, map, vopts);
    for (const auto& d : result.diagnostics) {
      std::fprintf(stderr, "%s\n",
                   tpp::core::formatDiagnostic(d, label).c_str());
    }
    if (!result.ok()) {
      anyErrors = true;
    } else if (!quiet) {
      std::string warnings;
      if (result.warnings > 0) {
        warnings = ", " + std::to_string(result.warnings) + " warning" +
                   (result.warnings == 1 ? "" : "s");
      }
      std::printf("%s: ok (%zu instruction%s, %u pmem words, %zu wire "
                  "bytes%s)\n",
                  label.c_str(), program.instructions.size(),
                  program.instructions.size() == 1 ? "" : "s",
                  program.pmemWords, program.wireBytes(), warnings.c_str());
    }
  }
  return anyErrors ? 1 : 0;
}
