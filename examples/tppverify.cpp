// tppverify — static lint for tiny packet programs, run before injection.
//
//   $ ./tppverify prog.tpp              # verify one or more .tpp files
//   $ ./tppverify --hops 3 prog.tpp     # prove bounds for a 3-hop path
//   $ echo 'POP [Sram:Word0]' | ./tppverify -    # read from stdin
//
// Diagnostics are "file:line: severity: [check] message", so editors and
// CI annotate the offending source line. Exit status: 0 when every input
// verifies clean, 1 when any input has errors (or warnings with --werror),
// 2 on usage/IO problems.
//
// Options:
//   --hops N       hop budget to prove stack/record growth over (default 8)
//   --mtu N        wire-byte budget (default 1500)
//   --task N       override the .task id the grants are checked against
//   --no-CHECK     disable one check: budget, stack-growth,
//                  write-permission, address-range, use-before-init
//   --werror       treat warnings as errors
//   --quiet        suppress the per-file "ok" lines
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "src/core/assembler.hpp"
#include "src/core/memory_map.hpp"
#include "src/core/verifier.hpp"

namespace {

using tpp::core::Check;

constexpr Check kChecks[] = {Check::Budget, Check::StackGrowth,
                             Check::WritePermission, Check::AddressRange,
                             Check::UseBeforeInit};

int usage(int status) {
  std::fprintf(status == 0 ? stdout : stderr,
               "usage: tppverify [--hops N] [--mtu N] [--werror] [--quiet]\n"
               "                 [--no-budget] [--no-stack-growth]\n"
               "                 [--no-write-permission] [--no-address-range]\n"
               "                 [--no-use-before-init] FILE... | -\n");
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  tpp::core::VerifyOptions opts;
  bool quiet = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto numberArg = [&](std::size_t& out) {
      if (i + 1 >= argc) return false;
      out = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 0));
      return true;
    };
    if (arg == "-h" || arg == "--help") return usage(0);
    if (arg == "--werror") {
      opts.werror = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--hops") {
      if (!numberArg(opts.maxHops)) return usage(2);
    } else if (arg == "--mtu") {
      if (!numberArg(opts.mtuBytes)) return usage(2);
    } else if (arg.rfind("--no-", 0) == 0) {
      const std::string_view name = arg.substr(5);
      bool known = false;
      for (const Check c : kChecks) {
        if (name == tpp::core::checkName(c)) {
          opts.checks &= ~tpp::core::checkBit(c);
          known = true;
        }
      }
      if (!known) {
        std::fprintf(stderr, "tppverify: unknown check '%s'\n",
                     std::string(name).c_str());
        return usage(2);
      }
    } else if (arg == "-" || arg.front() != '-') {
      files.emplace_back(arg);
    } else {
      std::fprintf(stderr, "tppverify: unknown option '%s'\n", argv[i]);
      return usage(2);
    }
  }
  if (files.empty()) return usage(2);

  const auto& map = tpp::core::MemoryMap::standard();
  bool anyErrors = false;

  for (const auto& file : files) {
    std::string source;
    if (file == "-") {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      source = buf.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "tppverify: cannot read %s\n", file.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      source = buf.str();
    }
    const std::string label = file == "-" ? "<stdin>" : file;

    std::vector<int> lines;
    tpp::core::AssembleOptions aopts;
    aopts.outInstructionLines = &lines;
    auto assembled = tpp::core::assemble(source, map, aopts);
    if (const auto* err = std::get_if<tpp::core::AssemblyError>(&assembled)) {
      std::fprintf(stderr, "%s:%d: error: [assemble] %s\n", label.c_str(),
                   err->line, err->message.c_str());
      anyErrors = true;
      continue;
    }
    const auto& program = std::get<tpp::core::Program>(assembled);

    auto vopts = opts;
    vopts.instructionLines = lines;
    const auto result = tpp::core::verify(program, map, vopts);
    for (const auto& d : result.diagnostics) {
      std::fprintf(stderr, "%s\n",
                   tpp::core::formatDiagnostic(d, label).c_str());
    }
    if (!result.ok()) {
      anyErrors = true;
    } else if (!quiet) {
      std::string warnings;
      if (result.warnings > 0) {
        warnings = ", " + std::to_string(result.warnings) + " warning" +
                   (result.warnings == 1 ? "" : "s");
      }
      std::printf("%s: ok (%zu instruction%s, %u pmem words, %zu wire "
                  "bytes%s)\n",
                  label.c_str(), program.instructions.size(),
                  program.instructions.size() == 1 ? "" : "s",
                  program.pmemWords, program.wireBytes(), warnings.c_str());
    }
  }
  return anyErrors ? 1 : 0;
}
