// tpptrace: replay a recorded flight-recorder ring as a human-readable
// timeline, reconstruct a probe's per-hop lifecycle, or export to
// chrome://tracing JSON / CSV.
//
//   tpptrace run.trace                      # full timeline
//   tpptrace run.trace --limit 50           # last 50 records
//   tpptrace run.trace --probe 3:17         # lifecycle of task 3, seq 17
//   tpptrace run.trace --chrome run.json    # Perfetto / chrome://tracing
//   tpptrace run.trace --csv run.csv
//
// Exit codes: 0 clean decode, 1 decode flagged problems (truncated input,
// out-of-range record kinds — whatever parsed is still shown), 2 usage or
// I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/host/telemetry.hpp"
#include "src/sim/trace.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tpptrace <trace-file> [--probe TASK:SEQ] "
               "[--chrome FILE] [--csv FILE] [--limit N] [--quiet]\n");
  return 2;
}

bool writeFile(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  f << content;
  return static_cast<bool>(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string tracePath, chromePath, csvPath;
  long long limit = -1;
  bool quiet = false;
  bool wantProbe = false;
  unsigned long probeTask = 0, probeSeq = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--probe") {
      const char* v = value();
      if (v == nullptr) return usage();
      char* colon = nullptr;
      probeTask = std::strtoul(v, &colon, 10);
      if (colon == v || *colon != ':') return usage();
      char* end = nullptr;
      probeSeq = std::strtoul(colon + 1, &end, 10);
      if (end == colon + 1 || *end != '\0') return usage();
      wantProbe = true;
    } else if (arg == "--chrome") {
      const char* v = value();
      if (v == nullptr) return usage();
      chromePath = v;
    } else if (arg == "--csv") {
      const char* v = value();
      if (v == nullptr) return usage();
      csvPath = v;
    } else if (arg == "--limit") {
      const char* v = value();
      if (v == nullptr) return usage();
      char* end = nullptr;
      limit = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || limit < 0) return usage();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (tracePath.empty()) {
      tracePath = arg;
    } else {
      return usage();
    }
  }
  if (tracePath.empty()) return usage();

  std::ifstream in(tracePath, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "tpptrace: cannot open %s\n", tracePath.c_str());
    return 2;
  }
  std::vector<std::uint8_t> bytes(std::istreambuf_iterator<char>(in), {});

  const auto trace = tpp::sim::decodeTrace(bytes);
  if (!trace.ok) {
    std::fprintf(stderr, "tpptrace: decode flagged: %s\n",
                 trace.error.c_str());
  }

  if (!chromePath.empty() &&
      !writeFile(chromePath, tpp::host::toChromeJson(trace))) {
    std::fprintf(stderr, "tpptrace: cannot write %s\n", chromePath.c_str());
    return 2;
  }
  if (!csvPath.empty() && !writeFile(csvPath, tpp::host::toCsv(trace))) {
    std::fprintf(stderr, "tpptrace: cannot write %s\n", csvPath.c_str());
    return 2;
  }

  if (wantProbe) {
    const auto lc = tpp::host::reconstructProbeLifecycle(
        trace, static_cast<std::uint16_t>(probeTask),
        static_cast<std::uint32_t>(probeSeq));
    std::fputs(tpp::host::describeLifecycle(lc, trace.actors).c_str(),
               stdout);
  } else if (!quiet) {
    std::printf("%zu records, %zu actors, %llu overwritten%s\n",
                trace.records.size(), trace.actors.size(),
                static_cast<unsigned long long>(trace.overwritten),
                trace.truncated ? " (TRUNCATED INPUT)" : "");
    std::size_t first = 0;
    if (limit >= 0 && static_cast<std::size_t>(limit) < trace.records.size()) {
      first = trace.records.size() - static_cast<std::size_t>(limit);
    }
    for (std::size_t i = first; i < trace.records.size(); ++i) {
      std::printf("%s\n",
                  tpp::host::describeRecord(trace.records[i], trace.actors)
                      .c_str());
    }
  }

  return trace.ok ? 0 : 1;
}
