// Wireless extension (paper §2.3, "Other possibilities"): "they can also
// be used in wireless networks where access points can annotate end-host
// packets with channel SNR which changes very quickly."
//
// An access point is a switch whose client-facing port has a Link:SNR
// register updated by the radio PHY (here: a random-walk channel model).
// The station's TPP probes return per-packet SNR samples at RTT
// granularity — fast enough to follow fades that second-scale management
// polling cannot see.
//
//   $ ./wireless_ap
#include <cstdio>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/host/collector.hpp"
#include "src/host/topology.hpp"
#include "src/sim/random.hpp"

int main() {
  using namespace tpp;

  host::Testbed tb;
  // station (h0) — AP (sw0) — wired network (sw1) — server (h1)
  buildChain(tb, 2, host::LinkParams{100'000'000, sim::Time::us(50)});
  auto& ap = tb.sw(0);

  // Radio PHY: Gauss-Markov SNR random walk on the station-facing port,
  // updated every millisecond.
  sim::Rng rng(7);
  double snrDb = 30.0;
  std::function<void()> fade = [&] {
    snrDb = 0.9 * snrDb + 0.1 * 25.0 + rng.normal(0.0, 1.5);
    snrDb = std::max(snrDb, 0.0);
    ap.setPortSnr(/*port=*/0, static_cast<std::uint32_t>(snrDb * 100.0));
    if (tb.sim().now() < sim::Time::ms(200)) {
      tb.sim().schedule(sim::Time::ms(1), fade);
    }
  };
  fade();

  // The station probes the DOWNLINK: the server sends the probe so the
  // TPP's egress port at the AP is the wireless port, where Link:SNR
  // lives. (The station could equally read it on its uplink via a shim.)
  core::ProgramBuilder b;
  b.push(core::addr::SwitchId);
  b.push(core::addr::WirelessSnr);
  b.reserve(8);
  const auto program = b.buildChecked();

  sim::TimeSeries samples;
  tb.host(1).onTppResult([&](const core::ExecutedTpp& tpp) {
    const auto records = host::splitStackRecords(tpp, 2);
    // Hop 1 is the AP (the probe traverses sw1 then sw0).
    if (records.size() == 2) {
      samples.add(tb.sim().now(), records[1][1] / 100.0);
    }
  });

  std::function<void()> probe = [&] {
    tb.host(1).sendProbe(tb.host(0).mac(), tb.host(0).ip(), program);
    if (tb.sim().now() < sim::Time::ms(200)) {
      tb.sim().schedule(sim::Time::ms(2), probe);
    }
  };
  probe();

  tb.sim().run(sim::Time::ms(210));

  std::printf("per-probe SNR samples at the AP's wireless port:\n");
  std::printf("t(ms),snr(dB)\n");
  for (std::size_t i = 0; i < samples.size(); i += 10) {
    std::printf("%.0f,%.2f\n", samples.points()[i].first.toMillis(),
                samples.points()[i].second);
  }
  std::printf("\ncollected %zu SNR samples in 200 ms (one per ~2 ms RTT "
              "probe)\n", samples.size());
  return samples.size() > 50 ? 0 : 1;
}
