// tppasm — command-line assembler/disassembler for tiny packet programs.
//
//   $ echo 'PUSH [Queue:QueueSize]' | ./tppasm            # assemble
//   $ echo 'PUSH [Queue:QueueSize]' | ./tppasm -d         # and disassemble
//   $ ./tppasm --list                                     # memory map
//
// Output: one encoded instruction word per line (hex), then the packet
// memory image, then a summary — the bytes an end-host would splice into a
// TPP shim.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <variant>

#include "src/core/assembler.hpp"
#include "src/core/memory_map.hpp"

namespace {

const char* modeName(tpp::core::AddressingMode m) {
  return m == tpp::core::AddressingMode::Stack ? "stack" : "hop";
}

int listMap() {
  for (const auto& stat : tpp::core::MemoryMap::standard().all()) {
    std::printf("0x%04x  %-2s  %-32s %s\n", stat.address,
                stat.access == tpp::core::Access::ReadOnly ? "RO" : "RW",
                stat.name.c_str(), stat.description.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool alsoDisassemble = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) return listMap();
    if (std::strcmp(argv[i], "-d") == 0) alsoDisassemble = true;
    if (std::strcmp(argv[i], "-h") == 0 ||
        std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: tppasm [-d] < program.tpp\n"
                  "       tppasm --list\n");
      return 0;
    }
  }

  std::ostringstream source;
  source << std::cin.rdbuf();
  auto result = tpp::core::assemble(source.str());
  if (const auto* err = std::get_if<tpp::core::AssemblyError>(&result)) {
    std::fprintf(stderr, "tppasm: line %d: %s\n", err->line,
                 err->message.c_str());
    return 1;
  }
  const auto& program = std::get<tpp::core::Program>(result);

  std::printf("# instructions (%zu x 4 bytes)\n",
              program.instructions.size());
  for (const auto& ins : program.instructions) {
    std::printf("%08x\n", ins.encode());
  }
  std::printf("# packet memory (%u words, %zu initialized)\n",
              program.pmemWords, program.initialPmem.size());
  for (std::size_t i = 0; i < program.pmemWords; ++i) {
    std::printf("%08x\n",
                i < program.initialPmem.size() ? program.initialPmem[i] : 0);
  }
  std::printf("# mode=%s perhop=%u sp=%u task=%u wire=%zuB\n",
              modeName(program.mode), program.perHopWords, program.initialSp,
              program.taskId, program.wireBytes());
  if (alsoDisassemble) {
    std::printf("# disassembly\n%s",
                tpp::core::disassemble(program).c_str());
  }
  return 0;
}
