// ndb forwarding-plane debugger (paper §2.3): trace every packet's path
// with a 3-instruction TPP, then catch the dataplane diverging from the
// control plane's intent when a rule changes behind its back.
//
//   $ ./ndb_debugger
#include <cstdio>

#include "src/apps/ndb.hpp"
#include "src/host/topology.hpp"

int main() {
  using namespace tpp;

  host::Testbed tb;
  buildChain(tb, /*switches=*/4,
             host::LinkParams{1'000'000'000, sim::Time::us(5)});
  auto& sender = tb.host(0);
  auto& receiver = tb.host(1);

  // The control plane records its intent: the exact (switch, entry) pairs
  // packets to `receiver` must traverse.
  apps::IntentStore intent;
  {
    std::vector<apps::IntentStore::ExpectedHop> path;
    for (std::size_t s = 0; s < tb.switchCount(); ++s) {
      const auto match = tb.sw(s).l3().match(receiver.ip());
      path.push_back({tb.sw(s).config().switchId, match->entryId});
    }
    intent.setExpectedPath(path);
  }

  apps::TraceCollector collector(receiver);
  auto traceNext = [&] {
    sender.sendUdpWithTpp(receiver.mac(), receiver.ip(), 5000, 5000, {},
                          apps::makeTraceProgram());
  };

  auto report = [&](const char* label) {
    const auto& trace = collector.traces().back();
    std::printf("\n[%s]\n", label);
    std::printf("%-5s %-10s %-8s %-10s %-8s\n", "hop", "switch", "entry",
                "version", "in-port");
    for (std::size_t h = 0; h < trace.hops.size(); ++h) {
      const auto& hop = trace.hops[h];
      std::printf("%-5zu %-10u %-8u %-10u %-8u\n", h, hop.switchId,
                  hop.entryIndex(), hop.entryVersion(), hop.inputPort);
    }
    const auto divergences = intent.check(trace);
    if (divergences.empty()) {
      std::printf("verdict: forwarding matches control-plane intent\n");
    } else {
      for (const auto& d : divergences) {
        std::printf("verdict: DIVERGENCE at hop %zu: %s "
                    "(expected 0x%08x, observed 0x%08x)\n",
                    d.hop, apps::divergenceKindName(d.kind).c_str(),
                    d.expected, d.observed);
      }
    }
  };

  // 1. Clean network: trace matches intent.
  traceNext();
  tb.sim().run();
  report("clean network");

  // 2. Fault injection: switch 2's hardware silently refreshes the route
  //    (same forwarding, new entry version) — invisible to counters,
  //    caught by the version stamp.
  tb.sw(2).l3().add(receiver.ip(), 32, 1);
  traceNext();
  tb.sim().run();
  report("after silent rule refresh on sw2");

  // 3. Fault injection: a rogue TCAM rule hijacks the flow at switch 1.
  asic::TcamKey k;
  k.ipDst = {receiver.ip(), 32};
  tb.sw(1).tcam().add(k, asic::TcamAction{1}, 1000);
  traceNext();
  tb.sim().run();
  report("after rogue TCAM rule on sw1");

  // Overhead comparison with the packet-copy ndb (paper [8]).
  apps::NdbCopyOverheadModel copies;
  std::printf("\nper-packet tracing overhead (4-hop path):\n");
  std::printf("  TPP in-band:      %zu bytes\n",
              apps::tppTraceBytesPerPacket(4));
  std::printf("  truncated copies: %zu bytes\n", copies.bytesPerPacket(4));
  return 0;
}
