// tppscenario — the data-driven scenario runner CLI.
//
//   tppscenario <file.scn>                 run, print the summary
//   tppscenario --shards N <file.scn>      override the config's shard count
//   tppscenario --verify-shards A,B <file.scn>
//                                          run at both shard counts in one
//                                          process and fail (exit 1) unless
//                                          the two summaries are byte-equal
//   tppscenario --print-config <file.scn>  parse + echo the canonical form
//
// Exit codes: 0 success, 1 verification mismatch, 2 usage / parse error.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/workload/scenario.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: tppscenario [--shards N] [--verify-shards A,B] "
               "[--print-config] <file.scn>\n");
}

bool parseShardList(const std::string& arg, std::vector<std::size_t>& out) {
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string tok = arg.substr(pos, comma - pos);
    char* end = nullptr;
    const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v == 0 || v > 64) return false;
    out.push_back(static_cast<std::size_t>(v));
    pos = comma + 1;
  }
  return out.size() >= 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t shardsOverride = 0;
  std::vector<std::size_t> verifyShards;
  bool printConfig = false;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards") {
      if (++i >= argc) { usage(); return 2; }
      shardsOverride = static_cast<std::size_t>(std::strtoul(argv[i], nullptr, 10));
      if (shardsOverride == 0 || shardsOverride > 64) { usage(); return 2; }
    } else if (arg == "--verify-shards") {
      if (++i >= argc || !parseShardList(argv[i], verifyShards)) {
        usage();
        return 2;
      }
    } else if (arg == "--print-config") {
      printConfig = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "tppscenario: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  const auto parsed = tpp::workload::parseScenarioFile(path);
  if (!parsed.ok) {
    std::fprintf(stderr, "tppscenario: %s: %s\n", path.c_str(),
                 parsed.error.c_str());
    return 2;
  }

  if (printConfig) {
    std::fputs(tpp::workload::serializeScenario(parsed.config).c_str(),
               stdout);
    return 0;
  }

  if (!verifyShards.empty()) {
    // The determinism claim under test: the printed summary is a pure
    // function of (config, seed), not of the shard plan.
    std::string reference;
    std::size_t referenceShards = 0;
    for (std::size_t shards : verifyShards) {
      tpp::workload::RunOptions opts;
      opts.shardsOverride = shards;
      const auto run = tpp::workload::runScenario(parsed.config, opts);
      const std::string summary = run.result.summaryText(parsed.config);
      std::printf("--- shards=%zu (events=%llu)\n%s", shards,
                  static_cast<unsigned long long>(run.result.eventsExecuted),
                  summary.c_str());
      if (reference.empty()) {
        reference = summary;
        referenceShards = shards;
      } else if (summary != reference) {
        std::fprintf(stderr,
                     "tppscenario: summary DIVERGED between shards=%zu and "
                     "shards=%zu\n",
                     referenceShards, shards);
        return 1;
      }
    }
    std::printf("verify-shards OK: summaries byte-identical across %zu "
                "shard counts\n",
                verifyShards.size());
    return 0;
  }

  tpp::workload::RunOptions opts;
  opts.shardsOverride = shardsOverride;
  const auto run = tpp::workload::runScenario(parsed.config, opts);
  std::fputs(run.result.summaryText(parsed.config).c_str(), stdout);
  std::printf("events=%llu shards=%zu\n",
              static_cast<unsigned long long>(run.result.eventsExecuted),
              run.result.shards);
  if (run.result.flows == 0) {
    std::fprintf(stderr, "tppscenario: schedule compiled to zero flows\n");
    return 1;
  }
  if (run.result.finished + run.result.failed < run.result.flows) {
    std::fprintf(stderr, "tppscenario: %zu flows never completed\n",
                 run.result.flows - run.result.finished - run.result.failed);
    return 1;
  }
  return 0;
}
