// Core hot-path microbenchmarks + perf-regression harness.
//
// Times the simulator's inner loops — event schedule/fire, packet
// alloc/clone, link transit, TCPU execute per opcode, and end-to-end
// packets/sec on a 3-switch chain — and emits machine-readable
// BENCH_core.json (ns/op, ops/sec, heap allocations/op) so every PR has a
// trajectory to beat. Run it via `ctest -L perf` or directly:
//
//   build/bench/core/bench_core [output.json]
//
// Wall-clock numbers vary with hardware; allocation counts do not — they
// are the deterministic part of the regression gate.
// GCC pairs the replaced operator delete with the *default* operator new
// and warns about free(); both operators are replaced here, so the pairing
// is malloc/free throughout and the warning is spurious.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "src/apps/microburst.hpp"
#include "src/apps/ndb.hpp"
#include "src/apps/rcpstar.hpp"
#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/core/verifier.hpp"
#include "src/host/collector.hpp"
#include "src/host/flow.hpp"
#include "src/host/tcp.hpp"
#include "src/host/telemetry.hpp"
#include "src/host/topology.hpp"
#include "src/monitor/sketch.hpp"
#include "src/net/link.hpp"
#include "src/net/packet.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/trace.hpp"
#include "src/tcpu/tcpu.hpp"
#include "src/workload/scenario.hpp"

// ------------------------------------------------------------------------
// Heap instrumentation: every global allocation in the process is counted.
// ------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocCount{0};
std::atomic<std::uint64_t> g_allocBytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  g_allocBytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  g_allocBytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace tpp;

// ------------------------------------------------------------------------
// Measurement scaffolding
// ------------------------------------------------------------------------

struct Metric {
  std::string name;
  double nsPerOp = 0;
  double opsPerSec = 0;
  double allocsPerOp = 0;
  std::uint64_t ops = 0;
};

// Runs `body(ops)` once as warmup (with a reduced count), then measures.
template <typename F>
Metric measure(std::string name, std::uint64_t ops, F&& body) {
  body(ops / 10 + 1);  // warmup: touch caches, fill pools
  const auto allocs0 = g_allocCount.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  body(ops);
  const auto t1 = std::chrono::steady_clock::now();
  const auto allocs1 = g_allocCount.load(std::memory_order_relaxed);
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  Metric m;
  m.name = std::move(name);
  m.ops = ops;
  m.nsPerOp = ns / static_cast<double>(ops);
  m.opsPerSec = m.nsPerOp > 0 ? 1e9 / m.nsPerOp : 0;
  m.allocsPerOp =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(ops);
  std::printf("  %-28s %10.1f ns/op  %12.0f ops/s  %6.2f allocs/op\n",
              m.name.c_str(), m.nsPerOp, m.opsPerSec, m.allocsPerOp);
  return m;
}

// ------------------------------------------------------------------------
// 1. Event queue: schedule + fire, schedule + cancel
// ------------------------------------------------------------------------

Metric benchEventScheduleFire() {
  return measure("event_schedule_fire", 2'000'000, [](std::uint64_t ops) {
    sim::EventQueue q;
    std::uint64_t fired = 0;
    constexpr std::uint64_t kBatch = 64;
    for (std::uint64_t done = 0; done < ops;) {
      const std::uint64_t n = std::min(kBatch, ops - done);
      for (std::uint64_t i = 0; i < n; ++i) {
        q.push(sim::Time::ns(static_cast<std::int64_t>(done + i)),
               [&fired] { ++fired; });
      }
      while (auto f = q.tryPop()) f->fn();
      done += n;
    }
    if (fired != ops) std::abort();
  });
}

Metric benchEventCancel() {
  return measure("event_cancel", 2'000'000, [](std::uint64_t ops) {
    sim::EventQueue q;
    constexpr std::uint64_t kBatch = 64;
    for (std::uint64_t done = 0; done < ops;) {
      const std::uint64_t n = std::min(kBatch, ops - done);
      std::vector<sim::EventHandle> handles;
      handles.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        handles.push_back(
            q.push(sim::Time::ns(static_cast<std::int64_t>(done + i)), [] {}));
      }
      for (auto& h : handles) h.cancel();
      if (!q.empty()) std::abort();  // purges cancelled entries
      done += n;
    }
  });
}

// ------------------------------------------------------------------------
// 2. Packet alloc / clone
// ------------------------------------------------------------------------

Metric benchPacketMake() {
  return measure("packet_make_1500B", 1'000'000, [](std::uint64_t ops) {
    std::uint64_t bytes = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto p = net::Packet::make(1500, 0xab);
      bytes += p->size();
    }
    if (bytes != ops * 1500) std::abort();
  });
}

Metric benchPacketClone() {
  return measure("packet_clone_1500B", 1'000'000, [](std::uint64_t ops) {
    auto proto = net::Packet::make(1500, 0x5a);
    proto->flowId = 7;
    std::uint64_t ids = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto c = proto->clone();
      ids ^= c->id();
    }
    if (ids == 0xdeadbeef) std::abort();  // defeat dead-code elimination
  });
}

// ------------------------------------------------------------------------
// 3. Link transit: serialize + propagate + deliver through the simulator
// ------------------------------------------------------------------------

class SinkNode final : public net::Node {
 public:
  using net::Node::Node;
  std::uint64_t got = 0;
  void receive(net::PacketPtr, std::size_t) override { ++got; }
};

Metric benchLinkTransit() {
  return measure("link_transit_1500B", 500'000, [](std::uint64_t ops) {
    sim::Simulator sim;
    SinkNode sink("sink");
    net::Channel ch(sim, 100'000'000'000ULL, sim::Time::ns(100));
    ch.attachReceiver(&sink, 0);
    constexpr std::uint64_t kBatch = 256;
    for (std::uint64_t done = 0; done < ops;) {
      const std::uint64_t n = std::min(kBatch, ops - done);
      for (std::uint64_t i = 0; i < n; ++i) {
        ch.transmit(net::Packet::make(1500, 0x11));
      }
      sim.run();
      done += n;
    }
    if (sink.got != ops) std::abort();
  });
}

// ------------------------------------------------------------------------
// 3b. Fault-check overhead on the transmit hot path: unarmed (one null
// check) vs. armed with an all-zero plan (plus two probability compares,
// no randomness consumed). The regression gate: both must track
// link_transit_1500B — fault injection is free when it isn't injecting.
// ------------------------------------------------------------------------

Metric benchFaultCheck(const std::string& name, bool armed) {
  return measure(name, 500'000, [armed](std::uint64_t ops) {
    sim::Simulator sim;
    SinkNode sink("sink");
    net::Channel ch(sim, 100'000'000'000ULL, sim::Time::ns(100));
    ch.attachReceiver(&sink, 0);
    sim::FaultInjector inj(sim, 1);
    if (armed) ch.setFaultState(&inj.link("bench", sim::LinkFaultPlan{}));
    constexpr std::uint64_t kBatch = 256;
    for (std::uint64_t done = 0; done < ops;) {
      const std::uint64_t n = std::min(kBatch, ops - done);
      for (std::uint64_t i = 0; i < n; ++i) {
        ch.transmit(net::Packet::make(1500, 0x11));
      }
      sim.run();
      done += n;
    }
    if (sink.got != ops) std::abort();  // a zero plan never drops
  });
}

// ------------------------------------------------------------------------
// 3c. Flight-recorder overhead on the same transmit path: disarmed (one
// null check per trace site, PR 3's fault_check discipline) vs. armed
// (two ring stores per transit: link_tx + link_deliver). Gate: disarmed
// must track link_transit_1500B — tracing is free when nothing listens.
// ------------------------------------------------------------------------

Metric benchTraceCheck(const std::string& name, bool armed) {
  return measure(name, 500'000, [armed](std::uint64_t ops) {
    sim::Simulator sim;
    SinkNode sink("sink");
    net::Channel ch(sim, 100'000'000'000ULL, sim::Time::ns(100));
    ch.attachReceiver(&sink, 0);
    sim::Tracer tracer(1 << 12);
    if (armed) ch.setTracer(&tracer, tracer.actor("bench"));
    constexpr std::uint64_t kBatch = 256;
    for (std::uint64_t done = 0; done < ops;) {
      const std::uint64_t n = std::min(kBatch, ops - done);
      for (std::uint64_t i = 0; i < n; ++i) {
        ch.transmit(net::Packet::make(1500, 0x11));
      }
      sim.run();
      done += n;
    }
    if (sink.got != ops) std::abort();
    if (armed && tracer.written() == 0) std::abort();
  });
}

// Raw cost of one Tracer::record into a warm ring — the per-site price a
// new trace point adds to an armed hot path.
Metric benchTraceRecord() {
  return measure("trace_record", 4'000'000, [](std::uint64_t ops) {
    sim::Tracer tracer(1 << 12);
    const auto actor = tracer.actor("bench");
    for (std::uint64_t i = 0; i < ops; ++i) {
      tracer.record(sim::Time::ns(static_cast<std::int64_t>(i)),
                    sim::TraceKind::EventFire, actor, 0,
                    static_cast<std::uint32_t>(i));
    }
    if (tracer.written() != ops) std::abort();
  });
}

// ------------------------------------------------------------------------
// 4. TCPU: decode + execute, per opcode
// ------------------------------------------------------------------------

// Flat, always-mapped address space: isolates TCPU cost from table lookups.
class FlatMemory final : public tcpu::AddressSpace {
 public:
  std::uint32_t lastWrite = 0;
  ReadResult read(std::uint16_t address, std::uint16_t) override {
    return ReadResult::ok(address * 2654435761u);
  }
  core::Fault write(std::uint16_t, std::uint32_t value,
                    std::uint16_t) override {
    lastWrite = value;
    return core::Fault::None;
  }
};

// Executes `program` repeatedly on one packet, resetting the mutable header
// state between runs so every iteration sees hop 0 / the initial SP.
Metric benchTcpuProgram(const std::string& name, const core::Program& program,
                        std::uint64_t ops) {
  auto packet = core::buildTppFrame(net::MacAddress::fromIndex(1),
                                    net::MacAddress::fromIndex(2), program);
  auto view = core::TppView::at(*packet, net::kEthernetHeaderSize);
  if (!view) std::abort();
  const std::uint16_t sp0 = view->stackPointer();
  const std::size_t perExec = program.instructions.size();
  return measure(name, ops, [&](std::uint64_t n) {
    FlatMemory mem;
    tcpu::Tcpu tcpu;
    for (std::uint64_t i = 0; i < n; i += perExec) {
      const auto report = tcpu.execute(*view, mem);
      if (report.fault != core::Fault::None) std::abort();
      view->setStackPointer(sp0);
      view->setHopNumber(0);
    }
  });
}

std::vector<Metric> benchTcpuOpcodes() {
  std::vector<Metric> out;
  constexpr std::uint64_t kOps = 4'000'000;  // instructions, not executes
  {
    core::ProgramBuilder b;
    for (int i = 0; i < 8; ++i) b.load(0xb000, static_cast<std::uint8_t>(i));
    b.reserve(8);
    out.push_back(benchTcpuProgram("tcpu_load", *b.build(), kOps));
  }
  {
    core::ProgramBuilder b;
    for (int i = 0; i < 8; ++i) b.push(0xb000);
    b.reserve(8);
    out.push_back(benchTcpuProgram("tcpu_push", *b.build(), kOps));
  }
  {
    core::ProgramBuilder b;
    for (int i = 0; i < 8; ++i) b.store(0xb000, static_cast<std::uint8_t>(i));
    b.reserve(8);
    out.push_back(benchTcpuProgram("tcpu_store", *b.build(), kOps));
  }
  {
    core::ProgramBuilder b;
    for (int i = 0; i < 8; ++i) b.add(0xb000, static_cast<std::uint8_t>(i));
    b.reserve(8);
    out.push_back(benchTcpuProgram("tcpu_add", *b.build(), kOps));
  }
  {
    // CEXEC with an always-true predicate: read(0) == 0 masked to 0.
    core::ProgramBuilder b;
    for (int i = 0; i < 8; ++i) b.cexec(0x0000, 0, 0);
    b.reserve(8);
    out.push_back(benchTcpuProgram("tcpu_cexec", *b.build(), kOps));
  }
  {
    // CSTORE whose compare always fails (cond != switch value): measures
    // the read + compare + result write-back path.
    core::ProgramBuilder b;
    for (int i = 0; i < 4; ++i) b.cstore(0xb000, 1, 2);
    b.reserve(8);
    out.push_back(benchTcpuProgram("tcpu_cstore", *b.build(), kOps / 2));
  }
  return out;
}

// ------------------------------------------------------------------------
// 5. Static verifier: full verify() over the canonical app programs — the
// cost an end-host agent pays per program before injection.
// ------------------------------------------------------------------------

Metric benchVerifyProgram(const std::string& name,
                          const core::Program& program) {
  const core::VerifyOptions opts{.maxHops = 8};
  return measure(name, 200'000, [&](std::uint64_t n) {
    std::size_t errors = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      errors += core::verify(program, core::MemoryMap::standard(), opts).errors;
    }
    if (errors != 0) std::abort();  // app programs verify clean
  });
}

std::vector<Metric> benchVerify() {
  std::vector<Metric> out;
  out.push_back(benchVerifyProgram(
      "verify_rcp_collect", apps::makeRcpCollectProgram(8)));
  out.push_back(benchVerifyProgram(
      "verify_ndb_trace", apps::makeTraceProgram(8)));
  out.push_back(benchVerifyProgram(
      "verify_microburst", apps::makeQueueProbeProgram(8)));
  return out;
}

// ------------------------------------------------------------------------
// 6. End-to-end: packets/sec across a 3-switch chain
// ------------------------------------------------------------------------

Metric benchChainUdp() {
  return measure("chain_udp_pps", 60'000, [](std::uint64_t ops) {
    host::Testbed tb;
    buildChain(tb, 3, host::LinkParams{10'000'000'000ULL, sim::Time::us(1)});
    std::uint64_t delivered = 0;
    tb.host(1).bindUdp(7000, [&](const host::UdpDatagram&) { ++delivered; });
    const std::vector<std::uint8_t> payload(1000, 0x42);
    constexpr std::uint64_t kBatch = 2'000;
    for (std::uint64_t done = 0; done < ops;) {
      const std::uint64_t n = std::min(kBatch, ops - done);
      for (std::uint64_t i = 0; i < n; ++i) {
        tb.host(0).sendUdp(tb.host(1).mac(), tb.host(1).ip(), 7000, 7000,
                           payload);
      }
      tb.sim().run();
      done += n;
    }
    if (delivered != ops) std::abort();
  });
}

Metric benchChainTppProbes() {
  return measure("chain_tpp_probe_rtt", 30'000, [](std::uint64_t ops) {
    host::Testbed tb;
    buildChain(tb, 3, host::LinkParams{10'000'000'000ULL, sim::Time::us(1)});
    const auto program = apps::makeQueueProbeProgram(4);
    std::uint64_t echoed = 0;
    tb.host(0).onTppResult([&](const core::ExecutedTpp&) { ++echoed; });
    constexpr std::uint64_t kBatch = 1'000;
    for (std::uint64_t done = 0; done < ops;) {
      const std::uint64_t n = std::min(kBatch, ops - done);
      for (std::uint64_t i = 0; i < n; ++i) {
        tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
      }
      tb.sim().run();
      done += n;
    }
    if (echoed != ops) std::abort();
  });
}

// ------------------------------------------------------------------------
// 6b. SRAM race-oracle overhead on the probe round trip: disarmed (one
// null check per scratch access, the fault/trace discipline) vs. armed
// (one flags-merge append per access). The probe plain-writes one global
// scratch word per hop, so every transit crosses the instrumented path.
// Gate: disarmed must track chain_tpp_probe_rtt — the oracle is free
// when nothing cross-checks.
// ------------------------------------------------------------------------

Metric benchOracleCheck(const std::string& name, bool armed) {
  return measure(name, 30'000, [armed](std::uint64_t ops) {
    host::Testbed tb;
    buildChain(tb, 3, host::LinkParams{10'000'000'000ULL, sim::Time::us(1)});
    host::SramOracleSet oracles(tb.switchCount());
    if (armed) host::armSramOracle(tb, oracles);
    core::ProgramBuilder b;
    b.storeImm(core::kSramBase, 7);
    const auto program = *b.build();
    std::uint64_t echoed = 0;
    tb.host(0).onTppResult([&](const core::ExecutedTpp&) { ++echoed; });
    constexpr std::uint64_t kBatch = 1'000;
    for (std::uint64_t done = 0; done < ops;) {
      const std::uint64_t n = std::min(kBatch, ops - done);
      for (std::uint64_t i = 0; i < n; ++i) {
        tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
      }
      tb.sim().run();
      done += n;
    }
    if (echoed != ops) std::abort();
    if (armed && oracles.accesses() == 0) std::abort();
  });
}

// ------------------------------------------------------------------------
// 6d. In-switch sketch monitoring (DESIGN.md §14). sketch_update is the
// resident count-min hook's per-packet cost: one op = one hook-eligible
// UDP packet crossing a switch that patches and runs the d-row
// LOAD/ADD/CSTORE update (compare against chain_udp_pps for the
// no-hook baseline). sketch_read_rtt is the host-side reader: one op =
// one CEXEC-pinned read probe round trip pushing [epoch, row0..rowd-1]
// out of the grant. Both ride the --check gate.
// ------------------------------------------------------------------------

Metric benchSketchUpdate() {
  return measure("sketch_update", 60'000, [](std::uint64_t ops) {
    host::Testbed tb;
    buildChain(tb, 1, host::LinkParams{10'000'000'000ULL, sim::Time::us(1)});
    const monitor::CountMinSketch sketch({.taskId = 8});
    auto& sw = tb.sw(0);
    const auto grant = sw.sramAllocator().allocate(
        8, sketch.words(), core::StatNamespace::Sram);
    if (!grant) std::abort();
    sw.installHook(sketch.updateHook(grant->baseAddress()));
    std::uint64_t delivered = 0;
    tb.host(1).bindUdp(7000, [&](const host::UdpDatagram&) { ++delivered; });
    const std::vector<std::uint8_t> payload(1000, 0x42);
    constexpr std::uint64_t kBatch = 2'000;
    for (std::uint64_t done = 0; done < ops;) {
      const std::uint64_t n = std::min(kBatch, ops - done);
      for (std::uint64_t i = 0; i < n; ++i) {
        tb.host(0).sendUdp(tb.host(1).mac(), tb.host(1).ip(), 7000, 7000,
                           payload);
      }
      tb.sim().run();
      done += n;
    }
    if (delivered != ops) std::abort();
    if (sw.hookExecutions() < ops) std::abort();
  });
}

Metric benchSketchReadRtt() {
  return measure("sketch_read_rtt", 30'000, [](std::uint64_t ops) {
    host::Testbed tb;
    buildChain(tb, 1, host::LinkParams{10'000'000'000ULL, sim::Time::us(1)});
    const monitor::CountMinSketch sketch({.taskId = 8});
    auto& sw = tb.sw(0);
    const auto grant = sw.sramAllocator().allocate(
        8, sketch.words(), core::StatNamespace::Sram);
    if (!grant) std::abort();
    const auto program = sketch.readProbeProgram(
        grant->baseAddress(), /*switchId=*/1, /*flowHash=*/0x5bd1e995);
    std::uint64_t echoed = 0;
    tb.host(0).onTppResult([&](const core::ExecutedTpp&) { ++echoed; });
    constexpr std::uint64_t kBatch = 1'000;
    for (std::uint64_t done = 0; done < ops;) {
      const std::uint64_t n = std::min(kBatch, ops - done);
      for (std::uint64_t i = 0; i < n; ++i) {
        tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
      }
      tb.sim().run();
      done += n;
    }
    if (echoed != ops) std::abort();
  });
}

// ------------------------------------------------------------------------
// 6c. TCP transport hot paths (DESIGN.md §12). Three shapes: the
// handshake round trip (connection setup/teardown cost), bulk goodput
// over the same 3-switch chain as chain_udp_pps (per-byte streaming
// cost: segmentation, cumulative ACKs, cwnd growth), and RTO recovery
// (timer re-arm plus go-back-N retransmission when a wire goes dark
// mid-handshake). All three ride the --check gate like every other
// metric: ratios against the transit anchor must not drift.
// ------------------------------------------------------------------------

Metric benchTcpHandshake() {
  // One op = SYN -> SYN+ACK -> ACK -> FIN exchange, run to quiescence.
  // Connections stay alive to the end of the run: the destructor does not
  // unbind the UDP port, so tearing one down mid-run would leave a
  // dangling demux callback.
  return measure("tcp_handshake", 10'000, [](std::uint64_t ops) {
    host::Testbed tb;
    buildChain(tb, 1, host::LinkParams{10'000'000'000ULL, sim::Time::us(1)});
    host::TcpListener listener(tb.host(1), 23000);
    std::vector<std::unique_ptr<host::TcpConnection>> conns;
    conns.reserve(ops);
    std::uint64_t closed = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto& conn = *conns.emplace_back(
          std::make_unique<host::TcpConnection>(tb.host(0),
                                                host::TcpConnection::Config{}));
      conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000,
                   static_cast<std::uint16_t>(1024 + (i % 60000)), 0);
      tb.sim().run();
      if (conn.closedCleanly()) ++closed;
    }
    if (closed != ops) std::abort();
  });
}

Metric benchTcpGoodputChain() {
  // One op = one stream byte: a single 8 MB bulk transfer across the
  // chain, so the per-byte figure folds in segmentation, pattern
  // generation/verification, ACK processing and congestion growth.
  return measure("tcp_goodput_chain", 8'000'000, [](std::uint64_t ops) {
    host::Testbed tb;
    buildChain(tb, 3, host::LinkParams{10'000'000'000ULL, sim::Time::us(1)});
    host::TcpListener listener(tb.host(1), 23000);
    host::TcpConnection conn(tb.host(0), {});
    conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 40000, ops);
    tb.sim().run();
    if (!conn.closedCleanly()) std::abort();
    if (listener.deliveredBytes() != ops) std::abort();
  });
}

Metric benchTcpRtoRecovery() {
  // One op = one transfer whose SYN hits a dark wire: the link is down
  // for 120 us from connect, so the handshake only completes through the
  // RTO path (50 us initial, doubling once to the 100 us cap), then one
  // data segment and teardown flow normally. Exercises timer re-arm,
  // backoff, and the go-back-N resend that every chaos scenario leans on.
  return measure("tcp_rto_recovery", 2'000, [](std::uint64_t ops) {
    host::Testbed tb;
    buildChain(tb, 1, host::LinkParams{10'000'000'000ULL, sim::Time::us(1)});
    sim::FaultInjector inj(tb.sim(), 1);
    auto& hole = inj.link("h0->sw0");
    tb.linkAt(0).aToB().setFaultState(&hole);
    host::TcpListener listener(tb.host(1), 23000);
    host::TcpConnection::Config cfg;
    cfg.initialRto = sim::Time::us(50);
    cfg.minRto = sim::Time::us(50);
    cfg.maxRto = sim::Time::us(100);
    std::vector<std::unique_ptr<host::TcpConnection>> conns;
    conns.reserve(ops);
    std::uint64_t recovered = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      hole.setDown(true);
      tb.sim().scheduleAt(tb.sim().now() + sim::Time::us(120),
                          [&] { hole.setDown(false); });
      auto& conn = *conns.emplace_back(
          std::make_unique<host::TcpConnection>(tb.host(0), cfg));
      conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000,
                   static_cast<std::uint16_t>(1024 + (i % 60000)), 1'000);
      tb.sim().run();
      if (conn.closedCleanly() && conn.rtoFires() > 0) ++recovered;
    }
    if (recovered != ops) std::abort();
  });
}

// ------------------------------------------------------------------------
// 7. Sharded runner: events/sec vs thread count on a k=8 fat tree (128
// hosts, 80 switches), 32 cross-pod paced flows through the core — the
// links partitionFatTree cuts. t1 is the single-threaded baseline (the
// ShardedSimulator 1-shard fast path IS the legacy loop); t2/t4 measure
// the conservative-lookahead window machinery plus real parallelism when
// cores are available. On a single-core box t2/t4 report the
// synchronization overhead honestly rather than a speedup.
// ------------------------------------------------------------------------

Metric benchShardScaling(std::size_t shards) {
  constexpr std::size_t k = 8;
  host::Testbed tb(host::partitionFatTree(k, shards));
  const auto ix = buildFatTree(
      tb, k, host::LinkParams{10'000'000'000ULL, sim::Time::us(1)});
  std::vector<std::unique_ptr<host::PacedFlow>> flows;
  std::uint16_t port = 20000;
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t e = 0; e < ix.radix(); ++e) {
      host::Host& dst = tb.host(ix.host((p + 1) % k, e, 1));
      host::FlowSpec spec;
      spec.dstMac = dst.mac();
      spec.dstIp = dst.ip();
      spec.srcPort = port;
      spec.dstPort = port;
      ++port;
      spec.payloadBytes = 1000;
      spec.rateBps = 100e6;
      flows.push_back(std::make_unique<host::PacedFlow>(
          tb.host(ix.host(p, e, 0)), spec, flows.size() + 1));
      flows.back()->start(sim::Time::zero());
    }
  }
  const auto allocs0 = g_allocCount.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  tb.run(sim::Time::ms(40));
  const auto t1 = std::chrono::steady_clock::now();
  const auto allocs1 = g_allocCount.load(std::memory_order_relaxed);
  for (auto& f : flows) f->stop();
  const std::uint64_t events = tb.sharded().eventsExecuted();
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  Metric m;
  m.name = "shard_events_per_sec_t" + std::to_string(shards);
  m.ops = events;
  m.nsPerOp = ns / static_cast<double>(events);
  m.opsPerSec = m.nsPerOp > 0 ? 1e9 / m.nsPerOp : 0;
  m.allocsPerOp =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(events);
  std::printf("  %-28s %10.1f ns/op  %12.0f ops/s  %6.2f allocs/op\n",
              m.name.c_str(), m.nsPerOp, m.opsPerSec, m.allocsPerOp);
  return m;
}

// ------------------------------------------------------------------------
// 8. Declarative scenario runner on a k=16 fat tree (1024 hosts, 320
// switches): events/sec through the full runner path — parse-grade config,
// compiled Poisson web-search schedule, TCP flows, TPP controllers, queue
// samplers. A shortened slice of the `ctest -L scale` web-search scenario,
// single shard so the figure is the deterministic sequential path.
// ------------------------------------------------------------------------

Metric benchScenarioK16() {
  workload::ScenarioConfig c;
  c.name = "bench_k16";
  c.seed = 42;
  c.horizonMs = 1.0;
  c.topology = workload::TopologyType::FatTree;
  c.k = 16;
  c.linkGbps = 10.0;
  c.linkDelayUs = 2.0;
  c.bufferKb = 128;
  c.pattern = workload::TrafficPattern::Poisson;
  c.sizeDist = workload::FlowSizeDist::WebSearch;
  c.sizeScale = 0.02;
  c.flowsPerSec = 40'000;
  c.maxFlows = 100;
  c.participants = 128;
  c.mss = 1000;
  c.tppController = true;
  c.maxControllers = 32;
  c.queueSampleUs = 100.0;

  const auto allocs0 = g_allocCount.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  const auto run = workload::runScenario(c);
  const auto t1 = std::chrono::steady_clock::now();
  const auto allocs1 = g_allocCount.load(std::memory_order_relaxed);
  if (run.result.finished + run.result.failed != run.result.flows ||
      run.result.flows == 0) {
    std::abort();
  }
  const std::uint64_t events = run.result.eventsExecuted;
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  Metric m;
  m.name = "scale_k16_events_per_sec";
  m.ops = events;
  m.nsPerOp = ns / static_cast<double>(events);
  m.opsPerSec = m.nsPerOp > 0 ? 1e9 / m.nsPerOp : 0;
  m.allocsPerOp =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(events);
  std::printf("  %-28s %10.1f ns/op  %12.0f ops/s  %6.2f allocs/op\n",
              m.name.c_str(), m.nsPerOp, m.opsPerSec, m.allocsPerOp);
  return m;
}

// ------------------------------------------------------------------------
// JSON output
// ------------------------------------------------------------------------

void writeJson(const char* path, const std::vector<Metric>& metrics) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::perror("bench_core: fopen");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"core_hotpaths\",\n");
  std::fprintf(f, "  \"units\": {\"ns_per_op\": \"wall nanoseconds per "
                  "operation\", \"ops_per_sec\": \"operations per second\", "
                  "\"allocs_per_op\": \"heap allocations per operation\"},\n");
  std::fprintf(f, "  \"metrics\": {\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const auto& m = metrics[i];
    std::fprintf(f,
                 "    \"%s\": {\"ns_per_op\": %.2f, \"ops_per_sec\": %.0f, "
                 "\"allocs_per_op\": %.3f, \"ops\": %llu}%s\n",
                 m.name.c_str(), m.nsPerOp, m.opsPerSec, m.allocsPerOp,
                 static_cast<unsigned long long>(m.ops),
                 i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

// ------------------------------------------------------------------------
// Baseline comparison (--check BENCH_core.json): the perf-regression gate.
//
// Wall-clock differs across machines, so times are compared as ratios
// against the link_transit_1500B anchor from the *same* run: a metric
// regresses when (metric / anchor) grows past kTimeTolerance times the
// baseline's ratio. Allocation counts are machine-independent and gated
// absolutely. shard t2/t4 depend on the runner's core count, so only
// their allocation counts are gated.
// ------------------------------------------------------------------------

constexpr double kTimeTolerance = 1.75;
constexpr double kAllocSlack = 0.5;

// Pulls "<name>": {"ns_per_op": X, ..., "allocs_per_op": Y out of the
// baseline file — the JSON is our own writeJson output, so a string scan
// is a complete parser for it.
bool baselineFor(const std::string& json, const std::string& name,
                 double& nsPerOp, double& allocsPerOp) {
  const auto key = "\"" + name + "\": {";
  const auto at = json.find(key);
  if (at == std::string::npos) return false;
  const auto end = json.find('}', at);
  const std::string entry = json.substr(at, end - at);
  const auto ns = entry.find("\"ns_per_op\": ");
  const auto al = entry.find("\"allocs_per_op\": ");
  if (ns == std::string::npos || al == std::string::npos) return false;
  nsPerOp = std::strtod(entry.c_str() + ns + 13, nullptr);
  allocsPerOp = std::strtod(entry.c_str() + al + 17, nullptr);
  return true;
}

int checkAgainstBaseline(const std::vector<Metric>& metrics,
                         const char* path) {
  std::string json;
  {
    FILE* f = std::fopen(path, "rb");
    if (!f) {
      std::fprintf(stderr, "bench_core: cannot read baseline %s\n", path);
      return 2;
    }
    char buf[4096];
    for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
      json.append(buf, n);
    }
    std::fclose(f);
  }
  double anchorBase = 0;
  double anchorAllocs = 0;
  const Metric* anchor = nullptr;
  for (const auto& m : metrics) {
    if (m.name == "link_transit_1500B") anchor = &m;
  }
  if (anchor == nullptr ||
      !baselineFor(json, "link_transit_1500B", anchorBase, anchorAllocs)) {
    std::fprintf(stderr, "bench_core: baseline %s lacks the anchor metric\n",
                 path);
    return 2;
  }
  int failures = 0;
  std::size_t compared = 0;
  for (const auto& m : metrics) {
    double baseNs = 0;
    double baseAllocs = 0;
    if (!baselineFor(json, m.name, baseNs, baseAllocs)) {
      std::printf("  %-28s (new metric, no baseline — skipped)\n",
                  m.name.c_str());
      continue;
    }
    ++compared;
    if (m.allocsPerOp > baseAllocs + kAllocSlack) {
      std::fprintf(stderr,
                   "FAIL: %s allocs/op %.3f exceeds baseline %.3f + %.1f\n",
                   m.name.c_str(), m.allocsPerOp, baseAllocs, kAllocSlack);
      ++failures;
    }
    const bool threadDependent = m.name == "shard_events_per_sec_t2" ||
                                 m.name == "shard_events_per_sec_t4";
    if (threadDependent || m.name == "link_transit_1500B") continue;
    const double ratio = m.nsPerOp / anchor->nsPerOp;
    const double baseRatio = baseNs / anchorBase;
    if (ratio > baseRatio * kTimeTolerance) {
      std::fprintf(stderr,
                   "FAIL: %s at %.2fx the transit anchor vs %.2fx in the "
                   "baseline (tolerance %.2fx)\n",
                   m.name.c_str(), ratio, baseRatio, kTimeTolerance);
      ++failures;
    }
  }
  std::printf("baseline check: %zu metrics compared against %s, %d "
              "regression%s\n",
              compared, path, failures, failures == 1 ? "" : "s");
  return failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_core.json";
  const char* baseline = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else {
      out = argv[i];
    }
  }
  std::printf("core hot-path microbenchmarks\n");
  std::vector<Metric> metrics;
  metrics.push_back(benchEventScheduleFire());
  metrics.push_back(benchEventCancel());
  metrics.push_back(benchPacketMake());
  metrics.push_back(benchPacketClone());
  metrics.push_back(benchLinkTransit());
  metrics.push_back(benchFaultCheck("fault_check_unarmed", false));
  metrics.push_back(benchFaultCheck("fault_check_armed_zero", true));
  metrics.push_back(benchTraceCheck("trace_check_off", false));
  metrics.push_back(benchTraceCheck("trace_check_on", true));
  metrics.push_back(benchTraceRecord());
  for (auto& m : benchTcpuOpcodes()) metrics.push_back(std::move(m));
  for (auto& m : benchVerify()) metrics.push_back(std::move(m));
  metrics.push_back(benchChainUdp());
  metrics.push_back(benchChainTppProbes());
  metrics.push_back(benchOracleCheck("oracle_check_off", false));
  metrics.push_back(benchOracleCheck("oracle_check_on", true));
  metrics.push_back(benchSketchUpdate());
  metrics.push_back(benchSketchReadRtt());
  metrics.push_back(benchTcpHandshake());
  metrics.push_back(benchTcpGoodputChain());
  metrics.push_back(benchTcpRtoRecovery());
  for (std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    metrics.push_back(benchShardScaling(t));
  }
  metrics.push_back(benchScenarioK16());
  writeJson(out, metrics);
  std::printf("wrote %s (%zu metrics)\n", out, metrics.size());

  // Self-gate: with tracing compiled in but disarmed, the transit path must
  // cost the same as the plain transit benchmark (the trace sites are one
  // never-taken branch each). 1.25x absorbs scheduler noise in CI; a real
  // regression (ring store on the disarmed path, say) blows well past it.
  const auto find = [&](const char* name) -> const Metric* {
    for (const auto& m : metrics) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };
  const Metric* transit = find("link_transit_1500B");
  const Metric* off = find("trace_check_off");
  if (transit != nullptr && off != nullptr &&
      off->nsPerOp > transit->nsPerOp * 1.25) {
    std::fprintf(stderr,
                 "FAIL: trace_check_off %.1f ns/op exceeds 1.25x "
                 "link_transit_1500B %.1f ns/op — disarmed tracing is not "
                 "free\n",
                 off->nsPerOp, transit->nsPerOp);
    return 1;
  }

  // Same discipline for the SRAM race oracle: a probe round trip with the
  // oracle compiled in but disarmed must cost what the plain TPP probe
  // round trip costs — each scratch access adds one never-taken null check.
  const Metric* probe = find("chain_tpp_probe_rtt");
  const Metric* oracleOff = find("oracle_check_off");
  if (probe != nullptr && oracleOff != nullptr &&
      oracleOff->nsPerOp > probe->nsPerOp * 1.25) {
    std::fprintf(stderr,
                 "FAIL: oracle_check_off %.1f ns/op exceeds 1.25x "
                 "chain_tpp_probe_rtt %.1f ns/op — disarmed race oracle is "
                 "not free\n",
                 oracleOff->nsPerOp, probe->nsPerOp);
    return 1;
  }

  // The steady-state probe round trip is allocation-free end to end: the
  // prober clones a prebuilt frame from the packet pool, and the echo path
  // parses into reused host scratch. Gate it absolutely — allocation
  // counts are machine-independent, and a fresh vector anywhere on the
  // serialize/parse/echo path shows up as allocs/op >= 1 immediately.
  if (probe != nullptr && probe->allocsPerOp > 0.5) {
    std::fprintf(stderr,
                 "FAIL: chain_tpp_probe_rtt at %.3f allocs/op — the probe "
                 "echo path must not allocate in steady state\n",
                 probe->allocsPerOp);
    return 1;
  }

  if (baseline != nullptr) return checkAgainstBaseline(metrics, baseline);
  return 0;
}
