// §4 related-work comparison: "There have been numerous efforts to expose
// switch statistics through the dataplane… One example is ECN… Another
// example is IP Record Route… Instead of anticipating future requirements
// and designing specific solutions, we adopt a more generic approach."
//
// Same network, same congestion event (one overloaded hop out of four),
// three in-band visibility mechanisms:
//   ECN           1 bit/packet: congestion happened *somewhere*
//   Record Route  path only: where packets went, nothing about queues
//   TPP           programmable: which hop, how deep, in bytes — and the
//                 same packet could carry any other query tomorrow
// We report what each mechanism actually observed.
#include <cstdio>

#include "src/apps/microburst.hpp"
#include "src/apps/ndb.hpp"
#include "src/host/flow.hpp"
#include "src/host/topology.hpp"

int main() {
  using namespace tpp;

  constexpr std::uint64_t kRate = 100'000'000;
  host::Testbed tb;
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 1 << 20;
  cfg.ecnThresholdBytes = 30'000;
  buildChain(tb, 4, host::LinkParams{kRate, sim::Time::us(10)}, cfg);
  // Congest hop 2.
  auto& xsrc = tb.addHost();
  tb.link(xsrc, 0, tb.sw(2), 2, 1'000'000'000, sim::Time::us(1));
  tb.installAllRoutes();
  host::FlowSpec xspec;
  xspec.dstMac = tb.host(1).mac();
  xspec.dstIp = tb.host(1).ip();
  xspec.rateBps = 1.3 * kRate;
  host::PacedFlow cross(xsrc, xspec, 42);
  cross.start(sim::Time::zero());

  // The monitored flow: h0 -> h1 at modest rate, carrying (a) ECN-capable
  // IP, (b) a trace TPP (stands in for IP Record Route), measured at the
  // receiver; (c) plus a parallel queue-probe TPP stream.
  int rxPackets = 0, ceMarked = 0;
  tb.host(1).bindUdp(20000, [&](const host::UdpDatagram& d) {
    ++rxPackets;
    if (d.ecn == net::kEcnCe) ++ceMarked;
  });
  apps::TraceCollector traces(tb.host(1));
  host::FlowSpec spec;
  spec.dstMac = tb.host(1).mac();
  spec.dstIp = tb.host(1).ip();
  spec.rateBps = 5e6;
  host::PacedFlow flow(tb.host(0), spec, 1);
  const auto traceProgram = apps::makeTraceProgram(6);
  flow.setPacketHook([&](net::Packet& p) {
    core::insertTppShim(p, traceProgram);
  });

  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = tb.host(1).mac();
  mcfg.dstIp = tb.host(1).ip();
  mcfg.interval = sim::Time::us(500);
  apps::MicroburstMonitor monitor(tb.host(0), mcfg);

  flow.start(sim::Time::zero());
  monitor.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(60));
  cross.stop();
  flow.stop();
  monitor.stop();
  tb.sim().run(tb.sim().now() + sim::Time::sec(2));

  std::printf("== §4: in-band visibility mechanisms, one congested hop ==\n");
  std::printf("4-hop path, hop 2 overloaded at 130%%; ECN threshold 30 KB\n\n");

  // ECN view.
  const double markRate =
      rxPackets ? 100.0 * ceMarked / rxPackets : 0.0;
  std::printf("ECN:          %d/%d packets CE-marked (%.0f%%) -> "
              "\"congestion somewhere on the path\"\n",
              ceMarked, rxPackets, markRate);

  // Record-Route view (path identity only).
  std::size_t hops = 0;
  if (!traces.traces().empty()) hops = traces.traces().back().hops.size();
  std::printf("RecordRoute:  path = ");
  if (!traces.traces().empty()) {
    for (const auto& hop : traces.traces().back().hops) {
      std::printf("sw%u ", hop.switchId);
    }
  }
  std::printf("(%zu hops) -> \"where packets went\", no congestion info\n",
              hops);

  // TPP view.
  std::printf("TPP:          per-hop mean queue bytes = ");
  double peak = 0;
  std::size_t peakHop = 0;
  for (std::size_t h = 0; h < monitor.hopsObserved(); ++h) {
    const auto& s = monitor.hopSeries(h);
    const double mean = s.meanOver(sim::Time::zero(), sim::Time::sec(1));
    std::printf("%.0f ", mean);
    if (mean > peak) {
      peak = mean;
      peakHop = h;
    }
  }
  std::printf("-> \"hop %zu is congested, ~%.0f KB deep\"\n", peakHop,
              peak / 1e3);

  std::printf("\nper-packet overhead: ECN 0 B (reuses IP header), "
              "RecordRoute-TPP %zu B, queue-probe TPP %zu B\n",
              apps::tppTraceBytesPerPacket(4),
              apps::makeQueueProbeProgram(6).wireBytes());

  const bool shapeHolds = markRate > 20.0 && hops == 4 && peakHop == 2 &&
                          peak > 30'000;
  std::printf("\nshape (ECN says 'somewhere', TPP says 'hop 2, this deep')"
              ": %s\n", shapeHolds ? "yes" : "NO");
  return shapeHolds ? 0 : 1;
}
