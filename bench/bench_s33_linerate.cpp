// §3.3 feasibility analysis: "A 64-port 10GbE switch has to process about
// a billion 64-byte-packets/second to operate at line-rate" (§1 fn 2), and
// TPP execution must hide inside a ~300 ns cut-through latency.
//
// Two views:
//  (a) measured — our software TCPU interpreter's packets/s and
//      instructions/s (google-benchmark), i.e. what a software dataplane
//      achieves per core;
//  (b) modelled — the hardware TCPU budget: per-port packet arrival rate
//      at 64 B vs the pipeline's 1-instruction/cycle throughput.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/net/ethernet.hpp"
#include "src/tcpu/tcpu.hpp"

namespace {

using namespace tpp;

class FlatMemory final : public tcpu::AddressSpace {
 public:
  std::uint32_t value = 42;
  ReadResult read(std::uint16_t, std::uint16_t) override {
    return ReadResult::ok(value);
  }
  core::Fault write(std::uint16_t, std::uint32_t v, std::uint16_t) override {
    value = v;
    return core::Fault::None;
  }
};

void InterpreterThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::ProgramBuilder b;
  for (std::size_t i = 0; i < n; ++i) b.push(core::addr::QueueBytes);
  b.reserve(static_cast<std::uint8_t>(n));
  const auto program = *b.build();
  auto packet = core::buildTppFrame(net::MacAddress::fromIndex(1),
                                    net::MacAddress::fromIndex(2), program);
  const std::size_t off = net::kEthernetHeaderSize;
  const std::vector<std::uint8_t> pristine(
      packet->bytes().begin() + static_cast<std::ptrdiff_t>(off),
      packet->bytes().end());
  FlatMemory mem;
  tcpu::Tcpu tcpu;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    std::copy(pristine.begin(), pristine.end(),
              packet->bytes().begin() + static_cast<std::ptrdiff_t>(off));
    auto view = core::TppView::at(*packet, off);
    const auto report = tcpu.execute(*view, mem);
    benchmark::DoNotOptimize(report.cycles);
    ++packets;
  }
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(packets), benchmark::Counter::kIsRate);
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(packets * n), benchmark::Counter::kIsRate);
}
BENCHMARK(InterpreterThroughput)->Arg(1)->Arg(5)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== §3.3: line-rate feasibility ==\n\n");
  std::printf("-- modelled hardware budget --\n");
  const double pktNs64B10G = (64 + 24) * 8 / 10.0;  // ns between 64B pkts
  std::printf("64 B packets @ 10 GbE: one packet per %.1f ns per port\n",
              pktNs64B10G);
  std::printf("64-port switch: %.2f Gpkt/s aggregate (the paper's ~1 "
              "billion pkt/s)\n", 64 / pktNs64B10G);
  tpp::tcpu::CycleModel model;
  for (const std::size_t n : {1, 5, 16}) {
    const double ns = model.nanos(n);
    std::printf("TCPU %2zu-instr TPP: %.0f ns @1 GHz -> %s per-port "
                "line rate (needs <= %.1f ns steady-state)\n",
                n, ns,
                static_cast<double>(n) <= pktNs64B10G ? "sustains"
                                                      : "exceeds",
                pktNs64B10G);
  }
  std::printf("(steady-state cost is N cycles/packet at 1 instr/cycle; the "
              "4-cycle latency pipelines away, §3.3)\n\n");
  std::printf("-- measured software interpreter --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
