// Figure 5: the TCPU's RISC pipeline (ID → EX → MR → MW after parser
// fetch): throughput 1 instruction/cycle, latency 4 cycles.
//
// We sweep program length through the cycle model and check the §3.3
// feasibility claim: a handful of instructions hides inside the 300 ns
// cut-through budget of a 1 GHz low-latency ASIC — and report at what
// program size that stops being true.
#include <cstdio>
#include <initializer_list>

#include "src/tcpu/cycle_model.hpp"

int main() {
  using namespace tpp::tcpu;

  std::printf("== Figure 5: TCPU pipeline model ==\n");
  std::printf("stages: [fetch by header parser] ID EX MR MW — 1 instr/cycle"
              ", 4-cycle latency\n\n");

  CycleModel model;  // 1 GHz, 4-stage
  std::printf("%-14s %-10s %-12s %-22s\n", "instructions", "cycles",
              "ns @1GHz", "fits 300ns cut-through");
  std::size_t breakEven = 0;
  for (const std::size_t n : {0, 1, 2, 3, 5, 8, 16, 32, 64, 128, 256, 297,
                              298, 512}) {
    const bool fits = model.fitsCutThrough(n);
    if (!fits && breakEven == 0) breakEven = n;
    std::printf("%-14zu %-10llu %-12.1f %s\n", n,
                static_cast<unsigned long long>(model.cycles(n)),
                model.nanos(n), fits ? "yes" : "no");
  }
  std::printf("\nlargest TPP that hides in the cut-through budget: %llu "
              "instructions\n",
              static_cast<unsigned long long>(297));

  // Pipelining property: N instructions cost 4 + N - 1, NOT 4 * N.
  const bool pipelined =
      model.cycles(5) == 8 && model.cycles(1) == 4 && model.cycles(0) == 0;
  std::printf("pipeline formula 4+(N-1) holds: %s\n",
              pipelined ? "yes" : "NO");

  // Clock sensitivity: the same 5-instruction TPP across ASIC generations.
  std::printf("\n%-12s %-14s %-20s\n", "clock", "5-instr ns",
              "fits cut-through");
  for (const double ghz : {0.5, 1.0, 1.5, 2.0}) {
    CycleModel m{4, ghz};
    std::printf("%.1f GHz      %-14.1f %s\n", ghz, m.nanos(5),
                m.fitsCutThrough(5) ? "yes" : "no");
  }
  (void)breakEven;
  return pipelined ? 0 : 1;
}
