// Ablation A4: the §2.1 payoff — "a detailed breakdown of queueing
// latencies on all network hops" — and the cost of visibility.
//
// Part 1: a 4-hop path with congestion injected at hop 2; the hop-mode
// profiler TPP attributes the latency to the right hop, per hop, from a
// single probe stream.
// Part 2: probe-rate sweep — time resolution and bandwidth overhead of the
// visibility as the probing interval varies (the knob an operator turns).
#include <cstdio>

#include "src/apps/latency_profiler.hpp"
#include "src/host/flow.hpp"
#include "src/host/topology.hpp"

int main() {
  using namespace tpp;

  constexpr std::uint64_t kRate = 100'000'000;  // 100 Mb/s path

  std::printf("== Ablation A4: per-hop latency breakdown ==\n");
  {
    host::Testbed tb;
    asic::SwitchConfig cfg;
    cfg.bufferPerQueueBytes = 1 << 20;
    buildChain(tb, 4, host::LinkParams{kRate, sim::Time::us(10)}, cfg);
    // Congest hop 2 (sw2's egress): cross traffic at 140% of line rate.
    auto& xsrc = tb.addHost();
    tb.link(xsrc, 0, tb.sw(2), 2, 1'000'000'000, sim::Time::us(1));
    tb.installAllRoutes();
    host::FlowSpec xspec;
    xspec.dstMac = tb.host(1).mac();
    xspec.dstIp = tb.host(1).ip();
    xspec.rateBps = 1.4 * kRate;
    host::PacedFlow cross(xsrc, xspec, 42);
    cross.start(sim::Time::zero());

    apps::LatencyProfiler::Config pcfg;
    pcfg.dstMac = tb.host(1).mac();
    pcfg.dstIp = tb.host(1).ip();
    pcfg.interval = sim::Time::ms(1);
    apps::LatencyProfiler profiler(tb.host(0), pcfg);
    profiler.start(sim::Time::zero());
    tb.sim().run(sim::Time::ms(50));
    cross.stop();
    profiler.stop();
    tb.sim().run(tb.sim().now() + sim::Time::sec(2));

    std::printf("4-hop path, hop 2 congested at 140%% load; %llu probes\n\n",
                static_cast<unsigned long long>(profiler.resultsReceived()));
    std::printf("%-6s %-10s %-18s %-18s %-14s\n", "hop", "switch",
                "queue delay (us)", "segment delay (us)", "queue (KB)");
    for (std::size_t h = 0; h < profiler.hopsObserved(); ++h) {
      const auto& r = profiler.hop(h);
      std::printf("%-6zu %-10u %-18.1f %-18.1f %-14.1f\n", h, r.switchId,
                  r.queueDelayUs.mean(), r.segmentDelayUs.mean(),
                  r.queueBytes.mean() / 1e3);
    }
    const bool attributed =
        profiler.hopsObserved() == 4 &&
        profiler.hop(2).queueDelayUs.mean() >
            10 * (profiler.hop(0).queueDelayUs.mean() + 1.0);
    std::printf("\ncongestion attributed to hop 2: %s\n\n",
                attributed ? "yes" : "NO");
    if (!attributed) return 1;
  }

  std::printf("-- probe-interval sweep: visibility vs overhead --\n");
  std::printf("%-14s %-18s %-20s %-18s\n", "interval", "samples in 50ms",
              "probe bw (wire B/s)", "per-hop samples/ms");
  const auto program = apps::makeLatencyProbeProgram(4);
  const std::size_t probeWire =
      net::kEthernetHeaderSize + program.wireBytes() + 50 +
      net::kEthernetWireOverhead;  // + inner IP/UDP (min frame) + overhead
  for (const std::int64_t us : {100, 500, 1000, 5000, 10000}) {
    host::Testbed tb;
    buildChain(tb, 4, host::LinkParams{kRate, sim::Time::us(10)});
    apps::LatencyProfiler::Config pcfg;
    pcfg.dstMac = tb.host(1).mac();
    pcfg.dstIp = tb.host(1).ip();
    pcfg.interval = sim::Time::us(us);
    pcfg.maxHops = 4;
    apps::LatencyProfiler profiler(tb.host(0), pcfg);
    profiler.start(sim::Time::zero());
    tb.sim().run(sim::Time::ms(50));
    profiler.stop();
    tb.sim().run(tb.sim().now() + sim::Time::sec(1));
    const double bwBps = static_cast<double>(probeWire) * 1e6 /
                         static_cast<double>(us);
    char label[24];
    std::snprintf(label, sizeof label, "%lld us", static_cast<long long>(us));
    std::printf("%-14s %-18llu %-20.0f %-18.2f\n", label,
                static_cast<unsigned long long>(profiler.resultsReceived()),
                bwBps,
                static_cast<double>(profiler.resultsReceived()) / 50.0);
  }
  std::printf("\n(1 ms probing costs %.2f%% of a 100 Mb/s link for "
              "per-millisecond per-hop visibility)\n",
              static_cast<double>(probeWire) * 8 * 1e3 / 1e8 * 100.0);
  return 0;
}
