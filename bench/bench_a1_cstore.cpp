// Ablation A1: CSTORE's linearizable consistency (paper §2.2: "we support
// a conditional store instruction to provide a stronger (linearizable)
// notion of consistency for memory updates").
//
// N end-hosts concurrently increment one shared SRAM counter on a switch
// they all traverse, two ways:
//   naive  — LOAD the counter, increment locally, STORE it back (two TPPs:
//            a read probe, then a blind write) — the classic lost-update
//            race;
//   cstore — a single CSTORE TPP per attempt: compare-and-swap with retry.
// We report lost updates for each as the writer count grows.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/host/topology.hpp"

namespace {

using namespace tpp;

constexpr int kAttemptsPerWriter = 40;
const std::uint16_t kCounter = core::kSramBase;

// All writers target host pairs across a dumbbell, so every probe crosses
// the shared left switch (switch id 1) where the counter lives.
struct Fixture {
  host::Testbed tb;
  explicit Fixture(std::size_t writers) {
    buildDumbbell(tb, writers, host::LinkParams{1'000'000'000,
                                                sim::Time::us(10)},
                  host::LinkParams{1'000'000'000, sim::Time::us(10)});
  }
};

// Naive read-modify-write: issue a read probe; when it returns, issue a
// blind STORE of value+1. Concurrent writers interleave and lose updates.
struct NaiveWriter {
  host::Host& src;
  net::MacAddress dstMac;
  net::Ipv4Address dstIp;
  int attempts = 0;
  int writesIssued = 0;

  void fireRead() {
    core::ProgramBuilder b;
    b.cexec(core::addr::SwitchId, 0xffffffff, 1);
    b.push(kCounter);
    b.reserve(2);
    src.sendProbe(dstMac, dstIp, *b.build());
    ++attempts;
  }
  void onResult(const core::ExecutedTpp& t) {
    if (t.instructions.size() == 2 &&
        t.instructions[1].op == core::Opcode::Push) {
      // Read returned: blind-write value+1.
      const std::uint32_t seen = t.pmem[2];  // after the 2 CEXEC imms
      core::ProgramBuilder b;
      b.cexec(core::addr::SwitchId, 0xffffffff, 1);
      b.storeImm(kCounter, seen + 1);
      src.sendProbe(dstMac, dstIp, *b.build());
      ++writesIssued;
    } else if (t.instructions.size() == 2 &&
               t.instructions[1].op == core::Opcode::Store) {
      if (attempts < kAttemptsPerWriter) fireRead();
    }
  }
};

// CSTORE loop: retry from the observed value on a failed swap.
struct CstoreWriter {
  host::Host& src;
  net::MacAddress dstMac;
  net::Ipv4Address dstIp;
  std::uint32_t lastSeen = 0;
  int attempts = 0;
  int successes = 0;

  void fire() {
    core::ProgramBuilder b;
    b.cexec(core::addr::SwitchId, 0xffffffff, 1);
    b.cstore(kCounter, lastSeen, lastSeen + 1);
    src.sendProbe(dstMac, dstIp, *b.build());
    ++attempts;
  }
  void onResult(const core::ExecutedTpp& t) {
    if (t.instructions.size() != 2 ||
        t.instructions[1].op != core::Opcode::Cstore) {
      return;
    }
    const std::uint32_t observed = t.pmem[t.instructions[1].pmemOff];
    if (observed == lastSeen) {
      ++successes;
      ++lastSeen;
    } else {
      lastSeen = observed;
    }
    if (attempts < kAttemptsPerWriter) fire();
  }
};

struct Row {
  std::size_t writers;
  int naiveLost;
  int cstoreLost;
  int cstoreRetries;
};

Row runOnce(std::size_t writers) {
  Row row{writers, 0, 0, 0};

  {  // naive
    Fixture f(writers);
    std::vector<std::unique_ptr<NaiveWriter>> ws;
    for (std::size_t i = 0; i < writers; ++i) {
      ws.push_back(std::make_unique<NaiveWriter>(NaiveWriter{
          f.tb.host(i), f.tb.host(writers + i).mac(),
          f.tb.host(writers + i).ip()}));
      auto* w = ws.back().get();
      f.tb.host(i).onTppResult(
          [w](const core::ExecutedTpp& t) { w->onResult(t); });
    }
    for (auto& w : ws) w->fireRead();
    f.tb.sim().run();
    int issued = 0;
    for (auto& w : ws) issued += w->writesIssued;
    const auto counter = *f.tb.sw(0).scratchRead(kCounter);
    row.naiveLost = issued - static_cast<int>(counter);
  }

  {  // cstore
    Fixture f(writers);
    std::vector<std::unique_ptr<CstoreWriter>> ws;
    for (std::size_t i = 0; i < writers; ++i) {
      ws.push_back(std::make_unique<CstoreWriter>(CstoreWriter{
          f.tb.host(i), f.tb.host(writers + i).mac(),
          f.tb.host(writers + i).ip()}));
      auto* w = ws.back().get();
      f.tb.host(i).onTppResult(
          [w](const core::ExecutedTpp& t) { w->onResult(t); });
    }
    for (auto& w : ws) w->fire();
    f.tb.sim().run();
    int successes = 0, attempts = 0;
    for (auto& w : ws) {
      successes += w->successes;
      attempts += w->attempts;
    }
    const auto counter = *f.tb.sw(0).scratchRead(kCounter);
    row.cstoreLost = successes - static_cast<int>(counter);
    row.cstoreRetries = attempts - successes;
  }
  return row;
}

}  // namespace

int main() {
  std::printf("== Ablation A1: concurrent writers, STORE vs CSTORE ==\n");
  std::printf("each writer performs %d increments of one shared SRAM "
              "word\n\n", kAttemptsPerWriter);
  std::printf("%-10s %-18s %-18s %-16s\n", "writers", "naive lost-updates",
              "cstore lost-updates", "cstore retries");
  bool ok = true;
  for (const std::size_t writers : {1, 2, 4, 8}) {
    const auto row = runOnce(writers);
    std::printf("%-10zu %-18d %-18d %-16d\n", row.writers, row.naiveLost,
                row.cstoreLost, row.cstoreRetries);
    ok = ok && row.cstoreLost == 0;
    if (writers > 1) ok = ok && row.naiveLost > 0;
  }
  std::printf("\nshape (CSTORE never loses updates; naive RMW does under "
              "contention): %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
