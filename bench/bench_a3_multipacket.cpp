// Ablation A3: multi-packet TPPs (paper §3.2: "End-hosts can use multiple
// packets if a single packet is insufficient for a network task").
//
// Task: collect 10 statistics per hop over a 6-switch path. Under a
// deliberately small per-TPP packet-memory cap this cannot fit in one
// packet, so the end-host shards the statistics across several probes
// (each carrying the switch id as a join key) and reassembles the full
// per-hop table. We verify the reassembled view is complete and
// consistent, and account the byte cost of sharding.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/host/collector.hpp"
#include "src/host/topology.hpp"

namespace {

using namespace tpp;
namespace addr = core::addr;

constexpr std::size_t kHops = 6;

// The statistics the task wants, per hop. SwitchId is the join key and is
// re-collected in every shard.
const std::uint16_t kWantedStats[] = {
    addr::QueueBytes,     addr::QueuePackets,     addr::PortQueueBytes,
    addr::TxBytes,        addr::TxPackets,        addr::RxUtilization,
    addr::TxUtilization,  addr::LinkCapacityMbps, addr::InputPort,
};
constexpr std::size_t kStatsPerHop = std::size(kWantedStats) + 1;  // + id

// Shards `kWantedStats` so each probe's packet memory stays under
// `pmemCapWords`, returns one collect program per shard.
std::vector<core::Program> shardPrograms(std::size_t pmemCapWords) {
  std::vector<core::Program> out;
  const std::size_t wordsPerStatAllHops = kHops;  // one word per hop
  // Each shard spends: (1 join key + S stats) * kHops words.
  const std::size_t maxStatsPerShard =
      pmemCapWords / wordsPerStatAllHops - 1;
  std::size_t i = 0;
  while (i < std::size(kWantedStats)) {
    core::ProgramBuilder b;
    b.push(addr::SwitchId);
    std::size_t inShard = 0;
    while (i < std::size(kWantedStats) && inShard < maxStatsPerShard) {
      b.push(kWantedStats[i]);
      ++i;
      ++inShard;
    }
    b.reserve(static_cast<std::uint8_t>((inShard + 1) * kHops));
    out.push_back(*b.build());
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Ablation A3: multi-packet TPPs ==\n");
  std::printf("task: %zu statistics per hop over %zu hops = %zu words — "
              "sharded under different per-TPP memory caps\n\n",
              kStatsPerHop, kHops, kStatsPerHop * kHops);

  std::printf("%-16s %-8s %-16s %-14s %-12s %-10s\n", "pmem cap (words)",
              "probes", "bytes per probe", "total bytes", "complete",
              "consistent");

  bool allOk = true;
  for (const std::size_t cap : {255, 36, 24, 18, 12}) {
    host::Testbed tb;
    buildChain(tb, kHops, host::LinkParams{1'000'000'000, sim::Time::us(5)});
    const auto programs = shardPrograms(cap);

    // joined[hop][statAddr] = value; switch ids checked across shards.
    std::map<std::size_t, std::map<std::uint16_t, std::uint32_t>> joined;
    std::map<std::size_t, std::uint32_t> joinKey;
    bool consistent = true;

    // One shared handler: attribute each echo to its shard by matching the
    // returned program's instructions.
    tb.host(0).onTppResult([&](const core::ExecutedTpp& t) {
      const std::size_t perHop = t.instructions.size();
      const auto records = host::splitStackRecords(t, perHop);
      for (std::size_t h = 0; h < records.size(); ++h) {
        const std::uint32_t sw = records[h][0];
        if (const auto it = joinKey.find(h);
            it != joinKey.end() && it->second != sw) {
          consistent = false;  // shards disagree about the path
        }
        joinKey[h] = sw;
        for (std::size_t v = 1; v < perHop; ++v) {
          joined[h][t.instructions[v].addr] = records[h][v];
        }
      }
    });

    std::size_t totalBytes = 0;
    for (const auto& program : programs) {
      tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
      totalBytes += program.wireBytes();
      tb.sim().run(tb.sim().now() + sim::Time::ms(1));
    }
    tb.sim().run();

    bool complete = joined.size() == kHops;
    for (std::size_t h = 0; h < kHops && complete; ++h) {
      complete = joined[h].size() == std::size(kWantedStats);
    }
    std::printf("%-16zu %-8zu %-16zu %-14zu %-12s %-10s\n", cap,
                programs.size(),
                programs.empty() ? 0 : programs[0].wireBytes(), totalBytes,
                complete ? "yes" : "NO", consistent ? "yes" : "NO");
    allOk = allOk && complete && consistent;
  }

  std::printf("\nsharded collection stays complete and path-consistent "
              "under every cap: %s\n", allOk ? "yes" : "NO");
  return allOk ? 0 : 1;
}
