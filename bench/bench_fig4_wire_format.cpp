// Figure 4 + §3.3 overheads: the TPP wire format.
//
//   "Restricting TPPs to (say) five instructions per-packet requires only
//    20 bytes of instruction overhead and up to 60 bytes of output space"
//   "if each instruction accesses 8-byte values in the packet, we require
//    only 40 bytes of packet memory per hop"
//
// We reproduce the byte accounting exactly, sweep it over instruction
// counts and path lengths, and round-trip the encoding to prove the format
// is self-describing.
#include <cstdio>

#include "src/core/assembler.hpp"
#include "src/core/program.hpp"
#include "src/net/ethernet.hpp"

int main() {
  using namespace tpp;

  std::printf("== Figure 4: TPP wire format ==\n");
  std::printf("layout: Ethernet(14) | TPP header(%zu) | instructions(4/ea) "
              "| packet memory(4/word) | payload\n",
              core::kTppHeaderSize);
  std::printf("header fields: lengths, addressing mode, hop/SP, per-hop "
              "size, fault, inner ethertype, task id\n\n");

  // §3.3 headline numbers.
  std::printf("-- §3.3 overhead accounting --\n");
  std::printf("%-14s %-20s %-22s %-14s\n", "instructions",
              "instr bytes", "pmem bytes (5 hops)", "total TPP");
  for (const std::size_t instrs : {1, 2, 3, 5, 8, 16}) {
    core::ProgramBuilder b;
    for (std::size_t i = 0; i < instrs; ++i) b.push(core::addr::QueueBytes);
    // One 4-byte word per instruction per hop, 5 hops (datacenter max 5-7).
    b.reserve(static_cast<std::uint8_t>(instrs * 5));
    const auto p = *b.build();
    std::printf("%-14zu %-20zu %-22zu %-14zu\n", instrs,
                instrs * core::kInstructionSize,
                static_cast<std::size_t>(p.pmemWords) * core::kWordSize,
                p.wireBytes());
  }
  {
    core::ProgramBuilder b;
    for (int i = 0; i < 5; ++i) b.push(core::addr::QueueBytes);
    b.reserve(25);
    const auto p = *b.build();
    const bool instr20 = p.instructions.size() * core::kInstructionSize == 20;
    std::printf("\npaper check: 5 instructions = 20 B instruction overhead: "
                "%s\n", instr20 ? "yes" : "NO");
    // 8-byte values = 2 words/instruction/hop.
    const std::size_t bytesPerHop8B = 5 * 8;
    std::printf("paper check: 5 instr x 8 B values = %zu B packet memory "
                "per hop: %s\n", bytesPerHop8B,
                bytesPerHop8B == 40 ? "yes" : "NO");
  }

  // Per-hop growth for the three bundled tasks.
  std::printf("\n-- per-task TPP sizes --\n");
  std::printf("%-22s %-14s %-14s %-16s\n", "task", "instructions",
              "bytes @3 hops", "bytes @7 hops");
  struct Row {
    const char* name;
    std::size_t instrs;
    std::size_t wordsPerHop;
  };
  for (const Row& row : {Row{"microburst (S2.1)", 2, 2},
                         Row{"rcp* collect (S2.2)", 5, 5},
                         Row{"ndb trace (S2.3)", 3, 3}}) {
    auto size = [&](std::size_t hops) {
      return core::kTppHeaderSize + row.instrs * core::kInstructionSize +
             row.wordsPerHop * hops * core::kWordSize;
    };
    std::printf("%-22s %-14zu %-14zu %-16zu\n", row.name, row.instrs,
                size(3), size(7));
  }

  // Round-trip integrity: encode → parse → re-encode must be lossless.
  const char* source = R"(
      .mode hop
      .perhop 3
      .task 7
      .reserve 21
      LOAD [Switch:SwitchID], [Packet:hop[0]]
      LOAD [Queue:QueueSize], [Packet:hop[1]]
      LOAD [Link:RX-Utilization], [Packet:hop[2]]
  )";
  const auto program = std::get<core::Program>(core::assemble(source));
  auto frame = core::buildTppFrame(net::MacAddress::fromIndex(2),
                                   net::MacAddress::fromIndex(1), program,
                                   net::kEtherTypeIpv4);
  const auto executed = core::parseExecuted(*frame);
  const bool roundTrip = executed &&
                         executed->instructions == program.instructions &&
                         executed->header.perHopWords == 3 &&
                         executed->header.taskId == 7;
  std::printf("\nencode/decode round trip lossless: %s\n",
              roundTrip ? "yes" : "NO");
  return roundTrip ? 0 : 1;
}
