// Figure 2: "We compare a Linux router based implementation of RCP* and a
// simulation of the original RCP algorithm. We start one flow each at
// t=0s, t=10s and t=20s and we find that RCP* helps flows converge quickly
// to their fair share on the bottleneck link."
//
// Both systems run on the same simulated substrate:
//   RCP   — in-switch baseline: the router evaluates the control equation
//           and stamps packets (src/rcp/rcp_router).
//   RCP*  — end-host refactoring: per-flow controllers collect state with
//           TPPs, compute, and CEXEC-STORE the bottleneck register
//           (src/apps/rcpstar).
// Output: the R(t)/C series for both, plus per-epoch fair-share means
// (expected shape: ~1, ~1/2, ~1/3 as flows join at 0 s, 10 s, 20 s).
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/apps/rcpstar.hpp"
#include "src/core/memory_map.hpp"
#include "src/host/topology.hpp"
#include "src/rcp/rcp_router.hpp"

namespace {

using namespace tpp;

constexpr std::uint64_t kBottleneck = 10'000'000;  // 10 Mb/s
constexpr double kAlpha = 0.5;                     // Fig 2 parameters
constexpr double kBeta = 1.0;
constexpr double kRttSeconds = 0.05;
const sim::Time kPeriod = sim::Time::ms(50);
const sim::Time kRunFor = sim::Time::sec(30);

void setupTestbed(host::Testbed& tb) {
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 64 * 1024;
  cfg.utilizationWindow = sim::Time::ms(50);
  buildDumbbell(tb, 3, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{kBottleneck, sim::Time::ms(1)}, cfg);
  for (std::size_t s = 0; s < tb.switchCount(); ++s) {
    for (std::size_t p = 0; p < tb.sw(s).config().ports; ++p) {
      tb.sw(s).scratchWrite(
          core::addr::RcpRateRegister,
          static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(p) / 1000), p);
    }
  }
}

// Samples the bottleneck link's rate register every 100 ms.
void sampleRegister(host::Testbed& tb, sim::TimeSeries& series) {
  const auto rate =
      *tb.sw(0).scratchRead(core::addr::RcpRateRegister, /*port=*/3);
  series.add(tb.sim().now(), static_cast<double>(rate) * 1000.0 /
                                 static_cast<double>(kBottleneck));
  if (tb.sim().now() < kRunFor) {
    tb.sim().schedule(sim::Time::ms(100),
                      [&tb, &series] { sampleRegister(tb, series); });
  }
}

sim::TimeSeries runBaselineRcp() {
  host::Testbed tb;
  setupTestbed(tb);

  rcp::RcpRouter::Config rcfg;
  rcfg.params.alpha = kAlpha;
  rcfg.params.beta = kBeta;
  rcfg.params.rttSeconds = kRttSeconds;
  rcfg.period = kPeriod;
  rcfg.managedPorts = {3};
  rcp::RcpRouter router(tb.sw(0), rcfg);
  tb.sw(0).setEgressInterceptor(&router);
  router.start();

  struct GreedyFlow {
    std::unique_ptr<host::PacedFlow> flow;
  };
  std::vector<GreedyFlow> flows;
  for (std::size_t i = 0; i < 3; ++i) {
    host::FlowSpec spec;
    spec.dstMac = tb.host(3 + i).mac();
    spec.dstIp = tb.host(3 + i).ip();
    spec.srcPort = static_cast<std::uint16_t>(21000 + i);
    spec.dstPort = spec.srcPort;
    spec.rateBps = 100e3;
    GreedyFlow g;
    g.flow = std::make_unique<host::PacedFlow>(tb.host(i), spec, i + 1);
    g.flow->setPacketHook([](net::Packet& p) {
      const std::size_t off = net::kEthernetHeaderSize +
                              net::kIpv4HeaderSize + net::kUdpHeaderSize;
      rcp::RcpHeader h;
      h.write(p.span().subspan(off));
    });
    auto* flowPtr = g.flow.get();
    tb.host(3 + i).bindUdp(spec.dstPort,
                           [flowPtr](const host::UdpDatagram& d) {
                             if (const auto h = rcp::RcpHeader::parse(d.payload);
                                 h && h->rateKbps != 0xffffffff) {
                               flowPtr->setRateBps(h->rateKbps * 1000.0);
                             }
                           });
    g.flow->start(sim::Time::sec(static_cast<std::int64_t>(10 * i)));
    flows.push_back(std::move(g));
  }

  sim::TimeSeries series;
  sampleRegister(tb, series);
  tb.sim().run(kRunFor);
  return series;
}

sim::TimeSeries runRcpStar() {
  host::Testbed tb;
  setupTestbed(tb);

  struct Controlled {
    std::unique_ptr<host::PacedFlow> flow;
    std::unique_ptr<apps::RcpStarController> controller;
  };
  std::vector<Controlled> flows;
  for (std::size_t i = 0; i < 3; ++i) {
    host::FlowSpec spec;
    spec.dstMac = tb.host(3 + i).mac();
    spec.dstIp = tb.host(3 + i).ip();
    spec.srcPort = static_cast<std::uint16_t>(21000 + i);
    spec.dstPort = spec.srcPort;
    spec.rateBps = 100e3;
    Controlled c;
    c.flow = std::make_unique<host::PacedFlow>(tb.host(i), spec, i + 1);
    apps::RcpStarController::Config ccfg;
    ccfg.params.alpha = kAlpha;
    ccfg.params.beta = kBeta;
    ccfg.params.rttSeconds = kRttSeconds;
    ccfg.period = kPeriod;
    ccfg.dstMac = spec.dstMac;
    ccfg.dstIp = spec.dstIp;
    c.controller = std::make_unique<apps::RcpStarController>(tb.host(i),
                                                             *c.flow, ccfg);
    const auto startAt = sim::Time::sec(static_cast<std::int64_t>(10 * i));
    c.flow->start(startAt);
    c.controller->start(startAt);
    flows.push_back(std::move(c));
  }

  sim::TimeSeries series;
  sampleRegister(tb, series);
  tb.sim().run(kRunFor);
  return series;
}

double epochMean(const sim::TimeSeries& s, int fromSec, int toSec) {
  return s.meanOver(sim::Time::sec(fromSec), sim::Time::sec(toSec));
}

}  // namespace

int main() {
  std::printf("== Figure 2: RCP vs RCP*, R(t)/C on a 10 Mb/s bottleneck ==\n");
  std::printf("flows start at t = 0 s, 10 s, 20 s; alpha=0.5 beta=1\n\n");

  const auto baseline = runBaselineRcp();
  const auto star = runRcpStar();

  std::printf("t(s),RCP(in-switch)/C,RCP*(TPP+endhost)/C\n");
  for (std::size_t i = 0; i < baseline.points().size() &&
                          i < star.points().size();
       ++i) {
    std::printf("%.1f,%.3f,%.3f\n", baseline.points()[i].first.toSeconds(),
                baseline.points()[i].second, star.points()[i].second);
  }

  struct Epoch {
    int from, to;
    double fair;
  };
  const Epoch epochs[] = {{5, 10, 1.0}, {15, 20, 0.5}, {25, 30, 1.0 / 3}};
  std::printf("\n%-18s %-10s %-10s %-10s\n", "epoch", "fair", "RCP", "RCP*");
  bool shapeHolds = true;
  for (const auto& e : epochs) {
    const double b = epochMean(baseline, e.from, e.to);
    const double s = epochMean(star, e.from, e.to);
    std::printf("[%2d s, %2d s)       %-10.3f %-10.3f %-10.3f\n", e.from,
                e.to, e.fair, b, s);
    shapeHolds = shapeHolds && std::abs(b - e.fair) < 0.5 * e.fair &&
                 std::abs(s - e.fair) < 0.5 * e.fair;
  }
  std::printf("\nqualitative agreement (both track the fair share): %s\n",
              shapeHolds ? "yes" : "NO");
  return shapeHolds ? 0 : 1;
}
