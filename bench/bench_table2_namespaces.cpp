// Table 2: the unified memory-mapped statistics namespaces.
//
// We bring up a live 2-switch network with traffic, then read EVERY
// statistic in the standard memory map through an actual TPP and verify it
// against the switch's ground-truth registers. The printed table is
// Table 2 with one extra column: the value a TPP observed in the dataplane.
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/host/flow.hpp"
#include "src/host/collector.hpp"
#include "src/host/topology.hpp"

namespace {

using namespace tpp;

const char* namespaceName(core::StatNamespace ns) {
  switch (ns) {
    case core::StatNamespace::Switch: return "Per-Switch";
    case core::StatNamespace::Port: return "Per-Port";
    case core::StatNamespace::Queue: return "Per-Queue";
    case core::StatNamespace::PacketMeta: return "Per-Packet";
    case core::StatNamespace::PortScratch: return "Scratch(port)";
    case core::StatNamespace::Sram: return "Scratch(global)";
    case core::StatNamespace::Unmapped: return "?";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace tpp;

  host::Testbed tb;
  buildChain(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(5)});
  // Background traffic so counters are non-trivial.
  host::FlowSpec spec;
  spec.dstMac = tb.host(1).mac();
  spec.dstIp = tb.host(1).ip();
  spec.rateBps = 200e6;
  host::PacedFlow flow(tb.host(0), spec, 1);
  flow.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(50));

  const auto& map = core::MemoryMap::standard();

  // One probe per statistic (a single TPP could batch several, but one at
  // a time keeps attribution trivial).
  std::map<std::string, std::uint32_t> observed;
  std::size_t faults = 0;
  for (const auto& stat : map.all()) {
    core::ProgramBuilder b;
    b.push(stat.address);
    b.reserve(4);
    // Handlers accumulate on the host and outlive this loop iteration, so
    // per-probe state must be heap-shared, not stack-captured.
    auto done = std::make_shared<bool>(false);
    tb.host(0).onTppResult([&observed, &faults, done,
                            name = stat.name](const core::ExecutedTpp& t) {
      if (*done) return;
      const auto recs = host::splitStackRecords(t, 1);
      if (!recs.empty() && t.header.faultCode == core::Fault::None) {
        observed[name] = recs[0][0];  // value at the first hop
      } else {
        ++faults;
      }
      *done = true;
    });
    tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), *b.build());
    tb.sim().run(tb.sim().now() + sim::Time::ms(1));
  }
  flow.stop();
  tb.sim().run();

  std::printf("== Table 2: statistics namespaces, read via TPPs ==\n");
  std::printf("%-16s %-32s %-8s %-6s %-12s\n", "namespace", "statistic",
              "address", "mode", "TPP-read");
  for (const auto& stat : map.all()) {
    const auto it = observed.find(stat.name);
    char value[24] = "-";
    if (it != observed.end()) {
      std::snprintf(value, sizeof value, "%u", it->second);
    }
    std::printf("%-16s %-32s 0x%04x   %-6s %-12s\n",
                namespaceName(core::MemoryMap::namespaceOf(stat.address)),
                stat.name.c_str(), stat.address,
                stat.access == core::Access::ReadOnly ? "RO" : "RW", value);
  }

  // Ground-truth spot checks.
  const auto& sw0 = tb.sw(0);
  struct Check {
    const char* name;
    std::uint64_t expected;
  };
  const Check checks[] = {
      {"Switch:SwitchID", sw0.config().switchId},
      {"Switch:PortCount", sw0.config().ports},
      {"Link:CapacityMbps", sw0.portCapacityBps(1) / 1'000'000},
      {"PacketMetadata:InputPort", 0},
      {"PacketMetadata:OutputPort", 1},
      {"PacketMetadata:MatchedTable", 2},
  };
  std::size_t mismatches = 0;
  std::printf("\nground-truth spot checks at sw0:\n");
  for (const auto& c : checks) {
    const auto got = observed.count(c.name) ? observed.at(c.name) : ~0u;
    const bool ok = got == c.expected;
    if (!ok) ++mismatches;
    std::printf("  %-32s expected %-10llu observed %-10u %s\n", c.name,
                static_cast<unsigned long long>(c.expected), got,
                ok ? "ok" : "MISMATCH");
  }
  std::printf("\nstatistics readable: %zu/%zu, spot-check mismatches: %zu\n",
              observed.size(), map.all().size(), mismatches);
  return mismatches == 0 ? 0 : 1;
}
