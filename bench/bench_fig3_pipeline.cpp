// Figure 3: the switch ASIC dataplane pipeline
//   RX → header parser → L2/L3/TCAM lookup → TCPU → queues → scheduler → TX
//
// We time each software stage of our pipeline model per packet
// (google-benchmark), and report the modelled hardware budget per stage to
// show where the TCPU sits and that it adds no serialization bottleneck —
// the Fig 3 claim that TPP execution happens "just before the packet is
// stored in memory", pipelined with the rest.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/asic/parser.hpp"
#include "src/asic/tables.hpp"
#include "src/core/program.hpp"
#include "src/host/topology.hpp"
#include "src/tcpu/tcpu.hpp"

namespace {

using namespace tpp;

net::PacketPtr makeTppPacket() {
  core::ProgramBuilder b;
  b.push(core::addr::SwitchId);
  b.push(core::addr::QueueBytes);
  b.push(core::addr::InputPort);
  b.push(core::addr::MatchedEntryId);
  b.push(core::addr::TxUtilization);
  b.reserve(40);
  auto program = *b.build();
  std::vector<std::uint8_t> payload(net::kIpv4HeaderSize +
                                    net::kUdpHeaderSize);
  net::Ipv4Header ip;
  ip.totalLength = static_cast<std::uint16_t>(payload.size());
  ip.src = net::Ipv4Address::forHost(1);
  ip.dst = net::Ipv4Address::forHost(2);
  ip.write(payload);
  net::UdpHeader udp{7, 7, net::kUdpHeaderSize};
  udp.write(std::span(payload).subspan(net::kIpv4HeaderSize));
  return core::buildTppFrame(net::MacAddress::fromIndex(2),
                             net::MacAddress::fromIndex(1), program,
                             net::kEtherTypeIpv4, payload);
}

void StageParse(benchmark::State& state) {
  auto packet = makeTppPacket();
  for (auto _ : state) {
    auto parsed = asic::parsePacket(*packet);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(StageParse);

void StageL2Lookup(benchmark::State& state) {
  asic::L2Table l2;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    l2.add(net::MacAddress::fromIndex(i), i % 48);
  }
  const auto dst = net::MacAddress::fromIndex(512);
  for (auto _ : state) {
    auto r = l2.match(dst);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(StageL2Lookup);

void StageL3Lookup(benchmark::State& state) {
  asic::L3LpmTable l3;
  for (std::uint32_t i = 0; i < 512; ++i) {
    l3.add(net::Ipv4Address::forHost(i * 7), 32, i % 48);
  }
  l3.add(net::Ipv4Address{0}, 0, 0);
  const auto dst = net::Ipv4Address::forHost(7 * 100);
  for (auto _ : state) {
    auto r = l3.match(dst);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(StageL3Lookup);

void StageTcamLookup(benchmark::State& state) {
  asic::Tcam tcam;
  for (std::uint32_t i = 0; i < 128; ++i) {
    asic::TcamKey k;
    k.ipDst = {net::Ipv4Address::forHost(i), 32};
    tcam.add(k, asic::TcamAction{i % 48}, static_cast<std::int32_t>(i));
  }
  asic::Tcam::PacketFields f;
  f.dstMac = net::MacAddress::fromIndex(1);
  f.etherType = net::kEtherTypeIpv4;
  f.ipDst = net::Ipv4Address::forHost(64);
  f.ipProto = net::kIpProtoUdp;
  for (auto _ : state) {
    auto r = tcam.match(f);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(StageTcamLookup);

// The full pipeline, end to end, through a real switch: receive → … → TX.
void StageFullSwitch(benchmark::State& state) {
  host::Testbed tb;
  buildChain(tb, 1, host::LinkParams{100'000'000'000ULL, sim::Time::ns(1)});
  auto packet = makeTppPacket();
  // Address the frame properly for the testbed hosts.
  net::EthernetHeader eth{tb.host(1).mac(), tb.host(0).mac(),
                          net::kEtherTypeTpp};
  eth.write(packet->span());
  std::uint64_t processed = 0;
  for (auto _ : state) {
    auto clone = packet->clone();
    tb.sw(0).receive(std::move(clone), 0);
    tb.sim().run();  // drain scheduler events
    ++processed;
  }
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(processed), benchmark::Counter::kIsRate);
}
BENCHMARK(StageFullSwitch);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 3: dataplane pipeline stages ==\n");
  std::printf("stage order: RX PHY -> parser -> L2/L3/TCAM -> TCPU -> "
              "memory/queues -> scheduler -> TX PHY\n");
  std::printf("modelled hardware budgets (1 GHz ASIC, 64 B @ 10 GbE/port "
              "=> ~67 ns/packet/port):\n");
  tpp::tcpu::CycleModel model;
  std::printf("  TCPU, 5-instruction TPP: %llu cycles = %.0f ns, "
              "pipelined behind lookup (fits cut-through budget: %s)\n\n",
              static_cast<unsigned long long>(model.cycles(5)),
              model.nanos(5), model.fitsCutThrough(5) ? "yes" : "no");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
