// Figure 1: "Visualizing the execution of a TPP that queries the network
// for queue sizes."
//
// A PUSH [Queue:QueueSize] TPP walks a 3-switch chain whose middle and last
// hops carry cross-traffic, so the three snapshots differ. We print the
// packet-memory/stack-pointer evolution the figure draws:
//
//   SP = 0x4   [0x00]
//   SP = 0x8   [0x00, 0xa0]
//   SP = 0xc   [0x00, 0xa0, 0x0e]
//
// Numbers differ from the paper's illustrative constants; the *shape* —
// one in-situ queue snapshot appended per hop — is the reproduced result.
#include <cstdio>

#include "src/apps/microburst.hpp"
#include "src/core/assembler.hpp"
#include "src/host/collector.hpp"
#include "src/host/flow.hpp"
#include "src/host/topology.hpp"

int main() {
  using namespace tpp;

  host::Testbed tb;
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 1 << 20;
  buildChain(tb, 3, host::LinkParams{100'000'000, sim::Time::us(5)}, cfg);

  // Cross traffic: a second pair of hosts hanging off sw1 and sw2 pushes
  // bursts through the probe's path so hops 1 and 2 have standing queues.
  auto& xsrc = tb.addHost();
  tb.link(xsrc, 0, tb.sw(1), 2, 1'000'000'000, sim::Time::us(1));
  tb.installAllRoutes();
  host::FlowSpec xspec;
  xspec.dstMac = tb.host(1).mac();
  xspec.dstIp = tb.host(1).ip();
  xspec.rateBps = 150e6;  // 1.5x the 100 Mb/s path: queues grow
  host::PacedFlow cross(xsrc, xspec, 42);
  cross.start(sim::Time::zero());

  const auto program = apps::makeQueueProbeProgram(3);
  std::printf("TPP under test:\n%s\n",
              core::disassemble(program).c_str());

  std::optional<core::ExecutedTpp> result;
  tb.host(0).onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  tb.sim().schedule(sim::Time::ms(5), [&] {
    tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
  });
  tb.sim().run(sim::Time::ms(20));
  cross.stop();
  tb.sim().run();

  if (!result) {
    std::printf("probe lost (queues overflowed) — rerun with more buffer\n");
    return 1;
  }

  // Reconstruct the hop-by-hop view of Fig 1 from the final packet memory:
  // each hop appended (switch id, queue bytes).
  const auto records = host::splitStackRecords(*result, 2);
  std::printf("packet memory evolution (as in Fig 1):\n");
  std::printf("  at the sender     SP = 0x0   []\n");
  std::size_t sp = 0;
  std::string contents;
  for (std::size_t h = 0; h < records.size(); ++h) {
    sp += 2 * core::kWordSize;
    char buf[64];
    std::snprintf(buf, sizeof buf, "sw%u:q=%uB", records[h][0],
                  records[h][1]);
    if (!contents.empty()) contents += ", ";
    contents += buf;
    std::printf("  after hop %zu       SP = 0x%zx  [%s]\n", h + 1, sp,
                contents.c_str());
  }

  std::printf("\nper-hop queue snapshot (bytes): ");
  for (const auto& rec : records) std::printf("%u ", rec[1]);
  std::printf("\nexpected shape: hop0 ~0 (uncongested), hop1 (where the "
              "150%%-load cross traffic joins) queued deep\n");
  const bool shapeHolds =
      records.size() == 3 && records[1][1] > records[0][1] &&
      records[1][1] > 10'000;
  std::printf("shape holds: %s\n", shapeHolds ? "yes" : "NO");
  return shapeHolds ? 0 : 1;
}
