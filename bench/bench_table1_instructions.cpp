// Table 1: the TPP instruction set. For every opcode we report
//   (a) software-interpreter cost (google-benchmark ns/op), and
//   (b) the modelled TCPU cost (pipeline cycles / ns at 1 GHz),
// demonstrating that each instruction "executes within the time budget for
// handling small sized packets at line-rate".
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "src/core/program.hpp"
#include "src/net/ethernet.hpp"
#include "src/tcpu/tcpu.hpp"

namespace {

using namespace tpp;

class BenchMemory final : public tcpu::AddressSpace {
 public:
  std::map<std::uint16_t, std::uint32_t> words;
  ReadResult read(std::uint16_t address, std::uint16_t) override {
    const auto it = words.find(address);
    if (it == words.end()) {
      return ReadResult::fail(core::Fault::UnmappedAddress);
    }
    return ReadResult::ok(it->second);
  }
  core::Fault write(std::uint16_t address, std::uint32_t value,
                    std::uint16_t) override {
    words[address] = value;
    return core::Fault::None;
  }
};

core::Program programFor(core::Opcode op) {
  core::ProgramBuilder b;
  switch (op) {
    case core::Opcode::Nop: b.raw({core::Opcode::Nop, 0, 0}); break;
    case core::Opcode::Push: b.push(0x1000); break;
    case core::Opcode::Pop: b.push(0x1000); b.pop(0x1000); break;
    case core::Opcode::Load: b.load(0x1000, 0); break;
    case core::Opcode::Store: b.storeImm(0x1000, 7); break;
    case core::Opcode::Cstore: b.cstore(0x1000, 0, 1); break;
    case core::Opcode::Cexec: b.cexec(0x1000, 0xffffffff, 7); break;
    case core::Opcode::Add: b.add(0x1000, b.imm(0)); break;
    case core::Opcode::Sub: b.sub(0x1000, b.imm(0)); break;
    case core::Opcode::Min: b.minOp(0x1000, b.imm(0)); break;
    case core::Opcode::Max: b.maxOp(0x1000, b.imm(0)); break;
  }
  b.reserve(8);
  return *b.build();
}

void runOpcode(benchmark::State& state, core::Opcode op) {
  const auto program = programFor(op);
  auto packet = core::buildTppFrame(net::MacAddress::fromIndex(1),
                                    net::MacAddress::fromIndex(2), program);
  BenchMemory mem;
  mem.words[0x1000] = 7;
  tcpu::Tcpu tcpu;
  const std::size_t headerOff = net::kEthernetHeaderSize;
  // Snapshot of the pristine TPP body, restored each iteration so SP/hop
  // never overflow.
  const std::vector<std::uint8_t> pristine(
      packet->bytes().begin() + static_cast<std::ptrdiff_t>(headerOff),
      packet->bytes().end());

  std::uint64_t instructions = 0;
  for (auto _ : state) {
    std::copy(pristine.begin(), pristine.end(),
              packet->bytes().begin() +
                  static_cast<std::ptrdiff_t>(headerOff));
    auto view = core::TppView::at(*packet, headerOff);
    const auto report = tcpu.execute(*view, mem);
    benchmark::DoNotOptimize(report.executed);
    instructions += report.executed;
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
  state.counters["tcpu_cycles"] = static_cast<double>(
      tcpu.cycleModel().cycles(program.instructions.size()));
  state.counters["tcpu_ns@1GHz"] =
      tcpu.cycleModel().nanos(program.instructions.size());
}

}  // namespace

BENCHMARK_CAPTURE(runOpcode, LOAD, tpp::core::Opcode::Load);
BENCHMARK_CAPTURE(runOpcode, PUSH, tpp::core::Opcode::Push);
BENCHMARK_CAPTURE(runOpcode, STORE, tpp::core::Opcode::Store);
BENCHMARK_CAPTURE(runOpcode, POP, tpp::core::Opcode::Pop);
BENCHMARK_CAPTURE(runOpcode, CSTORE, tpp::core::Opcode::Cstore);
BENCHMARK_CAPTURE(runOpcode, CEXEC, tpp::core::Opcode::Cexec);
BENCHMARK_CAPTURE(runOpcode, ADD, tpp::core::Opcode::Add);
BENCHMARK_CAPTURE(runOpcode, SUB, tpp::core::Opcode::Sub);
BENCHMARK_CAPTURE(runOpcode, MIN, tpp::core::Opcode::Min);
BENCHMARK_CAPTURE(runOpcode, MAX, tpp::core::Opcode::Max);
BENCHMARK_CAPTURE(runOpcode, NOP, tpp::core::Opcode::Nop);

int main(int argc, char** argv) {
  std::printf("== Table 1: TPP instruction set ==\n");
  std::printf("%-8s %s\n", "LOAD,PUSH", "copy values from switch to packet");
  std::printf("%-8s %s\n", "STORE,POP", "copy values from packet to switch");
  std::printf("%-8s %s\n", "CSTORE", "conditional store (atomic update)");
  std::printf("%-8s %s\n", "CEXEC",
              "conditionally execute subsequent instructions");
  std::printf("plus arithmetic: ADD SUB MIN MAX (\"simple arithmetic\", §1)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
