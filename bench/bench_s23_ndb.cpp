// §2.3 experiment: the forwarding-plane debugger.
//
// Two results: (a) detection — TPP traces catch every injected
// control/dataplane divergence across a batch of scenarios; (b) overhead —
// in-band TPP tracing vs the original ndb's truncated packet copies, per
// path length (the paper's motivation for "without requiring the network
// to create additional packet copies").
#include <cstdio>

#include "src/apps/ndb.hpp"
#include "src/host/topology.hpp"

namespace {

using namespace tpp;

struct Scenario {
  const char* name;
  // Mutates the network behind the control plane's back; returns the
  // divergence kind the debugger must report.
  apps::IntentStore::DivergenceKind (*inject)(host::Testbed&);
};

apps::IntentStore::DivergenceKind injectStale(host::Testbed& tb) {
  tb.sw(1).l3().add(tb.host(1).ip(), 32, 1);  // silent refresh, new version
  return apps::IntentStore::DivergenceKind::StaleVersion;
}

apps::IntentStore::DivergenceKind injectHijack(host::Testbed& tb) {
  asic::TcamKey k;
  k.ipDst = {tb.host(1).ip(), 32};
  tb.sw(2).tcam().add(k, asic::TcamAction{1}, 1000);
  return apps::IntentStore::DivergenceKind::WrongEntry;
}

apps::IntentStore::DivergenceKind injectDetour(host::Testbed& tb) {
  // A shadow switch is spliced between sw0 and sw2 and sw0's route flips
  // to it: packets now visit a switch the control plane never intended.
  auto& alt = tb.addSwitch({}, "shadow");
  tb.link(alt, 0, tb.sw(0), 2, 1'000'000'000, sim::Time::us(5));
  tb.link(alt, 1, tb.sw(2), 2, 1'000'000'000, sim::Time::us(5));
  alt.l3().add(tb.host(1).ip(), 32, 1);
  tb.sw(0).l3().add(tb.host(1).ip(), 32, 2);
  return apps::IntentStore::DivergenceKind::WrongSwitch;
}

}  // namespace

int main() {
  using namespace tpp;

  std::printf("== §2.3: forwarding-plane debugger ==\n\n");

  // --------------------------------------------------- (a) detection
  const Scenario scenarios[] = {
      {"silent rule refresh (stale version)", injectStale},
      {"rogue TCAM hijack (wrong entry)", injectHijack},
      {"detour through a shadow switch (wrong switch)", injectDetour},
  };
  std::printf("%-42s %-10s %-18s\n", "injected fault", "detected",
              "reported as");
  std::size_t detected = 0;
  for (const auto& s : scenarios) {
    host::Testbed tb;
    buildChain(tb, 4, host::LinkParams{1'000'000'000, sim::Time::us(5)});
    apps::IntentStore intent;
    std::vector<apps::IntentStore::ExpectedHop> path;
    for (std::size_t i = 0; i < tb.switchCount(); ++i) {
      path.push_back({tb.sw(i).config().switchId,
                      tb.sw(i).l3().match(tb.host(1).ip())->entryId});
    }
    intent.setExpectedPath(path);
    apps::TraceCollector collector(tb.host(1));

    const auto expectedKind = s.inject(tb);
    tb.host(0).sendUdpWithTpp(tb.host(1).mac(), tb.host(1).ip(), 5000, 5000,
                              {}, apps::makeTraceProgram());
    tb.sim().run();

    bool hit = false;
    std::string kinds;
    if (collector.count() == 1) {
      for (const auto& d : intent.check(collector.traces()[0])) {
        if (!kinds.empty()) kinds += ",";
        kinds += apps::divergenceKindName(d.kind);
        hit = hit || d.kind == expectedKind;
      }
    }
    detected += hit ? 1 : 0;
    std::printf("%-42s %-10s %-18s\n", s.name, hit ? "yes" : "NO",
                kinds.c_str());
  }

  // Control: a clean network reports nothing.
  {
    host::Testbed tb;
    buildChain(tb, 4, host::LinkParams{1'000'000'000, sim::Time::us(5)});
    apps::IntentStore intent;
    std::vector<apps::IntentStore::ExpectedHop> path;
    for (std::size_t i = 0; i < tb.switchCount(); ++i) {
      path.push_back({tb.sw(i).config().switchId,
                      tb.sw(i).l3().match(tb.host(1).ip())->entryId});
    }
    intent.setExpectedPath(path);
    apps::TraceCollector collector(tb.host(1));
    tb.host(0).sendUdpWithTpp(tb.host(1).mac(), tb.host(1).ip(), 5000, 5000,
                              {}, apps::makeTraceProgram());
    tb.sim().run();
    const bool clean = collector.count() == 1 &&
                       intent.check(collector.traces()[0]).empty();
    std::printf("%-42s %-10s\n", "no fault (control)",
                clean ? "clean" : "FALSE-POSITIVE");
    detected += clean ? 1 : 0;
  }

  // --------------------------------------------------- (b) overhead
  std::printf("\nper-packet tracing overhead, TPP in-band vs truncated "
              "copies (64 B copy + 42 B encapsulation):\n");
  std::printf("%-8s %-14s %-16s %-8s\n", "hops", "TPP bytes",
              "ndb-copy bytes", "ratio");
  apps::NdbCopyOverheadModel copies;
  for (std::size_t hops = 1; hops <= 7; ++hops) {
    const auto tppBytes = apps::tppTraceBytesPerPacket(hops);
    const auto copyBytes = copies.bytesPerPacket(hops);
    std::printf("%-8zu %-14zu %-16zu %.1fx\n", hops, tppBytes, copyBytes,
                static_cast<double>(copyBytes) /
                    static_cast<double>(tppBytes));
  }

  const bool allDetected = detected == 4;
  std::printf("\nall scenarios detected, no false positives: %s\n",
              allDetected ? "yes" : "NO");
  return allDetected ? 0 : 1;
}
