// Ablation A2: why bother refactoring RCP at all? (§2.2's motivation:
// "RCP is a congestion control algorithm that rapidly allocates link
// capacity to help flows finish quickly", vs TCP-style AIMD.)
//
// Scenario: one flow owns a 10 Mb/s bottleneck; at t=5 s a second flow
// joins. We measure how long the newcomer needs to reach 80% of its fair
// share (C/2) under four controllers on the identical substrate:
//   AIMD        no network support (loss-driven sawtooth)
//   DCTCP       ECN marks (the §4 fixed-function baseline)
//   RCP         in-switch baseline
//   RCP*        TPP + end-host refactoring
// Expected shape: both RCP variants converge in a few control periods;
// AIMD needs many RTTs of additive climb and keeps oscillating.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/apps/aimd.hpp"
#include "src/apps/dctcp.hpp"
#include "src/apps/rcpstar.hpp"
#include "src/core/memory_map.hpp"
#include "src/host/topology.hpp"
#include "src/rcp/rcp_router.hpp"

namespace {

using namespace tpp;

constexpr std::uint64_t kBottleneck = 10'000'000;
const sim::Time kJoinAt = sim::Time::sec(5);
const sim::Time kRunFor = sim::Time::sec(25);

void setup(host::Testbed& tb, std::uint64_t ecnThresholdBytes = 0) {
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 64 * 1024;
  cfg.utilizationWindow = sim::Time::ms(50);
  cfg.ecnThresholdBytes = ecnThresholdBytes;
  buildDumbbell(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{kBottleneck, sim::Time::ms(1)}, cfg);
  for (std::size_t s = 0; s < tb.switchCount(); ++s) {
    for (std::size_t p = 0; p < tb.sw(s).config().ports; ++p) {
      tb.sw(s).scratchWrite(
          core::addr::RcpRateRegister,
          static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(p) / 1000), p);
    }
  }
}

host::FlowSpec specFor(host::Testbed& tb, std::size_t pair) {
  host::FlowSpec spec;
  spec.dstMac = tb.host(2 + pair).mac();
  spec.dstIp = tb.host(2 + pair).ip();
  spec.srcPort = static_cast<std::uint16_t>(21000 + pair);
  spec.dstPort = spec.srcPort;
  spec.rateBps = 100e3;
  return spec;
}

// Seconds after kJoinAt until the series stays >= threshold for 3
// consecutive samples; NaN when it never settles.
double settleTime(const sim::TimeSeries& s, double thresholdBps) {
  int streak = 0;
  for (const auto& [t, v] : s.points()) {
    if (t < kJoinAt) continue;
    streak = v >= thresholdBps ? streak + 1 : 0;
    if (streak >= 3) return (t - kJoinAt).toSeconds();
  }
  return std::nan("");
}

double runAimd() {
  host::Testbed tb;
  setup(tb);
  host::PacedFlow f1(tb.host(0), specFor(tb, 0), 1);
  host::PacedFlow f2(tb.host(1), specFor(tb, 1), 2);
  apps::AimdController::Config acfg;
  acfg.rtt = sim::Time::ms(50);
  acfg.additiveBps = 100e3;
  apps::AimdController c1(f1, tb.host(2), acfg);
  apps::AimdController c2(f2, tb.host(3), acfg);
  c1.start(sim::Time::zero());
  c2.start(kJoinAt);
  tb.sim().run(kRunFor);
  const double settle = settleTime(c2.rateSeries(), 0.8 * kBottleneck / 2);
  c1.stop();
  c2.stop();
  return settle;
}

double runDctcp() {
  host::Testbed tb;
  setup(tb, /*ecnThresholdBytes=*/15'000);
  host::PacedFlow f1(tb.host(0), specFor(tb, 0), 1);
  host::PacedFlow f2(tb.host(1), specFor(tb, 1), 2);
  apps::DctcpController::Config dcfg;
  dcfg.rtt = sim::Time::ms(50);
  dcfg.additiveBps = 100e3;
  apps::DctcpController c1(f1, tb.host(2), dcfg);
  apps::DctcpController c2(f2, tb.host(3), dcfg);
  c1.start(sim::Time::zero());
  c2.start(kJoinAt);
  tb.sim().run(kRunFor);
  const double settle = settleTime(c2.rateSeries(), 0.8 * kBottleneck / 2);
  c1.stop();
  c2.stop();
  return settle;
}

double runRcpBaseline() {
  host::Testbed tb;
  setup(tb);
  rcp::RcpRouter::Config rcfg;
  rcfg.params.rttSeconds = 0.05;
  rcfg.period = sim::Time::ms(50);
  rcfg.managedPorts = {2};
  rcp::RcpRouter router(tb.sw(0), rcfg);
  tb.sw(0).setEgressInterceptor(&router);
  router.start();

  std::vector<std::unique_ptr<host::PacedFlow>> flows;
  sim::TimeSeries newcomer;
  for (std::size_t i = 0; i < 2; ++i) {
    auto spec = specFor(tb, i);
    flows.push_back(std::make_unique<host::PacedFlow>(tb.host(i), spec,
                                                      i + 1));
    flows[i]->setPacketHook([](net::Packet& p) {
      const std::size_t off = net::kEthernetHeaderSize +
                              net::kIpv4HeaderSize + net::kUdpHeaderSize;
      rcp::RcpHeader h;
      h.write(p.span().subspan(off));
    });
    auto* flowPtr = flows[i].get();
    tb.host(2 + i).bindUdp(spec.dstPort,
                           [flowPtr](const host::UdpDatagram& d) {
                             if (const auto h = rcp::RcpHeader::parse(d.payload);
                                 h && h->rateKbps != 0xffffffff) {
                               flowPtr->setRateBps(h->rateKbps * 1000.0);
                             }
                           });
  }
  flows[0]->start(sim::Time::zero());
  flows[1]->start(kJoinAt);
  // Sample the newcomer's achieved rate.
  std::function<void()> sample = [&] {
    newcomer.add(tb.sim().now(), flows[1]->rateBps());
    if (tb.sim().now() < kRunFor) {
      tb.sim().schedule(sim::Time::ms(100), sample);
    }
  };
  sample();
  tb.sim().run(kRunFor);
  return settleTime(newcomer, 0.8 * kBottleneck / 2);
}

double runRcpStar() {
  host::Testbed tb;
  setup(tb);
  struct Entry {
    std::unique_ptr<host::PacedFlow> flow;
    std::unique_ptr<apps::RcpStarController> controller;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < 2; ++i) {
    auto spec = specFor(tb, i);
    Entry e;
    e.flow = std::make_unique<host::PacedFlow>(tb.host(i), spec, i + 1);
    apps::RcpStarController::Config ccfg;
    ccfg.params.rttSeconds = 0.05;
    ccfg.period = sim::Time::ms(50);
    ccfg.dstMac = spec.dstMac;
    ccfg.dstIp = spec.dstIp;
    e.controller = std::make_unique<apps::RcpStarController>(tb.host(i),
                                                             *e.flow, ccfg);
    entries.push_back(std::move(e));
  }
  entries[0].flow->start(sim::Time::zero());
  entries[0].controller->start(sim::Time::zero());
  entries[1].flow->start(kJoinAt);
  entries[1].controller->start(kJoinAt);
  tb.sim().run(kRunFor);
  return settleTime(entries[1].controller->rateSeries(),
                    0.8 * kBottleneck / 2);
}

}  // namespace

int main() {
  std::printf("== Ablation A2: convergence of a late-joining flow ==\n");
  std::printf("10 Mb/s bottleneck; flow 2 joins at t=5 s; time to hold "
              ">=80%% of fair share (C/2):\n\n");
  const double aimd = runAimd();
  const double dctcp = runDctcp();
  const double rcp = runRcpBaseline();
  const double star = runRcpStar();
  std::printf("%-24s %-14s\n", "controller", "settle time");
  auto row = [](const char* name, double s) {
    if (std::isnan(s)) {
      std::printf("%-24s %-14s\n", name, "never");
    } else {
      std::printf("%-24s %.1f s\n", name, s);
    }
  };
  row("AIMD (no net support)", aimd);
  row("DCTCP (ECN marks)", dctcp);
  row("RCP (in-switch)", rcp);
  row("RCP* (TPP + end-host)", star);

  const bool shapeHolds = !std::isnan(rcp) && !std::isnan(star) &&
                          (std::isnan(aimd) || (rcp < aimd && star < aimd));
  std::printf("\nshape (RCP and RCP* beat AIMD to fair share): %s\n",
              shapeHolds ? "yes" : "NO");
  return shapeHolds ? 0 : 1;
}
