// §2.1 experiment: micro-burst detection.
//
// "Queue occupancy fluctuations due to small-timescale congestion are hard
//  to detect… Today's monitoring mechanisms operate only on timescales
//  that are 10s of seconds at best."
//
// Workload: 16:1 incast bursts every 10 ms against a shallow buffer.
// We sweep the observer's sampling interval from per-100 µs TPP probes to
// second-scale control-plane polling and report burst-detection recall —
// the figure-style series this section implies.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/apps/microburst.hpp"
#include "src/host/topology.hpp"
#include "src/workload/generators.hpp"

int main() {
  using namespace tpp;

  constexpr std::size_t kSenders = 16;
  constexpr double kThresholdBytes = 150'000.0;

  host::Testbed tb;
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 1 << 20;
  buildStar(tb, kSenders, host::LinkParams{1'000'000'000, sim::Time::us(2)},
            cfg);
  auto& receiver = tb.host(kSenders);

  workload::IncastBurst::Config icfg;
  icfg.dstMac = receiver.mac();
  icfg.dstIp = receiver.ip();
  icfg.burstBytes = 40'000;  // 16 x 40 KB = 640 KB offered per round
  icfg.period = sim::Time::ms(10);
  std::vector<host::Host*> senders;
  for (std::size_t i = 0; i < kSenders; ++i) senders.push_back(&tb.host(i));
  workload::IncastBurst incast(senders, icfg);
  incast.start(sim::Time::ms(1));

  // TPP monitor at 100 µs.
  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = receiver.mac();
  mcfg.dstIp = receiver.ip();
  mcfg.interval = sim::Time::us(100);
  apps::MicroburstMonitor monitor(tb.host(0), mcfg);
  monitor.start(sim::Time::zero());

  // Control-plane pollers at increasing intervals; plus a 10 µs ground
  // truth.
  const sim::Time pollIntervals[] = {sim::Time::ms(1), sim::Time::ms(10),
                                     sim::Time::ms(100), sim::Time::sec(1)};
  std::vector<std::unique_ptr<apps::ControlPlanePoller>> pollers;
  for (const auto interval : pollIntervals) {
    pollers.push_back(std::make_unique<apps::ControlPlanePoller>(
        tb.sw(0), kSenders, 0, interval));
    pollers.back()->start(sim::Time::zero());
  }
  apps::ControlPlanePoller truth(tb.sw(0), kSenders, 0, sim::Time::us(10));
  truth.start(sim::Time::zero());

  tb.sim().run(sim::Time::sec(5));
  monitor.stop();
  incast.stop();
  for (auto& p : pollers) p->stop();
  truth.stop();
  tb.sim().run();

  const auto reference = apps::detectBursts(truth.series(), kThresholdBytes);
  std::printf("== §2.1: micro-burst detection recall ==\n");
  std::printf("workload: %zu:1 incast, %llu B/sender every %.0f ms; "
              "threshold %.0f KB; %zu true bursts in 5 s\n\n",
              kSenders, static_cast<unsigned long long>(icfg.burstBytes),
              icfg.period.toMillis(), kThresholdBytes / 1e3,
              reference.size());
  std::printf("%-28s %-12s %-10s\n", "observer", "bursts-seen", "recall");

  const auto viaTpp = apps::detectBursts(monitor.hopSeries(0), kThresholdBytes);
  const double tppRecall = apps::detectionRecall(reference, viaTpp);
  std::printf("%-28s %-12zu %-10.2f\n", "TPP probes @ 100us", viaTpp.size(),
              tppRecall);
  double worstCoarse = 1.0;
  for (std::size_t i = 0; i < pollers.size(); ++i) {
    const auto bursts =
        apps::detectBursts(pollers[i]->series(), kThresholdBytes);
    const double recall = apps::detectionRecall(reference, bursts);
    if (pollIntervals[i] >= sim::Time::ms(100)) {
      worstCoarse = std::min(worstCoarse, recall);
    }
    char label[40];
    std::snprintf(label, sizeof label, "polling @ %.0f ms",
                  pollIntervals[i].toMillis());
    std::printf("%-28s %-12zu %-10.2f\n", label, bursts.size(), recall);
  }

  const bool shapeHolds = tppRecall >= 0.9 && worstCoarse <= 0.3;
  std::printf("\nshape (TPP ~1.0, coarse polling near 0): %s\n",
              shapeHolds ? "yes" : "NO");
  return shapeHolds ? 0 : 1;
}
