file(REMOVE_RECURSE
  "libtpp_workload.a"
)
