file(REMOVE_RECURSE
  "CMakeFiles/tpp_workload.dir/generators.cpp.o"
  "CMakeFiles/tpp_workload.dir/generators.cpp.o.d"
  "libtpp_workload.a"
  "libtpp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
