
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cpp" "src/workload/CMakeFiles/tpp_workload.dir/generators.cpp.o" "gcc" "src/workload/CMakeFiles/tpp_workload.dir/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/tpp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asic/CMakeFiles/tpp_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpu/CMakeFiles/tpp_tcpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tpp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
