# Empty dependencies file for tpp_workload.
# This may be replaced when dependencies are built.
