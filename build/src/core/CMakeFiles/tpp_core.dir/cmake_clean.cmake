file(REMOVE_RECURSE
  "CMakeFiles/tpp_core.dir/agent.cpp.o"
  "CMakeFiles/tpp_core.dir/agent.cpp.o.d"
  "CMakeFiles/tpp_core.dir/assembler.cpp.o"
  "CMakeFiles/tpp_core.dir/assembler.cpp.o.d"
  "CMakeFiles/tpp_core.dir/edge_filter.cpp.o"
  "CMakeFiles/tpp_core.dir/edge_filter.cpp.o.d"
  "CMakeFiles/tpp_core.dir/header.cpp.o"
  "CMakeFiles/tpp_core.dir/header.cpp.o.d"
  "CMakeFiles/tpp_core.dir/isa.cpp.o"
  "CMakeFiles/tpp_core.dir/isa.cpp.o.d"
  "CMakeFiles/tpp_core.dir/memory_map.cpp.o"
  "CMakeFiles/tpp_core.dir/memory_map.cpp.o.d"
  "CMakeFiles/tpp_core.dir/program.cpp.o"
  "CMakeFiles/tpp_core.dir/program.cpp.o.d"
  "libtpp_core.a"
  "libtpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
