
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent.cpp" "src/core/CMakeFiles/tpp_core.dir/agent.cpp.o" "gcc" "src/core/CMakeFiles/tpp_core.dir/agent.cpp.o.d"
  "/root/repo/src/core/assembler.cpp" "src/core/CMakeFiles/tpp_core.dir/assembler.cpp.o" "gcc" "src/core/CMakeFiles/tpp_core.dir/assembler.cpp.o.d"
  "/root/repo/src/core/edge_filter.cpp" "src/core/CMakeFiles/tpp_core.dir/edge_filter.cpp.o" "gcc" "src/core/CMakeFiles/tpp_core.dir/edge_filter.cpp.o.d"
  "/root/repo/src/core/header.cpp" "src/core/CMakeFiles/tpp_core.dir/header.cpp.o" "gcc" "src/core/CMakeFiles/tpp_core.dir/header.cpp.o.d"
  "/root/repo/src/core/isa.cpp" "src/core/CMakeFiles/tpp_core.dir/isa.cpp.o" "gcc" "src/core/CMakeFiles/tpp_core.dir/isa.cpp.o.d"
  "/root/repo/src/core/memory_map.cpp" "src/core/CMakeFiles/tpp_core.dir/memory_map.cpp.o" "gcc" "src/core/CMakeFiles/tpp_core.dir/memory_map.cpp.o.d"
  "/root/repo/src/core/program.cpp" "src/core/CMakeFiles/tpp_core.dir/program.cpp.o" "gcc" "src/core/CMakeFiles/tpp_core.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tpp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
