file(REMOVE_RECURSE
  "libtpp_tcpu.a"
)
