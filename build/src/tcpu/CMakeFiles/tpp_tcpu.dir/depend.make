# Empty dependencies file for tpp_tcpu.
# This may be replaced when dependencies are built.
