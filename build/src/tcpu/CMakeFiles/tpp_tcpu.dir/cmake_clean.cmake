file(REMOVE_RECURSE
  "CMakeFiles/tpp_tcpu.dir/cycle_model.cpp.o"
  "CMakeFiles/tpp_tcpu.dir/cycle_model.cpp.o.d"
  "CMakeFiles/tpp_tcpu.dir/tcpu.cpp.o"
  "CMakeFiles/tpp_tcpu.dir/tcpu.cpp.o.d"
  "libtpp_tcpu.a"
  "libtpp_tcpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_tcpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
