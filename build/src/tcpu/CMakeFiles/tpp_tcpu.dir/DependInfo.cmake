
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcpu/cycle_model.cpp" "src/tcpu/CMakeFiles/tpp_tcpu.dir/cycle_model.cpp.o" "gcc" "src/tcpu/CMakeFiles/tpp_tcpu.dir/cycle_model.cpp.o.d"
  "/root/repo/src/tcpu/tcpu.cpp" "src/tcpu/CMakeFiles/tpp_tcpu.dir/tcpu.cpp.o" "gcc" "src/tcpu/CMakeFiles/tpp_tcpu.dir/tcpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tpp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
