file(REMOVE_RECURSE
  "CMakeFiles/tpp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tpp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tpp_sim.dir/log.cpp.o"
  "CMakeFiles/tpp_sim.dir/log.cpp.o.d"
  "CMakeFiles/tpp_sim.dir/random.cpp.o"
  "CMakeFiles/tpp_sim.dir/random.cpp.o.d"
  "CMakeFiles/tpp_sim.dir/simulator.cpp.o"
  "CMakeFiles/tpp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/tpp_sim.dir/stats.cpp.o"
  "CMakeFiles/tpp_sim.dir/stats.cpp.o.d"
  "CMakeFiles/tpp_sim.dir/time.cpp.o"
  "CMakeFiles/tpp_sim.dir/time.cpp.o.d"
  "libtpp_sim.a"
  "libtpp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
