file(REMOVE_RECURSE
  "CMakeFiles/tpp_apps.dir/aggregate_limiter.cpp.o"
  "CMakeFiles/tpp_apps.dir/aggregate_limiter.cpp.o.d"
  "CMakeFiles/tpp_apps.dir/aimd.cpp.o"
  "CMakeFiles/tpp_apps.dir/aimd.cpp.o.d"
  "CMakeFiles/tpp_apps.dir/dctcp.cpp.o"
  "CMakeFiles/tpp_apps.dir/dctcp.cpp.o.d"
  "CMakeFiles/tpp_apps.dir/latency_profiler.cpp.o"
  "CMakeFiles/tpp_apps.dir/latency_profiler.cpp.o.d"
  "CMakeFiles/tpp_apps.dir/mesh_prober.cpp.o"
  "CMakeFiles/tpp_apps.dir/mesh_prober.cpp.o.d"
  "CMakeFiles/tpp_apps.dir/microburst.cpp.o"
  "CMakeFiles/tpp_apps.dir/microburst.cpp.o.d"
  "CMakeFiles/tpp_apps.dir/ndb.cpp.o"
  "CMakeFiles/tpp_apps.dir/ndb.cpp.o.d"
  "CMakeFiles/tpp_apps.dir/rcpstar.cpp.o"
  "CMakeFiles/tpp_apps.dir/rcpstar.cpp.o.d"
  "libtpp_apps.a"
  "libtpp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
