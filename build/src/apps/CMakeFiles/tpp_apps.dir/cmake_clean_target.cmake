file(REMOVE_RECURSE
  "libtpp_apps.a"
)
