# Empty dependencies file for tpp_apps.
# This may be replaced when dependencies are built.
