
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/aggregate_limiter.cpp" "src/apps/CMakeFiles/tpp_apps.dir/aggregate_limiter.cpp.o" "gcc" "src/apps/CMakeFiles/tpp_apps.dir/aggregate_limiter.cpp.o.d"
  "/root/repo/src/apps/aimd.cpp" "src/apps/CMakeFiles/tpp_apps.dir/aimd.cpp.o" "gcc" "src/apps/CMakeFiles/tpp_apps.dir/aimd.cpp.o.d"
  "/root/repo/src/apps/dctcp.cpp" "src/apps/CMakeFiles/tpp_apps.dir/dctcp.cpp.o" "gcc" "src/apps/CMakeFiles/tpp_apps.dir/dctcp.cpp.o.d"
  "/root/repo/src/apps/latency_profiler.cpp" "src/apps/CMakeFiles/tpp_apps.dir/latency_profiler.cpp.o" "gcc" "src/apps/CMakeFiles/tpp_apps.dir/latency_profiler.cpp.o.d"
  "/root/repo/src/apps/mesh_prober.cpp" "src/apps/CMakeFiles/tpp_apps.dir/mesh_prober.cpp.o" "gcc" "src/apps/CMakeFiles/tpp_apps.dir/mesh_prober.cpp.o.d"
  "/root/repo/src/apps/microburst.cpp" "src/apps/CMakeFiles/tpp_apps.dir/microburst.cpp.o" "gcc" "src/apps/CMakeFiles/tpp_apps.dir/microburst.cpp.o.d"
  "/root/repo/src/apps/ndb.cpp" "src/apps/CMakeFiles/tpp_apps.dir/ndb.cpp.o" "gcc" "src/apps/CMakeFiles/tpp_apps.dir/ndb.cpp.o.d"
  "/root/repo/src/apps/rcpstar.cpp" "src/apps/CMakeFiles/tpp_apps.dir/rcpstar.cpp.o" "gcc" "src/apps/CMakeFiles/tpp_apps.dir/rcpstar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/tpp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/rcp/CMakeFiles/tpp_rcp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asic/CMakeFiles/tpp_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpu/CMakeFiles/tpp_tcpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tpp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
