file(REMOVE_RECURSE
  "CMakeFiles/tpp_net.dir/ethernet.cpp.o"
  "CMakeFiles/tpp_net.dir/ethernet.cpp.o.d"
  "CMakeFiles/tpp_net.dir/ipv4.cpp.o"
  "CMakeFiles/tpp_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/tpp_net.dir/link.cpp.o"
  "CMakeFiles/tpp_net.dir/link.cpp.o.d"
  "CMakeFiles/tpp_net.dir/mac_address.cpp.o"
  "CMakeFiles/tpp_net.dir/mac_address.cpp.o.d"
  "CMakeFiles/tpp_net.dir/packet.cpp.o"
  "CMakeFiles/tpp_net.dir/packet.cpp.o.d"
  "libtpp_net.a"
  "libtpp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
