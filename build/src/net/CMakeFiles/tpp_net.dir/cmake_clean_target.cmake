file(REMOVE_RECURSE
  "libtpp_net.a"
)
