# Empty compiler generated dependencies file for tpp_net.
# This may be replaced when dependencies are built.
