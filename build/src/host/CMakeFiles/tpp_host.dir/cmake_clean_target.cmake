file(REMOVE_RECURSE
  "libtpp_host.a"
)
