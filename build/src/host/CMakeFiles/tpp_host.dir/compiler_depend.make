# Empty compiler generated dependencies file for tpp_host.
# This may be replaced when dependencies are built.
