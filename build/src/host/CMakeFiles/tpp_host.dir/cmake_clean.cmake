file(REMOVE_RECURSE
  "CMakeFiles/tpp_host.dir/collector.cpp.o"
  "CMakeFiles/tpp_host.dir/collector.cpp.o.d"
  "CMakeFiles/tpp_host.dir/flow.cpp.o"
  "CMakeFiles/tpp_host.dir/flow.cpp.o.d"
  "CMakeFiles/tpp_host.dir/host.cpp.o"
  "CMakeFiles/tpp_host.dir/host.cpp.o.d"
  "CMakeFiles/tpp_host.dir/topology.cpp.o"
  "CMakeFiles/tpp_host.dir/topology.cpp.o.d"
  "libtpp_host.a"
  "libtpp_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
