
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/collector.cpp" "src/host/CMakeFiles/tpp_host.dir/collector.cpp.o" "gcc" "src/host/CMakeFiles/tpp_host.dir/collector.cpp.o.d"
  "/root/repo/src/host/flow.cpp" "src/host/CMakeFiles/tpp_host.dir/flow.cpp.o" "gcc" "src/host/CMakeFiles/tpp_host.dir/flow.cpp.o.d"
  "/root/repo/src/host/host.cpp" "src/host/CMakeFiles/tpp_host.dir/host.cpp.o" "gcc" "src/host/CMakeFiles/tpp_host.dir/host.cpp.o.d"
  "/root/repo/src/host/topology.cpp" "src/host/CMakeFiles/tpp_host.dir/topology.cpp.o" "gcc" "src/host/CMakeFiles/tpp_host.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asic/CMakeFiles/tpp_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tpp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpu/CMakeFiles/tpp_tcpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
