file(REMOVE_RECURSE
  "CMakeFiles/tpp_rcp.dir/rcp.cpp.o"
  "CMakeFiles/tpp_rcp.dir/rcp.cpp.o.d"
  "CMakeFiles/tpp_rcp.dir/rcp_router.cpp.o"
  "CMakeFiles/tpp_rcp.dir/rcp_router.cpp.o.d"
  "libtpp_rcp.a"
  "libtpp_rcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_rcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
