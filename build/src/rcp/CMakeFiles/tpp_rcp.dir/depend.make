# Empty dependencies file for tpp_rcp.
# This may be replaced when dependencies are built.
