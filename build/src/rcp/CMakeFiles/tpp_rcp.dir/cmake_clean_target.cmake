file(REMOVE_RECURSE
  "libtpp_rcp.a"
)
