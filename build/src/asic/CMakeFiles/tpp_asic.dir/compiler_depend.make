# Empty compiler generated dependencies file for tpp_asic.
# This may be replaced when dependencies are built.
