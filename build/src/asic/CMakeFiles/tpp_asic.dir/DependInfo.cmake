
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asic/parser.cpp" "src/asic/CMakeFiles/tpp_asic.dir/parser.cpp.o" "gcc" "src/asic/CMakeFiles/tpp_asic.dir/parser.cpp.o.d"
  "/root/repo/src/asic/queue.cpp" "src/asic/CMakeFiles/tpp_asic.dir/queue.cpp.o" "gcc" "src/asic/CMakeFiles/tpp_asic.dir/queue.cpp.o.d"
  "/root/repo/src/asic/stats.cpp" "src/asic/CMakeFiles/tpp_asic.dir/stats.cpp.o" "gcc" "src/asic/CMakeFiles/tpp_asic.dir/stats.cpp.o.d"
  "/root/repo/src/asic/switch.cpp" "src/asic/CMakeFiles/tpp_asic.dir/switch.cpp.o" "gcc" "src/asic/CMakeFiles/tpp_asic.dir/switch.cpp.o.d"
  "/root/repo/src/asic/tables.cpp" "src/asic/CMakeFiles/tpp_asic.dir/tables.cpp.o" "gcc" "src/asic/CMakeFiles/tpp_asic.dir/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpu/CMakeFiles/tpp_tcpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tpp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
