file(REMOVE_RECURSE
  "CMakeFiles/tpp_asic.dir/parser.cpp.o"
  "CMakeFiles/tpp_asic.dir/parser.cpp.o.d"
  "CMakeFiles/tpp_asic.dir/queue.cpp.o"
  "CMakeFiles/tpp_asic.dir/queue.cpp.o.d"
  "CMakeFiles/tpp_asic.dir/stats.cpp.o"
  "CMakeFiles/tpp_asic.dir/stats.cpp.o.d"
  "CMakeFiles/tpp_asic.dir/switch.cpp.o"
  "CMakeFiles/tpp_asic.dir/switch.cpp.o.d"
  "CMakeFiles/tpp_asic.dir/tables.cpp.o"
  "CMakeFiles/tpp_asic.dir/tables.cpp.o.d"
  "libtpp_asic.a"
  "libtpp_asic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
