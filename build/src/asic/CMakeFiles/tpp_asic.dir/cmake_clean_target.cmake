file(REMOVE_RECURSE
  "libtpp_asic.a"
)
