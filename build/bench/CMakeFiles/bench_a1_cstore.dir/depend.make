# Empty dependencies file for bench_a1_cstore.
# This may be replaced when dependencies are built.
