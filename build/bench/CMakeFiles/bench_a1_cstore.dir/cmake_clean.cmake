file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_cstore.dir/bench_a1_cstore.cpp.o"
  "CMakeFiles/bench_a1_cstore.dir/bench_a1_cstore.cpp.o.d"
  "bench_a1_cstore"
  "bench_a1_cstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_cstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
