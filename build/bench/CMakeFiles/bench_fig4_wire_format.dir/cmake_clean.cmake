file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_wire_format.dir/bench_fig4_wire_format.cpp.o"
  "CMakeFiles/bench_fig4_wire_format.dir/bench_fig4_wire_format.cpp.o.d"
  "bench_fig4_wire_format"
  "bench_fig4_wire_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_wire_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
