# Empty compiler generated dependencies file for bench_fig4_wire_format.
# This may be replaced when dependencies are built.
