file(REMOVE_RECURSE
  "CMakeFiles/bench_s4_visibility.dir/bench_s4_visibility.cpp.o"
  "CMakeFiles/bench_s4_visibility.dir/bench_s4_visibility.cpp.o.d"
  "bench_s4_visibility"
  "bench_s4_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s4_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
