# Empty dependencies file for bench_s4_visibility.
# This may be replaced when dependencies are built.
