file(REMOVE_RECURSE
  "CMakeFiles/bench_s21_microburst.dir/bench_s21_microburst.cpp.o"
  "CMakeFiles/bench_s21_microburst.dir/bench_s21_microburst.cpp.o.d"
  "bench_s21_microburst"
  "bench_s21_microburst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s21_microburst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
