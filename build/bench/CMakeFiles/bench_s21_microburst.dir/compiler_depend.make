# Empty compiler generated dependencies file for bench_s21_microburst.
# This may be replaced when dependencies are built.
