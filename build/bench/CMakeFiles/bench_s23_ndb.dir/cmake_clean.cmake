file(REMOVE_RECURSE
  "CMakeFiles/bench_s23_ndb.dir/bench_s23_ndb.cpp.o"
  "CMakeFiles/bench_s23_ndb.dir/bench_s23_ndb.cpp.o.d"
  "bench_s23_ndb"
  "bench_s23_ndb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s23_ndb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
