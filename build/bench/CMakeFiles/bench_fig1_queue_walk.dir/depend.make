# Empty dependencies file for bench_fig1_queue_walk.
# This may be replaced when dependencies are built.
