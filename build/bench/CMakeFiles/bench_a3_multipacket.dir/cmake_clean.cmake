file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_multipacket.dir/bench_a3_multipacket.cpp.o"
  "CMakeFiles/bench_a3_multipacket.dir/bench_a3_multipacket.cpp.o.d"
  "bench_a3_multipacket"
  "bench_a3_multipacket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_multipacket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
