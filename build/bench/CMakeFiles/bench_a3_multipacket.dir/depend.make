# Empty dependencies file for bench_a3_multipacket.
# This may be replaced when dependencies are built.
