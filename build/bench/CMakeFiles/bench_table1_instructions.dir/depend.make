# Empty dependencies file for bench_table1_instructions.
# This may be replaced when dependencies are built.
