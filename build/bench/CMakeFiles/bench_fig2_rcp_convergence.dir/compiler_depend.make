# Empty compiler generated dependencies file for bench_fig2_rcp_convergence.
# This may be replaced when dependencies are built.
