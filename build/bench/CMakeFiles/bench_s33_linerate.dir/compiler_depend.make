# Empty compiler generated dependencies file for bench_s33_linerate.
# This may be replaced when dependencies are built.
