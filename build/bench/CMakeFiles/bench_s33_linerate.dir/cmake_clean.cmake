file(REMOVE_RECURSE
  "CMakeFiles/bench_s33_linerate.dir/bench_s33_linerate.cpp.o"
  "CMakeFiles/bench_s33_linerate.dir/bench_s33_linerate.cpp.o.d"
  "bench_s33_linerate"
  "bench_s33_linerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s33_linerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
