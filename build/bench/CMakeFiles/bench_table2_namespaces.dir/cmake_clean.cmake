file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_namespaces.dir/bench_table2_namespaces.cpp.o"
  "CMakeFiles/bench_table2_namespaces.dir/bench_table2_namespaces.cpp.o.d"
  "bench_table2_namespaces"
  "bench_table2_namespaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_namespaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
