# Empty compiler generated dependencies file for bench_a2_congestion_baselines.
# This may be replaced when dependencies are built.
