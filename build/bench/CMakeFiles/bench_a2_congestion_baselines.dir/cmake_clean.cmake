file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_congestion_baselines.dir/bench_a2_congestion_baselines.cpp.o"
  "CMakeFiles/bench_a2_congestion_baselines.dir/bench_a2_congestion_baselines.cpp.o.d"
  "bench_a2_congestion_baselines"
  "bench_a2_congestion_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_congestion_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
