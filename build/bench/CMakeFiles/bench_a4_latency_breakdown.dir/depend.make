# Empty dependencies file for bench_a4_latency_breakdown.
# This may be replaced when dependencies are built.
