file(REMOVE_RECURSE
  "CMakeFiles/rcp_star.dir/rcp_star.cpp.o"
  "CMakeFiles/rcp_star.dir/rcp_star.cpp.o.d"
  "rcp_star"
  "rcp_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcp_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
