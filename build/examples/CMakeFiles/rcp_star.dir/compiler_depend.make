# Empty compiler generated dependencies file for rcp_star.
# This may be replaced when dependencies are built.
