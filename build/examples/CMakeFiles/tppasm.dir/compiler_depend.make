# Empty compiler generated dependencies file for tppasm.
# This may be replaced when dependencies are built.
