file(REMOVE_RECURSE
  "CMakeFiles/tppasm.dir/tppasm.cpp.o"
  "CMakeFiles/tppasm.dir/tppasm.cpp.o.d"
  "tppasm"
  "tppasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tppasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
