file(REMOVE_RECURSE
  "CMakeFiles/ndb_debugger.dir/ndb_debugger.cpp.o"
  "CMakeFiles/ndb_debugger.dir/ndb_debugger.cpp.o.d"
  "ndb_debugger"
  "ndb_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndb_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
