# Empty compiler generated dependencies file for ndb_debugger.
# This may be replaced when dependencies are built.
