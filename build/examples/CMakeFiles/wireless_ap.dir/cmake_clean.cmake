file(REMOVE_RECURSE
  "CMakeFiles/wireless_ap.dir/wireless_ap.cpp.o"
  "CMakeFiles/wireless_ap.dir/wireless_ap.cpp.o.d"
  "wireless_ap"
  "wireless_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
