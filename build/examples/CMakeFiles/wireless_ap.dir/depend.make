# Empty dependencies file for wireless_ap.
# This may be replaced when dependencies are built.
