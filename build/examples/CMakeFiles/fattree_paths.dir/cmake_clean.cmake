file(REMOVE_RECURSE
  "CMakeFiles/fattree_paths.dir/fattree_paths.cpp.o"
  "CMakeFiles/fattree_paths.dir/fattree_paths.cpp.o.d"
  "fattree_paths"
  "fattree_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fattree_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
