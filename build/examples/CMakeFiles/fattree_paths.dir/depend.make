# Empty dependencies file for fattree_paths.
# This may be replaced when dependencies are built.
