# Empty dependencies file for tppquery.
# This may be replaced when dependencies are built.
