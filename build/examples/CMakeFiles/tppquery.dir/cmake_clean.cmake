file(REMOVE_RECURSE
  "CMakeFiles/tppquery.dir/tppquery.cpp.o"
  "CMakeFiles/tppquery.dir/tppquery.cpp.o.d"
  "tppquery"
  "tppquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tppquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
