file(REMOVE_RECURSE
  "CMakeFiles/microburst_monitor.dir/microburst_monitor.cpp.o"
  "CMakeFiles/microburst_monitor.dir/microburst_monitor.cpp.o.d"
  "microburst_monitor"
  "microburst_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microburst_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
