# Empty compiler generated dependencies file for microburst_monitor.
# This may be replaced when dependencies are built.
