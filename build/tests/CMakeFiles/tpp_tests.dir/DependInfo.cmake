
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_agent.cpp" "tests/CMakeFiles/tpp_tests.dir/test_agent.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_agent.cpp.o.d"
  "/root/repo/tests/test_apps_aimd.cpp" "tests/CMakeFiles/tpp_tests.dir/test_apps_aimd.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_apps_aimd.cpp.o.d"
  "/root/repo/tests/test_apps_dctcp.cpp" "tests/CMakeFiles/tpp_tests.dir/test_apps_dctcp.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_apps_dctcp.cpp.o.d"
  "/root/repo/tests/test_apps_latency.cpp" "tests/CMakeFiles/tpp_tests.dir/test_apps_latency.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_apps_latency.cpp.o.d"
  "/root/repo/tests/test_apps_limiter.cpp" "tests/CMakeFiles/tpp_tests.dir/test_apps_limiter.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_apps_limiter.cpp.o.d"
  "/root/repo/tests/test_apps_mesh.cpp" "tests/CMakeFiles/tpp_tests.dir/test_apps_mesh.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_apps_mesh.cpp.o.d"
  "/root/repo/tests/test_apps_microburst.cpp" "tests/CMakeFiles/tpp_tests.dir/test_apps_microburst.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_apps_microburst.cpp.o.d"
  "/root/repo/tests/test_apps_ndb.cpp" "tests/CMakeFiles/tpp_tests.dir/test_apps_ndb.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_apps_ndb.cpp.o.d"
  "/root/repo/tests/test_apps_rcpstar.cpp" "tests/CMakeFiles/tpp_tests.dir/test_apps_rcpstar.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_apps_rcpstar.cpp.o.d"
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/tpp_tests.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_bytes.cpp" "tests/CMakeFiles/tpp_tests.dir/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_bytes.cpp.o.d"
  "/root/repo/tests/test_collector.cpp" "tests/CMakeFiles/tpp_tests.dir/test_collector.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_collector.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/tpp_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_ecn.cpp" "tests/CMakeFiles/tpp_tests.dir/test_ecn.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_ecn.cpp.o.d"
  "/root/repo/tests/test_edge_filter.cpp" "tests/CMakeFiles/tpp_tests.dir/test_edge_filter.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_edge_filter.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/tpp_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_fattree.cpp" "tests/CMakeFiles/tpp_tests.dir/test_fattree.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_fattree.cpp.o.d"
  "/root/repo/tests/test_flow.cpp" "tests/CMakeFiles/tpp_tests.dir/test_flow.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_flow.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/tpp_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_header.cpp" "tests/CMakeFiles/tpp_tests.dir/test_header.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_header.cpp.o.d"
  "/root/repo/tests/test_host.cpp" "tests/CMakeFiles/tpp_tests.dir/test_host.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_host.cpp.o.d"
  "/root/repo/tests/test_integration_multitask.cpp" "tests/CMakeFiles/tpp_tests.dir/test_integration_multitask.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_integration_multitask.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/tpp_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_link.cpp" "tests/CMakeFiles/tpp_tests.dir/test_link.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_link.cpp.o.d"
  "/root/repo/tests/test_memory_map.cpp" "tests/CMakeFiles/tpp_tests.dir/test_memory_map.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_memory_map.cpp.o.d"
  "/root/repo/tests/test_packet.cpp" "tests/CMakeFiles/tpp_tests.dir/test_packet.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_packet.cpp.o.d"
  "/root/repo/tests/test_paper_listings.cpp" "tests/CMakeFiles/tpp_tests.dir/test_paper_listings.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_paper_listings.cpp.o.d"
  "/root/repo/tests/test_program.cpp" "tests/CMakeFiles/tpp_tests.dir/test_program.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_program.cpp.o.d"
  "/root/repo/tests/test_queue.cpp" "tests/CMakeFiles/tpp_tests.dir/test_queue.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_queue.cpp.o.d"
  "/root/repo/tests/test_random.cpp" "tests/CMakeFiles/tpp_tests.dir/test_random.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_random.cpp.o.d"
  "/root/repo/tests/test_rcp.cpp" "tests/CMakeFiles/tpp_tests.dir/test_rcp.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_rcp.cpp.o.d"
  "/root/repo/tests/test_rcp_router.cpp" "tests/CMakeFiles/tpp_tests.dir/test_rcp_router.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_rcp_router.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/tpp_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/tpp_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/tpp_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_switch.cpp" "tests/CMakeFiles/tpp_tests.dir/test_switch.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_switch.cpp.o.d"
  "/root/repo/tests/test_switch_registers.cpp" "tests/CMakeFiles/tpp_tests.dir/test_switch_registers.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_switch_registers.cpp.o.d"
  "/root/repo/tests/test_tables.cpp" "tests/CMakeFiles/tpp_tests.dir/test_tables.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_tables.cpp.o.d"
  "/root/repo/tests/test_tcpu.cpp" "tests/CMakeFiles/tpp_tests.dir/test_tcpu.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_tcpu.cpp.o.d"
  "/root/repo/tests/test_time.cpp" "tests/CMakeFiles/tpp_tests.dir/test_time.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_time.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/tpp_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_ttl.cpp" "tests/CMakeFiles/tpp_tests.dir/test_ttl.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_ttl.cpp.o.d"
  "/root/repo/tests/test_wireless.cpp" "tests/CMakeFiles/tpp_tests.dir/test_wireless.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_wireless.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/tpp_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/tpp_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/tpp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tpp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/rcp/CMakeFiles/tpp_rcp.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/tpp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/asic/CMakeFiles/tpp_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpu/CMakeFiles/tpp_tcpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tpp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
