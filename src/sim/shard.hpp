// Sharded parallel simulation with conservative lookahead.
//
// The topology is partitioned into shards (groups of switches/hosts), each
// owning a private Simulator — clock, event queue, components. Shards run
// on their own threads in lockstep *windows*: every shard processes all
// events with t <= E, then all shards meet at a barrier, then the next
// window bound E' is computed from global state. Cross-shard packets travel
// as timestamped callbacks over lock-free SPSC channels (one per cross-shard
// link direction) and are merged into the destination shard's event queue
// at window boundaries.
//
// Why this is safe (conservative lookahead): every cross-shard hand-off is
// a link transit, so a message created by an event at time t is delivered
// no earlier than t + minLatency (the link's propagation delay). With
// L = min over all cross-shard channels of minLatency, a window bounded by
// E <= P + L (P = everything processed so far) can only *create* messages
// due strictly after E — so draining each inbox up to E at the window start
// is complete, and no shard ever needs to roll back.
//
// Why this is deterministic for a fixed (seed, partition): window bounds
// are pure functions of global simulation state at barriers; each inbox is
// drained in registration order up to the window bound; within an inbox,
// messages sit in the producer shard's (deterministic) execution order; and
// per-channel delivery times are monotone, so "drain while head <= E" pops
// an exact, run-independent prefix even while an upstream producer is
// concurrently appending later messages.
//
// A 1-shard ShardedSimulator::run() is a direct call into Simulator::run()
// on the calling thread — bit-identical to the legacy single-threaded path
// (the golden-trace suite pins this).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/event_fn.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/spsc.hpp"
#include "src/sim/time.hpp"

namespace tpp::sim {

// One direction of a shard boundary: a single producer shard hands
// timestamped callbacks to a single consumer shard. Delivery times pushed
// into one channel must be monotone non-decreasing (link serialization
// guarantees this: busyUntil never moves backwards), which the windowed
// drain relies on.
class CrossShardChannel {
 public:
  struct Message {
    Time at;
    EventFn fn;
  };

  CrossShardChannel(std::size_t fromShard, std::size_t toShard,
                    Time minLatency)
      : from_(fromShard), to_(toShard), minLatency_(minLatency) {}

  // Producer side (the transmitting shard's thread).
  void push(Time at, EventFn fn) {
    assert(at >= lastPushed_ && "per-channel delivery times must be monotone");
    lastPushed_ = at;
    queue_.push(Message{at, std::move(fn)});
  }

  // Consumer side (the receiving shard's thread, or the barrier completion
  // step, which is exclusive).
  Message* peek() { return queue_.peek(); }
  void pop() { queue_.pop(); }

  std::size_t fromShard() const { return from_; }
  std::size_t toShard() const { return to_; }
  Time minLatency() const { return minLatency_; }

 private:
  std::size_t from_;
  std::size_t to_;
  Time minLatency_;
  Time lastPushed_ = Time::zero();  // producer-side debug check only
  SpscQueue<Message> queue_;
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(std::size_t shardCount = 1);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  std::size_t shardCount() const { return shards_.size(); }
  Simulator& shard(std::size_t i) { return *shards_.at(i); }
  const Simulator& shard(std::size_t i) const { return *shards_.at(i); }

  // Registers a fresh SPSC channel from one shard to another, carrying
  // events that are delayed by at least `minLatency` (> 0). Each physical
  // link direction gets its own channel so per-channel delivery times stay
  // monotone. Setup-time only; the returned reference is stable.
  CrossShardChannel& addChannel(std::size_t fromShard, std::size_t toShard,
                                Time minLatency);

  // The conservative lookahead bound: min over registered channels.
  Time lookahead() const { return lookahead_; }

  // Runs every shard until its queue drains, `until` is reached, or stop()
  // is requested. Returns the number of events executed across all shards.
  // With one shard this is exactly Simulator::run() on the calling thread;
  // with N > 1 it spawns N-1 worker threads (the caller drives shard 0)
  // and synchronizes in lookahead windows.
  std::uint64_t run(Time until = Time::max());

  // Requests that a parallel run stop at the next window barrier. Safe to
  // call from an event callback on any shard.
  void stop() { stopRequested_.store(true, std::memory_order_relaxed); }

  // Sum of per-shard executed-event counters (valid between runs).
  std::uint64_t eventsExecuted() const;

  // Latest shard clock (valid between runs).
  Time now() const;

 private:
  // Earliest pending instant across shard queues and channel heads. Only
  // called when every shard thread is quiescent (single-threaded phases
  // and barrier completion steps).
  Time nextPendingTime();

  std::uint64_t runParallel(Time until);

  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::unique_ptr<CrossShardChannel>> channels_;
  // Per destination shard, its inbound channels in registration order (the
  // deterministic drain order).
  std::vector<std::vector<CrossShardChannel*>> inboxes_;
  Time lookahead_ = Time::max();
  std::atomic<bool> stopRequested_{false};
};

}  // namespace tpp::sim
