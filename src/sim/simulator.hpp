// The discrete-event simulator: a clock plus an event queue.
//
// Components hold a Simulator& and schedule callbacks; the main loop pops
// events in deterministic order and advances the clock. A Simulator is not
// thread-safe: it is confined to one thread at a time (determinism is a
// feature we test for). A single-shard experiment owns exactly one; a
// sharded experiment owns one per shard, coordinated by ShardedSimulator
// (src/sim/shard.hpp), with each instance still driven by only its own
// shard's thread.
#pragma once

#include <cstdint>
#include <limits>

#include "src/sim/event_queue.hpp"
#include "src/sim/time.hpp"
#include "src/sim/trace.hpp"

namespace tpp::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run `delay` after now. Negative delays clamp to now.
  EventHandle schedule(Time delay, EventFn fn);
  // Schedules `fn` at an absolute instant (clamped to now if in the past).
  EventHandle scheduleAt(Time at, EventFn fn);

  // Runs until the queue drains, `until` is reached, or stop() is called.
  // Returns the number of events executed.
  std::uint64_t run(Time until = Time::max());

  // Runs at most `maxEvents` events (for step-debugging in tests).
  std::uint64_t runEvents(std::uint64_t maxEvents);

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::uint64_t eventsExecuted() const { return executed_; }

  // Earliest pending event's instant, or Time::max() when the queue is
  // empty (purges cancelled heads as a side effect). Used by the sharded
  // runner to compute conservative lookahead windows.
  Time nextEventTime() {
    return queue_.empty() ? Time::max() : queue_.nextTime();
  }

  // Arms the flight recorder on the scheduler itself (EventSchedule /
  // EventFire records). nullptr disarms; the disarmed cost is one branch
  // per schedule and per fire.
  void setTracer(Tracer* tracer) {
    tracer_ = tracer;
    simActor_ = tracer != nullptr ? tracer->actor("sim") : 0;
  }
  Tracer* tracer() const { return tracer_; }

 private:
  EventQueue queue_;
  Time now_ = Time::zero();
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  Tracer* tracer_ = nullptr;
  std::uint32_t simActor_ = 0;
};

}  // namespace tpp::sim
