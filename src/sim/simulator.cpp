#include "src/sim/simulator.hpp"

#include <algorithm>

namespace tpp::sim {

EventHandle Simulator::schedule(Time delay, EventFn fn) {
  return scheduleAt(now_ + std::max(delay, Time::zero()), std::move(fn));
}

EventHandle Simulator::scheduleAt(Time at, EventFn fn) {
  return queue_.push(std::max(at, now_), std::move(fn));
}

std::uint64_t Simulator::run(Time until) {
  std::uint64_t n = 0;
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.nextTime() > until) break;
    auto fired = queue_.tryPop();
    if (!fired) break;
    now_ = fired->at;
    fired->fn();
    ++n;
    ++executed_;
  }
  // If we ran out of events before `until`, advance the clock so repeated
  // run(until) calls observe monotonic time.
  if (until != Time::max() && now_ < until && !stopped_) now_ = until;
  return n;
}

std::uint64_t Simulator::runEvents(std::uint64_t maxEvents) {
  std::uint64_t n = 0;
  stopped_ = false;
  while (!stopped_ && n < maxEvents && !queue_.empty()) {
    auto fired = queue_.tryPop();
    if (!fired) break;
    now_ = fired->at;
    fired->fn();
    ++n;
    ++executed_;
  }
  return n;
}

}  // namespace tpp::sim
