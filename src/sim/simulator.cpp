#include "src/sim/simulator.hpp"

#include <algorithm>

namespace tpp::sim {

EventHandle Simulator::schedule(Time delay, EventFn fn) {
  return scheduleAt(now_ + std::max(delay, Time::zero()), std::move(fn));
}

EventHandle Simulator::scheduleAt(Time at, EventFn fn) {
  const Time clamped = std::max(at, now_);
  EventHandle h = queue_.push(clamped, std::move(fn));
  if (tracer_ != nullptr) {
    const auto fireNanos = static_cast<std::uint64_t>(clamped.nanos());
    tracer_->record(now_, TraceKind::EventSchedule, simActor_, 0,
                    static_cast<std::uint32_t>(queue_.nextSeq() - 1),
                    static_cast<std::uint32_t>(fireNanos),
                    static_cast<std::uint32_t>(fireNanos >> 32));
  }
  return h;
}

std::uint64_t Simulator::run(Time until) {
  std::uint64_t n = 0;
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.nextTime() > until) break;
    auto fired = queue_.tryPop();
    if (!fired) break;
    now_ = fired->at;
    if (tracer_ != nullptr) {
      tracer_->record(now_, TraceKind::EventFire, simActor_, 0,
                      static_cast<std::uint32_t>(fired->seq));
    }
    // Counted before the callback so code running inside it (a TPP reading
    // Switch:SimEventsFired) sees the event that delivered it.
    ++executed_;
    fired->fn();
    ++n;
  }
  // If we ran out of events before `until`, advance the clock so repeated
  // run(until) calls observe monotonic time.
  if (until != Time::max() && now_ < until && !stopped_) now_ = until;
  return n;
}

std::uint64_t Simulator::runEvents(std::uint64_t maxEvents) {
  std::uint64_t n = 0;
  stopped_ = false;
  while (!stopped_ && n < maxEvents && !queue_.empty()) {
    auto fired = queue_.tryPop();
    if (!fired) break;
    now_ = fired->at;
    if (tracer_ != nullptr) {
      tracer_->record(now_, TraceKind::EventFire, simActor_, 0,
                      static_cast<std::uint32_t>(fired->seq));
    }
    ++executed_;  // see run(): visible to code inside the callback
    fired->fn();
    ++n;
  }
  return n;
}

}  // namespace tpp::sim
