// Lock-free single-producer/single-consumer queue.
//
// The shard boundary primitive: one simulation thread pushes timestamped
// callbacks, exactly one other pops them (the receiver/logger split idiom —
// one writer, one reader, no locks on the hot path). The queue is unbounded
// via a linked list of fixed-size segments, so a producer can never block
// on a consumer that is parked at a synchronization barrier — a bounded
// ring + spin would deadlock there. Steady state runs inside one segment
// (no allocation); a burst that outgrows it links a fresh segment, which
// the consumer frees once drained.
//
// Memory ordering: the producer publishes a slot with a release store of
// the segment's `tail` (or of `next` when it opens a segment); the consumer
// acquires either before touching slot bytes. `head` is consumer-local and
// `tail_`/`head_` segment pointers are owned by their respective sides, so
// every non-atomic field has exactly one writing thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace tpp::sim {

template <typename T, std::size_t SegmentSlots = 512>
class SpscQueue {
  static_assert(SegmentSlots >= 1);

 public:
  SpscQueue() : head_(new Segment), tail_(head_) {}
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  ~SpscQueue() {
    // Teardown is single-threaded by contract (both sides quiesced).
    Segment* s = head_;
    while (s != nullptr) {
      const std::size_t end = s->tail.load(std::memory_order_relaxed);
      for (std::size_t i = s->head; i < end; ++i) s->slot(i)->~T();
      Segment* next = s->next.load(std::memory_order_relaxed);
      delete s;
      s = next;
    }
  }

  // Producer side. Never blocks, never fails.
  void push(T value) {
    Segment* s = tail_;
    const std::size_t t = s->tail.load(std::memory_order_relaxed);
    if (t < SegmentSlots) {
      ::new (s->rawSlot(t)) T(std::move(value));
      s->tail.store(t + 1, std::memory_order_release);
      return;
    }
    auto* fresh = new Segment;
    ::new (fresh->rawSlot(0)) T(std::move(value));
    fresh->tail.store(1, std::memory_order_relaxed);
    // Publishing `next` releases the fresh segment's contents too.
    s->next.store(fresh, std::memory_order_release);
    tail_ = fresh;
  }

  // Consumer side: the front element, or nullptr when empty. The pointer
  // stays valid until pop(). Retires drained segments as a side effect.
  T* peek() {
    Segment* s = head_;
    if (s->head == SegmentSlots) {
      Segment* next = s->next.load(std::memory_order_acquire);
      if (next == nullptr) return nullptr;
      // The producer moved on when it linked `next`; it never touches a
      // filled segment again, so the consumer may free it.
      delete s;
      head_ = s = next;
    }
    if (s->head == s->tail.load(std::memory_order_acquire)) return nullptr;
    return s->slot(s->head);
  }

  // Consumer side. Precondition: the immediately preceding peek() on this
  // thread returned non-null.
  void pop() {
    Segment* s = head_;
    s->slot(s->head)->~T();
    ++s->head;
  }

  // Consumer side (or any thread that is fully synchronized with both
  // sides, e.g. inside a barrier's completion step).
  bool empty() { return peek() == nullptr; }

 private:
  struct Segment {
    // Producer-written fields on their own cache line; `head` is written
    // only by the consumer.
    alignas(64) std::atomic<std::size_t> tail{0};
    std::atomic<Segment*> next{nullptr};
    alignas(64) std::size_t head = 0;
    alignas(alignof(T)) unsigned char storage[SegmentSlots * sizeof(T)];

    void* rawSlot(std::size_t i) {  // construction address (no object yet)
      return static_cast<void*>(storage + i * sizeof(T));
    }
    T* slot(std::size_t i) {  // access to a constructed element
      return std::launder(reinterpret_cast<T*>(storage + i * sizeof(T)));
    }
  };

  alignas(64) Segment* head_;  // consumer-owned
  alignas(64) Segment* tail_;  // producer-owned
};

}  // namespace tpp::sim
