// Seeded pseudo-randomness with named, independently-reproducible substreams.
//
// Every stochastic component forks its own stream by name so that adding a
// new consumer of randomness does not perturb existing ones — a requirement
// for regression-testing simulation output.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace tpp::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  // Derives an independent stream; the same (seed, name) pair always yields
  // the same stream.
  Rng fork(std::string_view name) const;

  std::uint64_t seed() const { return seed_; }

  double uniform(double lo, double hi);
  // Integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);
  double exponential(double mean);
  // Bounded Pareto — the canonical heavy-tailed flow-size distribution.
  double paretoBounded(double shape, double lo, double hi);
  bool bernoulli(double p);
  double normal(double mean, double stddev);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace tpp::sim
