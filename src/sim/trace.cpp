#include "src/sim/trace.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace tpp::sim {
namespace {

// Binary layout, all little-endian (the simulator only targets LE hosts;
// the static_asserts in decodeTrace's callers keep us honest):
//   8B  magic "TPPTRACE"
//   u32 version (1)
//   u32 record size (32)
//   u64 record count
//   u64 overwritten count
//   u32 actor count
//   per actor: u16 name length + raw bytes
//   records: count * 32 raw bytes
constexpr char kMagic[8] = {'T', 'P', 'P', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

void putU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

// Cursor over untrusted bytes; every read is bounds-checked.
struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  bool have(std::size_t n) const { return bytes.size() - pos >= n; }
  std::uint16_t u16() {
    std::uint16_t v = static_cast<std::uint16_t>(
        bytes[pos] | (static_cast<std::uint16_t>(bytes[pos + 1]) << 8));
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[pos + static_cast<std::size_t>(i)]) << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[pos + static_cast<std::size_t>(i)]) << (8 * i);
    pos += 8;
    return v;
  }
};

// The one writer of the on-disk layout; Tracer::serialize() and
// mergeTraces() both funnel through here so their bytes can never drift.
std::vector<std::uint8_t> serializeImage(
    const std::vector<TraceRecord>& records,
    const std::vector<std::string>& actors, std::uint64_t overwritten) {
  std::vector<std::uint8_t> out;
  out.reserve(40 + actors.size() * 24 + records.size() * sizeof(TraceRecord));
  // push_back rather than a ranged insert: gcc-12's -Wstringop-overflow
  // false-positives on inserting from a raw char array.
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  putU32(out, kVersion);
  putU32(out, static_cast<std::uint32_t>(sizeof(TraceRecord)));
  putU64(out, records.size());
  putU64(out, overwritten);
  putU32(out, static_cast<std::uint32_t>(actors.size()));
  for (const std::string& name : actors) {
    const auto len = static_cast<std::uint16_t>(
        std::min<std::size_t>(name.size(), UINT16_MAX));
    putU16(out, len);
    out.insert(out.end(), name.begin(), name.begin() + len);
  }
  for (const TraceRecord& r : records) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&r);
    out.insert(out.end(), p, p + sizeof(TraceRecord));
  }
  return out;
}

}  // namespace

Tracer::Tracer(std::size_t capacity) {
  if (capacity < 2) capacity = 2;
  ring_.resize(std::bit_ceil(capacity));
  mask_ = ring_.size() - 1;
}

std::uint32_t Tracer::actor(std::string name) {
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (actors_[i] == name) return static_cast<std::uint32_t>(i + 1);
  }
  actors_.push_back(std::move(name));
  return static_cast<std::uint32_t>(actors_.size());
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = head_ - n;
  for (std::uint64_t i = first; i < head_; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

std::vector<std::uint8_t> Tracer::serialize() const {
  return serializeImage(snapshot(), actors_, overwritten());
}

bool Tracer::save(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = std::fclose(f) == 0 && wrote == bytes.size();
  return ok;
}

const std::string& DecodedTrace::actorName(std::uint32_t id) const {
  static const std::string kNone = "?";
  if (id == 0 || id > actors.size()) return kNone;
  return actors[id - 1];
}

DecodedTrace decodeTrace(std::span<const std::uint8_t> bytes) {
  DecodedTrace out;
  Reader r{bytes};
  if (!r.have(8 + 4 + 4 + 8 + 8 + 4)) {
    out.error = "header truncated";
    return out;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    out.error = "bad magic";
    return out;
  }
  r.pos += sizeof(kMagic);
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    out.error = "unsupported version " + std::to_string(version);
    return out;
  }
  const std::uint32_t recordSize = r.u32();
  if (recordSize != sizeof(TraceRecord)) {
    out.error = "unexpected record size " + std::to_string(recordSize);
    return out;
  }
  const std::uint64_t count = r.u64();
  out.overwritten = r.u64();
  const std::uint32_t actorCount = r.u32();
  // An absurd actor count (more actors than remaining bytes could possibly
  // name) means a corrupt header — bail before looping.
  if (actorCount > bytes.size()) {
    out.error = "actor count exceeds input size";
    return out;
  }
  for (std::uint32_t i = 0; i < actorCount; ++i) {
    if (!r.have(2)) {
      out.error = "actor table truncated";
      return out;
    }
    const std::uint16_t len = r.u16();
    if (!r.have(len)) {
      out.error = "actor name truncated";
      return out;
    }
    out.actors.emplace_back(reinterpret_cast<const char*>(&bytes[r.pos]), len);
    r.pos += len;
  }
  // Record region: a short tail yields whatever whole records fit, flagged
  // `truncated` rather than treated as fatal — partial flight-recorder dumps
  // (crashed process, chopped file) should still be readable.
  if (count > (bytes.size() - r.pos) / sizeof(TraceRecord)) {
    out.truncated = true;
  }
  const std::uint64_t usable =
      std::min<std::uint64_t>(count, (bytes.size() - r.pos) / sizeof(TraceRecord));
  out.records.reserve(static_cast<std::size_t>(usable));
  for (std::uint64_t i = 0; i < usable; ++i) {
    TraceRecord rec;
    std::memcpy(&rec, &bytes[r.pos], sizeof(TraceRecord));
    r.pos += sizeof(TraceRecord);
    if (rec.kind == 0 || rec.kind > kMaxTraceKind) ++out.badKinds;
    out.records.push_back(rec);
  }
  // serialize() writes exactly `count` records and nothing after them, so
  // leftover bytes mean the header undercounts (e.g. a corrupted `count`
  // field) — flag it rather than silently ignoring data.
  const bool trailing = !out.truncated && r.pos != bytes.size();
  out.ok = !out.truncated && !trailing && out.badKinds == 0;
  if (out.truncated) out.error = "record region truncated";
  else if (trailing) out.error = "trailing bytes after record region";
  else if (out.badKinds > 0) out.error = "records with out-of-range kind";
  return out;
}

std::vector<std::uint8_t> mergeTraces(
    std::span<const Tracer* const> tracers) {
  if (tracers.empty()) return serializeImage({}, {}, 0);
  // One recorder is the legacy case: its exact bytes, so a 1-shard run
  // stays comparable against checked-in golden traces.
  if (tracers.size() == 1) return tracers[0]->serialize();

  std::vector<std::string> actors;
  std::vector<TraceRecord> merged;
  std::uint64_t overwritten = 0;
  std::uint32_t actorBase = 0;
  for (std::size_t k = 0; k < tracers.size(); ++k) {
    const Tracer& t = *tracers[k];
    for (const std::string& name : t.actors()) {
      actors.push_back("s" + std::to_string(k) + "/" + name);
    }
    for (TraceRecord r : t.snapshot()) {
      if (r.actor != 0) r.actor += actorBase;
      merged.push_back(r);
    }
    actorBase += static_cast<std::uint32_t>(t.actors().size());
    overwritten += t.overwritten();
  }
  // Stable sort on timestamp alone: records were appended in (shard index,
  // ring order), so ties keep exactly that order — the documented
  // (tsNanos, shard, ring order) key without materializing it.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.tsNanos < b.tsNanos;
                   });
  return serializeImage(merged, actors, overwritten);
}

}  // namespace tpp::sim
