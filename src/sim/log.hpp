// Minimal leveled logger. Simulation components log through a per-component
// tag; the global level defaults to Warn so tests and benches stay quiet
// unless an experiment opts in.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "src/sim/time.hpp"

namespace tpp::sim {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

class Log {
 public:
  static void setLevel(LogLevel level);
  static LogLevel level();

  // Writes one line to stderr if `level` passes the global threshold.
  static void write(LogLevel level, std::string_view tag, Time when,
                    std::string_view message);
};

// Usage: TPP_LOG(Info, "switch0", sim.now()) << "enqueued " << n << " bytes";
// The stream body is only evaluated when the level is enabled.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag, Time when)
      : level_(level), tag_(tag), when_(when),
        enabled_(level >= Log::level()) {}
  ~LogLine() {
    if (enabled_) Log::write(level_, tag_, when_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  Time when_;
  bool enabled_;
  std::ostringstream os_;
};

}  // namespace tpp::sim

#define TPP_LOG(level, tag, when) \
  ::tpp::sim::LogLine(::tpp::sim::LogLevel::level, (tag), (when))
