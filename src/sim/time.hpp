// Simulation time: a signed 64-bit count of nanoseconds.
//
// A single type serves as both an instant (time since simulation start) and
// a duration; this mirrors ns-3's design and avoids a proliferation of
// conversion overloads in component interfaces.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace tpp::sim {

class Time {
 public:
  constexpr Time() = default;

  // Named constructors. Prefer these to the raw constructor at call sites.
  static constexpr Time ns(std::int64_t v) { return Time{v}; }
  static constexpr Time us(std::int64_t v) { return Time{v * 1'000}; }
  static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000}; }
  static constexpr Time sec(std::int64_t v) { return Time{v * 1'000'000'000}; }
  static constexpr Time seconds(double v) {
    return Time{static_cast<std::int64_t>(v * 1e9)};
  }
  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() { return Time{INT64_MAX}; }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double toSeconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double toMicros() const { return static_cast<double>(ns_) * 1e-3; }
  constexpr double toMillis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr Time operator+(Time o) const { return Time{ns_ + o.ns_}; }
  constexpr Time operator-(Time o) const { return Time{ns_ - o.ns_}; }
  constexpr Time operator*(std::int64_t k) const { return Time{ns_ * k}; }
  constexpr Time operator/(std::int64_t k) const { return Time{ns_ / k}; }
  constexpr double operator/(Time o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const Time&) const = default;

  std::string toString() const;

 private:
  explicit constexpr Time(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

// Duration of serializing `bytes` onto a link of `bitsPerSec` capacity.
constexpr Time transmissionTime(std::size_t bytes, std::uint64_t bitsPerSec) {
  // ns = bits * 1e9 / rate. Compute in __int128 to avoid overflow for
  // jumbo frames on slow links.
  const __int128 bits = static_cast<__int128>(bytes) * 8;
  return Time::ns(static_cast<std::int64_t>(bits * 1'000'000'000 /
                                            static_cast<__int128>(bitsPerSec)));
}

}  // namespace tpp::sim
