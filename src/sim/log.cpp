#include "src/sim/log.hpp"

#include <cstdio>

namespace tpp::sim {
namespace {

LogLevel g_level = LogLevel::Warn;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO";
    case LogLevel::Warn:  return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF";
  }
  return "?";
}

}  // namespace

void Log::setLevel(LogLevel level) { g_level = level; }
LogLevel Log::level() { return g_level; }

void Log::write(LogLevel level, std::string_view tag, Time when,
                std::string_view message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%11.6fs] %-5s %.*s: %.*s\n", when.toSeconds(),
               levelName(level), static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace tpp::sim
