#include "src/sim/fault.hpp"

namespace tpp::sim {

LinkFaultState::Verdict LinkFaultState::onTransmit() {
  ++transmitted_;
  if (down_) {
    ++downDrops_;
    return Verdict::Drop;
  }
  // Zero-probability plans consume no randomness, so arming a link with an
  // all-zero plan perturbs nothing (and costs only these two compares).
  if (plan_.dropProbability > 0.0 && rng_.bernoulli(plan_.dropProbability)) {
    ++randomDrops_;
    return Verdict::Drop;
  }
  if (plan_.corruptProbability > 0.0 &&
      rng_.bernoulli(plan_.corruptProbability)) {
    ++corrupted_;
    return Verdict::Corrupt;
  }
  return Verdict::Deliver;
}

std::pair<std::size_t, unsigned> LinkFaultState::corruptionTarget(
    std::size_t frameBytes) {
  if (frameBytes == 0) return {0, 0};
  const auto byte = static_cast<std::size_t>(
      rng_.uniformInt(0, static_cast<std::int64_t>(frameBytes) - 1));
  const auto bit = static_cast<unsigned>(rng_.uniformInt(0, 7));
  return {byte, bit};
}

LinkFaultState& FaultInjector::link(std::string name, LinkFaultPlan plan) {
  if (auto* existing = find(name)) return *existing;
  links_.push_back(std::make_unique<LinkFaultState>(
      name, master_.fork("link:" + name), plan));
  return *links_.back();
}

LinkFaultState* FaultInjector::find(std::string_view name) {
  for (const auto& l : links_) {
    if (l->name() == name) return l.get();
  }
  return nullptr;
}

void FaultInjector::linkDownWindow(LinkFaultState& link, Time from, Time to) {
  sim_.scheduleAt(from, [&link] { link.setDown(true); });
  sim_.scheduleAt(to, [&link] { link.setDown(false); });
}

std::uint64_t FaultInjector::totalDrops() const {
  std::uint64_t n = 0;
  for (const auto& l : links_) n += l->totalDrops();
  return n;
}

std::uint64_t FaultInjector::totalCorrupted() const {
  std::uint64_t n = 0;
  for (const auto& l : links_) n += l->corrupted();
  return n;
}

}  // namespace tpp::sim
