#include "src/sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tpp::sim {

void Ewma::add(double sample) {
  if (!primed_) {
    value_ = sample;
    primed_ = true;
  } else {
    value_ = alpha_ * sample + (1.0 - alpha_) * value_;
  }
}

void Ewma::reset() {
  value_ = 0.0;
  primed_ = false;
}

void WindowedRate::add(Time now, std::uint64_t bytes) {
  roll(now);
  bytesInWindow_ += bytes;
}

double WindowedRate::rateBps(Time now) {
  roll(now);
  return lastRateBps_;
}

void WindowedRate::roll(Time now) {
  if (now < windowStart_ + window_) return;
  lastRateBps_ = static_cast<double>(bytesInWindow_) * 8.0 /
                 window_.toSeconds();
  bytesInWindow_ = 0;
  const std::int64_t elapsed = (now - windowStart_).nanos();
  const std::int64_t nwin = elapsed / window_.nanos();
  // If one or more whole idle windows elapsed since the window we just
  // closed, the most recently completed window carried no traffic.
  if (nwin >= 2) lastRateBps_ = 0.0;
  windowStart_ += window_ * nwin;
}

void Summary::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins + 1, 0) {}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = bins_.size() - 1;  // overflow bin
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, bins_.size() - 2);
  }
  ++bins_[idx];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    seen += bins_[i];
    if (seen > target) {
      if (i == bins_.size() - 1) return hi_;  // overflow: report the cap
      return lo_ + (static_cast<double>(i) + 0.5) * width_;
    }
  }
  return hi_;
}

std::string Histogram::toString() const {
  std::ostringstream os;
  os << "hist[" << lo_ << "," << hi_ << ") n=" << total_
     << " p50=" << quantile(0.5) << " p99=" << quantile(0.99);
  return os.str();
}

double TimeSeries::meanOver(Time from, Time to) const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t >= from && t < to) {
      sum += v;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::string TimeSeries::toCsv() const {
  std::ostringstream os;
  for (const auto& [t, v] : points_) os << t.toSeconds() << "," << v << "\n";
  return os.str();
}

}  // namespace tpp::sim
