#include "src/sim/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace tpp::sim {

std::string Time::toString() const {
  char buf[48];
  if (ns_ >= 1'000'000'000 || ns_ <= -1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.6fs", toSeconds());
  } else if (ns_ >= 1'000'000 || ns_ <= -1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", toMillis());
  } else if (ns_ >= 1'000 || ns_ <= -1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", toMicros());
  } else {
    std::snprintf(buf, sizeof buf, "%" PRId64 "ns", ns_);
  }
  return buf;
}

}  // namespace tpp::sim
