// A deterministic event queue: events fire in (time, insertion-sequence)
// order, so two events scheduled for the same instant run in the order they
// were scheduled, independent of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "src/sim/time.hpp"

namespace tpp::sim {

using EventFn = std::function<void()>;

// Handle for cancelling a pending event. Copyable; cancelling twice is a
// no-op, as is cancelling an event that already fired.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() { if (cancelled_) *cancelled_ = true; }
  bool pending() const { return cancelled_ && !*cancelled_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> c) : cancelled_(std::move(c)) {}
  std::shared_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  EventHandle push(Time at, EventFn fn);

  // True when no live (non-cancelled) events remain. Purges cancelled
  // entries from the head as a side effect, hence non-const.
  bool empty();
  std::size_t size() const { return heap_.size(); }

  // Time of the earliest live event. Precondition: !empty().
  Time nextTime();

  struct Fired {
    Time at;
    EventFn fn;
  };
  // Pops the earliest live event, or nullopt if none remain.
  std::optional<Fired> tryPop();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  void dropCancelledHead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t nextSeq_ = 0;
};

}  // namespace tpp::sim
