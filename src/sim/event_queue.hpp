// A deterministic event queue: events fire in (time, insertion-sequence)
// order, so two events scheduled for the same instant run in the order they
// were scheduled, independent of heap internals.
//
// Storage is a slab of generation-counted slots: the binary heap holds only
// POD entries (time, sequence, slot, generation) while callbacks live in
// the slab, and an EventHandle is (queue, slot, generation). Cancelling
// bumps the slot's generation, which simultaneously invalidates the heap
// entry (lazily dropped when it reaches the head) and every copy of the
// handle — no per-event shared_ptr control block, and with EventFn's inline
// storage no per-event heap allocation at all for typical captures.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "src/sim/event_fn.hpp"
#include "src/sim/time.hpp"

namespace tpp::sim {

class EventQueue;

// Handle for cancelling a pending event. Copyable; copies share the
// cancellation (they name the same slot + generation). Cancelling twice is
// a no-op, as is cancelling an event that already fired. A non-default
// handle must not be used after its EventQueue is destroyed (in this
// codebase handles live in components that die before their Simulator).
class EventHandle {
 public:
  EventHandle() = default;
  void cancel();
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t gen)
      : queue_(queue), slot_(slot), gen_(gen) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class EventQueue {
 public:
  EventHandle push(Time at, EventFn fn);

  // True when no live (non-cancelled) events remain. Purges cancelled
  // entries from the head as a side effect, hence non-const.
  bool empty();
  std::size_t size() const { return heap_.size(); }

  // Time of the earliest live event. Precondition: !empty().
  Time nextTime();

  struct Fired {
    Time at;
    EventFn fn;
    std::uint64_t seq = 0;  // insertion sequence; keys schedule↔fire traces
  };
  // Pops the earliest live event, or nullopt if none remain.
  std::optional<Fired> tryPop();

  // Sequence number the next push() will get (so callers can trace the seq
  // of an event they just scheduled as nextSeq() - 1).
  std::uint64_t nextSeq() const { return nextSeq_; }

 private:
  friend class EventHandle;

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;  // bumped on fire/cancel; mismatch = dead entry
  };
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool liveEntry(const Entry& e) const { return slots_[e.slot].gen == e.gen; }
  // Destroys the slot's callback, bumps its generation and recycles it.
  void retireSlot(std::uint32_t slot);
  void dropCancelledHead();

  // EventHandle backends.
  bool slotPending(std::uint32_t slot, std::uint32_t gen) const {
    return slots_[slot].gen == gen;
  }
  void cancelSlot(std::uint32_t slot, std::uint32_t gen) {
    if (slots_[slot].gen == gen) retireSlot(slot);
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::uint64_t nextSeq_ = 0;
};

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancelSlot(slot_, gen_);
}

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->slotPending(slot_, gen_);
}

}  // namespace tpp::sim
