#include "src/sim/random.hpp"

#include <cmath>

namespace tpp::sim {
namespace {

// FNV-1a, used only for substream derivation (not security-sensitive).
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Rng Rng::fork(std::string_view name) const {
  // Mix the parent seed with the name hash through splitmix64 to decorrelate
  // substreams whose names differ by one bit.
  std::uint64_t z = seed_ ^ fnv1a(name);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return Rng{z};
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::paretoBounded(double shape, double lo, double hi) {
  // Inverse-CDF sampling of a Pareto truncated to [lo, hi].
  const double u = uniform(0.0, 1.0);
  const double la = std::pow(lo, shape);
  const double ha = std::pow(hi, shape);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

}  // namespace tpp::sim
