// EventFn: the simulator's callback type — a move-only callable holder
// with inline storage.
//
// std::function heap-allocates any capture larger than two pointers and
// requires copyability, which forced hot paths to shim move-only payloads
// (PacketPtr) through a shared_ptr. EventFn instead keeps kInlineBytes of
// inline storage — enough for every dataplane lambda (a `this`, a packet,
// a couple of scalars) — and accepts move-only callables directly. Captures
// that exceed the inline buffer still work via a single heap allocation.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tpp::sim {

class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable sink
    using D = std::remove_cvref_t<F>;
    if constexpr (fitsInline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { moveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->call(storage_); }

 private:
  struct Ops {
    void (*call)(void*);
    // Move-constructs dst from src and destroys src.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool fitsInline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* inlineObj(void* p) {
    return std::launder(reinterpret_cast<D*>(p));
  }
  template <typename D>
  static D*& heapObj(void* p) {
    return *std::launder(reinterpret_cast<D**>(p));
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*inlineObj<D>(p))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) D(std::move(*inlineObj<D>(src)));
        inlineObj<D>(src)->~D();
      },
      [](void* p) noexcept { inlineObj<D>(p)->~D(); }};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) { (*heapObj<D>(p))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(heapObj<D>(src));
      },
      [](void* p) noexcept { delete heapObj<D>(p); }};

  void moveFrom(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace tpp::sim
