// Flight recorder: an always-on, fixed-cost trace of what the dataplane
// actually did — event firings, link transits, queue churn, TCPU retires,
// fault verdicts, probe lifecycles — in a bounded ring of fixed-size binary
// records. When a chaos run or a convergence test misbehaves, the last N
// records answer "which events fired, which instructions executed, where
// did the probe die" without rerunning anything.
//
// Cost discipline (mirrors sim/fault.hpp): components hold a `Tracer*`
// defaulting to nullptr, so every disarmed hot-path site is a single
// predictable branch; an armed site is one 32-byte store into a
// pre-allocated ring. Compiling with -DTPP_TRACE_DISABLED (cmake
// -DTPP_TRACE=OFF) empties record() so the whole body folds away.
//
// The ring overwrites oldest records (that is what makes it a flight
// recorder, not a log): `overwritten()` counts what was lost, and the
// Switch exposes it to TPPs as [Switch:TraceDrops].
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/sim/time.hpp"

namespace tpp::sim {

#if defined(TPP_TRACE_DISABLED)
inline constexpr bool kTraceCompiledIn = false;
#else
inline constexpr bool kTraceCompiledIn = true;
#endif

// What happened. Values are part of the serialized format — append only.
enum class TraceKind : std::uint8_t {
  None = 0,           // never recorded; marks an invalid/blank record
  EventSchedule = 1,  // a=event seq (lo32), b/c=fire-at nanos lo/hi
  EventFire = 2,      // a=event seq (lo32)
  PacketEnqueue = 3,  // a=egress port, b=queue id, c=bytes, d=queue bytes after
  PacketDequeue = 4,  // a=egress port, b=queue id, c=bytes
  PacketDrop = 5,     // a=port, b=queue id, c=bytes
  LinkTxStart = 6,    // a=wire bytes, b/c=serialization-end nanos lo/hi
  LinkDeliver = 7,    // a=payload bytes
  LinkFaultDrop = 8,  // a=payload bytes (random loss or down window)
  LinkFaultCorrupt = 9,   // a=flipped byte index, b=bit index
  LinkDetachedDrop = 10,  // a=payload bytes (no receiver attached)
  TcpuExecute = 11,   // a=hop number after execute, b=instructions executed,
                      // c=fault code, d=modelled cycles (lo32)
  TcpuRetire = 12,    // a=instruction index, b=opcode, c=addr operand,
                      // d=pmem offset operand
  ProbeSend = 13,     // a=seq, b=instruction count, c=seq word index
  ProbeRetransmit = 14,  // a=seq, b=retries left after this one
  ProbeEcho = 15,     // a=seq, b=hop count, c=fault code
  ProbeLoss = 16,     // a=seq
  ProbeDuplicate = 17,   // a=seq
  ProbeLateEcho = 18,    // a=seq, b=hop count, c=fault code
  SwitchReboot = 19,  // a=boot epoch after the wipe
  TcpRetransmit = 20,    // a=local port, b=seq, c=payload bytes, d=1 if fast
  TcpRto = 21,        // a=local port, b=backed-off RTO (us), c=consecutive
                      // timeouts so far
  TcpCwndCut = 22,    // a=local port, b=cwnd after the cut (bytes),
                      // c=reason (0=rto, 1=dup-ack, 2=tpp probe)
};
inline constexpr std::uint8_t kMaxTraceKind =
    static_cast<std::uint8_t>(TraceKind::TcpCwndCut);

// One fixed-size binary record. POD by construction: the ring, the on-disk
// format, and the decoder all treat it as 32 raw bytes.
struct TraceRecord {
  std::int64_t tsNanos = 0;   // simulator clock at the record site
  std::uint32_t actor = 0;    // interned component id (0 = unattributed)
  std::uint16_t task = 0;     // TPP task id when the site knows it
  std::uint8_t kind = 0;      // TraceKind
  std::uint8_t reserved = 0;  // format padding, always 0
  std::uint32_t a = 0, b = 0, c = 0, d = 0;  // kind-specific payload

  TraceKind kindOf() const { return static_cast<TraceKind>(kind); }
  bool operator==(const TraceRecord&) const = default;
};
static_assert(sizeof(TraceRecord) == 32, "records are 32 bytes on the wire");
static_assert(std::is_trivially_copyable_v<TraceRecord>);

class Tracer {
 public:
  // `capacity` is rounded up to a power of two (ring indexing is a mask).
  explicit Tracer(std::size_t capacity = 1u << 16);

  // Interns a component name, returning its stable actor id (>= 1; 0 means
  // "no actor"). Registration is setup-time only — never on a hot path.
  std::uint32_t actor(std::string name);
  const std::vector<std::string>& actors() const { return actors_; }

  // The one hot-path entry point: one bounds-free ring store when compiled
  // in, nothing at all when compiled out.
  void record(Time at, TraceKind kind, std::uint32_t actor, std::uint16_t task,
              std::uint32_t a = 0, std::uint32_t b = 0, std::uint32_t c = 0,
              std::uint32_t d = 0) {
    if constexpr (!kTraceCompiledIn) {
      (void)at, (void)kind, (void)actor, (void)task;
      (void)a, (void)b, (void)c, (void)d;
    } else {
      TraceRecord& r = ring_[head_ & mask_];
      r.tsNanos = at.nanos();
      r.actor = actor;
      r.task = task;
      r.kind = static_cast<std::uint8_t>(kind);
      r.reserved = 0;
      r.a = a;
      r.b = b;
      r.c = c;
      r.d = d;
      ++head_;
    }
  }

  std::size_t capacity() const { return ring_.size(); }
  // Total records ever written (monotonic, survives wrap).
  std::uint64_t written() const { return head_; }
  // Records lost to ring wrap — the flight recorder's "TraceDrops".
  std::uint64_t overwritten() const {
    return head_ > ring_.size() ? head_ - ring_.size() : 0;
  }
  std::size_t size() const {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_)
                                : ring_.size();
  }
  void clear() { head_ = 0; }

  // Surviving records, oldest first.
  std::vector<TraceRecord> snapshot() const;

  // Binary image: header + actor table + records (see trace.cpp for the
  // layout). decodeTrace() round-trips it.
  std::vector<std::uint8_t> serialize() const;
  bool save(const std::string& path) const;

 private:
  std::vector<TraceRecord> ring_;
  std::size_t mask_ = 0;
  std::uint64_t head_ = 0;
  std::vector<std::string> actors_;
};

// Decoded binary trace. The decoder never crashes on adversarial input: any
// structural problem sets `ok = false` and `error`, and whatever prefix
// parsed cleanly is still returned (`truncated` marks a short record
// region, `badKinds` counts records whose kind byte is out of range).
struct DecodedTrace {
  std::vector<TraceRecord> records;
  std::vector<std::string> actors;
  std::uint64_t overwritten = 0;
  bool ok = false;
  bool truncated = false;
  std::uint64_t badKinds = 0;
  std::string error;

  const std::string& actorName(std::uint32_t id) const;
};
DecodedTrace decodeTrace(std::span<const std::uint8_t> bytes);

// Merges per-shard flight recorders into one serialized trace image.
//
// One tracer degenerates to `tracers[0]->serialize()` — byte-identical to
// the legacy single-threaded path, which is what lets the golden suite
// compare a 1-shard sharded run against checked-in traces. With several
// tracers the surviving records are stably k-way merged by (tsNanos, shard
// index, ring order), actor ids are remapped into a concatenated table with
// each name prefixed "s<k>/", and overwritten counts are summed. Purely a
// function of the tracers' contents: deterministic inputs in, deterministic
// bytes out.
std::vector<std::uint8_t> mergeTraces(std::span<const Tracer* const> tracers);

}  // namespace tpp::sim
