// Deterministic fault injection: the dataplane failure modes end-host
// refactored tasks must tolerate (§2.2 and the Minions extended version):
// random packet loss and bit corruption on a link, link down/up windows,
// TPP-unaware switches, and switch reboots that wipe scratch SRAM.
//
// Every decision is drawn from a named Rng substream forked from one master
// seed, so an entire chaos run is bit-reproducible from (seed, scenario):
// the same (seed, link name) pair always drops/corrupts the same packets in
// the same order, regardless of which other fault states exist.
//
// Layering: this file knows nothing about links or switches. A
// LinkFaultState is a decision engine + counters; net::Channel holds an
// optional pointer to one and consults it per transmit (a single branch on
// the no-fault hot path). Switch-level faults (reboot, TCPU disable) are
// scheduled through FaultInjector::at() by the scenario that owns the
// switch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"

namespace tpp::sim {

// Stochastic faults applied to one direction of a link.
struct LinkFaultPlan {
  double dropProbability = 0.0;     // i.i.d. packet loss on the wire
  double corruptProbability = 0.0;  // i.i.d. single-bit flip in the frame
};

// Per-channel fault decision engine. Owned by a FaultInjector; a Channel
// only sees a stable pointer.
class LinkFaultState {
 public:
  LinkFaultState(std::string name, Rng rng, LinkFaultPlan plan)
      : name_(std::move(name)), rng_(std::move(rng)), plan_(plan) {}

  enum class Verdict : std::uint8_t { Deliver, Drop, Corrupt };

  // One decision per packet handed to the channel, in transmit order —
  // the only place this state's randomness is consumed.
  Verdict onTransmit();

  // Picks the bit to flip for a Corrupt verdict: (byte index, bit index).
  std::pair<std::size_t, unsigned> corruptionTarget(std::size_t frameBytes);

  // Link-down windows drop every packet while active (no randomness used).
  void setDown(bool down) { down_ = down; }
  bool down() const { return down_; }

  const std::string& name() const { return name_; }
  const LinkFaultPlan& plan() const { return plan_; }

  std::uint64_t transmitted() const { return transmitted_; }
  std::uint64_t randomDrops() const { return randomDrops_; }
  std::uint64_t downDrops() const { return downDrops_; }
  std::uint64_t corrupted() const { return corrupted_; }
  std::uint64_t totalDrops() const { return randomDrops_ + downDrops_; }

 private:
  std::string name_;
  Rng rng_;
  LinkFaultPlan plan_;
  bool down_ = false;
  std::uint64_t transmitted_ = 0;
  std::uint64_t randomDrops_ = 0;
  std::uint64_t downDrops_ = 0;
  std::uint64_t corrupted_ = 0;
};

// Registry + scheduler for a chaos scenario. One injector per experiment,
// seeded once; link states fork substreams by name.
class FaultInjector {
 public:
  FaultInjector(Simulator& simulator, std::uint64_t seed)
      : sim_(simulator), master_(seed) {}

  std::uint64_t seed() const { return master_.seed(); }

  // Creates (or returns the existing) fault state for the named link
  // direction. The state's stream depends only on (seed, name).
  LinkFaultState& link(std::string name, LinkFaultPlan plan = {});
  LinkFaultState* find(std::string_view name);
  const std::vector<std::unique_ptr<LinkFaultState>>& links() const {
    return links_;
  }

  // Schedules a down/up window on a link state.
  void linkDownWindow(LinkFaultState& link, Time from, Time to);

  // Schedules an arbitrary fault action (switch reboot, TCPU disable, …)
  // at an absolute instant.
  void at(Time t, EventFn fn) { sim_.scheduleAt(t, std::move(fn)); }

  // Aggregates across every registered link state.
  std::uint64_t totalDrops() const;
  std::uint64_t totalCorrupted() const;

 private:
  Simulator& sim_;
  Rng master_;
  std::vector<std::unique_ptr<LinkFaultState>> links_;
};

}  // namespace tpp::sim
