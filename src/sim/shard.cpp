#include "src/sim/shard.hpp"

#include <algorithm>
#include <barrier>
#include <thread>

namespace tpp::sim {

ShardedSimulator::ShardedSimulator(std::size_t shardCount) {
  if (shardCount == 0) shardCount = 1;
  shards_.reserve(shardCount);
  for (std::size_t i = 0; i < shardCount; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  inboxes_.resize(shardCount);
}

CrossShardChannel& ShardedSimulator::addChannel(std::size_t fromShard,
                                                std::size_t toShard,
                                                Time minLatency) {
  assert(fromShard < shards_.size() && toShard < shards_.size());
  assert(fromShard != toShard && "same-shard traffic never crosses a channel");
  assert(minLatency > Time::zero() &&
         "conservative lookahead needs a positive cross-shard latency");
  channels_.push_back(
      std::make_unique<CrossShardChannel>(fromShard, toShard, minLatency));
  CrossShardChannel& ch = *channels_.back();
  inboxes_[toShard].push_back(&ch);
  lookahead_ = std::min(lookahead_, minLatency);
  return ch;
}

std::uint64_t ShardedSimulator::eventsExecuted() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->eventsExecuted();
  return n;
}

Time ShardedSimulator::now() const {
  Time t = Time::zero();
  for (const auto& s : shards_) t = std::max(t, s->now());
  return t;
}

Time ShardedSimulator::nextPendingTime() {
  Time next = Time::max();
  for (const auto& s : shards_) next = std::min(next, s->nextEventTime());
  for (const auto& ch : channels_) {
    if (const auto* m = ch->peek()) next = std::min(next, m->at);
  }
  return next;
}

std::uint64_t ShardedSimulator::run(Time until) {
  // The single-shard path is the legacy path, bit for bit: same thread,
  // same Simulator::run loop, no barriers, no channels.
  if (shards_.size() == 1 && channels_.empty()) return shards_[0]->run(until);
  return runParallel(until);
}

std::uint64_t ShardedSimulator::runParallel(Time until) {
  const std::uint64_t before = eventsExecuted();
  stopRequested_.store(false, std::memory_order_relaxed);

  // Window control block. Written only in single-threaded phases and the
  // barrier completion step; the barrier's phase transition publishes it
  // to every worker.
  struct Control {
    Time windowEnd = Time::zero();
    bool done = false;
    bool tailAdvance = false;  // advance clocks to `until` after the loop
  } ctl;

  Time processed = Time::zero();  // P: all events with t <= P are done
  for (const auto& s : shards_) processed = std::max(processed, s->now());
  // The first window may (re)process events at exactly the current clock,
  // so back P off by one tick to keep "producers at t > P" literally true.
  processed = processed - Time::ns(1);

  const Time first = nextPendingTime();
  if (first == Time::max() || first > until || until <= processed) {
    if (until != Time::max()) {
      for (auto& s : shards_) s->run(until);  // clock advance only
    }
    return eventsExecuted() - before;
  }

  const Time la = lookahead_;
  assert((channels_.empty() || la > Time::zero()) && "unset lookahead");
  const auto nextWindow = [until, la](Time p, Time next) {
    // Events in (P, E] with E <= max(P, next-1) + L create cross-shard
    // messages due strictly after E; `next` jumps dead air in one step.
    // The sum saturates: with no channels la is Time::max() ("one window
    // covers everything"), and near-horizon bases must not overflow.
    const Time base = std::max(p, next - Time::ns(1));
    const Time horizon =
        (la == Time::max() ||
         base.nanos() > Time::max().nanos() - la.nanos())
            ? Time::max()
            : base + la;
    return std::min(until, std::max(horizon, next));
  };
  ctl.windowEnd = nextWindow(processed, first);

  auto onPhase = [this, &ctl, &processed, until, nextWindow,
                  la]() noexcept {
    (void)la;
    bool stopped = stopRequested_.load(std::memory_order_relaxed);
    for (const auto& s : shards_) stopped = stopped || s->stopped();
    if (stopped) {
      ctl.done = true;
      return;
    }
    processed = ctl.windowEnd;
    const Time next = nextPendingTime();
    if (next == Time::max() || next > until) {
      ctl.done = true;
      ctl.tailAdvance = until != Time::max();
      return;
    }
    ctl.windowEnd = nextWindow(processed, next);
  };
  std::barrier bar(static_cast<std::ptrdiff_t>(shards_.size()), onPhase);

  auto worker = [this, &ctl, &bar, until](std::size_t idx) {
    Simulator& s = *shards_[idx];
    while (true) {
      // Merge arrivals due in this window. Conservative lookahead
      // guarantees they were all pushed before the previous barrier;
      // anything a concurrent producer appends now is due later than
      // windowEnd and stays queued (per-channel times are monotone).
      for (CrossShardChannel* ch : inboxes_[idx]) {
        while (CrossShardChannel::Message* m = ch->peek()) {
          if (m->at > ctl.windowEnd) break;
          s.scheduleAt(m->at, std::move(m->fn));
          ch->pop();
        }
      }
      s.run(ctl.windowEnd);
      bar.arrive_and_wait();
      if (ctl.done) break;
    }
    if (ctl.tailAdvance) s.run(until);  // no events left <= until: clock only
  };

  std::vector<std::thread> threads;
  threads.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    threads.emplace_back(worker, i);
  }
  worker(0);
  for (auto& t : threads) t.join();
  return eventsExecuted() - before;
}

}  // namespace tpp::sim
