// Small statistics toolkit shared across the simulator: EWMA, windowed rate
// estimation, summary accumulators, histograms, and time series (for the
// benches that print figure data).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/time.hpp"

namespace tpp::sim {

// Exponentially weighted moving average with per-sample weight `alpha`.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}
  void add(double sample);
  double value() const { return value_; }
  bool primed() const { return primed_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

// Byte-rate estimator over fixed windows: add(bytes) as traffic arrives,
// rateBps(now) returns the rate measured over the last *completed* window.
// This models how an ASIC tracks RX utilization in a register.
class WindowedRate {
 public:
  explicit WindowedRate(Time window) : window_(window) {}
  void add(Time now, std::uint64_t bytes);
  double rateBps(Time now);
  Time window() const { return window_; }

 private:
  void roll(Time now);
  Time window_;
  Time windowStart_ = Time::zero();
  std::uint64_t bytesInWindow_ = 0;
  double lastRateBps_ = 0.0;
};

// Running min/mean/max/stddev accumulator (Welford).
class Summary {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bin linear histogram with overflow bin; supports quantile queries.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::uint64_t total() const { return total_; }
  double quantile(double q) const;  // q in [0,1]
  std::string toString() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> bins_;  // last bin is overflow
  std::uint64_t total_ = 0;
};

// Timestamped series of doubles; used by benches to print figure data.
class TimeSeries {
 public:
  void add(Time t, double v) { points_.emplace_back(t, v); }
  const std::vector<std::pair<Time, double>>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  // Mean of values with t in [from, to).
  double meanOver(Time from, Time to) const;
  // "t_seconds,value" lines, one per point.
  std::string toCsv() const;

 private:
  std::vector<std::pair<Time, double>> points_;
};

}  // namespace tpp::sim
