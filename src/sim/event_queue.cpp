#include "src/sim/event_queue.hpp"

#include <cassert>

namespace tpp::sim {

EventHandle EventQueue::push(Time at, EventFn fn) {
  std::uint32_t slot;
  if (!freeSlots_.empty()) {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  const std::uint32_t gen = slots_[slot].gen;
  heap_.push(Entry{at, nextSeq_++, slot, gen});
  return EventHandle{this, slot, gen};
}

void EventQueue::retireSlot(std::uint32_t slot) {
  slots_[slot].fn = EventFn{};
  ++slots_[slot].gen;
  freeSlots_.push_back(slot);
}

void EventQueue::dropCancelledHead() {
  while (!heap_.empty() && !liveEntry(heap_.top())) heap_.pop();
}

bool EventQueue::empty() {
  dropCancelledHead();
  return heap_.empty();
}

Time EventQueue::nextTime() {
  dropCancelledHead();
  assert(!heap_.empty());
  return heap_.top().at;
}

std::optional<EventQueue::Fired> EventQueue::tryPop() {
  dropCancelledHead();
  if (heap_.empty()) return std::nullopt;
  const Entry e = heap_.top();
  heap_.pop();
  Fired fired{e.at, std::move(slots_[e.slot].fn), e.seq};
  retireSlot(e.slot);  // consumed: handles report !pending()
  return fired;
}

}  // namespace tpp::sim
