#include "src/sim/event_queue.hpp"

#include <cassert>

namespace tpp::sim {

EventHandle EventQueue::push(Time at, EventFn fn) {
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Entry{at, nextSeq_++, std::move(fn), cancelled});
  return EventHandle{std::move(cancelled)};
}

void EventQueue::dropCancelledHead() {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool EventQueue::empty() {
  dropCancelledHead();
  return heap_.empty();
}

Time EventQueue::nextTime() {
  dropCancelledHead();
  assert(!heap_.empty());
  return heap_.top().at;
}

std::optional<EventQueue::Fired> EventQueue::tryPop() {
  dropCancelledHead();
  if (heap_.empty()) return std::nullopt;
  // priority_queue::top() is const; moving out is safe because we pop
  // immediately and never touch the moved-from entry again.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  *e.cancelled = true;  // consumed: handles report !pending()
  return Fired{e.at, std::move(e.fn)};
}

}  // namespace tpp::sim
