#include "src/rcp/rcp_router.hpp"

#include "src/asic/parser.hpp"
#include "src/core/memory_map.hpp"

namespace tpp::rcp {

RcpRouter::RcpRouter(asic::Switch& sw, Config config)
    : sw_(sw), config_(std::move(config)) {
  states_.reserve(config_.managedPorts.size());
  for (const auto port : config_.managedPorts) {
    states_.push_back(PortState{port, 0.0, 0, 0.0});
  }
}

void RcpRouter::start() {
  for (auto& s : states_) {
    s.rateBps = static_cast<double>(sw_.portCapacityBps(s.port));
    s.lastOfferedBytes = sw_.portOfferedBytes(s.port);
    s.lastQueueIntegral = sw_.queueByteTimeIntegral(s.port);
    writeRegister(s);
  }
  sw_.simulator().schedule(config_.period, [this] { updateAll(); });
}

void RcpRouter::writeRegister(const PortState& state) {
  sw_.scratchWrite(core::addr::RcpRateRegister,
                   static_cast<std::uint32_t>(state.rateBps / 1000.0),
                   state.port);
}

void RcpRouter::updateAll() {
  const double T = config_.period.toSeconds();
  const auto now = sw_.simulator().now();
  (void)now;
  for (auto& s : states_) {
    const double capacity = static_cast<double>(sw_.portCapacityBps(s.port));
    if (capacity <= 0) continue;

    const std::uint64_t offered = sw_.portOfferedBytes(s.port);
    const double offeredBps =
        static_cast<double>(offered - s.lastOfferedBytes) * 8.0 / T;
    s.lastOfferedBytes = offered;

    const double integral = sw_.queueByteTimeIntegral(s.port);
    const double avgQueueBits = (integral - s.lastQueueIntegral) * 8.0 / T;
    s.lastQueueIntegral = integral;

    s.rateBps = rcpStep(s.rateBps, capacity, offeredBps, avgQueueBits, T,
                        config_.params);
    writeRegister(s);
  }
  sw_.simulator().schedule(config_.period, [this] { updateAll(); });
}

double RcpRouter::rateBps(std::size_t port) const {
  for (const auto& s : states_) {
    if (s.port == port) return s.rateBps;
  }
  return 0.0;
}

void RcpRouter::onEnqueue(net::Packet& packet, std::size_t egressPort) {
  if (!config_.stampPackets) return;
  const PortState* state = nullptr;
  for (const auto& s : states_) {
    if (s.port == egressPort) {
      state = &s;
      break;
    }
  }
  if (state == nullptr) return;

  auto parsed = asic::parsePacket(packet);
  if (!parsed || !parsed->udp) return;
  const std::size_t payloadLen =
      parsed->udp->length >= net::kUdpHeaderSize
          ? parsed->udp->length - net::kUdpHeaderSize
          : 0;
  if (parsed->l4PayloadOffset + payloadLen > packet.size() ||
      payloadLen < kRcpHeaderBytes) {
    return;
  }
  auto payload = packet.span().subspan(parsed->l4PayloadOffset, payloadLen);
  if (RcpHeader::stampMinRate(
          payload, static_cast<std::uint32_t>(state->rateBps / 1000.0))) {
    ++stamped_;
  }
}

}  // namespace tpp::rcp
