// Rate Control Protocol: the control equation (paper §2.2, citing RCP [1])
// and the in-band rate header data packets carry.
//
//   R(t+T) = R(t) * (1 + (T/d) * (α(C − y(t)) − β q(t)/d) / C)
//
// where C is link capacity, y(t) average ingress utilization over the
// period, q(t) average queue size, d the average RTT of flows through the
// link, and α, β configurable gains (Fig 2 uses α=0.5, β=1).
//
// Both implementations share this equation: the in-switch baseline
// (RcpRouter) evaluates it in the "ASIC", the end-host RCP* (apps/rcpstar)
// evaluates it at senders from TPP-collected samples — the refactoring the
// paper advocates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace tpp::rcp {

struct RcpParams {
  double alpha = 0.5;
  double beta = 1.0;
  // Average round-trip time d of flows through the link, seconds.
  double rttSeconds = 0.1;
  // Floor keeps R(t) from collapsing to zero (and new flows from starving).
  double minRateFraction = 0.01;
};

// One control-equation step. All rates in bits/sec, qBits in bits, periods
// in seconds. Returns the new R clamped to [minRateFraction*C, C].
double rcpStep(double rateBps, double capacityBps, double offeredBps,
               double avgQueueBits, double periodSeconds,
               const RcpParams& params);

// In-band RCP rate header, carried in the first bytes of the UDP payload:
//   magic "RCP1" (4 B) | rateKbps (4 B) | rttMicros (4 B)
// Senders initialize rateKbps to their demand (or ~infinity); each RCP
// router lowers it to its link's R(t) if smaller; receivers feed the final
// value back to the sender.
inline constexpr std::uint32_t kRcpMagic = 0x52435031;  // "RCP1"
inline constexpr std::size_t kRcpHeaderBytes = 12;

struct RcpHeader {
  std::uint32_t rateKbps = 0xffffffff;
  std::uint32_t rttMicros = 0;

  // Writes at the front of `payload` (must be >= kRcpHeaderBytes).
  void write(std::span<std::uint8_t> payload) const;
  static std::optional<RcpHeader> parse(std::span<const std::uint8_t> payload);
  // In-place rate update without a full reserialize (what the ASIC does).
  static bool stampMinRate(std::span<std::uint8_t> payload,
                           std::uint32_t rateKbps);
};

}  // namespace tpp::rcp
