// In-switch RCP baseline: the router evaluates the RCP control equation
// periodically per egress port and stamps every passing RCP data packet
// with min(packet rate, link rate) — the functionality that would require
// a dedicated ASIC feature, which the paper's RCP* refactors out to
// end-hosts (§2.2, Fig 2's "RCP: simulation" curve).
//
// R(t) is stored in the per-port scratch word addr::RcpRateRegister (in
// Kbit/s), the same register RCP* uses — so TPP-based tooling can inspect
// the baseline, and both implementations are directly comparable.
#pragma once

#include <cstdint>
#include <vector>

#include "src/asic/switch.hpp"
#include "src/rcp/rcp.hpp"
#include "src/sim/simulator.hpp"

namespace tpp::rcp {

class RcpRouter final : public asic::EgressInterceptor {
 public:
  struct Config {
    RcpParams params;
    sim::Time period = sim::Time::ms(10);
    std::vector<std::size_t> managedPorts;  // egress ports running RCP
    bool stampPackets = true;  // false = registers only (RCP* mode)
  };

  RcpRouter(asic::Switch& sw, Config config);

  // Initializes each managed port's rate register to link capacity
  // (paper fn 3) and starts the periodic update loop. The caller must have
  // wired the switch's links first (capacity is read from them) and should
  // also call sw.setEgressInterceptor(&router).
  void start();

  void onEnqueue(net::Packet& packet, std::size_t egressPort) override;

  double rateBps(std::size_t port) const;
  std::uint64_t packetsStamped() const { return stamped_; }

 private:
  struct PortState {
    std::size_t port = 0;
    double rateBps = 0;
    std::uint64_t lastOfferedBytes = 0;
    double lastQueueIntegral = 0;
  };
  void updateAll();
  void writeRegister(const PortState& state);

  asic::Switch& sw_;
  Config config_;
  std::vector<PortState> states_;
  std::uint64_t stamped_ = 0;
};

}  // namespace tpp::rcp
