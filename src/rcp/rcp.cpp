#include "src/rcp/rcp.hpp"

#include <algorithm>

#include "src/net/byte_io.hpp"

namespace tpp::rcp {

double rcpStep(double rateBps, double capacityBps, double offeredBps,
               double avgQueueBits, double periodSeconds,
               const RcpParams& params) {
  const double d = params.rttSeconds;
  const double feedback = params.alpha * (capacityBps - offeredBps) -
                          params.beta * avgQueueBits / d;
  double next =
      rateBps * (1.0 + (periodSeconds / d) * feedback / capacityBps);
  next = std::clamp(next, params.minRateFraction * capacityBps, capacityBps);
  return next;
}

void RcpHeader::write(std::span<std::uint8_t> payload) const {
  net::putBe32(payload, 0, kRcpMagic);
  net::putBe32(payload, 4, rateKbps);
  net::putBe32(payload, 8, rttMicros);
}

std::optional<RcpHeader> RcpHeader::parse(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < kRcpHeaderBytes) return std::nullopt;
  if (*net::getBe32(payload, 0) != kRcpMagic) return std::nullopt;
  RcpHeader h;
  h.rateKbps = *net::getBe32(payload, 4);
  h.rttMicros = *net::getBe32(payload, 8);
  return h;
}

bool RcpHeader::stampMinRate(std::span<std::uint8_t> payload,
                             std::uint32_t rateKbps) {
  if (payload.size() < kRcpHeaderBytes) return false;
  if (*net::getBe32(std::span<const std::uint8_t>(payload), 0) != kRcpMagic) {
    return false;
  }
  const std::uint32_t current =
      *net::getBe32(std::span<const std::uint8_t>(payload), 4);
  if (rateKbps < current) {
    net::putBe32(payload, 4, rateKbps);
    return true;
  }
  return false;
}

}  // namespace tpp::rcp
