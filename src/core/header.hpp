// TPP shim wire format (paper Fig 4).
//
// A TPP rides as a shim immediately after the Ethernet header, identified by
// ethertype 0x88B5; the encapsulated payload's original ethertype is
// preserved in the shim so edge switches can strip the TPP and restore the
// inner packet (§4 security discussion).
//
//   Ethernet header        14 B   etherType = 0x88B5
//   TPP header             12 B   (below)
//   instructions           instrWords * 4 B
//   packet memory          pmemWords * 4 B   (initialized by end-hosts)
//   inner payload          rest (e.g. an IPv4 packet; etherType in shim)
//
// TPP header layout (big-endian):
//   byte  0      instrWords        — "length of TPP"            (Fig 4 #1)
//   byte  1      pmemWords         — "length of packet memory"  (Fig 4 #2)
//   byte  2      mode | flags<<4   — addressing mode            (Fig 4 #3)
//   byte  3      hopNumber         — hop counter                (Fig 4 #4)
//   bytes 4-5    stackPointer      — byte offset into pmem      (Fig 4 #4)
//   byte  6      perHopWords       — per-hop record size        (Fig 4 #5)
//   byte  7      faultCode         — first fault encountered, 0 = none
//   bytes 8-9    innerEtherType
//   bytes 10-11  taskId            — SRAM-grant / isolation key (§3.2)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "src/core/isa.hpp"
#include "src/net/packet.hpp"

namespace tpp::core {

inline constexpr std::size_t kTppHeaderSize = 12;

enum class AddressingMode : std::uint8_t {
  Stack = 0,  // PUSH/POP via the stack pointer
  Hop = 1,    // base:offset — word index = hopNumber * perHopWords + off
};

enum class Fault : std::uint8_t {
  None = 0,
  PmemOutOfBounds = 1,   // access beyond the preallocated packet memory
  UnmappedAddress = 2,   // virtual address not in the memory map
  ReadOnlyViolation = 3, // write to a read-only statistic
  GrantViolation = 4,    // SRAM access outside the task's allocation
  BadInstruction = 5,    // undecodable instruction word
  HopOverflow = 6,       // hop-mode record would exceed packet memory
};

// Flag bits (header byte 2, high nibble).
inline constexpr std::uint8_t kFlagFaulted = 0x1;
// Set when a CEXEC predicate failed on some hop (execution was skipped
// there); useful to distinguish "never matched" from "executed".
inline constexpr std::uint8_t kFlagCexecSkipped = 0x2;

struct TppHeader {
  std::uint8_t instrWords = 0;
  std::uint8_t pmemWords = 0;
  AddressingMode mode = AddressingMode::Stack;
  std::uint8_t flags = 0;
  std::uint8_t hopNumber = 0;
  std::uint16_t stackPointer = 0;  // bytes from start of packet memory
  std::uint8_t perHopWords = 0;
  Fault faultCode = Fault::None;
  std::uint16_t innerEtherType = 0;
  std::uint16_t taskId = 0;

  void write(std::span<std::uint8_t> b) const;
  static std::optional<TppHeader> parse(std::span<const std::uint8_t> b);
};

std::string_view faultName(Fault f);

// Mutable view of a TPP inside a packet buffer. Field accessors read and
// write the wire bytes directly, so all mutation is committed in place —
// there is no separate serialize step to forget.
class TppView {
 public:
  // `tppOffset` is the byte offset of the TPP header (normally 14, right
  // after Ethernet). Returns nullopt if the buffer is too short or the
  // declared lengths overrun it.
  static std::optional<TppView> at(net::Packet& packet, std::size_t tppOffset);

  TppHeader header() const { return *TppHeader::parse(hdr()); }

  std::uint8_t instrWords() const { return at8(0); }
  std::uint8_t pmemWords() const { return at8(1); }
  AddressingMode mode() const {
    return static_cast<AddressingMode>(at8(2) & 0x0f);
  }
  std::uint8_t flags() const { return at8(2) >> 4; }
  void setFlag(std::uint8_t bit);
  std::uint8_t hopNumber() const { return at8(3); }
  void setHopNumber(std::uint8_t h) { set8(3, h); }
  std::uint16_t stackPointer() const;
  void setStackPointer(std::uint16_t sp);
  std::uint8_t perHopWords() const { return at8(6); }
  Fault faultCode() const { return static_cast<Fault>(at8(7)); }
  void setFault(Fault f);
  std::uint16_t innerEtherType() const;
  std::uint16_t taskId() const;

  // i-th 4-byte instruction word (encoded).
  std::uint32_t instructionWord(std::size_t i) const;

  // Packet-memory access by word index; false/nullopt on out-of-bounds.
  std::optional<std::uint32_t> pmemWord(std::size_t i) const;
  bool setPmemWord(std::size_t i, std::uint32_t v);

  std::size_t tppOffset() const { return off_; }
  // Offset of the first byte after the TPP (the inner payload).
  std::size_t payloadOffset() const;
  std::size_t tppSizeBytes() const { return payloadOffset() - off_; }

  net::Packet& packet() const { return *pkt_; }

 private:
  TppView(net::Packet& p, std::size_t off) : pkt_(&p), off_(off) {}
  std::span<std::uint8_t> hdr() const;
  std::uint8_t at8(std::size_t i) const;
  void set8(std::size_t i, std::uint8_t v);

  net::Packet* pkt_;
  std::size_t off_;
};

}  // namespace tpp::core
