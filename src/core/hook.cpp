#include "src/core/hook.hpp"

#include <cassert>

namespace tpp::core {

std::uint64_t hookMix(std::uint64_t flowHash, std::uint64_t salt) {
  // FNV-1a over the 16 bytes of (flowHash, salt), little-endian.
  std::uint64_t h = 14695981039346656037ull;
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ull;
    }
  };
  fold(flowHash);
  fold(salt);
  // Raw FNV's low bits are "local": (h ^ c) * p mod 2^k depends only on the
  // low k bits of the state, and the row salts differ only in one low byte —
  // without further mixing, two flows whose low-bit states coincide would
  // land in the same column of EVERY sketch row, defeating the min-over-rows
  // independence the (eps, delta) bound rests on. The xor-shift finalizer
  // (Murmur3 fmix64) folds high bits back down so `mix % slots` behaves as
  // an independent draw per salt.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

std::uint32_t hookColumn(std::uint64_t flowHash, std::uint64_t salt,
                         std::uint32_t slots) {
  if (slots == 0) return 0;
  return static_cast<std::uint32_t>(hookMix(flowHash, salt) % slots);
}

std::uint32_t hookFlowSig(std::uint64_t flowHash, std::uint64_t salt) {
  return static_cast<std::uint32_t>(hookMix(flowHash, salt)) | 1u;
}

Program materializeHook(const HookProgram& hook, std::uint32_t column,
                        std::uint64_t flowHash, std::uint32_t spin) {
  Program out = hook.program;
  for (const auto& patch : hook.addrPatches) {
    const std::uint32_t col = patch.slots == 0 ? 0 : column % patch.slots;
    const std::uint16_t base = static_cast<std::uint16_t>(
        patch.baseAddress + col * patch.slotStride);
    for (const auto& target : patch.targets) {
      assert(target.instrIndex < out.instructions.size());
      out.instructions[target.instrIndex].addr =
          static_cast<std::uint16_t>(base + target.wordOffset);
    }
  }
  for (const auto& patch : hook.pmemPatches) {
    assert(patch.wordIndex < out.initialPmem.size());
    std::uint32_t value = 0;
    switch (patch.source) {
      case HookProgram::PmemSource::FlowSig:
        value = hookFlowSig(flowHash, patch.salt);
        break;
      case HookProgram::PmemSource::SpinBit:
        value = spin & 1;
        break;
      case HookProgram::PmemSource::SpinInverse:
        value = 1u - (spin & 1);
        break;
    }
    out.initialPmem[patch.wordIndex] = value;
  }
  return out;
}

}  // namespace tpp::core
