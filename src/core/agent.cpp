#include "src/core/agent.hpp"

#include <algorithm>

namespace tpp::core {

std::optional<SramGrant> SramAllocator::allocate(std::uint16_t taskId,
                                                 std::uint16_t words,
                                                 StatNamespace region,
                                                 std::string* whyNot) {
  if (words == 0) {
    if (whyNot != nullptr) {
      *whyNot = "task " + std::to_string(taskId) +
                ": zero-word scratch request";
    }
    return std::nullopt;
  }
  if (region != StatNamespace::Sram && region != StatNamespace::PortScratch) {
    if (whyNot != nullptr) {
      *whyNot = "task " + std::to_string(taskId) +
                ": scratch grants cover only Sram and PortScratch";
    }
    return std::nullopt;
  }
  const std::size_t regionWords =
      region == StatNamespace::Sram ? kSramWords : kPortScratchWords;

  // First-fit over the sorted in-region grants.
  std::vector<const SramGrant*> inRegion;
  for (const auto& g : grants_) {
    if (g.region == region) inRegion.push_back(&g);
  }
  std::sort(inRegion.begin(), inRegion.end(),
            [](const SramGrant* a, const SramGrant* b) {
              return a->baseWord < b->baseWord;
            });
  std::uint32_t cursor = 0;
  bool fits = false;
  std::uint32_t largestGap = 0;
  for (const auto* g : inRegion) {
    if (g->baseWord > cursor) {
      largestGap = std::max(largestGap, g->baseWord - cursor);
    }
    if (g->baseWord >= cursor + words) {  // gap fits
      fits = true;
      break;
    }
    cursor = std::max<std::uint32_t>(cursor, g->baseWord + g->words);
  }
  if (!fits && cursor + words > regionWords) {
    if (whyNot != nullptr) {
      largestGap = std::max<std::uint32_t>(
          largestGap, cursor < regionWords ? regionWords - cursor : 0);
      const char* name =
          region == StatNamespace::Sram ? "Sram" : "PortScratch";
      *whyNot = "task " + std::to_string(taskId) + ": requested " +
                std::to_string(words) + " " + name +
                " words but the largest free extent is " +
                std::to_string(largestGap) + " of " +
                std::to_string(regionWords);
    }
    return std::nullopt;
  }

  SramGrant grant{taskId, region, static_cast<std::uint16_t>(cursor), words};
  grants_.push_back(grant);
  return grant;
}

void SramAllocator::release(std::uint16_t taskId) {
  std::erase_if(grants_, [&](const SramGrant& g) {
    return g.taskId == taskId;
  });
}

bool SramAllocator::allows(std::uint16_t taskId,
                           std::uint16_t address) const {
  const auto ns = MemoryMap::namespaceOf(address);
  if (ns != StatNamespace::Sram && ns != StatNamespace::PortScratch) {
    return true;
  }
  if (!enforcing()) return true;
  for (const auto& g : grants_) {
    if (g.taskId == taskId && g.covers(address)) return true;
  }
  return false;
}

void SramAllocator::publishName(MemoryMap& map, const SramGrant& grant,
                                std::uint16_t word, std::string name,
                                std::string description) {
  map.add(StatInfo{std::move(name),
                   static_cast<std::uint16_t>(grant.baseAddress() + word),
                   Access::ReadWrite, std::move(description)});
}

}  // namespace tpp::core
