#include "src/core/agent.hpp"

#include <algorithm>

namespace tpp::core {

std::optional<SramGrant> SramAllocator::allocate(std::uint16_t taskId,
                                                 std::uint16_t words,
                                                 StatNamespace region) {
  if (words == 0) return std::nullopt;
  if (region != StatNamespace::Sram && region != StatNamespace::PortScratch) {
    return std::nullopt;
  }
  const std::size_t regionWords =
      region == StatNamespace::Sram ? kSramWords : kPortScratchWords;

  // First-fit over the sorted in-region grants.
  std::vector<const SramGrant*> inRegion;
  for (const auto& g : grants_) {
    if (g.region == region) inRegion.push_back(&g);
  }
  std::sort(inRegion.begin(), inRegion.end(),
            [](const SramGrant* a, const SramGrant* b) {
              return a->baseWord < b->baseWord;
            });
  std::uint32_t cursor = 0;
  for (const auto* g : inRegion) {
    if (g->baseWord >= cursor + words) break;  // gap fits
    cursor = std::max<std::uint32_t>(cursor, g->baseWord + g->words);
  }
  if (cursor + words > regionWords) return std::nullopt;

  SramGrant grant{taskId, region, static_cast<std::uint16_t>(cursor), words};
  grants_.push_back(grant);
  return grant;
}

void SramAllocator::release(std::uint16_t taskId) {
  std::erase_if(grants_, [&](const SramGrant& g) {
    return g.taskId == taskId;
  });
}

bool SramAllocator::allows(std::uint16_t taskId,
                           std::uint16_t address) const {
  const auto ns = MemoryMap::namespaceOf(address);
  if (ns != StatNamespace::Sram && ns != StatNamespace::PortScratch) {
    return true;
  }
  if (!enforcing()) return true;
  for (const auto& g : grants_) {
    if (g.taskId == taskId && g.covers(address)) return true;
  }
  return false;
}

void SramAllocator::publishName(MemoryMap& map, const SramGrant& grant,
                                std::uint16_t word, std::string name,
                                std::string description) {
  map.add(StatInfo{std::move(name),
                   static_cast<std::uint16_t>(grant.baseAddress() + word),
                   Access::ReadWrite, std::move(description)});
}

}  // namespace tpp::core
