// Control-plane agent (paper §3.2 "Multiple tasks"): partitions scratch
// switch memory among concurrently executing network tasks so that, e.g.,
// RCP* and ndb never collide on SRAM words.
//
// Grants are expressed in words within a region (global SRAM or the per-port
// scratch bank). While no grants are installed the allocator is in "open"
// mode — any task may touch any scratch word — which matches the trusted
// single-operator deployments the paper targets; installing the first grant
// switches on enforcement, and the TCPU then faults TPPs that stray outside
// their task's windows.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/memory_map.hpp"

namespace tpp::core {

struct SramGrant {
  std::uint16_t taskId = 0;
  StatNamespace region = StatNamespace::Sram;  // Sram or PortScratch
  std::uint16_t baseWord = 0;
  std::uint16_t words = 0;

  std::uint16_t baseAddress() const {
    return static_cast<std::uint16_t>(
        (region == StatNamespace::Sram ? kSramBase : kPortScratchBase) +
        baseWord);
  }
  bool covers(std::uint16_t address) const {
    const auto b = baseAddress();
    return address >= b && address < b + words;
  }
};

class SramAllocator {
 public:
  // First-fit allocation of `words` scratch words for `taskId`. On
  // rejection, `whyNot` (when non-null) receives a diagnostic naming the
  // requesting task and the requested vs. available words — surfaced to
  // operators sizing sketch deployments against a switch's SRAM budget.
  std::optional<SramGrant> allocate(std::uint16_t taskId, std::uint16_t words,
                                    StatNamespace region = StatNamespace::Sram,
                                    std::string* whyNot = nullptr);
  // Frees every grant held by `taskId`.
  void release(std::uint16_t taskId);
  // Drops every grant (switch reboot): the allocator reverts to open mode
  // until the control plane re-installs task windows.
  void clear() { grants_.clear(); }

  // True once any grant exists; the TCPU then enforces isolation.
  bool enforcing() const { return !grants_.empty(); }

  // May `taskId` access scratch `address`? Non-scratch addresses are not
  // this allocator's concern and always return true.
  bool allows(std::uint16_t taskId, std::uint16_t address) const;

  const std::vector<SramGrant>& grants() const { return grants_; }

  // Publishes a human-readable name for a granted word (index `word` within
  // the grant) into `map`, so assembly can refer to it symbolically.
  static void publishName(MemoryMap& map, const SramGrant& grant,
                          std::uint16_t word, std::string name,
                          std::string description = {});

 private:
  std::vector<SramGrant> grants_;
};

}  // namespace tpp::core
