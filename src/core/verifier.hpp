// Static verifier for assembled TPPs (extended-paper §4 "Security and
// Resource Management": TPPs are simple enough to be statically checked at
// end-hosts before injection, so multi-tenant safety does not depend on
// catching runtime faults at hop 3).
//
// verify() runs an abstract interpretation of a Program against a MemoryMap
// (and, optionally, the control-plane agent's SRAM grants), simulating the
// packet-memory and stack effects of every hop up to a configurable hop
// count. Within one hop execution is linear — the only control transfer the
// ISA has is CEXEC, which truncates the rest of the program — so the
// abstract state per hop is exact up to CEXEC outcomes; across hops the
// verifier joins the "predicate held" and "predicate failed" exits, giving
// a stack-pointer interval and a three-valued initialization state per
// packet-memory word.
//
// Checks (individually toggleable via VerifyOptions::checks):
//   Budget          §3.3 instruction budget: warns past 5 instructions,
//                   errors when the TPP no longer fits the MTU.
//   StackGrowth     proves PUSH/POP cannot overflow or underflow packet
//                   memory within maxHops hops, and that hop-mode records
//                   ( .perhop ) match the words actually touched per hop.
//   WritePermission STORE/POP/CSTORE destinations must be writable per the
//                   MemoryMap; with grants installed, every scratch access
//                   must fall inside the task's grant windows. A CEXEC
//                   guard does not relax this — the predicate cannot be
//                   proven false at verification time.
//   AddressRange    every touched switch address must be mapped; absolute
//                   [Packet:N] operands must lie inside packet memory;
//                   every instruction must survive an encode/decode round
//                   trip (no BadInstruction in flight).
//   UseBeforeInit   warns when an instruction reads a packet-memory word
//                   that no path has written (wire zero-fill makes this a
//                   silent zero read, not a fault — hence a warning).
//
// Soundness contract (relied on by the differential property test): a
// program verify() accepts with zero errors executes for maxHops hops on a
// switch exposing exactly the given MemoryMap — with open scratch access,
// or the given grants — without raising any core::Fault. Warnings are
// heuristic and carry no such guarantee.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/agent.hpp"
#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"

namespace tpp::core {

enum class Severity : std::uint8_t { Warning, Error };

enum class Check : std::uint8_t {
  Budget = 0,
  StackGrowth,
  WritePermission,
  AddressRange,
  UseBeforeInit,
};

inline constexpr std::uint32_t checkBit(Check c) {
  return 1u << static_cast<std::uint32_t>(c);
}
inline constexpr std::uint32_t kAllChecks =
    checkBit(Check::Budget) | checkBit(Check::StackGrowth) |
    checkBit(Check::WritePermission) | checkBit(Check::AddressRange) |
    checkBit(Check::UseBeforeInit);

struct Diagnostic {
  Severity severity = Severity::Error;
  Check check = Check::AddressRange;
  // Index into Program::instructions, or -1 for program-level findings.
  int instructionIndex = -1;
  // Source line when the caller supplied VerifyOptions::instructionLines
  // (e.g. the assembler); 0 when unknown.
  int line = 0;
  std::string message;
};

struct VerifyOptions {
  // Number of TCPU-enabled hops the packet may traverse; stack growth and
  // hop-record bounds are proven for exactly this many executions.
  std::size_t maxHops = 8;
  // Whole-TPP wire budget (header + instructions + packet memory).
  std::size_t mtuBytes = 1500;
  // Paper §3.3 instruction budget; exceeding it is a warning.
  std::size_t budgetInstructions = 5;
  // Bitmask of checkBit(Check) values to run.
  std::uint32_t checks = kAllChecks;
  // When set and enforcing(), every scratch access of Program::taskId must
  // fall inside one of the task's grant windows.
  const SramAllocator* grants = nullptr;
  // Upgrades every warning to an error.
  bool werror = false;
  // Optional per-instruction source lines, parallel to
  // Program::instructions (from the assembler); copied into diagnostics.
  std::span<const int> instructionLines = {};
};

struct VerifyResult {
  std::vector<Diagnostic> diagnostics;
  std::size_t errors = 0;
  std::size_t warnings = 0;

  bool ok() const { return errors == 0; }
};

VerifyResult verify(const Program& program,
                    const MemoryMap& map = MemoryMap::standard(),
                    const VerifyOptions& opts = {});

// "file:line: error: [check] message" — `file` may be empty.
std::string formatDiagnostic(const Diagnostic& d, std::string_view file = {});

std::string_view checkName(Check c);
std::string_view severityName(Severity s);

// Fail-fast wrapper for programs constructed in code (the bundled apps):
// returns `program` unchanged if it verifies clean against the standard
// map, otherwise prints every diagnostic to stderr and aborts — a rejected
// program at construction beats a fault at hop 3.
Program verified(Program program, const VerifyOptions& opts = {});

}  // namespace tpp::core
