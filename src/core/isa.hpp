// The TPP instruction set (paper Table 1, plus the "simple arithmetic" the
// paper's §1 mentions) and its 4-byte wire encoding (§3.3: "we were able to
// encode an instruction and its operands in a 4-byte integer").
//
// Encoding, big-endian:
//
//   byte 0  opcode
//   byte 1  addr high  \  16-bit virtual address into the switch's unified
//   byte 2  addr low   /  statistics/SRAM address space (MemoryMap)
//   byte 3  pmemOff       packet-memory WORD index operand
//
// Multi-operand instructions take their extra operands from *initialized
// packet memory*: CSTORE reads cond at pmem[off] and src at pmem[off+1]
// (and writes the old switch value back to pmem[off], so end-hosts can
// detect whether the compare-and-swap took effect); CEXEC reads mask at
// pmem[off] and value at pmem[off+1]. This is how the assembler fits
// `CEXEC reg, mask, value` into four bytes — the immediates are compiled
// into the packet-memory image by the end-host.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tpp::core {

// One packet-memory word; also the unit of switch-memory access.
inline constexpr std::size_t kWordSize = 4;
inline constexpr std::size_t kInstructionSize = 4;

enum class Opcode : std::uint8_t {
  Nop = 0x00,
  Load = 0x01,    // pmem[off]        = switch[addr]
  Store = 0x02,   // switch[addr]     = pmem[off]
  Push = 0x03,    // pmem[sp/4], sp+=4; value = switch[addr]
  Pop = 0x04,     // sp-=4; switch[addr] = pmem[sp/4]
  Cstore = 0x05,  // atomically: old=switch[addr]; if old==pmem[off]
                  //   switch[addr]=pmem[off+1]; pmem[off]=old
  Cexec = 0x06,   // if (switch[addr] & pmem[off]) != pmem[off+1]: halt
  Add = 0x07,     // pmem[off] = pmem[off] + switch[addr]
  Sub = 0x08,     // pmem[off] = pmem[off] - switch[addr]
  Min = 0x09,     // pmem[off] = min(pmem[off], switch[addr])
  Max = 0x0a,     // pmem[off] = max(pmem[off], switch[addr])
};

struct Instruction {
  Opcode op = Opcode::Nop;
  std::uint16_t addr = 0;   // switch virtual address (unused by Nop)
  std::uint8_t pmemOff = 0; // packet-memory word index (unused by Push/Pop)

  std::uint32_t encode() const;
  static std::optional<Instruction> decode(std::uint32_t word);

  bool operator==(const Instruction&) const = default;
};

// True for opcodes that write to switch memory (used by the security layer
// to enforce read-only TPP policies at untrusted edges).
bool writesSwitchMemory(Opcode op);
// True for opcodes whose extra operands occupy pmem[off] and pmem[off+1].
bool takesTwoPmemWords(Opcode op);

std::string_view opcodeName(Opcode op);
std::optional<Opcode> opcodeFromName(std::string_view name);

}  // namespace tpp::core
