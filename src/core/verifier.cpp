#include "src/core/verifier.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <tuple>

namespace tpp::core {
namespace {

// Three-valued initialization state of one packet-memory word: written on
// no path / some paths / every path.
enum class Init : std::uint8_t { No, Maybe, Yes };

Init join(Init a, Init b) { return a == b ? a : Init::Maybe; }

// Abstract per-hop machine state: a stack-pointer interval (in bytes) plus
// the initialization lattice. Exact within a hop except across CEXEC exits.
struct AbsState {
  std::int64_t spLo = 0;
  std::int64_t spHi = 0;
  std::vector<Init> words;

  bool operator==(const AbsState&) const = default;
};

AbsState joinState(AbsState a, const AbsState& b) {
  a.spLo = std::min(a.spLo, b.spLo);
  a.spHi = std::max(a.spHi, b.spHi);
  for (std::size_t i = 0; i < a.words.size(); ++i) {
    a.words[i] = join(a.words[i], b.words[i]);
  }
  return a;
}

// Distinguishes multiple findings anchored at the same instruction so each
// is reported once (at the earliest hop that trips it).
enum Tag : int {
  kTagDefault = 0,
  kTagOverflow,
  kTagUnderflow,
  kTagReadUninit,
  kTagReadMaybeUninit,
  kTagGrant,
};

class Emitter {
 public:
  Emitter(const VerifyOptions& opts, VerifyResult& result)
      : opts_(opts), result_(result) {}

  bool enabled(Check c) const { return (opts_.checks & checkBit(c)) != 0; }

  void emit(Severity sev, Check check, int instr, int tag,
            std::string message) {
    if (!enabled(check)) return;
    const auto key = std::make_tuple(static_cast<int>(check), instr, tag);
    if (std::find(seen_.begin(), seen_.end(), key) != seen_.end()) return;
    seen_.push_back(key);
    if (sev == Severity::Warning && opts_.werror) sev = Severity::Error;
    Diagnostic d;
    d.severity = sev;
    d.check = check;
    d.instructionIndex = instr;
    if (instr >= 0 &&
        static_cast<std::size_t>(instr) < opts_.instructionLines.size()) {
      d.line = opts_.instructionLines[instr];
    }
    d.message = std::move(message);
    (sev == Severity::Error ? result_.errors : result_.warnings) += 1;
    result_.diagnostics.push_back(std::move(d));
  }

 private:
  const VerifyOptions& opts_;
  VerifyResult& result_;
  std::vector<std::tuple<int, int, int>> seen_;
};

std::string describeAddress(const MemoryMap& map, std::uint16_t address) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%04x", address);
  if (const auto* s = map.lookup(address)) {
    return "[" + s->name + "] (" + buf + ")";
  }
  return std::string(buf);
}

bool readsSwitchMemory(Opcode op) { return op != Opcode::Nop; }

// Mode-addressed operands: LOAD/STORE/arith go through effectiveIndex();
// CSTORE/CEXEC operand pairs are always absolute immediates.
bool isModeAddressed(Opcode op) {
  switch (op) {
    case Opcode::Load:
    case Opcode::Store:
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Min:
    case Opcode::Max:
      return true;
    default:
      return false;
  }
}

bool readsPmemOperand(Opcode op) {
  switch (op) {
    case Opcode::Store:
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Min:
    case Opcode::Max:
      return true;
    default:
      return false;
  }
}

// Statistic namespaces require an entry in the map; scratch regions are
// valid end to end (they are plain word arrays on the switch).
bool namespaceNeedsMapEntry(StatNamespace ns) {
  switch (ns) {
    case StatNamespace::Switch:
    case StatNamespace::Port:
    case StatNamespace::PacketMeta:
    case StatNamespace::Queue:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string_view checkName(Check c) {
  switch (c) {
    case Check::Budget: return "budget";
    case Check::StackGrowth: return "stack-growth";
    case Check::WritePermission: return "write-permission";
    case Check::AddressRange: return "address-range";
    case Check::UseBeforeInit: return "use-before-init";
  }
  return "?";
}

std::string_view severityName(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

std::string formatDiagnostic(const Diagnostic& d, std::string_view file) {
  std::string out;
  if (!file.empty()) {
    out += file;
    out += ':';
    if (d.line > 0) out += std::to_string(d.line) + ":";
    out += ' ';
  } else if (d.line > 0) {
    out += "line " + std::to_string(d.line) + ": ";
  }
  out += severityName(d.severity);
  out += ": [";
  out += checkName(d.check);
  out += "] ";
  out += d.message;
  if (d.line == 0 && d.instructionIndex >= 0) {
    out += " (instruction " + std::to_string(d.instructionIndex) + ")";
  }
  return out;
}

VerifyResult verify(const Program& program, const MemoryMap& map,
                    const VerifyOptions& opts) {
  VerifyResult result;
  Emitter emit(opts, result);
  const std::size_t pmemWords = program.pmemWords;
  const auto& ins = program.instructions;

  // ---------------------------------------------------------- budget (1)
  if (ins.size() > 255) {
    emit.emit(Severity::Error, Check::Budget, -1, kTagDefault,
              "program has " + std::to_string(ins.size()) +
                  " instructions; the instrWords header field is 8 bits");
  }
  if (program.initialPmem.size() > pmemWords) {
    emit.emit(Severity::Error, Check::Budget, -1, kTagDefault + 1,
              "initialized packet memory (" +
                  std::to_string(program.initialPmem.size()) +
                  " words) exceeds the declared " +
                  std::to_string(pmemWords) +
                  "-word packet memory; trailing immediates are lost on "
                  "the wire");
  }
  if (ins.size() > opts.budgetInstructions) {
    emit.emit(Severity::Warning, Check::Budget, -1, kTagDefault + 2,
              "program has " + std::to_string(ins.size()) +
                  " instructions, past the paper's ~" +
                  std::to_string(opts.budgetInstructions) +
                  "-instruction budget (§3.3)");
  }
  if (program.wireBytes() > opts.mtuBytes) {
    emit.emit(Severity::Error, Check::Budget, -1, kTagDefault + 3,
              "TPP occupies " + std::to_string(program.wireBytes()) +
                  " wire bytes, past the " + std::to_string(opts.mtuBytes) +
                  "-byte MTU budget");
  }

  // --------------------------- hop-independent per-instruction pre-pass
  const bool enforcing = opts.grants != nullptr && opts.grants->enforcing();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const auto& in = ins[i];
    const int idx = static_cast<int>(i);

    // Every instruction must survive the 4-byte wire round trip, or the
    // TCPU raises BadInstruction when execution reaches it.
    const auto decoded = Instruction::decode(in.encode());
    if (!decoded || *decoded != in) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "0x%02x",
                    static_cast<unsigned>(in.op));
      emit.emit(Severity::Error, Check::AddressRange, idx, kTagDefault,
                std::string("instruction does not survive the 4-byte wire "
                            "encoding (opcode ") +
                    buf + ")");
      continue;  // operand fields are meaningless
    }

    if (readsSwitchMemory(in.op)) {
      const auto ns = MemoryMap::namespaceOf(in.addr);
      if (ns == StatNamespace::Unmapped) {
        emit.emit(Severity::Error, Check::AddressRange, idx, kTagDefault + 1,
                  "switch address " + describeAddress(map, in.addr) +
                      " falls outside every namespace (faults "
                      "UnmappedAddress)");
      } else if (namespaceNeedsMapEntry(ns) && map.lookup(in.addr) == nullptr) {
        emit.emit(Severity::Error, Check::AddressRange, idx, kTagDefault + 1,
                  "switch address " + describeAddress(map, in.addr) +
                      " names no statistic in the memory map (faults "
                      "UnmappedAddress)");
      } else if (enforcing && MemoryMap::writable(in.addr) &&
                 !opts.grants->allows(program.taskId, in.addr)) {
        const bool writes = writesSwitchMemory(in.op);
        std::string msg = std::string(writes ? "writes" : "reads") +
                          " scratch " + describeAddress(map, in.addr) +
                          " outside task " + std::to_string(program.taskId) +
                          "'s SRAM grant windows (faults GrantViolation)";
        if (std::any_of(ins.begin(), ins.begin() + idx,
                        [](const Instruction& p) {
                          return p.op == Opcode::Cexec;
                        })) {
          msg += "; the preceding CEXEC guard cannot be proven false "
                 "statically";
        }
        emit.emit(Severity::Error, Check::WritePermission, idx, kTagGrant,
                  std::move(msg));
      }
      if (writesSwitchMemory(in.op) && !MemoryMap::writable(in.addr)) {
        emit.emit(Severity::Error, Check::WritePermission, idx, kTagDefault,
                  std::string(opcodeName(in.op)) + " destination " +
                      describeAddress(map, in.addr) +
                      " is a read-only statistic (faults "
                      "ReadOnlyViolation)");
      }
    }

    // Absolute [Packet:N] operands. CSTORE/CEXEC consume two adjacent
    // words regardless of addressing mode; LOAD/STORE/arith offsets are
    // absolute in stack mode (hop mode is proven per hop below).
    if (takesTwoPmemWords(in.op)) {
      if (in.pmemOff + 1u >= pmemWords) {
        emit.emit(Severity::Error, Check::AddressRange, idx, kTagDefault + 2,
                  std::string(opcodeName(in.op)) + " operands [Packet:" +
                      std::to_string(in.pmemOff) + "] and [Packet:" +
                      std::to_string(in.pmemOff + 1) +
                      "] overrun the " + std::to_string(pmemWords) +
                      "-word packet memory");
      }
    } else if (isModeAddressed(in.op) &&
               program.mode == AddressingMode::Stack &&
               in.pmemOff >= pmemWords) {
      emit.emit(Severity::Error, Check::AddressRange, idx, kTagDefault + 2,
                std::string(opcodeName(in.op)) + " operand [Packet:" +
                    std::to_string(in.pmemOff) + "] is outside the " +
                    std::to_string(pmemWords) + "-word packet memory");
    }
  }

  // ------------------------------- hop-mode record shape (part of 2)
  if (program.mode == AddressingMode::Hop) {
    std::size_t touched = 0;  // words per hop actually addressed
    bool any = false;
    for (const auto& in : ins) {
      if (isModeAddressed(in.op)) {
        any = true;
        touched = std::max<std::size_t>(touched, in.pmemOff + 1u);
      }
    }
    if (any && program.perHopWords == 0) {
      emit.emit(Severity::Warning, Check::StackGrowth, -1, kTagDefault,
                ".perhop is 0: every hop overwrites the same packet-memory "
                "words instead of appending a record");
    } else if (any && touched > program.perHopWords) {
      emit.emit(Severity::Warning, Check::StackGrowth, -1, kTagDefault + 1,
                "per-hop records touch " + std::to_string(touched) +
                    " words but .perhop is " +
                    std::to_string(program.perHopWords) +
                    "; successive hop records overlap");
    } else if (any && touched < program.perHopWords) {
      emit.emit(Severity::Warning, Check::StackGrowth, -1, kTagDefault + 2,
                "per-hop records touch only " + std::to_string(touched) +
                    " of the .perhop " + std::to_string(program.perHopWords) +
                    " words; end-host record parsing may misalign");
    }
  }

  // --------------- abstract interpretation over maxHops executions (2, 5)
  if (!emit.enabled(Check::StackGrowth) && !emit.enabled(Check::UseBeforeInit)) {
    return result;
  }

  AbsState state;
  state.spLo = state.spHi = program.initialSp;
  state.words.assign(pmemWords, Init::No);
  const std::size_t initialized =
      std::min<std::size_t>(program.initialPmem.size(), pmemWords);
  std::fill(state.words.begin(),
            state.words.begin() + static_cast<std::ptrdiff_t>(initialized),
            Init::Yes);

  const auto wordCap = static_cast<std::int64_t>(pmemWords);

  for (std::size_t hop = 0; hop < opts.maxHops; ++hop) {
    AbsState cur = state;
    std::vector<AbsState> cexecExits;

    // Reports a read of packet-memory word `w` (exact index).
    auto readWord = [&](int idx, std::int64_t w) {
      if (w < 0 || w >= wordCap) return;  // bounds reported elsewhere
      const Init st = cur.words[static_cast<std::size_t>(w)];
      if (st == Init::No) {
        emit.emit(Severity::Warning, Check::UseBeforeInit, idx, kTagReadUninit,
                  "reads packet-memory word " + std::to_string(w) +
                      ", which no path initializes (reads wire zero-fill)");
      } else if (st == Init::Maybe) {
        emit.emit(Severity::Warning, Check::UseBeforeInit, idx,
                  kTagReadMaybeUninit,
                  "may read packet-memory word " + std::to_string(w) +
                      " before it is initialized (a CEXEC-skipped pass "
                      "leaves it unwritten)");
      }
    };
    auto writeWord = [&](std::int64_t w, bool exact) {
      if (w < 0 || w >= wordCap) return;
      auto& slot = cur.words[static_cast<std::size_t>(w)];
      slot = exact ? Init::Yes : join(slot, Init::Yes);
    };

    for (std::size_t i = 0; i < ins.size(); ++i) {
      const auto& in = ins[i];
      const int idx = static_cast<int>(i);
      const bool exactSp = cur.spLo == cur.spHi;

      switch (in.op) {
        case Opcode::Nop:
          break;
        case Opcode::Push: {
          const std::int64_t hiIdx = cur.spHi / 4;
          if (hiIdx >= wordCap) {
            emit.emit(Severity::Error, Check::StackGrowth, idx, kTagOverflow,
                      "PUSH may write packet-memory word " +
                          std::to_string(hiIdx) + " at hop " +
                          std::to_string(hop) + ", beyond the " +
                          std::to_string(pmemWords) +
                          "-word packet memory (faults PmemOutOfBounds)");
          }
          for (std::int64_t w = cur.spLo / 4; w <= hiIdx; ++w) {
            writeWord(w, exactSp);
          }
          cur.spLo += 4;
          cur.spHi += 4;
          break;
        }
        case Opcode::Pop: {
          if (cur.spLo < 4) {
            emit.emit(Severity::Error, Check::StackGrowth, idx, kTagUnderflow,
                      "POP may underflow the stack at hop " +
                          std::to_string(hop) +
                          " (stack pointer can reach " +
                          std::to_string(cur.spLo) +
                          " bytes; faults PmemOutOfBounds)");
          }
          const std::int64_t hiIdx = cur.spHi / 4 - 1;
          if (hiIdx >= wordCap) {
            emit.emit(Severity::Error, Check::StackGrowth, idx, kTagOverflow,
                      "POP may read packet-memory word " +
                          std::to_string(hiIdx) + " at hop " +
                          std::to_string(hop) + ", beyond the " +
                          std::to_string(pmemWords) +
                          "-word packet memory (faults PmemOutOfBounds)");
          }
          if (exactSp) readWord(idx, hiIdx);
          cur.spLo = std::max<std::int64_t>(0, cur.spLo - 4);
          cur.spHi = std::max<std::int64_t>(0, cur.spHi - 4);
          break;
        }
        case Opcode::Load:
        case Opcode::Store:
        case Opcode::Add:
        case Opcode::Sub:
        case Opcode::Min:
        case Opcode::Max: {
          const std::int64_t w =
              program.mode == AddressingMode::Hop
                  ? static_cast<std::int64_t>(hop) * program.perHopWords +
                        in.pmemOff
                  : in.pmemOff;
          if (program.mode == AddressingMode::Hop && w >= wordCap) {
            emit.emit(Severity::Error, Check::StackGrowth, idx, kTagOverflow,
                      "hop-mode operand resolves to packet-memory word " +
                          std::to_string(w) + " at hop " +
                          std::to_string(hop) + ", beyond the " +
                          std::to_string(pmemWords) +
                          "-word packet memory (faults HopOverflow)");
          }
          if (readsPmemOperand(in.op)) readWord(idx, w);
          if (in.op != Opcode::Store) writeWord(w, true);
          break;
        }
        case Opcode::Cstore:
          readWord(idx, in.pmemOff);
          readWord(idx, in.pmemOff + 1);
          // Always writes back the observed switch value.
          writeWord(in.pmemOff, true);
          break;
        case Opcode::Cexec:
          readWord(idx, in.pmemOff);
          readWord(idx, in.pmemOff + 1);
          // A failed predicate ends this hop's execution here.
          cexecExits.push_back(cur);
          break;
      }
    }

    for (const auto& exit : cexecExits) cur = joinState(std::move(cur), exit);

    // In stack mode a stable state means every further hop repeats the
    // same transitions; hop-mode indices keep moving with the hop count.
    if (program.mode != AddressingMode::Hop && cur == state) break;
    state = std::move(cur);
  }

  return result;
}

Program verified(Program program, const VerifyOptions& opts) {
  const auto result = verify(program, MemoryMap::standard(), opts);
  if (!result.ok()) {
    for (const auto& d : result.diagnostics) {
      std::fprintf(stderr, "tpp-verify: %s\n", formatDiagnostic(d).c_str());
    }
    std::fprintf(stderr,
                 "tpp-verify: program rejected by static verification "
                 "(%zu error%s)\n",
                 result.errors, result.errors == 1 ? "" : "s");
    std::abort();
  }
  return program;
}

}  // namespace tpp::core
