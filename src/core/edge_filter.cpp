#include "src/core/edge_filter.hpp"

#include "src/core/header.hpp"
#include "src/core/program.hpp"
#include "src/net/byte_io.hpp"
#include "src/net/ethernet.hpp"

namespace tpp::core {

void EdgeFilter::setPortPolicy(std::size_t port, EdgePolicy policy) {
  if (policies_.size() <= port) policies_.resize(port + 1, EdgePolicy::Allow);
  policies_[port] = policy;
}

EdgePolicy EdgeFilter::portPolicy(std::size_t port) const {
  return port < policies_.size() ? policies_[port] : EdgePolicy::Allow;
}

EdgeFilter::Action EdgeFilter::apply(net::Packet& packet,
                                     std::size_t ingressPort) const {
  const auto policy = portPolicy(ingressPort);
  if (policy == EdgePolicy::Allow) return Action::Forwarded;

  const auto type = net::getBe16(packet.span(), 12);
  if (!type || *type != net::kEtherTypeTpp) return Action::Forwarded;

  if (policy == EdgePolicy::Drop) {
    ++dropped_;
    return Action::Dropped;
  }

  auto view = TppView::at(packet, net::kEthernetHeaderSize);
  if (!view) {  // malformed TPP on an untrusted port: never forward
    ++dropped_;
    return Action::Dropped;
  }

  bool writes = false;
  for (std::size_t i = 0; i < view->instrWords(); ++i) {
    const auto ins = Instruction::decode(view->instructionWord(i));
    if (!ins) {
      ++dropped_;
      return Action::Dropped;
    }
    writes = writes || writesSwitchMemory(ins->op);
  }

  if (policy == EdgePolicy::ReadOnly && !writes) return Action::Forwarded;

  if (!stripTppShim(packet)) {
    ++dropped_;
    return Action::Dropped;
  }
  ++stripped_;
  return Action::Stripped;
}

}  // namespace tpp::core
