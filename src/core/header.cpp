#include "src/core/header.hpp"

#include <cassert>

#include "src/net/byte_io.hpp"

namespace tpp::core {

void TppHeader::write(std::span<std::uint8_t> b) const {
  assert(b.size() >= kTppHeaderSize);
  b[0] = instrWords;
  b[1] = pmemWords;
  b[2] = static_cast<std::uint8_t>((flags << 4) |
                                   (static_cast<std::uint8_t>(mode) & 0x0f));
  b[3] = hopNumber;
  net::putBe16(b, 4, stackPointer);
  b[6] = perHopWords;
  b[7] = static_cast<std::uint8_t>(faultCode);
  net::putBe16(b, 8, innerEtherType);
  net::putBe16(b, 10, taskId);
}

std::optional<TppHeader> TppHeader::parse(std::span<const std::uint8_t> b) {
  if (b.size() < kTppHeaderSize) return std::nullopt;
  TppHeader h;
  h.instrWords = b[0];
  h.pmemWords = b[1];
  h.mode = static_cast<AddressingMode>(b[2] & 0x0f);
  h.flags = b[2] >> 4;
  h.hopNumber = b[3];
  h.stackPointer = *net::getBe16(b, 4);
  h.perHopWords = b[6];
  h.faultCode = static_cast<Fault>(b[7]);
  h.innerEtherType = *net::getBe16(b, 8);
  h.taskId = *net::getBe16(b, 10);
  return h;
}

std::string_view faultName(Fault f) {
  switch (f) {
    case Fault::None: return "none";
    case Fault::PmemOutOfBounds: return "pmem-out-of-bounds";
    case Fault::UnmappedAddress: return "unmapped-address";
    case Fault::ReadOnlyViolation: return "read-only-violation";
    case Fault::GrantViolation: return "grant-violation";
    case Fault::BadInstruction: return "bad-instruction";
    case Fault::HopOverflow: return "hop-overflow";
  }
  return "?";
}

std::optional<TppView> TppView::at(net::Packet& packet,
                                   std::size_t tppOffset) {
  const auto& bytes = packet.bytes();
  if (tppOffset + kTppHeaderSize > bytes.size()) return std::nullopt;
  const std::size_t instrBytes = bytes[tppOffset] * kInstructionSize;
  const std::size_t pmemBytes = bytes[tppOffset + 1] * kWordSize;
  if (tppOffset + kTppHeaderSize + instrBytes + pmemBytes > bytes.size()) {
    return std::nullopt;
  }
  return TppView{packet, tppOffset};
}

std::span<std::uint8_t> TppView::hdr() const {
  return std::span<std::uint8_t>(pkt_->bytes()).subspan(off_, kTppHeaderSize);
}

std::uint8_t TppView::at8(std::size_t i) const { return hdr()[i]; }
void TppView::set8(std::size_t i, std::uint8_t v) { hdr()[i] = v; }

void TppView::setFlag(std::uint8_t bit) {
  set8(2, static_cast<std::uint8_t>(at8(2) | (bit << 4)));
}

std::uint16_t TppView::stackPointer() const { return *net::getBe16(hdr(), 4); }
void TppView::setStackPointer(std::uint16_t sp) { net::putBe16(hdr(), 4, sp); }

void TppView::setFault(Fault f) {
  // Only the first fault is recorded; later ones would mask the root cause.
  if (faultCode() == Fault::None) {
    set8(7, static_cast<std::uint8_t>(f));
    setFlag(kFlagFaulted);
  }
}

std::uint16_t TppView::innerEtherType() const {
  return *net::getBe16(hdr(), 8);
}
std::uint16_t TppView::taskId() const { return *net::getBe16(hdr(), 10); }

std::uint32_t TppView::instructionWord(std::size_t i) const {
  assert(i < instrWords());
  return *net::getBe32(pkt_->span(),
                       off_ + kTppHeaderSize + i * kInstructionSize);
}

std::optional<std::uint32_t> TppView::pmemWord(std::size_t i) const {
  if (i >= pmemWords()) return std::nullopt;
  return *net::getBe32(pkt_->span(), off_ + kTppHeaderSize +
                                         instrWords() * kInstructionSize +
                                         i * kWordSize);
}

bool TppView::setPmemWord(std::size_t i, std::uint32_t v) {
  if (i >= pmemWords()) return false;
  net::putBe32(pkt_->span(), off_ + kTppHeaderSize +
                                 instrWords() * kInstructionSize +
                                 i * kWordSize,
               v);
  return true;
}

std::size_t TppView::payloadOffset() const {
  return off_ + kTppHeaderSize + instrWords() * kInstructionSize +
         pmemWords() * kWordSize;
}

}  // namespace tpp::core
