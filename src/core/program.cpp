#include "src/core/program.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "src/net/byte_io.hpp"

namespace tpp::core {

ProgramBuilder& ProgramBuilder::mode(AddressingMode m) {
  mode_ = m;
  return *this;
}

ProgramBuilder& ProgramBuilder::perHop(std::uint8_t words) {
  perHop_ = words;
  return *this;
}

ProgramBuilder& ProgramBuilder::task(std::uint16_t id) {
  task_ = id;
  return *this;
}

ProgramBuilder& ProgramBuilder::reserve(std::uint8_t words) {
  reserved_ = words;
  return *this;
}

std::uint8_t ProgramBuilder::imm(std::uint32_t value) {
  imms_.push_back(value);
  return static_cast<std::uint8_t>(imms_.size() - 1);
}

ProgramBuilder& ProgramBuilder::raw(Instruction i) {
  instructions_.push_back(i);
  return *this;
}

ProgramBuilder& ProgramBuilder::push(std::uint16_t addr) {
  return raw({Opcode::Push, addr, 0});
}
ProgramBuilder& ProgramBuilder::pop(std::uint16_t addr) {
  return raw({Opcode::Pop, addr, 0});
}
ProgramBuilder& ProgramBuilder::load(std::uint16_t addr,
                                     std::uint8_t pmemOff) {
  return raw({Opcode::Load, addr, pmemOff});
}
ProgramBuilder& ProgramBuilder::store(std::uint16_t addr,
                                      std::uint8_t pmemOff) {
  return raw({Opcode::Store, addr, pmemOff});
}
ProgramBuilder& ProgramBuilder::storeImm(std::uint16_t addr,
                                         std::uint32_t value) {
  return raw({Opcode::Store, addr, imm(value)});
}
ProgramBuilder& ProgramBuilder::cstore(std::uint16_t addr, std::uint32_t cond,
                                       std::uint32_t src,
                                       std::uint8_t* outOff) {
  const std::uint8_t off = imm(cond);
  imm(src);
  if (outOff) *outOff = off;
  return raw({Opcode::Cstore, addr, off});
}
ProgramBuilder& ProgramBuilder::cexec(std::uint16_t addr, std::uint32_t mask,
                                      std::uint32_t value) {
  const std::uint8_t off = imm(mask);
  imm(value);
  return raw({Opcode::Cexec, addr, off});
}
ProgramBuilder& ProgramBuilder::add(std::uint16_t addr,
                                    std::uint8_t pmemOff) {
  return raw({Opcode::Add, addr, pmemOff});
}
ProgramBuilder& ProgramBuilder::sub(std::uint16_t addr,
                                    std::uint8_t pmemOff) {
  return raw({Opcode::Sub, addr, pmemOff});
}
ProgramBuilder& ProgramBuilder::minOp(std::uint16_t addr,
                                      std::uint8_t pmemOff) {
  return raw({Opcode::Min, addr, pmemOff});
}
ProgramBuilder& ProgramBuilder::maxOp(std::uint16_t addr,
                                      std::uint8_t pmemOff) {
  return raw({Opcode::Max, addr, pmemOff});
}

std::optional<Program> ProgramBuilder::build() const {
  const std::size_t pmemWords = imms_.size() + reserved_;
  if (instructions_.size() > 255 || pmemWords > 255) return std::nullopt;
  Program p;
  p.instructions = instructions_;
  p.initialPmem = imms_;
  p.pmemWords = static_cast<std::uint8_t>(pmemWords);
  p.mode = mode_;
  p.perHopWords = perHop_;
  p.initialSp = static_cast<std::uint16_t>(imms_.size() * kWordSize);
  p.taskId = task_;
  return p;
}

Program ProgramBuilder::buildChecked() const {
  auto p = build();
  if (!p.has_value()) std::abort();
  return *std::move(p);
}

// Serializes TPP header + instructions + pmem into `out` at `off`.
void writeTpp(std::span<std::uint8_t> out, std::size_t off,
              const Program& program, std::uint16_t innerEtherType) {
  TppHeader h;
  h.instrWords = static_cast<std::uint8_t>(program.instructions.size());
  h.pmemWords = program.pmemWords;
  h.mode = program.mode;
  h.hopNumber = 0;
  h.stackPointer = program.initialSp;
  h.perHopWords = program.perHopWords;
  h.innerEtherType = innerEtherType;
  h.taskId = program.taskId;
  h.write(out.subspan(off, kTppHeaderSize));
  std::size_t pos = off + kTppHeaderSize;
  for (const auto& ins : program.instructions) {
    net::putBe32(out, pos, ins.encode());
    pos += kInstructionSize;
  }
  for (std::size_t i = 0; i < program.pmemWords; ++i) {
    const std::uint32_t v =
        i < program.initialPmem.size() ? program.initialPmem[i] : 0;
    net::putBe32(out, pos, v);
    pos += kWordSize;
  }
}

net::PacketPtr buildTppFrame(const net::MacAddress& dst,
                             const net::MacAddress& src,
                             const Program& program,
                             std::uint16_t innerEtherType,
                             std::span<const std::uint8_t> payload) {
  const std::size_t size =
      net::kEthernetHeaderSize + program.wireBytes() + payload.size();
  auto packet = net::Packet::make(std::max(size, net::kMinFrameSize));
  net::EthernetHeader eth{dst, src, net::kEtherTypeTpp};
  eth.write(packet->span());
  writeTpp(packet->span(), net::kEthernetHeaderSize, program, innerEtherType);
  std::copy(payload.begin(), payload.end(),
            packet->bytes().begin() +
                static_cast<std::ptrdiff_t>(net::kEthernetHeaderSize +
                                            program.wireBytes()));
  return packet;
}

void insertTppShim(net::Packet& packet, const Program& program) {
  auto eth = net::EthernetHeader::parse(packet.span());
  assert(eth && "cannot shim a non-ethernet frame");
  const std::uint16_t innerType = eth->etherType;
  const std::size_t body = program.wireBytes();
  auto& bytes = packet.bytes();
  bytes.insert(bytes.begin() +
                   static_cast<std::ptrdiff_t>(net::kEthernetHeaderSize),
               body, 0);
  net::putBe16(packet.span(), 12, net::kEtherTypeTpp);
  writeTpp(packet.span(), net::kEthernetHeaderSize, program, innerType);
}

bool stripTppShim(net::Packet& packet) {
  auto eth = net::EthernetHeader::parse(packet.span());
  if (!eth || eth->etherType != net::kEtherTypeTpp) return false;
  auto view = TppView::at(packet, net::kEthernetHeaderSize);
  if (!view) return false;
  const std::uint16_t innerType = view->innerEtherType();
  const std::size_t body = view->tppSizeBytes();
  auto& bytes = packet.bytes();
  bytes.erase(bytes.begin() +
                  static_cast<std::ptrdiff_t>(net::kEthernetHeaderSize),
              bytes.begin() +
                  static_cast<std::ptrdiff_t>(net::kEthernetHeaderSize + body));
  net::putBe16(packet.span(), 12, innerType);
  return true;
}

bool parseExecutedInto(std::span<const std::uint8_t> bytes, ExecutedTpp& out) {
  out.instructions.clear();
  out.pmem.clear();
  if (kTppHeaderSize > bytes.size()) return false;
  auto header = TppHeader::parse(bytes);
  if (!header) return false;
  out.header = *header;
  std::size_t pos = kTppHeaderSize;
  if (pos + header->instrWords * kInstructionSize +
          header->pmemWords * kWordSize >
      bytes.size()) {
    return false;
  }
  out.instructions.reserve(header->instrWords);
  out.pmem.reserve(header->pmemWords);
  for (std::size_t i = 0; i < header->instrWords; ++i) {
    const auto word = *net::getBe32(bytes, pos);
    auto ins = Instruction::decode(word);
    if (!ins) return false;
    out.instructions.push_back(*ins);
    pos += kInstructionSize;
  }
  for (std::size_t i = 0; i < header->pmemWords; ++i) {
    out.pmem.push_back(*net::getBe32(bytes, pos));
    pos += kWordSize;
  }
  return true;
}

std::optional<ExecutedTpp> parseExecuted(const net::Packet& packet,
                                         std::size_t tppOffset) {
  // TppView requires a mutable packet; we only read, so a const_cast-free
  // path re-parses from the raw bytes.
  const auto bytes = packet.span();
  if (tppOffset > bytes.size()) return std::nullopt;
  ExecutedTpp out;
  if (!parseExecutedInto(bytes.subspan(tppOffset), out)) return std::nullopt;
  return out;
}

}  // namespace tpp::core
