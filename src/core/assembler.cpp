#include "src/core/assembler.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace tpp::core {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<std::uint64_t> parseNumber(std::string_view t) {
  t = trim(t);
  if (t.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const char* first = t.data();
  const char* last = t.data() + t.size();
  std::from_chars_result r{};
  if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    r = std::from_chars(first + 2, last, v, 16);
  } else {
    r = std::from_chars(first, last, v, 10);
  }
  if (r.ec != std::errc{} || r.ptr != last) return std::nullopt;
  return v;
}

// One parsed operand.
struct Operand {
  enum class Kind { SwitchAddr, PmemIndex, HopOffset, Immediate } kind;
  std::uint32_t value = 0;
};

struct Parser {
  const MemoryMap& map;
  std::unordered_map<std::string, std::uint32_t> defines;

  std::optional<Operand> parseOperand(std::string_view t, std::string& err) {
    t = trim(t);
    if (t.empty()) {
      err = "empty operand";
      return std::nullopt;
    }
    if (t.front() == '$') {
      const auto it = defines.find(std::string(t.substr(1)));
      if (it == defines.end()) {
        err = "undefined constant " + std::string(t);
        return std::nullopt;
      }
      return Operand{Operand::Kind::Immediate, it->second};
    }
    if (t.front() == '[') {
      if (t.back() != ']') {
        err = "unterminated bracket in " + std::string(t);
        return std::nullopt;
      }
      const std::string_view inner = trim(t.substr(1, t.size() - 2));
      // [Packet:N] / [Packet:hop[N]] / [PacketMemory:N]
      for (const std::string_view prefix : {"Packet:", "PacketMemory:"}) {
        if (inner.starts_with(prefix)) {
          std::string_view rest = inner.substr(prefix.size());
          if (rest.starts_with("hop[") && rest.ends_with("]")) {
            const auto n = parseNumber(rest.substr(4, rest.size() - 5));
            if (!n || *n > 255) {
              err = "bad hop offset in " + std::string(t);
              return std::nullopt;
            }
            return Operand{Operand::Kind::HopOffset,
                           static_cast<std::uint32_t>(*n)};
          }
          const auto n = parseNumber(rest);
          if (!n || *n > 255) {
            err = "bad packet-memory index in " + std::string(t);
            return std::nullopt;
          }
          return Operand{Operand::Kind::PmemIndex,
                         static_cast<std::uint32_t>(*n)};
        }
      }
      // [0xB000] literal switch address
      if (const auto n = parseNumber(inner)) {
        if (*n > 0xffff) {
          err = "address out of range in " + std::string(t);
          return std::nullopt;
        }
        return Operand{Operand::Kind::SwitchAddr,
                       static_cast<std::uint32_t>(*n)};
      }
      // [Namespace:Statistic]
      if (const auto a = map.resolve(inner)) {
        return Operand{Operand::Kind::SwitchAddr, *a};
      }
      err = "unknown statistic " + std::string(inner);
      return std::nullopt;
    }
    if (const auto n = parseNumber(t)) {
      return Operand{Operand::Kind::Immediate, static_cast<std::uint32_t>(*n)};
    }
    err = "cannot parse operand " + std::string(t);
    return std::nullopt;
  }
};

std::vector<std::string_view> splitOperands(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '[') ++depth;
    if (s[i] == ']' && depth > 0) --depth;
    if (s[i] == ',' && depth == 0) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  const auto last = trim(s.substr(start));
  if (!last.empty()) out.push_back(last);
  return out;
}

}  // namespace

std::variant<Program, AssemblyError> assemble(std::string_view source,
                                              const MemoryMap& map,
                                              const AssembleOptions& options) {
  ProgramBuilder builder;
  Parser parser{map, {}};
  bool sawReserve = false;
  std::size_t pushCount = 0;
  struct InitDirective {
    std::size_t index;
    std::uint32_t value;
    int line;
  };
  std::vector<InitDirective> inits;
  std::optional<std::uint16_t> explicitSp;
  std::optional<std::size_t> explicitPmem;
  std::vector<int> instructionLines;

  int lineNo = 0;
  // Line of the last non-blank source line: post-pass failures (budget
  // overflows detected only once the whole program is known) anchor here
  // instead of pointing one past the end of the file.
  int lastContentLine = 0;
  std::size_t pos = 0;
  auto fail = [&](std::string msg) {
    return AssemblyError{lineNo, std::move(msg)};
  };

  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++lineNo;

    // Strip comments.
    for (const char c : {'#', ';'}) {
      if (const auto cut = line.find(c); cut != std::string_view::npos) {
        line = line.substr(0, cut);
      }
    }
    line = trim(line);
    if (line.empty()) continue;
    lastContentLine = lineNo;

    if (line.front() == '.') {  // directive
      const std::size_t sp = line.find(' ');
      const std::string_view name = line.substr(0, sp);
      const std::string_view rest =
          sp == std::string_view::npos ? "" : trim(line.substr(sp + 1));
      if (name == ".mode") {
        if (rest == "stack") {
          builder.mode(AddressingMode::Stack);
        } else if (rest == "hop") {
          builder.mode(AddressingMode::Hop);
        } else {
          return fail("bad .mode (want stack|hop)");
        }
      } else if (name == ".perhop") {
        const auto n = parseNumber(rest);
        if (!n || *n > 255) return fail("bad .perhop");
        builder.perHop(static_cast<std::uint8_t>(*n));
      } else if (name == ".reserve") {
        const auto n = parseNumber(rest);
        if (!n || *n > 255) return fail("bad .reserve");
        builder.reserve(static_cast<std::uint8_t>(*n));
        sawReserve = true;
      } else if (name == ".task") {
        const auto n = parseNumber(rest);
        if (!n || *n > 0xffff) return fail("bad .task");
        builder.task(static_cast<std::uint16_t>(*n));
      } else if (name == ".pmem") {
        const auto n = parseNumber(rest);
        if (!n || *n > 255) return fail("bad .pmem");
        explicitPmem = static_cast<std::size_t>(*n);
      } else if (name == ".sp") {
        const auto n = parseNumber(rest);
        if (!n || *n > 0xffff) return fail("bad .sp");
        explicitSp = static_cast<std::uint16_t>(*n);
      } else if (name == ".init") {
        const std::size_t sp2 = rest.find(' ');
        if (sp2 == std::string_view::npos) return fail("bad .init");
        const auto idx = parseNumber(rest.substr(0, sp2));
        const auto v = parseNumber(rest.substr(sp2 + 1));
        if (!idx || *idx > 255 || !v || *v > 0xffffffffULL) {
          return fail("bad .init");
        }
        inits.push_back(InitDirective{static_cast<std::size_t>(*idx),
                                      static_cast<std::uint32_t>(*v),
                                      lineNo});
      } else if (name == ".define") {
        const std::size_t sp2 = rest.find(' ');
        if (sp2 == std::string_view::npos) return fail("bad .define");
        const auto v = parseNumber(rest.substr(sp2 + 1));
        if (!v || *v > 0xffffffffULL) return fail("bad .define value");
        parser.defines[std::string(trim(rest.substr(0, sp2)))] =
            static_cast<std::uint32_t>(*v);
      } else {
        return fail("unknown directive " + std::string(name));
      }
      continue;
    }

    // Instruction: MNEMONIC [operand[, operand[, operand]]]
    const std::size_t sp = line.find_first_of(" \t");
    const std::string_view mnemonic = line.substr(0, sp);
    const auto op = opcodeFromName(mnemonic);
    if (!op) return fail("unknown mnemonic " + std::string(mnemonic));
    const std::string_view rest =
        sp == std::string_view::npos ? "" : line.substr(sp + 1);
    const auto operands = splitOperands(rest);
    std::string err;

    auto switchAddr = [&](std::size_t i) -> std::optional<std::uint16_t> {
      const auto o = parser.parseOperand(operands[i], err);
      if (!o || o->kind != Operand::Kind::SwitchAddr) return std::nullopt;
      return static_cast<std::uint16_t>(o->value);
    };

    switch (*op) {
      case Opcode::Nop:
        builder.raw({Opcode::Nop, 0, 0});
        break;
      case Opcode::Push:
      case Opcode::Pop: {
        if (operands.size() != 1) return fail("PUSH/POP take one operand");
        const auto a = switchAddr(0);
        if (!a) return fail(err.empty() ? "operand must be a switch address"
                                        : err);
        builder.raw({*op, *a, 0});
        if (*op == Opcode::Push) ++pushCount;
        break;
      }
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Min:
      case Opcode::Max: {
        if (operands.size() != 2) return fail("expected two operands");
        const auto a = switchAddr(0);
        if (!a) return fail(err.empty() ? "first operand must be an address"
                                        : err);
        const auto o2 = parser.parseOperand(operands[1], err);
        if (!o2) return fail(err);
        switch (o2->kind) {
          case Operand::Kind::PmemIndex:
          case Operand::Kind::HopOffset:
            builder.raw({*op, *a, static_cast<std::uint8_t>(o2->value)});
            break;
          case Operand::Kind::Immediate:
            if (*op != Opcode::Store) {
              return fail("immediate operand only valid for STORE");
            }
            builder.storeImm(*a, o2->value);
            break;
          default:
            return fail("second operand must be packet memory or immediate");
        }
        break;
      }
      case Opcode::Cstore:
      case Opcode::Cexec: {
        if (operands.size() != 3) return fail("expected three operands");
        const auto a = switchAddr(0);
        if (!a) return fail(err.empty() ? "first operand must be an address"
                                        : err);
        const auto o2 = parser.parseOperand(operands[1], err);
        if (!o2) return fail(err);
        const auto o3 = parser.parseOperand(operands[2], err);
        if (!o3) return fail(err);
        if (o2->kind == Operand::Kind::Immediate &&
            o3->kind == Operand::Kind::Immediate) {
          if (*op == Opcode::Cstore) {
            builder.cstore(*a, o2->value, o3->value);
          } else {
            builder.cexec(*a, o2->value, o3->value);
          }
        } else if (o2->kind == Operand::Kind::PmemIndex &&
                   o3->kind == Operand::Kind::PmemIndex &&
                   o3->value == o2->value + 1) {
          builder.raw({*op, *a, static_cast<std::uint8_t>(o2->value)});
        } else {
          return fail(
              "operands must both be immediates or adjacent [Packet:N]");
        }
        break;
      }
    }
    // Every branch above appended exactly one instruction for this line.
    instructionLines.push_back(lineNo);
  }

  // Default reserve: enough stack room for every PUSH to land on a distinct
  // word across a generous 8-hop path. Suppressed when the author sized
  // packet memory explicitly (.reserve or .pmem).
  if (!sawReserve && !explicitPmem && pushCount > 0) {
    const std::size_t words = pushCount * 8;
    builder.reserve(static_cast<std::uint8_t>(std::min<std::size_t>(words,
                                                                    200)));
  }
  auto program = builder.build();
  if (!program) {
    return AssemblyError{lastContentLine, "program exceeds encoding limits"};
  }
  // Apply explicit memory-image directives.
  std::size_t total = program->pmemWords;
  if (explicitPmem) total = std::max(total, *explicitPmem);
  for (const auto& init : inits) {
    if (program->initialPmem.size() <= init.index) {
      program->initialPmem.resize(init.index + 1, 0);
    }
    program->initialPmem[init.index] = init.value;
    total = std::max(total, init.index + 1);
    if (total > 255) {
      return AssemblyError{init.line, "packet memory exceeds 255 words"};
    }
  }
  if (total > 255) {
    return AssemblyError{lastContentLine, "packet memory exceeds 255 words"};
  }
  program->pmemWords = static_cast<std::uint8_t>(total);
  if (explicitSp) program->initialSp = *explicitSp;

  if (options.verify) {
    VerifyOptions vopts = options.verifyOptions;
    vopts.instructionLines = instructionLines;
    const auto vr = verify(*program, map, vopts);
    if (!vr.ok()) {
      for (const auto& d : vr.diagnostics) {
        if (d.severity != Severity::Error) continue;
        return AssemblyError{
            d.line > 0 ? d.line : lastContentLine,
            "verify: [" + std::string(checkName(d.check)) + "] " + d.message};
      }
    }
  }
  if (options.outInstructionLines) {
    *options.outInstructionLines = std::move(instructionLines);
  }
  return *program;
}

std::string disassemble(const Program& program, const MemoryMap& map) {
  std::ostringstream os;
  if (program.mode == AddressingMode::Hop) {
    os << ".mode hop\n.perhop " << int{program.perHopWords} << "\n";
  }
  if (program.taskId != 0) os << ".task " << program.taskId << "\n";
  os << ".pmem " << int{program.pmemWords} << "\n";
  os << ".sp " << program.initialSp << "\n";
  for (std::size_t i = 0; i < program.initialPmem.size(); ++i) {
    os << ".init " << i << " " << program.initialPmem[i] << "\n";
  }
  auto name = [&](std::uint16_t a) {
    if (const auto* s = map.lookup(a)) return s->name;
    char buf[12];
    std::snprintf(buf, sizeof buf, "0x%04x", a);
    return std::string("[") + buf + "]";
  };
  auto fmt = [&](std::uint16_t a) {
    const auto* s = map.lookup(a);
    if (s) return "[" + s->name + "]";
    return name(a);
  };
  for (const auto& ins : program.instructions) {
    os << opcodeName(ins.op);
    switch (ins.op) {
      case Opcode::Nop:
        break;
      case Opcode::Push:
      case Opcode::Pop:
        os << " " << fmt(ins.addr);
        break;
      case Opcode::Cstore:
      case Opcode::Cexec:
        os << " " << fmt(ins.addr) << ", [Packet:" << int{ins.pmemOff}
           << "], [Packet:" << int{ins.pmemOff} + 1 << "]";
        break;
      default:
        os << " " << fmt(ins.addr) << ", [Packet:" << int{ins.pmemOff} << "]";
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace tpp::core
