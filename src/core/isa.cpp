#include "src/core/isa.hpp"

#include <array>

namespace tpp::core {
namespace {

constexpr std::array<std::pair<Opcode, std::string_view>, 11> kNames{{
    {Opcode::Nop, "NOP"},
    {Opcode::Load, "LOAD"},
    {Opcode::Store, "STORE"},
    {Opcode::Push, "PUSH"},
    {Opcode::Pop, "POP"},
    {Opcode::Cstore, "CSTORE"},
    {Opcode::Cexec, "CEXEC"},
    {Opcode::Add, "ADD"},
    {Opcode::Sub, "SUB"},
    {Opcode::Min, "MIN"},
    {Opcode::Max, "MAX"},
}};

bool validOpcode(std::uint8_t raw) {
  return raw <= static_cast<std::uint8_t>(Opcode::Max);
}

}  // namespace

std::uint32_t Instruction::encode() const {
  return (static_cast<std::uint32_t>(op) << 24) |
         (static_cast<std::uint32_t>(addr) << 8) |
         static_cast<std::uint32_t>(pmemOff);
}

std::optional<Instruction> Instruction::decode(std::uint32_t word) {
  const auto raw = static_cast<std::uint8_t>(word >> 24);
  if (!validOpcode(raw)) return std::nullopt;
  Instruction i;
  i.op = static_cast<Opcode>(raw);
  i.addr = static_cast<std::uint16_t>(word >> 8);
  i.pmemOff = static_cast<std::uint8_t>(word);
  return i;
}

bool writesSwitchMemory(Opcode op) {
  return op == Opcode::Store || op == Opcode::Pop || op == Opcode::Cstore;
}

bool takesTwoPmemWords(Opcode op) {
  return op == Opcode::Cstore || op == Opcode::Cexec;
}

std::string_view opcodeName(Opcode op) {
  for (const auto& [o, n] : kNames) {
    if (o == op) return n;
  }
  return "INVALID";
}

std::optional<Opcode> opcodeFromName(std::string_view name) {
  for (const auto& [o, n] : kNames) {
    if (n == name) return o;
  }
  return std::nullopt;
}

}  // namespace tpp::core
