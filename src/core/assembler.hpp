// Assembler for the x86-like TPP assembly the paper writes its examples in,
// e.g.:
//
//     # Phase-1 collect (RCP*, §2.2)
//     PUSH [Switch:SwitchID]
//     PUSH [Link:QueueSize]
//     PUSH [Link:RX-Utilization]
//     PUSH [Link:RCP-RateRegister]
//
//     CEXEC [Switch:SwitchID], 0xFFFFFFFF, $BottleneckSwitchID
//     STORE [Link:RCP-RateRegister], [Packet:0]
//
// Directives:
//   .mode stack|hop      addressing mode (default stack)
//   .perhop N            per-hop record size in words (hop mode)
//   .reserve N           packet-memory words after the immediates
//   .pmem N              total packet-memory words (overrides if larger)
//   .init N VALUE        initialize packet-memory word N
//   .sp N                initial stack pointer (byte offset)
//   .task N              task id (SRAM-grant key)
//   .define NAME VALUE   named constant, referenced as $NAME
//
// Operand forms:
//   [Namespace:Statistic]   resolved through the MemoryMap
//   [0xB000]                literal switch address
//   [Packet:N]              packet-memory word index N
//   [Packet:hop[N]]         hop-relative word offset N (hop mode)
//   0x... / decimal / $NAME immediates (CEXEC mask,value; CSTORE cond,src;
//                           STORE source) — compiled into packet memory
#pragma once

#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/core/verifier.hpp"

namespace tpp::core {

struct AssemblyError {
  int line = 0;
  std::string message;
};

struct AssembleOptions {
  // Opt-in hook: run the static verifier on the assembled program and
  // fail assembly on verifier errors, so ill-formed programs are rejected
  // at build time instead of faulting in flight. The returned
  // AssemblyError carries the offending instruction's source line.
  bool verify = false;
  VerifyOptions verifyOptions;
  // When non-null, receives the 1-based source line of each assembled
  // instruction (parallel to Program::instructions) — feeds
  // VerifyOptions::instructionLines so verifier output is clickable.
  std::vector<int>* outInstructionLines = nullptr;
};

std::variant<Program, AssemblyError> assemble(
    std::string_view source, const MemoryMap& map = MemoryMap::standard(),
    const AssembleOptions& options = {});

// Inverse: renders a program as assembly text, naming addresses through the
// map where possible. Immediate-consuming instructions are shown with their
// packet-memory operands inline.
std::string disassemble(const Program& program,
                        const MemoryMap& map = MemoryMap::standard());

}  // namespace tpp::core
