#include "src/core/memory_map.hpp"

namespace tpp::core {

const MemoryMap& MemoryMap::standard() {
  static const MemoryMap map = [] {
    MemoryMap m;
    auto ro = [&m](std::string name, std::uint16_t a, std::string desc) {
      m.add(StatInfo{std::move(name), a, Access::ReadOnly, std::move(desc)});
    };
    auto rw = [&m](std::string name, std::uint16_t a, std::string desc) {
      m.add(StatInfo{std::move(name), a, Access::ReadWrite, std::move(desc)});
    };
    // Per-switch.
    ro("Switch:SwitchID", addr::SwitchId, "unique switch identifier");
    ro("Switch:ID", addr::SwitchId, "alias of Switch:SwitchID");
    ro("Switch:L2TableVersion", addr::L2TableVersion,
       "version stamp of the L2 table (ndb)");
    ro("Switch:L3TableVersion", addr::L3TableVersion,
       "version stamp of the L3 LPM table (ndb)");
    ro("Switch:TcamVersion", addr::TcamVersion,
       "version stamp of the TCAM (ndb)");
    ro("Switch:TimeLo", addr::TimeLo, "dataplane clock, ns, low 32 bits");
    ro("Switch:TimeHi", addr::TimeHi, "dataplane clock, ns, high 32 bits");
    ro("Switch:TotalRxPackets", addr::TotalRxPackets,
       "packets received, all ports");
    ro("Switch:TotalTxPackets", addr::TotalTxPackets,
       "packets transmitted, all ports");
    ro("Switch:TotalDrops", addr::TotalDrops, "packets dropped, all ports");
    ro("Switch:PortCount", addr::PortCount, "number of ports");
    ro("Switch:BootEpoch", addr::SwitchBootEpoch,
       "increments on every reboot that wipes scratch SRAM");
    ro("Switch:SimEventsFired", addr::SimEventsFired,
       "simulator events executed so far, low 32 bits");
    ro("Switch:InstrsRetired", addr::TcpuInstrsRetired,
       "TCPU instructions retired on this switch, low 32 bits");
    ro("Switch:TppsExecuted", addr::TppsExecuted,
       "TPPs executed by this switch's TCPU, low 32 bits");
    ro("Switch:TraceRecords", addr::TraceRecords,
       "flight-recorder records written, low 32 bits (0 if disarmed)");
    ro("Switch:TraceDrops", addr::TraceDrops,
       "flight-recorder records lost to ring wrap (0 if disarmed)");
    // Per-port.
    ro("Link:TxBytes", addr::TxBytes, "bytes transmitted on egress port");
    ro("Link:TxPackets", addr::TxPackets, "packets transmitted on egress");
    ro("Link:TxDrops", addr::TxDrops, "packets dropped at egress port");
    ro("Link:QueueSize", addr::PortQueueBytes,
       "bytes queued across all queues of the egress port");
    ro("Link:RX-Utilization", addr::RxUtilization,
       "ingress link utilization, parts-per-million of capacity");
    ro("Link:CapacityMbps", addr::LinkCapacityMbps,
       "egress link capacity, Mbit/s");
    ro("Link:RxBytes", addr::RxBytes, "bytes received on ingress port");
    ro("Link:RxPackets", addr::RxPackets, "packets received on ingress port");
    ro("Link:TX-Utilization", addr::TxUtilization,
       "offered load into the egress port incl. drops, ppm of capacity");
    ro("Link:SNR", addr::WirelessSnr,
       "wireless channel SNR at the egress port, centi-dB (§2.3)");
    ro("Link:DroppedBytes", addr::PortDroppedBytes,
       "drop-tail bytes lost across all queues of the egress port");
    ro("Link:DroppedPackets", addr::PortDroppedPackets,
       "drop-tail packets lost across all queues of the egress port");
    ro("Link:ProbesInFlight", addr::ProbesInFlight,
       "host-posted gauge: probes outstanding toward this port");
    // Per-packet metadata.
    ro("PacketMetadata:InputPort", addr::InputPort, "packet's ingress port");
    ro("PacketMetadata:OutputPort", addr::OutputPort,
       "selected egress port (the paper's 'selected route')");
    ro("PacketMetadata:QueueId", addr::QueueId, "selected egress queue");
    ro("PacketMetadata:MatchedEntryID", addr::MatchedEntryId,
       "version-stamped id of the flow entry that forwarded this packet");
    ro("PacketMetadata:MatchedTable", addr::MatchedTable,
       "which table matched: 1=L2 2=L3 3=TCAM 0=miss");
    ro("PacketMetadata:AltRoutes", addr::AltRoutes,
       "number of alternate next-hops for this packet");
    ro("PacketMetadata:FlowHash", addr::FlowHashLo,
       "ECMP 5-tuple flow hash of this packet, low 32 bits");
    ro("PacketMetadata:PacketBytes", addr::PacketBytes,
       "wire size of this packet in bytes");
    ro("PacketMetadata:TcpSeq", addr::TcpSeq,
       "TCP sequence number (TCP-over-UDP segments; 0 otherwise)");
    ro("PacketMetadata:TcpWnd", addr::TcpWnd,
       "TCP advertised receive window (TCP-over-UDP segments; 0 otherwise)");
    ro("PacketMetadata:TcpSpin", addr::TcpSpin,
       "passive-RTT spin bit (bit 0); 0xffffffff when the packet is not a "
       "recognized TCP segment");
    // Per-queue.
    ro("Queue:QueueSize", addr::QueueBytes,
       "bytes in the packet's egress queue, sampled at TCPU time");
    ro("Queue:QueueSizePackets", addr::QueuePackets,
       "packets in the packet's egress queue");
    ro("Queue:EnqueuedBytes", addr::QueueEnqueuedBytes,
       "cumulative bytes enqueued");
    ro("Queue:DroppedBytes", addr::QueueDroppedBytes,
       "cumulative bytes dropped");
    ro("Queue:DroppedPackets", addr::QueueDroppedPackets,
       "cumulative packets dropped");
    ro("Queue:CapacityBytes", addr::QueueCapacityBytes,
       "configured buffer size of the queue");
    // Scratch conventions used by the bundled tasks.
    rw("Link:RCP-RateRegister", addr::RcpRateRegister,
       "per-link fair-share rate R(t), Kbit/s (RCP*, §2.2)");
    rw("Link:RCP-LockRegister", addr::RcpLockRegister,
       "RCP* controller CSTORE lock: 0 = free, else owner id");
    rw("PortScratch:Word0", kPortScratchBase + 0, "per-port scratch word 0");
    rw("PortScratch:Word1", kPortScratchBase + 1, "per-port scratch word 1");
    rw("Sram:Word0", kSramBase + 0, "global scratch word 0");
    rw("Sram:Word1", kSramBase + 1, "global scratch word 1");
    return m;
  }();
  return map;
}

std::optional<std::uint16_t> MemoryMap::resolve(std::string_view name) const {
  for (const auto& s : stats_) {
    if (s.name == name) return s.address;
  }
  return std::nullopt;
}

const StatInfo* MemoryMap::lookup(std::uint16_t address) const {
  for (const auto& s : stats_) {
    if (s.address == address) return &s;
  }
  return nullptr;
}

StatNamespace MemoryMap::namespaceOf(std::uint16_t address) {
  if (address >= kSramBase) return StatNamespace::Sram;
  if (address >= kPortScratchBase) return StatNamespace::PortScratch;
  if (address >= kQueueBase && address < kQueueBase + 0x1000) {
    return StatNamespace::Queue;
  }
  if (address >= kPacketMetaBase && address < kPacketMetaBase + 0x1000) {
    return StatNamespace::PacketMeta;
  }
  if (address >= kPortBase && address < kPortBase + 0x1000) {
    return StatNamespace::Port;
  }
  if (address >= kSwitchBase && address < kSwitchBase + 0x1000) {
    return StatNamespace::Switch;
  }
  return StatNamespace::Unmapped;
}

bool MemoryMap::writable(std::uint16_t address) {
  const auto ns = namespaceOf(address);
  return ns == StatNamespace::PortScratch || ns == StatNamespace::Sram;
}

void MemoryMap::add(StatInfo info) { stats_.push_back(std::move(info)); }

}  // namespace tpp::core
