// Resident hook programs (DESIGN.md §14): TPP programs installed on a
// switch by the control plane and executed per eligible forwarded packet,
// instead of arriving inside the packet. The wire ISA and the grant/
// interference machinery are unchanged — a hook is an ordinary Program
// template plus patch directives telling the switch how to specialize the
// instruction addresses and packet-memory words for each packet's flow
// hash before execution.
//
// Patching happens on a decoded working copy of the template, never on
// wire bytes, so the TCPU's decode cache is not involved (see
// Tcpu::executeResident). Address patches implement hashed indexing into a
// granted scratch region (count-min rows, per-flow slots); pmem patches
// inject per-packet values the ISA cannot compute itself (the flow
// signature, the expected spin bit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/program.hpp"

namespace tpp::core {

struct HookProgram {
  std::string name;
  // Template program: taskId, instructions and initialPmem set. Patched
  // fields hold placeholder values so the template itself is a valid
  // program (materializeHook of column 0 equals the template when there is
  // nothing to patch).
  Program program;
  // When true the switch runs the hook only for packets recognized as
  // TCP-over-UDP segments (ParsedPacket::tcp set).
  bool tcpOnly = false;

  // One instruction's addr field to rewrite.
  struct AddrTarget {
    std::uint16_t instrIndex = 0;  // index into program.instructions
    std::uint16_t wordOffset = 0;  // added to the slot base address
  };
  // Rewrites a group of instructions to address one hashed slot:
  //   addr = baseAddress + hookColumn(flowHash, salt, slots) * slotStride
  //        + target.wordOffset
  // A count-min row uses slotStride=1 (one counter per column); a per-flow
  // record uses slotStride = record words, with one target per field.
  struct AddrPatch {
    std::uint16_t baseAddress = 0;
    std::uint32_t slots = 1;
    std::uint16_t slotStride = 1;
    std::uint64_t salt = 0;
    std::vector<AddrTarget> targets;
  };
  std::vector<AddrPatch> addrPatches;

  // Per-packet packet-memory values.
  enum class PmemSource : std::uint8_t {
    FlowSig,      // hookFlowSig(flowHash, salt): nonzero flow signature
    SpinBit,      // packet's spin bit (0/1)
    SpinInverse,  // 1 - spin bit
  };
  struct PmemPatch {
    std::uint8_t wordIndex = 0;  // index into the program's packet memory
    PmemSource source = PmemSource::FlowSig;
    std::uint64_t salt = 0;
  };
  std::vector<PmemPatch> pmemPatches;
};

// Salted 64-bit mix of a flow hash — the "pairwise independent hash
// family" of the count-min analysis, one member per salt.
std::uint64_t hookMix(std::uint64_t flowHash, std::uint64_t salt);

// Column index in [0, slots) for this flow. slots == 0 yields 0.
std::uint32_t hookColumn(std::uint64_t flowHash, std::uint64_t salt,
                         std::uint32_t slots);

// Nonzero 32-bit flow signature (low bit forced on), distinguishing "slot
// empty" (0) from any real flow in per-flow record claiming.
std::uint32_t hookFlowSig(std::uint64_t flowHash, std::uint64_t salt);

// Applies the hook's patches for a concrete (column, flowHash, spin) and
// returns the resulting standalone Program — what the switch would execute
// for a packet mapping to `column` under every addr patch. Used by static
// verification (summarize each column's instance) and tests; the switch
// itself patches decoded working copies in place. Aborts if a patch
// references an instruction or pmem word outside the template.
Program materializeHook(const HookProgram& hook, std::uint32_t column,
                        std::uint64_t flowHash = 0, std::uint32_t spin = 0);

}  // namespace tpp::core
