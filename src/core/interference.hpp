// Deployment-level interference analysis (extended-paper §4: many end-hosts
// share switch SRAM, coordinated only by CSTORE and epoch checks).
//
// The per-program verifier (verifier.hpp) proves a single TPP fault-free;
// it says nothing about what happens when six tasks' programs interleave on
// the same scratch words. This layer closes that gap in two steps:
//
//   1. summarize() compresses a Program into an *effect summary*: for every
//      switch-visible address it touches, the access kind (read, plain
//      write, or CSTORE read-modify-write) together with the CEXEC guard
//      conditions under which the access fires. Guard immediates are
//      resolved against the initialized packet-memory image, using the same
//      stack-pointer interval walk as the verifier to prove the operand
//      words are never overwritten in flight (otherwise the guard is
//      recorded as unknown, which is conservative).
//
//   2. analyzeInterference() takes the summaries of every concurrently
//      deployed task and builds a pairwise conflict matrix over the
//      writable (scratch) addresses. Cross-task overlaps are classified:
//
//        write-write    two tasks plain-write the same word — last writer
//                       wins, silently (error)
//        lost-update    one task plain-writes a word another task CSTOREs;
//                       the plain write destroys the compare-and-swap
//                       invariant (error). The classic shape — read, then
//                       plain write-back — is called out explicitly.
//        read-write     one task plain-writes a word another only reads;
//                       the reader sees arbitrary interleavings (warning)
//        shared-rmw     both sides use CSTORE — the coordination the paper
//                       intends; recorded in the matrix, not flagged
//        guard-disjoint both accesses are CEXEC-pinned to provably
//                       different [Switch:SwitchID] values, so they can
//                       never fire on the same physical word; recorded in
//                       the matrix, not flagged
//
//      Lock discipline (InterferenceOptions::locks declares lock words and
//      the regions they protect, e.g. Link:RCP-Lock → Link:RCP-RateRegister):
//
//        lock-plain-write     mutating a lock word with STORE/POP instead
//                             of CSTORE (error)
//        lock-no-epoch-check  a program CSTOREs a lock word but never reads
//                             Switch:BootEpoch — a reboot-wiped lock would
//                             be stolen or deadlock undetectably (error)
//        lock-no-acquire      plain-writing a lock-protected word without
//                             any CSTORE on the owning lock — mutating the
//                             region without holding the (id, epoch) proof
//                             (error)
//
// The dynamic counterpart — asic::SramRaceOracle — logs actual per-word
// SRAM accesses at run time and cross-checks them against these verdicts;
// a "static says safe" deployment must produce zero observed conflicts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/core/verifier.hpp"

namespace tpp::core {

enum class EffectKind : std::uint8_t { Read, Write, Rmw };

std::string_view effectKindName(EffectKind k);

// One CEXEC predicate guarding an effect: switch[addr] & mask == value.
// `known` is true only when both immediate words provably hold their
// initial packet-memory values at every execution.
struct EffectGuard {
  std::uint16_t addr = 0;
  bool known = false;
  std::uint32_t mask = 0;
  std::uint32_t value = 0;
};

struct Effect {
  std::uint16_t address = 0;
  EffectKind kind = EffectKind::Read;
  int instructionIndex = -1;
  // Which of the task's programs this effect came from (summaries span all
  // the programs a logical task injects).
  std::size_t programIndex = 0;
  std::vector<EffectGuard> guards;
  // CSTORE protocol operands from the initial packet-memory image (the
  // first-execution comparand and store value). `condKnown`/`srcKnown` are
  // false when the word lies past the initialized image.
  bool condKnown = false;
  bool srcKnown = false;
  std::uint32_t cond = 0;
  std::uint32_t src = 0;
};

// Everything a logical task can do to switch memory, across all the
// programs it injects.
struct EffectSummary {
  std::uint16_t taskId = 0;
  std::string name;
  std::vector<Effect> effects;
  std::size_t programCount = 0;
  // Per program: does it read Switch:BootEpoch (the reboot/epoch proof)?
  std::vector<bool> programReadsEpoch;
};

// Appends `program`'s effects to `summary` (bumping programCount). The
// first summarized program also sets the summary's taskId.
void summarizeProgram(const Program& program, EffectSummary& summary,
                      std::size_t maxHops = 8);
EffectSummary summarize(const Program& program, std::string name = {},
                        std::size_t maxHops = 8);

// A CSTORE-based lock word and the scratch region it protects.
struct LockSpec {
  std::uint16_t lockAddress = 0;
  std::vector<std::uint16_t> protectedAddresses;
  std::string name;
};

struct InterferenceOptions {
  std::vector<LockSpec> locks;
};

enum class ConflictKind : std::uint8_t {
  WriteWrite,
  LostUpdate,
  ReadWrite,
  SharedRmw,       // benign: both sides coordinate through CSTORE
  GuardDisjoint,   // benign: CEXEC-pinned to different switches
  LockPlainWrite,
  LockNoEpochCheck,
  LockNoAcquire,
};

std::string_view conflictKindName(ConflictKind k);

struct Conflict {
  ConflictKind kind = ConflictKind::WriteWrite;
  Severity severity = Severity::Error;
  std::uint16_t address = 0;
  // Indices into the analyzed summaries span. Per-task lock findings set
  // taskB == taskA.
  std::size_t taskA = 0;
  std::size_t taskB = 0;
  std::string message;
};

struct InterferenceReport {
  // Flagged findings (errors + warnings), in task-pair order.
  std::vector<Conflict> findings;
  // Proven-safe overlaps — the rest of the conflict matrix. A deployment
  // with shared words and an empty findings list is certified by these.
  std::vector<Conflict> benign;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  // Distinct writable addresses touched by more than one task.
  std::size_t sharedWords = 0;

  bool ok() const { return errors == 0; }
};

InterferenceReport analyzeInterference(std::span<const EffectSummary> tasks,
                                       const InterferenceOptions& opts = {});

// "error: [write-write] tasks 'a' (task 1) and 'b' (task 2) ...". The
// message is fully resolved (task names, address mnemonics) at analysis
// time, so this is a pure prefix-and-join.
std::string formatConflict(const Conflict& c);

}  // namespace tpp::core
