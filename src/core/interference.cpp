#include "src/core/interference.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace tpp::core {
namespace {

std::string describeAddress(std::uint16_t address) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%04x", address);
  if (const auto* s = MemoryMap::standard().lookup(address)) {
    return "[" + s->name + "] (" + buf + ")";
  }
  return std::string(buf);
}

std::string taskRef(const EffectSummary& s) {
  const std::string name = s.name.empty() ? "<unnamed>" : s.name;
  return "'" + name + "' (task " + std::to_string(s.taskId) + ")";
}

bool isModeAddressed(Opcode op) {
  switch (op) {
    case Opcode::Load:
    case Opcode::Store:
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Min:
    case Opcode::Max:
      return true;
    default:
      return false;
  }
}

// Which packet-memory words can any execution of `program` overwrite, over
// up to `maxHops` hops? Same stack-pointer interval walk as the verifier,
// minus the diagnostics: Push dirties every word the sp interval can reach,
// mode-addressed write-backs dirty their resolved word, CSTORE dirties its
// cond word (old-value write-back). CEXEC early exits only *shrink* the set
// of executed instructions, so ignoring the halt (while still joining the
// sp intervals it can leave behind) stays a conservative superset.
std::vector<bool> mayWriteWords(const Program& program, std::size_t maxHops) {
  const std::size_t pmemWords = program.pmemWords;
  std::vector<bool> dirty(pmemWords, false);
  const auto wordCap = static_cast<std::int64_t>(pmemWords);
  const auto mark = [&](std::int64_t w) {
    if (w >= 0 && w < wordCap) dirty[static_cast<std::size_t>(w)] = true;
  };

  std::int64_t spLo = program.initialSp;
  std::int64_t spHi = program.initialSp;
  for (std::size_t hop = 0; hop < maxHops; ++hop) {
    std::int64_t lo = spLo;
    std::int64_t hi = spHi;
    std::int64_t exitLo = lo;
    std::int64_t exitHi = hi;
    bool anyDirtied = false;
    const auto markTracking = [&](std::int64_t w) {
      if (w >= 0 && w < wordCap && !dirty[static_cast<std::size_t>(w)]) {
        mark(w);
        anyDirtied = true;
      }
    };

    for (const auto& in : program.instructions) {
      switch (in.op) {
        case Opcode::Push:
          for (std::int64_t w = lo / 4; w <= hi / 4; ++w) markTracking(w);
          lo += 4;
          hi += 4;
          break;
        case Opcode::Pop:
          lo = std::max<std::int64_t>(0, lo - 4);
          hi = std::max<std::int64_t>(0, hi - 4);
          break;
        case Opcode::Cstore:
          markTracking(in.pmemOff);
          break;
        case Opcode::Cexec:
          exitLo = std::min(exitLo, lo);
          exitHi = std::max(exitHi, hi);
          break;
        default:
          if (isModeAddressed(in.op) && in.op != Opcode::Store) {
            const std::int64_t w =
                program.mode == AddressingMode::Hop
                    ? static_cast<std::int64_t>(hop) * program.perHopWords +
                          in.pmemOff
                    : in.pmemOff;
            markTracking(w);
          }
          break;
      }
    }

    lo = std::min(lo, exitLo);
    hi = std::max(hi, exitHi);
    if (program.mode != AddressingMode::Hop && lo == spLo && hi == spHi &&
        !anyDirtied) {
      break;  // stack-mode fixpoint: further hops repeat these transitions
    }
    spLo = lo;
    spHi = hi;
  }
  return dirty;
}

// Only CEXEC pins on the immutable per-switch identity register prove two
// effects land on *different switches*. Pins on mutable state (queue depth,
// epoch, ...) can be satisfied by the same switch at different times and
// excuse nothing.
bool guardsDisjoint(const Effect& a, const Effect& b) {
  for (const auto& ga : a.guards) {
    if (!ga.known || ga.addr != addr::SwitchId) continue;
    for (const auto& gb : b.guards) {
      if (!gb.known || gb.addr != addr::SwitchId) continue;
      if (ga.mask == gb.mask && (ga.value & ga.mask) != (gb.value & gb.mask)) {
        return true;
      }
    }
  }
  return false;
}

struct Accessor {
  std::size_t task = 0;    // index into the summaries span
  std::size_t effect = 0;  // index into that summary's effects
};

void addFinding(InterferenceReport& report, Conflict c) {
  if (c.severity == Severity::Error) {
    report.errors += 1;
  } else {
    report.warnings += 1;
  }
  report.findings.push_back(std::move(c));
}

}  // namespace

std::string_view effectKindName(EffectKind k) {
  switch (k) {
    case EffectKind::Read: return "read";
    case EffectKind::Write: return "write";
    case EffectKind::Rmw: return "cstore";
  }
  return "?";
}

std::string_view conflictKindName(ConflictKind k) {
  switch (k) {
    case ConflictKind::WriteWrite: return "write-write";
    case ConflictKind::LostUpdate: return "lost-update";
    case ConflictKind::ReadWrite: return "read-write";
    case ConflictKind::SharedRmw: return "shared-rmw";
    case ConflictKind::GuardDisjoint: return "guard-disjoint";
    case ConflictKind::LockPlainWrite: return "lock-plain-write";
    case ConflictKind::LockNoEpochCheck: return "lock-no-epoch-check";
    case ConflictKind::LockNoAcquire: return "lock-no-acquire";
  }
  return "?";
}

void summarizeProgram(const Program& program, EffectSummary& summary,
                      std::size_t maxHops) {
  if (summary.programCount == 0) summary.taskId = program.taskId;
  const std::size_t programIndex = summary.programCount;
  summary.programCount += 1;

  const std::vector<bool> dirty = mayWriteWords(program, maxHops);
  const std::size_t initialized =
      std::min<std::size_t>(program.initialPmem.size(), program.pmemWords);
  // A word provably holds its initial-image value at *every* execution iff
  // it is initialized and no path ever overwrites it.
  const auto stableWord = [&](std::size_t w, std::uint32_t& out) {
    if (w >= initialized || dirty[w]) return false;
    out = program.initialPmem[w];
    return true;
  };
  // First-execution value: the initial image, regardless of later
  // overwrites (used for the CSTORE comparand, whose word is always
  // dirtied by the old-value write-back).
  const auto initialWord = [&](std::size_t w, std::uint32_t& out) {
    if (w >= initialized) return false;
    out = program.initialPmem[w];
    return true;
  };

  bool readsEpoch = false;
  std::vector<EffectGuard> guards;
  for (std::size_t i = 0; i < program.instructions.size(); ++i) {
    const auto& in = program.instructions[i];
    if (in.op == Opcode::Nop) continue;
    if (in.addr == addr::SwitchBootEpoch) readsEpoch = true;

    Effect e;
    e.address = in.addr;
    e.instructionIndex = static_cast<int>(i);
    e.programIndex = programIndex;
    e.guards = guards;
    switch (in.op) {
      case Opcode::Store:
      case Opcode::Pop:
        e.kind = EffectKind::Write;
        break;
      case Opcode::Cstore: {
        e.kind = EffectKind::Rmw;
        e.condKnown = initialWord(in.pmemOff, e.cond);
        e.srcKnown = stableWord(in.pmemOff + 1u, e.src);
        break;
      }
      default:
        e.kind = EffectKind::Read;
        break;
    }
    summary.effects.push_back(std::move(e));

    if (in.op == Opcode::Cexec) {
      EffectGuard g;
      g.addr = in.addr;
      std::uint32_t mask = 0;
      std::uint32_t value = 0;
      g.known = stableWord(in.pmemOff, mask) &&
                stableWord(in.pmemOff + 1u, value);
      g.mask = mask;
      g.value = value;
      guards.push_back(g);
    }
  }
  summary.programReadsEpoch.push_back(readsEpoch);
}

EffectSummary summarize(const Program& program, std::string name,
                        std::size_t maxHops) {
  EffectSummary s;
  s.name = std::move(name);
  summarizeProgram(program, s, maxHops);
  return s;
}

InterferenceReport analyzeInterference(std::span<const EffectSummary> tasks,
                                       const InterferenceOptions& opts) {
  InterferenceReport report;

  // ------------------------------------------ pairwise conflict matrix
  // Only scratch words can be written by TPPs, so only they can race.
  std::map<std::uint16_t, std::vector<Accessor>> byAddr;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (std::size_t e = 0; e < tasks[t].effects.size(); ++e) {
      const auto& eff = tasks[t].effects[e];
      if (!MemoryMap::writable(eff.address)) continue;
      byAddr[eff.address].push_back({t, e});
    }
  }

  for (const auto& [address, accessors] : byAddr) {
    // Distinct task *ids* sharing the word (different summaries with the
    // same id are the same logical task coordinating with itself).
    std::vector<std::size_t> taskIdxs;
    for (const auto& a : accessors) {
      if (std::none_of(taskIdxs.begin(), taskIdxs.end(), [&](std::size_t t) {
            return tasks[t].taskId == tasks[a.task].taskId;
          })) {
        taskIdxs.push_back(a.task);
      }
    }
    if (taskIdxs.size() > 1) report.sharedWords += 1;

    for (std::size_t ii = 0; ii < taskIdxs.size(); ++ii) {
      for (std::size_t jj = ii + 1; jj < taskIdxs.size(); ++jj) {
        const std::size_t ia = taskIdxs[ii];
        const std::size_t ib = taskIdxs[jj];
        const auto& sa = tasks[ia];
        const auto& sb = tasks[ib];

        // Live (non-guard-disjoint) effect pairs between the two task ids,
        // aggregated over every summary carrying each id.
        bool sawPair = false;
        // [kindA][kindB] — true when some live pair has these kinds.
        bool live[3][3] = {};
        const Effect* witness[3][3][2] = {};
        for (const auto& aa : accessors) {
          if (tasks[aa.task].taskId != sa.taskId) continue;
          const auto& ea = tasks[aa.task].effects[aa.effect];
          for (const auto& bb : accessors) {
            if (tasks[bb.task].taskId != sb.taskId) continue;
            const auto& eb = tasks[bb.task].effects[bb.effect];
            sawPair = true;
            if (guardsDisjoint(ea, eb)) continue;
            const auto ka = static_cast<int>(ea.kind);
            const auto kb = static_cast<int>(eb.kind);
            if (!live[ka][kb]) {
              live[ka][kb] = true;
              witness[ka][kb][0] = &ea;
              witness[ka][kb][1] = &eb;
            }
          }
        }

        constexpr int kRead = static_cast<int>(EffectKind::Read);
        constexpr int kWrite = static_cast<int>(EffectKind::Write);
        constexpr int kRmw = static_cast<int>(EffectKind::Rmw);

        Conflict c;
        c.address = address;
        c.taskA = ia;
        c.taskB = ib;
        const std::string where = describeAddress(address);
        const auto instr = [](const Effect* e) {
          return " (instruction " + std::to_string(e->instructionIndex) +
                 " of program " + std::to_string(e->programIndex) + ")";
        };

        if (live[kWrite][kRmw] || live[kRmw][kWrite]) {
          // Orient so "A" is the plain writer.
          const bool aWrites = live[kWrite][kRmw];
          const Effect* w = aWrites ? witness[kWrite][kRmw][0]
                                    : witness[kRmw][kWrite][1];
          const Effect* r = aWrites ? witness[kWrite][kRmw][1]
                                    : witness[kRmw][kWrite][0];
          const auto& sw = aWrites ? sa : sb;
          const auto& sr = aWrites ? sb : sa;
          c.kind = ConflictKind::LostUpdate;
          c.severity = Severity::Error;
          c.message = "task " + taskRef(sw) + " plain-writes " + where +
                      instr(w) + " while task " + taskRef(sr) +
                      " updates it with CSTORE" + instr(r) +
                      "; the plain write defeats the compare-and-swap "
                      "(lost update)";
          addFinding(report, std::move(c));
        } else if (live[kWrite][kWrite]) {
          const Effect* ea = witness[kWrite][kWrite][0];
          const Effect* eb = witness[kWrite][kWrite][1];
          c.kind = ConflictKind::WriteWrite;
          c.severity = Severity::Error;
          c.message = "tasks " + taskRef(sa) + instr(ea) + " and " +
                      taskRef(sb) + instr(eb) + " both plain-write " + where +
                      "; the last writer silently wins";
          addFinding(report, std::move(c));
        } else if (live[kWrite][kRead] || live[kRead][kWrite]) {
          const bool aWrites = live[kWrite][kRead];
          const Effect* w = aWrites ? witness[kWrite][kRead][0]
                                    : witness[kRead][kWrite][1];
          const Effect* r = aWrites ? witness[kWrite][kRead][1]
                                    : witness[kRead][kWrite][0];
          const auto& sw = aWrites ? sa : sb;
          const auto& sr = aWrites ? sb : sa;
          c.kind = ConflictKind::ReadWrite;
          c.severity = Severity::Warning;
          c.message = "task " + taskRef(sw) + " plain-writes " + where +
                      instr(w) + " while task " + taskRef(sr) + " reads it" +
                      instr(r) +
                      " without coordination; the reader observes arbitrary "
                      "interleavings";
          addFinding(report, std::move(c));
        } else if (live[kRmw][kRmw] || live[kRmw][kRead] ||
                   live[kRead][kRmw]) {
          c.kind = ConflictKind::SharedRmw;
          c.severity = Severity::Warning;  // recorded, never counted
          c.message = "tasks " + taskRef(sa) + " and " + taskRef(sb) +
                      " share " + where +
                      " through atomic CSTORE updates (coordinated)";
          report.benign.push_back(std::move(c));
        } else if (sawPair) {
          c.kind = ConflictKind::GuardDisjoint;
          c.severity = Severity::Warning;
          c.message = "tasks " + taskRef(sa) + " and " + taskRef(sb) +
                      " touch " + where +
                      " but are CEXEC-pinned to different [Switch:SwitchID] "
                      "values; they never execute on the same switch";
          report.benign.push_back(std::move(c));
        }
      }
    }
  }

  // ------------------------------------------------- lock discipline
  // Applied per summary, including single-task deployments: the rules are
  // about *how* a lock word is used, not about who else is present.
  for (const auto& lock : opts.locks) {
    const std::string lockName =
        lock.name.empty() ? describeAddress(lock.lockAddress)
                          : "'" + lock.name + "' " +
                                describeAddress(lock.lockAddress);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const auto& s = tasks[t];
      bool anyLockRmw = false;
      for (const auto& e : s.effects) {
        if (e.address == lock.lockAddress && e.kind == EffectKind::Rmw) {
          anyLockRmw = true;
        }
      }
      for (const auto& e : s.effects) {
        if (e.address == lock.lockAddress) {
          if (e.kind == EffectKind::Write) {
            Conflict c;
            c.kind = ConflictKind::LockPlainWrite;
            c.severity = Severity::Error;
            c.address = lock.lockAddress;
            c.taskA = c.taskB = t;
            c.message = "task " + taskRef(s) + " plain-writes lock word " +
                        lockName + " (instruction " +
                        std::to_string(e.instructionIndex) + " of program " +
                        std::to_string(e.programIndex) +
                        "); lock words may only be mutated with CSTORE";
            addFinding(report, std::move(c));
          } else if (e.kind == EffectKind::Rmw &&
                     (e.programIndex >= s.programReadsEpoch.size() ||
                      !s.programReadsEpoch[e.programIndex])) {
            Conflict c;
            c.kind = ConflictKind::LockNoEpochCheck;
            c.severity = Severity::Error;
            c.address = lock.lockAddress;
            c.taskA = c.taskB = t;
            c.message =
                "task " + taskRef(s) + " CSTOREs lock word " + lockName +
                " (instruction " + std::to_string(e.instructionIndex) +
                " of program " + std::to_string(e.programIndex) +
                ") without reading [Switch:BootEpoch] in the same program; "
                "a reboot-wiped lock cannot be told apart from a held one";
            addFinding(report, std::move(c));
          }
          continue;
        }
        const bool isProtected =
            std::find(lock.protectedAddresses.begin(),
                      lock.protectedAddresses.end(),
                      e.address) != lock.protectedAddresses.end();
        if (isProtected && e.kind == EffectKind::Write && !anyLockRmw) {
          Conflict c;
          c.kind = ConflictKind::LockNoAcquire;
          c.severity = Severity::Error;
          c.address = e.address;
          c.taskA = c.taskB = t;
          c.message = "task " + taskRef(s) + " plain-writes " +
                      describeAddress(e.address) + ", protected by lock " +
                      lockName + " (instruction " +
                      std::to_string(e.instructionIndex) + " of program " +
                      std::to_string(e.programIndex) +
                      "), but never CSTOREs the lock — mutation without "
                      "holding the (id, epoch) proof";
          addFinding(report, std::move(c));
        }
      }
    }
  }

  return report;
}

std::string formatConflict(const Conflict& c) {
  std::string out(severityName(c.severity));
  out += ": [";
  out += conflictKindName(c.kind);
  out += "] ";
  out += c.message;
  return out;
}

}  // namespace tpp::core
