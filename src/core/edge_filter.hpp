// Edge security filter (paper §4): "the ingress switches at the network edge
// (the virtual switch, or the border routers) can strip TPPs injected by
// VMs, or those TPPs received from the Internet."
//
// Per-port policies:
//   Allow    — trusted port; TPPs pass untouched (the default)
//   Strip    — remove the TPP shim, forward the inner packet
//   Drop     — discard TPP packets entirely
//   ReadOnly — allow TPPs that only read switch state; strip those that
//              contain STORE/POP/CSTORE (write) instructions
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/packet.hpp"

namespace tpp::core {

enum class EdgePolicy : std::uint8_t { Allow, Strip, Drop, ReadOnly };

class EdgeFilter {
 public:
  enum class Action : std::uint8_t { Forwarded, Stripped, Dropped };

  void setPortPolicy(std::size_t port, EdgePolicy policy);
  EdgePolicy portPolicy(std::size_t port) const;

  // Applies the ingress policy. For non-TPP packets this is always
  // Forwarded. Malformed TPPs (bad lengths, undecodable instructions) are
  // dropped under any policy except Allow.
  Action apply(net::Packet& packet, std::size_t ingressPort) const;

  std::uint64_t stripped() const { return stripped_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::vector<EdgePolicy> policies_;
  mutable std::uint64_t stripped_ = 0;
  mutable std::uint64_t dropped_ = 0;
};

}  // namespace tpp::core
