// The unified memory-mapped statistics address space (paper §3.2.1, Table 2).
//
// All switch state a TPP can touch lives behind 16-bit virtual addresses,
// carved into namespaces by the high nibble. Mnemonics like
// "[Queue:QueueSize]" resolve to addresses at assembly time, and — per the
// paper's simplifying assumption — the same address means the same statistic
// on every switch.
//
//   0x1000..0x1fff  Switch:*          per-switch (global) statistics
//   0x2000..0x2fff  Link:*            per-port; resolved against the
//                                     packet's egress port, except Rx*
//                                     statistics which use the ingress port
//   0xa000..0xafff  PacketMetadata:*  per-packet pipeline registers
//   0xb000..0xbfff  Queue:*           per-queue, at the packet's egress
//                                     port and selected queue
//   0xd000..0xdfff  PortScratch       per-port SRAM words (e.g. the RCP
//                                     per-link rate register)
//   0xe000..0xffff  Sram              global scratch SRAM words
//
// Scratch regions are read-write and subject to per-task grants issued by
// the control-plane agent (src/core/agent.hpp); everything else is a
// statistic: readable by any TPP, writable by none.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tpp::core {

enum class StatNamespace : std::uint8_t {
  Switch,
  Port,
  PacketMeta,
  Queue,
  PortScratch,
  Sram,
  Unmapped,
};

enum class Access : std::uint8_t { ReadOnly, ReadWrite };

// Region bases.
inline constexpr std::uint16_t kSwitchBase = 0x1000;
inline constexpr std::uint16_t kPortBase = 0x2000;
inline constexpr std::uint16_t kPacketMetaBase = 0xa000;
inline constexpr std::uint16_t kQueueBase = 0xb000;
inline constexpr std::uint16_t kPortScratchBase = 0xd000;
inline constexpr std::uint16_t kSramBase = 0xe000;
inline constexpr std::size_t kPortScratchWords = 0x1000;
inline constexpr std::size_t kSramWords = 0x2000;

// Well-known statistic addresses. Kept as an X-macro-free constant list so
// the Table 2 bench can enumerate them.
namespace addr {
// Per-switch.
inline constexpr std::uint16_t SwitchId = 0x1000;
inline constexpr std::uint16_t L2TableVersion = 0x1001;
inline constexpr std::uint16_t L3TableVersion = 0x1002;
inline constexpr std::uint16_t TcamVersion = 0x1003;
inline constexpr std::uint16_t TimeLo = 0x1004;      // sim time ns, low 32
inline constexpr std::uint16_t TimeHi = 0x1005;      // sim time ns, high 32
inline constexpr std::uint16_t TotalRxPackets = 0x1006;
inline constexpr std::uint16_t TotalTxPackets = 0x1007;
inline constexpr std::uint16_t TotalDrops = 0x1008;
inline constexpr std::uint16_t PortCount = 0x1009;
// Robustness extension: increments every time the switch reboots (wiping
// scratch SRAM), so hosts can detect stale CSTORE/CEXEC state.
inline constexpr std::uint16_t SwitchBootEpoch = 0x100a;
// Observability extension (PR 4): simulator/TCPU telemetry a TPP can read
// back out of the dataplane it is diagnosing. Low 32 bits of each counter.
inline constexpr std::uint16_t SimEventsFired = 0x100b;
inline constexpr std::uint16_t TcpuInstrsRetired = 0x100c;
inline constexpr std::uint16_t TppsExecuted = 0x100d;
// Flight-recorder ring: records written, and records lost to ring wrap.
// Both read 0 when no tracer is armed on this switch's simulation.
inline constexpr std::uint16_t TraceRecords = 0x100e;
inline constexpr std::uint16_t TraceDrops = 0x100f;
// Per-port (egress unless noted).
inline constexpr std::uint16_t TxBytes = 0x2000;
inline constexpr std::uint16_t TxPackets = 0x2001;
inline constexpr std::uint16_t TxDrops = 0x2002;
inline constexpr std::uint16_t PortQueueBytes = 0x2003;  // all queues summed
inline constexpr std::uint16_t RxUtilization = 0x2004;   // ppm of capacity,
                                                         // at INGRESS port
inline constexpr std::uint16_t LinkCapacityMbps = 0x2005;
inline constexpr std::uint16_t RxBytes = 0x2006;         // at ingress port
inline constexpr std::uint16_t RxPackets = 0x2007;       // at ingress port
// Extension beyond the paper's list: offered load into the egress port
// (including drops), ppm of capacity — the y(t) an RCP controller wants.
inline constexpr std::uint16_t TxUtilization = 0x2008;
// §2.3 "Other possibilities": wireless access points annotating packets
// with rapidly-changing channel SNR. Per-port, centi-dB, set by the
// radio's PHY (simulated via Switch::setPortSnr).
inline constexpr std::uint16_t WirelessSnr = 0x2009;
// Drop-tail losses summed across the egress port's queues — lets a host
// distinguish "probe dropped here" from "probe lost upstream".
inline constexpr std::uint16_t PortDroppedBytes = 0x200a;
inline constexpr std::uint16_t PortDroppedPackets = 0x200b;
// Host-posted gauge (like Link:SNR): probes the attached end-host currently
// has outstanding toward this port, posted by telemetry wiring.
inline constexpr std::uint16_t ProbesInFlight = 0x200c;
// Per-packet metadata (paper: "0xa000 + {0x1,0x2}").
inline constexpr std::uint16_t InputPort = 0xa001;
inline constexpr std::uint16_t OutputPort = 0xa002;
inline constexpr std::uint16_t QueueId = 0xa003;
inline constexpr std::uint16_t MatchedEntryId = 0xa004;
inline constexpr std::uint16_t MatchedTable = 0xa005;
inline constexpr std::uint16_t AltRoutes = 0xa006;
// Monitoring extension (DESIGN.md §14): the pipeline surfaces the ECMP
// 5-tuple flow hash (low 32 bits), the packet's wire size, and — for
// TCP-over-UDP segments the parser recognizes — the TCP sequence number,
// advertised receive window, and the passive-RTT spin bit. Resident hook
// programs (count-min sketches, the Dapper-style diagnoser) read these to
// fold per-packet state into scratch SRAM.
inline constexpr std::uint16_t FlowHashLo = 0xa007;
inline constexpr std::uint16_t PacketBytes = 0xa008;
inline constexpr std::uint16_t TcpSeq = 0xa009;
inline constexpr std::uint16_t TcpWnd = 0xa00a;
inline constexpr std::uint16_t TcpSpin = 0xa00b;  // bit 0; 0xffffffff if not TCP
// Per-queue (egress port, selected queue).
inline constexpr std::uint16_t QueueBytes = 0xb000;
inline constexpr std::uint16_t QueuePackets = 0xb001;
inline constexpr std::uint16_t QueueEnqueuedBytes = 0xb002;
inline constexpr std::uint16_t QueueDroppedBytes = 0xb003;
inline constexpr std::uint16_t QueueDroppedPackets = 0xb004;
inline constexpr std::uint16_t QueueCapacityBytes = 0xb005;
// Conventional scratch assignments used by the bundled tasks.
inline constexpr std::uint16_t RcpRateRegister = kPortScratchBase + 0;
// RCP* controller mutual-exclusion word (0 = free, else owner id).
inline constexpr std::uint16_t RcpLockRegister = kPortScratchBase + 1;
}  // namespace addr

struct StatInfo {
  std::string name;  // "Namespace:Statistic" mnemonic
  std::uint16_t address = 0;
  Access access = Access::ReadOnly;
  std::string description;
};

class MemoryMap {
 public:
  // The default map: every statistic in the table above, plus the scratch
  // regions' conventional names.
  static const MemoryMap& standard();

  // Resolves "[Queue:QueueSize]"-style mnemonics (without brackets).
  std::optional<std::uint16_t> resolve(std::string_view name) const;
  // Reverse lookup for disassembly; nullptr if the address has no name.
  const StatInfo* lookup(std::uint16_t address) const;

  // Namespace classification is positional and needs no map.
  static StatNamespace namespaceOf(std::uint16_t address);
  // Scratch regions are writable; statistics and packet metadata are not
  // (the ASIC pipeline owns them).
  static bool writable(std::uint16_t address);

  void add(StatInfo info);
  const std::vector<StatInfo>& all() const { return stats_; }

 private:
  std::vector<StatInfo> stats_;
};

}  // namespace tpp::core
