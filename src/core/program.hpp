// Program: the assembled form of a TPP — instructions plus the initialized
// packet-memory image — and the builder/framing helpers end-hosts use.
//
// Packet-memory layout convention produced by ProgramBuilder and the
// assembler: immediates (CEXEC masks/values, CSTORE comparands, STORE
// sources) occupy the front of packet memory; the stack / hop-record region
// follows. The initial stack pointer therefore starts at the end of the
// immediate region.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/header.hpp"
#include "src/core/isa.hpp"
#include "src/net/ethernet.hpp"
#include "src/net/packet.hpp"

namespace tpp::core {

struct Program {
  std::vector<Instruction> instructions;
  // Initialized front of packet memory (immediates / values to STORE).
  std::vector<std::uint32_t> initialPmem;
  // Total packet-memory words to preallocate (>= initialPmem.size()).
  std::uint8_t pmemWords = 0;
  AddressingMode mode = AddressingMode::Stack;
  std::uint8_t perHopWords = 0;
  std::uint16_t initialSp = 0;  // byte offset into packet memory
  std::uint16_t taskId = 0;

  std::size_t wireBytes() const {
    return kTppHeaderSize + instructions.size() * kInstructionSize +
           static_cast<std::size_t>(pmemWords) * kWordSize;
  }

  bool operator==(const Program&) const = default;
};

class ProgramBuilder {
 public:
  ProgramBuilder& mode(AddressingMode m);
  ProgramBuilder& perHop(std::uint8_t words);
  ProgramBuilder& task(std::uint16_t id);
  // Reserves `words` of packet memory after the immediates for the stack /
  // hop records.
  ProgramBuilder& reserve(std::uint8_t words);

  // Appends an immediate word; returns its packet-memory word index.
  std::uint8_t imm(std::uint32_t value);

  ProgramBuilder& push(std::uint16_t addr);
  ProgramBuilder& pop(std::uint16_t addr);
  ProgramBuilder& load(std::uint16_t addr, std::uint8_t pmemOff);
  ProgramBuilder& store(std::uint16_t addr, std::uint8_t pmemOff);
  // Sugar: stages `value` as an immediate and stores it to switch[addr].
  ProgramBuilder& storeImm(std::uint16_t addr, std::uint32_t value);
  // cond at pmem[off]=cond, src at pmem[off+1]; `off` returned via outOff if
  // non-null so callers can locate the returned old value.
  ProgramBuilder& cstore(std::uint16_t addr, std::uint32_t cond,
                         std::uint32_t src, std::uint8_t* outOff = nullptr);
  ProgramBuilder& cexec(std::uint16_t addr, std::uint32_t mask,
                        std::uint32_t value);
  ProgramBuilder& add(std::uint16_t addr, std::uint8_t pmemOff);
  ProgramBuilder& sub(std::uint16_t addr, std::uint8_t pmemOff);
  ProgramBuilder& minOp(std::uint16_t addr, std::uint8_t pmemOff);
  ProgramBuilder& maxOp(std::uint16_t addr, std::uint8_t pmemOff);
  ProgramBuilder& raw(Instruction i);

  // Finalizes. Returns nullopt if the program exceeds encoding limits
  // (>255 instruction or pmem words, immediates overflowing the reserve).
  std::optional<Program> build() const;

  // Finalizes a program that is statically known to fit the encoding
  // limits (the bundled apps' builders); aborts instead of dereferencing
  // an empty optional when that assumption breaks.
  Program buildChecked() const;

 private:
  std::vector<Instruction> instructions_;
  std::vector<std::uint32_t> imms_;
  AddressingMode mode_ = AddressingMode::Stack;
  std::uint8_t perHop_ = 0;
  std::uint16_t task_ = 0;
  std::uint16_t reserved_ = 0;
};

// Builds a self-contained TPP frame:
//   Ethernet(etherType=0x88B5) | TPP header | instructions | pmem | payload.
// `innerEtherType` records what `payload` is (0 if none).
net::PacketPtr buildTppFrame(const net::MacAddress& dst,
                             const net::MacAddress& src,
                             const Program& program,
                             std::uint16_t innerEtherType = 0,
                             std::span<const std::uint8_t> payload = {});

// Serializes TPP header + instructions + pmem into `out` at `offset`. The
// caller owns the surrounding frame layout (callers that build probe frames
// in place to avoid intermediate buffers). `out` must have at least
// program.wireBytes() bytes past `offset`.
void writeTpp(std::span<std::uint8_t> out, std::size_t offset,
              const Program& program, std::uint16_t innerEtherType = 0);

// Inserts `program` as a shim into an existing Ethernet frame (the trusted-
// entity pattern of §2.3: stamp every packet of a host). The original
// ethertype moves into the TPP header.
void insertTppShim(net::Packet& packet, const Program& program);

// Removes a TPP shim, restoring the original frame. Returns false if the
// packet carries no valid TPP.
bool stripTppShim(net::Packet& packet);

// Parsed results of a fully-executed TPP, for end-host consumption.
struct ExecutedTpp {
  TppHeader header;
  std::vector<Instruction> instructions;
  std::vector<std::uint32_t> pmem;
};
std::optional<ExecutedTpp> parseExecuted(const net::Packet& packet,
                                         std::size_t tppOffset = 14);

// Allocation-free variant: parses the TPP at the front of `bytes` into
// `out`, reusing out's vector capacity. Returns false (out unspecified) on
// malformed input. The echo hot path parses into a scratch ExecutedTpp so
// steady-state probe traffic never touches the heap.
bool parseExecutedInto(std::span<const std::uint8_t> bytes, ExecutedTpp& out);

}  // namespace tpp::core
