#include "src/monitor/ground_truth.hpp"

#include "src/asic/parser.hpp"

namespace tpp::monitor {

void GroundTruthCounter::onEnqueue(net::Packet& packet,
                                   std::size_t egressPort) {
  const auto parsed = asic::parsePacket(packet);
  if (parsed && parsed->ip && !parsed->tppOffset) {
    auto& counts = flows_[asic::flowHashOf(*parsed)];
    ++counts.packets;
    counts.bytes += packet.size();
    ++eligible_;
    eligibleBytes_ += packet.size();
  }
  if (next_ != nullptr) next_->onEnqueue(packet, egressPort);
}

}  // namespace tpp::monitor
