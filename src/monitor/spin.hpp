// Passive RTT estimation from the TCP spin bit (DESIGN.md §14; the
// QUIC latency spin bit, RFC 9000 §17.4, applied to the simulator's
// TCP-over-UDP wire format).
//
// The active opener sends the inverse of the last spin bit it received and
// the passive side echoes — so within one direction of a flow, the bit is
// a square wave with period one RTT. A resident hook watches one
// direction, CEXEC-gated to fire only when the observed bit differs from
// the stored one, and records the time between flips. Per-flow slots of
// kSlotWords = 4 scratch words, direct-mapped by flow hash:
//   [0] lastBit     last observed spin bit (0/1)
//   [1] lastFlipLo  Switch:TimeLo at the last flip
//   [2] lastRttNs   most recent flip-to-flip interval, ns
//   [3] flips       flips observed (estimates valid once >= kMinFlips:
//                   the first "flip" measures against time zero)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "src/core/hook.hpp"
#include "src/core/program.hpp"

namespace tpp::monitor {

struct SpinConfig {
  // Default matches apps::kTaskSpinRtt.
  std::uint16_t taskId = 10;
  std::uint32_t slots = 32;
};

class SpinRttMonitor {
 public:
  static constexpr std::uint16_t kSlotWords = 4;
  static constexpr std::uint16_t kLastBitWord = 0;
  static constexpr std::uint16_t kLastFlipWord = 1;
  static constexpr std::uint16_t kLastRttWord = 2;
  static constexpr std::uint16_t kFlipsWord = 3;
  static constexpr std::uint32_t kMinFlips = 2;

  explicit SpinRttMonitor(SpinConfig config = {}) : cfg_(config) {}
  const SpinConfig& config() const { return cfg_; }
  std::uint16_t words() const {
    return static_cast<std::uint16_t>(cfg_.slots * kSlotWords);
  }

  static std::uint64_t slotSalt();

  // The flip-detecting hook (tcpOnly), bound to the grant base address.
  core::HookProgram hook(std::uint16_t baseAddress) const;

  std::uint16_t slotAddress(std::uint16_t baseAddress,
                            std::uint64_t flowHash) const;

  struct RttSample {
    std::uint32_t rttNs = 0;
    std::uint32_t flips = 0;
  };
  // The flow's latest RTT estimate via `readWord` (absolute address ->
  // value); nullopt until kMinFlips flips have landed (the first interval
  // measures against an unclaimed slot's time zero).
  using ReadWordFn = std::function<std::optional<std::uint32_t>(std::uint16_t)>;
  std::optional<RttSample> sample(const ReadWordFn& readWord,
                                  std::uint16_t baseAddress,
                                  std::uint64_t flowHash) const;

 private:
  SpinConfig cfg_;
};

}  // namespace tpp::monitor
