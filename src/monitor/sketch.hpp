// Count-min sketch maintained in scratch SRAM by a resident TPP hook
// (DESIGN.md §14; Cormode & Muthukrishnan 2005).
//
// Layout inside the task's SRAM grant (all words, base = grant base):
//   [0]                    epoch register (CSTORE-bumped on reset)
//   [1]                    heavy-hitter threshold (host-set, packets)
//   [2 + r*width + c]      counter, row r column c
//
// The per-packet update hook performs, for each of the d rows, a
// LOAD/ADD/CSTORE read-modify-write of the counter the packet's flow hash
// selects — every counter access is CSTORE-mediated, so two sketch tasks
// sharing a row region classify as benign shared-rmw under the
// interference analyzer, while any plain STORE aliasing a counter is
// rejected as a lost update.
//
// Standard guarantees (pairwise-independent row hashes, here the salted
// FNV mix of core::hookColumn): with w = ceil(e/eps) columns and
// d = ceil(ln 1/delta) rows, estimate(f) >= true(f) always (no
// underestimation), and estimate(f) <= true(f) + eps*N with probability
// at least 1 - delta, N = total eligible packets folded in.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "src/core/hook.hpp"
#include "src/core/program.hpp"

namespace tpp::monitor {

struct SketchConfig {
  // Default matches apps::kTaskSketch.
  std::uint16_t taskId = 8;
  std::uint32_t rows = 4;    // d: error probability delta = e^-d ~ 1.8%
  std::uint32_t width = 64;  // w: overestimate bound eps = e/w ~ 4.2% of N
};

class CountMinSketch {
 public:
  explicit CountMinSketch(SketchConfig config = {}) : cfg_(config) {}

  const SketchConfig& config() const { return cfg_; }
  // Scratch words the sketch needs granted: epoch + threshold + counters.
  std::uint16_t words() const {
    return static_cast<std::uint16_t>(2 + cfg_.rows * cfg_.width);
  }
  double epsilon() const;  // e / width
  double delta() const;    // e^-rows

  static constexpr std::uint16_t kEpochWord = 0;
  static constexpr std::uint16_t kThresholdWord = 1;
  static constexpr std::uint16_t kCountersWord = 2;

  // Salt of row r's hash-family member.
  static std::uint64_t rowSalt(std::uint32_t row);

  // The per-packet update hook, bound to the grant's base address.
  core::HookProgram updateHook(std::uint16_t baseAddress) const;

  // Address of the row-r counter this flow hashes to.
  std::uint16_t counterAddress(std::uint16_t baseAddress, std::uint32_t row,
                               std::uint64_t flowHash) const;

  // Probe program for the host-side reader: CEXEC-pinned to `switchId`,
  // then pushes the epoch register and the d counters of `flowHash`.
  // Stack layout on return: [epoch, row0, row1, ...].
  core::Program readProbeProgram(std::uint16_t baseAddress,
                                 std::uint32_t switchId,
                                 std::uint64_t flowHash) const;

  // Point estimate from raw counter values via `readWord` (absolute switch
  // address -> value): min over rows, scaled back up by the sampling
  // stride. Returns nullopt if any counter read fails.
  using ReadWordFn = std::function<std::optional<std::uint32_t>(std::uint16_t)>;
  std::optional<std::uint64_t> estimate(const ReadWordFn& readWord,
                                        std::uint16_t baseAddress,
                                        std::uint64_t flowHash,
                                        std::uint32_t stride = 1) const;

  // Probe programs for the CSTORE-based epoch reset protocol: bump the
  // epoch register (expected -> expected+1), and zero one counter whose
  // current value the host just observed (retry on CSTORE mismatch).
  core::Program epochBumpProgram(std::uint16_t baseAddress,
                                 std::uint32_t switchId,
                                 std::uint32_t expectedEpoch) const;
  core::Program counterResetProgram(std::uint16_t counterAddress,
                                    std::uint32_t switchId,
                                    std::uint32_t observed) const;

 private:
  SketchConfig cfg_;
};

}  // namespace tpp::monitor
