// Ground-truth flow counter for sketch accuracy harnesses: an egress
// interceptor that applies EXACTLY the resident-hook eligibility rule
// (IPv4, not a TPP carrier) and keeps exact per-flow packet/byte counts
// keyed by the pipeline's own flow hash. Sketch estimates are compared
// against these to assert the count-min (eps, delta) bound; the interceptor
// fires on the same enqueue path as the hooks, so at stride 1 the two see
// the identical packet stream.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/asic/switch.hpp"

namespace tpp::monitor {

class GroundTruthCounter : public asic::EgressInterceptor {
 public:
  struct FlowCounts {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  // Chains to `next` (e.g. the RCP baseline's interceptor) after counting.
  explicit GroundTruthCounter(asic::EgressInterceptor* next = nullptr)
      : next_(next) {}

  void onEnqueue(net::Packet& packet, std::size_t egressPort) override;

  const std::unordered_map<std::uint64_t, FlowCounts>& flows() const {
    return flows_;
  }
  // Hook-eligible packets seen — equals Switch::hookExecutions() per
  // installed always-on hook at stride 1.
  std::uint64_t eligiblePackets() const { return eligible_; }
  std::uint64_t eligibleBytes() const { return eligibleBytes_; }

  void reset() {
    flows_.clear();
    eligible_ = 0;
    eligibleBytes_ = 0;
  }

 private:
  asic::EgressInterceptor* next_ = nullptr;
  std::unordered_map<std::uint64_t, FlowCounts> flows_;
  std::uint64_t eligible_ = 0;
  std::uint64_t eligibleBytes_ = 0;
};

}  // namespace tpp::monitor
