#include "src/monitor/spin.hpp"

#include "src/core/memory_map.hpp"

namespace tpp::monitor {

using core::Instruction;
using core::Opcode;

std::uint64_t SpinRttMonitor::slotSalt() { return 0x5b1213175ull; }

std::uint16_t SpinRttMonitor::slotAddress(std::uint16_t baseAddress,
                                          std::uint64_t flowHash) const {
  const std::uint32_t slot = core::hookColumn(flowHash, slotSalt(),
                                              cfg_.slots);
  return static_cast<std::uint16_t>(baseAddress + slot * kSlotWords);
}

core::HookProgram SpinRttMonitor::hook(std::uint16_t baseAddress) const {
  // CEXEC gates the whole program on a flip: continue only when the stored
  // lastBit equals the INVERSE of this packet's spin bit (i.e. the bit
  // changed). Then: lastRtt = now - lastFlip, flips += 1, lastFlip = now,
  // lastBit = spin — each a LOAD/CSTORE read-modify-write.
  core::ProgramBuilder b;
  b.task(cfg_.taskId);
  core::HookProgram hook;
  hook.name = "spin-rtt";
  hook.tcpOnly = true;

  const std::uint8_t gateMask = b.imm(1);
  const std::uint8_t gateVal = b.imm(0);  // patched to 1 - spin
  const std::uint8_t rttCond = b.imm(0);
  const std::uint8_t rttSrc = b.imm(0);
  const std::uint8_t flipsCond = b.imm(0);
  b.imm(1);  // flips src: 1 + old
  const std::uint8_t flipCond = b.imm(0);
  const std::uint8_t flipSrc = b.imm(0);
  const std::uint8_t bitCond = b.imm(0);
  const std::uint8_t bitSrc = b.imm(0);  // patched to spin

  const auto word = [baseAddress](std::uint16_t w) {
    return static_cast<std::uint16_t>(baseAddress + w);
  };
  const std::uint16_t bit = word(kLastBitWord);
  const std::uint16_t flip = word(kLastFlipWord);
  const std::uint16_t rtt = word(kLastRttWord);
  const std::uint16_t flips = word(kFlipsWord);

  b.raw(Instruction{Opcode::Cexec, bit, gateMask});       //  0
  b.load(rtt, rttCond);                                   //  1
  b.add(core::addr::TimeLo, rttSrc);                      //  2
  b.sub(flip, rttSrc);                                    //  3: now - lastFlip
  b.raw(Instruction{Opcode::Cstore, rtt, rttCond});       //  4
  b.load(flips, flipsCond);                               //  5
  b.add(flips, static_cast<std::uint8_t>(flipsCond + 1)); //  6
  b.raw(Instruction{Opcode::Cstore, flips, flipsCond});   //  7
  b.load(flip, flipCond);                                 //  8
  b.add(core::addr::TimeLo, flipSrc);                     //  9
  b.raw(Instruction{Opcode::Cstore, flip, flipCond});     // 10
  b.load(bit, bitCond);                                   // 11
  b.raw(Instruction{Opcode::Cstore, bit, bitCond});       // 12

  hook.program = b.buildChecked();
  core::HookProgram::AddrPatch patch;
  patch.baseAddress = baseAddress;
  patch.slots = cfg_.slots;
  patch.slotStride = kSlotWords;
  patch.salt = slotSalt();
  patch.targets = {{0, kLastBitWord},  {1, kLastRttWord},
                   {3, kLastFlipWord}, {4, kLastRttWord},
                   {5, kFlipsWord},    {6, kFlipsWord},
                   {7, kFlipsWord},    {8, kLastFlipWord},
                   {10, kLastFlipWord}, {11, kLastBitWord},
                   {12, kLastBitWord}};
  hook.addrPatches.push_back(std::move(patch));
  hook.pmemPatches.push_back(
      {gateVal, core::HookProgram::PmemSource::SpinInverse, 0});
  hook.pmemPatches.push_back(
      {bitSrc, core::HookProgram::PmemSource::SpinBit, 0});
  return hook;
}

std::optional<SpinRttMonitor::RttSample> SpinRttMonitor::sample(
    const ReadWordFn& readWord, std::uint16_t baseAddress,
    std::uint64_t flowHash) const {
  const std::uint16_t base = slotAddress(baseAddress, flowHash);
  const auto flips = readWord(static_cast<std::uint16_t>(base + kFlipsWord));
  const auto rtt = readWord(static_cast<std::uint16_t>(base + kLastRttWord));
  if (!flips || !rtt || *flips < kMinFlips) return std::nullopt;
  return RttSample{*rtt, *flips};
}

}  // namespace tpp::monitor
