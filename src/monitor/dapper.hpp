// Dapper-style per-flow TCP diagnosis in scratch SRAM (DESIGN.md §14;
// after Ghasemi, Benson & Rexford, "Dapper: Data Plane Performance
// Diagnosis of TCP", SOSR 2017).
//
// A resident hook pair maintains a small direct-mapped table of per-flow
// records keyed by a salted flow signature. Each record is
// kSlotWords = 8 scratch words:
//   [0] sig       claimed-flow signature (0 = slot free)
//   [1] pkts      segments folded in
//   [2] bytes     wire bytes folded in
//   [3] lastLo    Switch:TimeLo at the previous segment
//   [4] maxGap    max inter-arrival gap, ns
//   [5] sumGap    sum of inter-arrival gaps, ns (mean = sumGap/(pkts-1))
//   [6] minWnd    min advertised receive window seen, bytes
//   [7] reserved
//
// The init hook claims a free slot with CEXEC(sig==0) + CSTORE; the update
// hook is CEXEC-gated on the signature matching, so hash-colliding flows
// skip rather than corrupt another flow's record. The host classifies a
// flow from one probe round-trip over its record: receiver-limited (the
// advertised window pinched), network-limited (a retransmission-shaped
// burst gap dominates), or sender-limited (mean gap far above line rate —
// the application simply isn't offering data).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

#include "src/core/hook.hpp"
#include "src/core/program.hpp"

namespace tpp::monitor {

struct DapperConfig {
  // Default matches apps::kTaskDapper.
  std::uint16_t taskId = 9;
  std::uint32_t slots = 32;
  // Classification knobs (host side).
  std::uint64_t minPackets = 8;          // fewer -> Unknown
  std::uint32_t rcvWndFloorBytes = 4096; // minWnd at/below -> ReceiverLimited
  std::uint64_t gapFloorNs = 1'000'000;  // maxGap below this is never "burst"
  double burstFactor = 4.0;              // maxGap >= factor*meanGap -> Network
  std::uint64_t pacedGapNs = 10'000'000; // meanGap at/above -> SenderLimited
};

class FlowDiagnoser {
 public:
  static constexpr std::uint16_t kSlotWords = 8;
  static constexpr std::uint16_t kSigWord = 0;
  static constexpr std::uint16_t kPktsWord = 1;
  static constexpr std::uint16_t kBytesWord = 2;
  static constexpr std::uint16_t kLastLoWord = 3;
  static constexpr std::uint16_t kMaxGapWord = 4;
  static constexpr std::uint16_t kSumGapWord = 5;
  static constexpr std::uint16_t kMinWndWord = 6;

  explicit FlowDiagnoser(DapperConfig config = {}) : cfg_(config) {}
  const DapperConfig& config() const { return cfg_; }
  std::uint16_t words() const {
    return static_cast<std::uint16_t>(cfg_.slots * kSlotWords);
  }

  static std::uint64_t slotSalt();  // slot-index hash salt
  static std::uint64_t sigSalt();   // flow-signature salt

  // Claims a free slot for an unseen flow (tcpOnly).
  core::HookProgram initHook(std::uint16_t baseAddress) const;
  // Folds one TCP segment into the flow's claimed record (tcpOnly).
  core::HookProgram updateHook(std::uint16_t baseAddress) const;

  std::uint16_t slotAddress(std::uint16_t baseAddress,
                            std::uint64_t flowHash) const;

  struct FlowRecord {
    std::uint32_t pkts = 0;
    std::uint32_t bytes = 0;
    std::uint32_t maxGapNs = 0;
    std::uint32_t sumGapNs = 0;
    std::uint32_t minWndBytes = 0;
  };
  // Reads the flow's record via `readWord` (absolute address -> value).
  // nullopt if a read fails or the slot holds a different flow's signature
  // (hash collision or never claimed).
  using ReadWordFn = std::function<std::optional<std::uint32_t>(std::uint16_t)>;
  std::optional<FlowRecord> record(const ReadWordFn& readWord,
                                   std::uint16_t baseAddress,
                                   std::uint64_t flowHash) const;

  enum class Verdict : std::uint8_t {
    Unknown,          // too few packets observed
    ReceiverLimited,  // advertised window pinched the sender
    NetworkLimited,   // a loss/timeout-shaped gap dominates arrivals
    SenderLimited,    // arrivals paced far below line rate
    Healthy,
  };
  Verdict classify(const FlowRecord& record) const;

 private:
  DapperConfig cfg_;
};

std::string_view verdictName(FlowDiagnoser::Verdict verdict);

}  // namespace tpp::monitor
