#include "src/monitor/sketch.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/memory_map.hpp"

namespace tpp::monitor {

using core::Instruction;
using core::Opcode;

double CountMinSketch::epsilon() const {
  return std::exp(1.0) / static_cast<double>(cfg_.width);
}

double CountMinSketch::delta() const {
  return std::exp(-static_cast<double>(cfg_.rows));
}

std::uint64_t CountMinSketch::rowSalt(std::uint32_t row) {
  // Distinct nonzero salts pick distinct members of the hash family.
  return 0x9e3779b97f4a7c15ull + row;
}

std::uint16_t CountMinSketch::counterAddress(std::uint16_t baseAddress,
                                             std::uint32_t row,
                                             std::uint64_t flowHash) const {
  const std::uint32_t col = core::hookColumn(flowHash, rowSalt(row),
                                             cfg_.width);
  return static_cast<std::uint16_t>(baseAddress + kCountersWord +
                                    row * cfg_.width + col);
}

core::HookProgram CountMinSketch::updateHook(
    std::uint16_t baseAddress) const {
  core::ProgramBuilder b;
  b.task(cfg_.taskId);
  core::HookProgram hook;
  hook.name = "sketch-update";
  for (std::uint32_t r = 0; r < cfg_.rows; ++r) {
    // Row base = column-0 counter; the runtime patch replaces it with the
    // packet's hashed column. The increment lands in the CSTORE src word:
    // pmem[src] starts at 1, ADD folds in the old counter, and the CSTORE
    // commits old+1 only if the counter still equals the LOADed old value.
    const std::uint16_t rowBase = static_cast<std::uint16_t>(
        baseAddress + kCountersWord + r * cfg_.width);
    const std::uint8_t cond = b.imm(0);
    b.imm(1);  // src = cond + 1 (CSTORE operand adjacency)
    const std::uint16_t i0 = static_cast<std::uint16_t>(3 * r);
    b.load(rowBase, cond);
    b.add(rowBase, static_cast<std::uint8_t>(cond + 1));
    b.raw(Instruction{Opcode::Cstore, rowBase, cond});
    core::HookProgram::AddrPatch patch;
    patch.baseAddress = rowBase;
    patch.slots = cfg_.width;
    patch.slotStride = 1;
    patch.salt = rowSalt(r);
    patch.targets = {{i0, 0},
                     {static_cast<std::uint16_t>(i0 + 1), 0},
                     {static_cast<std::uint16_t>(i0 + 2), 0}};
    hook.addrPatches.push_back(std::move(patch));
  }
  hook.program = b.buildChecked();
  return hook;
}

core::Program CountMinSketch::readProbeProgram(std::uint16_t baseAddress,
                                               std::uint32_t switchId,
                                               std::uint64_t flowHash) const {
  core::ProgramBuilder b;
  b.task(cfg_.taskId);
  b.reserve(static_cast<std::uint8_t>(cfg_.rows + 1));
  b.cexec(core::addr::SwitchId, 0xffffffffu, switchId);
  b.push(static_cast<std::uint16_t>(baseAddress + kEpochWord));
  for (std::uint32_t r = 0; r < cfg_.rows; ++r) {
    b.push(counterAddress(baseAddress, r, flowHash));
  }
  return b.buildChecked();
}

std::optional<std::uint64_t> CountMinSketch::estimate(
    const ReadWordFn& readWord, std::uint16_t baseAddress,
    std::uint64_t flowHash, std::uint32_t stride) const {
  std::uint64_t best = 0;
  for (std::uint32_t r = 0; r < cfg_.rows; ++r) {
    const auto v = readWord(counterAddress(baseAddress, r, flowHash));
    if (!v) return std::nullopt;
    if (r == 0 || *v < best) best = *v;
  }
  return best * std::max<std::uint32_t>(1, stride);
}

core::Program CountMinSketch::epochBumpProgram(
    std::uint16_t baseAddress, std::uint32_t switchId,
    std::uint32_t expectedEpoch) const {
  core::ProgramBuilder b;
  b.task(cfg_.taskId);
  b.cexec(core::addr::SwitchId, 0xffffffffu, switchId);
  b.cstore(static_cast<std::uint16_t>(baseAddress + kEpochWord),
           expectedEpoch, expectedEpoch + 1);
  return b.buildChecked();
}

core::Program CountMinSketch::counterResetProgram(
    std::uint16_t counterAddress, std::uint32_t switchId,
    std::uint32_t observed) const {
  core::ProgramBuilder b;
  b.task(cfg_.taskId);
  b.cexec(core::addr::SwitchId, 0xffffffffu, switchId);
  b.cstore(counterAddress, observed, 0);
  return b.buildChecked();
}

}  // namespace tpp::monitor
