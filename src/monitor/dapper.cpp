#include "src/monitor/dapper.hpp"

#include <algorithm>

#include "src/core/memory_map.hpp"

namespace tpp::monitor {

using core::Instruction;
using core::Opcode;

std::uint64_t FlowDiagnoser::slotSalt() { return 0xd1a6705e51075ull; }
std::uint64_t FlowDiagnoser::sigSalt() { return 0xd1a6705e5816ull; }

std::uint16_t FlowDiagnoser::slotAddress(std::uint16_t baseAddress,
                                         std::uint64_t flowHash) const {
  const std::uint32_t slot = core::hookColumn(flowHash, slotSalt(),
                                              cfg_.slots);
  return static_cast<std::uint16_t>(baseAddress + slot * kSlotWords);
}

core::HookProgram FlowDiagnoser::initHook(std::uint16_t baseAddress) const {
  // Claim protocol, gated so it only runs on a free slot:
  //   CEXEC  sig == 0          (occupied -> whole program skips)
  //   CSTORE sig: 0 -> SIG     (flow signature, patched per packet)
  //   CSTORE lastLo: 0 -> now  (first inter-arrival baseline)
  //   CSTORE minWnd: 0 -> ~0   (MIN identity; 0 would stick forever)
  core::ProgramBuilder b;
  b.task(cfg_.taskId);
  core::HookProgram hook;
  hook.name = "dapper-init";
  hook.tcpOnly = true;

  b.imm(0xffffffffu);                       // cexec mask
  b.imm(0);                                 // cexec value: sig == 0
  const std::uint8_t claimCond = b.imm(0);
  const std::uint8_t claimSrc = b.imm(1);   // placeholder, patched to SIG
  const std::uint8_t lastCond = b.imm(0);
  const std::uint8_t lastSrc = b.imm(0);    // ADD TimeLo -> now
  const std::uint8_t wndCond = b.imm(0);
  b.imm(0xffffffffu);                       // minWnd init value

  const std::uint16_t sig = static_cast<std::uint16_t>(baseAddress + kSigWord);
  const std::uint16_t last =
      static_cast<std::uint16_t>(baseAddress + kLastLoWord);
  const std::uint16_t wnd =
      static_cast<std::uint16_t>(baseAddress + kMinWndWord);
  b.raw(Instruction{Opcode::Cexec, sig, 0});          // 0: mask/value imms 0,1
  b.raw(Instruction{Opcode::Cstore, sig, claimCond}); // 1
  b.add(core::addr::TimeLo, lastSrc);                 // 2
  b.raw(Instruction{Opcode::Cstore, last, lastCond}); // 3
  b.raw(Instruction{Opcode::Cstore, wnd, wndCond});   // 4

  hook.program = b.buildChecked();
  core::HookProgram::AddrPatch patch;
  patch.baseAddress = baseAddress;
  patch.slots = cfg_.slots;
  patch.slotStride = kSlotWords;
  patch.salt = slotSalt();
  patch.targets = {{0, kSigWord},
                   {1, kSigWord},
                   {3, kLastLoWord},
                   {4, kMinWndWord}};
  hook.addrPatches.push_back(std::move(patch));
  hook.pmemPatches.push_back(
      {claimSrc, core::HookProgram::PmemSource::FlowSig, sigSalt()});
  return hook;
}

core::HookProgram FlowDiagnoser::updateHook(
    std::uint16_t baseAddress) const {
  // Gated on the slot holding this flow's signature; every record mutation
  // is a LOAD/compute/CSTORE read-modify-write, so the interference
  // analyzer sees only Rmw effects on the record words. lastLo is updated
  // last — the gap computations subtract the previous arrival time.
  core::ProgramBuilder b;
  b.task(cfg_.taskId);
  core::HookProgram hook;
  hook.name = "dapper-update";
  hook.tcpOnly = true;

  const std::uint8_t gateMask = b.imm(0xffffffffu);
  const std::uint8_t gateSig = b.imm(0);  // patched to SIG
  const std::uint8_t pktsCond = b.imm(0);
  b.imm(1);  // pkts src: 1 + old
  const std::uint8_t bytesCond = b.imm(0);
  const std::uint8_t bytesSrc = b.imm(0);
  const std::uint8_t maxCond = b.imm(0);
  const std::uint8_t maxSrc = b.imm(0);
  const std::uint8_t sumCond = b.imm(0);
  const std::uint8_t sumSrc = b.imm(0);
  const std::uint8_t wndCond = b.imm(0);
  const std::uint8_t wndSrc = b.imm(0);
  const std::uint8_t lastCond = b.imm(0);
  const std::uint8_t lastSrc = b.imm(0);

  const auto word = [baseAddress](std::uint16_t w) {
    return static_cast<std::uint16_t>(baseAddress + w);
  };
  const std::uint16_t sig = word(kSigWord);
  const std::uint16_t pkts = word(kPktsWord);
  const std::uint16_t bytes = word(kBytesWord);
  const std::uint16_t last = word(kLastLoWord);
  const std::uint16_t maxGap = word(kMaxGapWord);
  const std::uint16_t sumGap = word(kSumGapWord);
  const std::uint16_t minWnd = word(kMinWndWord);

  b.raw(Instruction{Opcode::Cexec, sig, gateMask});       //  0
  b.load(pkts, pktsCond);                                 //  1
  b.add(pkts, static_cast<std::uint8_t>(pktsCond + 1));   //  2
  b.raw(Instruction{Opcode::Cstore, pkts, pktsCond});     //  3
  b.load(bytes, bytesCond);                               //  4
  b.add(bytes, bytesSrc);                                 //  5
  b.add(core::addr::PacketBytes, bytesSrc);               //  6
  b.raw(Instruction{Opcode::Cstore, bytes, bytesCond});   //  7
  b.load(maxGap, maxCond);                                //  8
  b.add(core::addr::TimeLo, maxSrc);                      //  9
  b.sub(last, maxSrc);                                    // 10: gap = now-last
  b.maxOp(maxGap, maxSrc);                                // 11
  b.raw(Instruction{Opcode::Cstore, maxGap, maxCond});    // 12
  b.load(sumGap, sumCond);                                // 13
  b.add(core::addr::TimeLo, sumSrc);                      // 14
  b.sub(last, sumSrc);                                    // 15
  b.add(sumGap, sumSrc);                                  // 16
  b.raw(Instruction{Opcode::Cstore, sumGap, sumCond});    // 17
  b.load(minWnd, wndCond);                                // 18
  b.add(core::addr::TcpWnd, wndSrc);                      // 19
  b.minOp(minWnd, wndSrc);                                // 20
  b.raw(Instruction{Opcode::Cstore, minWnd, wndCond});    // 21
  b.load(last, lastCond);                                 // 22
  b.add(core::addr::TimeLo, lastSrc);                     // 23
  b.raw(Instruction{Opcode::Cstore, last, lastCond});     // 24

  hook.program = b.buildChecked();
  core::HookProgram::AddrPatch patch;
  patch.baseAddress = baseAddress;
  patch.slots = cfg_.slots;
  patch.slotStride = kSlotWords;
  patch.salt = slotSalt();
  patch.targets = {{0, kSigWord},    {1, kPktsWord},   {2, kPktsWord},
                   {3, kPktsWord},   {4, kBytesWord},  {5, kBytesWord},
                   {7, kBytesWord},  {8, kMaxGapWord}, {10, kLastLoWord},
                   {11, kMaxGapWord}, {12, kMaxGapWord}, {13, kSumGapWord},
                   {15, kLastLoWord}, {16, kSumGapWord}, {17, kSumGapWord},
                   {18, kMinWndWord}, {20, kMinWndWord}, {21, kMinWndWord},
                   {22, kLastLoWord}, {24, kLastLoWord}};
  hook.addrPatches.push_back(std::move(patch));
  hook.pmemPatches.push_back(
      {gateSig, core::HookProgram::PmemSource::FlowSig, sigSalt()});
  return hook;
}

std::optional<FlowDiagnoser::FlowRecord> FlowDiagnoser::record(
    const ReadWordFn& readWord, std::uint16_t baseAddress,
    std::uint64_t flowHash) const {
  const std::uint16_t base = slotAddress(baseAddress, flowHash);
  const auto sig = readWord(static_cast<std::uint16_t>(base + kSigWord));
  if (!sig || *sig != core::hookFlowSig(flowHash, sigSalt())) {
    return std::nullopt;  // never claimed, or lost the slot to a collision
  }
  FlowRecord rec;
  const auto read = [&](std::uint16_t w) {
    return readWord(static_cast<std::uint16_t>(base + w));
  };
  const auto pkts = read(kPktsWord);
  const auto bytes = read(kBytesWord);
  const auto maxGap = read(kMaxGapWord);
  const auto sumGap = read(kSumGapWord);
  const auto minWnd = read(kMinWndWord);
  if (!pkts || !bytes || !maxGap || !sumGap || !minWnd) return std::nullopt;
  rec.pkts = *pkts;
  rec.bytes = *bytes;
  rec.maxGapNs = *maxGap;
  rec.sumGapNs = *sumGap;
  rec.minWndBytes = *minWnd;
  return rec;
}

FlowDiagnoser::Verdict FlowDiagnoser::classify(
    const FlowRecord& record) const {
  if (record.pkts < cfg_.minPackets) return Verdict::Unknown;
  if (record.minWndBytes <= cfg_.rcvWndFloorBytes) {
    return Verdict::ReceiverLimited;
  }
  const double meanGap =
      record.pkts > 1
          ? static_cast<double>(record.sumGapNs) / (record.pkts - 1)
          : 0.0;
  const double burstBar = std::max(static_cast<double>(cfg_.gapFloorNs),
                                   cfg_.burstFactor * meanGap);
  if (static_cast<double>(record.maxGapNs) >= burstBar) {
    return Verdict::NetworkLimited;
  }
  if (meanGap >= static_cast<double>(cfg_.pacedGapNs)) {
    return Verdict::SenderLimited;
  }
  return Verdict::Healthy;
}

std::string_view verdictName(FlowDiagnoser::Verdict verdict) {
  switch (verdict) {
    case FlowDiagnoser::Verdict::Unknown: return "unknown";
    case FlowDiagnoser::Verdict::ReceiverLimited: return "receiver-limited";
    case FlowDiagnoser::Verdict::NetworkLimited: return "network-limited";
    case FlowDiagnoser::Verdict::SenderLimited: return "sender-limited";
    case FlowDiagnoser::Verdict::Healthy: return "healthy";
  }
  return "unknown";
}

}  // namespace tpp::monitor
