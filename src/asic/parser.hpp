// Header parser stage (paper Fig 3): extracts the fields the lookup tables
// and the TCPU need. For TPP packets, forwarding fields come from the
// encapsulated payload — a TPP shim is transparent to routing ("TPPs are
// forwarded just like other packets").
#pragma once

#include <cstdint>
#include <optional>

#include "src/core/header.hpp"
#include "src/net/ethernet.hpp"
#include "src/net/ipv4.hpp"
#include "src/net/packet.hpp"

namespace tpp::asic {

struct ParsedPacket {
  net::EthernetHeader eth;
  // Byte offset of the TPP header if the frame carries one.
  std::optional<std::size_t> tppOffset;
  // The ethertype that determines forwarding: the outer one, or the TPP
  // shim's innerEtherType.
  std::uint16_t effectiveEtherType = 0;
  std::optional<net::Ipv4Header> ip;
  std::size_t ipOffset = 0;  // valid when ip is set
  std::optional<net::UdpHeader> udp;
  std::size_t l4PayloadOffset = 0;  // valid when udp is set
};

// Returns nullopt only for frames too short to carry an Ethernet header or
// whose TPP shim is malformed (lengths overrun the buffer); a parse failure
// means the pipeline drops the packet.
std::optional<ParsedPacket> parsePacket(net::Packet& packet);

}  // namespace tpp::asic
