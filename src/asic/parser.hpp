// Header parser stage (paper Fig 3): extracts the fields the lookup tables
// and the TCPU need. For TPP packets, forwarding fields come from the
// encapsulated payload — a TPP shim is transparent to routing ("TPPs are
// forwarded just like other packets").
#pragma once

#include <cstdint>
#include <optional>

#include "src/core/header.hpp"
#include "src/net/ethernet.hpp"
#include "src/net/ipv4.hpp"
#include "src/net/packet.hpp"

namespace tpp::asic {

struct ParsedPacket {
  net::EthernetHeader eth;
  // Byte offset of the TPP header if the frame carries one.
  std::optional<std::size_t> tppOffset;
  // The ethertype that determines forwarding: the outer one, or the TPP
  // shim's innerEtherType.
  std::uint16_t effectiveEtherType = 0;
  std::optional<net::Ipv4Header> ip;
  std::size_t ipOffset = 0;  // valid when ip is set
  std::optional<net::UdpHeader> udp;
  std::size_t l4PayloadOffset = 0;  // valid when udp is set

  // TCP-over-UDP segment recognition (src/host/tcp.hpp wire format): set
  // when the UDP payload parses as a TcpSegment header whose declared
  // payload length exactly fills the datagram. The switch does not verify
  // the segment checksum — recognition feeds monitoring hooks, not
  // forwarding, and a corrupted segment at worst perturbs a sketch counter.
  struct TcpEncap {
    std::uint32_t seq = 0;
    std::uint32_t wnd = 0;
    std::uint8_t spin = 0;   // passive-RTT spin bit (header byte 1, bit 0)
    std::uint8_t flags = 0;  // SYN/ACK/FIN bits
    std::uint16_t payloadLen = 0;
  };
  std::optional<TcpEncap> tcp;
};

// Returns nullopt only for frames too short to carry an Ethernet header or
// whose TPP shim is malformed (lengths overrun the buffer); a parse failure
// means the pipeline drops the packet.
std::optional<ParsedPacket> parsePacket(net::Packet& packet);

// The pipeline's ECMP flow hash for a parsed packet: 5-tuple for UDP,
// fewer mixed fields otherwise (equals ecmpFlowHash for UDP/IPv4). Shared
// by the forwarding lookup, resident hooks, and host-side sketch readers
// so all three agree on where a flow lands.
std::uint64_t flowHashOf(const ParsedPacket& parsed);

}  // namespace tpp::asic
