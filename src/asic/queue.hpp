// Egress queueing: per-port banks of drop-tail FIFO queues backed by the
// shared packet buffer (paper Fig 3's "egress queues and scheduling").
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/asic/stats.hpp"
#include "src/net/packet.hpp"

namespace tpp::asic {

class EgressQueue {
 public:
  explicit EgressQueue(std::uint64_t capacityBytes)
      : capacityBytes_(capacityBytes) {}
  // deque<unique_ptr> falsely advertises copyability to std::vector; be
  // explicit so vector growth uses moves.
  EgressQueue(EgressQueue&&) = default;
  EgressQueue& operator=(EgressQueue&&) = default;
  EgressQueue(const EgressQueue&) = delete;
  EgressQueue& operator=(const EgressQueue&) = delete;

  // Drop-tail admission: false (and drop accounting) when the packet would
  // overflow the buffer.
  bool enqueue(net::PacketPtr packet);
  net::PacketPtr dequeue();

  bool empty() const { return fifo_.empty(); }
  std::uint64_t bytes() const { return stats_.bytes; }
  std::uint64_t packets() const { return stats_.packets; }
  std::uint64_t capacityBytes() const { return capacityBytes_; }
  const QueueStats& stats() const { return stats_; }

 private:
  std::uint64_t capacityBytes_;
  std::deque<net::PacketPtr> fifo_;
  QueueStats stats_;
};

// One port's queue bank plus transmit state for the scheduler.
class PortQueueBank {
 public:
  PortQueueBank(std::size_t queues, std::uint64_t capacityPerQueue);

  EgressQueue& queue(std::size_t i) { return queues_[i]; }
  const EgressQueue& queue(std::size_t i) const { return queues_[i]; }
  std::size_t queueCount() const { return queues_.size(); }

  std::uint64_t totalBytes() const;
  // Drop-tail losses summed across the bank (Link:Dropped* statistics).
  std::uint64_t totalDroppedBytes() const;
  std::uint64_t totalDroppedPackets() const;
  bool allEmpty() const;
  // Picks the next queue to serve: round-robin across non-empty queues, or
  // — when strictPriority — always the lowest-numbered non-empty queue
  // (queue 0 is highest priority). nullopt when all queues are empty.
  std::optional<std::size_t> nextNonEmpty(bool strictPriority = false);

  bool transmitting = false;

 private:
  std::vector<EgressQueue> queues_;
  std::size_t rrCursor_ = 0;
};

}  // namespace tpp::asic
