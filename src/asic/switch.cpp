#include "src/asic/switch.hpp"

#include <algorithm>
#include <cassert>

#include "src/core/memory_map.hpp"
#include "src/net/byte_io.hpp"
#include "src/sim/log.hpp"

namespace tpp::asic {

namespace addr = core::addr;
using core::Fault;
using core::MemoryMap;
using core::StatNamespace;

// The TCPU's window onto one switch while it processes one packet: resolves
// the unified 16-bit virtual address space (§3.2.1) against the statistics
// banks, the per-packet metadata registers, and scratch SRAM. Statistic
// registers are 32 bits wide; 64-bit counters expose their low word (the
// control plane reads full counters out of band).
class Switch::UnifiedAddressSpace final : public tcpu::AddressSpace {
 public:
  UnifiedAddressSpace(Switch& sw, const net::PacketMeta& meta)
      : sw_(sw), meta_(meta) {}

  ReadResult read(std::uint16_t address, std::uint16_t taskId) override {
    const auto ns = MemoryMap::namespaceOf(address);
    const auto now = sw_.sim_.now();
    const std::size_t in = meta_.inputPort;
    const std::size_t out = meta_.outputPort;
    auto u32 = [](std::uint64_t v) { return static_cast<std::uint32_t>(v); };

    switch (ns) {
      case StatNamespace::Switch:
        switch (address) {
          case addr::SwitchId: return ReadResult::ok(sw_.config_.switchId);
          case addr::L2TableVersion: return ReadResult::ok(sw_.l2_.version());
          case addr::L3TableVersion: return ReadResult::ok(sw_.l3_.version());
          case addr::TcamVersion: return ReadResult::ok(sw_.tcam_.version());
          case addr::TimeLo:
            return ReadResult::ok(u32(static_cast<std::uint64_t>(now.nanos())));
          case addr::TimeHi:
            return ReadResult::ok(
                u32(static_cast<std::uint64_t>(now.nanos()) >> 32));
          case addr::TotalRxPackets:
            return ReadResult::ok(u32(sw_.stats_.totalRxPackets));
          case addr::TotalTxPackets:
            return ReadResult::ok(u32(sw_.stats_.totalTxPackets));
          case addr::TotalDrops:
            return ReadResult::ok(u32(sw_.stats_.totalDrops));
          case addr::PortCount:
            return ReadResult::ok(u32(sw_.config_.ports));
          case addr::SwitchBootEpoch:
            return ReadResult::ok(sw_.bootEpoch_);
          case addr::SimEventsFired:
            return ReadResult::ok(u32(sw_.sim_.eventsExecuted()));
          case addr::TcpuInstrsRetired:
            return ReadResult::ok(u32(sw_.tcpu_.instructionsExecuted()));
          case addr::TppsExecuted:
            return ReadResult::ok(u32(sw_.stats_.tppsExecuted));
          case addr::TraceRecords:
            return ReadResult::ok(
                sw_.tracer_ ? u32(sw_.tracer_->written()) : 0u);
          case addr::TraceDrops:
            return ReadResult::ok(
                sw_.tracer_ ? u32(sw_.tracer_->overwritten()) : 0u);
          default: return ReadResult::fail(Fault::UnmappedAddress);
        }

      case StatNamespace::Port: {
        switch (address) {
          case addr::TxBytes:
            return ReadResult::ok(u32(sw_.ports_[out].txBytes));
          case addr::TxPackets:
            return ReadResult::ok(u32(sw_.ports_[out].txPackets));
          case addr::TxDrops:
            return ReadResult::ok(u32(sw_.ports_[out].txDrops));
          case addr::PortQueueBytes:
            return ReadResult::ok(u32(sw_.banks_[out].totalBytes()));
          case addr::RxUtilization: {
            const auto cap = sw_.portCapacityBps(in);
            if (cap == 0) return ReadResult::ok(0);
            const double ppm =
                sw_.ports_[in].rxRate.rateBps(now) / static_cast<double>(cap) *
                1e6;
            return ReadResult::ok(u32(static_cast<std::uint64_t>(ppm)));
          }
          case addr::TxUtilization: {
            const auto cap = sw_.portCapacityBps(out);
            if (cap == 0) return ReadResult::ok(0);
            const double ppm = sw_.ports_[out].offeredRate.rateBps(now) /
                               static_cast<double>(cap) * 1e6;
            return ReadResult::ok(u32(static_cast<std::uint64_t>(ppm)));
          }
          case addr::LinkCapacityMbps:
            return ReadResult::ok(u32(sw_.portCapacityBps(out) / 1'000'000));
          case addr::WirelessSnr:
            return ReadResult::ok(sw_.snrCentiDb_[out]);
          case addr::RxBytes:
            return ReadResult::ok(u32(sw_.ports_[in].rxBytes));
          case addr::RxPackets:
            return ReadResult::ok(u32(sw_.ports_[in].rxPackets));
          case addr::PortDroppedBytes:
            return ReadResult::ok(u32(sw_.banks_[out].totalDroppedBytes()));
          case addr::PortDroppedPackets:
            return ReadResult::ok(u32(sw_.banks_[out].totalDroppedPackets()));
          case addr::ProbesInFlight:
            // Ingress-resolved: the gauge describes the host feeding this
            // port, so a probe reads its own sender's outstanding count at
            // the first hop.
            return ReadResult::ok(sw_.probesInFlight_[in]);
          default: return ReadResult::fail(Fault::UnmappedAddress);
        }
      }

      case StatNamespace::PacketMeta:
        switch (address) {
          case addr::InputPort: return ReadResult::ok(meta_.inputPort);
          case addr::OutputPort: return ReadResult::ok(meta_.outputPort);
          case addr::QueueId: return ReadResult::ok(meta_.queueId);
          case addr::MatchedEntryId:
            return ReadResult::ok(meta_.matchedEntryId);
          case addr::MatchedTable: return ReadResult::ok(meta_.matchedTable);
          case addr::AltRoutes: return ReadResult::ok(meta_.altRouteCount);
          case addr::FlowHashLo: return ReadResult::ok(meta_.flowHashLo);
          case addr::PacketBytes: return ReadResult::ok(meta_.packetBytes);
          case addr::TcpSeq: return ReadResult::ok(meta_.tcpSeq);
          case addr::TcpWnd: return ReadResult::ok(meta_.tcpWnd);
          case addr::TcpSpin: return ReadResult::ok(meta_.tcpSpin);
          default: return ReadResult::fail(Fault::UnmappedAddress);
        }

      case StatNamespace::Queue: {
        const auto& q = sw_.banks_[out].queue(meta_.queueId);
        switch (address) {
          case addr::QueueBytes: return ReadResult::ok(u32(q.bytes()));
          case addr::QueuePackets: return ReadResult::ok(u32(q.packets()));
          case addr::QueueEnqueuedBytes:
            return ReadResult::ok(u32(q.stats().enqueuedBytes));
          case addr::QueueDroppedBytes:
            return ReadResult::ok(u32(q.stats().droppedBytes));
          case addr::QueueDroppedPackets:
            return ReadResult::ok(u32(q.stats().droppedPackets));
          case addr::QueueCapacityBytes:
            return ReadResult::ok(u32(q.capacityBytes()));
          default: return ReadResult::fail(Fault::UnmappedAddress);
        }
      }

      case StatNamespace::PortScratch: {
        if (!sw_.sram_.allocator.allows(taskId, address)) {
          return ReadResult::fail(Fault::GrantViolation);
        }
        const std::size_t word = address - core::kPortScratchBase;
        if (sw_.oracle_ != nullptr) {
          sw_.oracle_->record(ns, out, word, SramRaceOracle::Access::Read);
        }
        return ReadResult::ok(sw_.sram_.perPort[out][word]);
      }

      case StatNamespace::Sram: {
        if (!sw_.sram_.allocator.allows(taskId, address)) {
          return ReadResult::fail(Fault::GrantViolation);
        }
        const std::size_t word = address - core::kSramBase;
        if (sw_.oracle_ != nullptr) {
          sw_.oracle_->record(ns, 0, word, SramRaceOracle::Access::Read);
        }
        return ReadResult::ok(sw_.sram_.global[word]);
      }

      case StatNamespace::Unmapped:
        return ReadResult::fail(Fault::UnmappedAddress);
    }
    return ReadResult::fail(Fault::UnmappedAddress);
  }

  Fault write(std::uint16_t address, std::uint32_t value,
              std::uint16_t taskId) override {
    const auto ns = MemoryMap::namespaceOf(address);
    switch (ns) {
      case StatNamespace::PortScratch: {
        if (!sw_.sram_.allocator.allows(taskId, address)) {
          return Fault::GrantViolation;
        }
        const std::size_t word = address - core::kPortScratchBase;
        if (sw_.oracle_ != nullptr) {
          sw_.oracle_->record(ns, meta_.outputPort, word,
                              SramRaceOracle::Access::Write);
        }
        sw_.sram_.perPort[meta_.outputPort][word] = value;
        return Fault::None;
      }
      case StatNamespace::Sram: {
        if (!sw_.sram_.allocator.allows(taskId, address)) {
          return Fault::GrantViolation;
        }
        const std::size_t word = address - core::kSramBase;
        if (sw_.oracle_ != nullptr) {
          sw_.oracle_->record(ns, 0, word, SramRaceOracle::Access::Write);
        }
        sw_.sram_.global[word] = value;
        return Fault::None;
      }
      case StatNamespace::Unmapped:
        return Fault::UnmappedAddress;
      default:
        // Statistics and packet metadata are pipeline-owned.
        return Fault::ReadOnlyViolation;
    }
  }

 private:
  Switch& sw_;
  const net::PacketMeta& meta_;
};

Switch::Switch(sim::Simulator& simulator, std::string name,
               SwitchConfig config)
    : net::Node(std::move(name)), sim_(simulator), config_(config) {
  ports_.reserve(config_.ports);
  banks_.reserve(config_.ports);
  sram_.perPort.reserve(config_.ports);
  for (std::size_t i = 0; i < config_.ports; ++i) {
    ports_.emplace_back(config_.utilizationWindow);
    banks_.emplace_back(config_.queuesPerPort, config_.bufferPerQueueBytes);
    sram_.perPort.emplace_back(core::kPortScratchWords, 0u);
  }
  sram_.global.assign(core::kSramWords, 0u);
  snrCentiDb_.assign(config_.ports, 0u);
  probesInFlight_.assign(config_.ports, 0u);
}

void Switch::setTracer(sim::Tracer* tracer) {
  tracer_ = tracer;
  actor_ = tracer != nullptr ? tracer->actor(name()) : 0;
  tcpu_.setTracer(tracer, actor_, tracer != nullptr ? &sim_ : nullptr);
}

Switch::~Switch() = default;

void Switch::receive(net::PacketPtr packet, std::size_t port) {
  assert(port < config_.ports);
  const std::size_t size = packet->size();
  ports_[port].rxBytes += size;
  ++ports_[port].rxPackets;
  ports_[port].rxRate.add(sim_.now(), size);
  ++stats_.totalRxPackets;

  switch (edgeFilter_.apply(*packet, port)) {
    case core::EdgeFilter::Action::Dropped:
      drop(*packet, port);
      return;
    case core::EdgeFilter::Action::Stripped:
    case core::EdgeFilter::Action::Forwarded:
      break;
  }

  if (config_.pipelineDelay > sim::Time::zero()) {
    sim_.schedule(config_.pipelineDelay,
                  [this, p = std::move(packet), port]() mutable {
                    forwardAndEnqueue(std::move(p), port);
                  });
  } else {
    forwardAndEnqueue(std::move(packet), port);
  }
}

std::optional<MatchResult> Switch::lookup(const ParsedPacket& parsed,
                                          std::uint64_t flowHash) {
  Tcam::PacketFields fields;
  fields.dstMac = parsed.eth.dst;
  fields.etherType = parsed.effectiveEtherType;
  if (parsed.ip) {
    fields.ipSrc = parsed.ip->src;
    fields.ipDst = parsed.ip->dst;
    fields.ipProto = parsed.ip->protocol;
  }
  if (auto r = tcam_.match(fields)) {
    r->table = 3;
    return r;
  }
  if (parsed.ip) {
    if (auto r = l3_.match(parsed.ip->dst, flowHash)) {
      r->table = 2;
      return r;
    }
  }
  if (auto r = l2_.match(parsed.eth.dst)) {
    r->table = 1;
    return r;
  }
  return std::nullopt;
}

void Switch::forwardAndEnqueue(net::PacketPtr packet, std::size_t inPort) {
  auto parsed = parsePacket(*packet);
  if (!parsed) {
    drop(*packet, inPort);
    return;
  }

  packet->resetMeta();
  auto& meta = packet->meta();
  meta.inputPort = static_cast<std::uint32_t>(inPort);

  const std::uint64_t flowHash = flowHashOf(*parsed);
  const auto result = lookup(*parsed, flowHash);
  if (!result) {
    ++stats_.forwardingMisses;
    drop(*packet, inPort);
    return;
  }
  if (result->drop || result->outPort >= config_.ports) {
    drop(*packet, inPort);
    return;
  }

  // Routed (L3-matched) packets get standard TTL treatment: drop expiring
  // packets — the loop guard — and decrement in place otherwise.
  if (result->table == 2 && parsed->ip) {
    if (parsed->ip->ttl <= 1) {
      ++stats_.ttlExpired;
      drop(*packet, inPort);
      return;
    }
    auto ip = packet->span().subspan(parsed->ipOffset);
    ip[8] = static_cast<std::uint8_t>(parsed->ip->ttl - 1);
    net::putBe16(ip, 10, 0);
    net::putBe16(ip, 10,
                 net::internetChecksum(ip.first(net::kIpv4HeaderSize)));
  }

  meta.outputPort = static_cast<std::uint32_t>(result->outPort);
  meta.queueId = result->queueId.value_or(0);
  meta.matchedEntryId = result->entryId;
  meta.matchedTable = result->table;
  meta.altRouteCount = result->altRoutes;
  meta.flowHashLo = static_cast<std::uint32_t>(flowHash);
  meta.packetBytes = static_cast<std::uint32_t>(packet->size());
  if (parsed->tcp) {
    meta.tcpSeq = parsed->tcp->seq;
    meta.tcpWnd = parsed->tcp->wnd;
    meta.tcpSpin = parsed->tcp->spin;
  }

  // TCPU: execute the TPP after lookup, before enqueue (Fig 3).
  if (parsed->tppOffset && config_.tcpuEnabled) {
    auto view = core::TppView::at(*packet, *parsed->tppOffset);
    if (view) {
      UnifiedAddressSpace mem(*this, meta);
      if (oracle_ != nullptr) oracle_->beginExecution(view->taskId());
      const auto report = tcpu_.execute(*view, mem);
      ++stats_.tppsExecuted;
      if (tracer_ != nullptr) {
        tracer_->record(sim_.now(), sim::TraceKind::TcpuExecute, actor_,
                        view->taskId(), view->hopNumber(),
                        static_cast<std::uint32_t>(report.executed),
                        static_cast<std::uint32_t>(view->faultCode()),
                        static_cast<std::uint32_t>(report.cycles));
      }
    }
  }

  // Resident monitoring hooks (DESIGN.md §14): run for eligible forwarded
  // traffic — IPv4 and not a TPP carrier (a TPP already had its say above;
  // counting carriers would skew byte sketches toward instrument traffic).
  if (!hooks_.empty() && parsed->ip && !parsed->tppOffset) {
    const std::uint32_t stride = std::max<std::uint32_t>(1, config_.hookStride);
    if (hookTick_++ % stride == 0) runHooks(*parsed, meta, flowHash);
  }

  const std::size_t out = result->outPort;
  ports_[out].offeredRate.add(sim_.now(), packet->size());

  // ECN AQM: mark CE when the chosen egress queue is past the threshold.
  if (config_.ecnThresholdBytes > 0 && parsed->ip &&
      banks_[out].queue(meta.queueId).bytes() >= config_.ecnThresholdBytes) {
    net::Ipv4Header::markCe(packet->span().subspan(parsed->ipOffset));
  }

  if (interceptor_ != nullptr) interceptor_->onEnqueue(*packet, out);
  enqueue(std::move(packet), out, meta.queueId);
}

void Switch::installHook(core::HookProgram hook) {
  for (const auto& patch : hook.addrPatches) {
    for (const auto& target : patch.targets) {
      assert(target.instrIndex < hook.program.instructions.size());
      (void)target;
    }
  }
  for (const auto& patch : hook.pmemPatches) {
    assert(patch.wordIndex < hook.program.initialPmem.size());
    (void)patch;
  }
  InstalledHook installed;
  installed.instrs = hook.program.instructions;
  installed.pmem.reserve(hook.program.pmemWords);
  installed.hook = std::move(hook);
  hooks_.push_back(std::move(installed));
}

void Switch::runHooks(const ParsedPacket& parsed, net::PacketMeta& meta,
                      std::uint64_t flowHash) {
  for (auto& h : hooks_) {
    if (h.hook.tcpOnly && !parsed.tcp) continue;
    const std::uint32_t spin = parsed.tcp ? parsed.tcp->spin : 0;
    const core::Program& tmpl = h.hook.program;

    // Specialize the decoded working copy for this packet's flow.
    for (const auto& patch : h.hook.addrPatches) {
      const std::uint32_t col =
          core::hookColumn(flowHash, patch.salt, patch.slots);
      const std::uint16_t base = static_cast<std::uint16_t>(
          patch.baseAddress + col * patch.slotStride);
      for (const auto& target : patch.targets) {
        h.instrs[target.instrIndex].addr =
            static_cast<std::uint16_t>(base + target.wordOffset);
      }
    }
    h.pmem.assign(tmpl.pmemWords, 0u);
    std::copy(tmpl.initialPmem.begin(), tmpl.initialPmem.end(),
              h.pmem.begin());
    for (const auto& patch : h.hook.pmemPatches) {
      std::uint32_t value = 0;
      switch (patch.source) {
        case core::HookProgram::PmemSource::FlowSig:
          value = core::hookFlowSig(flowHash, patch.salt);
          break;
        case core::HookProgram::PmemSource::SpinBit:
          value = spin & 1;
          break;
        case core::HookProgram::PmemSource::SpinInverse:
          value = 1u - (spin & 1);
          break;
      }
      h.pmem[patch.wordIndex] = value;
    }

    UnifiedAddressSpace mem(*this, meta);
    if (oracle_ != nullptr) oracle_->beginExecution(tmpl.taskId);
    const auto report = tcpu_.executeResident(h.instrs, h.pmem, tmpl.taskId,
                                              mem, tmpl.initialSp);
    ++hookExecutions_;
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceKind::TcpuExecute, actor_,
                      tmpl.taskId, /*hopNumber=*/0,
                      static_cast<std::uint32_t>(report.executed),
                      static_cast<std::uint32_t>(report.fault),
                      static_cast<std::uint32_t>(report.cycles));
    }
  }
}

void Switch::enqueue(net::PacketPtr packet, std::size_t outPort,
                     std::size_t queueId) {
  auto& bank = banks_[outPort];
  auto& port = ports_[outPort];
  const std::size_t size = packet->size();
  port.updateIntegral(sim_.now());
  if (!bank.queue(queueId).enqueue(std::move(packet))) {
    ++port.txDrops;
    ++stats_.totalDrops;
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceKind::PacketDrop, actor_, 0,
                      static_cast<std::uint32_t>(outPort),
                      static_cast<std::uint32_t>(queueId),
                      static_cast<std::uint32_t>(size));
    }
    return;
  }
  port.queuedBytesNow += size;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceKind::PacketEnqueue, actor_, 0,
                    static_cast<std::uint32_t>(outPort),
                    static_cast<std::uint32_t>(queueId),
                    static_cast<std::uint32_t>(size),
                    static_cast<std::uint32_t>(bank.queue(queueId).bytes()));
  }
  if (!bank.transmitting) startTransmit(outPort);
}

void Switch::startTransmit(std::size_t port) {
  auto& bank = banks_[port];
  const auto next = bank.nextNonEmpty(config_.scheduler ==
                                      SchedulerPolicy::StrictPriority);
  if (!next) {
    bank.transmitting = false;
    return;
  }
  net::PacketPtr packet = bank.queue(*next).dequeue();
  auto& stats = ports_[port];
  stats.updateIntegral(sim_.now());
  stats.queuedBytesNow -= packet->size();
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceKind::PacketDequeue, actor_, 0,
                    static_cast<std::uint32_t>(port),
                    static_cast<std::uint32_t>(*next),
                    static_cast<std::uint32_t>(packet->size()));
  }

  net::Channel* channel =
      port < portCount() ? txChannel(port) : nullptr;
  if (channel == nullptr) {  // unwired port: blackhole
    drop(*packet, port);
    bank.transmitting = false;
    return;
  }

  stats.txBytes += packet->size();
  ++stats.txPackets;
  ++stats_.totalTxPackets;
  const sim::Time done = channel->transmit(std::move(packet));
  bank.transmitting = true;
  sim_.scheduleAt(done, [this, port] {
    banks_[port].transmitting = false;
    startTransmit(port);
  });
}

void Switch::drop(const net::Packet& packet, std::size_t port) {
  ++stats_.totalDrops;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceKind::PacketDrop, actor_, 0,
                    static_cast<std::uint32_t>(port), 0,
                    static_cast<std::uint32_t>(packet.size()));
  }
}

void Switch::reboot() {
  std::fill(sram_.global.begin(), sram_.global.end(), 0u);
  for (auto& bank : sram_.perPort) std::fill(bank.begin(), bank.end(), 0u);
  sram_.allocator.clear();
  ++bootEpoch_;
  ++stats_.reboots;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceKind::SwitchReboot, actor_, 0,
                    bootEpoch_);
  }
}

std::optional<std::uint32_t> Switch::scratchRead(std::uint16_t address,
                                                 std::size_t port) const {
  const auto ns = MemoryMap::namespaceOf(address);
  if (ns == StatNamespace::Sram) {
    return sram_.global[address - core::kSramBase];
  }
  if (ns == StatNamespace::PortScratch && port < config_.ports) {
    return sram_.perPort[port][address - core::kPortScratchBase];
  }
  return std::nullopt;
}

bool Switch::scratchWrite(std::uint16_t address, std::uint32_t value,
                          std::size_t port) {
  const auto ns = MemoryMap::namespaceOf(address);
  if (ns == StatNamespace::Sram) {
    sram_.global[address - core::kSramBase] = value;
    return true;
  }
  if (ns == StatNamespace::PortScratch && port < config_.ports) {
    sram_.perPort[port][address - core::kPortScratchBase] = value;
    return true;
  }
  return false;
}

double Switch::offeredLoadBps(std::size_t port) {
  return ports_[port].offeredRate.rateBps(sim_.now());
}

std::uint64_t Switch::portOfferedBytes(std::size_t port) const {
  std::uint64_t total = 0;
  const auto& bank = banks_[port];
  for (std::size_t q = 0; q < bank.queueCount(); ++q) {
    total += bank.queue(q).stats().enqueuedBytes +
             bank.queue(q).stats().droppedBytes;
  }
  return total;
}

std::uint64_t Switch::portCapacityBps(std::size_t port) const {
  if (port >= portCount()) return 0;
  const net::Channel* ch = txChannel(port);
  return ch ? ch->rateBps() : 0;
}

}  // namespace tpp::asic
