#include "src/asic/queue.hpp"

namespace tpp::asic {

bool EgressQueue::enqueue(net::PacketPtr packet) {
  const std::uint64_t size = packet->size();
  if (stats_.bytes + size > capacityBytes_) {
    stats_.droppedBytes += size;
    ++stats_.droppedPackets;
    return false;
  }
  stats_.bytes += size;
  ++stats_.packets;
  stats_.enqueuedBytes += size;
  ++stats_.enqueuedPackets;
  fifo_.push_back(std::move(packet));
  return true;
}

net::PacketPtr EgressQueue::dequeue() {
  if (fifo_.empty()) return nullptr;
  net::PacketPtr p = std::move(fifo_.front());
  fifo_.pop_front();
  stats_.bytes -= p->size();
  --stats_.packets;
  return p;
}

PortQueueBank::PortQueueBank(std::size_t queues,
                             std::uint64_t capacityPerQueue) {
  queues_.reserve(queues);
  for (std::size_t i = 0; i < queues; ++i) queues_.emplace_back(capacityPerQueue);
}

std::uint64_t PortQueueBank::totalBytes() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q.bytes();
  return total;
}

std::uint64_t PortQueueBank::totalDroppedBytes() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q.stats().droppedBytes;
  return total;
}

std::uint64_t PortQueueBank::totalDroppedPackets() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q.stats().droppedPackets;
  return total;
}

bool PortQueueBank::allEmpty() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return false;
  }
  return true;
}

std::optional<std::size_t> PortQueueBank::nextNonEmpty(bool strictPriority) {
  if (strictPriority) {
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      if (!queues_[i].empty()) return i;
    }
    return std::nullopt;
  }
  for (std::size_t step = 0; step < queues_.size(); ++step) {
    const std::size_t i = (rrCursor_ + step) % queues_.size();
    if (!queues_[i].empty()) {
      rrCursor_ = (i + 1) % queues_.size();
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace tpp::asic
