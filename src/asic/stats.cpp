// stats is header-only today; this TU anchors the library target.
#include "src/asic/stats.hpp"
