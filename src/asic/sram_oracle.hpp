// Dynamic SRAM race oracle: the runtime counterpart of the static
// interference analyzer (src/core/interference.hpp).
//
// When armed on a switch, every scratch-SRAM access a TPP makes is logged
// as (task, kind, word). Accesses are folded per TPP *execution* — one TCPU
// run is atomic in the dataplane (the paper's §3.3 serialization point), so
// a read and a write of the same word inside one execution is a
// read-modify-write (CSTORE), not a race. What can race is the protocol
// *across* executions: task A's plain STORE landing between task B's CSTORE
// attempts is a lost update no single execution can see.
//
// After a run, conflicts() reduces the log to the set of cross-task
// overlaps in which some task plain-writes a word another task touches —
// exactly the shapes analyzeInterference() flags statically. divergences()
// then cross-checks: every observed conflict must be covered by a static
// finding on the same (address, task-pair); anything uncovered is a static
// false negative and fails the chaos/determinism suites.
//
// Cost discipline: the instrumentation points in Switch are a single
// `oracle_ != nullptr` test when disarmed (same pattern as the flight
// recorder; enforced by bench_core's oracle_check_off self-gate). Each
// oracle instance belongs to one switch and — under sharding — one shard
// thread; it needs no locks.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/core/interference.hpp"
#include "src/core/memory_map.hpp"

namespace tpp::asic {

class SramRaceOracle {
 public:
  enum class Access : std::uint8_t { Read, Write };

  // Folded access kinds per (word, task), bitmask values.
  static constexpr std::uint8_t kReadBit = 1;   // execution only read
  static constexpr std::uint8_t kWriteBit = 2;  // execution only wrote
  static constexpr std::uint8_t kRmwBit = 4;    // read + wrote (CSTORE took)

  // Called by the switch immediately before each TCPU execution; folds the
  // previous execution's accesses into the per-word history.
  void beginExecution(std::uint16_t taskId);

  // Hot path (armed only): one scratch-word access by the current
  // execution. `port` is meaningful only for PortScratch.
  void record(core::StatNamespace region, std::size_t port, std::size_t word,
              Access access);

  // Folds the trailing execution; call once the run is over (conflicts()
  // and divergences() do it implicitly).
  void flush();

  // One cross-task overlap with a plain writer involved. `taskA` is a
  // plain-writing task; kinds are kReadBit/kWriteBit/kRmwBit masks of every
  // execution shape each task exhibited on the word.
  struct ObservedConflict {
    std::uint16_t address = 0;  // virtual address (region base + word)
    bool perPort = false;
    std::uint32_t port = 0;
    std::uint16_t taskA = 0;
    std::uint16_t taskB = 0;
    std::uint8_t kindsA = 0;
    std::uint8_t kindsB = 0;

    bool lostUpdate() const { return (kindsB & kRmwBit) != 0; }
    std::string describe() const;
  };

  std::vector<ObservedConflict> conflicts();

  // Observed conflicts NOT covered by a static finding on the same address
  // and task-id pair — static false negatives, described one per line.
  // Benign matrix entries do not excuse an observed conflict: "proven
  // disjoint" words must never actually collide.
  std::vector<std::string> divergences(
      const core::InterferenceReport& report,
      std::span<const core::EffectSummary> tasks);

  std::uint64_t accesses() const { return accesses_; }
  void clear();

 private:
  struct WordKey {
    bool perPort = false;
    std::uint32_t port = 0;
    std::uint32_t word = 0;
    auto operator<=>(const WordKey&) const = default;
  };
  struct Pending {
    WordKey key;
    std::uint8_t flags = 0;  // 1 = read, 2 = write (within this execution)
  };

  bool inExecution_ = false;
  std::uint16_t currentTask_ = 0;
  std::vector<Pending> pending_;
  // Word history: which folded kinds each task has exhibited on the word.
  std::map<WordKey, std::vector<std::pair<std::uint16_t, std::uint8_t>>>
      words_;
  std::uint64_t accesses_ = 0;
};

}  // namespace tpp::asic
