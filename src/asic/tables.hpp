// Forwarding tables (paper Fig 3: "L2, L3, TCAM").
//
// Every entry carries a stable id and a version stamp; the id the pipeline
// exposes to TPPs via PacketMetadata:MatchedEntryID packs both —
// (version << 16) | id — which is exactly the stamp ndb needs to detect
// control-plane/dataplane divergence (§2.3).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/net/ipv4.hpp"
#include "src/net/mac_address.hpp"

namespace tpp::asic {

inline std::uint32_t packEntryId(std::uint16_t id, std::uint16_t version) {
  return (static_cast<std::uint32_t>(version) << 16) | id;
}

// The pipeline's ECMP flow hash (FNV-1a 64 over header fields, one
// little-endian u64 per field). Public so path predictors — the ECMP
// property tests and host::PathOracle — compute the exact hash the
// dataplane will use, rather than re-guessing its mixing order.
class FlowHasher {
 public:
  FlowHasher& mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 1099511628211ULL;
    }
    return *this;
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ULL;
};

// The hash of a full UDP/IPv4 5-tuple — what every TCP-over-UDP segment
// and TPP probe of a given flow hashes to on every switch.
inline std::uint64_t ecmpFlowHash(net::Ipv4Address src, net::Ipv4Address dst,
                                  std::uint8_t protocol,
                                  std::uint16_t srcPort,
                                  std::uint16_t dstPort) {
  return FlowHasher()
      .mix(src.value())
      .mix(dst.value())
      .mix(protocol)
      .mix(srcPort)
      .mix(dstPort)
      .value();
}

struct MatchResult {
  std::size_t outPort = 0;
  std::uint32_t entryId = 0;     // packed (version << 16) | id
  std::uint32_t altRoutes = 0;   // other entries that also match
  std::optional<std::uint8_t> queueId;  // TCAM action may pick a queue
  bool drop = false;             // TCAM action may drop
  std::uint32_t table = 0;       // filled by the pipeline: 1=L2 2=L3 3=TCAM
};

// Exact-match MAC table.
class L2Table {
 public:
  // Adds or updates; updating bumps the entry's version and the table's.
  void add(const net::MacAddress& mac, std::size_t port);
  bool remove(const net::MacAddress& mac);
  std::optional<MatchResult> match(const net::MacAddress& dst) const;
  std::uint16_t version() const { return version_; }
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::size_t port;
    std::uint16_t id;
    std::uint16_t version;
  };
  std::unordered_map<net::MacAddress, Entry> entries_;
  std::uint16_t nextId_ = 1;
  std::uint16_t version_ = 0;
};

// Longest-prefix-match IPv4 table with ECMP multipath: an entry may carry
// several equal-cost next-hop ports; the pipeline picks one by flow hash so
// a flow's packets stay on one path while flows spread across paths.
class L3LpmTable {
 public:
  // prefixLen in [0,32]. Re-adding a prefix updates it and bumps versions.
  void add(net::Ipv4Address prefix, std::uint8_t prefixLen, std::size_t port);
  // ECMP variant: all of `ports` are equal-cost next hops.
  void addMultipath(net::Ipv4Address prefix, std::uint8_t prefixLen,
                    std::vector<std::size_t> ports);
  bool remove(net::Ipv4Address prefix, std::uint8_t prefixLen);
  // `flowHash` selects among equal-cost ports (ignored for single-path
  // entries). altRoutes counts both unused ECMP siblings and shorter
  // covering prefixes.
  std::optional<MatchResult> match(net::Ipv4Address dst,
                                   std::uint64_t flowHash = 0) const;
  std::uint16_t version() const { return version_; }
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint32_t prefix;  // already masked
    std::uint8_t len;
    std::vector<std::size_t> ports;  // >= 1 equal-cost next hops
    std::uint16_t id;
    std::uint16_t version;
  };
  static std::uint32_t maskOf(std::uint8_t len) {
    return len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
  }
  std::vector<Entry> entries_;  // kept sorted by descending prefix length
  std::uint16_t nextId_ = 1;
  std::uint16_t version_ = 0;
};

// Ternary match over (dstMac, etherType, ipSrc, ipDst, ipProto), highest
// priority wins. This is where SDN-style flow rules live in the ndb
// experiments.
struct TcamKey {
  std::optional<net::MacAddress> dstMac;
  std::optional<std::uint16_t> etherType;
  std::optional<std::pair<net::Ipv4Address, std::uint8_t>> ipSrc;  // pfx,len
  std::optional<std::pair<net::Ipv4Address, std::uint8_t>> ipDst;
  std::optional<std::uint8_t> ipProto;
};

struct TcamAction {
  std::size_t outPort = 0;
  std::optional<std::uint8_t> queueId;
  bool drop = false;
};

class Tcam {
 public:
  struct PacketFields {
    net::MacAddress dstMac;
    std::uint16_t etherType = 0;
    std::optional<net::Ipv4Address> ipSrc;
    std::optional<net::Ipv4Address> ipDst;
    std::optional<std::uint8_t> ipProto;
  };

  // Returns the entry's stable id. Higher priority wins ties.
  std::uint16_t add(TcamKey key, TcamAction action, std::int32_t priority);
  bool remove(std::uint16_t id);
  // Rewrites an entry in place (bumps its version) — the "forwarding rules
  // change constantly" scenario of §2.3.
  bool update(std::uint16_t id, TcamAction action);
  std::optional<MatchResult> match(const PacketFields& fields) const;
  std::uint16_t version() const { return version_; }
  std::size_t size() const { return entries_.size(); }
  // The packed (version<<16)|id this entry currently exposes; nullopt if
  // the id is unknown. The control plane records this as its intent.
  std::optional<std::uint32_t> packedId(std::uint16_t id) const;

 private:
  struct Entry {
    TcamKey key;
    TcamAction action;
    std::int32_t priority;
    std::uint16_t id;
    std::uint16_t version;
  };
  static bool matches(const TcamKey& key, const PacketFields& fields);
  std::vector<Entry> entries_;  // sorted by descending priority
  std::uint16_t nextId_ = 1;
  std::uint16_t version_ = 0;
};

}  // namespace tpp::asic
