#include "src/asic/sram_oracle.hpp"

#include <algorithm>
#include <cstdio>

namespace tpp::asic {
namespace {

std::string describeAddress(std::uint16_t address) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%04x", address);
  if (const auto* s = core::MemoryMap::standard().lookup(address)) {
    return "[" + s->name + "] (" + buf + ")";
  }
  return std::string(buf);
}

std::string kindsName(std::uint8_t mask) {
  std::string out;
  const auto add = [&](const char* name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if (mask & SramRaceOracle::kReadBit) add("read");
  if (mask & SramRaceOracle::kWriteBit) add("write");
  if (mask & SramRaceOracle::kRmwBit) add("cstore");
  return out.empty() ? "none" : out;
}

}  // namespace

void SramRaceOracle::beginExecution(std::uint16_t taskId) {
  flush();
  inExecution_ = true;
  currentTask_ = taskId;
}

void SramRaceOracle::record(core::StatNamespace region, std::size_t port,
                            std::size_t word, Access access) {
  WordKey key;
  key.perPort = region == core::StatNamespace::PortScratch;
  key.port = key.perPort ? static_cast<std::uint32_t>(port) : 0u;
  key.word = static_cast<std::uint32_t>(word);
  const std::uint8_t bit = access == Access::Read ? 1 : 2;
  ++accesses_;
  for (auto& p : pending_) {
    if (p.key == key) {
      p.flags |= bit;
      return;
    }
  }
  pending_.push_back({key, bit});
}

void SramRaceOracle::flush() {
  if (inExecution_) {
    for (const auto& p : pending_) {
      const std::uint8_t kind = p.flags == 3   ? kRmwBit
                                : p.flags == 2 ? kWriteBit
                                               : kReadBit;
      auto& tasks = words_[p.key];
      const auto it = std::find_if(
          tasks.begin(), tasks.end(),
          [&](const auto& t) { return t.first == currentTask_; });
      if (it == tasks.end()) {
        tasks.emplace_back(currentTask_, kind);
      } else {
        it->second |= kind;
      }
    }
  }
  pending_.clear();
  inExecution_ = false;
}

std::string SramRaceOracle::ObservedConflict::describe() const {
  std::string out = "observed conflict on " + describeAddress(address);
  if (perPort) out += " port " + std::to_string(port);
  out += ": task " + std::to_string(taskA) + " (" + kindsName(kindsA) +
         ") vs task " + std::to_string(taskB) + " (" + kindsName(kindsB) +
         ")";
  if (lostUpdate()) out += " — plain write against CSTORE (lost update)";
  return out;
}

std::vector<SramRaceOracle::ObservedConflict> SramRaceOracle::conflicts() {
  flush();
  std::vector<ObservedConflict> out;
  for (const auto& [key, tasks] : words_) {
    const std::uint16_t base =
        key.perPort ? core::kPortScratchBase : core::kSramBase;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      for (std::size_t j = i + 1; j < tasks.size(); ++j) {
        // A conflict needs a plain writer on one side and any access on
        // the other; pure read/CSTORE sharing is the coordinated case.
        std::size_t a = i;
        std::size_t b = j;
        if ((tasks[a].second & kWriteBit) == 0) std::swap(a, b);
        if ((tasks[a].second & kWriteBit) == 0) continue;
        ObservedConflict c;
        c.address = static_cast<std::uint16_t>(base + key.word);
        c.perPort = key.perPort;
        c.port = key.port;
        c.taskA = tasks[a].first;
        c.taskB = tasks[b].first;
        c.kindsA = tasks[a].second;
        c.kindsB = tasks[b].second;
        out.push_back(c);
      }
    }
  }
  return out;
}

std::vector<std::string> SramRaceOracle::divergences(
    const core::InterferenceReport& report,
    std::span<const core::EffectSummary> tasks) {
  std::vector<std::string> out;
  for (const auto& c : conflicts()) {
    const bool covered = std::any_of(
        report.findings.begin(), report.findings.end(),
        [&](const core::Conflict& f) {
          if (f.address != c.address) return false;
          if (f.taskA >= tasks.size() || f.taskB >= tasks.size()) {
            return false;
          }
          const std::uint16_t fa = tasks[f.taskA].taskId;
          const std::uint16_t fb = tasks[f.taskB].taskId;
          return (fa == c.taskA && fb == c.taskB) ||
                 (fa == c.taskB && fb == c.taskA);
        });
    if (!covered) {
      out.push_back(c.describe() +
                    " — not predicted by any static finding (static false "
                    "negative)");
    }
  }
  return out;
}

void SramRaceOracle::clear() {
  pending_.clear();
  words_.clear();
  inExecution_ = false;
  accesses_ = 0;
}

}  // namespace tpp::asic
