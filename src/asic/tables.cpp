#include "src/asic/tables.hpp"

#include <algorithm>

namespace tpp::asic {

// ---------------------------------------------------------------- L2Table

void L2Table::add(const net::MacAddress& mac, std::size_t port) {
  ++version_;
  auto it = entries_.find(mac);
  if (it != entries_.end()) {
    it->second.port = port;
    ++it->second.version;
    return;
  }
  entries_.emplace(mac, Entry{port, nextId_++, 1});
}

bool L2Table::remove(const net::MacAddress& mac) {
  if (entries_.erase(mac) == 0) return false;
  ++version_;
  return true;
}

std::optional<MatchResult> L2Table::match(const net::MacAddress& dst) const {
  const auto it = entries_.find(dst);
  if (it == entries_.end()) return std::nullopt;
  MatchResult r;
  r.outPort = it->second.port;
  r.entryId = packEntryId(it->second.id, it->second.version);
  r.altRoutes = 0;  // exact match: one way out
  return r;
}

// ------------------------------------------------------------- L3LpmTable

void L3LpmTable::add(net::Ipv4Address prefix, std::uint8_t prefixLen,
                     std::size_t port) {
  addMultipath(prefix, prefixLen, {port});
}

void L3LpmTable::addMultipath(net::Ipv4Address prefix,
                              std::uint8_t prefixLen,
                              std::vector<std::size_t> ports) {
  if (ports.empty()) return;
  ++version_;
  const std::uint32_t masked = prefix.value() & maskOf(prefixLen);
  for (auto& e : entries_) {
    if (e.prefix == masked && e.len == prefixLen) {
      e.ports = std::move(ports);
      ++e.version;
      return;
    }
  }
  entries_.push_back(Entry{masked, prefixLen, std::move(ports), nextId_++, 1});
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.len > b.len;
                   });
}

bool L3LpmTable::remove(net::Ipv4Address prefix, std::uint8_t prefixLen) {
  const std::uint32_t masked = prefix.value() & maskOf(prefixLen);
  const auto n = std::erase_if(entries_, [&](const Entry& e) {
    return e.prefix == masked && e.len == prefixLen;
  });
  if (n == 0) return false;
  ++version_;
  return true;
}

std::optional<MatchResult> L3LpmTable::match(net::Ipv4Address dst,
                                             std::uint64_t flowHash) const {
  const Entry* best = nullptr;
  std::uint32_t alternates = 0;
  for (const auto& e : entries_) {  // sorted by descending length
    if ((dst.value() & maskOf(e.len)) == e.prefix) {
      if (best == nullptr) {
        best = &e;
      } else {
        ++alternates;  // shorter prefixes that also cover dst
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  MatchResult r;
  r.outPort = best->ports[flowHash % best->ports.size()];
  r.entryId = packEntryId(best->id, best->version);
  r.altRoutes =
      alternates + static_cast<std::uint32_t>(best->ports.size() - 1);
  return r;
}

// ------------------------------------------------------------------- Tcam

std::uint16_t Tcam::add(TcamKey key, TcamAction action,
                        std::int32_t priority) {
  ++version_;
  const std::uint16_t id = nextId_++;
  entries_.push_back(Entry{std::move(key), action, priority, id, 1});
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.priority > b.priority;
                   });
  return id;
}

bool Tcam::remove(std::uint16_t id) {
  const auto n =
      std::erase_if(entries_, [&](const Entry& e) { return e.id == id; });
  if (n == 0) return false;
  ++version_;
  return true;
}

bool Tcam::update(std::uint16_t id, TcamAction action) {
  for (auto& e : entries_) {
    if (e.id == id) {
      e.action = action;
      ++e.version;
      ++version_;
      return true;
    }
  }
  return false;
}

std::optional<std::uint32_t> Tcam::packedId(std::uint16_t id) const {
  for (const auto& e : entries_) {
    if (e.id == id) return packEntryId(e.id, e.version);
  }
  return std::nullopt;
}

bool Tcam::matches(const TcamKey& key, const PacketFields& f) {
  if (key.dstMac && *key.dstMac != f.dstMac) return false;
  if (key.etherType && *key.etherType != f.etherType) return false;
  auto prefixMatch = [](const std::pair<net::Ipv4Address, std::uint8_t>& p,
                        const std::optional<net::Ipv4Address>& a) {
    if (!a) return false;
    const std::uint32_t mask =
        p.second == 0 ? 0 : ~std::uint32_t{0} << (32 - p.second);
    return (a->value() & mask) == (p.first.value() & mask);
  };
  if (key.ipSrc && !prefixMatch(*key.ipSrc, f.ipSrc)) return false;
  if (key.ipDst && !prefixMatch(*key.ipDst, f.ipDst)) return false;
  if (key.ipProto && (!f.ipProto || *key.ipProto != *f.ipProto)) return false;
  return true;
}

std::optional<MatchResult> Tcam::match(const PacketFields& fields) const {
  const Entry* best = nullptr;
  std::uint32_t alternates = 0;
  for (const auto& e : entries_) {  // sorted by descending priority
    if (matches(e.key, fields)) {
      if (best == nullptr) {
        best = &e;
      } else {
        ++alternates;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  MatchResult r;
  r.outPort = best->action.outPort;
  r.entryId = packEntryId(best->id, best->version);
  r.altRoutes = alternates;
  r.queueId = best->action.queueId;
  r.drop = best->action.drop;
  return r;
}

}  // namespace tpp::asic
