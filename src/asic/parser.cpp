#include "src/asic/parser.hpp"

#include "src/asic/tables.hpp"
#include "src/net/byte_io.hpp"

namespace tpp::asic {

std::uint64_t flowHashOf(const ParsedPacket& parsed) {
  FlowHasher h;
  if (parsed.ip) {
    h.mix(parsed.ip->src.value());
    h.mix(parsed.ip->dst.value());
    h.mix(parsed.ip->protocol);
  }
  if (parsed.udp) {
    h.mix(parsed.udp->srcPort);
    h.mix(parsed.udp->dstPort);
  }
  return h.value();
}

namespace {

// Recognizes the TCP-over-UDP segment format of src/host/tcp.hpp: a
// 20-byte header whose declared payload length exactly fills the datagram,
// reserved bits clear, and only SYN/ACK/FIN flag bits set. Checksums are
// not verified in the pipeline — recognition feeds monitoring, not
// forwarding.
std::optional<ParsedPacket::TcpEncap> parseTcpEncap(
    std::span<const std::uint8_t> payload) {
  constexpr std::size_t kTcpHeaderBytes = 20;
  constexpr std::uint8_t kKnownFlags = 0x07;  // SYN|ACK|FIN
  if (payload.size() < kTcpHeaderBytes) return std::nullopt;
  const auto len = net::getBe16(payload, 2);
  if (!len || payload.size() != kTcpHeaderBytes + *len) return std::nullopt;
  if ((payload[1] & ~1) != 0) return std::nullopt;
  if ((payload[0] & ~kKnownFlags) != 0) return std::nullopt;
  ParsedPacket::TcpEncap tcp;
  tcp.flags = payload[0];
  tcp.spin = payload[1] & 1;
  tcp.payloadLen = *len;
  tcp.seq = *net::getBe32(payload, 4);
  tcp.wnd = *net::getBe32(payload, 12);
  return tcp;
}

}  // namespace

std::optional<ParsedPacket> parsePacket(net::Packet& packet) {
  ParsedPacket out;
  const auto eth = net::EthernetHeader::parse(packet.span());
  if (!eth) return std::nullopt;
  out.eth = *eth;
  out.effectiveEtherType = eth->etherType;

  std::size_t l3Offset = net::kEthernetHeaderSize;
  if (eth->etherType == net::kEtherTypeTpp) {
    const auto view = core::TppView::at(packet, net::kEthernetHeaderSize);
    if (!view) return std::nullopt;  // malformed TPP: drop
    out.tppOffset = net::kEthernetHeaderSize;
    out.effectiveEtherType = view->innerEtherType();
    l3Offset = view->payloadOffset();
  }

  if (out.effectiveEtherType == net::kEtherTypeIpv4) {
    const auto bytes = packet.span();
    if (l3Offset <= bytes.size()) {
      out.ip = net::Ipv4Header::parse(bytes.subspan(l3Offset));
      out.ipOffset = l3Offset;
      if (out.ip && out.ip->protocol == net::kIpProtoUdp) {
        const std::size_t udpOffset = l3Offset + net::kIpv4HeaderSize;
        if (udpOffset <= bytes.size()) {
          out.udp = net::UdpHeader::parse(bytes.subspan(udpOffset));
          out.l4PayloadOffset = udpOffset + net::kUdpHeaderSize;
          if (out.udp && out.l4PayloadOffset <= bytes.size()) {
            out.tcp = parseTcpEncap(bytes.subspan(out.l4PayloadOffset));
          }
        }
      }
    }
  }
  return out;
}

}  // namespace tpp::asic
