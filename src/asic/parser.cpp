#include "src/asic/parser.hpp"

namespace tpp::asic {

std::optional<ParsedPacket> parsePacket(net::Packet& packet) {
  ParsedPacket out;
  const auto eth = net::EthernetHeader::parse(packet.span());
  if (!eth) return std::nullopt;
  out.eth = *eth;
  out.effectiveEtherType = eth->etherType;

  std::size_t l3Offset = net::kEthernetHeaderSize;
  if (eth->etherType == net::kEtherTypeTpp) {
    const auto view = core::TppView::at(packet, net::kEthernetHeaderSize);
    if (!view) return std::nullopt;  // malformed TPP: drop
    out.tppOffset = net::kEthernetHeaderSize;
    out.effectiveEtherType = view->innerEtherType();
    l3Offset = view->payloadOffset();
  }

  if (out.effectiveEtherType == net::kEtherTypeIpv4) {
    const auto bytes = packet.span();
    if (l3Offset <= bytes.size()) {
      out.ip = net::Ipv4Header::parse(bytes.subspan(l3Offset));
      out.ipOffset = l3Offset;
      if (out.ip && out.ip->protocol == net::kIpProtoUdp) {
        const std::size_t udpOffset = l3Offset + net::kIpv4HeaderSize;
        if (udpOffset <= bytes.size()) {
          out.udp = net::UdpHeader::parse(bytes.subspan(udpOffset));
          out.l4PayloadOffset = udpOffset + net::kUdpHeaderSize;
        }
      }
    }
  }
  return out;
}

}  // namespace tpp::asic
