// The TPP-capable switch: the full dataplane pipeline of paper Fig 3.
//
//   receive → edge filter → header parser → L2/L3/TCAM lookup → TCPU →
//   egress queue → scheduler → transmit
//
// The TCPU sits after forwarding lookup and before the packet is copied to
// switch memory, so a TPP reading Queue:QueueSize observes the egress queue
// occupancy at the instant the packet traversed the switch (§2.1), and all
// packet modifications are committed before enqueue (§3.3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/asic/parser.hpp"
#include "src/asic/queue.hpp"
#include "src/asic/sram_oracle.hpp"
#include "src/asic/stats.hpp"
#include "src/asic/tables.hpp"
#include "src/core/agent.hpp"
#include "src/core/edge_filter.hpp"
#include "src/core/hook.hpp"
#include "src/net/link.hpp"
#include "src/net/node.hpp"
#include "src/sim/simulator.hpp"
#include "src/tcpu/tcpu.hpp"

namespace tpp::asic {

enum class SchedulerPolicy : std::uint8_t {
  RoundRobin,      // fair service across non-empty queues
  StrictPriority,  // queue 0 preempts 1 preempts 2 …
};

struct SwitchConfig {
  std::uint32_t switchId = 0;
  std::size_t ports = 4;
  std::size_t queuesPerPort = 8;
  std::uint64_t bufferPerQueueBytes = 512 * 1024;
  SchedulerPolicy scheduler = SchedulerPolicy::RoundRobin;
  // Window for the RX/offered-load utilization registers.
  sim::Time utilizationWindow = sim::Time::ms(10);
  // Fixed pipeline latency between arrival and enqueue (lookup + TCPU are
  // modelled as cycle counts separately; this is the packet's transit time
  // through the pipeline). Zero = ideal cut-through pipeline.
  sim::Time pipelineDelay = sim::Time::zero();
  bool tcpuEnabled = true;
  // ECN (RFC 3168 / the paper's §4 related-work baseline): when > 0, IPv4
  // packets enqueued while their egress queue holds at least this many
  // bytes are marked Congestion Experienced. 0 disables marking.
  std::uint64_t ecnThresholdBytes = 0;
  // Resident-hook sampling stride (DESIGN.md §14): hooks run for every Nth
  // eligible packet (IPv4, not a TPP carrier). 1 = every packet. Host-side
  // sketch readers multiply estimates back up by the stride.
  std::uint32_t hookStride = 1;
};

// Observes packets at the moment they are enqueued to an egress port; the
// in-switch RCP baseline hooks here to stamp rate fields.
class EgressInterceptor {
 public:
  virtual ~EgressInterceptor() = default;
  virtual void onEnqueue(net::Packet& packet, std::size_t egressPort) = 0;
};

class Switch : public net::Node {
 public:
  Switch(sim::Simulator& simulator, std::string name, SwitchConfig config);
  ~Switch() override;

  void receive(net::PacketPtr packet, std::size_t port) override;

  // ------------------------------------------------------------ control
  L2Table& l2() { return l2_; }
  L3LpmTable& l3() { return l3_; }
  Tcam& tcam() { return tcam_; }
  const L2Table& l2() const { return l2_; }
  const L3LpmTable& l3() const { return l3_; }
  const Tcam& tcam() const { return tcam_; }
  core::EdgeFilter& edgeFilter() { return edgeFilter_; }
  core::SramAllocator& sramAllocator() { return sram_.allocator; }

  // Direct control-plane access to scratch memory (e.g. the agent
  // initializing each link's RCP rate register to capacity, §2.2 fn 3).
  std::optional<std::uint32_t> scratchRead(std::uint16_t address,
                                           std::size_t port = 0) const;
  bool scratchWrite(std::uint16_t address, std::uint32_t value,
                    std::size_t port = 0);

  void setEgressInterceptor(EgressInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  // ------------------------------------------------------ resident hooks
  // Installs a control-plane-supplied hook program (DESIGN.md §14),
  // executed per eligible forwarded packet (IPv4, not a TPP carrier; at
  // most every config.hookStride-th such packet; tcpOnly hooks also
  // require a recognized TCP segment). Hooks run under the same grant
  // checks, race oracle, and tracer as carried TPPs, attributed to the
  // hook program's task id.
  void installHook(core::HookProgram hook);
  void clearHooks() { hooks_.clear(); }
  std::size_t hookCount() const { return hooks_.size(); }
  // Hook program executions (sum over installed hooks).
  std::uint64_t hookExecutions() const { return hookExecutions_; }

  // ------------------------------------------------------- fault hooks
  // TPP-unaware switch: with the TCPU disabled, TPP packets forward with
  // their TPP section untouched (no hop record, no hop-count bump) — the
  // "hole" hosts must detect.
  void setTcpuEnabled(bool enabled) { config_.tcpuEnabled = enabled; }
  bool tcpuEnabled() const { return config_.tcpuEnabled; }

  // Power-cycles the switch's scratch state: zeroes global and per-port
  // SRAM, drops all task grants, and bumps the boot-epoch register so hosts
  // can tell their CSTORE/lock state is stale. Tables, queues, and in-flight
  // packets survive (the dataplane keeps forwarding).
  void reboot();
  std::uint32_t bootEpoch() const { return bootEpoch_; }

  // Wireless extension (§2.3 "Other possibilities"): the radio PHY posts
  // per-port channel SNR (centi-dB) that TPPs read via Link:SNR.
  void setPortSnr(std::size_t port, std::uint32_t centiDb) {
    snrCentiDb_.at(port) = centiDb;
  }
  std::uint32_t portSnr(std::size_t port) const {
    return snrCentiDb_.at(port);
  }

  // Host-posted gauge, same pattern as setPortSnr: the attached end-host
  // (via host::armTracing) posts how many probes it currently has
  // outstanding into this port; TPPs read it as Link:ProbesInFlight.
  void setPortProbesInFlight(std::size_t port, std::uint32_t count) {
    probesInFlight_.at(port) = count;
  }
  std::uint32_t portProbesInFlight(std::size_t port) const {
    return probesInFlight_.at(port);
  }

  // Arms (nullptr disarms) the flight recorder on this switch: pipeline
  // records (enqueue/dequeue/drop, TPP execution, reboot) plus
  // per-instruction TCPU retires, all attributed to an actor named after
  // this switch.
  void setTracer(sim::Tracer* tracer);

  // Arms (nullptr disarms) the SRAM race oracle: every scratch read/write a
  // TPP performs on this switch is logged per execution for the
  // static-vs-dynamic interference cross-check. Disarmed cost is one
  // null-check per scratch access (bench_core oracle_check_off).
  void setSramOracle(SramRaceOracle* oracle) { oracle_ = oracle; }
  SramRaceOracle* sramOracle() const { return oracle_; }

  // ---------------------------------------------------------- telemetry
  const SwitchConfig& config() const { return config_; }
  const SwitchStats& stats() const { return stats_; }
  const PortStats& portStats(std::size_t port) const { return ports_[port]; }
  const QueueStats& queueStats(std::size_t port, std::size_t queue) const {
    return banks_[port].queue(queue).stats();
  }
  std::uint64_t portQueueBytes(std::size_t port) const {
    return banks_[port].totalBytes();
  }
  const tcpu::Tcpu& tcpu() const { return tcpu_; }
  sim::Simulator& simulator() { return sim_; }

  // Offered load (bytes destined to `port`'s egress, including drops) over
  // the utilization window, in bits/sec.
  double offeredLoadBps(std::size_t port);
  // Byte-time integral of `port`'s queues (bytes * seconds), brought
  // current to now; average queue over an interval is a caller-side delta.
  double queueByteTimeIntegral(std::size_t port) {
    ports_[port].updateIntegral(sim_.now());
    return ports_[port].queueByteTimeIntegral;
  }
  // Egress link capacity of `port` in bits/sec (0 if unwired).
  std::uint64_t portCapacityBps(std::size_t port) const;
  // Cumulative bytes offered to `port`'s egress (enqueued + dropped),
  // summed over its queues — the arrival counter RCP differentiates.
  std::uint64_t portOfferedBytes(std::size_t port) const;

 private:
  class UnifiedAddressSpace;  // the TCPU's window onto this switch

  struct Sram {
    std::vector<std::uint32_t> global;
    std::vector<std::vector<std::uint32_t>> perPort;
    core::SramAllocator allocator;
  };

  // One installed hook plus its per-packet working state: a decoded
  // instruction copy patched in place (never wire bytes — the TCPU decode
  // cache is not involved) and a reusable packet-memory scratch image.
  struct InstalledHook {
    core::HookProgram hook;
    std::vector<core::Instruction> instrs;
    std::vector<std::uint32_t> pmem;
  };

  // Pipeline stages.
  void forwardAndEnqueue(net::PacketPtr packet, std::size_t inPort);
  std::optional<MatchResult> lookup(const ParsedPacket& parsed,
                                    std::uint64_t flowHash);
  void runHooks(const ParsedPacket& parsed, net::PacketMeta& meta,
                std::uint64_t flowHash);
  void enqueue(net::PacketPtr packet, std::size_t outPort,
               std::size_t queueId);
  void startTransmit(std::size_t port);
  void drop(const net::Packet& packet, std::size_t port);

  sim::Simulator& sim_;
  SwitchConfig config_;
  L2Table l2_;
  L3LpmTable l3_;
  Tcam tcam_;
  core::EdgeFilter edgeFilter_;
  tcpu::Tcpu tcpu_;
  Sram sram_;
  std::vector<PortStats> ports_;
  std::vector<PortQueueBank> banks_;
  std::vector<std::uint32_t> snrCentiDb_;
  std::vector<std::uint32_t> probesInFlight_;
  sim::Tracer* tracer_ = nullptr;
  SramRaceOracle* oracle_ = nullptr;
  std::uint32_t actor_ = 0;
  std::uint32_t bootEpoch_ = 1;
  SwitchStats stats_;
  EgressInterceptor* interceptor_ = nullptr;
  std::vector<InstalledHook> hooks_;
  std::uint64_t hookTick_ = 0;  // eligible packets seen (stride counter)
  std::uint64_t hookExecutions_ = 0;
};

}  // namespace tpp::asic
