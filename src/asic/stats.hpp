// Statistics banks the ASIC's memory manager keeps in registers (paper
// Table 2). These are the ground truth the unified address space exposes to
// TPPs; tests compare TPP-read values against these structs directly.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/stats.hpp"
#include "src/sim/time.hpp"

namespace tpp::asic {

struct QueueStats {
  std::uint64_t bytes = 0;            // current occupancy
  std::uint64_t packets = 0;
  std::uint64_t enqueuedBytes = 0;    // cumulative
  std::uint64_t enqueuedPackets = 0;
  std::uint64_t droppedBytes = 0;
  std::uint64_t droppedPackets = 0;
};

struct PortStats {
  explicit PortStats(sim::Time utilizationWindow)
      : rxRate(utilizationWindow), offeredRate(utilizationWindow) {}

  std::uint64_t rxBytes = 0;
  std::uint64_t rxPackets = 0;
  std::uint64_t txBytes = 0;
  std::uint64_t txPackets = 0;
  std::uint64_t txDrops = 0;  // egress-buffer drops

  // Utilization estimators: rxRate measures traffic arriving on this port
  // (the paper's Link:RX-Utilization); offeredRate measures traffic destined
  // to this port's egress queue, including drops (our Link:TX-Utilization
  // extension, the y(t) an RCP link controller wants).
  sim::WindowedRate rxRate;
  sim::WindowedRate offeredRate;

  // Time integral of total queued bytes on this port, for computing average
  // queue sizes over an interval (used by the in-switch RCP baseline).
  double queueByteTimeIntegral = 0.0;  // bytes * seconds
  sim::Time integralUpdatedAt = sim::Time::zero();
  std::uint64_t queuedBytesNow = 0;

  void updateIntegral(sim::Time now) {
    queueByteTimeIntegral += static_cast<double>(queuedBytesNow) *
                             (now - integralUpdatedAt).toSeconds();
    integralUpdatedAt = now;
  }
};

struct SwitchStats {
  std::uint64_t totalRxPackets = 0;
  std::uint64_t totalTxPackets = 0;
  std::uint64_t totalDrops = 0;
  std::uint64_t forwardingMisses = 0;
  std::uint64_t ttlExpired = 0;
  std::uint64_t tppsExecuted = 0;
  std::uint64_t reboots = 0;  // injected reboots that wiped scratch SRAM
};

}  // namespace tpp::asic
