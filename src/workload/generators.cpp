#include "src/workload/generators.hpp"

namespace tpp::workload {

// ------------------------------------------------------------ OnOffSender

OnOffSender::OnOffSender(host::Host& src, Config config, sim::Rng rng)
    : src_(src), config_(config), rng_(rng),
      flow_(src, config.flow, /*flowId=*/0) {
  flow_.setRateBps(0.0);
}

void OnOffSender::start(sim::Time at) {
  running_ = true;
  flow_.start(at);
  pending_ = src_.simulator().scheduleAt(at, [this] { toggle(true); });
}

void OnOffSender::stop() {
  running_ = false;
  pending_.cancel();
  flow_.stop();
}

void OnOffSender::toggle(bool on) {
  if (!running_) return;
  flow_.setRateBps(on ? config_.peakRateBps : 0.0);
  const double mean =
      (on ? config_.meanOn : config_.meanOff).toSeconds();
  const sim::Time duration = sim::Time::seconds(rng_.exponential(mean));
  pending_ = src_.simulator().schedule(duration, [this, on] { toggle(!on); });
}

// ------------------------------------------------------------- IncastBurst

IncastBurst::IncastBurst(std::vector<host::Host*> senders, Config config)
    : senders_(std::move(senders)), config_(config) {}

void IncastBurst::start(sim::Time at) {
  if (senders_.empty()) return;
  running_ = true;
  pending_ = senders_.front()->simulator().scheduleAt(at, [this] { fire(); });
}

void IncastBurst::stop() {
  running_ = false;
  pending_.cancel();
  for (auto& f : flows_) f->stop();
}

void IncastBurst::fire() {
  if (!running_) return;
  ++bursts_;
  flows_.clear();  // previous burst's flows have finished
  std::uint16_t port = config_.dstPort;
  for (host::Host* sender : senders_) {
    host::FlowSpec spec;
    spec.dstMac = config_.dstMac;
    spec.dstIp = config_.dstIp;
    spec.srcPort = port;
    spec.dstPort = config_.dstPort;
    spec.payloadBytes = config_.payloadBytes;
    spec.rateBps = config_.lineRateBps;
    spec.totalBytes = config_.burstBytes;
    auto flow = std::make_unique<host::PacedFlow>(*sender, spec,
                                                  /*flowId=*/bursts_);
    flow->start(sender->simulator().now());
    flows_.push_back(std::move(flow));
    ++port;
  }
  if (config_.period > sim::Time::zero()) {
    pending_ = senders_.front()->simulator().schedule(config_.period,
                                                      [this] { fire(); });
  }
}

// --------------------------------------------------- PoissonFlowGenerator

PoissonFlowGenerator::PoissonFlowGenerator(std::vector<host::Host*> senders,
                                           Config config, sim::Rng rng)
    : senders_(std::move(senders)), config_(config), rng_(rng) {}

void PoissonFlowGenerator::start(sim::Time at) {
  running_ = true;
  pending_ = senders_.front()->simulator().scheduleAt(at,
                                                      [this] { arrive(); });
}

void PoissonFlowGenerator::stop() {
  running_ = false;
  pending_.cancel();
  for (auto& f : flows_) f->stop();
}

void PoissonFlowGenerator::arrive() {
  if (!running_) return;
  host::Host* sender =
      senders_[static_cast<std::size_t>(rng_.uniformInt(
          0, static_cast<std::int64_t>(senders_.size()) - 1))];
  const double bytes = rng_.paretoBounded(
      config_.paretoShape, config_.minFlowBytes, config_.maxFlowBytes);

  host::FlowSpec spec;
  spec.dstMac = config_.dstMac;
  spec.dstIp = config_.dstIp;
  spec.srcPort = static_cast<std::uint16_t>(30000 + (flowsStarted_ % 20000));
  spec.dstPort = config_.dstPort;
  spec.payloadBytes = config_.payloadBytes;
  spec.rateBps = config_.lineRateBps;
  spec.totalBytes = static_cast<std::uint64_t>(bytes);
  auto flow = std::make_unique<host::PacedFlow>(*sender, spec,
                                                flowsStarted_ + 1);
  flow->start(sender->simulator().now());
  flows_.push_back(std::move(flow));
  ++flowsStarted_;
  bytesOffered_ += static_cast<std::uint64_t>(bytes);

  // Garbage-collect finished flows so long runs stay bounded.
  if (flows_.size() > 512) {
    std::erase_if(flows_, [](const auto& f) { return f->finished(); });
  }

  const double gap = rng_.exponential(1.0 / config_.flowsPerSecond);
  pending_ = senders_.front()->simulator().schedule(
      sim::Time::seconds(gap), [this] { arrive(); });
}

// ------------------------------------------------------------- TcpIncast

TcpIncast::TcpIncast(std::vector<host::Host*> senders, Config config)
    : senders_(std::move(senders)), config_(config) {}

void TcpIncast::start(sim::Time at) {
  conns_.reserve(senders_.size());
  records_.resize(senders_.size());
  for (std::size_t i = 0; i < senders_.size(); ++i) {
    records_[i].arrival = at;
    records_[i].bytes = config_.burstBytes;
    records_[i].sender = i;
    auto conn = std::make_unique<host::TcpConnection>(*senders_[i],
                                                      config_.conn);
    host::TcpConnection* raw = conn.get();
    TcpFlowRecord* rec = &records_[i];
    host::Host* sender = senders_[i];
    raw->onClosed([rec, raw] {
      rec->completion = raw->closedAt().value_or(sim::Time::zero());
    });
    raw->onError([rec](const std::string&) { rec->failed = true; });
    const std::uint16_t port =
        static_cast<std::uint16_t>(config_.basePort + i);
    // Scheduled on the sender's own simulator: shard-local by design.
    sender->simulator().scheduleAt(at, [this, raw, sender, port] {
      raw->connect(config_.dstMac, config_.dstIp, config_.serverPort, port,
                   config_.burstBytes);
      (void)sender;
    });
    conns_.push_back(std::move(conn));
  }
}

bool TcpIncast::allDone() const {
  for (const auto& r : records_) {
    if (!r.done()) return false;
  }
  return !records_.empty();
}

std::size_t TcpIncast::finishedCount() const {
  std::size_t n = 0;
  for (const auto& r : records_) n += r.finished() ? 1 : 0;
  return n;
}

std::size_t TcpIncast::failedCount() const {
  std::size_t n = 0;
  for (const auto& r : records_) n += r.failed ? 1 : 0;
  return n;
}

// ------------------------------------------------ TcpPoissonFlowGenerator

TcpPoissonFlowGenerator::TcpPoissonFlowGenerator(
    std::vector<host::Host*> senders, Config config, sim::Rng rng)
    : senders_(std::move(senders)), config_(config), rng_(rng) {}

void TcpPoissonFlowGenerator::start(sim::Time at) {
  // Draw the whole schedule first — the flow log depends on the Rng alone.
  sim::Time t = at;
  while (records_.size() < config_.maxFlows) {
    t += sim::Time::seconds(rng_.exponential(1.0 / config_.flowsPerSecond));
    if (t >= at + config_.horizon) break;
    TcpFlowRecord rec;
    rec.arrival = t;
    rec.sender = static_cast<std::size_t>(rng_.uniformInt(
        0, static_cast<std::int64_t>(senders_.size()) - 1));
    rec.bytes = static_cast<std::uint64_t>(rng_.paretoBounded(
        config_.paretoShape, config_.minFlowBytes, config_.maxFlowBytes));
    bytesOffered_ += rec.bytes;
    records_.push_back(rec);
  }

  conns_.reserve(records_.size());
  for (std::size_t f = 0; f < records_.size(); ++f) {
    host::Host* sender = senders_[records_[f].sender];
    auto conn = std::make_unique<host::TcpConnection>(*sender, config_.conn);
    host::TcpConnection* raw = conn.get();
    TcpFlowRecord* rec = &records_[f];
    raw->onClosed([rec, raw] {
      rec->completion = raw->closedAt().value_or(sim::Time::zero());
    });
    raw->onError([rec](const std::string&) { rec->failed = true; });
    const std::uint16_t port =
        static_cast<std::uint16_t>(config_.basePort + f);
    const std::uint64_t bytes = records_[f].bytes;
    sender->simulator().scheduleAt(
        records_[f].arrival, [this, raw, port, bytes] {
          raw->connect(config_.dstMac, config_.dstIp, config_.serverPort,
                       port, bytes);
        });
    conns_.push_back(std::move(conn));
  }
}

bool TcpPoissonFlowGenerator::allDone() const {
  for (const auto& r : records_) {
    if (!r.done()) return false;
  }
  return !records_.empty();
}

std::size_t TcpPoissonFlowGenerator::finishedCount() const {
  std::size_t n = 0;
  for (const auto& r : records_) n += r.finished() ? 1 : 0;
  return n;
}

std::size_t TcpPoissonFlowGenerator::failedCount() const {
  std::size_t n = 0;
  for (const auto& r : records_) n += r.failed ? 1 : 0;
  return n;
}

}  // namespace tpp::workload
