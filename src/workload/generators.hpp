// Traffic generators: the synthetic workloads standing in for the
// production traffic the paper's experiments observe (see DESIGN.md §2).
//
//   CbrSender            constant bit rate (a PacedFlow with a schedule)
//   OnOffSender          exponential on/off bursts — sub-RTT congestion
//   IncastBurst          N senders fire a B-byte burst at one receiver
//                        simultaneously (the canonical micro-burst source)
//   PoissonFlowGenerator Poisson arrivals of bounded-Pareto-sized flows
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/host/flow.hpp"
#include "src/host/host.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"

namespace tpp::workload {

// On/off (burst/idle) traffic: during "on" periods sends at `peakRateBps`,
// idle otherwise. On/off durations are exponentially distributed.
class OnOffSender {
 public:
  struct Config {
    host::FlowSpec flow;            // rateBps is ignored (peak used instead)
    double peakRateBps = 1e9;
    sim::Time meanOn = sim::Time::ms(1);
    sim::Time meanOff = sim::Time::ms(9);
  };

  OnOffSender(host::Host& src, Config config, sim::Rng rng);

  void start(sim::Time at);
  void stop();

  std::uint64_t bytesSent() const { return flow_.bytesSent(); }
  host::PacedFlow& flow() { return flow_; }

 private:
  void toggle(bool on);

  host::Host& src_;
  Config config_;
  sim::Rng rng_;
  host::PacedFlow flow_;
  bool running_ = false;
  sim::EventHandle pending_;
};

// Synchronized incast: each of the `senders` transmits `burstBytes` to the
// receiver starting at the same instant, optionally repeating every
// `period`. This is how shallow egress buffers are driven into the
// 100 µs-scale queue excursions §2.1 targets.
class IncastBurst {
 public:
  struct Config {
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    std::uint64_t burstBytes = 64 * 1024;
    std::size_t payloadBytes = 1000;
    double lineRateBps = 1e9;
    sim::Time period = sim::Time::zero();  // zero = one shot
    std::uint16_t dstPort = 21000;
  };

  IncastBurst(std::vector<host::Host*> senders, Config config);

  void start(sim::Time at);
  // Cancels future rounds and halts any in-flight senders.
  void stop();
  std::size_t burstsFired() const { return bursts_; }

 private:
  void fire();

  std::vector<host::Host*> senders_;
  Config config_;
  std::vector<std::unique_ptr<host::PacedFlow>> flows_;
  std::size_t bursts_ = 0;
  bool running_ = false;
  sim::EventHandle pending_;
};

// Poisson flow arrivals with bounded-Pareto flow sizes (heavy-tailed, the
// standard datacenter mix): each arrival starts a fresh line-rate flow from
// a random sender to a fixed receiver.
class PoissonFlowGenerator {
 public:
  struct Config {
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    double flowsPerSecond = 100.0;
    double paretoShape = 1.2;
    double minFlowBytes = 10.0 * 1024;
    double maxFlowBytes = 10.0 * 1024 * 1024;
    double lineRateBps = 1e9;
    std::size_t payloadBytes = 1000;
    std::uint16_t dstPort = 22000;
  };

  PoissonFlowGenerator(std::vector<host::Host*> senders, Config config,
                       sim::Rng rng);

  void start(sim::Time at);
  void stop();

  std::size_t flowsStarted() const { return flowsStarted_; }
  std::uint64_t bytesOffered() const { return bytesOffered_; }

 private:
  void arrive();

  std::vector<host::Host*> senders_;
  Config config_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<host::PacedFlow>> flows_;
  bool running_ = false;
  std::size_t flowsStarted_ = 0;
  std::uint64_t bytesOffered_ = 0;
  sim::EventHandle pending_;
};

}  // namespace tpp::workload
