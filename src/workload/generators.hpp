// Traffic generators: the synthetic workloads standing in for the
// production traffic the paper's experiments observe (see DESIGN.md §2).
//
//   CbrSender            constant bit rate (a PacedFlow with a schedule)
//   OnOffSender          exponential on/off bursts — sub-RTT congestion
//   IncastBurst          N senders fire a B-byte burst at one receiver
//                        simultaneously (the canonical micro-burst source)
//   PoissonFlowGenerator Poisson arrivals of bounded-Pareto-sized flows
//   TcpIncast            the incast shape over real TCP connections
//   TcpPoissonFlowGenerator  Poisson/bounded-Pareto arrivals over TCP
//
// Shard discipline of the TCP generators: the whole arrival schedule
// (times, sizes, senders) is precomputed from the Rng at start(), before
// the simulation runs, and each connection's connect() is scheduled on its
// own host's simulator. Nothing about shard placement feeds the schedule,
// so a fixed seed yields an identical flow log on 1, 2 or 4 shards — and
// generators may span shards, unlike the event-driven UDP ones above.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/host/flow.hpp"
#include "src/host/host.hpp"
#include "src/host/tcp.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"

namespace tpp::workload {

// On/off (burst/idle) traffic: during "on" periods sends at `peakRateBps`,
// idle otherwise. On/off durations are exponentially distributed.
class OnOffSender {
 public:
  struct Config {
    host::FlowSpec flow;            // rateBps is ignored (peak used instead)
    double peakRateBps = 1e9;
    sim::Time meanOn = sim::Time::ms(1);
    sim::Time meanOff = sim::Time::ms(9);
  };

  OnOffSender(host::Host& src, Config config, sim::Rng rng);

  void start(sim::Time at);
  void stop();

  std::uint64_t bytesSent() const { return flow_.bytesSent(); }
  host::PacedFlow& flow() { return flow_; }

 private:
  void toggle(bool on);

  host::Host& src_;
  Config config_;
  sim::Rng rng_;
  host::PacedFlow flow_;
  bool running_ = false;
  sim::EventHandle pending_;
};

// Synchronized incast: each of the `senders` transmits `burstBytes` to the
// receiver starting at the same instant, optionally repeating every
// `period`. This is how shallow egress buffers are driven into the
// 100 µs-scale queue excursions §2.1 targets.
class IncastBurst {
 public:
  struct Config {
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    std::uint64_t burstBytes = 64 * 1024;
    std::size_t payloadBytes = 1000;
    double lineRateBps = 1e9;
    sim::Time period = sim::Time::zero();  // zero = one shot
    std::uint16_t dstPort = 21000;
  };

  IncastBurst(std::vector<host::Host*> senders, Config config);

  void start(sim::Time at);
  // Cancels future rounds and halts any in-flight senders.
  void stop();
  std::size_t burstsFired() const { return bursts_; }

 private:
  void fire();

  std::vector<host::Host*> senders_;
  Config config_;
  std::vector<std::unique_ptr<host::PacedFlow>> flows_;
  std::size_t bursts_ = 0;
  bool running_ = false;
  sim::EventHandle pending_;
};

// Poisson flow arrivals with bounded-Pareto flow sizes (heavy-tailed, the
// standard datacenter mix): each arrival starts a fresh line-rate flow from
// a random sender to a fixed receiver.
class PoissonFlowGenerator {
 public:
  struct Config {
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    double flowsPerSecond = 100.0;
    double paretoShape = 1.2;
    double minFlowBytes = 10.0 * 1024;
    double maxFlowBytes = 10.0 * 1024 * 1024;
    double lineRateBps = 1e9;
    std::size_t payloadBytes = 1000;
    std::uint16_t dstPort = 22000;
  };

  PoissonFlowGenerator(std::vector<host::Host*> senders, Config config,
                       sim::Rng rng);

  void start(sim::Time at);
  void stop();

  std::size_t flowsStarted() const { return flowsStarted_; }
  std::uint64_t bytesOffered() const { return bytesOffered_; }

 private:
  void arrive();

  std::vector<host::Host*> senders_;
  Config config_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<host::PacedFlow>> flows_;
  bool running_ = false;
  std::size_t flowsStarted_ = 0;
  std::uint64_t bytesOffered_ = 0;
  sim::EventHandle pending_;
};

// One TCP flow's life, as the generators see it. `arrival`, `bytes` and
// `sender` are fixed when the schedule is drawn; `completion`/`failed` are
// filled in by the connection's callbacks as the simulation runs.
struct TcpFlowRecord {
  sim::Time arrival;
  std::uint64_t bytes = 0;
  std::size_t sender = 0;  // index into the generator's sender list
  sim::Time completion = sim::Time::zero();  // clean close; zero = pending
  bool failed = false;

  bool finished() const { return completion > sim::Time::zero(); }
  bool done() const { return finished() || failed; }
  sim::Time fct() const { return completion - arrival; }
};

// Synchronized incast over TCP: every sender opens a connection to the
// receiver's TcpListener (which the caller owns) and streams `burstBytes`.
// Sender i binds local port basePort + i. One shot.
class TcpIncast {
 public:
  struct Config {
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    std::uint16_t serverPort = 23000;
    std::uint16_t basePort = 30000;
    std::uint64_t burstBytes = 64 * 1024;
    host::TcpConnection::Config conn;
  };

  TcpIncast(std::vector<host::Host*> senders, Config config);

  void start(sim::Time at);

  std::size_t flowCount() const { return conns_.size(); }
  // Per-sender connection, e.g. for attaching a TppTcpController.
  host::TcpConnection& connection(std::size_t i) { return *conns_.at(i); }
  const std::vector<TcpFlowRecord>& records() const { return records_; }
  bool allDone() const;
  std::size_t finishedCount() const;
  std::size_t failedCount() const;

 private:
  std::vector<host::Host*> senders_;
  Config config_;
  std::vector<std::unique_ptr<host::TcpConnection>> conns_;
  std::vector<TcpFlowRecord> records_;
};

// Poisson arrivals of bounded-Pareto-sized flows, each a fresh TCP
// connection from a (uniformly drawn) sender to the receiver's listener.
// The schedule covers [at, at + horizon) and is drawn entirely at start();
// flow f binds local port basePort + f.
class TcpPoissonFlowGenerator {
 public:
  struct Config {
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    std::uint16_t serverPort = 23000;
    std::uint16_t basePort = 40000;
    double flowsPerSecond = 200.0;
    double paretoShape = 1.2;
    double minFlowBytes = 2.0 * 1024;
    double maxFlowBytes = 1.0 * 1024 * 1024;
    sim::Time horizon = sim::Time::ms(100);
    std::size_t maxFlows = 4096;  // schedule cap (also bounds the ports)
    host::TcpConnection::Config conn;
  };

  TcpPoissonFlowGenerator(std::vector<host::Host*> senders, Config config,
                          sim::Rng rng);

  void start(sim::Time at);

  std::size_t flowCount() const { return conns_.size(); }
  host::TcpConnection& connection(std::size_t i) { return *conns_.at(i); }
  // The flow log: (arrival, bytes, sender) are the drawn schedule — the
  // shard-count-invariant part — plus completion as it happens.
  const std::vector<TcpFlowRecord>& records() const { return records_; }
  std::uint64_t bytesOffered() const { return bytesOffered_; }
  bool allDone() const;
  std::size_t finishedCount() const;
  std::size_t failedCount() const;

 private:
  std::vector<host::Host*> senders_;
  Config config_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<host::TcpConnection>> conns_;
  std::vector<TcpFlowRecord> records_;
  std::uint64_t bytesOffered_ = 0;
};

}  // namespace tpp::workload
