// Heavy-tailed flow-size distributions for datacenter-scale workloads.
//
// The extended version of the source paper ("Millions of Little Minions")
// evaluates TPPs on fat-tree fabrics driven by the two canonical
// empirical flow-size mixes of the datacenter literature:
//
//   web-search   the DCTCP production trace (Alizadeh et al., SIGCOMM'10),
//                ~55% of flows under 100 KB but >95% of bytes in flows
//                over 1 MB — mean ~1.7 MB;
//   data-mining  the VL2-style mix (Greenberg et al., SIGCOMM'09), half of
//                all flows a single packet with an extreme elephant tail.
//
// Both are encoded here as piecewise-linear CDFs over flow size in bytes
// (the standard pFabric encoding, packets x 1460 B) and drawn by inverse
// transform from a single uniform variate, so one draw consumes exactly
// one Rng value regardless of the distribution — a fixed seed yields a
// byte-identical draw sequence no matter which mix a scenario selects, and
// shard placement never touches the stream (scenarios precompute every
// draw before the simulation runs, see scenario.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/random.hpp"

namespace tpp::workload {

enum class FlowSizeDist : std::uint8_t {
  WebSearch,   // DCTCP web-search mix
  DataMining,  // VL2 data-mining mix
  Pareto,      // bounded Pareto (shape 1.2 over [2 KB, 1 MB])
  Fixed,       // every flow the same size (incast bursts, shuffles)
};

// "websearch" | "datamining" | "pareto" | "fixed" — returns false on any
// other spelling (scenario parser rejection path).
bool flowSizeDistFromName(std::string_view name, FlowSizeDist& out);
std::string_view flowSizeDistName(FlowSizeDist dist);

// One (size_bytes, cumulative_probability) knot of a piecewise-linear CDF.
// Two consecutive knots with equal size encode a point mass (the
// data-mining mix puts 50% of flows at exactly one packet).
struct CdfPoint {
  double bytes;
  double cum;
};

// Inverse-transform sampler over a piecewise-linear CDF, with every size
// multiplied by `scale` — scenarios scale the empirical mixes down so a
// bounded-runtime simulation keeps the shape (the heavy tail, the
// small-flow mass) without the multi-megabyte absolute sizes.
class FlowSizeSampler {
 public:
  FlowSizeSampler(FlowSizeDist dist, double scale = 1.0,
                  std::uint64_t fixedBytes = 64 * 1024);

  // One flow size in bytes (>= 1), consuming exactly one uniform draw.
  std::uint64_t draw(sim::Rng& rng) const;

  // Analytic moments of the *configured* (scaled) distribution — what the
  // statistical regression test checks 100k empirical draws against, and
  // what load-driven scenarios use to convert offered load into a Poisson
  // arrival rate.
  double meanBytes() const;
  double quantileBytes(double q) const;  // q in [0, 1]

  FlowSizeDist dist() const { return dist_; }
  double scale() const { return scale_; }
  std::span<const CdfPoint> cdf() const { return cdf_; }

 private:
  FlowSizeDist dist_;
  double scale_;
  std::uint64_t fixedBytes_;
  std::vector<CdfPoint> cdf_;  // empty for Pareto/Fixed
};

}  // namespace tpp::workload
