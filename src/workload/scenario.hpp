// Datacenter-scale scenario library: a declarative config format plus a
// data-driven runner, so new large-scale experiments are data, not code.
//
// A scenario file (`.scn`, see examples/scenarios/) names a topology
// (fat-tree k=4..32, chain, star, dumbbell), a TCP workload (Poisson flow
// mix over the web-search/data-mining size distributions of flow_size.hpp,
// sustained incast storms, or an all-to-all shuffle), optional stochastic
// link faults, the TPP task set (per-connection TppTcpController), a shard
// plan, and metric knobs. The runner compiles the workload into a flow
// schedule drawn entirely from the scenario's own seeded Rng *before* the
// simulation starts — shard placement never perturbs a single draw — then
// builds the testbed, runs to completion, and reports flow-completion-time
// percentiles and queue-occupancy statistics.
//
// Determinism contract: at a fixed seed, summaryText() is byte-identical
// run to run AND across shard counts (the physical simulation is
// shard-invariant; only run metadata like events-executed varies), and the
// merged flight-recorder trace is byte-identical run to run at each shard
// count. The determinism wall (`ctest -L determinism`) and the scale suite
// (`ctest -L scale`, via `tppscenario --verify-shards`) enforce both.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.hpp"
#include "src/workload/flow_size.hpp"

namespace tpp::workload {

enum class TopologyType : std::uint8_t { FatTree, Chain, Star, Dumbbell };
enum class TrafficPattern : std::uint8_t { Poisson, Incast, Shuffle };

// Everything a `.scn` file can say. Field defaults are the documented
// config defaults; serializeScenario() emits every field so a round-trip
// is exact.
struct ScenarioConfig {
  // [scenario]
  std::string name = "unnamed";
  std::uint64_t seed = 1;
  std::size_t shards = 1;          // >1 requires a fat-tree topology
  double horizonMs = 5.0;          // workload/metric window; the run itself
                                   // continues until every flow completes

  // [topology]
  TopologyType topology = TopologyType::FatTree;
  std::size_t k = 8;               // fat-tree arity (even, 4..32)
  std::size_t nodes = 3;           // chain switches / star senders /
                                   // dumbbell pairs
  double linkGbps = 10.0;
  double linkDelayUs = 2.0;
  std::uint64_t bufferKb = 256;    // per egress queue
  std::uint64_t ecnThresholdKb = 0;

  // [workload]
  TrafficPattern pattern = TrafficPattern::Poisson;
  FlowSizeDist sizeDist = FlowSizeDist::WebSearch;
  double sizeScale = 1.0;          // multiplies every drawn size
  std::uint64_t fixedKb = 64;      // the `fixed` distribution / burst size
  double load = 0.1;               // fraction of aggregate edge capacity
                                   // (ignored when flowsPerSec > 0)
  double flowsPerSec = 0.0;
  std::size_t maxFlows = 2000;     // schedule cap (also bounds ports)
  std::size_t participants = 0;    // hosts taking part; 0 = all
  std::uint32_t mss = 1000;
  std::size_t fanin = 16;          // incast: senders per storm round
  double periodUs = 500.0;         // incast: round period
  std::size_t rounds = 4;          // incast: storm rounds
  double staggerUs = 10.0;         // shuffle: per-source arrival stagger

  // [tpp]
  bool tppController = false;      // attach TppTcpController to senders
  std::uint64_t queueThresholdKb = 24;
  std::size_t maxControllers = 64; // first N flows get a controller

  // [monitor] — in-switch sketch monitoring (DESIGN.md §14). When sketch is
  // on, every switch gets an SRAM grant for the count-min task, the
  // per-packet update hook installed at the configured sampling stride, and
  // a ground-truth interceptor; the run report then carries the measured
  // (eps, delta) accuracy and heavy-hitter recall.
  bool monitorSketch = false;
  std::size_t sketchRows = 4;        // d (delta = e^-d)
  std::size_t sketchWidth = 64;      // w (eps = e/w)
  std::uint32_t sketchStride = 1;    // hook runs every Nth eligible packet
  std::uint64_t hhThresholdPkts = 64;  // heavy-hitter report threshold

  // [faults]
  double dropRate = 0.0;           // i.i.d. per-packet, every link
  double corruptRate = 0.0;

  // [metrics]
  double queueSampleUs = 100.0;    // queue-occupancy sampling period

  bool operator==(const ScenarioConfig&) const = default;

  // Host count the configured topology will create.
  std::size_t hostCount() const;
  // Participant host indices (stride-spread across the topology).
  std::vector<std::size_t> participantHosts() const;
};

std::string_view topologyTypeName(TopologyType t);
std::string_view trafficPatternName(TrafficPattern p);

// ------------------------------------------------------------------ parse
struct ParsedScenario {
  bool ok = false;
  ScenarioConfig config;
  std::string error;  // "line N: what went wrong" (first error wins)
};

// Parses the `.scn` text: `[section]` headers, `key = value` lines, `#`
// comments. Unknown sections/keys, malformed values and out-of-range
// settings are rejected with the offending line number.
ParsedScenario parseScenario(std::string_view text);
ParsedScenario parseScenarioFile(const std::string& path);

// Canonical form: every field, fixed section/key order. Parsing the output
// reproduces the config exactly (round-trip property).
std::string serializeScenario(const ScenarioConfig& config);

// --------------------------------------------------------------- schedule
// One planned TCP flow. Drawn entirely from the scenario Rng before the
// simulation runs; `src`/`dst` are testbed host indices.
struct FlowPlan {
  sim::Time arrival;
  std::size_t src = 0;
  std::size_t dst = 0;
  std::uint64_t bytes = 0;
};

// The deterministic workload compiler (exposed for the property tests):
// same config, same schedule, byte for byte.
std::vector<FlowPlan> compileSchedule(const ScenarioConfig& config);

// ------------------------------------------------------------------- run
struct ScenarioResult {
  // Topology actually built.
  std::size_t switches = 0;
  std::size_t hosts = 0;
  std::size_t links = 0;
  std::size_t shards = 1;

  // Flow outcomes.
  std::size_t flows = 0;
  std::size_t finished = 0;
  std::size_t failed = 0;
  std::uint64_t bytesOffered = 0;

  // FCT percentiles in microseconds (overall and by size bucket; the
  // bucket boundaries scale with sizeScale like the sizes themselves).
  struct FctStats {
    std::size_t n = 0;
    double p50Us = 0, p95Us = 0, p99Us = 0, meanUs = 0, maxUs = 0;
  };
  FctStats fct;       // all finished flows
  FctStats fctSmall;  // <= 100 KB x sizeScale
  FctStats fctLarge;  // >= 1 MB x sizeScale

  // Queue occupancy: periodic per-port samples across every switch,
  // nonzero samples only (an idle fabric contributes nothing).
  std::uint64_t queueSamples = 0;
  std::uint64_t queueP50Bytes = 0;
  std::uint64_t queueP99Bytes = 0;
  std::uint64_t queueMaxBytes = 0;

  // TPP controller activity (zero when [tpp] controller = off).
  std::uint64_t tppProbesSent = 0;
  std::uint64_t tppCwndCuts = 0;

  // Fault layer activity.
  std::uint64_t faultDrops = 0;
  std::uint64_t faultCorruptions = 0;

  // In-switch sketch monitoring (all zero unless [monitor] sketch = on).
  // One "check" is one (switch, flow) estimate compared against that
  // switch's exact ground-truth count. The bound verdict asserts the
  // count-min guarantees: no underestimates (at stride 1) and at most
  // `monitorViolationsAllowed` estimates above true + eps*N (the analytic
  // tail at delta, with slack for the finite sample).
  std::uint64_t monitorChecks = 0;
  std::uint64_t monitorUnderestimates = 0;
  std::uint64_t monitorEpsViolations = 0;
  std::uint64_t monitorViolationsAllowed = 0;
  bool monitorBoundOk = true;
  std::uint64_t hhTrue = 0;      // flows at >= 2x threshold (per switch)
  std::uint64_t hhMissed = 0;    // true heavy hitters estimated below it
  std::uint64_t hhReported = 0;  // flows whose estimate crossed it
  std::uint64_t hookExecutions = 0;  // sum over switches

  // Run metadata — shard-count-DEPENDENT, excluded from summaryText().
  std::uint64_t eventsExecuted = 0;

  // Content digests over the flow log and the queue samples (FNV-1a 64).
  std::uint64_t flowDigest = 0;
  std::uint64_t queueDigest = 0;

  // The canonical human/machine-readable report: deterministic at a fixed
  // seed across runs AND shard counts. The scale suite compares these
  // byte for byte.
  std::string summaryText(const ScenarioConfig& config) const;
};

struct RunOptions {
  std::size_t shardsOverride = 0;  // 0 = config.shards
  bool captureTrace = false;       // fill ScenarioRun::trace (merged)
  std::size_t traceRing = 1u << 14;
};

struct ScenarioRun {
  ScenarioResult result;
  std::vector<std::uint8_t> trace;  // empty unless captureTrace
};

// Builds the testbed, runs the scenario to completion (every flow closed
// or failed), and aggregates the metrics. The config must have passed
// parsing/validation — programmatically built configs can be re-checked by
// round-tripping through parseScenario(serializeScenario(c)).
ScenarioRun runScenario(const ScenarioConfig& config,
                        const RunOptions& options = {});

}  // namespace tpp::workload
