#include "src/workload/flow_size.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tpp::workload {
namespace {

// The pFabric encodings of the two production mixes, knots in (packets of
// 1460 B, cumulative probability). Converted to bytes at construction.
constexpr double kPacketBytes = 1460.0;

constexpr CdfPoint kWebSearch[] = {
    {1, 0.0},  {6, 0.15},    {13, 0.2},   {19, 0.3},
    {33, 0.4}, {53, 0.53},   {133, 0.6},  {667, 0.7},
    {1333, 0.8}, {3333, 0.9}, {6667, 0.97}, {20000, 1.0},
};

// The repeated first knot is a point mass: half of all data-mining flows
// are a single packet.
constexpr CdfPoint kDataMining[] = {
    {1, 0.0},    {1, 0.5},     {2, 0.6},      {3, 0.7},
    {7, 0.8},    {267, 0.9},   {2107, 0.95},  {66667, 0.98},
    {666667, 1.0},
};

constexpr double kParetoShape = 1.2;
constexpr double kParetoLo = 2.0 * 1024;
constexpr double kParetoHi = 1024.0 * 1024;

double paretoBoundedQuantile(double q) {
  // Inverse CDF of the bounded Pareto on [lo, hi].
  const double la = std::pow(kParetoLo, kParetoShape);
  const double ha = std::pow(kParetoHi, kParetoShape);
  return std::pow(-(q * ha - q * la - ha) / (ha * la), -1.0 / kParetoShape);
}

}  // namespace

bool flowSizeDistFromName(std::string_view name, FlowSizeDist& out) {
  if (name == "websearch") out = FlowSizeDist::WebSearch;
  else if (name == "datamining") out = FlowSizeDist::DataMining;
  else if (name == "pareto") out = FlowSizeDist::Pareto;
  else if (name == "fixed") out = FlowSizeDist::Fixed;
  else return false;
  return true;
}

std::string_view flowSizeDistName(FlowSizeDist dist) {
  switch (dist) {
    case FlowSizeDist::WebSearch: return "websearch";
    case FlowSizeDist::DataMining: return "datamining";
    case FlowSizeDist::Pareto: return "pareto";
    case FlowSizeDist::Fixed: return "fixed";
  }
  return "?";
}

FlowSizeSampler::FlowSizeSampler(FlowSizeDist dist, double scale,
                                 std::uint64_t fixedBytes)
    : dist_(dist), scale_(scale > 0 ? scale : 1.0), fixedBytes_(fixedBytes) {
  const auto load = [this](std::span<const CdfPoint> knots) {
    cdf_.reserve(knots.size());
    for (const CdfPoint& p : knots) {
      cdf_.push_back({p.bytes * kPacketBytes, p.cum});
    }
  };
  if (dist == FlowSizeDist::WebSearch) load(kWebSearch);
  if (dist == FlowSizeDist::DataMining) load(kDataMining);
}

std::uint64_t FlowSizeSampler::draw(sim::Rng& rng) const {
  // Exactly one uniform per draw, for every distribution, so swapping the
  // mix in a scenario config never desynchronizes other substreams.
  const double u = rng.uniform(0.0, 1.0);
  const double bytes = quantileBytes(u);
  return bytes < 1.0 ? 1 : static_cast<std::uint64_t>(bytes);
}

double FlowSizeSampler::meanBytes() const {
  switch (dist_) {
    case FlowSizeDist::Fixed:
      return static_cast<double>(fixedBytes_) * scale_;
    case FlowSizeDist::Pareto: {
      // E[X] of the bounded Pareto, shape != 1.
      const double a = kParetoShape;
      const double la = std::pow(kParetoLo, a);
      const double num = la * a / (a - 1) *
                         (1 / std::pow(kParetoLo, a - 1) -
                          1 / std::pow(kParetoHi, a - 1));
      return num / (1 - std::pow(kParetoLo / kParetoHi, a)) * scale_;
    }
    case FlowSizeDist::WebSearch:
    case FlowSizeDist::DataMining:
      break;
  }
  // Piecewise-linear CDF: E[X] = sum over segments of dF x midpoint.
  double mean = 0;
  for (std::size_t i = 1; i < cdf_.size(); ++i) {
    mean += (cdf_[i].cum - cdf_[i - 1].cum) *
            (cdf_[i].bytes + cdf_[i - 1].bytes) / 2.0;
  }
  return mean * scale_;
}

double FlowSizeSampler::quantileBytes(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  switch (dist_) {
    case FlowSizeDist::Fixed:
      return static_cast<double>(fixedBytes_) * scale_;
    case FlowSizeDist::Pareto:
      return paretoBoundedQuantile(q) * scale_;
    case FlowSizeDist::WebSearch:
    case FlowSizeDist::DataMining:
      break;
  }
  assert(!cdf_.empty());
  for (std::size_t i = 1; i < cdf_.size(); ++i) {
    const CdfPoint& a = cdf_[i - 1];
    const CdfPoint& b = cdf_[i];
    if (q > b.cum) continue;
    // Point mass (equal sizes) or degenerate probability step: no
    // interpolation possible or needed.
    if (b.cum <= a.cum || b.bytes <= a.bytes) return b.bytes * scale_;
    const double frac = (q - a.cum) / (b.cum - a.cum);
    return (a.bytes + frac * (b.bytes - a.bytes)) * scale_;
  }
  return cdf_.back().bytes * scale_;
}

}  // namespace tpp::workload
