#include "src/workload/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <utility>

#include "src/apps/task_ids.hpp"
#include "src/apps/tpp_tcp.hpp"
#include "src/host/tcp.hpp"
#include "src/monitor/ground_truth.hpp"
#include "src/monitor/sketch.hpp"
#include "src/host/telemetry.hpp"
#include "src/host/topology.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/random.hpp"
#include "src/workload/generators.hpp"

namespace tpp::workload {
namespace {

// Fixed port plan: every destination host listens on kServerPort; flow f
// binds local port kBasePort + f (maxFlows <= 20000 keeps the range clear
// of the listener port and the 16-bit ceiling).
constexpr std::uint16_t kServerPort = 23000;
constexpr std::uint32_t kBasePort = 24000;

// FNV-1a 64 over little-endian u64s — the digest primitive for the flow
// log and the queue samples.
struct Fnv64 {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
};

}  // namespace

std::string_view topologyTypeName(TopologyType t) {
  switch (t) {
    case TopologyType::FatTree: return "fattree";
    case TopologyType::Chain: return "chain";
    case TopologyType::Star: return "star";
    case TopologyType::Dumbbell: return "dumbbell";
  }
  return "?";
}

std::string_view trafficPatternName(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::Poisson: return "poisson";
    case TrafficPattern::Incast: return "incast";
    case TrafficPattern::Shuffle: return "shuffle";
  }
  return "?";
}

std::size_t ScenarioConfig::hostCount() const {
  switch (topology) {
    case TopologyType::FatTree: return k * (k / 2) * (k / 2);
    case TopologyType::Chain: return 2;
    case TopologyType::Star: return nodes + 1;  // senders + receiver
    case TopologyType::Dumbbell: return 2 * nodes;
  }
  return 0;
}

std::vector<std::size_t> ScenarioConfig::participantHosts() const {
  const std::size_t total = hostCount();
  std::size_t n = participants == 0 ? total : std::min(participants, total);
  std::vector<std::size_t> out;
  out.reserve(n);
  if (n == 0) return out;
  // Stride-spread so a subset still spans pods/edges instead of clustering
  // under one switch.
  const std::size_t stride = std::max<std::size_t>(1, total / n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(i * stride);
  return out;
}

// ------------------------------------------------------------------ parse

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

// The parser's working state: the config under construction plus, for the
// cross-field checks, the line each relevant key was set on (0 = default).
struct ParseCtx {
  ScenarioConfig c;
  int line = 0;  // current line, for error attribution
  std::string error;

  int lineShards = 0;
  int linePattern = 0;
  int lineParticipants = 0;
  int lineMaxFlows = 0;
  int lineFanin = 0;
  int lineTopology = 0;

  bool fail(const std::string& what, int at = -1) {
    if (error.empty()) {
      error = "line " + std::to_string(at < 0 ? line : at) + ": " + what;
    }
    return false;
  }
};

bool parseU64(ParseCtx& ctx, std::string_view key, std::string_view v,
              std::uint64_t& out, std::uint64_t lo, std::uint64_t hi) {
  std::uint64_t x = 0;
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), x);
  if (ec != std::errc{} || p != v.data() + v.size()) {
    return ctx.fail(std::string(key) + ": not an integer: '" +
                    std::string(v) + "'");
  }
  if (x < lo || x > hi) {
    return ctx.fail(std::string(key) + ": " + std::to_string(x) +
                    " out of range [" + std::to_string(lo) + ", " +
                    std::to_string(hi) + "]");
  }
  out = x;
  return true;
}

bool parseSize(ParseCtx& ctx, std::string_view key, std::string_view v,
               std::size_t& out, std::uint64_t lo, std::uint64_t hi) {
  std::uint64_t x = 0;
  if (!parseU64(ctx, key, v, x, lo, hi)) return false;
  out = static_cast<std::size_t>(x);
  return true;
}

bool parseF64(ParseCtx& ctx, std::string_view key, std::string_view v,
              double& out, double lo, double hi) {
  double x = 0;
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), x);
  if (ec != std::errc{} || p != v.data() + v.size() || !std::isfinite(x)) {
    return ctx.fail(std::string(key) + ": not a number: '" + std::string(v) +
                    "'");
  }
  if (x < lo || x > hi) {
    return ctx.fail(std::string(key) + ": value out of range [" +
                    std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  out = x;
  return true;
}

bool parseOnOff(ParseCtx& ctx, std::string_view key, std::string_view v,
                bool& out) {
  if (v == "on") out = true;
  else if (v == "off") out = false;
  else return ctx.fail(std::string(key) + ": expected on|off, got '" +
                       std::string(v) + "'");
  return true;
}

bool handleScenarioKey(ParseCtx& ctx, std::string_view key,
                       std::string_view v) {
  ScenarioConfig& c = ctx.c;
  if (key == "name") {
    if (v.empty()) return ctx.fail("name: must be non-empty");
    for (char ch : v) {
      const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '_' || ch == '-' ||
                      ch == '.';
      if (!ok) {
        return ctx.fail(
            "name: only [A-Za-z0-9_.-] allowed, got '" + std::string(v) + "'");
      }
    }
    c.name = std::string(v);
    return true;
  }
  if (key == "seed") {
    return parseU64(ctx, key, v, c.seed, 0, UINT64_MAX);
  }
  if (key == "shards") {
    ctx.lineShards = ctx.line;
    return parseSize(ctx, key, v, c.shards, 1, 64);
  }
  if (key == "horizon_ms") {
    return parseF64(ctx, key, v, c.horizonMs, 0.001, 10000.0);
  }
  return ctx.fail("unknown key '" + std::string(key) + "' in [scenario]");
}

bool handleTopologyKey(ParseCtx& ctx, std::string_view key,
                       std::string_view v) {
  ScenarioConfig& c = ctx.c;
  if (key == "type") {
    ctx.lineTopology = ctx.line;
    if (v == "fattree") c.topology = TopologyType::FatTree;
    else if (v == "chain") c.topology = TopologyType::Chain;
    else if (v == "star") c.topology = TopologyType::Star;
    else if (v == "dumbbell") c.topology = TopologyType::Dumbbell;
    else return ctx.fail(
        "type: expected fattree|chain|star|dumbbell, got '" + std::string(v) +
        "'");
    return true;
  }
  if (key == "k") {
    if (!parseSize(ctx, key, v, c.k, 4, 32)) return false;
    if (c.k % 2 != 0) {
      return ctx.fail("k: fat-tree arity must be even, got " +
                      std::to_string(c.k));
    }
    return true;
  }
  if (key == "nodes") return parseSize(ctx, key, v, c.nodes, 1, 512);
  if (key == "link_gbps") return parseF64(ctx, key, v, c.linkGbps, 0.001, 400.0);
  if (key == "link_delay_us") {
    return parseF64(ctx, key, v, c.linkDelayUs, 0.01, 10000.0);
  }
  if (key == "buffer_kb") return parseU64(ctx, key, v, c.bufferKb, 1, 1 << 20);
  if (key == "ecn_threshold_kb") {
    return parseU64(ctx, key, v, c.ecnThresholdKb, 0, 1 << 20);
  }
  return ctx.fail("unknown key '" + std::string(key) + "' in [topology]");
}

bool handleWorkloadKey(ParseCtx& ctx, std::string_view key,
                       std::string_view v) {
  ScenarioConfig& c = ctx.c;
  if (key == "pattern") {
    ctx.linePattern = ctx.line;
    if (v == "poisson") c.pattern = TrafficPattern::Poisson;
    else if (v == "incast") c.pattern = TrafficPattern::Incast;
    else if (v == "shuffle") c.pattern = TrafficPattern::Shuffle;
    else return ctx.fail("pattern: expected poisson|incast|shuffle, got '" +
                         std::string(v) + "'");
    return true;
  }
  if (key == "size_dist") {
    if (!flowSizeDistFromName(v, c.sizeDist)) {
      return ctx.fail(
          "size_dist: expected websearch|datamining|pareto|fixed, got '" +
          std::string(v) + "'");
    }
    return true;
  }
  if (key == "size_scale") {
    return parseF64(ctx, key, v, c.sizeScale, 1e-6, 1000.0);
  }
  if (key == "fixed_kb") return parseU64(ctx, key, v, c.fixedKb, 1, 1 << 20);
  if (key == "load") return parseF64(ctx, key, v, c.load, 0.0, 1.0);
  if (key == "flows_per_sec") {
    return parseF64(ctx, key, v, c.flowsPerSec, 0.0, 1e9);
  }
  if (key == "max_flows") {
    ctx.lineMaxFlows = ctx.line;
    return parseSize(ctx, key, v, c.maxFlows, 1, 20000);
  }
  if (key == "participants") {
    ctx.lineParticipants = ctx.line;
    return parseSize(ctx, key, v, c.participants, 0, 1 << 20);
  }
  if (key == "mss") {
    std::size_t mss = 0;
    if (!parseSize(ctx, key, v, mss, 100, 9000)) return false;
    c.mss = static_cast<std::uint32_t>(mss);
    return true;
  }
  if (key == "fanin") {
    ctx.lineFanin = ctx.line;
    return parseSize(ctx, key, v, c.fanin, 1, 4096);
  }
  if (key == "period_us") {
    return parseF64(ctx, key, v, c.periodUs, 0.1, 1e6);
  }
  if (key == "rounds") return parseSize(ctx, key, v, c.rounds, 1, 10000);
  if (key == "stagger_us") {
    return parseF64(ctx, key, v, c.staggerUs, 0.0, 1e6);
  }
  return ctx.fail("unknown key '" + std::string(key) + "' in [workload]");
}

bool handleTppKey(ParseCtx& ctx, std::string_view key, std::string_view v) {
  ScenarioConfig& c = ctx.c;
  if (key == "controller") return parseOnOff(ctx, key, v, c.tppController);
  if (key == "queue_threshold_kb") {
    return parseU64(ctx, key, v, c.queueThresholdKb, 1, 1 << 20);
  }
  if (key == "max_controllers") {
    return parseSize(ctx, key, v, c.maxControllers, 0, 20000);
  }
  return ctx.fail("unknown key '" + std::string(key) + "' in [tpp]");
}

bool handleMonitorKey(ParseCtx& ctx, std::string_view key,
                      std::string_view v) {
  ScenarioConfig& c = ctx.c;
  if (key == "sketch") return parseOnOff(ctx, key, v, c.monitorSketch);
  if (key == "rows") return parseSize(ctx, key, v, c.sketchRows, 1, 8);
  if (key == "width") return parseSize(ctx, key, v, c.sketchWidth, 2, 1024);
  if (key == "stride") {
    std::size_t stride = 0;
    if (!parseSize(ctx, key, v, stride, 1, 64)) return false;
    c.sketchStride = static_cast<std::uint32_t>(stride);
    return true;
  }
  if (key == "hh_threshold") {
    return parseU64(ctx, key, v, c.hhThresholdPkts, 1, 1 << 20);
  }
  return ctx.fail("unknown key '" + std::string(key) + "' in [monitor]");
}

bool handleFaultsKey(ParseCtx& ctx, std::string_view key, std::string_view v) {
  ScenarioConfig& c = ctx.c;
  if (key == "drop_rate") return parseF64(ctx, key, v, c.dropRate, 0.0, 0.5);
  if (key == "corrupt_rate") {
    return parseF64(ctx, key, v, c.corruptRate, 0.0, 0.5);
  }
  return ctx.fail("unknown key '" + std::string(key) + "' in [faults]");
}

bool handleMetricsKey(ParseCtx& ctx, std::string_view key,
                      std::string_view v) {
  if (key == "queue_sample_us") {
    return parseF64(ctx, key, v, ctx.c.queueSampleUs, 1.0, 1e5);
  }
  return ctx.fail("unknown key '" + std::string(key) + "' in [metrics]");
}

// The cross-field checks a single key's range test cannot express. Errors
// are attributed to the line that set the offending value (line 1 when it
// was a default interacting badly with an explicit setting elsewhere).
bool validate(ParseCtx& ctx) {
  const ScenarioConfig& c = ctx.c;
  const auto at = [](int line) { return line > 0 ? line : 1; };
  if (c.shards > 1 && c.topology != TopologyType::FatTree) {
    return ctx.fail("shards > 1 requires a fat-tree topology (only the "
                    "fat tree has a shard partition)",
                    at(ctx.lineShards));
  }
  const std::size_t hosts = c.hostCount();
  if (c.participants > hosts) {
    return ctx.fail("participants: " + std::to_string(c.participants) +
                    " exceeds the topology's " + std::to_string(hosts) +
                    " hosts",
                    at(ctx.lineParticipants));
  }
  const std::size_t p = c.participants == 0 ? hosts : c.participants;
  if (p < 2) {
    return ctx.fail("workload needs at least 2 participant hosts, have " +
                    std::to_string(p),
                    at(ctx.lineParticipants));
  }
  if (c.pattern == TrafficPattern::Incast && c.fanin > p - 1) {
    return ctx.fail("fanin: " + std::to_string(c.fanin) +
                    " exceeds the " + std::to_string(p - 1) +
                    " available senders (participants minus the receiver)",
                    at(ctx.lineFanin));
  }
  if (c.pattern == TrafficPattern::Shuffle && p * (p - 1) > c.maxFlows) {
    return ctx.fail("shuffle needs participants*(participants-1) = " +
                    std::to_string(p * (p - 1)) +
                    " flows, above max_flows = " + std::to_string(c.maxFlows),
                    at(ctx.lineMaxFlows));
  }
  return true;
}

}  // namespace

ParsedScenario parseScenario(std::string_view text) {
  ParsedScenario out;
  ParseCtx ctx;

  enum class Section {
    None, Scenario, Topology, Workload, Tpp, Monitor, Faults, Metrics
  };
  Section section = Section::None;

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++ctx.line;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        ctx.fail("unterminated section header");
        break;
      }
      const std::string_view name = line.substr(1, line.size() - 2);
      if (name == "scenario") section = Section::Scenario;
      else if (name == "topology") section = Section::Topology;
      else if (name == "workload") section = Section::Workload;
      else if (name == "tpp") section = Section::Tpp;
      else if (name == "monitor") section = Section::Monitor;
      else if (name == "faults") section = Section::Faults;
      else if (name == "metrics") section = Section::Metrics;
      else {
        ctx.fail("unknown section [" + std::string(name) + "]");
        break;
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      ctx.fail("expected 'key = value', got '" + std::string(line) + "'");
      break;
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      ctx.fail("empty key");
      break;
    }

    bool ok = false;
    switch (section) {
      case Section::None:
        ok = ctx.fail("'" + std::string(key) +
                      "' before any [section] header");
        break;
      case Section::Scenario: ok = handleScenarioKey(ctx, key, value); break;
      case Section::Topology: ok = handleTopologyKey(ctx, key, value); break;
      case Section::Workload: ok = handleWorkloadKey(ctx, key, value); break;
      case Section::Tpp: ok = handleTppKey(ctx, key, value); break;
      case Section::Monitor: ok = handleMonitorKey(ctx, key, value); break;
      case Section::Faults: ok = handleFaultsKey(ctx, key, value); break;
      case Section::Metrics: ok = handleMetricsKey(ctx, key, value); break;
    }
    if (!ok) break;
  }

  if (ctx.error.empty()) validate(ctx);
  if (!ctx.error.empty()) {
    out.error = ctx.error;
    return out;
  }
  out.ok = true;
  out.config = std::move(ctx.c);
  return out;
}

ParsedScenario parseScenarioFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ParsedScenario out;
    out.error = "cannot open '" + path + "'";
    return out;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parseScenario(ss.str());
}

namespace {

// Shortest round-trip decimal for a double (std::to_chars general form):
// serialize → parse reproduces the exact bits, which the round-trip
// property test leans on.
std::string fmtDouble(double v) {
  char buf[64];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  assert(ec == std::errc{});
  return std::string(buf, p);
}

}  // namespace

std::string serializeScenario(const ScenarioConfig& c) {
  std::string s;
  s.reserve(1024);
  const auto kv = [&s](std::string_view key, const std::string& v) {
    s += key;
    s += " = ";
    s += v;
    s += '\n';
  };
  const auto kvU = [&](std::string_view key, std::uint64_t v) {
    kv(key, std::to_string(v));
  };
  const auto kvF = [&](std::string_view key, double v) {
    kv(key, fmtDouble(v));
  };

  s += "[scenario]\n";
  kv("name", c.name);
  kvU("seed", c.seed);
  kvU("shards", c.shards);
  kvF("horizon_ms", c.horizonMs);
  s += "\n[topology]\n";
  kv("type", std::string(topologyTypeName(c.topology)));
  kvU("k", c.k);
  kvU("nodes", c.nodes);
  kvF("link_gbps", c.linkGbps);
  kvF("link_delay_us", c.linkDelayUs);
  kvU("buffer_kb", c.bufferKb);
  kvU("ecn_threshold_kb", c.ecnThresholdKb);
  s += "\n[workload]\n";
  kv("pattern", std::string(trafficPatternName(c.pattern)));
  kv("size_dist", std::string(flowSizeDistName(c.sizeDist)));
  kvF("size_scale", c.sizeScale);
  kvU("fixed_kb", c.fixedKb);
  kvF("load", c.load);
  kvF("flows_per_sec", c.flowsPerSec);
  kvU("max_flows", c.maxFlows);
  kvU("participants", c.participants);
  kvU("mss", c.mss);
  kvU("fanin", c.fanin);
  kvF("period_us", c.periodUs);
  kvU("rounds", c.rounds);
  kvF("stagger_us", c.staggerUs);
  s += "\n[tpp]\n";
  kv("controller", c.tppController ? "on" : "off");
  kvU("queue_threshold_kb", c.queueThresholdKb);
  kvU("max_controllers", c.maxControllers);
  s += "\n[monitor]\n";
  kv("sketch", c.monitorSketch ? "on" : "off");
  kvU("rows", c.sketchRows);
  kvU("width", c.sketchWidth);
  kvU("stride", c.sketchStride);
  kvU("hh_threshold", c.hhThresholdPkts);
  s += "\n[faults]\n";
  kvF("drop_rate", c.dropRate);
  kvF("corrupt_rate", c.corruptRate);
  s += "\n[metrics]\n";
  kvF("queue_sample_us", c.queueSampleUs);
  return s;
}

// --------------------------------------------------------------- schedule

std::vector<FlowPlan> compileSchedule(const ScenarioConfig& c) {
  std::vector<FlowPlan> plans;
  const std::vector<std::size_t> hosts = c.participantHosts();
  if (hosts.size() < 2) return plans;

  // One named substream for the whole workload; per-flow draw order is
  // fixed (arrival-gap/jitter, endpoints, size) so a config edit that only
  // changes the pattern still replays identical sizes per position.
  sim::Rng rng = sim::Rng(c.seed).fork("scenario.workload");
  const FlowSizeSampler sampler(c.sizeDist, c.sizeScale, c.fixedKb * 1024);
  const sim::Time horizon = sim::Time::seconds(c.horizonMs * 1e-3);

  switch (c.pattern) {
    case TrafficPattern::Poisson: {
      // Offered load = load x aggregate participant edge capacity, unless
      // an explicit arrival rate overrides it.
      double rate = c.flowsPerSec;
      if (rate <= 0) {
        rate = c.load * static_cast<double>(hosts.size()) * c.linkGbps * 1e9 /
               (8.0 * sampler.meanBytes());
      }
      sim::Time t = sim::Time::zero();
      while (plans.size() < c.maxFlows) {
        t += sim::Time::seconds(rng.exponential(1.0 / rate));
        if (t >= horizon) break;
        const auto src = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(hosts.size()) - 1));
        auto dst = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(hosts.size()) - 2));
        if (dst >= src) ++dst;
        plans.push_back({t, hosts[src], hosts[dst], sampler.draw(rng)});
      }
      break;
    }
    case TrafficPattern::Incast: {
      // Participant 0 is the storm's victim; senders rotate through the
      // rest so sustained storms exercise many edge uplinks.
      const std::size_t receiver = hosts[0];
      const std::size_t senders = hosts.size() - 1;
      for (std::size_t round = 0; round < c.rounds; ++round) {
        const sim::Time base =
            sim::Time::seconds(static_cast<double>(round) * c.periodUs * 1e-6);
        for (std::size_t i = 0; i < c.fanin; ++i) {
          if (plans.size() >= c.maxFlows) return plans;
          const double jitterUs = rng.uniform(0.0, c.staggerUs);
          const std::size_t s = 1 + (round * c.fanin + i) % senders;
          plans.push_back({base + sim::Time::seconds(jitterUs * 1e-6),
                           hosts[s], receiver, sampler.draw(rng)});
        }
      }
      break;
    }
    case TrafficPattern::Shuffle: {
      // All ordered pairs; each source's flows start at src_index x
      // stagger (the classic staggered all-to-all).
      for (std::size_t s = 0; s < hosts.size(); ++s) {
        const sim::Time at =
            sim::Time::seconds(static_cast<double>(s) * c.staggerUs * 1e-6);
        for (std::size_t d = 0; d < hosts.size(); ++d) {
          if (d == s) continue;
          if (plans.size() >= c.maxFlows) return plans;
          plans.push_back({at, hosts[s], hosts[d], sampler.draw(rng)});
        }
      }
      break;
    }
  }
  return plans;
}

// ------------------------------------------------------------------- run

namespace {

// Periodic per-switch queue-occupancy sampler, scheduled on the switch's
// own shard simulator so sharded runs need no cross-shard reads. Samples
// are (sample index, total queued bytes across ports), nonzero only.
struct SwitchSampler {
  asic::Switch* sw = nullptr;
  sim::Simulator* sim = nullptr;
  sim::Time period;
  sim::Time until;
  std::size_t ports = 0;
  std::uint64_t idx = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> samples;

  void tick() {
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < ports; ++p) {
      total += sw->portStats(p).queuedBytesNow;
    }
    if (total != 0) samples.emplace_back(idx, total);
    ++idx;
    const sim::Time next = sim->now() + period;
    if (next <= until) sim->scheduleAt(next, [this] { tick(); });
  }
};

double percentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  // Nearest-rank: deterministic, no interpolation surprises.
  const auto n = static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n));
  idx = idx == 0 ? 0 : idx - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

ScenarioResult::FctStats fctStatsOf(std::vector<double> us) {
  ScenarioResult::FctStats st;
  st.n = us.size();
  if (us.empty()) return st;
  std::sort(us.begin(), us.end());
  double sum = 0;
  for (double v : us) sum += v;
  st.meanUs = sum / static_cast<double>(us.size());
  st.maxUs = us.back();
  st.p50Us = percentileSorted(us, 0.50);
  st.p95Us = percentileSorted(us, 0.95);
  st.p99Us = percentileSorted(us, 0.99);
  return st;
}

void appendFct(std::string& s, const char* label,
               const ScenarioResult::FctStats& st) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%s n=%zu p50=%.3fus p95=%.3fus p99=%.3fus mean=%.3fus "
                "max=%.3fus\n",
                label, st.n, st.p50Us, st.p95Us, st.p99Us, st.meanUs,
                st.maxUs);
  s += buf;
}

}  // namespace

std::string ScenarioResult::summaryText(const ScenarioConfig& c) const {
  // Everything here is a physical observable or drawn schedule — invariant
  // across shard counts at a fixed seed. Run metadata (events executed,
  // shard count) deliberately stays out.
  std::string s;
  s.reserve(1024);
  char buf[256];
  std::snprintf(buf, sizeof buf, "scenario %s seed=%llu\n", c.name.c_str(),
                static_cast<unsigned long long>(c.seed));
  s += buf;
  std::snprintf(buf, sizeof buf,
                "topology %s: %zu switches, %zu hosts, %zu links\n",
                std::string(topologyTypeName(c.topology)).c_str(), switches,
                hosts, links);
  s += buf;
  std::snprintf(buf, sizeof buf,
                "workload %s/%s: %zu flows, %llu bytes offered\n",
                std::string(trafficPatternName(c.pattern)).c_str(),
                std::string(flowSizeDistName(c.sizeDist)).c_str(), flows,
                static_cast<unsigned long long>(bytesOffered));
  s += buf;
  std::snprintf(buf, sizeof buf, "flows: %zu finished, %zu failed\n",
                finished, failed);
  s += buf;
  appendFct(s, "fct_all", fct);
  appendFct(s, "fct_small", fctSmall);
  appendFct(s, "fct_large", fctLarge);
  std::snprintf(buf, sizeof buf,
                "queue nonzero_samples=%llu p50=%lluB p99=%lluB max=%lluB\n",
                static_cast<unsigned long long>(queueSamples),
                static_cast<unsigned long long>(queueP50Bytes),
                static_cast<unsigned long long>(queueP99Bytes),
                static_cast<unsigned long long>(queueMaxBytes));
  s += buf;
  std::snprintf(buf, sizeof buf, "tpp probes=%llu cwnd_cuts=%llu\n",
                static_cast<unsigned long long>(tppProbesSent),
                static_cast<unsigned long long>(tppCwndCuts));
  s += buf;
  std::snprintf(buf, sizeof buf, "faults drops=%llu corruptions=%llu\n",
                static_cast<unsigned long long>(faultDrops),
                static_cast<unsigned long long>(faultCorruptions));
  s += buf;
  if (c.monitorSketch) {
    const double recall =
        hhTrue == 0 ? 100.0
                    : 100.0 * static_cast<double>(hhTrue - hhMissed) /
                          static_cast<double>(hhTrue);
    std::snprintf(buf, sizeof buf,
                  "monitor sketch rows=%zu width=%zu stride=%lu checks=%llu "
                  "underest=%llu eps_violations=%llu allowed=%llu bound=%s\n",
                  c.sketchRows, c.sketchWidth,
                  static_cast<unsigned long>(c.sketchStride),
                  static_cast<unsigned long long>(monitorChecks),
                  static_cast<unsigned long long>(monitorUnderestimates),
                  static_cast<unsigned long long>(monitorEpsViolations),
                  static_cast<unsigned long long>(monitorViolationsAllowed),
                  monitorBoundOk ? "ok" : "VIOLATED");
    s += buf;
    std::snprintf(buf, sizeof buf,
                  "monitor hh threshold=%llu true=%llu reported=%llu "
                  "recall=%.1f%% hooks=%llu\n",
                  static_cast<unsigned long long>(c.hhThresholdPkts),
                  static_cast<unsigned long long>(hhTrue),
                  static_cast<unsigned long long>(hhReported), recall,
                  static_cast<unsigned long long>(hookExecutions));
    s += buf;
  }
  std::snprintf(buf, sizeof buf, "digest flow=%016llx queue=%016llx\n",
                static_cast<unsigned long long>(flowDigest),
                static_cast<unsigned long long>(queueDigest));
  s += buf;
  return s;
}

ScenarioRun runScenario(const ScenarioConfig& c, const RunOptions& options) {
  ScenarioRun run;
  ScenarioResult& res = run.result;

  std::size_t shards =
      options.shardsOverride != 0 ? options.shardsOverride : c.shards;
  if (c.topology != TopologyType::FatTree) shards = 1;

  host::ShardPlan plan;
  if (shards > 1) plan = host::partitionFatTree(c.k, shards);
  host::Testbed tb(shards > 1 ? plan : host::ShardPlan{});

  asic::SwitchConfig swCfg;
  swCfg.bufferPerQueueBytes = c.bufferKb * 1024;
  if (c.ecnThresholdKb != 0) swCfg.ecnThresholdBytes = c.ecnThresholdKb * 1024;
  swCfg.hookStride = c.sketchStride;
  host::LinkParams lp;
  lp.rateBps = static_cast<std::uint64_t>(c.linkGbps * 1e9);
  lp.delay = sim::Time::seconds(c.linkDelayUs * 1e-6);

  std::size_t switchPorts = 0;
  switch (c.topology) {
    case TopologyType::FatTree:
      host::buildFatTree(tb, c.k, lp, swCfg);
      switchPorts = c.k;
      break;
    case TopologyType::Chain:
      host::buildChain(tb, c.nodes, lp, swCfg);
      switchPorts = std::max<std::size_t>(swCfg.ports, 2);
      break;
    case TopologyType::Star:
      host::buildStar(tb, c.nodes, lp, swCfg);
      switchPorts = std::max<std::size_t>(swCfg.ports, c.nodes + 1);
      break;
    case TopologyType::Dumbbell:
      host::buildDumbbell(tb, c.nodes, lp, lp, swCfg);
      switchPorts = std::max<std::size_t>(swCfg.ports, c.nodes + 1);
      break;
  }
  res.switches = tb.switchCount();
  res.hosts = tb.hostCount();
  res.links = tb.linkCount();
  res.shards = shards;

  // ---------------------------------------------------------- fault layer
  // Substreams are named by link index + direction, so decisions depend
  // only on (seed, link) and the physical transmit order — shard-invariant.
  sim::FaultInjector faults(tb.sim(), c.seed);
  if (c.dropRate > 0 || c.corruptRate > 0) {
    const sim::LinkFaultPlan fp{c.dropRate, c.corruptRate};
    for (std::size_t i = 0; i < tb.linkCount(); ++i) {
      auto& ab = faults.link("link" + std::to_string(i) + ":ab", fp);
      auto& ba = faults.link("link" + std::to_string(i) + ":ba", fp);
      tb.linkAt(i).aToB().setFaultState(&ab);
      tb.linkAt(i).bToA().setFaultState(&ba);
    }
  }

  // ------------------------------------------------------ sketch monitor
  // Per switch: an SRAM grant for the sketch task (switching the allocator
  // to enforcing mode — the hook runs under exactly the isolation carried
  // TPPs get), the resident update hook, and the exact ground-truth
  // counter on the same enqueue path.
  const monitor::SketchConfig sketchCfg{
      .taskId = apps::kTaskSketch,
      .rows = static_cast<std::uint32_t>(c.sketchRows),
      .width = static_cast<std::uint32_t>(c.sketchWidth)};
  const monitor::CountMinSketch sketch(sketchCfg);
  std::vector<std::unique_ptr<monitor::GroundTruthCounter>> truth;
  std::vector<std::uint16_t> sketchBases;
  if (c.monitorSketch) {
    for (std::size_t s = 0; s < tb.switchCount(); ++s) {
      asic::Switch& sw = tb.sw(s);
      std::string whyNot;
      const auto grant = sw.sramAllocator().allocate(
          sketchCfg.taskId, sketch.words(), core::StatNamespace::Sram,
          &whyNot);
      assert(grant && "sketch grant must fit the scratch SRAM");
      const std::uint16_t base = grant->baseAddress();
      sw.scratchWrite(
          static_cast<std::uint16_t>(base + monitor::CountMinSketch::kThresholdWord),
          static_cast<std::uint32_t>(c.hhThresholdPkts));
      sw.installHook(sketch.updateHook(base));
      auto gt = std::make_unique<monitor::GroundTruthCounter>();
      sw.setEgressInterceptor(gt.get());
      truth.push_back(std::move(gt));
      sketchBases.push_back(base);
    }
  }

  // ------------------------------------------------------ flight recorder
  std::unique_ptr<host::ShardedTrace> trace;
  if (options.captureTrace) {
    trace = std::make_unique<host::ShardedTrace>(tb.sharded().shardCount(),
                                                 options.traceRing);
    host::armTracing(tb, *trace);
  }

  // ------------------------------------------------------------- workload
  const std::vector<FlowPlan> plans = compileSchedule(c);

  host::TcpConnection::Config connCfg;
  connCfg.mss = c.mss;

  std::vector<char> isDst(tb.hostCount(), 0);
  for (const FlowPlan& p : plans) isDst[p.dst] = 1;
  std::vector<std::unique_ptr<host::TcpListener>> listeners;
  for (std::size_t h = 0; h < tb.hostCount(); ++h) {
    if (isDst[h] != 0) {
      listeners.push_back(std::make_unique<host::TcpListener>(
          tb.host(h), kServerPort, connCfg));
    }
  }

  struct FlowState {
    TcpFlowRecord rec;
    std::unique_ptr<host::TcpConnection> conn;
    std::unique_ptr<apps::TppTcpController> ctrl;
  };
  std::vector<FlowState> flows(plans.size());

  apps::TppTcpController::Config ctrlCfg;
  ctrlCfg.queueThresholdBytes =
      static_cast<std::uint32_t>(c.queueThresholdKb * 1024);

  for (std::size_t f = 0; f < plans.size(); ++f) {
    const FlowPlan& p = plans[f];
    FlowState& st = flows[f];
    st.rec.arrival = p.arrival;
    st.rec.bytes = p.bytes;
    st.rec.sender = p.src;
    res.bytesOffered += p.bytes;

    host::Host& sender = tb.host(p.src);
    host::Host& receiver = tb.host(p.dst);
    st.conn = std::make_unique<host::TcpConnection>(sender, connCfg);
    host::TcpConnection* raw = st.conn.get();
    TcpFlowRecord* rec = &st.rec;
    raw->onClosed([rec, raw] {
      rec->completion = raw->closedAt().value_or(sim::Time::zero());
    });
    raw->onError([rec](const std::string&) { rec->failed = true; });

    if (c.tppController && f < c.maxControllers) {
      st.ctrl =
          std::make_unique<apps::TppTcpController>(sender, *raw, ctrlCfg);
    }
    apps::TppTcpController* ctrl = st.ctrl.get();

    const auto port = static_cast<std::uint16_t>(kBasePort + f);
    const net::MacAddress dstMac = receiver.mac();
    const net::Ipv4Address dstIp = receiver.ip();
    const std::uint64_t bytes = p.bytes;
    const sim::Time arrival = p.arrival;
    // Scheduled on the sender's own simulator: shard-local by design. The
    // controller starts in the same event, after connect, so its first
    // probe sees an open connection.
    sender.simulator().scheduleAt(
        arrival, [raw, ctrl, dstMac, dstIp, port, bytes, arrival] {
          raw->connect(dstMac, dstIp, kServerPort, port, bytes);
          if (ctrl != nullptr) ctrl->start(arrival);
        });
  }

  // ------------------------------------------------------- queue sampling
  const sim::Time samplePeriod = sim::Time::seconds(c.queueSampleUs * 1e-6);
  const sim::Time sampleUntil = sim::Time::seconds(c.horizonMs * 1e-3);
  std::vector<std::unique_ptr<SwitchSampler>> samplers;
  samplers.reserve(tb.switchCount());
  for (std::size_t s = 0; s < tb.switchCount(); ++s) {
    auto sampler = std::make_unique<SwitchSampler>();
    sampler->sw = &tb.sw(s);
    sampler->sim = &tb.simOf(tb.sw(s));
    sampler->period = samplePeriod;
    sampler->until = sampleUntil;
    sampler->ports = switchPorts;
    SwitchSampler* rawSampler = sampler.get();
    rawSampler->sim->scheduleAt(samplePeriod, [rawSampler] {
      rawSampler->tick();
    });
    samplers.push_back(std::move(sampler));
  }

  // ------------------------------------------------------------------ run
  // Chunked: extend the deadline until every flow is done (the TCP give-up
  // path bounds stragglers) or the hard ceiling hits. Chunking a DES run
  // does not change event order, so this stays deterministic.
  const sim::Time horizon = sim::Time::seconds(c.horizonMs * 1e-3);
  const sim::Time ceiling = sim::Time::sec(30);
  const auto allDone = [&flows] {
    for (const FlowState& st : flows) {
      if (!st.rec.done()) return false;
    }
    return true;
  };
  sim::Time deadline = horizon;
  res.eventsExecuted += tb.run(deadline);
  while (!allDone() && deadline < ceiling) {
    deadline = deadline + horizon;
    res.eventsExecuted += tb.run(deadline);
  }

  // ------------------------------------------------------------ aggregate
  res.flows = flows.size();
  std::vector<double> fctAll, fctSmall, fctLarge;
  const double smallCut = 100.0 * 1024 * c.sizeScale;
  const double largeCut = 1024.0 * 1024 * c.sizeScale;
  Fnv64 flowDigest;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const TcpFlowRecord& r = flows[f].rec;
    if (r.failed) ++res.failed;
    flowDigest.mix(f);
    flowDigest.mix(r.sender);
    flowDigest.mix(plans[f].dst);
    flowDigest.mix(r.bytes);
    flowDigest.mix(static_cast<std::uint64_t>(r.arrival.nanos()));
    flowDigest.mix(static_cast<std::uint64_t>(r.completion.nanos()));
    flowDigest.mix(r.failed ? 1 : 0);
    if (!r.finished()) continue;
    ++res.finished;
    const double us = r.fct().toSeconds() * 1e6;
    fctAll.push_back(us);
    const auto bytes = static_cast<double>(r.bytes);
    if (bytes <= smallCut) fctSmall.push_back(us);
    if (bytes >= largeCut) fctLarge.push_back(us);
  }
  res.flowDigest = flowDigest.h;
  res.fct = fctStatsOf(std::move(fctAll));
  res.fctSmall = fctStatsOf(std::move(fctSmall));
  res.fctLarge = fctStatsOf(std::move(fctLarge));

  Fnv64 queueDigest;
  std::vector<double> queueBytes;
  for (std::size_t s = 0; s < samplers.size(); ++s) {
    for (const auto& [idx, bytes] : samplers[s]->samples) {
      queueDigest.mix(s);
      queueDigest.mix(idx);
      queueDigest.mix(bytes);
      queueBytes.push_back(static_cast<double>(bytes));
      res.queueMaxBytes = std::max(res.queueMaxBytes, bytes);
    }
  }
  res.queueDigest = queueDigest.h;
  res.queueSamples = queueBytes.size();
  std::sort(queueBytes.begin(), queueBytes.end());
  res.queueP50Bytes =
      static_cast<std::uint64_t>(percentileSorted(queueBytes, 0.50));
  res.queueP99Bytes =
      static_cast<std::uint64_t>(percentileSorted(queueBytes, 0.99));

  for (const FlowState& st : flows) {
    if (st.ctrl) {
      res.tppProbesSent += st.ctrl->probesSent();
      res.tppCwndCuts += st.ctrl->probeCuts();
    }
  }
  res.faultDrops = faults.totalDrops();
  res.faultCorruptions = faults.totalCorrupted();

  // ------------------------------------------------- sketch accuracy audit
  // Every (switch, flow) pair: read the sketch estimate out of scratch SRAM
  // and compare against that switch's exact count. Flow hashes are visited
  // in sorted order so the audit (and the summary derived from it) is
  // deterministic across runs and shard counts.
  if (c.monitorSketch) {
    const std::uint32_t stride = std::max<std::uint32_t>(1, c.sketchStride);
    for (std::size_t s = 0; s < tb.switchCount(); ++s) {
      asic::Switch& sw = tb.sw(s);
      const std::uint16_t base = sketchBases[s];
      const double epsN = sketch.epsilon() *
                          static_cast<double>(truth[s]->eligiblePackets());
      std::vector<std::pair<std::uint64_t, std::uint64_t>> counts;
      counts.reserve(truth[s]->flows().size());
      for (const auto& [hash, fc] : truth[s]->flows()) {
        counts.emplace_back(hash, fc.packets);
      }
      std::sort(counts.begin(), counts.end());
      const auto readWord = [&sw](std::uint16_t address) {
        return sw.scratchRead(address);
      };
      for (const auto& [hash, pkts] : counts) {
        const auto est = sketch.estimate(readWord, base, hash, stride);
        if (!est) continue;
        ++res.monitorChecks;
        if (*est < pkts) ++res.monitorUnderestimates;
        if (static_cast<double>(*est) >
            static_cast<double>(pkts) + epsN) {
          ++res.monitorEpsViolations;
        }
        const bool trueHh = pkts >= 2 * c.hhThresholdPkts;
        if (trueHh) {
          ++res.hhTrue;
          if (*est < c.hhThresholdPkts) ++res.hhMissed;
        }
        if (*est >= c.hhThresholdPkts) ++res.hhReported;
      }
      res.hookExecutions += sw.hookExecutions();
    }
    // The analytic tail at delta, with 3x slack for the finite sample and
    // the non-independence of per-flow checks within one sketch.
    res.monitorViolationsAllowed = static_cast<std::uint64_t>(std::max(
        1.0,
        std::ceil(3.0 * sketch.delta() *
                  static_cast<double>(res.monitorChecks))));
    res.monitorBoundOk =
        res.monitorEpsViolations <= res.monitorViolationsAllowed &&
        (stride > 1 || res.monitorUnderestimates == 0);
  }

  if (trace) run.trace = trace->merged();
  return run;
}

}  // namespace tpp::workload
