#include "src/tcpu/tcpu.hpp"

#include <algorithm>

namespace tpp::tcpu {

using core::AddressingMode;
using core::Fault;
using core::Instruction;
using core::kWordSize;
using core::Opcode;
using core::TppView;

std::optional<std::size_t> Tcpu::effectiveIndex(const TppView& view,
                                                std::uint8_t pmemOff) {
  if (view.mode() == AddressingMode::Hop) {
    // base:offset — word at hopNumber * perHopWords + offset (§3.2.2).
    return static_cast<std::size_t>(view.hopNumber()) * view.perHopWords() +
           pmemOff;
  }
  return pmemOff;
}

const Tcpu::CachedProgram& Tcpu::decodeProgram(const TppView& view,
                                               std::size_t instrWords) {
  fetchScratch_.resize(instrWords);
  for (std::size_t i = 0; i < instrWords; ++i) {
    fetchScratch_[i] = view.instructionWord(i);
  }
  // FNV-1a over the instruction words picks the direct-mapped slot.
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint32_t w : fetchScratch_) {
    h = (h ^ w) * 1099511628211ULL;
  }
  if (decodeCache_.empty()) decodeCache_.resize(kDecodeCacheSlots);
  auto& entry = decodeCache_[h & (kDecodeCacheSlots - 1)];
  if (entry.words == fetchScratch_) {
    ++decodeHits_;
    return entry;
  }
  ++decodeMisses_;
  entry.words = fetchScratch_;
  entry.decoded.clear();
  entry.bad = false;
  for (const std::uint32_t w : entry.words) {
    const auto ins = Instruction::decode(w);
    if (!ins) {
      entry.bad = true;
      break;
    }
    entry.decoded.push_back(*ins);
  }
  return entry;
}

ExecReport Tcpu::execute(TppView& view, AddressSpace& memory) {
  ExecReport report;
  ++tpps_;
  const std::uint16_t taskId = view.taskId();
  const std::size_t n = view.instrWords();
  const CachedProgram& program = decodeProgram(view, n);

  auto fault = [&](Fault f) {
    view.setFault(f);
    report.fault = f;
    ++faults_;
  };

  std::size_t i = 0;
  for (; i < n; ++i) {
    // An undecodable word faults only when execution reaches it, exactly
    // as lazy per-word decoding behaved.
    if (i >= program.decoded.size()) {
      fault(Fault::BadInstruction);
      break;
    }
    const auto& ins = program.decoded[i];

    // Reads a mode-addressed pmem word, faulting on overflow.
    auto pmemAt = [&](std::size_t idx) -> std::optional<std::uint32_t> {
      const auto v = view.pmemWord(idx);
      if (!v) {
        fault(view.mode() == AddressingMode::Hop ? Fault::HopOverflow
                                                 : Fault::PmemOutOfBounds);
      }
      return v;
    };
    auto pmemSet = [&](std::size_t idx, std::uint32_t v) -> bool {
      if (!view.setPmemWord(idx, v)) {
        fault(view.mode() == AddressingMode::Hop ? Fault::HopOverflow
                                                 : Fault::PmemOutOfBounds);
        return false;
      }
      return true;
    };
    auto readSwitch = [&](std::uint16_t a) -> std::optional<std::uint32_t> {
      const auto r = memory.read(a, taskId);
      if (r.fault != Fault::None) {
        fault(r.fault);
        return std::nullopt;
      }
      return r.value;
    };
    auto writeSwitch = [&](std::uint16_t a, std::uint32_t v) -> bool {
      const auto f = memory.write(a, v, taskId);
      if (f != Fault::None) {
        fault(f);
        return false;
      }
      return true;
    };

    bool done = false;
    switch (ins.op) {
      case Opcode::Nop:
        break;
      case Opcode::Push: {
        const std::uint16_t sp = view.stackPointer();
        const std::size_t idx = sp / kWordSize;
        const auto v = readSwitch(ins.addr);
        if (!v || !pmemSet(idx, *v)) {
          done = true;
          break;
        }
        view.setStackPointer(static_cast<std::uint16_t>(sp + kWordSize));
        break;
      }
      case Opcode::Pop: {
        const std::uint16_t sp = view.stackPointer();
        if (sp < kWordSize) {
          fault(Fault::PmemOutOfBounds);
          done = true;
          break;
        }
        const std::size_t idx = sp / kWordSize - 1;
        const auto v = pmemAt(idx);
        if (!v || !writeSwitch(ins.addr, *v)) {
          done = true;
          break;
        }
        view.setStackPointer(static_cast<std::uint16_t>(sp - kWordSize));
        break;
      }
      case Opcode::Load: {
        const auto idx = effectiveIndex(view, ins.pmemOff);
        const auto v = readSwitch(ins.addr);
        if (!v || !pmemSet(*idx, *v)) done = true;
        break;
      }
      case Opcode::Store: {
        const auto idx = effectiveIndex(view, ins.pmemOff);
        const auto v = pmemAt(*idx);
        if (!v || !writeSwitch(ins.addr, *v)) done = true;
        break;
      }
      case Opcode::Cstore: {
        // CSTORE dst,cond,src: linearizable compare-and-swap (§2.2).
        // Operand words are ALWAYS absolute indices — they live in the
        // immediate region the end-host initialized, independent of hop.
        const auto cond = pmemAt(ins.pmemOff);
        const auto src = pmemAt(ins.pmemOff + 1u);
        if (!cond || !src) {
          done = true;
          break;
        }
        const auto old = readSwitch(ins.addr);
        if (!old) {
          done = true;
          break;
        }
        if (*old == *cond && !writeSwitch(ins.addr, *src)) {
          done = true;
          break;
        }
        // Report the observed value so the end-host can tell whether the
        // swap took effect (pmem[off] == cond ⇒ success).
        if (!pmemSet(ins.pmemOff, *old)) done = true;
        break;
      }
      case Opcode::Cexec: {
        // Execute the REST of the program only if (reg & mask) == value.
        const auto mask = pmemAt(ins.pmemOff);
        const auto value = pmemAt(ins.pmemOff + 1u);
        if (!mask || !value) {
          done = true;
          break;
        }
        const auto reg = readSwitch(ins.addr);
        if (!reg) {
          done = true;
          break;
        }
        if ((*reg & *mask) != *value) {
          view.setFlag(core::kFlagCexecSkipped);
          report.cexecSkipped = true;
          report.skipped = n - i - 1;
          done = true;  // all subsequent instructions are not executed
        }
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Min:
      case Opcode::Max: {
        const auto idx = effectiveIndex(view, ins.pmemOff);
        const auto cur = pmemAt(*idx);
        const auto v = readSwitch(ins.addr);
        if (!cur || !v) {
          done = true;
          break;
        }
        std::uint32_t result = 0;
        switch (ins.op) {
          case Opcode::Add: result = *cur + *v; break;
          case Opcode::Sub: result = *cur - *v; break;
          case Opcode::Min: result = std::min(*cur, *v); break;
          case Opcode::Max: result = std::max(*cur, *v); break;
          default: break;
        }
        if (!pmemSet(*idx, result)) done = true;
        break;
      }
    }

    if (report.fault != Fault::None) break;
    ++report.executed;
    ++instructions_;
    if (tracer_ != nullptr) {
      tracer_->record(clock_->now(), sim::TraceKind::TcpuRetire, actor_,
                      taskId, static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(ins.op), ins.addr,
                      ins.pmemOff);
    }
    if (done) break;  // failed CEXEC predicate
  }

  report.cycles = model_.cycles(report.executed);
  // Hop counter advances on every TCPU-enabled switch traversed.
  view.setHopNumber(static_cast<std::uint8_t>(view.hopNumber() + 1));
  return report;
}

ExecReport Tcpu::executeResident(
    std::span<const Instruction> instructions, std::span<std::uint32_t> pmem,
    std::uint16_t taskId, AddressSpace& memory, std::uint16_t initialSp) {
  ExecReport report;
  ++tpps_;
  std::uint16_t sp = initialSp;
  const std::size_t n = instructions.size();

  auto fault = [&](Fault f) {
    report.fault = f;
    ++faults_;
  };

  std::size_t i = 0;
  for (; i < n; ++i) {
    const auto& ins = instructions[i];

    auto pmemAt = [&](std::size_t idx) -> std::optional<std::uint32_t> {
      if (idx >= pmem.size()) {
        fault(Fault::PmemOutOfBounds);
        return std::nullopt;
      }
      return pmem[idx];
    };
    auto pmemSet = [&](std::size_t idx, std::uint32_t v) -> bool {
      if (idx >= pmem.size()) {
        fault(Fault::PmemOutOfBounds);
        return false;
      }
      pmem[idx] = v;
      return true;
    };
    auto readSwitch = [&](std::uint16_t a) -> std::optional<std::uint32_t> {
      const auto r = memory.read(a, taskId);
      if (r.fault != Fault::None) {
        fault(r.fault);
        return std::nullopt;
      }
      return r.value;
    };
    auto writeSwitch = [&](std::uint16_t a, std::uint32_t v) -> bool {
      const auto f = memory.write(a, v, taskId);
      if (f != Fault::None) {
        fault(f);
        return false;
      }
      return true;
    };

    bool done = false;
    switch (ins.op) {
      case Opcode::Nop:
        break;
      case Opcode::Push: {
        const std::size_t idx = sp / kWordSize;
        const auto v = readSwitch(ins.addr);
        if (!v || !pmemSet(idx, *v)) {
          done = true;
          break;
        }
        sp = static_cast<std::uint16_t>(sp + kWordSize);
        break;
      }
      case Opcode::Pop: {
        if (sp < kWordSize) {
          fault(Fault::PmemOutOfBounds);
          done = true;
          break;
        }
        const std::size_t idx = sp / kWordSize - 1;
        const auto v = pmemAt(idx);
        if (!v || !writeSwitch(ins.addr, *v)) {
          done = true;
          break;
        }
        sp = static_cast<std::uint16_t>(sp - kWordSize);
        break;
      }
      case Opcode::Load: {
        const auto v = readSwitch(ins.addr);
        if (!v || !pmemSet(ins.pmemOff, *v)) done = true;
        break;
      }
      case Opcode::Store: {
        const auto v = pmemAt(ins.pmemOff);
        if (!v || !writeSwitch(ins.addr, *v)) done = true;
        break;
      }
      case Opcode::Cstore: {
        const auto cond = pmemAt(ins.pmemOff);
        const auto src = pmemAt(ins.pmemOff + 1u);
        if (!cond || !src) {
          done = true;
          break;
        }
        const auto old = readSwitch(ins.addr);
        if (!old) {
          done = true;
          break;
        }
        if (*old == *cond && !writeSwitch(ins.addr, *src)) {
          done = true;
          break;
        }
        if (!pmemSet(ins.pmemOff, *old)) done = true;
        break;
      }
      case Opcode::Cexec: {
        const auto mask = pmemAt(ins.pmemOff);
        const auto value = pmemAt(ins.pmemOff + 1u);
        if (!mask || !value) {
          done = true;
          break;
        }
        const auto reg = readSwitch(ins.addr);
        if (!reg) {
          done = true;
          break;
        }
        if ((*reg & *mask) != *value) {
          report.cexecSkipped = true;
          report.skipped = n - i - 1;
          done = true;
        }
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Min:
      case Opcode::Max: {
        const auto cur = pmemAt(ins.pmemOff);
        const auto v = readSwitch(ins.addr);
        if (!cur || !v) {
          done = true;
          break;
        }
        std::uint32_t result = 0;
        switch (ins.op) {
          case Opcode::Add: result = *cur + *v; break;
          case Opcode::Sub: result = *cur - *v; break;
          case Opcode::Min: result = std::min(*cur, *v); break;
          case Opcode::Max: result = std::max(*cur, *v); break;
          default: break;
        }
        if (!pmemSet(ins.pmemOff, result)) done = true;
        break;
      }
    }

    if (report.fault != Fault::None) break;
    ++report.executed;
    ++instructions_;
    if (tracer_ != nullptr) {
      tracer_->record(clock_->now(), sim::TraceKind::TcpuRetire, actor_,
                      taskId, static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(ins.op), ins.addr,
                      ins.pmemOff);
    }
    if (done) break;
  }

  report.cycles = model_.cycles(report.executed);
  return report;
}

}  // namespace tpp::tcpu
