// Cycle model of the TCPU's RISC pipeline (paper Fig 5 and §3.3).
//
// The header parser performs instruction fetch before the packet reaches
// the TCPU, leaving a 4-stage pipeline (decode, execute, memory-read,
// memory-write) with single-cycle stages: latency 4 cycles per instruction,
// throughput 1 instruction/cycle once full. Memory-bank access latency is
// hidden by pipelining (§3.3: "it can be hidden by pipelining multiple
// requests"), so a program of N instructions completes in 4 + (N-1) cycles.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tpp::tcpu {

struct CycleModel {
  std::uint32_t pipelineLatency = 4;  // cycles from decode to write-back
  double clockGhz = 1.0;              // §3.3 assumes a 1 GHz ASIC

  // Cycles to run `instructions` through the pipeline.
  std::uint64_t cycles(std::size_t instructions) const {
    if (instructions == 0) return 0;
    return pipelineLatency + static_cast<std::uint64_t>(instructions) - 1;
  }

  double nanos(std::size_t instructions) const {
    return static_cast<double>(cycles(instructions)) / clockGhz;
  }

  // Cut-through forwarding budget the TCPU must hide inside (§3.3 cites
  // 300 ns minimum-size-packet cut-through latency for low-latency ASICs).
  static constexpr double kCutThroughBudgetNs = 300.0;

  bool fitsCutThrough(std::size_t instructions) const {
    return nanos(instructions) <= kCutThroughBudgetNs;
  }
};

}  // namespace tpp::tcpu
