// The TCPU: executes a TPP's instructions against a switch's unified
// address space, mutating the packet in place (paper §3.2, §3.3).
//
// The switch pipeline hands the TCPU two things: a TppView over the packet
// it is processing, and an AddressSpace that resolves 16-bit virtual
// addresses to the ASIC's statistics, per-packet metadata registers, and
// scratch SRAM, honoring the control-plane agent's task grants.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/header.hpp"
#include "src/core/isa.hpp"
#include "src/sim/simulator.hpp"
#include "src/tcpu/cycle_model.hpp"

namespace tpp::tcpu {

// Switch-memory access interface. The fault code distinguishes "address not
// mapped", "statistic is read-only", and "outside this task's SRAM grant" —
// end-hosts see the code in the returned TPP header.
class AddressSpace {
 public:
  virtual ~AddressSpace() = default;

  struct ReadResult {
    std::uint32_t value = 0;
    core::Fault fault = core::Fault::None;
    static ReadResult ok(std::uint32_t v) { return {v, core::Fault::None}; }
    static ReadResult fail(core::Fault f) { return {0, f}; }
  };
  virtual ReadResult read(std::uint16_t address, std::uint16_t taskId) = 0;

  // Returns Fault::None on success.
  virtual core::Fault write(std::uint16_t address, std::uint32_t value,
                            std::uint16_t taskId) = 0;
};

struct ExecReport {
  std::size_t executed = 0;  // instructions that ran to completion
  std::size_t skipped = 0;   // instructions after a failed CEXEC predicate
  core::Fault fault = core::Fault::None;
  bool cexecSkipped = false;
  std::uint64_t cycles = 0;  // modelled TCPU cycles for this packet

  bool ok() const { return fault == core::Fault::None; }
};

class Tcpu {
 public:
  explicit Tcpu(CycleModel model = CycleModel{}) : model_(model) {}

  // Runs every instruction (or stops at the first fault / failed CEXEC),
  // updating packet memory, the stack pointer, fault flags, and the hop
  // counter in place. The hop counter advances even on fault or skip: it
  // counts TCPU-enabled switches traversed, which path-tracing tasks rely
  // on (§2.3).
  ExecReport execute(core::TppView& view, AddressSpace& memory);

  // Runs a resident hook program (DESIGN.md §14): already-decoded
  // instructions against a caller-owned packet-memory image, with stack-
  // mode addressing. No wire bytes exist, so nothing touches the decode
  // cache (per-packet address patching would otherwise thrash it), no
  // header flags or hop counter advance, and faults are only reported in
  // the ExecReport. Semantics per instruction are identical to execute()
  // in stack mode — test_hook.cpp holds a differential check.
  ExecReport executeResident(std::span<const core::Instruction> instructions,
                             std::span<std::uint32_t> pmem,
                             std::uint16_t taskId, AddressSpace& memory,
                             std::uint16_t initialSp = 0);

  // Arms per-instruction retire tracing (one record per retired
  // instruction — the most verbose trace kind, but the one that shows
  // exactly what a probe did at each hop). `clock` timestamps records;
  // disarm with (nullptr, 0, nullptr).
  void setTracer(sim::Tracer* tracer, std::uint32_t actor,
                 const sim::Simulator* clock) {
    tracer_ = tracer;
    actor_ = actor;
    clock_ = clock;
  }

  const CycleModel& cycleModel() const { return model_; }

  // Lifetime counters (per-switch instrumentation).
  std::uint64_t tppsProcessed() const { return tpps_; }
  std::uint64_t instructionsExecuted() const { return instructions_; }
  std::uint64_t faults() const { return faults_; }
  std::uint64_t decodeCacheHits() const { return decodeHits_; }
  std::uint64_t decodeCacheMisses() const { return decodeMisses_; }

 private:
  // Effective packet-memory word index for a mode-addressed operand.
  static std::optional<std::size_t> effectiveIndex(const core::TppView& view,
                                                   std::uint8_t pmemOff);

  // Decoded-program cache. A TPP's instruction words are immutable in
  // flight (only its header and packet memory mutate per hop), and a
  // monitoring task sends the same program every probe — so each switch
  // decodes a program once and replays the decoded form on later packets.
  // Direct-mapped by a hash of the raw words; a hit is verified by full
  // word comparison, so collisions cost a re-decode, never wrong code.
  struct CachedProgram {
    std::vector<std::uint32_t> words;
    std::vector<core::Instruction> decoded;  // valid prefix of the program
    bool bad = false;  // words[decoded.size()] failed to decode
  };
  static constexpr std::size_t kDecodeCacheSlots = 64;  // power of two
  const CachedProgram& decodeProgram(const core::TppView& view,
                                     std::size_t instrWords);

  CycleModel model_;
  sim::Tracer* tracer_ = nullptr;
  std::uint32_t actor_ = 0;
  const sim::Simulator* clock_ = nullptr;
  std::vector<CachedProgram> decodeCache_;
  std::vector<std::uint32_t> fetchScratch_;
  std::uint64_t tpps_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t decodeHits_ = 0;
  std::uint64_t decodeMisses_ = 0;
};

}  // namespace tpp::tcpu
