// cycle_model is header-only today; this TU anchors the library target and
// will host any future stateful pipeline accounting.
#include "src/tcpu/cycle_model.hpp"
