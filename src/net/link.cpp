#include "src/net/link.hpp"

#include <algorithm>
#include <cassert>

#include "src/sim/shard.hpp"

namespace tpp::net {

sim::Time Channel::transmit(PacketPtr packet) {
  const sim::Time start = std::max(busyUntil_, sim_.now());
  const std::size_t wireBytes = packet->size() + kEthernetWireOverhead;
  const sim::Time end = start + sim::transmissionTime(wireBytes, rateBps_);
  busyUntil_ = end;
  if (tracer_ != nullptr) {
    const auto endNanos = static_cast<std::uint64_t>(end.nanos());
    tracer_->record(sim_.now(), sim::TraceKind::LinkTxStart, actor_, 0,
                    static_cast<std::uint32_t>(wireBytes),
                    static_cast<std::uint32_t>(endNanos),
                    static_cast<std::uint32_t>(endNanos >> 32));
  }
  if (rx_ == nullptr) {
    // Detached mid-teardown: the wire still serializes, the frame goes
    // nowhere. Counted, not dereferenced.
    ++txDetachedDropped_;
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceKind::LinkDetachedDrop, actor_, 0,
                      static_cast<std::uint32_t>(packet->size()));
    }
    return end;
  }
  if (fault_ != nullptr) {
    switch (fault_->onTransmit()) {
      case sim::LinkFaultState::Verdict::Drop:
        ++faultDropped_;
        if (tracer_ != nullptr) {
          tracer_->record(sim_.now(), sim::TraceKind::LinkFaultDrop, actor_, 0,
                          static_cast<std::uint32_t>(packet->size()));
        }
        return end;
      case sim::LinkFaultState::Verdict::Corrupt: {
        const auto [byte, bit] = fault_->corruptionTarget(packet->size());
        if (byte < packet->size()) {
          packet->bytes()[byte] ^= static_cast<std::uint8_t>(1u << bit);
        }
        if (tracer_ != nullptr) {
          tracer_->record(sim_.now(), sim::TraceKind::LinkFaultCorrupt, actor_,
                          0, static_cast<std::uint32_t>(byte),
                          static_cast<std::uint32_t>(bit));
        }
        break;
      }
      case sim::LinkFaultState::Verdict::Deliver:
        break;
    }
  }
  const std::size_t payloadBytes = packet->size();
  // Deliver after serialization + propagation. EventFn is move-aware, so
  // the packet rides in the closure directly — no heap shim. The closure
  // timestamps with its (captured) fire instant rather than sim_.now(): the
  // two are equal on the same-shard path, and across shards the receiving
  // simulator's clock is the right one anyway.
  const sim::Time deliverAt = end + propDelay_;
  auto deliver = [this, p = std::move(packet), payloadBytes,
                  deliverAt]() mutable {
    if (rx_ == nullptr) {
      // Receiver detached while the frame was in flight.
      ++rxDetachedDropped_;
      return;
    }
    ++delivered_;
    bytesDelivered_ += payloadBytes;
    if (rxTracer_ != nullptr) {
      rxTracer_->record(deliverAt, sim::TraceKind::LinkDeliver, rxActor_, 0,
                        static_cast<std::uint32_t>(payloadBytes));
    }
    rx_->receive(std::move(p), rxPort_);
  };
  if (crossShard_ != nullptr) {
    crossShard_->push(deliverAt, std::move(deliver));
  } else {
    sim_.scheduleAt(deliverAt, std::move(deliver));
  }
  return end;
}

void Node::attachPort(std::size_t port, Channel* tx) {
  if (txChannels_.size() <= port) txChannels_.resize(port + 1, nullptr);
  assert(txChannels_[port] == nullptr && "port already wired");
  txChannels_[port] = tx;
}

std::unique_ptr<DuplexLink> DuplexLink::connect(sim::Simulator& simulator,
                                                Node& a, std::size_t portA,
                                                Node& b, std::size_t portB,
                                                std::uint64_t rateBps,
                                                sim::Time propagationDelay) {
  return connect(simulator, simulator, a, portA, b, portB, rateBps,
                 propagationDelay);
}

std::unique_ptr<DuplexLink> DuplexLink::connect(sim::Simulator& simA,
                                                sim::Simulator& simB, Node& a,
                                                std::size_t portA, Node& b,
                                                std::size_t portB,
                                                std::uint64_t rateBps,
                                                sim::Time propagationDelay) {
  auto link = std::unique_ptr<DuplexLink>(new DuplexLink);
  link->aToB_ = std::make_unique<Channel>(simA, rateBps, propagationDelay);
  link->bToA_ = std::make_unique<Channel>(simB, rateBps, propagationDelay);
  link->aToB_->attachReceiver(&b, portB);
  link->bToA_->attachReceiver(&a, portA);
  a.attachPort(portA, link->aToB_.get());
  b.attachPort(portB, link->bToA_.get());
  return link;
}

}  // namespace tpp::net
