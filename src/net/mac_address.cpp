#include "src/net/mac_address.hpp"

#include <cstdio>

namespace tpp::net {

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  std::array<std::uint8_t, 6> out{};
  std::size_t pos = 0;
  for (int i = 0; i < 6; ++i) {
    if (pos + 2 > text.size()) return std::nullopt;
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = hex(text[pos]);
    const int lo = hex(text[pos + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((hi << 4) | lo);
    pos += 2;
    if (i < 5) {
      if (pos >= text.size() || text[pos] != ':') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return MacAddress{out};
}

std::uint64_t MacAddress::toU64() const {
  std::uint64_t v = 0;
  for (const auto b : bytes_) v = (v << 8) | b;
  return v;
}

std::string MacAddress::toString() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

}  // namespace tpp::net
