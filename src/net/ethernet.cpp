#include "src/net/ethernet.hpp"

#include <algorithm>
#include <cassert>

#include "src/net/byte_io.hpp"

namespace tpp::net {

void EthernetHeader::write(std::span<std::uint8_t> b) const {
  assert(b.size() >= kEthernetHeaderSize);
  std::copy(dst.bytes().begin(), dst.bytes().end(), b.begin());
  std::copy(src.bytes().begin(), src.bytes().end(), b.begin() + 6);
  putBe16(b, 12, etherType);
}

std::optional<EthernetHeader> EthernetHeader::parse(
    std::span<const std::uint8_t> b) {
  if (b.size() < kEthernetHeaderSize) return std::nullopt;
  EthernetHeader h;
  std::array<std::uint8_t, 6> mac{};
  std::copy_n(b.begin(), 6, mac.begin());
  h.dst = MacAddress{mac};
  std::copy_n(b.begin() + 6, 6, mac.begin());
  h.src = MacAddress{mac};
  h.etherType = *getBe16(b, 12);
  return h;
}

}  // namespace tpp::net
