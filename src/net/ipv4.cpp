#include "src/net/ipv4.hpp"

#include <cassert>
#include <cstdio>

#include "src/net/byte_io.hpp"

namespace tpp::net {

std::string Ipv4Address::toString() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (v_ >> 24) & 0xff,
                (v_ >> 16) & 0xff, (v_ >> 8) & 0xff, v_ & 0xff);
  return buf;
}

std::uint16_t internetChecksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void Ipv4Header::write(std::span<std::uint8_t> b) const {
  assert(b.size() >= kIpv4HeaderSize);
  b[0] = 0x45;  // version 4, IHL 5
  b[1] = static_cast<std::uint8_t>(ecn & 0x03);  // DSCP 0 | ECN
  putBe16(b, 2, totalLength);
  putBe16(b, 4, identification);
  putBe16(b, 6, 0);  // flags/fragment offset
  b[8] = ttl;
  b[9] = protocol;
  putBe16(b, 10, 0);  // checksum placeholder
  putBe32(b, 12, src.value());
  putBe32(b, 16, dst.value());
  putBe16(b, 10, internetChecksum(b.first(kIpv4HeaderSize)));
}

std::optional<Ipv4Header> Ipv4Header::parse(std::span<const std::uint8_t> b) {
  if (b.size() < kIpv4HeaderSize) return std::nullopt;
  if (b[0] != 0x45) return std::nullopt;  // options unsupported
  if (internetChecksum(b.first(kIpv4HeaderSize)) != 0) return std::nullopt;
  Ipv4Header h;
  h.totalLength = *getBe16(b, 2);
  h.identification = *getBe16(b, 4);
  h.ttl = b[8];
  h.protocol = b[9];
  h.ecn = b[1] & 0x03;
  h.src = Ipv4Address{*getBe32(b, 12)};
  h.dst = Ipv4Address{*getBe32(b, 16)};
  return h;
}

void Ipv4Header::markCe(std::span<std::uint8_t> b) {
  assert(b.size() >= kIpv4HeaderSize);
  if ((b[1] & 0x03) == kEcnCe) return;
  b[1] = static_cast<std::uint8_t>((b[1] & ~0x03) | kEcnCe);
  // Recompute rather than incrementally patch: 20 bytes is cheap here and
  // immune to ones-complement corner cases.
  putBe16(b, 10, 0);
  putBe16(b, 10, internetChecksum(b.first(kIpv4HeaderSize)));
}

void UdpHeader::write(std::span<std::uint8_t> b) const {
  assert(b.size() >= kUdpHeaderSize);
  putBe16(b, 0, srcPort);
  putBe16(b, 2, dstPort);
  putBe16(b, 4, length);
  putBe16(b, 6, 0);  // checksum optional in IPv4; we do not compute it
}

std::optional<UdpHeader> UdpHeader::parse(std::span<const std::uint8_t> b) {
  if (b.size() < kUdpHeaderSize) return std::nullopt;
  UdpHeader h;
  h.srcPort = *getBe16(b, 0);
  h.dstPort = *getBe16(b, 2);
  h.length = *getBe16(b, 4);
  return h;
}

}  // namespace tpp::net
