#include "src/net/packet.hpp"

#include <cstdio>

namespace tpp::net {

std::uint64_t& Packet::nextId() {
  static std::uint64_t id = 1;
  return id;
}

PacketPtr Packet::clone() const {
  auto p = std::make_unique<Packet>(bytes_);
  p->meta_ = meta_;
  p->createdAt = createdAt;
  p->flowId = flowId;
  return p;
}

std::string Packet::hexdump(std::size_t maxBytes) const {
  std::string out;
  const std::size_t n = std::min(maxBytes, bytes_.size());
  char line[24];
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 16 == 0) {
      std::snprintf(line, sizeof line, "%04zx  ", i);
      out += line;
    }
    std::snprintf(line, sizeof line, "%02x ", bytes_[i]);
    out += line;
    if (i % 16 == 15 || i + 1 == n) out += '\n';
  }
  if (n < bytes_.size()) out += "...\n";
  return out;
}

}  // namespace tpp::net
