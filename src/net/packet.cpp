#include "src/net/packet.hpp"

#include <cstdio>

namespace tpp::net {
namespace {

// Freelist of dead packets awaiting reuse. Function-local static so the
// pool outlives every translation-unit-scoped PacketPtr; bounded so a
// transient burst cannot pin memory forever. thread_local because sharded
// runs allocate and recycle packets from several simulation threads at
// once: each thread gets a private freelist (a packet released on thread B
// simply joins B's pool — delete/new are the only cross-thread traffic).
constexpr std::size_t kMaxPooled = 4096;

struct Pool {
  std::vector<Packet*> free;
  Packet::PoolStats stats;
  ~Pool() {
    for (Packet* p : free) delete p;
  }
};

Pool& pool() {
  thread_local Pool p;
  return p;
}

}  // namespace

std::uint64_t& Packet::nextId() {
  // Per-thread: ids only need to be unique-enough for debugging output
  // (nothing branches on them), and a shared counter would be a data race
  // under sharding. Worker threads are created fresh per run() in shard
  // order, so ids stay reproducible too.
  thread_local std::uint64_t id = 1;
  return id;
}

void Packet::reinitForReuse() {
  meta_ = PacketMeta{};
  id_ = nextId()++;
  createdAt = sim::Time::zero();
  flowId = 0;
}

Packet* Packet::acquirePooled() {
  auto& p = pool();
  if (p.free.empty()) {
    ++p.stats.allocated;
    return nullptr;
  }
  ++p.stats.reused;
  Packet* packet = p.free.back();
  p.free.pop_back();
  packet->reinitForReuse();
  return packet;
}

void PacketDeleter::operator()(Packet* packet) const noexcept {
  if (packet == nullptr) return;
  auto& p = pool();
  if (p.free.size() < kMaxPooled) {
    ++p.stats.recycled;
    p.free.push_back(packet);
  } else {
    ++p.stats.freed;
    delete packet;
  }
}

PacketPtr Packet::make(std::vector<std::uint8_t> bytes) {
  if (Packet* p = acquirePooled()) {
    p->bytes_ = std::move(bytes);
    return PacketPtr{p};
  }
  return PacketPtr{new Packet(std::move(bytes))};
}

PacketPtr Packet::make(std::size_t size, std::uint8_t fill) {
  if (Packet* p = acquirePooled()) {
    p->bytes_.assign(size, fill);  // reuses the recycled buffer's capacity
    return PacketPtr{p};
  }
  return PacketPtr{new Packet(std::vector<std::uint8_t>(size, fill))};
}

Packet::PoolStats Packet::poolStats() { return pool().stats; }

void Packet::drainPool() {
  auto& p = pool();
  for (Packet* packet : p.free) delete packet;
  p.free.clear();
}

PacketPtr Packet::clone() const {
  PacketPtr p;
  if (Packet* reused = acquirePooled()) {
    reused->bytes_ = bytes_;  // copy-assign reuses capacity
    p = PacketPtr{reused};
  } else {
    p = PacketPtr{new Packet(bytes_)};
  }
  p->meta_ = meta_;
  p->createdAt = createdAt;
  p->flowId = flowId;
  return p;
}

std::string Packet::hexdump(std::size_t maxBytes) const {
  std::string out;
  const std::size_t n = std::min(maxBytes, bytes_.size());
  char line[24];
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 16 == 0) {
      std::snprintf(line, sizeof line, "%04zx  ", i);
      out += line;
    }
    std::snprintf(line, sizeof line, "%02x ", bytes_[i]);
    out += line;
    if (i % 16 == 15 || i + 1 == n) out += '\n';
  }
  if (n < bytes_.size()) out += "...\n";
  return out;
}

}  // namespace tpp::net
