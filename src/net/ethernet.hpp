// Ethernet II framing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "src/net/mac_address.hpp"

namespace tpp::net {

inline constexpr std::size_t kEthernetHeaderSize = 14;
// Preamble(8) + FCS(4) + inter-frame gap(12): charged per frame by Link when
// computing serialization time, but not carried in the packet buffer.
inline constexpr std::size_t kEthernetWireOverhead = 24;
inline constexpr std::size_t kMinFrameSize = 64;   // without wire overhead
inline constexpr std::size_t kMtu = 1500;          // payload bytes

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
// IEEE 802 local-experimental ethertype; identifies a TPP shim (§2: "any
// ethernet packet with a uniquely identifiable header").
inline constexpr std::uint16_t kEtherTypeTpp = 0x88B5;

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t etherType = 0;

  // Serializes into b[0..14). Precondition: b.size() >= 14.
  void write(std::span<std::uint8_t> b) const;
  static std::optional<EthernetHeader> parse(std::span<const std::uint8_t> b);
};

}  // namespace tpp::net
