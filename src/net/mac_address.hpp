// 48-bit Ethernet MAC address value type.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace tpp::net {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> bytes)
      : bytes_(bytes) {}

  // Deterministic address for simulated NIC `n`: 02:00:00:xx:xx:xx with the
  // locally-administered bit set.
  static constexpr MacAddress fromIndex(std::uint32_t n) {
    return MacAddress({0x02, 0x00,
                       static_cast<std::uint8_t>(n >> 24),
                       static_cast<std::uint8_t>(n >> 16),
                       static_cast<std::uint8_t>(n >> 8),
                       static_cast<std::uint8_t>(n)});
  }
  static constexpr MacAddress broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }
  // Parses "aa:bb:cc:dd:ee:ff".
  static std::optional<MacAddress> parse(std::string_view text);

  const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }
  bool isBroadcast() const { return *this == broadcast(); }
  bool isMulticast() const { return (bytes_[0] & 0x01) != 0; }
  std::uint64_t toU64() const;

  std::string toString() const;

  constexpr auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

}  // namespace tpp::net

template <>
struct std::hash<tpp::net::MacAddress> {
  std::size_t operator()(const tpp::net::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.toU64());
  }
};
