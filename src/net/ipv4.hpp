// Minimal IPv4 (no options) and UDP headers — enough to exercise the L3 LPM
// table and give end-host flows realistic framing.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

namespace tpp::net {

inline constexpr std::size_t kIpv4HeaderSize = 20;
inline constexpr std::size_t kUdpHeaderSize = 8;
inline constexpr std::uint8_t kIpProtoUdp = 17;

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t v) : v_(v) {}
  static constexpr Ipv4Address fromOctets(std::uint8_t a, std::uint8_t b,
                                          std::uint8_t c, std::uint8_t d) {
    return Ipv4Address{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | d};
  }
  // 10.x.y.z host numbering used throughout the experiments.
  static constexpr Ipv4Address forHost(std::uint32_t hostIndex) {
    return Ipv4Address{(10u << 24) | hostIndex};
  }
  constexpr std::uint32_t value() const { return v_; }
  std::string toString() const;
  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t v_ = 0;
};

// ECN codepoints (RFC 3168), low two bits of the traffic-class byte.
inline constexpr std::uint8_t kEcnNotEct = 0b00;
inline constexpr std::uint8_t kEcnEct0 = 0b10;
inline constexpr std::uint8_t kEcnCe = 0b11;  // congestion experienced

struct Ipv4Header {
  std::uint16_t totalLength = 0;  // header + payload bytes
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  std::uint8_t ecn = kEcnNotEct;
  Ipv4Address src;
  Ipv4Address dst;

  // Serializes (with computed checksum) into b[0..20).
  void write(std::span<std::uint8_t> b) const;
  // Parses and verifies the checksum; nullopt on truncation/corruption.
  static std::optional<Ipv4Header> parse(std::span<const std::uint8_t> b);

  // In-place Congestion Experienced marking of the header at b[0..20),
  // with incremental checksum fixup — what an ECN AQM does at enqueue.
  static void markCe(std::span<std::uint8_t> b);
};

struct UdpHeader {
  std::uint16_t srcPort = 0;
  std::uint16_t dstPort = 0;
  std::uint16_t length = 0;  // header + payload

  void write(std::span<std::uint8_t> b) const;
  static std::optional<UdpHeader> parse(std::span<const std::uint8_t> b);
};

// RFC 1071 ones-complement checksum over `data`.
std::uint16_t internetChecksum(std::span<const std::uint8_t> data);

}  // namespace tpp::net

template <>
struct std::hash<tpp::net::Ipv4Address> {
  std::size_t operator()(const tpp::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
