// Point-to-point links.
//
// Channel is one direction: a serializer (rate) plus a propagation pipe
// (delay). A transmit started while the serializer is busy begins when it
// frees — callers that need back-to-back scheduling (the switch egress
// scheduler, host NICs) use the returned completion time.
#pragma once

#include <cstdint>
#include <memory>

#include "src/net/ethernet.hpp"
#include "src/net/node.hpp"
#include "src/net/packet.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/simulator.hpp"

namespace tpp::sim {
class CrossShardChannel;
}

namespace tpp::net {

class Channel {
 public:
  Channel(sim::Simulator& simulator, std::uint64_t rateBps,
          sim::Time propagationDelay)
      : sim_(simulator), rateBps_(rateBps), propDelay_(propagationDelay) {}

  void attachReceiver(Node* rx, std::size_t rxPort) {
    rx_ = rx;
    rxPort_ = rxPort;
  }
  // Detaches the receiver (teardown, link removal). Packets already in
  // flight — and any transmitted afterwards — are counted as detached
  // drops instead of dereferencing a dead node.
  void detachReceiver() { rx_ = nullptr; }

  // Arms (or, with nullptr, disarms) fault injection on this channel. The
  // state is owned by a sim::FaultInjector and may be shared inspection-side
  // with the scenario that installed it.
  void setFaultState(sim::LinkFaultState* fault) { fault_ = fault; }
  const sim::LinkFaultState* faultState() const { return fault_; }

  // Arms (or disarms, with nullptr) the flight recorder on this channel.
  // `actor` is the tracer-interned id for this direction's display name.
  // Delivery-side records default to the same recorder; a sharded arming
  // overrides that with setRxTracer afterwards.
  void setTracer(sim::Tracer* tracer, std::uint32_t actor) {
    tracer_ = tracer;
    actor_ = actor;
    rxTracer_ = tracer;
    rxActor_ = actor;
  }
  // Sharded arming: LinkDeliver records are written by the receiving
  // shard's thread, so they must go to that shard's recorder.
  void setRxTracer(sim::Tracer* tracer, std::uint32_t actor) {
    rxTracer_ = tracer;
    rxActor_ = actor;
  }

  // Marks this direction as a shard boundary: delivery events are handed to
  // `channel` (and merged into the receiving shard's queue at window
  // boundaries) instead of being scheduled on the transmitting shard's
  // simulator. nullptr restores same-shard delivery.
  void setCrossShard(sim::CrossShardChannel* channel) {
    crossShard_ = channel;
  }

  // Queues `packet` for serialization; returns the time serialization ends
  // (delivery happens propagationDelay later). Serialization time charges
  // the Ethernet preamble/FCS/IFG overhead on top of the buffer size.
  // Injected faults act "on the wire": a dropped or corrupted packet still
  // occupies the serializer, so fault plans never change link timing.
  sim::Time transmit(PacketPtr packet);

  bool idleAt(sim::Time t) const { return busyUntil_ <= t; }
  std::uint64_t rateBps() const { return rateBps_; }
  sim::Time propagationDelay() const { return propDelay_; }
  std::uint64_t packetsDelivered() const { return delivered_; }
  std::uint64_t bytesDelivered() const { return bytesDelivered_; }
  // Packets lost to an injected fault plan on this channel.
  std::uint64_t packetsFaultDropped() const { return faultDropped_; }
  // Packets discarded because no receiver was attached at delivery time.
  std::uint64_t packetsDetachedDropped() const {
    return txDetachedDropped_ + rxDetachedDropped_;
  }

 private:
  // Field ownership under sharding: the transmit path (busyUntil_,
  // faultDropped_, txDetachedDropped_) runs on the transmitting shard's
  // thread; the delivery closure (delivered_, bytesDelivered_,
  // rxDetachedDropped_) runs on the receiving shard's. Accessors are
  // quiescent-time only.
  sim::Simulator& sim_;
  std::uint64_t rateBps_;
  sim::Time propDelay_;
  Node* rx_ = nullptr;
  std::size_t rxPort_ = 0;
  sim::LinkFaultState* fault_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  std::uint32_t actor_ = 0;
  sim::Tracer* rxTracer_ = nullptr;
  std::uint32_t rxActor_ = 0;
  sim::CrossShardChannel* crossShard_ = nullptr;
  sim::Time busyUntil_ = sim::Time::zero();
  std::uint64_t delivered_ = 0;
  std::uint64_t bytesDelivered_ = 0;
  std::uint64_t faultDropped_ = 0;
  std::uint64_t txDetachedDropped_ = 0;
  std::uint64_t rxDetachedDropped_ = 0;
};

// Full-duplex link between (a, portA) and (b, portB).
class DuplexLink {
 public:
  static std::unique_ptr<DuplexLink> connect(sim::Simulator& simulator,
                                             Node& a, std::size_t portA,
                                             Node& b, std::size_t portB,
                                             std::uint64_t rateBps,
                                             sim::Time propagationDelay);

  // Sharded form: each direction serializes on its transmitting side's
  // simulator (`simA` drives a->b, `simB` drives b->a). With simA == simB
  // this is exactly the single-simulator overload.
  static std::unique_ptr<DuplexLink> connect(sim::Simulator& simA,
                                             sim::Simulator& simB, Node& a,
                                             std::size_t portA, Node& b,
                                             std::size_t portB,
                                             std::uint64_t rateBps,
                                             sim::Time propagationDelay);

  Channel& aToB() { return *aToB_; }
  Channel& bToA() { return *bToA_; }

 private:
  DuplexLink() = default;
  std::unique_ptr<Channel> aToB_;
  std::unique_ptr<Channel> bToA_;
};

}  // namespace tpp::net
