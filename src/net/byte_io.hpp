// Bounds-checked big-endian (network order) integer serialization.
//
// All wire formats in this library go through these helpers; readers return
// std::nullopt on truncation instead of reading out of bounds.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace tpp::net {

inline void putBe16(std::span<std::uint8_t> b, std::size_t off,
                    std::uint16_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 8);
  b[off + 1] = static_cast<std::uint8_t>(v);
}

inline void putBe32(std::span<std::uint8_t> b, std::size_t off,
                    std::uint32_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 24);
  b[off + 1] = static_cast<std::uint8_t>(v >> 16);
  b[off + 2] = static_cast<std::uint8_t>(v >> 8);
  b[off + 3] = static_cast<std::uint8_t>(v);
}

inline void putBe64(std::span<std::uint8_t> b, std::size_t off,
                    std::uint64_t v) {
  putBe32(b, off, static_cast<std::uint32_t>(v >> 32));
  putBe32(b, off + 4, static_cast<std::uint32_t>(v));
}

inline std::optional<std::uint16_t> getBe16(std::span<const std::uint8_t> b,
                                            std::size_t off) {
  if (off + 2 > b.size()) return std::nullopt;
  return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}

inline std::optional<std::uint32_t> getBe32(std::span<const std::uint8_t> b,
                                            std::size_t off) {
  if (off + 4 > b.size()) return std::nullopt;
  return (static_cast<std::uint32_t>(b[off]) << 24) |
         (static_cast<std::uint32_t>(b[off + 1]) << 16) |
         (static_cast<std::uint32_t>(b[off + 2]) << 8) |
         static_cast<std::uint32_t>(b[off + 3]);
}

inline std::optional<std::uint64_t> getBe64(std::span<const std::uint8_t> b,
                                            std::size_t off) {
  const auto hi = getBe32(b, off);
  const auto lo = getBe32(b, off + 4);
  if (!hi || !lo) return std::nullopt;
  return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
}

}  // namespace tpp::net
