// Node: anything with numbered ports that can receive packets — switches and
// hosts. Wiring is done by DuplexLink::connect, which hands each endpoint the
// transmit channel for its port.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/net/packet.hpp"

namespace tpp::net {

class Channel;

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }

  // A packet fully arrived on `port`.
  virtual void receive(PacketPtr packet, std::size_t port) = 0;

  // Called by DuplexLink::connect. `tx` remains owned by the link.
  virtual void attachPort(std::size_t port, Channel* tx);

  std::size_t portCount() const { return txChannels_.size(); }
  Channel* txChannel(std::size_t port) const { return txChannels_.at(port); }

 private:
  std::string name_;
  std::vector<Channel*> txChannels_;
};

}  // namespace tpp::net
