// Packet: owned wire bytes plus simulation-side metadata.
//
// The byte buffer is exactly what would appear on the wire (minus preamble,
// FCS and inter-frame gap, which are accounted for as a fixed serialization
// overhead by Link). The metadata block models the per-packet registers an
// ASIC carries alongside a packet through its pipeline (Table 2's
// "Per-Packet" namespace); it is rewritten at every hop.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/sim/time.hpp"

namespace tpp::net {

// Per-hop pipeline registers. Reset on ingress at each switch, filled in by
// pipeline stages, readable by TPPs through the PacketMetadata namespace.
struct PacketMeta {
  std::uint32_t inputPort = 0;
  std::uint32_t outputPort = 0;
  std::uint32_t queueId = 0;
  // Unique id of the flow-table entry that determined forwarding, stamped
  // with the entry's version (ndb, §2.3).
  std::uint32_t matchedEntryId = 0;
  std::uint32_t matchedTable = 0;   // 1=L2, 2=L3, 3=TCAM, 0=miss
  std::uint32_t altRouteCount = 0;  // alternate next-hops for this packet
  // Monitoring registers (DESIGN.md §14): the ECMP 5-tuple flow hash (low
  // 32 bits), the wire size, and — for recognized TCP-over-UDP segments —
  // sequence number, advertised window, and the passive-RTT spin bit.
  // tcpSpin is 0xffffffff ("not TCP") unless the parser recognized a
  // segment, so TPPs can gate on it with one CEXEC.
  std::uint32_t flowHashLo = 0;
  std::uint32_t packetBytes = 0;
  std::uint32_t tcpSeq = 0;
  std::uint32_t tcpWnd = 0;
  std::uint32_t tcpSpin = 0xffffffffu;
};

class Packet;

// Returns the packet to the freelist pool (or frees it when the pool is
// full). The deleter is stateless, so PacketPtr stays pointer-sized.
struct PacketDeleter {
  void operator()(Packet* packet) const noexcept;
};
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

class Packet {
 public:
  explicit Packet(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)), id_(nextId()++) {}

  // make() and clone() draw from a freelist pool: a recycled Packet keeps
  // its byte buffer's capacity, so steady-state traffic allocates nothing.
  // A reused packet is indistinguishable from a new one — fresh id, zeroed
  // metadata/bookkeeping, buffer contents fully overwritten. The pool is
  // process-global and not thread-safe, like the simulator itself.
  static PacketPtr make(std::vector<std::uint8_t> bytes);
  static PacketPtr make(std::size_t size, std::uint8_t fill = 0);

  PacketPtr clone() const;

  struct PoolStats {
    std::uint64_t reused = 0;    // make/clone served from the pool
    std::uint64_t allocated = 0; // make/clone that hit the heap
    std::uint64_t recycled = 0;  // deletions captured by the pool
    std::uint64_t freed = 0;     // deletions past the pool's capacity
  };
  static PoolStats poolStats();
  // Frees every pooled packet (tests that count live allocations).
  static void drainPool();

  std::vector<std::uint8_t>& bytes() { return bytes_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::span<std::uint8_t> span() { return bytes_; }
  std::span<const std::uint8_t> span() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

  std::uint64_t id() const { return id_; }

  PacketMeta& meta() { return meta_; }
  const PacketMeta& meta() const { return meta_; }
  void resetMeta() { meta_ = PacketMeta{}; }

  // Experiment bookkeeping (not visible to the dataplane).
  sim::Time createdAt = sim::Time::zero();
  std::uint64_t flowId = 0;

  // Hex dump of the first `maxBytes` bytes, 16 per line, for debugging.
  std::string hexdump(std::size_t maxBytes = 128) const;

 private:
  friend struct PacketDeleter;
  static std::uint64_t& nextId();
  // Makes a recycled packet fresh: new id, default metadata/bookkeeping.
  void reinitForReuse();
  static Packet* acquirePooled();  // nullptr when the pool is empty

  std::vector<std::uint8_t> bytes_;
  PacketMeta meta_;
  std::uint64_t id_;
};

}  // namespace tpp::net
