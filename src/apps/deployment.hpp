// The shipped deployment: effect summaries for all six bundled tasks plus
// the lock declarations their protocols rely on, in the form the
// interference analyzer (src/core/interference.hpp) consumes.
//
// This is the "whole datacenter" view the Minions extended paper argues
// for: before a new task's programs are admitted, the operator checks them
// against everything already running. `tppverify --interference --apps`
// certifies this set conflict-free, and host::Testbed::installTask uses the
// same analysis as an install-time gate.
#pragma once

#include <cstdint>

#include "src/core/interference.hpp"
#include "src/core/memory_map.hpp"

namespace tpp::apps {

struct Deployment {
  std::vector<core::EffectSummary> tasks;
  core::InterferenceOptions options;
};

// Lock declarations shared by every analysis of the standard address map:
// the per-port RCP lock word serializes writers of the rate register.
core::InterferenceOptions standardLockOptions();

// Summaries of representative program instances of all six apps
// (microburst, rcpstar incl. lock protocol, ndb, limiter, latency, mesh).
// `tokenAddress` is the limiter's granted SRAM counter word.
Deployment shippedDeployment(
    std::uint16_t tokenAddress = core::kSramBase,
    std::size_t maxHops = 8);

}  // namespace tpp::apps
