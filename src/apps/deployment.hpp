// The shipped deployment: effect summaries for all six bundled tasks plus
// the lock declarations their protocols rely on, in the form the
// interference analyzer (src/core/interference.hpp) consumes.
//
// This is the "whole datacenter" view the Minions extended paper argues
// for: before a new task's programs are admitted, the operator checks them
// against everything already running. `tppverify --interference --apps`
// certifies this set conflict-free, and host::Testbed::installTask uses the
// same analysis as an install-time gate.
#pragma once

#include <cstdint>

#include "src/core/interference.hpp"
#include "src/core/memory_map.hpp"

namespace tpp::apps {

struct Deployment {
  std::vector<core::EffectSummary> tasks;
  core::InterferenceOptions options;
};

// Lock declarations shared by every analysis of the standard address map:
// the per-port RCP lock word serializes writers of the rate register.
core::InterferenceOptions standardLockOptions();

// Summaries of representative program instances of all nine apps
// (microburst, rcpstar incl. lock protocol, ndb, limiter, latency, mesh,
// and the monitoring subsystem's sketch/dapper/spin resident hooks).
// `tokenAddress` is the limiter's granted SRAM counter word; the monitor
// bases are the canonical grant layout the scenario runner reproduces.
// Hook tasks are summarized at representative hashed columns (first and
// last): within one grant every column instance has the same effect kinds,
// and different tasks' grants are disjoint, so two columns bound the
// analysis cost without losing conflicts.
Deployment shippedDeployment(
    std::uint16_t tokenAddress = core::kSramBase,
    std::size_t maxHops = 8,
    std::uint16_t sketchBase = core::kSramBase + 0x100,
    std::uint16_t dapperBase = core::kSramBase + 0x210,
    std::uint16_t spinBase = core::kSramBase + 0x320);

}  // namespace tpp::apps
