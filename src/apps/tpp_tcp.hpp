// TPP-accelerated TCP congestion response: the win of "Accelerating
// End-host Congestion Response using P4 Programmable Switches" rebuilt on
// TPPs. A per-RTT probe TPP reads every hop's queue depth and link
// utilization; when a queue along the connection's path builds past a
// threshold, the controller shrinks the connection's cwnd *before* the
// queue overflows into loss — the TCP state machine itself never changes,
// it just gets earlier feedback than a drop.
//
// Graceful degradation is the point of the design, not an afterthought:
//   - probe blackout (every transmission lost): counted, no action — the
//     connection simply behaves as pure loss-based TCP;
//   - TCPU-off hops: the probe comes back truncated; the round is counted
//     and skipped rather than acted on from a partial picture;
//   - switch reboot: a BootEpoch change in the hop records marks the
//     switch's counters as freshly zeroed; that round is skipped too.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "src/apps/task_ids.hpp"
#include "src/core/program.hpp"
#include "src/host/host.hpp"
#include "src/host/prober.hpp"
#include "src/host/tcp.hpp"

namespace tpp::apps {

// The per-RTT collect program: 5 pushed words per hop.
core::Program makeTcpCongestionProbeProgram(
    std::size_t maxHops = 8, std::uint16_t taskId = kTaskTcpTpp);
inline constexpr std::size_t kTcpProbeValuesPerHop = 5;

class TppTcpController {
 public:
  struct Config {
    std::size_t maxHops = 8;
    // Probe cadence: max(minPeriod, connection srtt).
    sim::Time minPeriod = sim::Time::us(200);
    // Cut cwnd when any hop's egress queue exceeds this many bytes.
    std::uint32_t queueThresholdBytes = 24 * 1024;
    double cutFactor = 0.7;
    // At most one probe-driven cut per srtt (the cut needs an RTT to act).
    std::uint16_t taskId = kTaskTcpTpp;
    // Reliable-probe policy.
    sim::Time probeTimeout = sim::Time::ms(2);
    sim::Time probeMaxBackoff = sim::Time::ms(8);
    unsigned probeMaxRetries = 1;
  };

  // Probes along `conn`'s path (to its remote endpoint's echo service).
  // Call start() after conn.connect(); the controller stops itself when
  // the connection closes or fails.
  TppTcpController(host::Host& sender, host::TcpConnection& conn,
                   Config config);

  void start(sim::Time at);
  void stop();

  // ------------------------------------------------- degradation telemetry
  // The prober exists from the first tick onwards (see start()).
  const host::ReliableProber& prober() const { return *prober_; }
  std::uint64_t probesSent() const {
    return prober_ ? prober_->probesSent() : 0;
  }
  std::uint64_t probeLosses() const { return probeLosses_; }
  std::uint64_t truncatedRounds() const { return truncatedRounds_; }
  std::uint64_t epochChanges() const { return epochChanges_; }
  std::uint64_t probeCuts() const { return probeCuts_; }
  std::uint32_t maxQueueSeen() const { return maxQueueSeen_; }
  const std::map<std::uint32_t, std::uint32_t>& epochBySwitch() const {
    return epochBySwitch_;
  }

 private:
  // Value column layout within a hop record.
  enum Column : std::size_t {
    kSwitchId = 0,
    kQueueBytes = 1,
    kUtilizationPpm = 2,
    kCapacityMbps = 3,
    kBootEpoch = 4,
  };

  void tick();
  void onEcho(const core::ExecutedTpp& tpp);
  sim::Time period() const;

  host::Host& sender_;
  host::TcpConnection& conn_;
  Config cfg_;
  core::Program program_;
  std::unique_ptr<host::ReliableProber> prober_;
  bool running_ = false;
  sim::EventHandle timer_;

  std::map<std::uint32_t, std::uint32_t> epochBySwitch_;
  sim::Time lastCutAt_ = sim::Time::ns(-1'000'000'000);
  std::uint64_t probeLosses_ = 0;
  std::uint64_t truncatedRounds_ = 0;
  std::uint64_t epochChanges_ = 0;
  std::uint64_t probeCuts_ = 0;
  std::uint32_t maxQueueSeen_ = 0;
};

}  // namespace tpp::apps
