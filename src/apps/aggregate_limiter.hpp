// Distributed aggregate rate limiting — end-hosts coordinating through
// switch memory, built entirely from the paper's primitives.
//
// The paper's thesis is that "end-hosts can coordinate with the network to
// implement a wide range of network tasks" given only reads, writes and an
// atomic CSTORE. This task proves the point beyond the three §2 examples:
// enforce ONE aggregate byte-rate across MANY senders, with no
// sender-to-sender channel at all.
//
//   * The control plane allocates one SRAM word on a switch every sender
//     traverses: the shared token counter (bytes).
//   * A refiller (control-plane agent or any trusted host) periodically
//     adds tokens with a CSTORE read-modify-write loop, capping at the
//     bucket size.
//   * Before transmitting a burst of B bytes, a sender claims tokens with
//     a CEXEC-scoped CSTORE(tokens, t, t-B); a failed swap returns the
//     observed balance, so retries converge without extra reads.
//
// Linearizability of CSTORE (§2.2) is exactly what makes the counter sane
// under concurrent claims.
#pragma once

#include <cstdint>

#include "src/core/program.hpp"
#include "src/host/flow.hpp"
#include "src/host/host.hpp"
#include "src/sim/random.hpp"
#include "src/sim/stats.hpp"
#include "src/apps/task_ids.hpp"

namespace tpp::apps {

// The limiter's two TPPs, exposed for deployment-level interference
// analysis (src/apps/deployment.hpp) as well as the roles below.
//
// Claim/refill program: CEXEC pins execution to the switch holding the
// counter; CSTORE does the read-modify-write; a trailing PUSH of the boot
// epoch both timestamps the counter's SRAM generation and — because the
// stack only advances when the suffix actually ran — proves the target
// switch executed the TPP (vs. a TPP-unaware switch forwarding it inert).
core::Program makeTokenCasProgram(std::uint32_t switchId,
                                  std::uint16_t address, std::uint32_t expect,
                                  std::uint32_t desired,
                                  std::uint16_t taskId = kTaskLimiter);
// Read-only balance refresh: same CEXEC pin, PUSH of the counter + epoch.
core::Program makeTokenReadProgram(std::uint32_t switchId,
                                   std::uint16_t address,
                                   std::uint16_t taskId = kTaskLimiter);

// Periodically tops up the shared token word (runs at a trusted host; the
// probes traverse `targetSwitchId` where the counter lives).
class TokenRefiller {
 public:
  struct Config {
    net::MacAddress dstMac;       // any destination beyond the switch
    net::Ipv4Address dstIp;
    std::uint32_t targetSwitchId = 1;
    std::uint16_t tokenAddress = 0;   // SRAM virtual address
    double aggregateRateBps = 10e6;   // refill rate
    std::uint64_t bucketBytes = 64 * 1024;
    sim::Time period = sim::Time::ms(10);
    std::uint16_t taskId = kTaskLimiter;
  };

  TokenRefiller(host::Host& agent, Config config);

  void start(sim::Time at);
  void stop();

  std::uint64_t refills() const { return refills_; }
  // Times a boot-epoch change revealed the counter was wiped and the
  // refiller re-installed its SRAM state from scratch.
  std::uint64_t epochResets() const { return epochResets_; }

 private:
  void refill();
  void attempt();
  void onResult(const core::ExecutedTpp& tpp);

  host::Host& agent_;
  Config config_;
  bool running_ = false;
  sim::EventHandle timer_;
  std::uint32_t lastSeen_ = 0;
  std::uint32_t lastEpoch_ = 0;
  std::uint64_t epochResets_ = 0;
  // Earned-but-not-yet-credited bytes; survives failed CAS attempts so
  // consumer contention never silently lowers the aggregate rate.
  std::uint64_t deficit_ = 0;
  int retriesLeft_ = 0;
  std::uint64_t refills_ = 0;
};

// Gates a PacedFlow behind the shared token word: the flow only transmits
// chunks whose bytes were claimed from the counter.
class TokenBucketSender {
 public:
  struct Config {
    std::uint32_t targetSwitchId = 1;
    std::uint16_t tokenAddress = 0;
    std::uint32_t chunkBytes = 4000;  // claim granularity
    sim::Time retryDelay = sim::Time::ms(2);
    std::uint16_t taskId = kTaskLimiter;
    // Seed for retry jitter. Symmetric senders on a deterministic
    // substrate would otherwise lose every CAS race to the same winner.
    std::uint64_t jitterSeed = 1;
  };

  // `flow` must be constructed but not started; the sender drives it.
  TokenBucketSender(host::Host& sender, host::PacedFlow& flow, Config config);

  void start(sim::Time at);
  void stop();

  std::uint64_t bytesClaimed() const { return claimed_; }
  std::uint64_t claimsFailed() const { return failed_; }
  std::uint64_t bytesSent() const { return flow_.bytesSent(); }
  // Boot-epoch changes observed at the counter's switch (stale local view
  // discarded each time).
  std::uint64_t epochResets() const { return epochResets_; }

 private:
  void tryClaim();
  void onResult(const core::ExecutedTpp& tpp);
  void pump();

  host::Host& sender_;
  host::PacedFlow& flow_;
  Config config_;
  sim::Rng rng_;
  bool running_ = false;
  bool claimInFlight_ = false;
  sim::EventHandle timer_;
  std::uint32_t lastSeen_ = 0;
  std::uint32_t lastEpoch_ = 0;
  std::uint64_t epochResets_ = 0;
  std::uint64_t claimed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t budget_ = 0;  // claimed bytes not yet transmitted
};

}  // namespace tpp::apps
