#include "src/apps/aimd.hpp"

#include <algorithm>

#include "src/net/byte_io.hpp"
#include "src/net/ethernet.hpp"
#include "src/net/ipv4.hpp"

namespace tpp::apps {

namespace {
// Sequence number rides in payload bytes [8,16) (bytes [0,8) carry the
// flow id written by PacedFlow).
constexpr std::size_t kSeqOffset = net::kEthernetHeaderSize +
                                   net::kIpv4HeaderSize +
                                   net::kUdpHeaderSize + 8;
}  // namespace

AimdController::AimdController(host::PacedFlow& flow, host::Host& receiver,
                               Config config)
    : flow_(flow), config_(config) {
  flow_.setPacketHook([this](net::Packet& packet) {
    if (packet.size() >= kSeqOffset + 8) {
      net::putBe64(packet.span(), kSeqOffset, seq_++);
    }
  });
  receiver.bindUdp(flow_.spec().dstPort, [this](const host::UdpDatagram& d) {
    if (d.payload.size() < 16) return;
    const auto seq = net::getBe64(d.payload, 8);
    if (!seq) return;
    // Gap = packets lost in the bottleneck queue. (Reordering cannot occur
    // on a single FIFO path.)
    if (*seq > expectedSeq_) {
      const auto lost = *seq - expectedSeq_;
      lossesThisPeriod_ += lost;
      totalLosses_ += lost;
    }
    expectedSeq_ = *seq + 1;
  });
}

void AimdController::start(sim::Time at) {
  running_ = true;
  flow_.start(at);
  timer_ = flow_.source().simulator().scheduleAt(at + config_.rtt,
                                                 [this] { period(); });
}

void AimdController::stop() {
  running_ = false;
  timer_.cancel();
  flow_.stop();
}

void AimdController::period() {
  if (!running_) return;
  double rate = flow_.rateBps();
  if (lossesThisPeriod_ > 0) {
    rate *= config_.multiplicativeDecrease;
  } else {
    rate += config_.additiveBps;
  }
  rate = std::max(rate, config_.minRateBps);
  flow_.setRateBps(rate);
  lossesThisPeriod_ = 0;
  rateSeries_.add(flow_.source().simulator().now(), rate);
  timer_ = flow_.source().simulator().schedule(config_.rtt,
                                               [this] { period(); });
}

}  // namespace tpp::apps
