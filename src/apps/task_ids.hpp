// Well-known task ids for the bundled applications.
//
// Every app tags its probes with a distinct default task id so flight-
// recorder traces (and SRAM grants, and collector filters) can tell the
// tasks apart when several share a testbed — `tpptrace --probe 2:17` means
// "RCP*'s probe 17" unambiguously. Callers running multiple instances of
// one app still pass explicit ids (the multi-tenant tests do).
//
// Id 0 stays reserved as "untagged": collectors treat it as "accept any",
// and the SramAllocator's open mode keys off having no grants, not id 0.
#pragma once

#include <cstdint>

namespace tpp::apps {

inline constexpr std::uint16_t kTaskMicroburst = 1;  // §2.1 monitor
inline constexpr std::uint16_t kTaskRcpStar = 2;     // §2.2 congestion ctrl
inline constexpr std::uint16_t kTaskNdb = 3;         // §2.3 path tracing
inline constexpr std::uint16_t kTaskLimiter = 4;     // aggregate limiter
inline constexpr std::uint16_t kTaskLatency = 5;     // latency profiler
inline constexpr std::uint16_t kTaskMesh = 6;        // mesh prober
inline constexpr std::uint16_t kTaskTcpTpp = 7;      // TCP congestion probe
// In-switch monitoring subsystem (DESIGN.md §14). The defaults embedded in
// monitor::SketchConfig/DapperConfig/SpinConfig match these.
inline constexpr std::uint16_t kTaskSketch = 8;      // count-min sketch
inline constexpr std::uint16_t kTaskDapper = 9;      // TCP flow diagnoser
inline constexpr std::uint16_t kTaskSpinRtt = 10;    // spin-bit RTT

}  // namespace tpp::apps
