#include "src/apps/mesh_prober.hpp"

namespace tpp::apps {

MeshProber::MeshProber(std::vector<Pair> pairs, Config config)
    : pairs_(std::move(pairs)), config_(config),
      program_(makeTraceProgram(config.maxHops, config.taskId)),
      health_(pairs_.size()), answeredAtSweepStart_(pairs_.size(), 0) {
  // One result handler per pair, registered on the pair's source host.
  // Pairs are disambiguated by task id (base + index), so several pairs
  // may share a source host.
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    pairs_[i].src->onTppResult([this, i](const core::ExecutedTpp& tpp) {
      onResult(i, tpp);
    });
  }
}

void MeshProber::start(sim::Time at) {
  running_ = true;
  timer_ = pairs_.front().src->simulator().scheduleAt(at,
                                                      [this] { sweep(); });
}

void MeshProber::stop() {
  running_ = false;
  timer_.cancel();
}

void MeshProber::sweep() {
  if (!running_) return;
  if (sweeps_ > 0 || health_[0].sent > 0) ++sweeps_;
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    answeredAtSweepStart_[i] = health_[i].answered;
    pairs_.front().src->simulator().schedule(
        config_.pairSpacing * static_cast<std::int64_t>(i),
        [this, i] { probePair(i); });
  }
  timer_ = pairs_.front().src->simulator().schedule(config_.sweepInterval,
                                                    [this] { sweep(); });
}

void MeshProber::probePair(std::size_t index) {
  if (!running_) return;
  auto& pair = pairs_[index];
  // Per-pair task id disambiguates echoes on shared source hosts.
  auto program = program_;
  program.taskId =
      static_cast<std::uint16_t>(config_.taskId + index + 1);
  health_[index].lastSentAtNs = pair.src->simulator().now().nanos();
  pair.src->sendProbe(pair.dst->mac(), pair.dst->ip(), program);
  ++health_[index].sent;
}

void MeshProber::onResult(std::size_t index,
                          const core::ExecutedTpp& tpp) {
  auto& h = health_[index];
  if (tpp.header.taskId !=
      static_cast<std::uint16_t>(config_.taskId + index + 1)) {
    return;
  }
  if (tpp.instructions.size() != 3 ||
      tpp.instructions[0].op != core::Opcode::Push) {
    return;
  }
  ++h.answered;
  const auto now = pairs_[index].src->simulator().now();
  h.rttUs.add((now - sim::Time::ns(h.lastSentAtNs)).toMicros());
  const auto trace = parseTrace(tpp, h.lastPath.size());
  if (trace.incomplete) {
    // A hole (TPP-unaware hop) or truncated record region: keep the RTT
    // sample but don't let the short path masquerade as a reroute.
    ++h.incompleteTraces;
    return;
  }
  std::vector<std::uint32_t> path;
  for (const auto& hop : trace.hops) path.push_back(hop.switchId);
  if (!h.lastPath.empty() && path != h.lastPath) h.pathChanged = true;
  h.lastPath = std::move(path);
}

std::vector<std::size_t> MeshProber::unreachablePairs() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    if (health_[i].sent > 0 &&
        health_[i].answered == answeredAtSweepStart_[i]) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace tpp::apps
