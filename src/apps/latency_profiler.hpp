// Per-hop latency breakdown (paper §2.1: "the end-host knows exactly how
// to interpret values in the packet to obtain a detailed breakdown of
// queueing latencies on all network hops").
//
// A hop-addressed TPP records, at every switch, a 4-word record:
//     [Switch:SwitchID, Switch:TimeLo, Queue:QueueSize, Link:CapacityMbps]
// From one probe the sender derives, per hop:
//   segment delay   t(h+1) - t(h): everything between consecutive TCPUs
//                   (residual serialization + queueing + propagation);
//   queueing delay  queueBytes * 8 / linkRate: the component the paper's
//                   micro-burst story cares about.
// The timestamps come from the switches' dataplane clocks; the simulation
// substrate keeps them perfectly synchronized (a real deployment would
// bound skew with PTP — the queue-depth column needs no synchronization
// at all).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/program.hpp"
#include "src/host/host.hpp"
#include "src/sim/stats.hpp"
#include "src/apps/task_ids.hpp"

namespace tpp::apps {

// The hop-mode profiling program (4 words per hop).
core::Program makeLatencyProbeProgram(std::size_t maxHops = 8,
                                      std::uint16_t taskId = kTaskLatency);

class LatencyProfiler {
 public:
  struct Config {
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    sim::Time interval = sim::Time::ms(1);
    std::size_t maxHops = 8;
    std::uint16_t taskId = kTaskLatency;
    // Known path length; when non-zero, echoes carrying fewer hop records
    // (a TPP-unaware switch left a hole) still feed the per-hop summaries
    // but are counted as partial.
    std::size_t expectedHops = 0;
  };

  LatencyProfiler(host::Host& prober, Config config);

  void start(sim::Time at);
  void stop();

  struct HopReport {
    std::uint32_t switchId = 0;
    sim::Summary segmentDelayUs;  // to the next hop (last hop: absent)
    sim::Summary queueDelayUs;    // queueBytes*8/capacity at this hop
    sim::Summary queueBytes;
  };

  std::size_t hopsObserved() const { return hops_.size(); }
  const HopReport& hop(std::size_t h) const { return hops_.at(h); }
  std::uint64_t probesSent() const { return sent_; }
  std::uint64_t resultsReceived() const { return received_; }
  // Echoes with fewer hop records than expectedHops: sampled, but flagged
  // so an operator can tell a short path from a lossy one.
  std::uint64_t partialResults() const { return partial_; }

 private:
  void probe();
  void onResult(const core::ExecutedTpp& tpp);

  host::Host& prober_;
  Config config_;
  core::Program program_;
  bool running_ = false;
  sim::EventHandle pending_;
  std::vector<HopReport> hops_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t partial_ = 0;
};

}  // namespace tpp::apps
