// DCTCP-style controller: the ECN-based middle ground between blind AIMD
// and RCP's explicit rates. The switch marks CE above a queue threshold
// (SwitchConfig::ecnThresholdBytes); the receiver reports the fraction of
// marked packets; the sender scales back proportionally to that fraction
// (rate *= 1 - alpha/2) instead of halving on any loss.
//
// Included as a second fixed-function baseline (§4 mentions ECN expressly):
// it shows what one hard-wired bit buys — low standing queues — and what
// it cannot: explicit fair shares or per-hop attribution.
#pragma once

#include <cstdint>

#include "src/host/flow.hpp"
#include "src/host/host.hpp"
#include "src/sim/stats.hpp"

namespace tpp::apps {

class DctcpController {
 public:
  struct Config {
    sim::Time rtt = sim::Time::ms(50);  // control period
    double additiveBps = 100e3;
    double minRateBps = 50e3;
    double gain = 1.0 / 16.0;  // g in alpha = (1-g)*alpha + g*frac
  };

  DctcpController(host::PacedFlow& flow, host::Host& receiver, Config config);

  void start(sim::Time at);
  void stop();

  double currentRateBps() const { return flow_.rateBps(); }
  double alpha() const { return alpha_; }
  std::uint64_t markedSeen() const { return totalMarked_; }
  const sim::TimeSeries& rateSeries() const { return rateSeries_; }

 private:
  void period();

  host::PacedFlow& flow_;
  Config config_;
  bool running_ = false;
  sim::EventHandle timer_;
  std::uint64_t packetsThisPeriod_ = 0;
  std::uint64_t markedThisPeriod_ = 0;
  std::uint64_t totalMarked_ = 0;
  double alpha_ = 0.0;
  sim::TimeSeries rateSeries_;
};

}  // namespace tpp::apps
