#include "src/apps/tpp_tcp.hpp"

#include <algorithm>

#include "src/core/memory_map.hpp"
#include "src/core/verifier.hpp"
#include "src/host/collector.hpp"

namespace tpp::apps {

core::Program makeTcpCongestionProbeProgram(std::size_t maxHops,
                                            std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  b.push(core::addr::SwitchId);
  b.push(core::addr::PortQueueBytes);
  b.push(core::addr::TxUtilization);
  b.push(core::addr::LinkCapacityMbps);
  b.push(core::addr::SwitchBootEpoch);
  b.reserve(
      static_cast<std::uint8_t>(kTcpProbeValuesPerHop * maxHops));
  return core::verified(b.buildChecked(), {.maxHops = maxHops});
}

TppTcpController::TppTcpController(host::Host& sender,
                                   host::TcpConnection& conn, Config config)
    : sender_(sender), conn_(conn), cfg_(config),
      program_(makeTcpCongestionProbeProgram(config.maxHops, config.taskId)) {
}

void TppTcpController::start(sim::Time at) {
  if (running_) return;
  running_ = true;
  timer_ = sender_.simulator().scheduleAt(at, [this] { tick(); });
}

void TppTcpController::stop() {
  running_ = false;
  timer_.cancel();
}

sim::Time TppTcpController::period() const {
  return std::max(cfg_.minPeriod, conn_.srtt());
}

void TppTcpController::tick() {
  if (!running_) return;
  if (conn_.done()) {  // the transfer ended; the control loop ends with it
    running_ = false;
    return;
  }
  if (!prober_) {
    // Built on the first tick, not at start(): the connection's remote
    // endpoint is only fixed once connect()/accept() has run, which for
    // workload generators happens at simulation time, after start().
    host::ReliableProber::Config pc;
    pc.dstMac = conn_.remoteMac();
    pc.dstIp = conn_.remoteIp();
    pc.timeout = cfg_.probeTimeout;
    pc.maxBackoff = cfg_.probeMaxBackoff;
    pc.maxRetries = cfg_.probeMaxRetries;
    prober_ = std::make_unique<host::ReliableProber>(sender_, pc);
  }
  prober_->send(
      program_, [this](const core::ExecutedTpp& tpp) { onEcho(tpp); },
      [this](std::uint32_t) { ++probeLosses_; });
  timer_ = sender_.simulator().schedule(period(), [this] { tick(); });
}

void TppTcpController::onEcho(const core::ExecutedTpp& tpp) {
  const std::size_t initialSpWords =
      host::ReliableProber::seqWordIndex(program_) + 1;
  const auto split = host::splitStackRecordsChecked(
      tpp, kTcpProbeValuesPerHop, initialSpWords);
  if (split.truncated || split.records.empty()) {
    // A TCPU-off hop (or mangled echo): no per-hop picture this round.
    ++truncatedRounds_;
    return;
  }

  // A switch that rebooted since the last round has freshly-zeroed queue
  // and utilization counters; acting on them would cut or coast wrongly.
  bool epochChanged = false;
  for (const auto& rec : split.records) {
    const std::uint32_t id = rec[kSwitchId];
    const std::uint32_t epoch = rec[kBootEpoch];
    const auto it = epochBySwitch_.find(id);
    if (it != epochBySwitch_.end() && it->second != epoch) {
      epochChanged = true;
      ++epochChanges_;
    }
    epochBySwitch_[id] = epoch;
  }
  if (epochChanged) return;

  std::uint32_t maxQueue = 0;
  for (const auto& rec : split.records) {
    maxQueue = std::max(maxQueue, rec[kQueueBytes]);
  }
  maxQueueSeen_ = std::max(maxQueueSeen_, maxQueue);

  if (maxQueue > cfg_.queueThresholdBytes) {
    // Shrink before the queue overflows into drops — but at most once per
    // srtt, since a cut needs an RTT to show up in the queue.
    const sim::Time now = sender_.simulator().now();
    if (now - lastCutAt_ >= conn_.srtt()) {
      lastCutAt_ = now;
      ++probeCuts_;
      conn_.cutCwnd(cfg_.cutFactor, /*reason=*/2);
    }
  }
}

}  // namespace tpp::apps
