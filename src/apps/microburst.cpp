#include "src/apps/microburst.hpp"

#include "src/core/memory_map.hpp"
#include "src/core/verifier.hpp"
#include "src/host/collector.hpp"

namespace tpp::apps {

core::Program makeQueueProbeProgram(std::size_t maxHops,
                                    std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  b.push(core::addr::SwitchId);
  b.push(core::addr::QueueBytes);
  b.reserve(static_cast<std::uint8_t>(2 * maxHops));
  return core::verified(b.buildChecked(), {.maxHops = maxHops});
}

MicroburstMonitor::MicroburstMonitor(host::Host& prober, Config config)
    : prober_(prober), config_(config),
      program_(makeQueueProbeProgram(config.maxHops, config.taskId)) {
  prober_.onTppResult([this](const core::ExecutedTpp& tpp) { onResult(tpp); });
}

void MicroburstMonitor::start(sim::Time at) {
  running_ = true;
  pending_ = prober_.simulator().scheduleAt(at, [this] { probe(); });
}

void MicroburstMonitor::stop() {
  running_ = false;
  pending_.cancel();
}

void MicroburstMonitor::probe() {
  if (!running_) return;
  prober_.sendProbe(config_.dstMac, config_.dstIp, program_);
  ++sent_;
  pending_ = prober_.simulator().schedule(config_.interval,
                                          [this] { probe(); });
}

void MicroburstMonitor::onResult(const core::ExecutedTpp& tpp) {
  if (tpp.header.taskId != config_.taskId) return;
  ++received_;
  const auto split = host::splitStackRecordsChecked(tpp, 2);
  if (!split.complete(config_.expectedHops)) ++partial_;
  const auto& records = split.records;
  if (records.size() > hopSeries_.size()) {
    hopSeries_.resize(records.size());
    hopSwitchIds_.resize(records.size(), 0);
  }
  const auto now = prober_.simulator().now();
  for (std::size_t h = 0; h < records.size(); ++h) {
    hopSwitchIds_[h] = records[h][0];
    hopSeries_[h].add(now, static_cast<double>(records[h][1]));
  }
}

ControlPlanePoller::ControlPlanePoller(asic::Switch& sw, std::size_t port,
                                       std::size_t queue, sim::Time interval)
    : sw_(sw), port_(port), queue_(queue), interval_(interval) {}

void ControlPlanePoller::start(sim::Time at) {
  running_ = true;
  pending_ = sw_.simulator().scheduleAt(at, [this] { poll(); });
}

void ControlPlanePoller::stop() {
  running_ = false;
  pending_.cancel();
}

void ControlPlanePoller::poll() {
  if (!running_) return;
  series_.add(sw_.simulator().now(),
              static_cast<double>(sw_.queueStats(port_, queue_).bytes));
  pending_ = sw_.simulator().schedule(interval_, [this] { poll(); });
}

std::vector<Burst> detectBursts(const sim::TimeSeries& series,
                                double thresholdBytes) {
  std::vector<Burst> out;
  bool inBurst = false;
  Burst current;
  for (const auto& [t, v] : series.points()) {
    if (!inBurst && v >= thresholdBytes) {
      inBurst = true;
      current = Burst{t, t, v};
    } else if (inBurst) {
      if (v >= thresholdBytes) {
        current.end = t;
        current.peakBytes = std::max(current.peakBytes, v);
      } else {
        current.end = t;
        out.push_back(current);
        inBurst = false;
      }
    }
  }
  if (inBurst) out.push_back(current);
  return out;
}

double detectionRecall(const std::vector<Burst>& reference,
                       const std::vector<Burst>& observed) {
  if (reference.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& ref : reference) {
    for (const auto& obs : observed) {
      if (obs.start <= ref.end && obs.end >= ref.start) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(reference.size());
}

}  // namespace tpp::apps
