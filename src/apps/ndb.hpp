// ndb — the forwarding-plane debugger refactored over TPPs (paper §2.3).
//
// Each traced packet carries
//     PUSH [Switch:ID]
//     PUSH [PacketMetadata:MatchedEntryID]
//     PUSH [PacketMetadata:InputPort]
// so the receiver reconstructs, per hop, which switch forwarded it, which
// version-stamped flow entry matched, and on which port it arrived —
// without the network generating the truncated packet copies the original
// ndb [8] requires.
//
// The IntentStore holds the control plane's expected (switch, entry) path;
// comparing it against observed traces flags control/dataplane divergence:
// wrong paths, stale (old-version) entries, or unexpected switches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/program.hpp"
#include "src/host/flow.hpp"
#include "src/host/host.hpp"
#include "src/apps/task_ids.hpp"

namespace tpp::apps {

// The §2.3 trace program (3 pushed words per hop).
core::Program makeTraceProgram(std::size_t maxHops = 8,
                               std::uint16_t taskId = kTaskNdb);

struct HopTrace {
  std::uint32_t switchId = 0;
  std::uint32_t matchedEntryId = 0;  // packed (version << 16) | id
  std::uint32_t inputPort = 0;

  std::uint16_t entryVersion() const {
    return static_cast<std::uint16_t>(matchedEntryId >> 16);
  }
  std::uint16_t entryIndex() const {
    return static_cast<std::uint16_t>(matchedEntryId);
  }
};

struct PacketTrace {
  std::vector<HopTrace> hops;
  bool faulted = false;
  // The trace is structurally damaged or shorter than the expected path:
  // a TPP-unaware switch left a hole (no record, no hop-count bump), or
  // corruption truncated the record region. The hops above are still the
  // valid prefix — a partial trace flagged incomplete, not a corrupt one.
  bool incomplete = false;
};

// Parses a fully-executed trace TPP into per-hop records. When
// `expectedHops` is non-zero, traces with fewer records are flagged
// incomplete (the §2.3 path length is known to the operator).
PacketTrace parseTrace(const core::ExecutedTpp& tpp,
                       std::size_t expectedHops = 0);

// Control-plane intent: the path (and exact table entries) a class of
// packets is supposed to take.
class IntentStore {
 public:
  struct ExpectedHop {
    std::uint32_t switchId = 0;
    std::uint32_t matchedEntryId = 0;  // packed; 0 = any entry is fine
  };

  void setExpectedPath(std::vector<ExpectedHop> path) {
    path_ = std::move(path);
  }
  const std::vector<ExpectedHop>& expectedPath() const { return path_; }

  // Builds intent from a known-good trace taken while the network was in
  // its intended state — the practical way an operator snapshots intent
  // without mirroring every switch's tables.
  static IntentStore fromGoldenTrace(const PacketTrace& golden) {
    IntentStore store;
    std::vector<ExpectedHop> path;
    for (const auto& hop : golden.hops) {
      path.push_back({hop.switchId, hop.matchedEntryId});
    }
    store.setExpectedPath(std::move(path));
    return store;
  }

  enum class DivergenceKind {
    PathLengthMismatch,  // trace shorter/longer than intent
    WrongSwitch,         // packet visited an unexpected switch
    WrongEntry,          // right switch, different table entry
    StaleVersion,        // right entry, but an outdated version forwarded it
  };

  struct Divergence {
    std::size_t hop = 0;
    DivergenceKind kind;
    std::uint32_t expected = 0;
    std::uint32_t observed = 0;
  };

  // Empty result = the dataplane forwarded exactly as intended.
  std::vector<Divergence> check(const PacketTrace& trace) const;

 private:
  std::vector<ExpectedHop> path_;
};

std::string divergenceKindName(IntentStore::DivergenceKind kind);

// Receiver-side trace collection: hook a host's TPP arrivals and keep the
// reconstructed traces (§2.3's "reassembled by servers"). Only TPPs whose
// program matches makeTraceProgram's shape (and, if non-zero, `taskId`)
// are collected — other tasks' TPPs on the same host are ignored.
class TraceCollector {
 public:
  explicit TraceCollector(host::Host& receiver, std::uint16_t taskId = kTaskNdb,
                          std::size_t expectedHops = 0);

  const std::vector<PacketTrace>& traces() const { return traces_; }
  std::size_t count() const { return traces_.size(); }
  // Traces flagged incomplete (holes from TPP-unaware switches etc.).
  std::size_t incompleteCount() const { return incomplete_; }
  void clear() {
    traces_.clear();
    incomplete_ = 0;
  }

 private:
  std::vector<PacketTrace> traces_;
  std::size_t incomplete_ = 0;
};

// Overhead model of the original ndb's approach for comparison: each hop
// emits a truncated copy (headerBytes + metadata) to a collector, so a
// packet traversing H hops costs H * (copyBytes + collectorHeaders) extra
// network bytes, versus the TPP's fixed in-packet cost.
struct NdbCopyOverheadModel {
  std::size_t copyBytes = 64;             // truncated packet copy
  std::size_t encapsulationBytes = 42;    // eth+ip+udp to reach collector

  std::size_t bytesPerPacket(std::size_t hops) const {
    return hops * (copyBytes + encapsulationBytes);
  }
};

// TPP trace cost for the same packet (shim + instructions + per-hop data).
std::size_t tppTraceBytesPerPacket(std::size_t hops);

}  // namespace tpp::apps
