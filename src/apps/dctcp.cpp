#include "src/apps/dctcp.hpp"

#include <algorithm>

#include "src/net/ipv4.hpp"

namespace tpp::apps {

DctcpController::DctcpController(host::PacedFlow& flow, host::Host& receiver,
                                 Config config)
    : flow_(flow), config_(config) {
  // Senders mark their traffic ECN-capable so switches may CE-mark it.
  flow_.setPacketHook([](net::Packet& packet) {
    auto bytes = packet.span();
    if (bytes.size() < net::kEthernetHeaderSize + net::kIpv4HeaderSize) {
      return;
    }
    auto ip = bytes.subspan(net::kEthernetHeaderSize);
    ip[1] = static_cast<std::uint8_t>((ip[1] & ~0x03) | net::kEcnEct0);
    // Refresh the checksum after touching the TOS byte.
    ip[10] = 0;
    ip[11] = 0;
    const auto sum = net::internetChecksum(ip.first(net::kIpv4HeaderSize));
    ip[10] = static_cast<std::uint8_t>(sum >> 8);
    ip[11] = static_cast<std::uint8_t>(sum);
  });
  receiver.bindUdp(flow_.spec().dstPort, [this](const host::UdpDatagram& d) {
    ++packetsThisPeriod_;
    if (d.ecn == net::kEcnCe) {
      ++markedThisPeriod_;
      ++totalMarked_;
    }
  });
}

void DctcpController::start(sim::Time at) {
  running_ = true;
  flow_.start(at);
  timer_ = flow_.source().simulator().scheduleAt(at + config_.rtt,
                                                 [this] { period(); });
}

void DctcpController::stop() {
  running_ = false;
  timer_.cancel();
  flow_.stop();
}

void DctcpController::period() {
  if (!running_) return;
  const double frac =
      packetsThisPeriod_ > 0
          ? static_cast<double>(markedThisPeriod_) /
                static_cast<double>(packetsThisPeriod_)
          : 0.0;
  alpha_ = (1.0 - config_.gain) * alpha_ + config_.gain * frac;

  double rate = flow_.rateBps();
  if (markedThisPeriod_ > 0) {
    rate *= 1.0 - alpha_ / 2.0;
  } else {
    rate += config_.additiveBps;
  }
  rate = std::max(rate, config_.minRateBps);
  flow_.setRateBps(rate);
  packetsThisPeriod_ = 0;
  markedThisPeriod_ = 0;
  rateSeries_.add(flow_.source().simulator().now(), rate);
  timer_ = flow_.source().simulator().schedule(config_.rtt,
                                               [this] { period(); });
}

}  // namespace tpp::apps
