// RCP* — the end-host refactoring of RCP (paper §2.2).
//
// Per control period T, each flow's rate controller runs three phases:
//
//   Phase 1 (Collect)  Probe TPPs gather, per hop: switch id, egress queue
//                      bytes, offered-load utilization, link capacity, the
//                      link's fair-share rate register, and the switch's
//                      boot epoch (so wiped scratch state is detectable).
//   Phase 2 (Compute)  The sender averages the queue samples, evaluates the
//                      RCP control equation per link, and identifies the
//                      bottleneck (the minimum R_link).
//   Phase 3 (Update)   A CEXEC-guarded TPP writes the new R into ONLY the
//                      bottleneck switch's rate register — the sender never
//                      needs to know the route to that switch.
//
// The switch contributes nothing but reads, a conditional-execute and a
// write; the control law lives entirely at the end-host.
//
// Robustness: probes go through a ReliableProber (sequence numbers,
// timeouts, capped-backoff retransmit). A control period that loses every
// collect probe falls back to a multiplicative rate decrease instead of
// silently coasting on stale samples. Optionally (useCstoreLock), Phase-3
// updates are serialized through a per-port CSTORE lock word; the lock is
// epoch-checked so a switch reboot that wipes it never wedges the
// controller (the stuck-lock case of the Minions extended version).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/core/program.hpp"
#include "src/host/collector.hpp"
#include "src/host/flow.hpp"
#include "src/host/host.hpp"
#include "src/host/prober.hpp"
#include "src/rcp/rcp.hpp"
#include "src/sim/stats.hpp"
#include "src/apps/task_ids.hpp"

namespace tpp::apps {

// The Phase-1 collect program (6 pushed words per hop).
core::Program makeRcpCollectProgram(std::size_t maxHops = 8,
                                    std::uint16_t taskId = kTaskRcpStar);
// The Phase-3 update program: execute only on `bottleneckSwitchId`, store
// `newRateKbps` into the link's rate register.
core::Program makeRcpUpdateProgram(std::uint32_t bottleneckSwitchId,
                                   std::uint32_t newRateKbps,
                                   std::uint16_t taskId = kTaskRcpStar);

// Lock programs: push (switch id, boot epoch) at every hop — so the sender
// can verify the target switch was actually traversed and executing TPPs —
// then, on the target switch only, CSTORE the per-port lock word. Acquire
// swaps 0 → ownerId; release swaps ownerId → 0. The CSTORE writes the
// observed old value back into pmem[kRcpLockResultWord], which is how the
// end-host learns whether the swap took effect.
core::Program makeRcpLockAcquireProgram(std::uint32_t switchId,
                                        std::uint32_t ownerId,
                                        std::size_t maxHops = 8,
                                        std::uint16_t taskId = kTaskRcpStar);
core::Program makeRcpLockReleaseProgram(std::uint32_t switchId,
                                        std::uint32_t ownerId,
                                        std::size_t maxHops = 8,
                                        std::uint16_t taskId = kTaskRcpStar);
// pmem word holding the CSTORE comparand / returned old value in the lock
// programs (after the CEXEC's two immediate words).
inline constexpr std::size_t kRcpLockResultWord = 2;
// Words pushed per hop by the lock programs: (switch id, boot epoch).
inline constexpr std::size_t kRcpLockValuesPerHop = 2;

class RcpStarController {
 public:
  struct Config {
    rcp::RcpParams params;
    sim::Time period = sim::Time::ms(10);  // control period T
    std::size_t probesPerPeriod = 4;
    std::size_t maxHops = 8;
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    std::uint16_t taskId = kTaskRcpStar;
    // Reliable-probe policy (per probe, within a period).
    sim::Time probeTimeout = sim::Time::ms(2);
    sim::Time probeMaxBackoff = sim::Time::ms(8);
    unsigned probeMaxRetries = 2;
    // Fallback when a whole period's probes are lost: rate *= mdFactor
    // (floored at minRateFraction of the last seen bottleneck capacity).
    double mdFactor = 0.5;
    // Serialize Phase-3 updates through the bottleneck port's CSTORE lock
    // word (Link:RCP-LockRegister). Off by default: a single controller per
    // path needs no mutual exclusion.
    bool useCstoreLock = false;
    // Lock owner id (nonzero). 0 = derive from the sender's IPv4 address.
    std::uint32_t controllerId = 0;
  };

  // Drives `flow`'s rate from the fair-share registers along its path.
  RcpStarController(host::Host& sender, host::PacedFlow& flow, Config config);

  void start(sim::Time at);
  void stop();

  double currentRateBps() const { return currentRateBps_; }
  // Rate assigned to the flow over time (for Fig 2's R(t)/C series).
  const sim::TimeSeries& rateSeries() const { return rateSeries_; }
  // Most recent per-link computed R (bps), ordered by hop.
  const std::vector<double>& linkRatesBps() const { return linkRatesBps_; }
  std::uint32_t bottleneckSwitchId() const { return bottleneckSwitchId_; }
  std::uint64_t updatesSent() const { return updates_; }

  // ------------------------------------------------- degradation telemetry
  const host::ReliableProber& prober() const { return *prober_; }
  std::uint64_t probeLosses() const { return probeLosses_; }
  std::uint64_t mdFallbacks() const { return mdFallbacks_; }
  std::uint64_t truncatedCollects() const { return truncatedCollects_; }
  // Last boot epoch observed per switch id (from collect records).
  const std::map<std::uint32_t, std::uint32_t>& epochBySwitch() const {
    return epochBySwitch_;
  }

  // ------------------------------------------------------- lock telemetry
  bool lockHeld() const { return lockState_ == LockState::Held; }
  std::uint32_t lockOwnerId() const { return ownerId_; }
  std::uint64_t lockAcquisitions() const { return lockAcquisitions_; }
  std::uint64_t lockContention() const { return lockContention_; }
  std::uint64_t lockUnreachable() const { return lockUnreachable_; }
  // Times a held/contended lock was discovered wiped by a reboot (the
  // epoch check) and local state was reset instead of deadlocking.
  std::uint64_t lockEpochResets() const { return lockEpochResets_; }
  // Safety-net expiries of the release retry cap.
  std::uint64_t lockForcedReleases() const { return lockForcedReleases_; }

 private:
  static constexpr std::size_t kValuesPerHop = 6;
  // Value column layout within a hop record.
  enum Column : std::size_t {
    kSwitchId = 0,
    kQueueBytes = 1,
    kUtilizationPpm = 2,
    kCapacityMbps = 3,
    kRateKbps = 4,
    kBootEpoch = 5,
  };
  enum class LockState : std::uint8_t { Released, Acquiring, Held, Releasing };
  static constexpr unsigned kReleaseRetryCap = 3;

  void sendCollectProbe();
  void onCollect(const core::ExecutedTpp& tpp);
  void computeAndUpdate();
  double rateFloorBps() const;

  // Lock protocol (useCstoreLock).
  void updateViaLock(std::uint32_t rateKbps);
  void startAcquire(std::uint32_t target, std::uint32_t rateKbps);
  void startRelease();
  void sendRelease();
  void sendLockedUpdate(std::uint32_t rateKbps);
  // Extracts the target switch's boot epoch from a lock-program echo.
  static std::optional<std::uint32_t> epochFromLockEcho(
      const core::ExecutedTpp& tpp, std::size_t initialSpWords,
      std::uint32_t switchId);

  host::Host& sender_;
  host::PacedFlow& flow_;
  Config config_;
  core::Program collectProgram_;
  std::unique_ptr<host::ReliableProber> prober_;
  bool running_ = false;
  sim::EventHandle probeTimer_;
  sim::EventHandle periodTimer_;

  host::HopSampleAverager averager_{kValuesPerHop};
  // Last raw record per hop (for the non-averaged columns).
  std::vector<host::HopRecord> lastRecords_;
  std::map<std::uint32_t, std::uint32_t> epochBySwitch_;

  double currentRateBps_ = 0;
  double lastBottleneckCapacityBps_ = 0;
  std::vector<double> linkRatesBps_;
  std::uint32_t bottleneckSwitchId_ = 0;
  std::uint64_t updates_ = 0;
  sim::TimeSeries rateSeries_;

  std::uint64_t probeLosses_ = 0;
  std::uint64_t mdFallbacks_ = 0;
  std::uint64_t truncatedCollects_ = 0;

  std::uint32_t ownerId_ = 0;
  LockState lockState_ = LockState::Released;
  std::uint32_t lockSwitchId_ = 0;
  std::uint32_t lockEpoch_ = 0;
  unsigned releaseRetriesLeft_ = 0;
  std::uint64_t lockAcquisitions_ = 0;
  std::uint64_t lockContention_ = 0;
  std::uint64_t lockUnreachable_ = 0;
  std::uint64_t lockEpochResets_ = 0;
  std::uint64_t lockForcedReleases_ = 0;
};

}  // namespace tpp::apps
