// RCP* — the end-host refactoring of RCP (paper §2.2).
//
// Per control period T, each flow's rate controller runs three phases:
//
//   Phase 1 (Collect)  Probe TPPs gather, per hop: switch id, egress queue
//                      bytes, offered-load utilization, link capacity, and
//                      the link's fair-share rate register.
//   Phase 2 (Compute)  The sender averages the queue samples, evaluates the
//                      RCP control equation per link, and identifies the
//                      bottleneck (the minimum R_link).
//   Phase 3 (Update)   A CEXEC-guarded TPP writes the new R into ONLY the
//                      bottleneck switch's rate register — the sender never
//                      needs to know the route to that switch.
//
// The switch contributes nothing but reads, a conditional-execute and a
// write; the control law lives entirely at the end-host.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/program.hpp"
#include "src/host/collector.hpp"
#include "src/host/flow.hpp"
#include "src/host/host.hpp"
#include "src/rcp/rcp.hpp"
#include "src/sim/stats.hpp"

namespace tpp::apps {

// The Phase-1 collect program (5 pushed words per hop).
core::Program makeRcpCollectProgram(std::size_t maxHops = 8,
                                    std::uint16_t taskId = 0);
// The Phase-3 update program: execute only on `bottleneckSwitchId`, store
// `newRateKbps` into the link's rate register.
core::Program makeRcpUpdateProgram(std::uint32_t bottleneckSwitchId,
                                   std::uint32_t newRateKbps,
                                   std::uint16_t taskId = 0);

class RcpStarController {
 public:
  struct Config {
    rcp::RcpParams params;
    sim::Time period = sim::Time::ms(10);  // control period T
    std::size_t probesPerPeriod = 4;
    std::size_t maxHops = 8;
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    std::uint16_t taskId = 0;
    // Offered-load smoothing: use the utilization register as-is.
  };

  // Drives `flow`'s rate from the fair-share registers along its path.
  RcpStarController(host::Host& sender, host::PacedFlow& flow, Config config);

  void start(sim::Time at);
  void stop();

  double currentRateBps() const { return currentRateBps_; }
  // Rate assigned to the flow over time (for Fig 2's R(t)/C series).
  const sim::TimeSeries& rateSeries() const { return rateSeries_; }
  // Most recent per-link computed R (bps), ordered by hop.
  const std::vector<double>& linkRatesBps() const { return linkRatesBps_; }
  std::uint32_t bottleneckSwitchId() const { return bottleneckSwitchId_; }
  std::uint64_t updatesSent() const { return updates_; }

 private:
  static constexpr std::size_t kValuesPerHop = 5;
  // Value column layout within a hop record.
  enum Column : std::size_t {
    kSwitchId = 0,
    kQueueBytes = 1,
    kUtilizationPpm = 2,
    kCapacityMbps = 3,
    kRateKbps = 4,
  };

  void sendCollectProbe();
  void onResult(const core::ExecutedTpp& tpp);
  void computeAndUpdate();

  host::Host& sender_;
  host::PacedFlow& flow_;
  Config config_;
  core::Program collectProgram_;
  bool running_ = false;
  sim::EventHandle probeTimer_;
  sim::EventHandle periodTimer_;

  host::HopSampleAverager averager_{kValuesPerHop};
  // Last raw record per hop (for the non-averaged columns).
  std::vector<host::HopRecord> lastRecords_;

  double currentRateBps_ = 0;
  std::vector<double> linkRatesBps_;
  std::uint32_t bottleneckSwitchId_ = 0;
  std::uint64_t updates_ = 0;
  sim::TimeSeries rateSeries_;
};

}  // namespace tpp::apps
