#include "src/apps/ndb.hpp"

#include "src/core/header.hpp"
#include "src/core/memory_map.hpp"
#include "src/core/verifier.hpp"
#include "src/host/collector.hpp"

namespace tpp::apps {

core::Program makeTraceProgram(std::size_t maxHops, std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  b.push(core::addr::SwitchId);
  b.push(core::addr::MatchedEntryId);
  b.push(core::addr::InputPort);
  b.reserve(static_cast<std::uint8_t>(3 * maxHops));
  return core::verified(b.buildChecked(), {.maxHops = maxHops});
}

PacketTrace parseTrace(const core::ExecutedTpp& tpp,
                       std::size_t expectedHops) {
  PacketTrace out;
  out.faulted = (tpp.header.flags & core::kFlagFaulted) != 0;
  const auto split = host::splitStackRecordsChecked(tpp, 3);
  for (const auto& rec : split.records) {
    out.hops.push_back(HopTrace{rec[0], rec[1], rec[2]});
  }
  out.incomplete = !split.complete(expectedHops);
  return out;
}

std::vector<IntentStore::Divergence> IntentStore::check(
    const PacketTrace& trace) const {
  std::vector<Divergence> out;
  if (trace.hops.size() != path_.size()) {
    out.push_back(Divergence{0, DivergenceKind::PathLengthMismatch,
                             static_cast<std::uint32_t>(path_.size()),
                             static_cast<std::uint32_t>(trace.hops.size())});
  }
  const std::size_t hops = std::min(trace.hops.size(), path_.size());
  for (std::size_t h = 0; h < hops; ++h) {
    const auto& expect = path_[h];
    const auto& got = trace.hops[h];
    if (expect.switchId != got.switchId) {
      out.push_back(Divergence{h, DivergenceKind::WrongSwitch,
                               expect.switchId, got.switchId});
      continue;
    }
    if (expect.matchedEntryId == 0) continue;
    if (expect.matchedEntryId == got.matchedEntryId) continue;
    const bool sameEntry =
        (expect.matchedEntryId & 0xffff) == (got.matchedEntryId & 0xffff);
    out.push_back(Divergence{
        h,
        sameEntry ? DivergenceKind::StaleVersion : DivergenceKind::WrongEntry,
        expect.matchedEntryId, got.matchedEntryId});
  }
  return out;
}

std::string divergenceKindName(IntentStore::DivergenceKind kind) {
  switch (kind) {
    case IntentStore::DivergenceKind::PathLengthMismatch:
      return "path-length-mismatch";
    case IntentStore::DivergenceKind::WrongSwitch: return "wrong-switch";
    case IntentStore::DivergenceKind::WrongEntry: return "wrong-entry";
    case IntentStore::DivergenceKind::StaleVersion: return "stale-version";
  }
  return "?";
}

namespace {

bool isTraceProgram(const core::ExecutedTpp& tpp) {
  if (tpp.instructions.size() != 3) return false;
  const std::uint16_t wanted[] = {core::addr::SwitchId,
                                  core::addr::MatchedEntryId,
                                  core::addr::InputPort};
  for (std::size_t i = 0; i < 3; ++i) {
    if (tpp.instructions[i].op != core::Opcode::Push ||
        tpp.instructions[i].addr != wanted[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

TraceCollector::TraceCollector(host::Host& receiver, std::uint16_t taskId,
                               std::size_t expectedHops) {
  receiver.onTppArrival([this, taskId, expectedHops](
                            const core::ExecutedTpp& tpp) {
    if (!isTraceProgram(tpp)) return;
    if (taskId != 0 && tpp.header.taskId != taskId) return;
    traces_.push_back(parseTrace(tpp, expectedHops));
    if (traces_.back().incomplete) ++incomplete_;
  });
}

std::size_t tppTraceBytesPerPacket(std::size_t hops) {
  // Shim header + 3 instructions + 3 words of packet memory per hop.
  return core::kTppHeaderSize + 3 * core::kInstructionSize +
         hops * 3 * core::kWordSize;
}

}  // namespace tpp::apps
