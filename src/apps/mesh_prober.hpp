// Mesh prober: fabric-wide health monitoring from the edge (the
// Pingmesh-style deployment the paper's edge-centric design implies).
//
// One coordinator sweeps trace probes across a set of host pairs; every
// answer yields the pair's live path and per-hop reachability. Because the
// probes are ordinary TPPs, the same sweep simultaneously verifies
// forwarding (ndb-style) and measures RTT — no per-switch agents, no
// mirror sessions.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/apps/ndb.hpp"
#include "src/host/host.hpp"
#include "src/sim/stats.hpp"
#include "src/apps/task_ids.hpp"

namespace tpp::apps {

class MeshProber {
 public:
  struct Pair {
    host::Host* src = nullptr;
    host::Host* dst = nullptr;
  };

  struct Config {
    sim::Time sweepInterval = sim::Time::ms(100);  // between full sweeps
    sim::Time pairSpacing = sim::Time::us(100);    // between pair probes
    std::size_t maxHops = 8;
    std::uint16_t taskId = kTaskMesh;
  };

  struct PairHealth {
    std::uint64_t sent = 0;
    std::uint64_t answered = 0;
    std::int64_t lastSentAtNs = 0;
    sim::Summary rttUs;
    std::vector<std::uint32_t> lastPath;  // switch ids
    bool pathChanged = false;             // any sweep-to-sweep difference
    // Answers whose trace was structurally truncated or shorter than the
    // last full path (a TPP-unaware hop left a hole). Counted for RTT but
    // excluded from path comparison so a hole never reads as a reroute.
    std::uint64_t incompleteTraces = 0;
  };

  MeshProber(std::vector<Pair> pairs, Config config);

  void start(sim::Time at);
  void stop();

  std::size_t pairCount() const { return pairs_.size(); }
  const PairHealth& health(std::size_t pair) const {
    return health_.at(pair);
  }
  // Pairs whose probes went unanswered in the latest completed sweep.
  std::vector<std::size_t> unreachablePairs() const;
  std::size_t sweepsCompleted() const { return sweeps_; }

 private:
  void sweep();
  void probePair(std::size_t index);
  void onResult(std::size_t index, const core::ExecutedTpp& tpp);

  std::vector<Pair> pairs_;
  Config config_;
  core::Program program_;
  bool running_ = false;
  sim::EventHandle timer_;
  std::vector<PairHealth> health_;
  std::vector<std::uint64_t> answeredAtSweepStart_;
  std::size_t sweeps_ = 0;
};

}  // namespace tpp::apps
