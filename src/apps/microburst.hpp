// Micro-burst detection (paper §2.1): per-probe queue-size snapshots along
// a path via `PUSH [Switch:SwitchID]; PUSH [Queue:QueueSize]`, versus the
// control-plane polling baseline that only observes state every 1–10 s and
// misses sub-RTT queue excursions entirely.
#pragma once

#include <cstdint>
#include <vector>

#include "src/asic/switch.hpp"
#include "src/core/program.hpp"
#include "src/host/host.hpp"
#include "src/sim/stats.hpp"
#include "src/apps/task_ids.hpp"

namespace tpp::apps {

// The §2.1 queue-query program: two pushed words per hop.
core::Program makeQueueProbeProgram(std::size_t maxHops = 8,
                                    std::uint16_t taskId = kTaskMicroburst);

// Sends queue-probe TPPs at `interval` and accumulates, per hop, a time
// series of (echo arrival time, queue bytes).
class MicroburstMonitor {
 public:
  struct Config {
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    sim::Time interval = sim::Time::us(100);
    std::size_t maxHops = 8;
    std::uint16_t taskId = kTaskMicroburst;
    // Known path length; when non-zero, echoes with fewer hop records are
    // still sampled but counted as partial (a TPP-unaware hop left a hole).
    std::size_t expectedHops = 0;
  };

  MicroburstMonitor(host::Host& prober, Config config);

  void start(sim::Time at);
  void stop();

  std::size_t hopsObserved() const { return hopSeries_.size(); }
  const sim::TimeSeries& hopSeries(std::size_t hop) const {
    return hopSeries_.at(hop);
  }
  // Switch id observed at `hop` (from the probe's first pushed word).
  std::uint32_t hopSwitchId(std::size_t hop) const {
    return hopSwitchIds_.at(hop);
  }
  std::uint64_t probesSent() const { return sent_; }
  std::uint64_t resultsReceived() const { return received_; }
  // Echoes whose hop records were truncated or shorter than expectedHops:
  // emitted as partial samples, flagged rather than silently mis-parsed.
  std::uint64_t partialResults() const { return partial_; }

 private:
  void probe();
  void onResult(const core::ExecutedTpp& tpp);

  host::Host& prober_;
  Config config_;
  core::Program program_;
  bool running_ = false;
  sim::EventHandle pending_;
  std::vector<sim::TimeSeries> hopSeries_;
  std::vector<std::uint32_t> hopSwitchIds_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t partial_ = 0;
};

// The baseline: a management-plane poller reading the same queue counter
// directly from the switch at a coarse interval (SNMP/sFlow timescales).
class ControlPlanePoller {
 public:
  ControlPlanePoller(asic::Switch& sw, std::size_t port, std::size_t queue,
                     sim::Time interval);

  void start(sim::Time at);
  void stop();
  const sim::TimeSeries& series() const { return series_; }

 private:
  void poll();

  asic::Switch& sw_;
  std::size_t port_;
  std::size_t queue_;
  sim::Time interval_;
  bool running_ = false;
  sim::EventHandle pending_;
  sim::TimeSeries series_;
};

// A queue-occupancy excursion above `thresholdBytes`.
struct Burst {
  sim::Time start;
  sim::Time end;
  double peakBytes = 0;
};

// Threshold detector over a sampled series: a burst begins at the first
// sample above threshold and ends at the first sample back below it.
std::vector<Burst> detectBursts(const sim::TimeSeries& series,
                                double thresholdBytes);

// Fraction of reference bursts that `observed` also detects (overlapping
// intervals count as detected). The headline micro-burst metric: per-packet
// TPP telemetry scores ~1, second-scale polling ~0.
double detectionRecall(const std::vector<Burst>& reference,
                       const std::vector<Burst>& observed);

}  // namespace tpp::apps
