#include "src/apps/deployment.hpp"

#include "src/apps/aggregate_limiter.hpp"
#include "src/apps/latency_profiler.hpp"
#include "src/apps/mesh_prober.hpp"
#include "src/apps/microburst.hpp"
#include "src/apps/ndb.hpp"
#include "src/apps/rcpstar.hpp"
#include "src/apps/task_ids.hpp"
#include "src/core/hook.hpp"
#include "src/monitor/dapper.hpp"
#include "src/monitor/sketch.hpp"
#include "src/monitor/spin.hpp"

namespace tpp::apps {

core::InterferenceOptions standardLockOptions() {
  core::InterferenceOptions opts;
  core::LockSpec rcpLock;
  rcpLock.lockAddress = core::addr::RcpLockRegister;
  rcpLock.protectedAddresses = {core::addr::RcpRateRegister};
  rcpLock.name = "rcp-lock";
  opts.locks.push_back(std::move(rcpLock));
  return opts;
}

Deployment shippedDeployment(std::uint16_t tokenAddress, std::size_t maxHops,
                             std::uint16_t sketchBase,
                             std::uint16_t dapperBase,
                             std::uint16_t spinBase) {
  // The CEXEC-pinned programs are parameterized by a target switch id; the
  // analyzer only needs *a* representative instance, because a pin on a
  // different id yields the same effects with a different guard value —
  // which can only make conflicts disappear (guard-disjointness), never
  // appear.
  constexpr std::uint32_t kAnySwitch = 1;
  constexpr std::uint32_t kAnyOwner = 0x0a000001;  // nonzero lock owner id

  Deployment d;
  d.options = standardLockOptions();

  d.tasks.push_back(
      core::summarize(makeQueueProbeProgram(maxHops), "microburst", maxHops));

  core::EffectSummary rcp;
  rcp.name = "rcpstar";
  core::summarizeProgram(makeRcpCollectProgram(maxHops), rcp, maxHops);
  core::summarizeProgram(makeRcpUpdateProgram(kAnySwitch, /*newRateKbps=*/1),
                         rcp, maxHops);
  core::summarizeProgram(makeRcpLockAcquireProgram(kAnySwitch, kAnyOwner,
                                                   maxHops),
                         rcp, maxHops);
  core::summarizeProgram(makeRcpLockReleaseProgram(kAnySwitch, kAnyOwner,
                                                   maxHops),
                         rcp, maxHops);
  d.tasks.push_back(std::move(rcp));

  d.tasks.push_back(
      core::summarize(makeTraceProgram(maxHops), "ndb", maxHops));

  core::EffectSummary limiter;
  limiter.name = "limiter";
  core::summarizeProgram(makeTokenCasProgram(kAnySwitch, tokenAddress,
                                             /*expect=*/0, /*desired=*/1),
                         limiter, maxHops);
  core::summarizeProgram(makeTokenReadProgram(kAnySwitch, tokenAddress),
                         limiter, maxHops);
  d.tasks.push_back(std::move(limiter));

  d.tasks.push_back(core::summarize(makeLatencyProbeProgram(maxHops),
                                    "latency", maxHops));

  d.tasks.push_back(core::summarize(makeTraceProgram(maxHops, kTaskMesh),
                                    "mesh", maxHops));

  // Monitoring subsystem (DESIGN.md §14). Resident hooks are summarized as
  // materialized instances at the first and last hashed column — all
  // columns of one hook have identical effect kinds over its own grant, so
  // the pair bounds analysis cost without hiding conflicts.
  constexpr std::uint64_t kAnyFlow = 0x1234;
  {
    monitor::CountMinSketch sketch;
    core::EffectSummary s;
    s.name = "sketch";
    const auto hook = sketch.updateHook(sketchBase);
    for (const std::uint32_t col : {0u, sketch.config().width - 1}) {
      core::summarizeProgram(core::materializeHook(hook, col), s, maxHops);
    }
    core::summarizeProgram(
        sketch.readProbeProgram(sketchBase, kAnySwitch, kAnyFlow), s,
        maxHops);
    core::summarizeProgram(sketch.epochBumpProgram(sketchBase, kAnySwitch, 0),
                           s, maxHops);
    core::summarizeProgram(
        sketch.counterResetProgram(
            sketch.counterAddress(sketchBase, 0, kAnyFlow), kAnySwitch, 1),
        s, maxHops);
    d.tasks.push_back(std::move(s));
  }
  {
    monitor::FlowDiagnoser dapper;
    core::EffectSummary s;
    s.name = "dapper";
    const auto init = dapper.initHook(dapperBase);
    const auto update = dapper.updateHook(dapperBase);
    for (const std::uint32_t col : {0u, dapper.config().slots - 1}) {
      core::summarizeProgram(core::materializeHook(init, col, kAnyFlow), s,
                             maxHops);
      core::summarizeProgram(core::materializeHook(update, col, kAnyFlow), s,
                             maxHops);
    }
    d.tasks.push_back(std::move(s));
  }
  {
    monitor::SpinRttMonitor spin;
    core::EffectSummary s;
    s.name = "spin-rtt";
    const auto hook = spin.hook(spinBase);
    for (const std::uint32_t col : {0u, spin.config().slots - 1}) {
      core::summarizeProgram(core::materializeHook(hook, col, kAnyFlow), s,
                             maxHops);
    }
    d.tasks.push_back(std::move(s));
  }

  return d;
}

}  // namespace tpp::apps
