#include "src/apps/latency_profiler.hpp"

#include "src/core/memory_map.hpp"
#include "src/core/verifier.hpp"
#include "src/host/collector.hpp"

namespace tpp::apps {

namespace {
enum Column : std::size_t {
  kSwitchId = 0,
  kTimeLo = 1,
  kQueueBytes = 2,
  kCapacityMbps = 3,
};
constexpr std::size_t kWordsPerHop = 4;
}  // namespace

core::Program makeLatencyProbeProgram(std::size_t maxHops,
                                      std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  b.mode(core::AddressingMode::Hop);
  b.perHop(kWordsPerHop);
  b.load(core::addr::SwitchId, kSwitchId);
  b.load(core::addr::TimeLo, kTimeLo);
  b.load(core::addr::QueueBytes, kQueueBytes);
  b.load(core::addr::LinkCapacityMbps, kCapacityMbps);
  b.reserve(static_cast<std::uint8_t>(kWordsPerHop * maxHops));
  return core::verified(b.buildChecked(), {.maxHops = maxHops});
}

LatencyProfiler::LatencyProfiler(host::Host& prober, Config config)
    : prober_(prober), config_(config),
      program_(makeLatencyProbeProgram(config.maxHops, config.taskId)) {
  prober_.onTppResult([this](const core::ExecutedTpp& tpp) { onResult(tpp); });
}

void LatencyProfiler::start(sim::Time at) {
  running_ = true;
  pending_ = prober_.simulator().scheduleAt(at, [this] { probe(); });
}

void LatencyProfiler::stop() {
  running_ = false;
  pending_.cancel();
}

void LatencyProfiler::probe() {
  if (!running_) return;
  prober_.sendProbe(config_.dstMac, config_.dstIp, program_);
  ++sent_;
  pending_ = prober_.simulator().schedule(config_.interval,
                                          [this] { probe(); });
}

void LatencyProfiler::onResult(const core::ExecutedTpp& tpp) {
  if (tpp.header.taskId != config_.taskId ||
      tpp.header.mode != core::AddressingMode::Hop ||
      tpp.header.perHopWords != kWordsPerHop) {
    return;
  }
  const auto records = host::splitHopRecords(tpp);
  if (records.empty()) return;
  ++received_;
  if (config_.expectedHops != 0 && records.size() < config_.expectedHops) {
    ++partial_;
  }
  if (records.size() > hops_.size()) hops_.resize(records.size());

  for (std::size_t h = 0; h < records.size(); ++h) {
    auto& report = hops_[h];
    report.switchId = records[h][kSwitchId];
    report.queueBytes.add(records[h][kQueueBytes]);
    const double capMbps = records[h][kCapacityMbps];
    if (capMbps > 0) {
      report.queueDelayUs.add(records[h][kQueueBytes] * 8.0 /
                              (capMbps * 1e6) * 1e6);
    }
    if (h + 1 < records.size()) {
      // Dataplane clocks are 32-bit ns registers; unsigned subtraction
      // handles a single wraparound between hops.
      const std::uint32_t dt = records[h + 1][kTimeLo] - records[h][kTimeLo];
      report.segmentDelayUs.add(dt / 1000.0);
    }
  }
}

}  // namespace tpp::apps
