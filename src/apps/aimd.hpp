// AIMD baseline: a rate-based TCP-Reno-flavoured controller, the "TCP and
// its variants still remain the dominant congestion control algorithms"
// strawman of §2.2. It needs no network support at all — which is exactly
// why it converges slowly compared to RCP/RCP*: each flow discovers its
// fair share by filling the bottleneck queue until it drops.
//
// Mechanics: the sender stamps a sequence number into each packet; the
// receiver detects gaps and reports them back to the controller (modelled
// as an out-of-band ACK channel). Once per RTT the controller halves the
// rate if any loss was reported, otherwise adds `additiveBps`.
#pragma once

#include <cstdint>

#include "src/host/flow.hpp"
#include "src/host/host.hpp"
#include "src/sim/stats.hpp"

namespace tpp::apps {

class AimdController {
 public:
  struct Config {
    sim::Time rtt = sim::Time::ms(50);   // control period
    double additiveBps = 100e3;          // increase per period
    double minRateBps = 50e3;
    double multiplicativeDecrease = 0.5;
  };

  // Installs the sequence-stamping hook on `flow` and a gap detector on
  // the receiving host's flow port.
  AimdController(host::PacedFlow& flow, host::Host& receiver, Config config);

  void start(sim::Time at);
  void stop();

  double currentRateBps() const { return flow_.rateBps(); }
  std::uint64_t lossesDetected() const { return totalLosses_; }
  const sim::TimeSeries& rateSeries() const { return rateSeries_; }

 private:
  void period();

  host::PacedFlow& flow_;
  Config config_;
  bool running_ = false;
  sim::EventHandle timer_;
  std::uint64_t seq_ = 0;
  std::uint64_t expectedSeq_ = 0;
  std::uint64_t lossesThisPeriod_ = 0;
  std::uint64_t totalLosses_ = 0;
  sim::TimeSeries rateSeries_;
};

}  // namespace tpp::apps
