#include "src/apps/rcpstar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/memory_map.hpp"
#include "src/core/verifier.hpp"

namespace tpp::apps {

namespace addr = core::addr;

core::Program makeRcpCollectProgram(std::size_t maxHops,
                                    std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  b.push(addr::SwitchId);
  b.push(addr::PortQueueBytes);     // [Link:QueueSize]
  b.push(addr::TxUtilization);      // offered load on the egress link
  b.push(addr::LinkCapacityMbps);
  b.push(addr::RcpRateRegister);    // [Link:RCP-RateRegister]
  b.reserve(static_cast<std::uint8_t>(5 * maxHops));
  return core::verified(*b.build(), {.maxHops = maxHops});
}

core::Program makeRcpUpdateProgram(std::uint32_t bottleneckSwitchId,
                                   std::uint32_t newRateKbps,
                                   std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  // CEXEC [Switch:SwitchID], 0xFFFFFFFF, $BottleneckSwitchID
  b.cexec(addr::SwitchId, 0xffffffffu, bottleneckSwitchId);
  // STORE [Link:RCP-RateRegister], [PacketMemory:Offset]
  b.storeImm(addr::RcpRateRegister, newRateKbps);
  return core::verified(*b.build());
}

RcpStarController::RcpStarController(host::Host& sender,
                                     host::PacedFlow& flow, Config config)
    : sender_(sender), flow_(flow), config_(config),
      collectProgram_(makeRcpCollectProgram(config.maxHops, config.taskId)) {
  sender_.onTppResult([this](const core::ExecutedTpp& tpp) { onResult(tpp); });
}

void RcpStarController::start(sim::Time at) {
  running_ = true;
  probeTimer_ =
      sender_.simulator().scheduleAt(at, [this] { sendCollectProbe(); });
  periodTimer_ = sender_.simulator().scheduleAt(
      at + config_.period, [this] { computeAndUpdate(); });
}

void RcpStarController::stop() {
  running_ = false;
  probeTimer_.cancel();
  periodTimer_.cancel();
}

void RcpStarController::sendCollectProbe() {
  if (!running_) return;
  sender_.sendProbe(config_.dstMac, config_.dstIp, collectProgram_);
  probeTimer_ = sender_.simulator().schedule(
      config_.period /
          static_cast<std::int64_t>(std::max<std::size_t>(
              config_.probesPerPeriod, 1)),
      [this] { sendCollectProbe(); });
}

void RcpStarController::onResult(const core::ExecutedTpp& tpp) {
  // Only this task's collect-phase echoes carry hop records (the Phase-3
  // update program pushes nothing, and other tasks carry other taskIds).
  if (tpp.header.taskId != config_.taskId || tpp.instructions.empty() ||
      tpp.instructions.front().op != core::Opcode::Push) {
    return;
  }
  auto records = host::splitStackRecords(tpp, kValuesPerHop);
  if (records.empty()) return;
  averager_.add(records);
  lastRecords_ = std::move(records);
}

void RcpStarController::computeAndUpdate() {
  if (!running_) return;

  if (!lastRecords_.empty()) {
    // Phase 2: per-link control equation on collected samples.
    const double T = config_.period.toSeconds();
    linkRatesBps_.assign(lastRecords_.size(), 0.0);
    double minRate = std::numeric_limits<double>::infinity();
    std::size_t minHop = 0;
    for (std::size_t h = 0; h < lastRecords_.size(); ++h) {
      const auto& rec = lastRecords_[h];
      const double capacity = static_cast<double>(rec[kCapacityMbps]) * 1e6;
      if (capacity <= 0) continue;
      const double offered =
          averager_.mean(h, kUtilizationPpm) / 1e6 * capacity;
      const double avgQueueBits = averager_.mean(h, kQueueBytes) * 8.0;
      const double prevRate = static_cast<double>(rec[kRateKbps]) * 1000.0;
      const double next = rcp::rcpStep(prevRate, capacity, offered,
                                       avgQueueBits, T, config_.params);
      linkRatesBps_[h] = next;
      if (next < minRate) {
        minRate = next;
        minHop = h;
      }
    }

    if (std::isfinite(minRate)) {
      bottleneckSwitchId_ = lastRecords_[minHop][kSwitchId];
      // Phase 3: update only the bottleneck link's register.
      const auto update = makeRcpUpdateProgram(
          bottleneckSwitchId_, static_cast<std::uint32_t>(minRate / 1000.0),
          config_.taskId);
      sender_.sendProbe(config_.dstMac, config_.dstIp, update);
      ++updates_;

      // The flow transmits at its path's fair share.
      currentRateBps_ = minRate;
      flow_.setRateBps(minRate);
    }
  }
  rateSeries_.add(sender_.simulator().now(), currentRateBps_);
  averager_.reset();

  periodTimer_ = sender_.simulator().schedule(config_.period,
                                              [this] { computeAndUpdate(); });
}

}  // namespace tpp::apps
