#include "src/apps/rcpstar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/memory_map.hpp"
#include "src/core/verifier.hpp"

namespace tpp::apps {

namespace addr = core::addr;

core::Program makeRcpCollectProgram(std::size_t maxHops,
                                    std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  b.push(addr::SwitchId);
  b.push(addr::PortQueueBytes);     // [Link:QueueSize]
  b.push(addr::TxUtilization);      // offered load on the egress link
  b.push(addr::LinkCapacityMbps);
  b.push(addr::RcpRateRegister);    // [Link:RCP-RateRegister]
  b.push(addr::SwitchBootEpoch);    // detect scratch-wiping reboots
  b.reserve(static_cast<std::uint8_t>(6 * maxHops));
  return core::verified(b.buildChecked(), {.maxHops = maxHops});
}

core::Program makeRcpUpdateProgram(std::uint32_t bottleneckSwitchId,
                                   std::uint32_t newRateKbps,
                                   std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  // CEXEC [Switch:SwitchID], 0xFFFFFFFF, $BottleneckSwitchID
  b.cexec(addr::SwitchId, 0xffffffffu, bottleneckSwitchId);
  // STORE [Link:RCP-RateRegister], [PacketMemory:Offset]
  b.storeImm(addr::RcpRateRegister, newRateKbps);
  return core::verified(b.buildChecked());
}

namespace {

core::Program makeRcpLockProgram(std::uint32_t switchId, std::uint32_t expect,
                                 std::uint32_t store, std::size_t maxHops,
                                 std::uint16_t taskId) {
  // The pushes come first so they run at every hop — a failed CEXEC only
  // halts the instructions after it — giving the sender (id, epoch) proof
  // of which switches executed the TPP.
  core::ProgramBuilder b;
  b.task(taskId);
  b.push(addr::SwitchId);
  b.push(addr::SwitchBootEpoch);
  b.cexec(addr::SwitchId, 0xffffffffu, switchId);
  b.cstore(addr::RcpLockRegister, expect, store);
  b.reserve(static_cast<std::uint8_t>(kRcpLockValuesPerHop * maxHops));
  return core::verified(b.buildChecked(), {.maxHops = maxHops});
}

}  // namespace

core::Program makeRcpLockAcquireProgram(std::uint32_t switchId,
                                        std::uint32_t ownerId,
                                        std::size_t maxHops,
                                        std::uint16_t taskId) {
  return makeRcpLockProgram(switchId, /*expect=*/0, /*store=*/ownerId,
                            maxHops, taskId);
}

core::Program makeRcpLockReleaseProgram(std::uint32_t switchId,
                                        std::uint32_t ownerId,
                                        std::size_t maxHops,
                                        std::uint16_t taskId) {
  return makeRcpLockProgram(switchId, /*expect=*/ownerId, /*store=*/0,
                            maxHops, taskId);
}

RcpStarController::RcpStarController(host::Host& sender,
                                     host::PacedFlow& flow, Config config)
    : sender_(sender), flow_(flow), config_(config),
      collectProgram_(makeRcpCollectProgram(config.maxHops, config.taskId)) {
  host::ReliableProber::Config pc;
  pc.dstMac = config_.dstMac;
  pc.dstIp = config_.dstIp;
  pc.timeout = config_.probeTimeout;
  pc.maxBackoff = config_.probeMaxBackoff;
  pc.maxRetries = config_.probeMaxRetries;
  prober_ = std::make_unique<host::ReliableProber>(sender_, pc);
  ownerId_ = config_.controllerId != 0 ? config_.controllerId
                                       : sender_.ip().value();
}

void RcpStarController::start(sim::Time at) {
  running_ = true;
  probeTimer_ =
      sender_.simulator().scheduleAt(at, [this] { sendCollectProbe(); });
  periodTimer_ = sender_.simulator().scheduleAt(
      at + config_.period, [this] { computeAndUpdate(); });
}

void RcpStarController::stop() {
  running_ = false;
  probeTimer_.cancel();
  periodTimer_.cancel();
  if (config_.useCstoreLock && lockState_ == LockState::Held) {
    // Best-effort unlock so the word doesn't stay claimed by a dead
    // controller (the epoch check would still unwedge any successor).
    sender_.sendProbe(config_.dstMac, config_.dstIp,
                      makeRcpLockReleaseProgram(lockSwitchId_, ownerId_,
                                                config_.maxHops,
                                                config_.taskId));
    lockState_ = LockState::Released;
  }
}

void RcpStarController::sendCollectProbe() {
  if (!running_) return;
  prober_->send(
      collectProgram_,
      [this](const core::ExecutedTpp& tpp) { onCollect(tpp); },
      [this](std::uint32_t) { ++probeLosses_; });
  probeTimer_ = sender_.simulator().schedule(
      config_.period /
          static_cast<std::int64_t>(std::max<std::size_t>(
              config_.probesPerPeriod, 1)),
      [this] { sendCollectProbe(); });
}

void RcpStarController::onCollect(const core::ExecutedTpp& tpp) {
  // The seq word the prober appended sits at the end of the immediates;
  // hop records start one word later.
  const std::size_t spWords =
      host::ReliableProber::seqWordIndex(collectProgram_) + 1;
  auto split = host::splitStackRecordsChecked(tpp, kValuesPerHop, spWords);
  if (split.truncated) ++truncatedCollects_;
  if (split.records.empty()) return;
  for (const auto& rec : split.records) {
    epochBySwitch_[rec[kSwitchId]] = rec[kBootEpoch];
  }
  averager_.add(split.records);
  lastRecords_ = std::move(split.records);
}

double RcpStarController::rateFloorBps() const {
  if (lastBottleneckCapacityBps_ <= 0) return 0.0;
  return config_.params.minRateFraction * lastBottleneckCapacityBps_;
}

void RcpStarController::computeAndUpdate() {
  if (!running_) return;

  if (averager_.probeCount() == 0) {
    // Every collect probe of this period was lost (and retransmits timed
    // out): degrade with a multiplicative decrease rather than holding a
    // possibly-stale rate into a possibly-congested network.
    if (currentRateBps_ > 0) {
      ++mdFallbacks_;
      currentRateBps_ =
          std::max(currentRateBps_ * config_.mdFactor, rateFloorBps());
      flow_.setRateBps(currentRateBps_);
    }
  } else if (!lastRecords_.empty()) {
    // Phase 2: per-link control equation on collected samples.
    const double T = config_.period.toSeconds();
    linkRatesBps_.assign(lastRecords_.size(), 0.0);
    double minRate = std::numeric_limits<double>::infinity();
    std::size_t minHop = 0;
    for (std::size_t h = 0; h < lastRecords_.size(); ++h) {
      const auto& rec = lastRecords_[h];
      const double capacity = static_cast<double>(rec[kCapacityMbps]) * 1e6;
      if (capacity <= 0) continue;
      const double offered =
          averager_.mean(h, kUtilizationPpm) / 1e6 * capacity;
      const double avgQueueBits = averager_.mean(h, kQueueBytes) * 8.0;
      const double prevRate = static_cast<double>(rec[kRateKbps]) * 1000.0;
      const double next = rcp::rcpStep(prevRate, capacity, offered,
                                       avgQueueBits, T, config_.params);
      linkRatesBps_[h] = next;
      if (next < minRate) {
        minRate = next;
        minHop = h;
      }
    }

    if (std::isfinite(minRate)) {
      bottleneckSwitchId_ = lastRecords_[minHop][kSwitchId];
      lastBottleneckCapacityBps_ =
          static_cast<double>(lastRecords_[minHop][kCapacityMbps]) * 1e6;
      const auto rateKbps = static_cast<std::uint32_t>(minRate / 1000.0);
      // Phase 3: update only the bottleneck link's register.
      if (config_.useCstoreLock) {
        updateViaLock(rateKbps);
      } else {
        prober_->send(makeRcpUpdateProgram(bottleneckSwitchId_, rateKbps,
                                           config_.taskId),
                      [](const core::ExecutedTpp&) {});
        ++updates_;
      }

      // The flow transmits at its path's fair share.
      currentRateBps_ = minRate;
      flow_.setRateBps(minRate);
    }
  }
  rateSeries_.add(sender_.simulator().now(), currentRateBps_);
  averager_.reset();

  periodTimer_ = sender_.simulator().schedule(config_.period,
                                              [this] { computeAndUpdate(); });
}

// ------------------------------------------------------------------- lock

std::optional<std::uint32_t> RcpStarController::epochFromLockEcho(
    const core::ExecutedTpp& tpp, std::size_t initialSpWords,
    std::uint32_t switchId) {
  const auto split =
      host::splitStackRecordsChecked(tpp, kRcpLockValuesPerHop,
                                     initialSpWords);
  for (const auto& rec : split.records) {
    if (rec[0] == switchId) return rec[1];
  }
  return std::nullopt;
}

void RcpStarController::updateViaLock(std::uint32_t rateKbps) {
  // Epoch check: a reboot since acquisition wiped the lock word (and the
  // rate register). Forget the lock — there is nothing left to release —
  // and re-acquire below. This is what prevents the stuck-lock deadlock.
  if (lockState_ == LockState::Held) {
    auto it = epochBySwitch_.find(lockSwitchId_);
    if (it != epochBySwitch_.end() && it->second != lockEpoch_) {
      ++lockEpochResets_;
      lockState_ = LockState::Released;
    }
  }
  if (lockState_ == LockState::Held && lockSwitchId_ != bottleneckSwitchId_) {
    // Bottleneck moved: hand the old switch's lock back first; the update
    // resumes next period against the new bottleneck.
    startRelease();
    return;
  }
  switch (lockState_) {
    case LockState::Held:
      sendLockedUpdate(rateKbps);
      break;
    case LockState::Released:
      startAcquire(bottleneckSwitchId_, rateKbps);
      break;
    case LockState::Acquiring:
    case LockState::Releasing:
      break;  // previous round-trip still in flight; skip this period
  }
}

void RcpStarController::startAcquire(std::uint32_t target,
                                     std::uint32_t rateKbps) {
  lockState_ = LockState::Acquiring;
  const auto program = makeRcpLockAcquireProgram(target, ownerId_,
                                                 config_.maxHops,
                                                 config_.taskId);
  const std::size_t spWords =
      host::ReliableProber::seqWordIndex(program) + 1;
  prober_->send(
      program,
      [this, target, rateKbps, spWords](const core::ExecutedTpp& tpp) {
        if (lockState_ != LockState::Acquiring) return;
        const auto epoch = epochFromLockEcho(tpp, spWords, target);
        if (!epoch) {
          // The target never executed our TPP (path change / TCPU off):
          // the CSTORE result word is meaningless, so don't trust it.
          ++lockUnreachable_;
          lockState_ = LockState::Released;
          return;
        }
        const std::uint32_t old = kRcpLockResultWord < tpp.pmem.size()
                                      ? tpp.pmem[kRcpLockResultWord]
                                      : ~0u;
        if (old == 0 || old == ownerId_) {
          // Swap took (or we already owned it from a round we gave up on).
          lockState_ = LockState::Held;
          lockSwitchId_ = target;
          lockEpoch_ = *epoch;
          ++lockAcquisitions_;
          sendLockedUpdate(rateKbps);
        } else {
          ++lockContention_;
          lockState_ = LockState::Released;
        }
      },
      [this](std::uint32_t) {
        if (lockState_ == LockState::Acquiring) {
          lockState_ = LockState::Released;
        }
      });
}

void RcpStarController::startRelease() {
  lockState_ = LockState::Releasing;
  releaseRetriesLeft_ = kReleaseRetryCap;
  sendRelease();
}

void RcpStarController::sendRelease() {
  const auto program = makeRcpLockReleaseProgram(lockSwitchId_, ownerId_,
                                                 config_.maxHops,
                                                 config_.taskId);
  const std::size_t spWords =
      host::ReliableProber::seqWordIndex(program) + 1;
  auto giveUpOrRetry = [this] {
    if (lockState_ != LockState::Releasing) return;
    if (releaseRetriesLeft_ > 0) {
      --releaseRetriesLeft_;
      sendRelease();
    } else {
      // Safety net: stop retrying — a future owner's epoch check (or the
      // next reboot) clears the word; we must not spin forever.
      ++lockForcedReleases_;
      lockState_ = LockState::Released;
    }
  };
  prober_->send(
      program,
      [this, spWords, giveUpOrRetry](const core::ExecutedTpp& tpp) {
        if (lockState_ != LockState::Releasing) return;
        const std::uint32_t old = kRcpLockResultWord < tpp.pmem.size()
                                      ? tpp.pmem[kRcpLockResultWord]
                                      : ~0u;
        if (old == ownerId_) {  // swap took: lock handed back
          lockState_ = LockState::Released;
          return;
        }
        const auto epoch = epochFromLockEcho(tpp, spWords, lockSwitchId_);
        if (epoch && *epoch != lockEpoch_) {
          // Rebooted underneath us: the word is already wiped.
          ++lockEpochResets_;
          lockState_ = LockState::Released;
          return;
        }
        giveUpOrRetry();
      },
      [giveUpOrRetry](std::uint32_t) { giveUpOrRetry(); });
}

void RcpStarController::sendLockedUpdate(std::uint32_t rateKbps) {
  prober_->send(
      makeRcpUpdateProgram(lockSwitchId_, rateKbps, config_.taskId),
      [](const core::ExecutedTpp&) {});
  ++updates_;
}

}  // namespace tpp::apps
