#include "src/apps/aggregate_limiter.hpp"

#include <algorithm>

#include "src/core/memory_map.hpp"
#include "src/core/verifier.hpp"

namespace tpp::apps {

// Both programs verify with maxHops = 1: the leading CEXEC matches a
// unique switch id, so the suffix (CSTORE / PUSH) executes on at most
// one switch along the path. The verifier cannot prove that pinning
// statically, so one executing hop is the right growth budget here.

core::Program makeTokenCasProgram(std::uint32_t switchId,
                                  std::uint16_t address, std::uint32_t expect,
                                  std::uint32_t desired,
                                  std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  b.cexec(core::addr::SwitchId, 0xffffffff, switchId);
  b.cstore(address, expect, desired);
  b.push(core::addr::SwitchBootEpoch);
  b.reserve(1);
  return core::verified(b.buildChecked(), {.maxHops = 1});
}

core::Program makeTokenReadProgram(std::uint32_t switchId,
                                   std::uint16_t address,
                                   std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  b.cexec(core::addr::SwitchId, 0xffffffff, switchId);
  b.push(address);
  b.push(core::addr::SwitchBootEpoch);
  b.reserve(2);
  return core::verified(b.buildChecked(), {.maxHops = 1});
}

namespace {

// The one epoch-discipline pattern both limiter roles (and the analyzer's
// lock rule) certify: every executed echo carries the target switch's boot
// epoch; a change means scratch SRAM was wiped since our last exchange, so
// the caller must discard its local view of the counter before continuing.
// Adopts the new epoch and counts the reset; returns whether one happened.
bool adoptEpoch(std::uint32_t echoEpoch, std::uint32_t& lastEpoch,
                std::uint64_t& epochResets) {
  const bool reset = lastEpoch != 0 && echoEpoch != lastEpoch;
  if (reset) ++epochResets;
  lastEpoch = echoEpoch;
  return reset;
}

// Extracts (isCstore, observed/pushed value, epoch) from an echoed CAS/read
// probe of this task targeting `address`; nullopt for anything else.
// `executed == false` means no traversed switch ran the suffix (TCPU
// disabled at the target, or a corrupted CEXEC miss) — value/epoch are then
// meaningless and untouched.
struct CasEcho {
  bool isCstore = false;
  bool executed = false;
  std::uint32_t value = 0;
  std::uint32_t desired = 0;  // the CSTORE's src operand
  std::uint32_t epoch = 0;    // target switch's boot epoch
};
std::optional<CasEcho> parseCasEcho(const core::ExecutedTpp& tpp,
                                    std::uint16_t address,
                                    std::uint16_t taskId) {
  if (tpp.header.taskId != taskId) return std::nullopt;
  if (tpp.instructions.size() != 3 ||
      tpp.instructions[0].op != core::Opcode::Cexec) {
    return std::nullopt;
  }
  const auto& second = tpp.instructions[1];
  if (second.addr != address) return std::nullopt;
  const std::size_t spWords = tpp.header.stackPointer / core::kWordSize;
  CasEcho echo;
  if (second.op == core::Opcode::Cstore) {
    // Immediates: cexec(2) + cstore(2); epoch push lands at word 4.
    echo.isCstore = true;
    echo.executed = spWords >= 5 && spWords - 1 < tpp.pmem.size();
    if (!echo.executed) return echo;
    echo.value = tpp.pmem[second.pmemOff];
    echo.desired = tpp.pmem[second.pmemOff + 1];
    echo.epoch = tpp.pmem[spWords - 1];
  } else if (second.op == core::Opcode::Push) {
    // Immediates: cexec(2); pushes land at words 2 (value) and 3 (epoch).
    echo.executed = spWords >= 4 && spWords - 1 < tpp.pmem.size();
    if (!echo.executed) return echo;
    echo.value = tpp.pmem[spWords - 2];
    echo.epoch = tpp.pmem[spWords - 1];
  } else {
    return std::nullopt;
  }
  return echo;
}

}  // namespace

// ------------------------------------------------------------ refiller

TokenRefiller::TokenRefiller(host::Host& agent, Config config)
    : agent_(agent), config_(config) {
  agent_.onTppResult([this](const core::ExecutedTpp& t) { onResult(t); });
}

void TokenRefiller::start(sim::Time at) {
  running_ = true;
  timer_ = agent_.simulator().scheduleAt(at, [this] { refill(); });
}

void TokenRefiller::stop() {
  running_ = false;
  timer_.cancel();
}

void TokenRefiller::refill() {
  if (!running_) return;
  deficit_ += static_cast<std::uint64_t>(
      config_.aggregateRateBps * config_.period.toSeconds() / 8.0);
  // Crediting beyond a full bucket is unobservable; don't accumulate it.
  deficit_ = std::min(deficit_, config_.bucketBytes);
  retriesLeft_ = 3;
  attempt();
  timer_ = agent_.simulator().schedule(config_.period, [this] { refill(); });
}

void TokenRefiller::attempt() {
  const auto desired = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(lastSeen_ + deficit_, config_.bucketBytes));
  if (desired == lastSeen_) return;
  agent_.sendProbe(config_.dstMac, config_.dstIp,
                   makeTokenCasProgram(config_.targetSwitchId,
                                       config_.tokenAddress, lastSeen_,
                                       desired, config_.taskId));
}

void TokenRefiller::onResult(const core::ExecutedTpp& tpp) {
  const auto echo =
      parseCasEcho(tpp, config_.tokenAddress, config_.taskId);
  if (!echo || !echo->isCstore || !running_) return;
  if (!echo->executed) return;  // target never ran the TPP; retry next period
  if (adoptEpoch(echo->epoch, lastEpoch_, epochResets_)) {
    // The switch rebooted: the counter was wiped along with the rest of
    // scratch SRAM. Re-install from zero — the owed deficit re-credits on
    // the retry below.
    lastSeen_ = 0;
    if (retriesLeft_-- > 0) attempt();
    return;
  }
  if (echo->value == lastSeen_) {
    const std::uint64_t credited = echo->desired - lastSeen_;
    deficit_ -= std::min(deficit_, credited);
    lastSeen_ = echo->desired;
    ++refills_;
  } else {
    // A consumer claimed between our read and write: adopt the fresh value
    // and retry within the period (the deficit is still owed).
    lastSeen_ = echo->value;
    if (retriesLeft_-- > 0) attempt();
  }
}

// ------------------------------------------------------------- sender

TokenBucketSender::TokenBucketSender(host::Host& sender,
                                     host::PacedFlow& flow, Config config)
    : sender_(sender), flow_(flow), config_(config),
      rng_(config.jitterSeed) {
  sender_.onTppResult([this](const core::ExecutedTpp& t) { onResult(t); });
  flow_.setPacketHook([this](net::Packet&) {
    const auto bytes = flow_.spec().payloadBytes;
    budget_ = budget_ > bytes ? budget_ - bytes : 0;
    if (budget_ < bytes) flow_.setRateBps(0.0);
  });
}

void TokenBucketSender::start(sim::Time at) {
  running_ = true;
  flow_.setRateBps(0.0);  // gated until tokens arrive
  flow_.start(at);
  timer_ = sender_.simulator().scheduleAt(at, [this] { tryClaim(); });
}

void TokenBucketSender::stop() {
  running_ = false;
  timer_.cancel();
  flow_.stop();
}

void TokenBucketSender::tryClaim() {
  if (!running_ || claimInFlight_) return;
  claimInFlight_ = true;
  const auto& spec = flow_.spec();
  if (lastSeen_ >= config_.chunkBytes) {
    sender_.sendProbe(spec.dstMac, spec.dstIp,
                      makeTokenCasProgram(config_.targetSwitchId,
                                          config_.tokenAddress, lastSeen_,
                                          lastSeen_ - config_.chunkBytes,
                                          config_.taskId));
  } else {
    // Balance looks too low; refresh our view of the counter.
    sender_.sendProbe(spec.dstMac, spec.dstIp,
                      makeTokenReadProgram(config_.targetSwitchId,
                                           config_.tokenAddress,
                                           config_.taskId));
  }
}

void TokenBucketSender::pump() {
  if (budget_ >= flow_.spec().payloadBytes &&
      flow_.rateBps() == 0.0) {
    flow_.setRateBps(flow_.spec().rateBps);
  }
}

void TokenBucketSender::onResult(const core::ExecutedTpp& tpp) {
  const auto echo =
      parseCasEcho(tpp, config_.tokenAddress, config_.taskId);
  if (!echo) return;
  claimInFlight_ = false;
  if (!echo->executed) {
    // Target didn't run the TPP (e.g. its TCPU is off); fall through to
    // the retry timer with an unchanged local view.
  } else if (adoptEpoch(echo->epoch, lastEpoch_, epochResets_)) {
    // Reboot wiped the counter: discard our stale view and adopt whatever
    // the post-reboot word holds (already-claimed budget stays local).
    lastSeen_ = echo->value;
  } else if (echo->isCstore) {
    if (echo->value == lastSeen_) {  // swap succeeded: tokens are ours
      lastSeen_ -= config_.chunkBytes;
      budget_ += config_.chunkBytes;
      claimed_ += config_.chunkBytes;
      pump();
    } else {
      lastSeen_ = echo->value;
      ++failed_;
    }
  } else {
    lastSeen_ = echo->value;
  }
  if (!running_) return;
  // Claim again: eagerly while tokens appear available, lazily otherwise;
  // jittered so symmetric senders don't pile onto identical instants.
  const auto base = lastSeen_ >= config_.chunkBytes ? sim::Time::us(50)
                                                    : config_.retryDelay;
  const auto jitter = sim::Time::ns(rng_.uniformInt(0, 200'000));
  timer_ = sender_.simulator().schedule(base + jitter,
                                        [this] { tryClaim(); });
}

}  // namespace tpp::apps
