#include "src/apps/aggregate_limiter.hpp"

#include <algorithm>

#include "src/core/memory_map.hpp"
#include "src/core/verifier.hpp"

namespace tpp::apps {

namespace {

// Both programs verify with maxHops = 1: the leading CEXEC matches a
// unique switch id, so the suffix (CSTORE / PUSH) executes on at most
// one switch along the path. The verifier cannot prove that pinning
// statically, so one executing hop is the right growth budget here.

// Claim/refill program: CEXEC pins execution to the switch holding the
// counter; CSTORE does the read-modify-write.
core::Program casProgram(std::uint32_t switchId, std::uint16_t address,
                         std::uint32_t expect, std::uint32_t desired,
                         std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  b.cexec(core::addr::SwitchId, 0xffffffff, switchId);
  b.cstore(address, expect, desired);
  return core::verified(*b.build(), {.maxHops = 1});
}

core::Program readProgram(std::uint32_t switchId, std::uint16_t address,
                          std::uint16_t taskId) {
  core::ProgramBuilder b;
  b.task(taskId);
  b.cexec(core::addr::SwitchId, 0xffffffff, switchId);
  b.push(address);
  b.reserve(1);
  return core::verified(*b.build(), {.maxHops = 1});
}

// Extracts (isCstore, observed/pushed value) from an echoed CAS/read probe
// of this task targeting `address`; nullopt for anything else.
struct CasEcho {
  bool isCstore = false;
  std::uint32_t value = 0;
  std::uint32_t desired = 0;  // the CSTORE's src operand
};
std::optional<CasEcho> parseCasEcho(const core::ExecutedTpp& tpp,
                                    std::uint16_t address,
                                    std::uint16_t taskId) {
  if (tpp.header.taskId != taskId) return std::nullopt;
  if (tpp.instructions.size() != 2 ||
      tpp.instructions[0].op != core::Opcode::Cexec) {
    return std::nullopt;
  }
  const auto& second = tpp.instructions[1];
  if (second.addr != address) return std::nullopt;
  CasEcho echo;
  if (second.op == core::Opcode::Cstore) {
    echo.isCstore = true;
    echo.value = tpp.pmem[second.pmemOff];
    echo.desired = tpp.pmem[second.pmemOff + 1];
  } else if (second.op == core::Opcode::Push) {
    // Pushed value sits after the CEXEC immediates.
    echo.value = tpp.pmem[tpp.header.stackPointer / core::kWordSize - 1];
  } else {
    return std::nullopt;
  }
  return echo;
}

}  // namespace

// ------------------------------------------------------------ refiller

TokenRefiller::TokenRefiller(host::Host& agent, Config config)
    : agent_(agent), config_(config) {
  agent_.onTppResult([this](const core::ExecutedTpp& t) { onResult(t); });
}

void TokenRefiller::start(sim::Time at) {
  running_ = true;
  timer_ = agent_.simulator().scheduleAt(at, [this] { refill(); });
}

void TokenRefiller::stop() {
  running_ = false;
  timer_.cancel();
}

void TokenRefiller::refill() {
  if (!running_) return;
  deficit_ += static_cast<std::uint64_t>(
      config_.aggregateRateBps * config_.period.toSeconds() / 8.0);
  // Crediting beyond a full bucket is unobservable; don't accumulate it.
  deficit_ = std::min(deficit_, config_.bucketBytes);
  retriesLeft_ = 3;
  attempt();
  timer_ = agent_.simulator().schedule(config_.period, [this] { refill(); });
}

void TokenRefiller::attempt() {
  const auto desired = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(lastSeen_ + deficit_, config_.bucketBytes));
  if (desired == lastSeen_) return;
  agent_.sendProbe(config_.dstMac, config_.dstIp,
                   casProgram(config_.targetSwitchId, config_.tokenAddress,
                              lastSeen_, desired, config_.taskId));
}

void TokenRefiller::onResult(const core::ExecutedTpp& tpp) {
  const auto echo =
      parseCasEcho(tpp, config_.tokenAddress, config_.taskId);
  if (!echo || !echo->isCstore || !running_) return;
  if (echo->value == lastSeen_) {
    const std::uint64_t credited = echo->desired - lastSeen_;
    deficit_ -= std::min(deficit_, credited);
    lastSeen_ = echo->desired;
    ++refills_;
  } else {
    // A consumer claimed between our read and write: adopt the fresh value
    // and retry within the period (the deficit is still owed).
    lastSeen_ = echo->value;
    if (retriesLeft_-- > 0) attempt();
  }
}

// ------------------------------------------------------------- sender

TokenBucketSender::TokenBucketSender(host::Host& sender,
                                     host::PacedFlow& flow, Config config)
    : sender_(sender), flow_(flow), config_(config),
      rng_(config.jitterSeed) {
  sender_.onTppResult([this](const core::ExecutedTpp& t) { onResult(t); });
  flow_.setPacketHook([this](net::Packet&) {
    const auto bytes = flow_.spec().payloadBytes;
    budget_ = budget_ > bytes ? budget_ - bytes : 0;
    if (budget_ < bytes) flow_.setRateBps(0.0);
  });
}

void TokenBucketSender::start(sim::Time at) {
  running_ = true;
  flow_.setRateBps(0.0);  // gated until tokens arrive
  flow_.start(at);
  timer_ = sender_.simulator().scheduleAt(at, [this] { tryClaim(); });
}

void TokenBucketSender::stop() {
  running_ = false;
  timer_.cancel();
  flow_.stop();
}

void TokenBucketSender::tryClaim() {
  if (!running_ || claimInFlight_) return;
  claimInFlight_ = true;
  const auto& spec = flow_.spec();
  if (lastSeen_ >= config_.chunkBytes) {
    sender_.sendProbe(spec.dstMac, spec.dstIp,
                      casProgram(config_.targetSwitchId,
                                 config_.tokenAddress, lastSeen_,
                                 lastSeen_ - config_.chunkBytes,
                                 config_.taskId));
  } else {
    // Balance looks too low; refresh our view of the counter.
    sender_.sendProbe(spec.dstMac, spec.dstIp,
                      readProgram(config_.targetSwitchId,
                                  config_.tokenAddress, config_.taskId));
  }
}

void TokenBucketSender::pump() {
  if (budget_ >= flow_.spec().payloadBytes &&
      flow_.rateBps() == 0.0) {
    flow_.setRateBps(flow_.spec().rateBps);
  }
}

void TokenBucketSender::onResult(const core::ExecutedTpp& tpp) {
  const auto echo =
      parseCasEcho(tpp, config_.tokenAddress, config_.taskId);
  if (!echo) return;
  claimInFlight_ = false;
  if (echo->isCstore) {
    if (echo->value == lastSeen_) {  // swap succeeded: tokens are ours
      lastSeen_ -= config_.chunkBytes;
      budget_ += config_.chunkBytes;
      claimed_ += config_.chunkBytes;
      pump();
    } else {
      lastSeen_ = echo->value;
      ++failed_;
    }
  } else {
    lastSeen_ = echo->value;
  }
  if (!running_) return;
  // Claim again: eagerly while tokens appear available, lazily otherwise;
  // jittered so symmetric senders don't pile onto identical instants.
  const auto base = lastSeen_ >= config_.chunkBytes ? sim::Time::us(50)
                                                    : config_.retryDelay;
  const auto jitter = sim::Time::ns(rng_.uniformInt(0, 200'000));
  timer_ = sender_.simulator().schedule(base + jitter,
                                        [this] { tryClaim(); });
}

}  // namespace tpp::apps
