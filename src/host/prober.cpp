#include "src/host/prober.hpp"

#include <algorithm>
#include <utility>

namespace tpp::host {

ReliableProber::ReliableProber(Host& host, Config config)
    : host_(host), cfg_(config), nextSeq_(config.firstSeq) {
  host_.onTppResult([this](const core::ExecutedTpp& tpp) { onEcho(tpp); });
}

core::Program ReliableProber::tagged(const core::Program& program,
                                     std::uint32_t seq) {
  core::Program t = program;
  const std::size_t idx = seqWordIndex(program);
  if (t.initialPmem.size() < idx) t.initialPmem.resize(idx, 0u);
  t.initialPmem.insert(t.initialPmem.begin() + static_cast<std::ptrdiff_t>(idx),
                       seq);
  t.pmemWords = static_cast<std::uint8_t>(t.pmemWords + 1);
  t.initialSp = static_cast<std::uint16_t>(t.initialSp + core::kWordSize);
  return t;
}

std::uint32_t ReliableProber::send(const core::Program& program,
                                   ResultFn onResult, LossFn onLoss) {
  const std::uint32_t seq = nextSeq_++;
  Pending p;
  p.taggedProgram = tagged(program, seq);
  p.frame = host_.makeProbeFrame(cfg_.dstMac, cfg_.dstIp, p.taggedProgram);
  p.seqIndex = seqWordIndex(program);
  p.onResult = std::move(onResult);
  p.onLoss = std::move(onLoss);
  p.retriesLeft = cfg_.maxRetries;
  p.backoff = cfg_.timeout;
  auto [it, inserted] = pending_.emplace(seq, std::move(p));
  trace(sim::TraceKind::ProbeSend, program.taskId, seq,
        static_cast<std::uint32_t>(program.instructions.size()),
        static_cast<std::uint32_t>(it->second.seqIndex));
  transmit(it->second);
  ++sent_;
  postGauge();
  armTimer(seq, it->second);
  return seq;
}

void ReliableProber::trace(sim::TraceKind kind, std::uint16_t task,
                           std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  sim::Tracer* tracer = host_.tracer();
  if (tracer == nullptr) return;
  tracer->record(host_.simulator().now(), kind, host_.tracerActor(), task, a,
                 b, c);
}

void ReliableProber::transmit(const Pending& p) {
  auto copy = p.frame->clone();
  copy->createdAt = host_.simulator().now();
  host_.transmit(std::move(copy));
}

void ReliableProber::armTimer(std::uint32_t seq, Pending& p) {
  p.timer = host_.simulator().schedule(p.backoff,
                                       [this, seq] { onTimeout(seq); });
}

void ReliableProber::onTimeout(std::uint32_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // completed meanwhile
  Pending& p = it->second;
  if (p.retriesLeft == 0) {
    ++losses_;
    trace(sim::TraceKind::ProbeLoss, p.taggedProgram.taskId, seq);
    auto fn = std::move(p.onLoss);
    // Remember the probe: if an echo shows up after all (a congested queue
    // can inflate RTT well past the give-up time), onEcho salvages it.
    salvage_.push_back(Salvage{
        Fingerprint{seq, p.seqIndex, std::move(p.taggedProgram.instructions)},
        std::move(p.onResult)});
    if (salvage_.size() > kCompletedRing) salvage_.pop_front();
    pending_.erase(it);
    postGauge();
    if (fn) fn(seq);
    return;
  }
  --p.retriesLeft;
  ++retransmits_;
  trace(sim::TraceKind::ProbeRetransmit, p.taggedProgram.taskId, seq,
        p.retriesLeft);
  transmit(p);
  // Capped exponential backoff between retransmissions.
  p.backoff = std::min(p.backoff + p.backoff, cfg_.maxBackoff);
  armTimer(seq, p);
}

bool ReliableProber::matches(
    const core::ExecutedTpp& tpp, std::uint32_t seq, std::size_t seqIndex,
    const std::vector<core::Instruction>& instructions) {
  return seqIndex < tpp.pmem.size() && tpp.pmem[seqIndex] == seq &&
         tpp.instructions == instructions;
}

void ReliableProber::onEcho(const core::ExecutedTpp& tpp) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    Pending& p = it->second;
    if (!matches(tpp, it->first, p.seqIndex, p.taggedProgram.instructions)) {
      continue;
    }
    p.timer.cancel();
    trace(sim::TraceKind::ProbeEcho, tpp.header.taskId, it->first,
          tpp.header.hopNumber,
          static_cast<std::uint32_t>(tpp.header.faultCode));
    auto fn = std::move(p.onResult);
    completed_.push_back(Fingerprint{it->first, p.seqIndex,
                                     std::move(p.taggedProgram.instructions)});
    if (completed_.size() > kCompletedRing) completed_.pop_front();
    pending_.erase(it);
    postGauge();
    if (fn) fn(tpp);
    return;
  }
  for (auto it = salvage_.begin(); it != salvage_.end(); ++it) {
    if (matches(tpp, it->fp.seq, it->fp.seqIndex, it->fp.instructions)) {
      // Echo of a probe we had written off: the loss callback already ran,
      // but the feedback itself is still valid — deliver it.
      ++lateResults_;
      trace(sim::TraceKind::ProbeLateEcho, tpp.header.taskId, it->fp.seq,
            tpp.header.hopNumber,
            static_cast<std::uint32_t>(tpp.header.faultCode));
      auto fn = std::move(it->onResult);
      completed_.push_back(std::move(it->fp));
      if (completed_.size() > kCompletedRing) completed_.pop_front();
      salvage_.erase(it);
      if (fn) fn(tpp);
      return;
    }
  }
  for (const auto& f : completed_) {
    if (matches(tpp, f.seq, f.seqIndex, f.instructions)) {
      ++duplicates_;  // late echo of an already-delivered probe
      trace(sim::TraceKind::ProbeDuplicate, tpp.header.taskId, f.seq);
      return;
    }
  }
  // Anything else belongs to another task sharing this host; not ours.
}

}  // namespace tpp::host
