// End-host: the smart edge of the TPP architecture ("smartness at the
// edge", §3). A Host owns a NIC port, a tiny UDP stack, and the TPP probe
// machinery: sending programs, echoing fully-executed TPPs back to their
// sender, and delivering results to registered handlers.
//
// Echo convention: a TPP whose inner UDP datagram targets kTppEchoPort is a
// probe. The receiving host strips the executed TPP (header + instructions
// + packet memory), wraps those bytes as the payload of a plain UDP packet,
// and returns it to the prober (§2.2: "the receiver simply echos a fully
// executed TPP back to the sender"). Returning it as payload rather than as
// a live TPP keeps the reverse path from executing the program a second
// time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "src/core/program.hpp"
#include "src/net/ipv4.hpp"
#include "src/net/link.hpp"
#include "src/net/node.hpp"
#include "src/sim/simulator.hpp"

namespace tpp::host {

inline constexpr std::uint16_t kTppEchoPort = 11111;

struct UdpDatagram {
  net::Ipv4Address srcIp;
  net::Ipv4Address dstIp;
  std::uint16_t srcPort = 0;
  std::uint16_t dstPort = 0;
  std::uint8_t ecn = 0;  // RFC 3168 codepoint from the IP header
  std::span<const std::uint8_t> payload;
  const net::Packet* packet = nullptr;  // full frame, for advanced handlers
};

class Host : public net::Node {
 public:
  Host(sim::Simulator& simulator, std::string name, net::MacAddress mac,
       net::Ipv4Address ip);

  net::MacAddress mac() const { return mac_; }
  net::Ipv4Address ip() const { return ip_; }
  sim::Simulator& simulator() { return sim_; }

  void receive(net::PacketPtr packet, std::size_t port) override;

  // --------------------------------------------------------------- sending
  // Builds and transmits an Ethernet+IPv4+UDP frame. `dstMac` is the final
  // receiver's MAC (the simulated fabric routes on L3 but does not rewrite
  // MACs). Returns the serialization-complete time at the NIC.
  sim::Time sendUdp(net::MacAddress dstMac, net::Ipv4Address dstIp,
                    std::uint16_t srcPort, std::uint16_t dstPort,
                    std::span<const std::uint8_t> payload);

  // Transmits `program` as a standalone probe TPP addressed to the echo
  // service of the destination host. The echoed result arrives at the
  // handler registered with onTppResult().
  sim::Time sendProbe(net::MacAddress dstMac, net::Ipv4Address dstIp,
                      const core::Program& program);

  // Transmits a UDP datagram with `program` shimmed onto it (the §2.3
  // "insert the TPP on all its packets" pattern).
  sim::Time sendUdpWithTpp(net::MacAddress dstMac, net::Ipv4Address dstIp,
                           std::uint16_t srcPort, std::uint16_t dstPort,
                           std::span<const std::uint8_t> payload,
                           const core::Program& program);

  // Raw frame transmit (used by flows that build their own packets).
  sim::Time transmit(net::PacketPtr packet);

  // Builds (but does not send) an Ethernet+IPv4+UDP frame from this host.
  // Public so flows can decorate packets (RCP headers, TPP shims) before
  // handing them to transmit().
  net::PacketPtr makeUdpFrame(net::MacAddress dstMac, net::Ipv4Address dstIp,
                              std::uint16_t srcPort, std::uint16_t dstPort,
                              std::span<const std::uint8_t> payload);

  // Builds (but does not send) the probe frame sendProbe() would transmit.
  // The ReliableProber builds each probe's frame once and clones it for
  // retransmits, so retries skip re-serialization entirely.
  net::PacketPtr makeProbeFrame(net::MacAddress dstMac, net::Ipv4Address dstIp,
                                const core::Program& program);

  // ------------------------------------------------------------- receiving
  using UdpHandler = std::function<void(const UdpDatagram&)>;
  // Registers a handler for UDP datagrams to `port`. One handler per port.
  void bindUdp(std::uint16_t port, UdpHandler handler);

  using TppResultHandler = std::function<void(const core::ExecutedTpp&)>;
  // Adds a handler for echoed probe results (parsed from echo payloads).
  // Handlers accumulate, so several tasks (RCP*, ndb, monitoring) can share
  // one host; each sees every result and filters by program shape/taskId.
  void onTppResult(TppResultHandler handler) {
    tppResult_.push_back(std::move(handler));
  }

  // Adds a handler for TPPs that arrive shimmed onto packets addressed to
  // us (invoked before the shim is stripped and the datagram delivered).
  void onTppArrival(TppResultHandler handler) {
    tppArrival_.push_back(std::move(handler));
  }

  // ------------------------------------------------------------ statistics
  std::uint64_t packetsSent() const { return sent_; }
  std::uint64_t packetsReceived() const { return received_; }
  std::uint64_t bytesReceived() const { return bytesReceived_; }
  std::uint64_t probesEchoed() const { return echoed_; }

  // ------------------------------------------------------------- telemetry
  // Arms the flight recorder for this host's probe machinery (the
  // ReliableProber reads the tracer through these accessors on every send
  // and echo). nullptr disarms.
  void setTracer(sim::Tracer* tracer) {
    tracer_ = tracer;
    actor_ = tracer != nullptr ? tracer->actor(name()) : 0;
  }
  sim::Tracer* tracer() const { return tracer_; }
  std::uint32_t tracerActor() const { return actor_; }

 private:
  void deliverUdp(net::Packet& packet);
  void echoExecutedTpp(const net::Packet& packet, std::size_t tppOffset,
                       const net::Ipv4Header& ip, const net::UdpHeader& udp);

  sim::Simulator& sim_;
  net::MacAddress mac_;
  net::Ipv4Address ip_;
  std::map<std::uint16_t, UdpHandler> udpHandlers_;
  std::vector<TppResultHandler> tppResult_;
  std::vector<TppResultHandler> tppArrival_;
  // Reused across echo deliveries so the probe feedback path stays
  // allocation-free; handlers must not retain the reference.
  core::ExecutedTpp echoScratch_;
  sim::Tracer* tracer_ = nullptr;
  std::uint32_t actor_ = 0;
  std::uint16_t nextIpId_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t bytesReceived_ = 0;
  std::uint64_t echoed_ = 0;
};

}  // namespace tpp::host
