// Interpreting executed TPPs at the end-host: splitting packet memory into
// per-hop records (§2.1: "the end-host knows exactly how to interpret
// values in the packet").
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/program.hpp"

namespace tpp::host {

// One hop's worth of values from a collect-style TPP.
using HopRecord = std::vector<std::uint32_t>;

// Splits a stack-mode TPP's pushed values into per-hop records. The stack
// region starts after the immediates (initialSpWords words in) and each hop
// pushed `valuesPerHop` words. Partial trailing records are discarded.
std::vector<HopRecord> splitStackRecords(const core::ExecutedTpp& tpp,
                                         std::size_t valuesPerHop,
                                         std::size_t initialSpWords = 0);

// Splits a hop-mode TPP's packet memory into perHopWords-sized records,
// one per hop actually traversed.
std::vector<HopRecord> splitHopRecords(const core::ExecutedTpp& tpp);

// Hole-aware variant of splitStackRecords: reports when the pushed region
// does not divide into whole records (a TPP-unaware switch skipped its
// pushes, or a corrupted header points past the allocated pmem), instead of
// silently discarding the remainder. `expectedHops`, when non-zero, lets
// callers additionally flag a structurally-valid but short trace — the
// record count is the hop count actually executed, so fewer records than
// expected means a hole somewhere on the path.
struct RecordSplit {
  std::vector<HopRecord> records;
  bool truncated = false;  // stack region ended mid-record or outran pmem

  bool complete(std::size_t expectedHops) const {
    return !truncated && records.size() >= expectedHops;
  }
};
RecordSplit splitStackRecordsChecked(const core::ExecutedTpp& tpp,
                                     std::size_t valuesPerHop,
                                     std::size_t initialSpWords = 0);

// Running accumulator of per-hop samples across many probes: per hop index,
// the mean of each value column. Used by RCP* to average queue samples over
// a control period.
class HopSampleAverager {
 public:
  explicit HopSampleAverager(std::size_t valuesPerHop);

  void add(const std::vector<HopRecord>& records);
  void reset();

  std::size_t probeCount() const { return probes_; }
  std::size_t hopCount() const { return sums_.size(); }
  // Mean of column `value` at `hop`; 0 if no samples.
  double mean(std::size_t hop, std::size_t value) const;

 private:
  std::size_t valuesPerHop_;
  std::size_t probes_ = 0;
  std::vector<std::vector<double>> sums_;   // [hop][value]
  std::vector<std::vector<double>> counts_;
};

}  // namespace tpp::host
