#include "src/host/tcp.hpp"

#include <algorithm>
#include <cassert>

#include "src/net/byte_io.hpp"
#include "src/net/ethernet.hpp"

namespace tpp::host {

namespace {

// Wrap-safe 32-bit sequence comparisons (RFC 793 arithmetic).
bool seqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seqLe(std::uint32_t a, std::uint32_t b) { return !seqLt(b, a); }
bool seqGt(std::uint32_t a, std::uint32_t b) { return seqLt(b, a); }
bool seqGe(std::uint32_t a, std::uint32_t b) { return !seqLt(a, b); }

// FNV-1a over the segment bytes with the checksum field read as zero.
std::uint32_t segmentChecksum(std::span<const std::uint8_t> bytes) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::uint8_t b = (i >= 16 && i < 20) ? 0 : bytes[i];
    h = (h ^ b) * 16777619u;
  }
  return h;
}

}  // namespace

// ----------------------------------------------------------- TcpSegment

void TcpSegment::serialize(std::vector<std::uint8_t>& out) const {
  out.resize(kHeaderBytes + payload.size());
  out[0] = flags;
  out[1] = static_cast<std::uint8_t>(spin & 1);
  net::putBe16(out, 2, static_cast<std::uint16_t>(payload.size()));
  net::putBe32(out, 4, seq);
  net::putBe32(out, 8, ack);
  net::putBe32(out, 12, wnd);
  std::copy(payload.begin(), payload.end(), out.begin() + kHeaderBytes);
  net::putBe32(out, 16, segmentChecksum(out));
}

std::optional<TcpSegment> TcpSegment::parse(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) return std::nullopt;
  const std::uint16_t len = *net::getBe16(bytes, 2);
  if (bytes.size() != kHeaderBytes + len) return std::nullopt;
  if ((bytes[1] & ~1) != 0) return std::nullopt;  // only the spin bit may be set
  if (segmentChecksum(bytes) != *net::getBe32(bytes, 16)) return std::nullopt;
  TcpSegment s;
  s.flags = bytes[0];
  s.spin = bytes[1] & 1;
  s.seq = *net::getBe32(bytes, 4);
  s.ack = *net::getBe32(bytes, 8);
  s.wnd = *net::getBe32(bytes, 12);
  s.payload = bytes.subspan(kHeaderBytes);
  return s;
}

// -------------------------------------------------------- TcpConnection

TcpConnection::TcpConnection(Host& host, Config config)
    : host_(host), cfg_(config) {
  cwnd_ = cfg_.initialCwndSegments * cfg_.mss;
  ssthresh_ = cfg_.rcvWndBytes;
  rto_ = cfg_.initialRto;
}

TcpConnection::~TcpConnection() { rtoTimer_.cancel(); }

void TcpConnection::connect(net::MacAddress dstMac, net::Ipv4Address dstIp,
                            std::uint16_t dstPort, std::uint16_t localPort,
                            std::uint64_t sendBytes) {
  assert(state_ == State::Closed && !wasOpen_);
  remoteMac_ = dstMac;
  remoteIp_ = dstIp;
  remotePort_ = dstPort;
  localPort_ = localPort;
  bytesQueued_ = sendBytes;
  finQueued_ = true;  // stream length is fixed up front: close after it
  spinClient_ = true;  // active opener drives the spin bit
  host_.bindUdp(localPort_,
                [this](const UdpDatagram& d) { onDatagram(d); });
  boundPort_ = true;

  iss_ = cfg_.initialSeq;
  sndUna_ = iss_;
  state_ = State::SynSent;
  TxSeg syn;
  syn.seq = iss_;
  syn.syn = true;
  syn.sentAt = host_.simulator().now();
  txq_.push_back(syn);
  sndNxt_ = iss_ + 1;
  sndMax_ = sndNxt_;
  sendQueuedSegment(syn, /*isRetransmit=*/false);
  armRtoTimer();
}

void TcpConnection::accept(const TcpSegment& syn, net::MacAddress peerMac,
                           net::Ipv4Address peerIp, std::uint16_t peerPort,
                           std::uint16_t localPort) {
  remoteMac_ = peerMac;
  remoteIp_ = peerIp;
  remotePort_ = peerPort;
  localPort_ = localPort;

  irs_ = syn.seq;
  rcvNxt_ = syn.seq + 1;
  peerWnd_ = syn.wnd;
  peerSpin_ = syn.spin & 1;
  iss_ = cfg_.initialSeq;
  sndUna_ = iss_;
  state_ = State::SynReceived;
  TxSeg synAck;
  synAck.seq = iss_;
  synAck.syn = true;
  synAck.sentAt = host_.simulator().now();
  txq_.push_back(synAck);
  sndNxt_ = iss_ + 1;
  sndMax_ = sndNxt_;
  sendQueuedSegment(synAck, /*isRetransmit=*/false);
  armRtoTimer();
}

void TcpConnection::send(std::uint64_t bytes) {
  assert(!finSent_);
  bytesQueued_ += bytes;
  maybeSendData();
}

void TcpConnection::close() {
  finQueued_ = true;
  maybeSendData();
}

std::uint64_t TcpConnection::bytesAcked() const {
  if (sndUna_ == iss_) return 0;
  return std::min<std::uint64_t>(sndUna_ - iss_ - 1, bytesQueued_);
}

std::uint64_t TcpConnection::dataLimitSeq() const {
  return iss_ + 1 + bytesQueued_;
}

void TcpConnection::onDatagram(const UdpDatagram& dgram) {
  // Our port is exclusive to this connection; anything from another peer
  // (or a corrupted source field) is noise.
  if (dgram.srcIp.value() != remoteIp_.value() ||
      dgram.srcPort != remotePort_) {
    return;
  }
  const auto seg = TcpSegment::parse(dgram.payload);
  if (!seg) {
    ++checksumDrops_;
    return;
  }
  onSegment(*seg);
}

void TcpConnection::onSegment(const TcpSegment& seg) {
  peerSpin_ = seg.spin & 1;
  if (state_ == State::Closed) {
    // Lightweight TIME_WAIT: after a clean close we still re-ack a peer's
    // retransmitted FIN (our final ACK may have been lost), so the peer's
    // LAST_ACK never times out into a spurious give-up.
    if (wasOpen_ && !failed_ && seg.fin()) sendPureAck();
    return;
  }

  if (state_ == State::SynSent) {
    if (!(seg.syn() && seg.hasAck() && seg.ack == iss_ + 1)) return;
    irs_ = seg.seq;
    rcvNxt_ = seg.seq + 1;
    peerWnd_ = seg.wnd;
    processAck(seg);
    state_ = State::Established;
    wasOpen_ = true;
    establishedAt_ = host_.simulator().now();
    if (established_) established_();
    sendPureAck();
    maybeSendData();
    return;
  }

  if (state_ == State::SynReceived && seg.syn() && !seg.hasAck()) {
    // Duplicate SYN: our SYN+ACK was lost or is still in flight — resend.
    if (!txq_.empty()) {
      txq_.front().retransmitted = true;
      ++retransmits_;
      trace(sim::TraceKind::TcpRetransmit, localPort_, txq_.front().seq, 0, 0);
      sendQueuedSegment(txq_.front(), /*isRetransmit=*/true);
    }
    return;
  }

  if (seg.hasAck()) processAck(seg);

  if (state_ == State::SynReceived) {
    if (!(seg.hasAck() && seqGe(seg.ack, iss_ + 1))) return;
    state_ = State::Established;
    wasOpen_ = true;
    establishedAt_ = host_.simulator().now();
    if (established_) established_();
  }

  peerWnd_ = seg.wnd;
  if (!seg.payload.empty() || seg.fin()) processPayload(seg);
  // A duplicate SYN+ACK means our handshake ACK was lost; re-ack it.
  if (seg.syn() && seg.hasAck()) sendPureAck();
  maybeSendData();
}

void TcpConnection::processAck(const TcpSegment& seg) {
  const std::uint32_t ack = seg.ack;
  if (seqGt(ack, sndMax_)) return;  // acks data never sent: ignore

  if (seqGt(ack, sndUna_)) {
    const std::uint32_t acked = ack - sndUna_;
    sndUna_ = ack;
    // After a go-back-N rewind the peer can re-ack data above sndNxt_
    // (it had it all along — only the ACKs died). Jump forward: those
    // bytes need no regeneration. If the jump covers the FIN the rewind
    // dropped, the teardown is acked too.
    if (seqGt(ack, sndNxt_)) {
      sndNxt_ = ack;
      if (finQueued_ && !finSent_ &&
          ack == static_cast<std::uint32_t>(dataLimitSeq()) + 1) {
        finSent_ = true;
        onOurFinAcked();
      }
    }
    consecutiveRtos_ = 0;
    dupAckRun_ = 0;

    const sim::Time now = host_.simulator().now();
    while (!txq_.empty()) {
      const TxSeg& f = txq_.front();
      const std::uint32_t end =
          f.seq + f.len + ((f.syn || f.fin) ? 1 : 0);
      if (!seqLe(end, sndUna_)) break;
      if (!f.retransmitted) sampleRtt(now - f.sentAt);
      const bool finAcked = f.fin;
      txq_.pop_front();
      if (finAcked) onOurFinAcked();
    }

    if (inRecovery_) {
      if (seqGe(ack, recover_)) {
        inRecovery_ = false;
        cwnd_ = ssthresh_;
      } else if (!txq_.empty()) {
        // NewReno partial ACK: the next hole is the new front — resend it
        // without waiting for three more dup-ACKs.
        retransmitFront(/*fast=*/true);
      }
    } else {
      if (cwnd_ < ssthresh_) {
        cwnd_ += std::min(acked, cfg_.mss);  // slow start
      } else {
        cwnd_ += std::max<std::uint32_t>(
            1, cfg_.mss * cfg_.mss / std::max<std::uint32_t>(cwnd_, 1));
      }
      cwnd_ = std::min(cwnd_, cfg_.rcvWndBytes);
    }

    rtoTimer_.cancel();
    armRtoTimer();
    return;
  }

  // Duplicate ACK: same frontier, no payload, no flags, data outstanding.
  if (ack == sndUna_ && seg.payload.empty() && !seg.syn() && !seg.fin() &&
      !txq_.empty() && flightSize() > 0) {
    ++dupAcksSeen_;
    ++dupAckRun_;
    if (dupAckRun_ == 3 && !inRecovery_) enterRecovery(/*reason=*/1);
  }
}

void TcpConnection::enterRecovery(std::uint32_t reason) {
  ssthresh_ = std::max(flightSize() / 2, 2 * cfg_.mss);
  cwnd_ = ssthresh_;
  inRecovery_ = true;
  recover_ = sndNxt_;
  ++cwndCuts_;
  trace(sim::TraceKind::TcpCwndCut, localPort_, cwnd_, reason);
  retransmitFront(/*fast=*/true);
}

void TcpConnection::retransmitFront(bool fast) {
  if (txq_.empty()) return;
  TxSeg& f = txq_.front();
  f.retransmitted = true;  // Karn: no RTT sample from this segment
  ++retransmits_;
  if (fast) ++fastRetransmits_;
  trace(sim::TraceKind::TcpRetransmit, localPort_, f.seq, f.len,
        fast ? 1 : 0);
  sendQueuedSegment(f, /*isRetransmit=*/true);
}

void TcpConnection::onRtoFire() {
  if (txq_.empty() || state_ == State::Closed) return;
  ++consecutiveRtos_;
  ++rtoFires_;
  if (consecutiveRtos_ > cfg_.maxRetries) {
    fail("retransmission limit reached (seq " +
         std::to_string(txq_.front().seq) + ", " +
         std::to_string(cfg_.maxRetries) + " consecutive timeouts)");
    return;
  }
  // Collapse to one segment and back off the timer (capped).
  ssthresh_ = std::max(flightSize() / 2, 2 * cfg_.mss);
  cwnd_ = cfg_.mss;
  inRecovery_ = false;
  dupAckRun_ = 0;
  ++cwndCuts_;
  trace(sim::TraceKind::TcpCwndCut, localPort_, cwnd_, /*reason=*/0);
  rto_ = std::min(rto_ + rto_, cfg_.maxRto);
  trace(sim::TraceKind::TcpRto, localPort_,
        static_cast<std::uint32_t>(rto_.toMicros()), consecutiveRtos_);
  retransmitFront(/*fast=*/false);
  // Go-back-N: a timeout usually means the whole flight died with the
  // front segment (burst loss, dark window). Rewind sndNxt past the front
  // so maybeSendData regenerates the tail from the pattern stream as the
  // window reopens — recovering the hole at slow-start pace instead of
  // one full RTO per lost segment.
  if (txq_.size() > 1) {
    const TxSeg& f = txq_.front();
    bool droppedFin = false;
    for (std::size_t i = 1; i < txq_.size(); ++i) droppedFin |= txq_[i].fin;
    if (seqLt(rexmitHighWater_, sndNxt_)) rexmitHighWater_ = sndNxt_;
    sndNxt_ = f.seq + f.len + ((f.syn || f.fin) ? 1 : 0);
    txq_.erase(txq_.begin() + 1, txq_.end());
    if (droppedFin) finSent_ = false;  // regenerated with the data
  }
  armRtoTimer();
}

void TcpConnection::sampleRtt(sim::Time rttSample) {
  if (!haveRttSample_) {
    haveRttSample_ = true;
    srtt_ = rttSample;
    rttvar_ = sim::Time::ns(rttSample.nanos() / 2);
  } else {
    const std::int64_t err =
        std::abs(srtt_.nanos() - rttSample.nanos());
    rttvar_ = sim::Time::ns((3 * rttvar_.nanos() + err) / 4);
    srtt_ = sim::Time::ns((7 * srtt_.nanos() + rttSample.nanos()) / 8);
  }
  rto_ = std::clamp(srtt_ + rttvar_ * 4, cfg_.minRto, cfg_.maxRto);
}

void TcpConnection::maybeSendData() {
  // Data (and a go-back-N-regenerated FIN) may still need sending in any
  // post-handshake state; only before the handshake or after Closed is
  // there nothing to stream.
  if (state_ == State::Closed || state_ == State::SynSent ||
      state_ == State::SynReceived) {
    armRtoTimer();
    return;
  }
  const std::uint32_t limit =
      iss_ + 1 + static_cast<std::uint32_t>(bytesQueued_);
  const std::uint32_t wnd = std::min(cwnd_, peerWnd_);
  while (seqLt(sndNxt_, limit)) {
    const std::uint32_t len =
        std::min<std::uint32_t>(limit - sndNxt_, cfg_.mss);
    if (flightSize() + len > wnd) break;
    TxSeg s;
    s.seq = sndNxt_;
    s.len = static_cast<std::uint16_t>(len);
    s.sentAt = host_.simulator().now();
    // Bytes below the go-back-N high-water mark have been on the wire
    // before: Karn's rule applies, and they count as retransmissions.
    s.retransmitted = seqLt(s.seq, rexmitHighWater_);
    txq_.push_back(s);
    sndNxt_ += len;
    if (seqLt(sndMax_, sndNxt_)) sndMax_ = sndNxt_;
    if (s.retransmitted) {
      ++retransmits_;
      trace(sim::TraceKind::TcpRetransmit, localPort_, s.seq, s.len, 0);
    }
    sendQueuedSegment(s, /*isRetransmit=*/s.retransmitted);
  }
  if (finQueued_ && !finSent_ && sndNxt_ == limit) {
    TxSeg f;
    f.seq = sndNxt_;
    f.fin = true;
    f.sentAt = host_.simulator().now();
    f.retransmitted = seqLt(f.seq, rexmitHighWater_);
    txq_.push_back(f);
    sndNxt_ += 1;
    if (seqLt(sndMax_, sndNxt_)) sndMax_ = sndNxt_;
    finSent_ = true;
    // First FIN: advance the state machine. A regenerated FIN (go-back-N
    // rewound past it) leaves the already-reached teardown state alone.
    if (state_ == State::Established) {
      state_ = State::FinWait1;
    } else if (state_ == State::CloseWait) {
      state_ = State::LastAck;
    }
    sendQueuedSegment(f, /*isRetransmit=*/f.retransmitted);
  }
  armRtoTimer();
}

void TcpConnection::sendQueuedSegment(const TxSeg& seg, bool /*isRetransmit*/) {
  std::uint8_t flags = 0;
  if (seg.syn) flags |= TcpSegment::kSyn;
  if (seg.fin) flags |= TcpSegment::kFin;
  // Everything after the active opener's bare SYN carries an ACK.
  if (state_ != State::SynSent) flags |= TcpSegment::kAck;
  emitSegment(flags, seg.seq, seg.len);
}

void TcpConnection::sendPureAck() {
  emitSegment(TcpSegment::kAck, sndNxt_, 0);
}

void TcpConnection::cutCwnd(double factor, std::uint32_t reason) {
  const std::uint32_t target = static_cast<std::uint32_t>(
      static_cast<double>(cwnd_) * factor);
  const std::uint32_t next = std::max(cfg_.mss, target);
  if (next >= cwnd_) return;
  cwnd_ = next;
  ssthresh_ = std::max(next, 2 * cfg_.mss);
  ++cwndCuts_;
  trace(sim::TraceKind::TcpCwndCut, localPort_, cwnd_, reason);
}

void TcpConnection::emitSegment(std::uint8_t flags, std::uint32_t seq,
                                std::uint32_t len) {
  txBuf_.resize(TcpSegment::kHeaderBytes + len);
  txBuf_[0] = flags;
  // Spin bit: the client sends the inverse of the last bit it saw, the
  // server echoes it — one flip per round trip for on-path observers.
  txBuf_[1] = spinClient_ ? (peerSpin_ ^ 1) : peerSpin_;
  net::putBe16(txBuf_, 2, static_cast<std::uint16_t>(len));
  net::putBe32(txBuf_, 4, seq);
  net::putBe32(txBuf_, 8, (flags & TcpSegment::kAck) != 0 ? rcvNxt_ : 0);
  net::putBe32(txBuf_, 12, cfg_.rcvWndBytes);
  const std::uint64_t base = seq - (iss_ + 1);  // stream offset of byte 0
  for (std::uint32_t i = 0; i < len; ++i) {
    txBuf_[TcpSegment::kHeaderBytes + i] = tcpPatternByte(base + i);
  }
  net::putBe32(txBuf_, 16, segmentChecksum(txBuf_));
  host_.sendUdp(remoteMac_, remoteIp_, localPort_, remotePort_, txBuf_);
}

void TcpConnection::processPayload(const TcpSegment& seg) {
  const std::uint32_t seq = seg.seq;
  const std::uint16_t len = static_cast<std::uint16_t>(seg.payload.size());
  const std::uint32_t end = seq + len;
  const bool hasFin = seg.fin();

  auto verify = [this](std::uint32_t firstSeq,
                       std::span<const std::uint8_t> bytes) {
    const std::uint64_t base = firstSeq - (irs_ + 1);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      if (bytes[i] != tcpPatternByte(base + i)) ++patternErrors_;
    }
  };

  if (seqLe(end + (hasFin ? 1 : 0), rcvNxt_)) {
    // Entirely old: a retransmit of data (or FIN) we already took.
    ++dupSegments_;
    sendPureAck();
    return;
  }

  if (seqGt(seq, rcvNxt_)) {
    // Out of order: verify and remember the range, answer with a dup-ACK.
    ++outOfOrderSegments_;
    if (len > 0) {
      verify(seq, seg.payload);
      ooo_.emplace(seq, len);
    }
    if (hasFin) {
      peerFinSeen_ = true;
      peerFinSeq_ = end;
    }
    ++dupAcksSent_;
    sendPureAck();
    return;
  }

  // In order (possibly overlapping the frontier on the left).
  const std::uint32_t skip = rcvNxt_ - seq;
  if (len > skip) {
    verify(rcvNxt_, seg.payload.subspan(skip));
    deliveredBytes_ += len - skip;
    rcvNxt_ = end;
  }
  if (hasFin) {
    peerFinSeen_ = true;
    peerFinSeq_ = end;
  }
  // Drain any out-of-order ranges the frontier now reaches.
  for (auto it = ooo_.begin(); it != ooo_.end();) {
    if (seqGt(it->first, rcvNxt_)) break;
    const std::uint32_t oEnd = it->first + it->second;
    if (seqGt(oEnd, rcvNxt_)) {
      deliveredBytes_ += oEnd - rcvNxt_;
      rcvNxt_ = oEnd;
    }
    it = ooo_.erase(it);
  }
  if (peerFinSeen_ && rcvNxt_ == peerFinSeq_) {
    rcvNxt_ = peerFinSeq_ + 1;
    onPeerFin();
  }
  sendPureAck();
}

void TcpConnection::onPeerFin() {
  switch (state_) {
    case State::Established:
      state_ = State::CloseWait;
      if (cfg_.autoClose) close();
      break;
    case State::FinWait1:
      state_ = State::Closing;
      break;
    case State::FinWait2:
      finishClose();
      break;
    default:
      break;
  }
}

void TcpConnection::onOurFinAcked() {
  switch (state_) {
    case State::FinWait1:
      state_ = State::FinWait2;
      break;
    case State::Closing:
    case State::LastAck:
      finishClose();
      break;
    default:
      break;
  }
}

void TcpConnection::finishClose() {
  state_ = State::Closed;
  closedAt_ = host_.simulator().now();
  rtoTimer_.cancel();
  if (closed_) closed_();
}

void TcpConnection::fail(std::string reason) {
  failed_ = true;
  error_ = std::move(reason);
  state_ = State::Closed;
  closedAt_ = host_.simulator().now();
  rtoTimer_.cancel();
  if (errorCb_) errorCb_(error_);
}

void TcpConnection::armRtoTimer() {
  if (txq_.empty()) {
    rtoTimer_.cancel();
    return;
  }
  if (rtoTimer_.pending()) return;
  rtoTimer_ = host_.simulator().schedule(rto_, [this] { onRtoFire(); });
}

void TcpConnection::trace(sim::TraceKind kind, std::uint32_t a,
                          std::uint32_t b, std::uint32_t c, std::uint32_t d) {
  sim::Tracer* t = host_.tracer();
  if (t == nullptr) return;
  t->record(host_.simulator().now(), kind, host_.tracerActor(), cfg_.taskId,
            a, b, c, d);
}

// ---------------------------------------------------------- TcpListener

TcpListener::TcpListener(Host& host, std::uint16_t port,
                         TcpConnection::Config config)
    : host_(host), port_(port), config_(config) {
  host_.bindUdp(port_, [this](const UdpDatagram& d) { onDatagram(d); });
}

void TcpListener::onDatagram(const UdpDatagram& dgram) {
  const auto seg = TcpSegment::parse(dgram.payload);
  if (!seg) {
    ++checksumDrops_;
    return;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(dgram.srcIp.value()) << 16) |
      dgram.srcPort;
  auto it = byPeer_.find(key);
  if (it != byPeer_.end() && it->second->failed() && seg->syn() &&
      !seg->hasAck()) {
    // The old incarnation died (e.g. retransmission limit during a dark
    // window); a fresh bare SYN from the same peer is a new connection,
    // not a duplicate — don't let the corpse swallow it.
    displaced_.push_back(std::move(it->second));
    byPeer_.erase(it);
    it = byPeer_.end();
  }
  if (it == byPeer_.end()) {
    if (!(seg->syn() && !seg->hasAck())) return;  // no connection: ignore
    if (dgram.packet == nullptr) return;
    const auto eth = net::EthernetHeader::parse(dgram.packet->span());
    if (!eth) return;
    auto conn = std::make_unique<TcpConnection>(host_, config_);
    TcpConnection* raw = conn.get();
    byPeer_.emplace(key, std::move(conn));
    order_.push_back(raw);
    if (accept_) accept_(*raw);
    raw->accept(*seg, eth->src, dgram.srcIp, dgram.srcPort, port_);
    return;
  }
  if (dgram.packet != nullptr) {
    if (const auto eth = net::EthernetHeader::parse(dgram.packet->span())) {
      it->second->relearnPeerMac(eth->src);
    }
  }
  it->second->onSegment(*seg);
}

std::uint64_t TcpListener::deliveredBytes() const {
  std::uint64_t total = 0;
  for (const TcpConnection* c : order_) total += c->deliveredBytes();
  return total;
}

std::uint64_t TcpListener::patternErrors() const {
  std::uint64_t total = 0;
  for (const TcpConnection* c : order_) total += c->patternErrors();
  return total;
}

}  // namespace tpp::host
