#include "src/host/flow.hpp"

#include <vector>

#include "src/net/ethernet.hpp"
#include "src/net/ipv4.hpp"

namespace tpp::host {

PacedFlow::PacedFlow(Host& src, FlowSpec spec, std::uint64_t flowId)
    : src_(src), spec_(spec), flowId_(flowId), rateBps_(spec.rateBps) {}

sim::Time PacedFlow::interval() const {
  // Pace on wire size so the configured rate is the achieved link rate.
  const std::size_t wireBytes = net::kEthernetHeaderSize +
                                net::kIpv4HeaderSize + net::kUdpHeaderSize +
                                spec_.payloadBytes +
                                net::kEthernetWireOverhead;
  const double seconds =
      static_cast<double>(wireBytes) * 8.0 / std::max(rateBps_, 1.0);
  return sim::Time::seconds(seconds);
}

void PacedFlow::start(sim::Time at) {
  if (running_) return;
  running_ = true;
  pending_ = src_.simulator().scheduleAt(at, [this] { emit(); });
}

void PacedFlow::stop() {
  running_ = false;
  pending_.cancel();
}

void PacedFlow::setRateBps(double rateBps) {
  rateBps_ = std::max(rateBps, 0.0);
}

void PacedFlow::emit() {
  if (!running_) return;
  if (rateBps_ <= 0.0) {  // paused: poll for a rate change, send nothing
    scheduleNext();
    return;
  }
  if (spec_.totalBytes && bytesSent_ >= *spec_.totalBytes) {
    running_ = false;
    finished_ = true;
    return;
  }
  std::vector<std::uint8_t> payload(spec_.payloadBytes, 0);
  // First 8 bytes: flow id, so receivers can attribute bytes per flow.
  for (int i = 0; i < 8 && i < static_cast<int>(payload.size()); ++i) {
    payload[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(flowId_ >> (56 - 8 * i));
  }
  auto packet = src_.makeUdpFrame(spec_.dstMac, spec_.dstIp, spec_.srcPort,
                                  spec_.dstPort, payload);
  if (hook_) hook_(*packet);
  packet->flowId = flowId_;
  src_.transmit(std::move(packet));
  bytesSent_ += spec_.payloadBytes;
  ++packetsSent_;
  scheduleNext();
}

void PacedFlow::scheduleNext() {
  if (rateBps_ <= 0.0) {
    // Paused: poll again shortly in case the controller raises the rate.
    pending_ = src_.simulator().schedule(sim::Time::ms(1), [this] { emit(); });
    return;
  }
  pending_ = src_.simulator().schedule(interval(), [this] { emit(); });
}

}  // namespace tpp::host
