#include "src/host/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace tpp::host {

namespace {

// snprintf into a std::string; all formatting here is ASCII and bounded.
template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

const std::string& actorOr(const std::vector<std::string>& actors,
                           std::uint32_t id) {
  static const std::string kNone = "?";
  if (id == 0 || id > actors.size()) return kNone;
  return actors[id - 1];
}

}  // namespace

std::string_view traceKindName(sim::TraceKind kind) {
  using K = sim::TraceKind;
  switch (kind) {
    case K::None: return "none";
    case K::EventSchedule: return "event_schedule";
    case K::EventFire: return "event_fire";
    case K::PacketEnqueue: return "enqueue";
    case K::PacketDequeue: return "dequeue";
    case K::PacketDrop: return "drop";
    case K::LinkTxStart: return "link_tx";
    case K::LinkDeliver: return "link_deliver";
    case K::LinkFaultDrop: return "link_fault_drop";
    case K::LinkFaultCorrupt: return "link_fault_corrupt";
    case K::LinkDetachedDrop: return "link_detached_drop";
    case K::TcpuExecute: return "tcpu_execute";
    case K::TcpuRetire: return "tcpu_retire";
    case K::ProbeSend: return "probe_send";
    case K::ProbeRetransmit: return "probe_retransmit";
    case K::ProbeEcho: return "probe_echo";
    case K::ProbeLoss: return "probe_loss";
    case K::ProbeDuplicate: return "probe_duplicate";
    case K::ProbeLateEcho: return "probe_late_echo";
    case K::SwitchReboot: return "switch_reboot";
    case K::TcpRetransmit: return "tcp_retransmit";
    case K::TcpRto: return "tcp_rto";
    case K::TcpCwndCut: return "tcp_cwnd_cut";
  }
  return "unknown";
}

std::string describeRecord(const sim::TraceRecord& r,
                           const std::vector<std::string>& actors) {
  using K = sim::TraceKind;
  std::string out;
  appendf(out, "%12.3fus  %-10s %-18s", static_cast<double>(r.tsNanos) * 1e-3,
          actorOr(actors, r.actor).c_str(),
          std::string(traceKindName(r.kindOf())).c_str());
  switch (r.kindOf()) {
    case K::EventSchedule: {
      const std::uint64_t at =
          (static_cast<std::uint64_t>(r.c) << 32) | r.b;
      appendf(out, "seq=%u fire_at=%.3fus", r.a,
              static_cast<double>(at) * 1e-3);
      break;
    }
    case K::EventFire:
      appendf(out, "seq=%u", r.a);
      break;
    case K::PacketEnqueue:
      appendf(out, "port=%u queue=%u bytes=%u qbytes=%u", r.a, r.b, r.c, r.d);
      break;
    case K::PacketDequeue:
    case K::PacketDrop:
      appendf(out, "port=%u queue=%u bytes=%u", r.a, r.b, r.c);
      break;
    case K::LinkTxStart: {
      const std::uint64_t end =
          (static_cast<std::uint64_t>(r.c) << 32) | r.b;
      appendf(out, "wire_bytes=%u serialized_at=%.3fus", r.a,
              static_cast<double>(end) * 1e-3);
      break;
    }
    case K::LinkDeliver:
    case K::LinkFaultDrop:
    case K::LinkDetachedDrop:
      appendf(out, "bytes=%u", r.a);
      break;
    case K::LinkFaultCorrupt:
      appendf(out, "byte=%u bit=%u", r.a, r.b);
      break;
    case K::TcpuExecute:
      appendf(out, "task=%u hop=%u instrs=%u fault=%u cycles=%u", r.task, r.a,
              r.b, r.c, r.d);
      break;
    case K::TcpuRetire:
      appendf(out, "task=%u i=%u op=%u addr=0x%04x off=%u", r.task, r.a, r.b,
              r.c, r.d);
      break;
    case K::ProbeSend:
      appendf(out, "task=%u seq=%u instrs=%u seq_word=%u", r.task, r.a, r.b,
              r.c);
      break;
    case K::ProbeRetransmit:
      appendf(out, "task=%u seq=%u retries_left=%u", r.task, r.a, r.b);
      break;
    case K::ProbeEcho:
    case K::ProbeLateEcho:
      appendf(out, "task=%u seq=%u hops=%u fault=%u", r.task, r.a, r.b, r.c);
      break;
    case K::ProbeLoss:
    case K::ProbeDuplicate:
      appendf(out, "task=%u seq=%u", r.task, r.a);
      break;
    case K::SwitchReboot:
      appendf(out, "boot_epoch=%u", r.a);
      break;
    case K::TcpRetransmit:
      appendf(out, "port=%u seq=%u bytes=%u %s", r.a, r.b, r.c,
              r.d != 0 ? "fast" : "rto");
      break;
    case K::TcpRto:
      appendf(out, "port=%u rto_us=%u timeouts=%u", r.a, r.b, r.c);
      break;
    case K::TcpCwndCut:
      appendf(out, "port=%u cwnd=%u reason=%u", r.a, r.b, r.c);
      break;
    case K::None:
      break;
  }
  return out;
}

std::string toChromeJson(const sim::DecodedTrace& trace) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Name each actor track once (tid = actor id; 0 is the "?" track).
  for (std::size_t i = 0; i < trace.actors.size(); ++i) {
    if (!first) out += ",";
    first = false;
    appendf(out,
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
            "\"args\":{\"name\":\"%s\"}}",
            i + 1, trace.actors[i].c_str());
  }
  for (const auto& r : trace.records) {
    if (!first) out += ",";
    first = false;
    appendf(out,
            "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
            "\"tid\":%u,\"ts\":%.3f,\"args\":{\"task\":%u,\"a\":%u,\"b\":%u,"
            "\"c\":%u,\"d\":%u}}",
            std::string(traceKindName(r.kindOf())).c_str(), r.actor,
            static_cast<double>(r.tsNanos) * 1e-3, r.task, r.a, r.b, r.c,
            r.d);
  }
  out += "]}";
  return out;
}

std::string toCsv(const sim::DecodedTrace& trace) {
  std::string out = "ts_nanos,actor,kind,task,a,b,c,d\n";
  for (const auto& r : trace.records) {
    appendf(out, "%" PRId64 ",%s,%s,%u,%u,%u,%u,%u\n", r.tsNanos,
            actorOr(trace.actors, r.actor).c_str(),
            std::string(traceKindName(r.kindOf())).c_str(), r.task, r.a, r.b,
            r.c, r.d);
  }
  return out;
}

sim::DecodedTrace decoded(const sim::Tracer& tracer) {
  const auto bytes = tracer.serialize();
  return sim::decodeTrace(bytes);
}

ProbeLifecycle reconstructProbeLifecycle(const sim::DecodedTrace& trace,
                                         std::uint16_t task,
                                         std::uint32_t seq) {
  using K = sim::TraceKind;
  ProbeLifecycle lc;
  lc.task = task;
  lc.seq = seq;

  // Pass 1: the probe's own window [send, echo/loss].
  for (const auto& r : trace.records) {
    const K k = r.kindOf();
    if (r.task != task) continue;
    if (!lc.found) {
      if (k == K::ProbeSend && r.a == seq) {
        lc.found = true;
        lc.sendTsNanos = r.tsNanos;
      }
      continue;
    }
    if (r.a != seq) continue;
    if (k == K::ProbeRetransmit) {
      ++lc.retransmits;
    } else if (k == K::ProbeEcho && !lc.endTsNanos) {
      lc.endTsNanos = r.tsNanos;
      lc.outcome = ProbeLifecycle::Outcome::Echoed;
    } else if (k == K::ProbeLoss && !lc.endTsNanos) {
      lc.endTsNanos = r.tsNanos;
      lc.outcome = ProbeLifecycle::Outcome::Lost;
    } else if (k == K::ProbeLateEcho) {
      lc.endTsNanos = r.tsNanos;
      lc.outcome = ProbeLifecycle::Outcome::LostThenSalvaged;
    }
  }
  if (!lc.found) return lc;
  const std::int64_t windowEnd =
      lc.endTsNanos.value_or(trace.records.empty()
                                 ? lc.sendTsNanos
                                 : trace.records.back().tsNanos);

  // A retransmitted probe's hops cannot be told apart from the original's
  // (both copies carry the same seq and execute the same program).
  if (lc.retransmits > 0) lc.ambiguous = true;

  // Pass 2: attribute TcpuExecute records inside the window to this probe,
  // and detect overlap with sibling probes of the same task.
  for (const auto& r : trace.records) {
    if (r.task != task) continue;
    const K k = r.kindOf();
    if (k == K::ProbeSend && r.a != seq && r.tsNanos <= windowEnd) {
      // Another probe of this task sent before our window closed — was it
      // still unresolved at our send time? Conservatively: any same-task
      // send inside [send, end], or earlier send without a resolution
      // before our send, overlaps.
      if (r.tsNanos >= lc.sendTsNanos) {
        lc.ambiguous = true;
      } else {
        bool resolvedBeforeUs = false;
        for (const auto& r2 : trace.records) {
          if (r2.task != task || r2.a != r.a) continue;
          const K k2 = r2.kindOf();
          if ((k2 == K::ProbeEcho || k2 == K::ProbeLoss) &&
              r2.tsNanos >= r.tsNanos && r2.tsNanos <= lc.sendTsNanos) {
            resolvedBeforeUs = true;
            break;
          }
        }
        if (!resolvedBeforeUs) lc.ambiguous = true;
      }
    }
    if (k == K::TcpuExecute && r.tsNanos >= lc.sendTsNanos &&
        r.tsNanos <= windowEnd) {
      lc.hops.push_back(ProbeLifecycle::Hop{r.tsNanos, r.actor, r.a, r.b,
                                            r.c});
    }
  }
  return lc;
}

std::string describeLifecycle(const ProbeLifecycle& lc,
                              const std::vector<std::string>& actors) {
  std::string out;
  if (!lc.found) {
    appendf(out, "probe task=%u seq=%u: not found in trace\n", lc.task,
            lc.seq);
    return out;
  }
  appendf(out, "probe task=%u seq=%u%s\n", lc.task, lc.seq,
          lc.ambiguous ? "  (ambiguous: overlapping probes or retransmits)"
                       : "");
  appendf(out, "%12.3fus  send\n",
          static_cast<double>(lc.sendTsNanos) * 1e-3);
  for (const auto& h : lc.hops) {
    appendf(out, "%12.3fus  hop %u @ %s: %u instrs, fault=%u\n",
            static_cast<double>(h.tsNanos) * 1e-3, h.hopNumber,
            actorOr(actors, h.actor).c_str(), h.instructions, h.faultCode);
  }
  if (lc.retransmits > 0) {
    appendf(out, "              (%u retransmit%s)\n", lc.retransmits,
            lc.retransmits == 1 ? "" : "s");
  }
  const char* end = "still pending at end of trace";
  switch (lc.outcome) {
    case ProbeLifecycle::Outcome::Echoed: end = "echo"; break;
    case ProbeLifecycle::Outcome::Lost: end = "LOST (gave up)"; break;
    case ProbeLifecycle::Outcome::LostThenSalvaged:
      end = "late echo (salvaged after loss)";
      break;
    case ProbeLifecycle::Outcome::Pending: break;
  }
  if (lc.endTsNanos) {
    appendf(out, "%12.3fus  %s\n", static_cast<double>(*lc.endTsNanos) * 1e-3,
            end);
  } else {
    appendf(out, "              %s\n", end);
  }
  return out;
}

void armTracing(Testbed& tb, sim::Tracer& tracer) {
  tb.sim().setTracer(&tracer);
  for (std::size_t i = 0; i < tb.switchCount(); ++i) {
    tb.sw(i).setTracer(&tracer);
  }
  for (std::size_t i = 0; i < tb.hostCount(); ++i) {
    tb.host(i).setTracer(&tracer);
  }
  for (std::size_t i = 0; i < tb.linkCount(); ++i) {
    auto& l = tb.linkAt(i);
    l.aToB().setTracer(&tracer,
                       tracer.actor("link" + std::to_string(i) + ".fwd"));
    l.bToA().setTracer(&tracer,
                       tracer.actor("link" + std::to_string(i) + ".rev"));
  }
}

ShardedTrace::ShardedTrace(std::size_t shards, std::size_t capacity) {
  if (shards == 0) shards = 1;
  tracers_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    tracers_.push_back(std::make_unique<sim::Tracer>(capacity));
  }
}

std::vector<std::uint8_t> ShardedTrace::merged() const {
  std::vector<const sim::Tracer*> ptrs;
  ptrs.reserve(tracers_.size());
  for (const auto& t : tracers_) ptrs.push_back(t.get());
  return sim::mergeTraces(ptrs);
}

void armTracing(Testbed& tb, ShardedTrace& trace) {
  assert(trace.shardCount() == tb.sharded().shardCount() &&
         "one recorder per shard");
  for (std::size_t s = 0; s < tb.sharded().shardCount(); ++s) {
    tb.sharded().shard(s).setTracer(&trace.shard(s));
  }
  for (std::size_t i = 0; i < tb.switchCount(); ++i) {
    tb.sw(i).setTracer(&trace.shard(tb.shardOf(tb.sw(i))));
  }
  for (std::size_t i = 0; i < tb.hostCount(); ++i) {
    tb.host(i).setTracer(&trace.shard(tb.shardOf(tb.host(i))));
  }
  for (std::size_t i = 0; i < tb.linkCount(); ++i) {
    auto& l = tb.linkAt(i);
    const std::string fwd = "link" + std::to_string(i) + ".fwd";
    const std::string rev = "link" + std::to_string(i) + ".rev";
    const auto [sa, sb] = tb.linkShards(i);
    sim::Tracer& ta = trace.shard(sa);
    sim::Tracer& tb2 = trace.shard(sb);
    l.aToB().setTracer(&ta, ta.actor(fwd));
    l.aToB().setRxTracer(&tb2, tb2.actor(fwd));
    l.bToA().setTracer(&tb2, tb2.actor(rev));
    l.bToA().setRxTracer(&ta, ta.actor(rev));
  }
}

void bindProbeGauge(ReliableProber& prober, Testbed& tb, const Host& host) {
  const auto att = tb.attachmentOf(host);
  if (att.sw == nullptr) return;
  asic::Switch* sw = att.sw;
  const std::size_t port = att.port;
  prober.onOutstandingChange([sw, port](std::size_t n) {
    sw->setPortProbesInFlight(port, static_cast<std::uint32_t>(n));
  });
}

std::vector<asic::SramRaceOracle::ObservedConflict>
SramOracleSet::conflicts() {
  std::vector<asic::SramRaceOracle::ObservedConflict> out;
  for (auto& o : oracles_) {
    const auto c = o.conflicts();
    out.insert(out.end(), c.begin(), c.end());
  }
  return out;
}

std::vector<std::string> SramOracleSet::divergences(
    const core::InterferenceReport& report,
    std::span<const core::EffectSummary> tasks) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < oracles_.size(); ++i) {
    for (auto& d : oracles_[i].divergences(report, tasks)) {
      out.push_back("sw" + std::to_string(i) + ": " + std::move(d));
    }
  }
  return out;
}

std::uint64_t SramOracleSet::accesses() const {
  std::uint64_t total = 0;
  for (const auto& o : oracles_) total += o.accesses();
  return total;
}

void armSramOracle(Testbed& tb, SramOracleSet& oracles) {
  assert(oracles.size() == tb.switchCount() && "one oracle per switch");
  for (std::size_t i = 0; i < tb.switchCount(); ++i) {
    tb.sw(i).setSramOracle(&oracles.at(i));
  }
}

void disarmSramOracle(Testbed& tb) {
  for (std::size_t i = 0; i < tb.switchCount(); ++i) {
    tb.sw(i).setSramOracle(nullptr);
  }
}

}  // namespace tpp::host
