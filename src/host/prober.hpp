// Reliable TPP issuance (§2.2's end-host refactoring made loss-tolerant):
// sequence-numbered probes with per-probe timeouts, capped exponential-
// backoff retransmit, and duplicate suppression.
//
// Sequence tagging: the probe's sequence number rides as one extra word
// appended to the immediates region of packet memory (pushing initialSp one
// word later), so the echoed TPP carries it back untouched by the switches.
// Record parsers therefore read hop records starting at
// `seqWordIndex(program) + 1` words in. The tag also disambiguates echoes
// of retransmitted copies: a late original and its retransmit carry the
// same seq, and the second arrival is counted as a duplicate and dropped.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "src/core/program.hpp"
#include "src/host/host.hpp"

namespace tpp::host {

class ReliableProber {
 public:
  struct Config {
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    sim::Time timeout = sim::Time::ms(10);     // first retransmit after this
    sim::Time maxBackoff = sim::Time::ms(80);  // backoff doubles up to this
    unsigned maxRetries = 3;                   // retransmits per probe
    std::uint32_t firstSeq = 1;
  };

  using ResultFn = std::function<void(const core::ExecutedTpp&)>;
  using LossFn = std::function<void(std::uint32_t seq)>;

  ReliableProber(Host& host, Config config);

  // Tags `program` with the next sequence number and transmits it toward
  // the configured destination's echo service. `onResult` fires at most
  // once, with the first matching echo; `onLoss` (optional) fires if every
  // transmission times out first. A matching echo that arrives AFTER the
  // loss was declared — e.g. RTT inflated past the give-up time by a
  // congested queue — is salvaged: it still fires `onResult` (late feedback
  // beats no feedback; the caller already took its loss-path action).
  // Returns the probe's sequence number.
  std::uint32_t send(const core::Program& program, ResultFn onResult,
                     LossFn onLoss = {});

  // The program as actually sent: `program` plus the trailing seq word.
  static core::Program tagged(const core::Program& program, std::uint32_t seq);
  // Word index of the seq tag in the echoed pmem (== one past the original
  // immediates); hop records start at seqWordIndex + 1.
  static std::size_t seqWordIndex(const core::Program& program) {
    return program.initialSp / core::kWordSize;
  }

  std::size_t outstanding() const { return pending_.size(); }

  // Gauge hook: fires whenever the outstanding-probe count changes (send,
  // echo, loss). Telemetry wiring binds this to the first-hop switch's
  // Link:ProbesInFlight register so TPPs can read their sender's load.
  using GaugeFn = std::function<void(std::size_t outstanding)>;
  void onOutstandingChange(GaugeFn fn) { gauge_ = std::move(fn); }
  std::uint64_t probesSent() const { return sent_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t losses() const { return losses_; }
  // Echoes delivered after their probe had been declared lost.
  std::uint64_t lateResults() const { return lateResults_; }

 private:
  struct Pending {
    core::Program taggedProgram;
    // The serialized probe frame, built once at send(); every transmission
    // (original and retransmits) clones it instead of re-serializing.
    net::PacketPtr frame;
    std::size_t seqIndex = 0;
    ResultFn onResult;
    LossFn onLoss;
    unsigned retriesLeft = 0;
    sim::Time backoff = sim::Time::zero();
    sim::EventHandle timer;
  };

  // Enough of a completed probe to recognize (and suppress) a late
  // duplicate echo of it.
  struct Fingerprint {
    std::uint32_t seq = 0;
    std::size_t seqIndex = 0;
    std::vector<core::Instruction> instructions;
  };

  // A probe given up on, kept around so a late echo can still deliver.
  struct Salvage {
    Fingerprint fp;
    ResultFn onResult;
  };

  void transmit(const Pending& p);
  void armTimer(std::uint32_t seq, Pending& p);
  // One flight-recorder record attributed to the owning host; no-op when
  // the host's tracer is disarmed.
  void trace(sim::TraceKind kind, std::uint16_t task, std::uint32_t a,
             std::uint32_t b = 0, std::uint32_t c = 0);
  void postGauge() {
    if (gauge_) gauge_(pending_.size());
  }
  void onTimeout(std::uint32_t seq);
  void onEcho(const core::ExecutedTpp& tpp);
  static bool matches(const core::ExecutedTpp& tpp, std::uint32_t seq,
                      std::size_t seqIndex,
                      const std::vector<core::Instruction>& instructions);

  Host& host_;
  Config cfg_;
  GaugeFn gauge_;
  std::uint32_t nextSeq_;
  std::map<std::uint32_t, Pending> pending_;
  // Recently-completed probes, for suppressing late duplicate echoes.
  std::deque<Fingerprint> completed_;
  // Recently-lost probes, for salvaging late echoes.
  std::deque<Salvage> salvage_;
  static constexpr std::size_t kCompletedRing = 64;
  std::uint64_t sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t losses_ = 0;
  std::uint64_t lateResults_ = 0;
};

}  // namespace tpp::host
