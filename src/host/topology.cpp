#include "src/host/topology.hpp"

#include <cassert>
#include <deque>
#include <unordered_map>

namespace tpp::host {

Host& Testbed::addHost(std::string name) {
  const auto n = static_cast<std::uint32_t>(hosts_.size() + 1);
  if (name.empty()) name = "h" + std::to_string(n - 1);
  const std::size_t shard = plan_.forHost(hosts_.size());
  hosts_.push_back(std::make_unique<Host>(ssim_->shard(shard), std::move(name),
                                          net::MacAddress::fromIndex(n),
                                          net::Ipv4Address::forHost(n)));
  nodeShard_[hosts_.back().get()] = shard;
  return *hosts_.back();
}

asic::Switch& Testbed::addSwitch(asic::SwitchConfig config, std::string name) {
  if (config.switchId == 0) {
    config.switchId = static_cast<std::uint32_t>(switches_.size() + 1);
  }
  if (name.empty()) name = "sw" + std::to_string(switches_.size());
  const std::size_t shard = plan_.forSwitch(switches_.size());
  switches_.push_back(std::make_unique<asic::Switch>(ssim_->shard(shard),
                                                     std::move(name), config));
  nodeShard_[switches_.back().get()] = shard;
  return *switches_.back();
}

net::DuplexLink& Testbed::link(net::Node& a, std::size_t portA, net::Node& b,
                               std::size_t portB, std::uint64_t rateBps,
                               sim::Time delay) {
  const std::size_t sa = shardOf(a);
  const std::size_t sb = shardOf(b);
  // Each direction serializes on its transmitting endpoint's shard.
  links_.push_back(net::DuplexLink::connect(ssim_->shard(sa), ssim_->shard(sb),
                                            a, portA, b, portB, rateBps,
                                            delay));
  if (sa != sb) {
    // A shard boundary: deliveries hop shards through SPSC channels, and
    // the link's propagation delay becomes a lookahead bound (so it must
    // be positive — addChannel asserts).
    net::DuplexLink& l = *links_.back();
    l.aToB().setCrossShard(&ssim_->addChannel(sa, sb, delay));
    l.bToA().setCrossShard(&ssim_->addChannel(sb, sa, delay));
  }
  edges_.push_back(Edge{&a, portA, &b, portB});
  return *links_.back();
}

bool Testbed::installTask(core::EffectSummary summary, std::string* whyNot) {
  std::vector<core::EffectSummary> candidate = installedTasks_;
  candidate.push_back(std::move(summary));
  const auto report =
      core::analyzeInterference(candidate, interferenceOptions_);
  if (!report.ok()) {
    // The installed set was error-free before, so every error implicates
    // the candidate; reject it and leave the set untouched.
    if (whyNot != nullptr) {
      whyNot->clear();
      for (const auto& f : report.findings) {
        if (f.severity != core::Severity::Error) continue;
        if (!whyNot->empty()) *whyNot += '\n';
        *whyNot += core::formatConflict(f);
      }
    }
    return false;
  }
  installedTasks_ = std::move(candidate);
  return true;
}

Testbed::Attachment Testbed::attachmentOf(const Host& h) const {
  for (const auto& e : edges_) {
    if (e.a == &h) {
      return {dynamic_cast<asic::Switch*>(e.b), e.portB};
    }
    if (e.b == &h) {
      return {dynamic_cast<asic::Switch*>(e.a), e.portA};
    }
  }
  return {};
}

void Testbed::installAllRoutes() {
  // Switch-to-switch adjacency: for each switch, (peer switch, my port).
  struct Adj {
    asic::Switch* peer;
    std::size_t myPort;
  };
  std::unordered_map<asic::Switch*, std::vector<Adj>> adj;
  for (const auto& e : edges_) {
    auto* sa = dynamic_cast<asic::Switch*>(e.a);
    auto* sb = dynamic_cast<asic::Switch*>(e.b);
    if (sa && sb) {
      adj[sa].push_back({sb, e.portA});
      adj[sb].push_back({sa, e.portB});
    }
  }

  for (const auto& hptr : hosts_) {
    const Host& h = *hptr;
    const auto attach = attachmentOf(h);
    assert(attach.sw != nullptr && "host is not attached to any switch");

    // BFS outward from the attachment switch; record each switch's port
    // toward the host.
    std::unordered_map<asic::Switch*, std::size_t> portToward;
    portToward[attach.sw] = attach.port;
    std::deque<asic::Switch*> frontier{attach.sw};
    while (!frontier.empty()) {
      asic::Switch* cur = frontier.front();
      frontier.pop_front();
      for (const auto& [peer, peerPortUnused] : adj[cur]) {
        (void)peerPortUnused;
        if (portToward.contains(peer)) continue;
        // peer reaches h through its port to cur.
        for (const auto& back : adj[peer]) {
          if (back.peer == cur) {
            portToward[peer] = back.myPort;
            break;
          }
        }
        frontier.push_back(peer);
      }
    }

    for (const auto& [sw, port] : portToward) {
      sw->l3().add(h.ip(), 32, port);
      sw->l2().add(h.mac(), port);
    }
  }
}

void buildChain(Testbed& tb, std::size_t switches, LinkParams lp,
                asic::SwitchConfig cfg) {
  assert(switches >= 1);
  Host& h0 = tb.addHost();
  Host& h1 = tb.addHost();
  for (std::size_t i = 0; i < switches; ++i) tb.addSwitch(cfg);
  // Port plan: port 0 faces "left", port 1 faces "right".
  tb.link(h0, 0, tb.sw(0), 0, lp.rateBps, lp.delay);
  for (std::size_t i = 0; i + 1 < switches; ++i) {
    tb.link(tb.sw(i), 1, tb.sw(i + 1), 0, lp.rateBps, lp.delay);
  }
  tb.link(tb.sw(switches - 1), 1, h1, 0, lp.rateBps, lp.delay);
  tb.installAllRoutes();
}

void buildDumbbell(Testbed& tb, std::size_t pairs, LinkParams edge,
                   LinkParams bottleneck, asic::SwitchConfig cfg) {
  assert(pairs >= 1);
  if (cfg.ports < pairs + 1) cfg.ports = pairs + 1;
  asic::Switch& left = tb.addSwitch(cfg);
  asic::Switch& right = tb.addSwitch(cfg);
  for (std::size_t i = 0; i < pairs; ++i) {  // senders
    Host& h = tb.addHost();
    tb.link(h, 0, left, i, edge.rateBps, edge.delay);
  }
  for (std::size_t i = 0; i < pairs; ++i) {  // receivers
    Host& h = tb.addHost();
    tb.link(h, 0, right, i, edge.rateBps, edge.delay);
  }
  tb.link(left, pairs, right, pairs, bottleneck.rateBps, bottleneck.delay);
  tb.installAllRoutes();
}

FatTreeIndex buildFatTree(Testbed& tb, std::size_t k, LinkParams lp,
                          asic::SwitchConfig cfg) {
  assert(k >= 2 && k % 2 == 0);
  FatTreeIndex ix;
  ix.k = k;
  const std::size_t r = ix.radix();
  if (cfg.ports < k) cfg.ports = k;

  // Creation order fixes the indices: cores, then per pod aggs + edges.
  for (std::size_t c = 0; c < ix.coreCount(); ++c) tb.addSwitch(cfg);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t a = 0; a < r; ++a) tb.addSwitch(cfg);
    for (std::size_t e = 0; e < r; ++e) tb.addSwitch(cfg);
  }
  for (std::size_t h = 0; h < ix.hostCount(); ++h) tb.addHost();

  // Port plan: edge ports [0,r) → hosts, [r,k) → aggs; agg ports [0,r) →
  // edges, [r,k) → cores; core port p → pod p.
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t e = 0; e < r; ++e) {
      auto& edge = tb.sw(ix.edgeSw(p, e));
      for (std::size_t h = 0; h < r; ++h) {
        tb.link(tb.host(ix.host(p, e, h)), 0, edge, h, lp.rateBps, lp.delay);
      }
      for (std::size_t a = 0; a < r; ++a) {
        tb.link(edge, r + a, tb.sw(ix.aggSw(p, a)), e, lp.rateBps, lp.delay);
      }
    }
    for (std::size_t a = 0; a < r; ++a) {
      auto& agg = tb.sw(ix.aggSw(p, a));
      for (std::size_t i = 0; i < r; ++i) {
        const std::size_t c = a * r + i;
        tb.link(agg, r + i, tb.sw(ix.coreSw(c)), p, lp.rateBps, lp.delay);
      }
    }
  }

  // Routing. Downward: per-host /32s. Upward: ECMP defaults.
  std::vector<std::size_t> upPorts;
  for (std::size_t i = 0; i < r; ++i) upPorts.push_back(r + i);

  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t e = 0; e < r; ++e) {
      auto& edge = tb.sw(ix.edgeSw(p, e));
      for (std::size_t h = 0; h < r; ++h) {
        const Host& hh = tb.host(ix.host(p, e, h));
        edge.l3().add(hh.ip(), 32, h);
        edge.l2().add(hh.mac(), h);
      }
      edge.l3().addMultipath(net::Ipv4Address{0}, 0, upPorts);
    }
    for (std::size_t a = 0; a < r; ++a) {
      auto& agg = tb.sw(ix.aggSw(p, a));
      for (std::size_t e = 0; e < r; ++e) {
        for (std::size_t h = 0; h < r; ++h) {
          agg.l3().add(tb.host(ix.host(p, e, h)).ip(), 32, e);
        }
      }
      agg.l3().addMultipath(net::Ipv4Address{0}, 0, upPorts);
    }
  }
  for (std::size_t c = 0; c < ix.coreCount(); ++c) {
    auto& core = tb.sw(ix.coreSw(c));
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t e = 0; e < r; ++e) {
        for (std::size_t h = 0; h < r; ++h) {
          core.l3().add(tb.host(ix.host(p, e, h)).ip(), 32, p);
        }
      }
    }
  }
  return ix;
}

PathOracle::PathOracle(const Testbed& tb) : tb_(tb) {
  // attachmentOf() is a linear scan per call; snapshot the whole wiring
  // once so path() walks hops in O(1) each.
  for (std::size_t i = 0; i < tb.linkCount(); ++i) {
    const Testbed::Edge& e = tb.edgeAt(i);
    auto& va = peers_[e.a];
    if (va.size() <= e.portA) va.resize(e.portA + 1);
    va[e.portA] = {e.b, e.portB};
    auto& vb = peers_[e.b];
    if (vb.size() <= e.portB) vb.resize(e.portB + 1);
    vb[e.portB] = {e.a, e.portA};
  }
}

std::vector<PathOracle::Hop> PathOracle::path(const Host& src,
                                              const Host& dst,
                                              std::uint16_t srcPort,
                                              std::uint16_t dstPort,
                                              std::uint8_t protocol) const {
  std::vector<Hop> hops;
  const std::uint64_t hash =
      asic::ecmpFlowHash(src.ip(), dst.ip(), protocol, srcPort, dstPort);
  const auto first = peers_.find(&src);
  if (first == peers_.end() || first->second.empty() ||
      first->second[0].node == nullptr) {
    return {};
  }
  Peer cur = first->second[0];  // hosts transmit on NIC port 0
  for (int hop = 0; hop < 64; ++hop) {
    if (cur.node == &dst) return hops;
    const auto* sw = dynamic_cast<const asic::Switch*>(cur.node);
    if (sw == nullptr) return {};  // delivered to the wrong host
    const auto match = sw->l3().match(dst.ip(), hash);
    if (!match) return {};
    hops.push_back({sw, cur.port, match->outPort});
    const auto it = peers_.find(cur.node);
    if (it == peers_.end() || match->outPort >= it->second.size() ||
        it->second[match->outPort].node == nullptr) {
      return {};
    }
    cur = it->second[match->outPort];
  }
  return {};  // > 64 hops: a loop
}

ShardPlan partitionFatTree(std::size_t k, std::size_t shards) {
  assert(k >= 2 && k % 2 == 0);
  FatTreeIndex ix;
  ix.k = k;
  const std::size_t r = ix.radix();
  ShardPlan plan;
  plan.shards = shards == 0 ? 1 : shards;
  plan.switchShard.assign(ix.coreCount() + k * k, 0);
  plan.hostShard.assign(ix.hostCount(), 0);
  if (plan.shards == 1) return plan;
  // Cores spread evenly; each pod (aggs, edges, hosts) lands wholesale on
  // the shard of its contiguous block, so only agg<->core links cross.
  for (std::size_t c = 0; c < ix.coreCount(); ++c) {
    plan.switchShard[ix.coreSw(c)] = c * plan.shards / ix.coreCount();
  }
  for (std::size_t p = 0; p < k; ++p) {
    const std::size_t s = p * plan.shards / k;
    for (std::size_t a = 0; a < r; ++a) plan.switchShard[ix.aggSw(p, a)] = s;
    for (std::size_t e = 0; e < r; ++e) {
      plan.switchShard[ix.edgeSw(p, e)] = s;
      for (std::size_t h = 0; h < r; ++h) plan.hostShard[ix.host(p, e, h)] = s;
    }
  }
  return plan;
}

void buildStar(Testbed& tb, std::size_t senders, LinkParams lp,
               asic::SwitchConfig cfg) {
  assert(senders >= 1);
  if (cfg.ports < senders + 1) cfg.ports = senders + 1;
  asic::Switch& hub = tb.addSwitch(cfg);
  for (std::size_t i = 0; i < senders + 1; ++i) {
    Host& h = tb.addHost();
    tb.link(h, 0, hub, i, lp.rateBps, lp.delay);
  }
  tb.installAllRoutes();
}

}  // namespace tpp::host
