#include "src/host/host.hpp"

#include <cassert>

#include "src/asic/parser.hpp"
#include "src/net/byte_io.hpp"

namespace tpp::host {

Host::Host(sim::Simulator& simulator, std::string name, net::MacAddress mac,
           net::Ipv4Address ip)
    : net::Node(std::move(name)), sim_(simulator), mac_(mac), ip_(ip) {}

net::PacketPtr Host::makeUdpFrame(net::MacAddress dstMac,
                                   net::Ipv4Address dstIp,
                                   std::uint16_t srcPort,
                                   std::uint16_t dstPort,
                                   std::span<const std::uint8_t> payload) {
  const std::size_t ipLen =
      net::kIpv4HeaderSize + net::kUdpHeaderSize + payload.size();
  const std::size_t frameLen = net::kEthernetHeaderSize + ipLen;
  auto packet = net::Packet::make(std::max(frameLen, net::kMinFrameSize));
  packet->createdAt = sim_.now();

  net::EthernetHeader eth{dstMac, mac_, net::kEtherTypeIpv4};
  eth.write(packet->span());

  net::Ipv4Header ip;
  ip.totalLength = static_cast<std::uint16_t>(ipLen);
  ip.identification = nextIpId_++;
  ip.src = ip_;
  ip.dst = dstIp;
  ip.write(packet->span().subspan(net::kEthernetHeaderSize));

  net::UdpHeader udp;
  udp.srcPort = srcPort;
  udp.dstPort = dstPort;
  udp.length = static_cast<std::uint16_t>(net::kUdpHeaderSize + payload.size());
  udp.write(packet->span().subspan(net::kEthernetHeaderSize +
                                   net::kIpv4HeaderSize));

  std::copy(payload.begin(), payload.end(),
            packet->bytes().begin() +
                static_cast<std::ptrdiff_t>(net::kEthernetHeaderSize +
                                            net::kIpv4HeaderSize +
                                            net::kUdpHeaderSize));
  return packet;
}

sim::Time Host::transmit(net::PacketPtr packet) {
  net::Channel* ch = portCount() > 0 ? txChannel(0) : nullptr;
  assert(ch != nullptr && "host NIC is not wired to a link");
  ++sent_;
  return ch->transmit(std::move(packet));
}

sim::Time Host::sendUdp(net::MacAddress dstMac, net::Ipv4Address dstIp,
                        std::uint16_t srcPort, std::uint16_t dstPort,
                        std::span<const std::uint8_t> payload) {
  return transmit(makeUdpFrame(dstMac, dstIp, srcPort, dstPort, payload));
}

net::PacketPtr Host::makeProbeFrame(net::MacAddress dstMac,
                                    net::Ipv4Address dstIp,
                                    const core::Program& program) {
  // The probe encapsulates a minimal UDP datagram to the echo port so the
  // destination host knows to send the executed program back. All three
  // layers are serialized straight into one pooled packet — this is the
  // probe hot path and must stay allocation-free in steady state.
  const std::size_t tppBytes = program.wireBytes();
  const std::size_t ipLen = net::kIpv4HeaderSize + net::kUdpHeaderSize;
  // The encapsulated datagram is padded as a standalone minimum-size frame
  // would be (sans Ethernet header) — the wire format probes have always
  // had, and what the echoed-bytes golden traces pin down.
  const std::size_t innerBytes =
      std::max(net::kEthernetHeaderSize + ipLen, net::kMinFrameSize) -
      net::kEthernetHeaderSize;
  const std::size_t frameLen = net::kEthernetHeaderSize + tppBytes + innerBytes;
  auto packet = net::Packet::make(std::max(frameLen, net::kMinFrameSize));
  packet->createdAt = sim_.now();

  net::EthernetHeader eth{dstMac, mac_, net::kEtherTypeTpp};
  eth.write(packet->span());
  core::writeTpp(packet->span(), net::kEthernetHeaderSize, program,
                 net::kEtherTypeIpv4);

  const std::size_t ipOff = net::kEthernetHeaderSize + tppBytes;
  net::Ipv4Header ip;
  ip.totalLength = static_cast<std::uint16_t>(ipLen);
  ip.identification = nextIpId_++;
  ip.src = ip_;
  ip.dst = dstIp;
  ip.write(packet->span().subspan(ipOff));

  net::UdpHeader udp;
  udp.srcPort = kTppEchoPort;
  udp.dstPort = kTppEchoPort;
  udp.length = net::kUdpHeaderSize;
  udp.write(packet->span().subspan(ipOff + net::kIpv4HeaderSize));
  return packet;
}

sim::Time Host::sendProbe(net::MacAddress dstMac, net::Ipv4Address dstIp,
                          const core::Program& program) {
  return transmit(makeProbeFrame(dstMac, dstIp, program));
}

sim::Time Host::sendUdpWithTpp(net::MacAddress dstMac, net::Ipv4Address dstIp,
                               std::uint16_t srcPort, std::uint16_t dstPort,
                               std::span<const std::uint8_t> payload,
                               const core::Program& program) {
  auto packet = makeUdpFrame(dstMac, dstIp, srcPort, dstPort, payload);
  core::insertTppShim(*packet, program);
  return transmit(std::move(packet));
}

void Host::bindUdp(std::uint16_t port, UdpHandler handler) {
  udpHandlers_[port] = std::move(handler);
}

void Host::receive(net::PacketPtr packet, std::size_t port) {
  (void)port;
  ++received_;
  bytesReceived_ += packet->size();

  auto parsed = asic::parsePacket(*packet);
  if (!parsed) return;
  if (parsed->eth.dst != mac_ && !parsed->eth.dst.isBroadcast()) return;

  if (parsed->tppOffset) {
    // A live TPP reached us. Surface it, then either echo it (probe) or
    // strip it and deliver the inner datagram (shimmed data packet).
    if (!tppArrival_.empty() &&
        core::parseExecutedInto(packet->span().subspan(*parsed->tppOffset),
                                echoScratch_)) {
      for (const auto& handler : tppArrival_) handler(echoScratch_);
    }
    if (parsed->ip && parsed->udp && parsed->udp->dstPort == kTppEchoPort) {
      echoExecutedTpp(*packet, *parsed->tppOffset, *parsed->ip, *parsed->udp);
      return;
    }
    if (!core::stripTppShim(*packet)) return;
  }
  deliverUdp(*packet);
}

void Host::echoExecutedTpp(const net::Packet& packet, std::size_t tppOffset,
                           const net::Ipv4Header& ip,
                           const net::UdpHeader& udp) {
  auto view = core::TppView::at(const_cast<net::Packet&>(packet), tppOffset);
  if (!view) return;
  const std::size_t body = view->tppSizeBytes();
  std::span<const std::uint8_t> tppBytes =
      packet.span().subspan(tppOffset, body);

  const auto eth = net::EthernetHeader::parse(packet.span());
  if (!eth) return;
  ++echoed_;
  sendUdp(eth->src, ip.src, udp.dstPort, udp.srcPort, tppBytes);
}

void Host::deliverUdp(net::Packet& packet) {
  auto parsed = asic::parsePacket(packet);
  if (!parsed || !parsed->ip || !parsed->udp) return;
  if (parsed->ip->dst != ip_) return;

  // Echo-port traffic carries executed TPP bytes as its payload.
  if (parsed->udp->dstPort == kTppEchoPort ||
      parsed->udp->srcPort == kTppEchoPort) {
    if (!tppResult_.empty()) {
      // Parse an ExecutedTpp straight out of the payload bytes, reusing the
      // scratch object's capacity (steady-state echoes allocate nothing).
      const std::size_t payloadLen =
          parsed->udp->length >= net::kUdpHeaderSize
              ? parsed->udp->length - net::kUdpHeaderSize
              : 0;
      if (parsed->l4PayloadOffset + payloadLen <= packet.size() &&
          payloadLen > 0 &&
          core::parseExecutedInto(
              packet.span().subspan(parsed->l4PayloadOffset, payloadLen),
              echoScratch_)) {
        for (const auto& handler : tppResult_) handler(echoScratch_);
      }
    }
    return;
  }

  const auto it = udpHandlers_.find(parsed->udp->dstPort);
  if (it == udpHandlers_.end()) return;
  const std::size_t payloadLen =
      parsed->udp->length >= net::kUdpHeaderSize
          ? parsed->udp->length - net::kUdpHeaderSize
          : 0;
  if (parsed->l4PayloadOffset + payloadLen > packet.size()) return;
  UdpDatagram dgram;
  dgram.srcIp = parsed->ip->src;
  dgram.dstIp = parsed->ip->dst;
  dgram.srcPort = parsed->udp->srcPort;
  dgram.dstPort = parsed->udp->dstPort;
  dgram.ecn = parsed->ip->ecn;
  dgram.payload = packet.span().subspan(parsed->l4PayloadOffset, payloadLen);
  dgram.packet = &packet;
  it->second(dgram);
}

}  // namespace tpp::host
