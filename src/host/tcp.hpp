// Reliable transport: a compact real TCP state machine over the simulated
// fabric (DESIGN.md §12).
//
// Deployment trick: segments ride as payloads of ordinary UDP datagrams
// (the QUIC encapsulation pattern), so the existing Ethernet+IPv4+UDP
// parser, routing, ECN and fault layers apply unchanged — a corrupted or
// dropped frame is exactly a corrupted or dropped segment. Each segment
// carries its own checksum; a bit flipped anywhere in the segment by the
// fault layer makes it indistinguishable from a loss and the retransmit
// machinery recovers it.
//
// The byte stream is synthetic: byte i of the stream is patternByte(i), a
// fixed function of the offset. The receiver verifies every in-order byte
// against the pattern instead of buffering megabytes, which is how the
// chaos suite proves "every byte delivered exactly once" cheaply:
// deliveredBytes() can only advance through the cumulative-ACK frontier,
// and patternErrors() counts any byte that survived the checksum but does
// not match its offset.
//
// What's modelled (the parts that matter under chaos): three-way
// handshake, cumulative ACKs with dup-ACK generation and out-of-order
// tracking at the receiver, SRTT/RTTVAR RTO (RFC 6298) with Karn's rule
// and capped exponential backoff, fast retransmit on 3 dup-ACKs with
// NewReno-style partial-ACK recovery, slow start / congestion avoidance /
// multiplicative decrease, FIN teardown from either side, and a give-up
// path that surfaces a connection error instead of retrying forever.
// Deliberately not modelled: TIME_WAIT (the simulator never reuses a
// 4-tuple), RST generation, SACK, delayed ACKs, and receiver-driven flow
// control beyond a fixed advertised window.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/host/host.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/trace.hpp"

namespace tpp::host {

// ------------------------------------------------------------ wire format
//
// 20-byte segment header, big-endian, carried as UDP payload:
//   off 0  u8  flags (SYN=1, ACK=2, FIN=4)
//   off 1  u8  spin bit (bit 0; remaining bits reserved, must be 0)
//   off 2  u16 payload length
//   off 4  u32 seq
//   off 8  u32 ack (valid when ACK set)
//   off 12 u32 advertised window (bytes)
//   off 16 u32 checksum (FNV-1a over the segment with this field zeroed)
struct TcpSegment {
  static constexpr std::size_t kHeaderBytes = 20;
  static constexpr std::uint8_t kSyn = 1;
  static constexpr std::uint8_t kAck = 2;
  static constexpr std::uint8_t kFin = 4;

  std::uint8_t flags = 0;
  // Passive-RTT spin bit (QUIC RFC 9000 §17.4 pattern, DESIGN.md §14): the
  // active opener sends the inverse of the last bit it saw, the passive
  // side echoes it, so the bit flips once per round trip and any on-path
  // observer can estimate the RTT from flip spacing alone. Covered by the
  // segment checksum like every other header byte.
  std::uint8_t spin = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint32_t wnd = 0;
  std::span<const std::uint8_t> payload;

  bool syn() const { return (flags & kSyn) != 0; }
  bool hasAck() const { return (flags & kAck) != 0; }
  bool fin() const { return (flags & kFin) != 0; }

  // Serializes header+payload into `out` (resized), checksum filled in.
  void serialize(std::vector<std::uint8_t>& out) const;
  // Parses and checksum-verifies. nullopt = truncated or corrupt.
  static std::optional<TcpSegment> parse(std::span<const std::uint8_t> bytes);
};

// Byte i of every synthetic TCP stream.
inline std::uint8_t tcpPatternByte(std::uint64_t streamOffset) {
  std::uint64_t x = (streamOffset + 1) * 0x9E3779B97F4A7C15ull;
  x ^= x >> 29;
  return static_cast<std::uint8_t>(x);
}

class TcpConnection {
 public:
  enum class State : std::uint8_t {
    Closed,       // initial, and final (clean close, give-up, or failure)
    SynSent,      // active open: SYN in flight
    SynReceived,  // passive open: SYN+ACK in flight
    Established,
    FinWait1,     // our FIN sent, not yet acked
    FinWait2,     // our FIN acked, waiting for the peer's
    Closing,      // both FINs seen, ours not yet acked
    CloseWait,    // peer FIN seen, ours not yet sent
    LastAck,      // our FIN sent after the peer's, not yet acked
  };

  struct Config {
    std::uint32_t mss = 1000;               // payload bytes per segment
    std::uint32_t initialCwndSegments = 4;  // IW in segments
    std::uint32_t rcvWndBytes = 256 * 1024; // fixed advertised window
    std::uint32_t initialSeq = 1000;        // deterministic ISS
    sim::Time initialRto = sim::Time::ms(10);  // before the first RTT sample
    sim::Time minRto = sim::Time::ms(2);
    sim::Time maxRto = sim::Time::ms(200);  // backoff cap
    // Consecutive timeouts of one segment before the connection gives up
    // and surfaces an error (the no-stuck-connections guarantee).
    unsigned maxRetries = 10;
    // Passive side: answer the peer's FIN with our own immediately.
    bool autoClose = true;
    std::uint16_t taskId = 0;  // flight-recorder attribution
  };

  TcpConnection(Host& host, Config config);
  ~TcpConnection();

  // Active open: handshake, then stream `sendBytes` pattern bytes, then
  // FIN. The connection binds `localPort` on its host for the reply path.
  void connect(net::MacAddress dstMac, net::Ipv4Address dstIp,
               std::uint16_t dstPort, std::uint16_t localPort,
               std::uint64_t sendBytes);

  // Queues `bytes` more pattern bytes (only before close() takes effect).
  void send(std::uint64_t bytes);
  // Half-closes the local side once everything queued has been sent.
  void close();

  // ------------------------------------------------------------ callbacks
  void onEstablished(std::function<void()> fn) { established_ = std::move(fn); }
  // Clean teardown: both FINs sent and acked.
  void onClosed(std::function<void()> fn) { closed_ = std::move(fn); }
  // Give-up: the retransmission limit expired. The connection is Closed,
  // failed() is true, and error() holds the reason.
  void onError(std::function<void(const std::string&)> fn) {
    errorCb_ = std::move(fn);
  }

  // --------------------------------------------------------------- status
  State state() const { return state_; }
  bool established() const { return state_ == State::Established; }
  bool closedCleanly() const { return state_ == State::Closed && wasOpen_ && !failed_; }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  // Closed one way or the other — the negation of "stuck".
  bool done() const { return state_ == State::Closed && (wasOpen_ || failed_); }

  std::uint16_t localPort() const { return localPort_; }
  std::uint16_t remotePort() const { return remotePort_; }
  net::MacAddress remoteMac() const { return remoteMac_; }
  net::Ipv4Address remoteIp() const { return remoteIp_; }

  // --------------------------------------------------------------- sender
  std::uint64_t bytesQueued() const { return bytesQueued_; }
  std::uint64_t bytesAcked() const;
  std::uint32_t cwndBytes() const { return cwnd_; }
  std::uint32_t ssthreshBytes() const { return ssthresh_; }
  sim::Time srtt() const { return srtt_; }
  sim::Time rto() const { return rto_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t fastRetransmits() const { return fastRetransmits_; }
  std::uint64_t rtoFires() const { return rtoFires_; }
  std::uint64_t cwndCuts() const { return cwndCuts_; }
  std::uint64_t dupAcksSeen() const { return dupAcksSeen_; }

  // External congestion hook (the TPP controller): multiplies cwnd by
  // `factor` (also lowering ssthresh), flooring at one mss. `reason` lands
  // in the TcpCwndCut trace record.
  void cutCwnd(double factor, std::uint32_t reason);

  // ------------------------------------------------------------- receiver
  std::uint64_t deliveredBytes() const { return deliveredBytes_; }
  std::uint64_t patternErrors() const { return patternErrors_; }
  std::uint64_t checksumDrops() const { return checksumDrops_; }
  std::uint64_t dupSegments() const { return dupSegments_; }
  std::uint64_t dupAcksSent() const { return dupAcksSent_; }
  std::uint64_t outOfOrderSegments() const { return outOfOrderSegments_; }

  // When the connection reached Established / Closed (for FCT accounting).
  std::optional<sim::Time> establishedAt() const { return establishedAt_; }
  std::optional<sim::Time> closedAt() const { return closedAt_; }

 private:
  friend class TcpListener;

  struct TxSeg {
    std::uint32_t seq = 0;
    std::uint16_t len = 0;  // payload bytes (0 for pure SYN/FIN)
    bool syn = false;
    bool fin = false;
    bool retransmitted = false;  // Karn: never RTT-sample these
    sim::Time sentAt;
  };

  // Passive open, invoked by the listener on an inbound SYN.
  void accept(const TcpSegment& syn, net::MacAddress peerMac,
              net::Ipv4Address peerIp, std::uint16_t peerPort,
              std::uint16_t localPort);

  // The passive side's reply MAC comes from frames' Ethernet source field,
  // which the TCP checksum does not cover — a bit flip there yields a valid
  // segment with a poisoned reply address, and every reply goes to a void.
  // So every checksum-valid frame from the right (ip, port) re-learns it:
  // a single corrupted-source frame can poison the address for one round,
  // but the peer's retransmission (intact with high probability) repairs
  // it, so a persistent blackout would need the corruption to hit the same
  // six bytes in every frame.
  void relearnPeerMac(net::MacAddress mac) { remoteMac_ = mac; }

  void onDatagram(const UdpDatagram& dgram);
  void onSegment(const TcpSegment& seg);
  void processAck(const TcpSegment& seg);
  void processPayload(const TcpSegment& seg);
  void maybeSendData();
  void sendQueuedSegment(const TxSeg& seg, bool isRetransmit);
  void sendPureAck();
  void emitSegment(std::uint8_t flags, std::uint32_t seq, std::uint32_t len);
  void armRtoTimer();
  void onRtoFire();
  void enterRecovery(std::uint32_t reason);
  void retransmitFront(bool fast);
  void sampleRtt(sim::Time rttSample);
  void onOurFinAcked();
  void onPeerFin();
  void finishClose();
  void fail(std::string reason);
  void trace(sim::TraceKind kind, std::uint32_t a, std::uint32_t b,
             std::uint32_t c, std::uint32_t d = 0);
  std::uint32_t flightSize() const { return sndNxt_ - sndUna_; }
  std::uint64_t dataLimitSeq() const;

  Host& host_;
  Config cfg_;
  State state_ = State::Closed;
  bool wasOpen_ = false;   // reached Established at least once
  bool failed_ = false;
  std::string error_;

  net::MacAddress remoteMac_{};
  net::Ipv4Address remoteIp_{};
  std::uint16_t remotePort_ = 0;
  std::uint16_t localPort_ = 0;
  bool boundPort_ = false;

  // Send side (all sequence arithmetic is mod-2^32 like real TCP, but the
  // streams here never wrap).
  std::uint32_t iss_ = 0;
  std::uint32_t sndUna_ = 0;
  std::uint32_t sndNxt_ = 0;
  std::uint32_t sndMax_ = 0;  // highest sndNxt ever (ack-validity ceiling)
  std::uint64_t bytesQueued_ = 0;
  bool finQueued_ = false;
  bool finSent_ = false;
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0;
  std::uint32_t peerWnd_ = 0;
  std::deque<TxSeg> txq_;  // unacked segments, front = oldest
  unsigned dupAckRun_ = 0;
  bool inRecovery_ = false;
  std::uint32_t recover_ = 0;  // sndNxt at the last recovery entry
  // Highest sndNxt ever rewound past by the go-back-N timeout path: bytes
  // below it re-emitted by maybeSendData are retransmissions (Karn).
  std::uint32_t rexmitHighWater_ = 0;

  // RTO state.
  bool haveRttSample_ = false;
  sim::Time srtt_ = sim::Time::zero();
  sim::Time rttvar_ = sim::Time::zero();
  sim::Time rto_ = sim::Time::zero();
  unsigned consecutiveRtos_ = 0;
  sim::EventHandle rtoTimer_;

  // Receive side.
  std::uint32_t irs_ = 0;
  std::uint32_t rcvNxt_ = 0;
  // Out-of-order segments already checksum- and pattern-verified: seq →
  // payload length. Pattern payloads need no byte storage.
  std::map<std::uint32_t, std::uint16_t> ooo_;
  bool peerFinSeen_ = false;
  std::uint32_t peerFinSeq_ = 0;

  // Counters.
  std::uint64_t deliveredBytes_ = 0;
  std::uint64_t patternErrors_ = 0;
  std::uint64_t checksumDrops_ = 0;
  std::uint64_t dupSegments_ = 0;
  std::uint64_t dupAcksSent_ = 0;
  std::uint64_t dupAcksSeen_ = 0;
  std::uint64_t outOfOrderSegments_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t fastRetransmits_ = 0;
  std::uint64_t rtoFires_ = 0;
  std::uint64_t cwndCuts_ = 0;

  // Spin-bit state: the active opener (connect()) inverts the last bit
  // seen from the peer; the passive side echoes it.
  bool spinClient_ = false;
  std::uint8_t peerSpin_ = 0;

  std::optional<sim::Time> establishedAt_;
  std::optional<sim::Time> closedAt_;

  std::function<void()> established_;
  std::function<void()> closed_;
  std::function<void(const std::string&)> errorCb_;

  std::vector<std::uint8_t> txBuf_;  // reused serialization scratch
};

// Accepts inbound connections on one UDP-encapsulated TCP port and demuxes
// subsequent segments to the per-peer connection (keyed by peer IP:port).
// Accepted connections live as long as the listener.
class TcpListener {
 public:
  TcpListener(Host& host, std::uint16_t port,
              TcpConnection::Config config = {});

  // Fires on each new connection, before the SYN is processed, so callers
  // can attach callbacks that see every transition.
  void onAccept(std::function<void(TcpConnection&)> fn) {
    accept_ = std::move(fn);
  }

  std::size_t connectionCount() const { return order_.size(); }
  TcpConnection& connection(std::size_t i) { return *order_.at(i); }
  std::uint64_t checksumDrops() const { return checksumDrops_; }

  // Aggregates across every accepted connection.
  std::uint64_t deliveredBytes() const;
  std::uint64_t patternErrors() const;

 private:
  void onDatagram(const UdpDatagram& dgram);

  Host& host_;
  std::uint16_t port_;
  TcpConnection::Config config_;
  std::function<void(TcpConnection&)> accept_;
  std::map<std::uint64_t, std::unique_ptr<TcpConnection>> byPeer_;
  std::vector<TcpConnection*> order_;  // in accept order
  // Failed connections displaced by a fresh SYN from the same peer (port
  // reuse). Kept alive because order_ still points at them.
  std::vector<std::unique_ptr<TcpConnection>> displaced_;
  std::uint64_t checksumDrops_ = 0;
};

}  // namespace tpp::host
