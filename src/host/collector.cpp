#include "src/host/collector.hpp"

namespace tpp::host {

std::vector<HopRecord> splitStackRecords(const core::ExecutedTpp& tpp,
                                         std::size_t valuesPerHop,
                                         std::size_t initialSpWords) {
  std::vector<HopRecord> out;
  if (valuesPerHop == 0) return out;
  const std::size_t spWords = tpp.header.stackPointer / core::kWordSize;
  for (std::size_t base = initialSpWords; base + valuesPerHop <= spWords;
       base += valuesPerHop) {
    HopRecord rec;
    rec.reserve(valuesPerHop);
    for (std::size_t i = 0; i < valuesPerHop; ++i) {
      if (base + i >= tpp.pmem.size()) return out;
      rec.push_back(tpp.pmem[base + i]);
    }
    out.push_back(std::move(rec));
  }
  return out;
}

RecordSplit splitStackRecordsChecked(const core::ExecutedTpp& tpp,
                                     std::size_t valuesPerHop,
                                     std::size_t initialSpWords) {
  RecordSplit out;
  if (valuesPerHop == 0) return out;
  const std::size_t spWords = tpp.header.stackPointer / core::kWordSize;
  if (spWords < initialSpWords) {
    out.truncated = true;
    return out;
  }
  std::size_t base = initialSpWords;
  for (; base + valuesPerHop <= spWords; base += valuesPerHop) {
    if (base + valuesPerHop > tpp.pmem.size()) {
      out.truncated = true;
      return out;
    }
    out.records.emplace_back(
        tpp.pmem.begin() + static_cast<std::ptrdiff_t>(base),
        tpp.pmem.begin() + static_cast<std::ptrdiff_t>(base + valuesPerHop));
  }
  if (base != spWords) out.truncated = true;  // partial trailing record
  return out;
}

std::vector<HopRecord> splitHopRecords(const core::ExecutedTpp& tpp) {
  std::vector<HopRecord> out;
  const std::size_t per = tpp.header.perHopWords;
  if (per == 0) return out;
  for (std::size_t hop = 0; hop < tpp.header.hopNumber; ++hop) {
    const std::size_t base = hop * per;
    if (base + per > tpp.pmem.size()) break;
    out.emplace_back(tpp.pmem.begin() + static_cast<std::ptrdiff_t>(base),
                     tpp.pmem.begin() + static_cast<std::ptrdiff_t>(base + per));
  }
  return out;
}

HopSampleAverager::HopSampleAverager(std::size_t valuesPerHop)
    : valuesPerHop_(valuesPerHop) {}

void HopSampleAverager::add(const std::vector<HopRecord>& records) {
  ++probes_;
  if (records.size() > sums_.size()) {
    sums_.resize(records.size(), std::vector<double>(valuesPerHop_, 0.0));
    counts_.resize(records.size(), std::vector<double>(valuesPerHop_, 0.0));
  }
  for (std::size_t h = 0; h < records.size(); ++h) {
    for (std::size_t v = 0; v < valuesPerHop_ && v < records[h].size(); ++v) {
      sums_[h][v] += records[h][v];
      counts_[h][v] += 1.0;
    }
  }
}

void HopSampleAverager::reset() {
  probes_ = 0;
  sums_.clear();
  counts_.clear();
}

double HopSampleAverager::mean(std::size_t hop, std::size_t value) const {
  if (hop >= sums_.size() || value >= valuesPerHop_) return 0.0;
  if (counts_[hop][value] == 0.0) return 0.0;
  return sums_[hop][value] / counts_[hop][value];
}

}  // namespace tpp::host
