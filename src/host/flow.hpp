// PacedFlow: a rate-limited UDP packet stream — the sender half of every
// workload and of the RCP/RCP* rate-controlled flows.
//
// Pacing model: one packet every packetBits/rate seconds (token-bucket with
// a one-packet bucket). Rate changes take effect at the next emission.
#pragma once

#include <cstdint>
#include <optional>

#include "src/host/host.hpp"
#include "src/sim/simulator.hpp"

namespace tpp::host {

struct FlowSpec {
  net::MacAddress dstMac;
  net::Ipv4Address dstIp;
  std::uint16_t srcPort = 20000;
  std::uint16_t dstPort = 20000;
  std::size_t payloadBytes = 1000;
  double rateBps = 1e6;
  // Total bytes to send; nullopt = run until stop().
  std::optional<std::uint64_t> totalBytes;
};

class PacedFlow {
 public:
  PacedFlow(Host& src, FlowSpec spec, std::uint64_t flowId = 0);

  void start(sim::Time at);
  void stop();

  void setRateBps(double rateBps);
  double rateBps() const { return rateBps_; }

  std::uint64_t bytesSent() const { return bytesSent_; }
  std::uint64_t packetsSent() const { return packetsSent_; }
  bool finished() const { return finished_; }
  std::uint64_t id() const { return flowId_; }
  const FlowSpec& spec() const { return spec_; }
  Host& source() { return src_; }

  // Optional per-packet decoration (e.g. the RCP baseline writing its rate
  // header into the payload, or RCP* shimming a TPP on).
  using PacketHook = std::function<void(net::Packet&)>;
  void setPacketHook(PacketHook hook) { hook_ = std::move(hook); }

 private:
  void emit();
  void scheduleNext();
  sim::Time interval() const;

  Host& src_;
  FlowSpec spec_;
  std::uint64_t flowId_;
  double rateBps_;
  bool running_ = false;
  bool finished_ = false;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t packetsSent_ = 0;
  sim::EventHandle pending_;
  PacketHook hook_;
};

}  // namespace tpp::host
