// Testbed: owns a (possibly sharded) simulator, switches, hosts and links,
// wires them up, and installs shortest-path routes — the scaffolding every
// experiment, test and bench builds on.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/asic/switch.hpp"
#include "src/core/interference.hpp"
#include "src/host/host.hpp"
#include "src/net/link.hpp"
#include "src/sim/shard.hpp"
#include "src/sim/simulator.hpp"

namespace tpp::host {

// How a testbed's nodes map onto simulation shards, by creation index
// (switch 0 is the first addSwitch call, host 0 the first addHost). Indices
// past the end of a vector fall back to shard 0, so the default-constructed
// plan is "everything on one shard" — the legacy single-threaded testbed.
struct ShardPlan {
  std::size_t shards = 1;
  std::vector<std::size_t> switchShard;
  std::vector<std::size_t> hostShard;

  std::size_t forSwitch(std::size_t i) const {
    return i < switchShard.size() ? switchShard[i] : 0;
  }
  std::size_t forHost(std::size_t i) const {
    return i < hostShard.size() ? hostShard[i] : 0;
  }
};

class Testbed {
 public:
  Testbed() : Testbed(ShardPlan{}) {}
  // A sharded testbed: nodes land on the shard the plan names, and every
  // link whose endpoints live on different shards becomes a shard boundary
  // (its propagation delay must be > 0 — it bounds the lookahead).
  explicit Testbed(ShardPlan plan) : plan_(std::move(plan)) {
    ssim_ = std::make_unique<sim::ShardedSimulator>(
        plan_.shards == 0 ? 1 : plan_.shards);
  }

  // Shard 0's simulator. For a default (1-shard) testbed this is *the*
  // simulator, exactly as before; sharded scenarios that need a specific
  // component's clock use simOf() instead.
  sim::Simulator& sim() { return ssim_->shard(0); }
  sim::ShardedSimulator& sharded() { return *ssim_; }

  // Runs the whole testbed (all shards) until `until`. Returns events
  // executed. The 1-shard case is exactly sim().run(until).
  std::uint64_t run(sim::Time until = sim::Time::max()) {
    return ssim_->run(until);
  }

  // The shard a node was placed on, and that shard's simulator — sharded
  // scenarios schedule a component's driver events on its own shard.
  std::size_t shardOf(const net::Node& n) const { return nodeShard_.at(&n); }
  sim::Simulator& simOf(const net::Node& n) {
    return ssim_->shard(shardOf(n));
  }

  // Creates a host with deterministic MAC 02:00:…:<n> and IP 10.0.0.<n>.
  Host& addHost(std::string name = {});
  asic::Switch& addSwitch(asic::SwitchConfig config = {},
                          std::string name = {});

  // Wires a full-duplex link and records the adjacency for routing.
  net::DuplexLink& link(net::Node& a, std::size_t portA, net::Node& b,
                        std::size_t portB, std::uint64_t rateBps,
                        sim::Time delay);

  // Installs, on every switch, an L3 /32 route and an L2 entry for every
  // host, along BFS shortest paths. Call after all links are wired.
  void installAllRoutes();

  Host& host(std::size_t i) { return *hosts_.at(i); }
  asic::Switch& sw(std::size_t i) { return *switches_.at(i); }
  std::size_t hostCount() const { return hosts_.size(); }
  std::size_t switchCount() const { return switches_.size(); }
  // Links in wiring order (fault scenarios arm specific channels).
  net::DuplexLink& linkAt(std::size_t i) { return *links_.at(i); }
  std::size_t linkCount() const { return links_.size(); }
  // Shards of link i's two endpoints, in (a, b) wiring order — i.e. the
  // transmitting shard of aToB() and of bToA() respectively.
  std::pair<std::size_t, std::size_t> linkShards(std::size_t i) const {
    const Edge& e = edges_.at(i);
    return {nodeShard_.at(e.a), nodeShard_.at(e.b)};
  }

  // The switch a host hangs off, and that switch's port towards the host.
  struct Attachment {
    asic::Switch* sw = nullptr;
    std::size_t port = 0;
  };
  Attachment attachmentOf(const Host& h) const;

  // One wired link's endpoints, in link() call order — the adjacency a
  // PathOracle walks. edgeAt(i) describes linkAt(i).
  struct Edge {
    net::Node* a;
    std::size_t portA;
    net::Node* b;
    std::size_t portB;
  };
  const Edge& edgeAt(std::size_t i) const { return edges_.at(i); }

  // ------------------------------------------- interference install gate
  // Declares a lock word (and the scratch it protects) for every later
  // installTask() analysis — e.g. the standard RCP lock,
  // apps::standardLockOptions().
  void declareLock(core::LockSpec lock) {
    interferenceOptions_.locks.push_back(std::move(lock));
  }

  // Admission control for concurrent tasks: analyzes `summary` against
  // every already-installed task and rejects the registration if the
  // combined deployment has interference errors (the installed set stays
  // unchanged and provably conflict-free). On rejection the error
  // diagnostics, one per line, are returned via `whyNot` if non-null.
  bool installTask(core::EffectSummary summary,
                   std::string* whyNot = nullptr);

  const std::vector<core::EffectSummary>& installedTasks() const {
    return installedTasks_;
  }
  // The current installed set's full report (benign matrix included).
  core::InterferenceReport interferenceReport() const {
    return core::analyzeInterference(installedTasks_, interferenceOptions_);
  }

 private:
  ShardPlan plan_;
  std::unique_ptr<sim::ShardedSimulator> ssim_;
  std::unordered_map<const net::Node*, std::size_t> nodeShard_;
  std::vector<std::unique_ptr<asic::Switch>> switches_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<net::DuplexLink>> links_;
  std::vector<Edge> edges_;
  std::vector<core::EffectSummary> installedTasks_;
  core::InterferenceOptions interferenceOptions_;
};

// ---------------------------------------------------------------- shapes

struct LinkParams {
  std::uint64_t rateBps = 1'000'000'000;
  sim::Time delay = sim::Time::us(5);
};

// host0 — sw0 — sw1 — … — sw(n-1) — host1, homogeneous links. The Fig 1
// topology with n = 3.
void buildChain(Testbed& tb, std::size_t switches, LinkParams linkParams,
                asic::SwitchConfig switchConfig = {});

// `pairs` sender hosts on sw0, `pairs` receiver hosts on sw1, with a single
// bottleneck link between the switches. Sender i talks to receiver i
// (= host(pairs + i)). The Fig 2 topology.
void buildDumbbell(Testbed& tb, std::size_t pairs, LinkParams edge,
                   LinkParams bottleneck,
                   asic::SwitchConfig switchConfig = {});

// `senders` hosts plus one receiver (the last host) on a single switch —
// the incast/micro-burst shape (§2.1).
void buildStar(Testbed& tb, std::size_t senders, LinkParams linkParams,
               asic::SwitchConfig switchConfig = {});

// k-ary fat tree (the canonical datacenter fabric): (k/2)^2 core switches,
// k pods of k/2 aggregation + k/2 edge switches, k/2 hosts per edge —
// k^3/4 hosts total. Upward routing is ECMP (multipath default routes);
// downward routing is per-host /32s. Returns an index for addressing the
// pieces. Requires even k >= 2.
struct FatTreeIndex {
  std::size_t k = 0;

  std::size_t radix() const { return k / 2; }
  std::size_t coreCount() const { return radix() * radix(); }
  std::size_t hostCount() const { return k * radix() * radix(); }

  // Testbed switch index of core c / aggregation (pod,a) / edge (pod,e).
  std::size_t coreSw(std::size_t c) const { return c; }
  std::size_t aggSw(std::size_t pod, std::size_t a) const {
    return coreCount() + pod * k + a;
  }
  std::size_t edgeSw(std::size_t pod, std::size_t e) const {
    return coreCount() + pod * k + radix() + e;
  }
  // Testbed host index of host h under edge e of pod.
  std::size_t host(std::size_t pod, std::size_t e, std::size_t h) const {
    return pod * radix() * radix() + e * radix() + h;
  }
};

FatTreeIndex buildFatTree(Testbed& tb, std::size_t k, LinkParams linkParams,
                          asic::SwitchConfig switchConfig = {});

// Predicts the switch-by-switch path a 5-tuple's packets take through a
// built testbed, by replaying each hop's L3 longest-prefix lookup with the
// pipeline's own ECMP flow hash (asic::ecmpFlowHash) over a snapshot of
// the wiring. Covers L3-routed traffic — every TCP-over-UDP segment and
// TPP probe; TCAM rules (which match before L3) are not modelled.
//
// This is what makes ECMP *testable*: the property suite asserts the
// predicted path is one of the analytic equal-cost shortest paths and that
// actual forwarded traffic agrees with the prediction.
class PathOracle {
 public:
  explicit PathOracle(const Testbed& tb);

  struct Hop {
    const asic::Switch* sw = nullptr;
    std::size_t inPort = 0;   // port the packet arrived on
    std::size_t outPort = 0;  // port the L3 lookup selected
  };

  // The full switch path from `src` to `dst` for one flow's 5-tuple.
  // Empty if routing dead-ends, leaves the fabric at the wrong host, or
  // exceeds 64 hops (a loop).
  std::vector<Hop> path(const Host& src, const Host& dst,
                        std::uint16_t srcPort, std::uint16_t dstPort,
                        std::uint8_t protocol = 17) const;

 private:
  const Testbed& tb_;
  // (node, egress port) -> (peer node, peer ingress port).
  struct Peer {
    const net::Node* node = nullptr;
    std::size_t port = 0;
  };
  std::unordered_map<const net::Node*, std::vector<Peer>> peers_;
};

// Default min-cut-ish partition for buildFatTree(k): pods are assigned to
// shards in contiguous blocks (hosts, edge and aggregation switches follow
// their pod, so every intra-pod and host link stays shard-local) and core
// switches are spread evenly, leaving only agg<->core links — the fabric's
// natural bisection — as shard boundaries. Matches the creation order of
// buildFatTree exactly; construct `Testbed tb(partitionFatTree(k, n))` and
// then call buildFatTree(tb, k, ...).
ShardPlan partitionFatTree(std::size_t k, std::size_t shards);

}  // namespace tpp::host
