// Testbed: owns a simulator, switches, hosts and links, wires them up, and
// installs shortest-path routes — the scaffolding every experiment, test
// and bench builds on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/asic/switch.hpp"
#include "src/host/host.hpp"
#include "src/net/link.hpp"
#include "src/sim/simulator.hpp"

namespace tpp::host {

class Testbed {
 public:
  Testbed() = default;

  sim::Simulator& sim() { return sim_; }

  // Creates a host with deterministic MAC 02:00:…:<n> and IP 10.0.0.<n>.
  Host& addHost(std::string name = {});
  asic::Switch& addSwitch(asic::SwitchConfig config = {},
                          std::string name = {});

  // Wires a full-duplex link and records the adjacency for routing.
  net::DuplexLink& link(net::Node& a, std::size_t portA, net::Node& b,
                        std::size_t portB, std::uint64_t rateBps,
                        sim::Time delay);

  // Installs, on every switch, an L3 /32 route and an L2 entry for every
  // host, along BFS shortest paths. Call after all links are wired.
  void installAllRoutes();

  Host& host(std::size_t i) { return *hosts_.at(i); }
  asic::Switch& sw(std::size_t i) { return *switches_.at(i); }
  std::size_t hostCount() const { return hosts_.size(); }
  std::size_t switchCount() const { return switches_.size(); }
  // Links in wiring order (fault scenarios arm specific channels).
  net::DuplexLink& linkAt(std::size_t i) { return *links_.at(i); }
  std::size_t linkCount() const { return links_.size(); }

  // The switch a host hangs off, and that switch's port towards the host.
  struct Attachment {
    asic::Switch* sw = nullptr;
    std::size_t port = 0;
  };
  Attachment attachmentOf(const Host& h) const;

 private:
  struct Edge {
    net::Node* a;
    std::size_t portA;
    net::Node* b;
    std::size_t portB;
  };

  sim::Simulator sim_;
  std::vector<std::unique_ptr<asic::Switch>> switches_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<net::DuplexLink>> links_;
  std::vector<Edge> edges_;
};

// ---------------------------------------------------------------- shapes

struct LinkParams {
  std::uint64_t rateBps = 1'000'000'000;
  sim::Time delay = sim::Time::us(5);
};

// host0 — sw0 — sw1 — … — sw(n-1) — host1, homogeneous links. The Fig 1
// topology with n = 3.
void buildChain(Testbed& tb, std::size_t switches, LinkParams linkParams,
                asic::SwitchConfig switchConfig = {});

// `pairs` sender hosts on sw0, `pairs` receiver hosts on sw1, with a single
// bottleneck link between the switches. Sender i talks to receiver i
// (= host(pairs + i)). The Fig 2 topology.
void buildDumbbell(Testbed& tb, std::size_t pairs, LinkParams edge,
                   LinkParams bottleneck,
                   asic::SwitchConfig switchConfig = {});

// `senders` hosts plus one receiver (the last host) on a single switch —
// the incast/micro-burst shape (§2.1).
void buildStar(Testbed& tb, std::size_t senders, LinkParams linkParams,
               asic::SwitchConfig switchConfig = {});

// k-ary fat tree (the canonical datacenter fabric): (k/2)^2 core switches,
// k pods of k/2 aggregation + k/2 edge switches, k/2 hosts per edge —
// k^3/4 hosts total. Upward routing is ECMP (multipath default routes);
// downward routing is per-host /32s. Returns an index for addressing the
// pieces. Requires even k >= 2.
struct FatTreeIndex {
  std::size_t k = 0;

  std::size_t radix() const { return k / 2; }
  std::size_t coreCount() const { return radix() * radix(); }
  std::size_t hostCount() const { return k * radix() * radix(); }

  // Testbed switch index of core c / aggregation (pod,a) / edge (pod,e).
  std::size_t coreSw(std::size_t c) const { return c; }
  std::size_t aggSw(std::size_t pod, std::size_t a) const {
    return coreCount() + pod * k + a;
  }
  std::size_t edgeSw(std::size_t pod, std::size_t e) const {
    return coreCount() + pod * k + radix() + e;
  }
  // Testbed host index of host h under edge e of pod.
  std::size_t host(std::size_t pod, std::size_t e, std::size_t h) const {
    return pod * radix() * radix() + e * radix() + h;
  }
};

FatTreeIndex buildFatTree(Testbed& tb, std::size_t k, LinkParams linkParams,
                          asic::SwitchConfig switchConfig = {});

}  // namespace tpp::host
