// Host-side view of the flight recorder: naming, exporters, probe-lifecycle
// reconstruction, and one-call wiring of a Tracer through a whole Testbed.
//
// The recorder itself (src/sim/trace.hpp) stays a dumb fixed-cost ring; all
// interpretation lives here, offline, where cost does not matter. The
// `tpptrace` CLI (examples/tpptrace.cpp) is a thin wrapper over these
// functions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/host/prober.hpp"
#include "src/host/topology.hpp"
#include "src/sim/trace.hpp"

namespace tpp::host {

// Short stable name of a trace kind ("probe_send", "tcpu_retire", ...).
std::string_view traceKindName(sim::TraceKind kind);

// One human-readable timeline line for a record, e.g.
//   "12.345us  sw1        tcpu_execute  task=3 hop=2 instrs=4 fault=0".
std::string describeRecord(const sim::TraceRecord& record,
                           const std::vector<std::string>& actors);

// chrome://tracing / Perfetto JSON (instant events on one track per actor).
std::string toChromeJson(const sim::DecodedTrace& trace);
// Compact CSV: ts_nanos,actor,kind,task,a,b,c,d — one row per record.
std::string toCsv(const sim::DecodedTrace& trace);

// Convenience: a live Tracer's contents, decoded (serialize → decode
// round-trip; also exercises the codec in every caller).
sim::DecodedTrace decoded(const sim::Tracer& tracer);

// ------------------------------------------------- probe lifecycle replay

// A probe's reconstructed story: send → per-hop TCPU execution → echo or
// loss, stitched from the recorder by (task, seq).
struct ProbeLifecycle {
  struct Hop {
    std::int64_t tsNanos = 0;
    std::uint32_t actor = 0;       // switch that executed the TPP
    std::uint32_t hopNumber = 0;   // hop counter after execution
    std::uint32_t instructions = 0;
    std::uint32_t faultCode = 0;
  };
  enum class Outcome { Pending, Echoed, Lost, LostThenSalvaged };

  bool found = false;  // no ProbeSend for (task, seq) in the trace
  std::uint16_t task = 0;
  std::uint32_t seq = 0;
  std::int64_t sendTsNanos = 0;
  std::optional<std::int64_t> endTsNanos;  // echo or loss instant
  Outcome outcome = Outcome::Pending;
  std::uint32_t retransmits = 0;
  std::vector<Hop> hops;
  // Hop attribution is by task + time window; if another probe of the same
  // task was in flight during this one's window (or it was retransmitted),
  // hops cannot be attributed uniquely and this flag is set.
  bool ambiguous = false;
};

ProbeLifecycle reconstructProbeLifecycle(const sim::DecodedTrace& trace,
                                         std::uint16_t task,
                                         std::uint32_t seq);
std::string describeLifecycle(const ProbeLifecycle& lc,
                              const std::vector<std::string>& actors);

// ----------------------------------------------------------------- wiring

// Arms `tracer` on every component of a built Testbed: the simulator, every
// switch (pipeline + TCPU retires), every channel of every link (directions
// named "<a>-><b>"), and every host. Call after topology construction;
// idempotent (re-arming just re-interns the same actor names).
void armTracing(Testbed& tb, sim::Tracer& tracer);

// One flight recorder per shard. A Tracer ring is single-writer, so a
// sharded run cannot share one; instead each shard's components record
// into their own ring and merged() stitches the rings into one serialized
// trace (sim::mergeTraces). With one shard, merged() is byte-identical to
// the single Tracer's serialize() — the golden suite leans on that.
class ShardedTrace {
 public:
  explicit ShardedTrace(std::size_t shards, std::size_t capacity = 1u << 16);

  std::size_t shardCount() const { return tracers_.size(); }
  sim::Tracer& shard(std::size_t i) { return *tracers_.at(i); }
  const sim::Tracer& shard(std::size_t i) const { return *tracers_.at(i); }

  std::vector<std::uint8_t> merged() const;

 private:
  std::vector<std::unique_ptr<sim::Tracer>> tracers_;
};

// Sharded arming: each component records into its own shard's ring, in the
// same order armTracing uses (per-shard sims, switches, hosts, links).
// Link directions split — LinkTxStart/fault records go to the transmitting
// shard's ring, LinkDeliver to the receiving shard's. `trace` must have
// exactly tb.sharded().shardCount() recorders.
void armTracing(Testbed& tb, ShardedTrace& trace);

// Binds a prober's outstanding-count gauge to its host's first-hop switch,
// so TPPs from (and through) that port can read Link:ProbesInFlight.
void bindProbeGauge(ReliableProber& prober, Testbed& tb, const Host& host);

// ------------------------------------------------------ SRAM race oracle

// One SramRaceOracle per switch of a Testbed. A switch's TCPU always runs
// on its own shard's thread, so per-switch oracles need no locks even in
// sharded runs; the aggregation methods are offline (post-run) only.
class SramOracleSet {
 public:
  explicit SramOracleSet(std::size_t switches) : oracles_(switches) {}

  std::size_t size() const { return oracles_.size(); }
  asic::SramRaceOracle& at(std::size_t i) { return oracles_.at(i); }

  // Union across switches. Conflicts are per switch (the same task pair
  // colliding on two switches yields two entries).
  std::vector<asic::SramRaceOracle::ObservedConflict> conflicts();
  // Observed conflicts not predicted by the static report — static false
  // negatives, one line each, prefixed with the switch index.
  std::vector<std::string> divergences(
      const core::InterferenceReport& report,
      std::span<const core::EffectSummary> tasks);
  std::uint64_t accesses() const;

 private:
  std::vector<asic::SramRaceOracle> oracles_;
};

// Arms one oracle per switch (oracles.size() must be tb.switchCount());
// armSramOracle(tb, nullptr)-style disarming is disarmSramOracle.
void armSramOracle(Testbed& tb, SramOracleSet& oracles);
void disarmSramOracle(Testbed& tb);

}  // namespace tpp::host
