// ECMP property suite (ISSUE 9 satellite 1): on k∈{8,16} fat trees, every
// flow's hash-selected path must be one of the analytic equal-cost
// shortest paths, selection must be deterministic across rebuilds and
// shard plans, all uplinks must be hit given enough flows, and actual
// forwarded traffic must agree with the PathOracle's prediction.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/asic/tables.hpp"
#include "src/host/topology.hpp"
#include "src/sim/time.hpp"

namespace tpp::host {
namespace {

LinkParams testLink() { return {10'000'000'000ull, sim::Time::us(2)}; }

struct BuiltTree {
  std::unique_ptr<Testbed> tb;
  FatTreeIndex ix;
};

BuiltTree makeTree(std::size_t k, std::size_t shards = 1) {
  BuiltTree t;
  t.tb = std::make_unique<Testbed>(shards > 1 ? partitionFatTree(k, shards)
                                              : ShardPlan{});
  t.ix = buildFatTree(*t.tb, k, testLink());
  return t;
}

// The analytic equal-cost path set between two hosts, as ordered switch
// index sequences derived purely from FatTreeIndex arithmetic:
//   same edge:   {edge}                                   (1 path)
//   same pod:    edge -> any agg -> edge'                 (r paths)
//   cross pod:   edge -> agg a -> core a*r+i -> agg' a -> edge'
//                                                         (r*r paths)
std::set<std::vector<std::size_t>> analyticPaths(const FatTreeIndex& ix,
                                                 std::size_t srcHost,
                                                 std::size_t dstHost) {
  const std::size_t r = ix.radix();
  const auto podOf = [&](std::size_t h) { return h / (r * r); };
  const auto edgeOf = [&](std::size_t h) { return (h / r) % r; };
  const std::size_t sp = podOf(srcHost), se = edgeOf(srcHost);
  const std::size_t dp = podOf(dstHost), de = edgeOf(dstHost);

  std::set<std::vector<std::size_t>> paths;
  if (sp == dp && se == de) {
    paths.insert({ix.edgeSw(sp, se)});
    return paths;
  }
  if (sp == dp) {
    for (std::size_t a = 0; a < r; ++a) {
      paths.insert({ix.edgeSw(sp, se), ix.aggSw(sp, a), ix.edgeSw(sp, de)});
    }
    return paths;
  }
  for (std::size_t a = 0; a < r; ++a) {
    for (std::size_t i = 0; i < r; ++i) {
      const std::size_t c = a * r + i;
      paths.insert({ix.edgeSw(sp, se), ix.aggSw(sp, a), ix.coreSw(c),
                    ix.aggSw(dp, a), ix.edgeSw(dp, de)});
    }
  }
  return paths;
}

std::vector<std::size_t> switchIndices(const Testbed& tb,
                                       const std::vector<PathOracle::Hop>& hops) {
  std::vector<std::size_t> out;
  out.reserve(hops.size());
  for (const auto& h : hops) {
    for (std::size_t s = 0; s < tb.switchCount(); ++s) {
      if (&const_cast<Testbed&>(tb).sw(s) == h.sw) {
        out.push_back(s);
        break;
      }
    }
  }
  return out;
}

class EcmpProperty : public ::testing::TestWithParam<std::size_t> {};

// Every predicted path is a member of the analytic equal-cost set — for a
// spread of host pairs covering same-edge, same-pod and cross-pod cases
// and many flow 5-tuples.
TEST_P(EcmpProperty, PredictedPathIsAnEqualCostShortestPath) {
  const std::size_t k = GetParam();
  const BuiltTree t = makeTree(k);
  const PathOracle oracle(*t.tb);
  const std::size_t hosts = t.ix.hostCount();
  const std::size_t pairStride = hosts / 7 + 1;

  std::size_t checked = 0;
  for (std::size_t src = 0; src < hosts; src += pairStride) {
    for (std::size_t dst = 0; dst < hosts; dst += pairStride / 2 + 1) {
      if (src == dst) continue;
      const auto expected = analyticPaths(t.ix, src, dst);
      for (std::uint16_t port = 24000; port < 24008; ++port) {
        const auto hops =
            oracle.path(t.tb->host(src), t.tb->host(dst), port, 23000);
        ASSERT_FALSE(hops.empty())
            << "no path " << src << "->" << dst << " port " << port;
        EXPECT_TRUE(expected.count(switchIndices(*t.tb, hops)) == 1)
            << "predicted path not in the equal-cost set (" << src << "->"
            << dst << ", srcPort " << port << ")";
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

// The same 5-tuple maps to the same path on a rebuilt tree and under any
// shard plan — path selection is pure (topology, flow hash).
TEST_P(EcmpProperty, SelectionDeterministicAcrossRebuildsAndShardPlans) {
  const std::size_t k = GetParam();
  const BuiltTree a = makeTree(k);
  const BuiltTree b = makeTree(k);            // fresh build, same topology
  const BuiltTree c = makeTree(k, 2);         // sharded plan
  const BuiltTree d = makeTree(k, 4);
  const PathOracle oa(*a.tb), ob(*b.tb), oc(*c.tb), od(*d.tb);

  const std::size_t hosts = a.ix.hostCount();
  for (std::size_t f = 0; f < 64; ++f) {
    const std::size_t src = (f * 37) % hosts;
    std::size_t dst = (f * 53 + hosts / 2) % hosts;
    if (dst == src) dst = (dst + 1) % hosts;
    const auto port = static_cast<std::uint16_t>(24000 + f);
    const auto pa = switchIndices(
        *a.tb, oa.path(a.tb->host(src), a.tb->host(dst), port, 23000));
    const auto pb = switchIndices(
        *b.tb, ob.path(b.tb->host(src), b.tb->host(dst), port, 23000));
    const auto pc = switchIndices(
        *c.tb, oc.path(c.tb->host(src), c.tb->host(dst), port, 23000));
    const auto pd = switchIndices(
        *d.tb, od.path(d.tb->host(src), d.tb->host(dst), port, 23000));
    ASSERT_FALSE(pa.empty());
    EXPECT_EQ(pa, pb) << "rebuild changed the path for flow " << f;
    EXPECT_EQ(pa, pc) << "2-shard plan changed the path for flow " << f;
    EXPECT_EQ(pa, pd) << "4-shard plan changed the path for flow " << f;
  }
}

// Given enough distinct flows between one cross-pod host pair, every edge
// uplink and every agg uplink of the source pod must be selected at least
// once — the hash actually spreads.
TEST_P(EcmpProperty, AllUplinksHitGivenEnoughFlows) {
  const std::size_t k = GetParam();
  const BuiltTree t = makeTree(k);
  const PathOracle oracle(*t.tb);
  const std::size_t r = t.ix.radix();

  const std::size_t src = t.ix.host(0, 0, 0);
  const std::size_t dst = t.ix.host(k - 1, r - 1, r - 1);
  std::set<std::size_t> aggsSeen;   // agg index chosen at the edge hop
  std::set<std::size_t> coresSeen;  // core chosen at the agg hop
  const std::size_t flows = 64 * r * r;  // coupon-collector headroom
  for (std::size_t f = 0; f < flows; ++f) {
    const auto hops = oracle.path(t.tb->host(src), t.tb->host(dst),
                                  static_cast<std::uint16_t>(20000 + f),
                                  static_cast<std::uint16_t>(23000 + (f & 7)));
    ASSERT_EQ(hops.size(), 5u);
    aggsSeen.insert(hops[0].outPort);   // edge uplink == agg choice
    coresSeen.insert(hops[1].outPort);  // agg uplink == core choice
  }
  EXPECT_EQ(aggsSeen.size(), r) << "some edge uplink never selected";
  EXPECT_EQ(coresSeen.size(), r) << "some agg uplink never selected";
}

INSTANTIATE_TEST_SUITE_P(FatTrees, EcmpProperty, ::testing::Values(8, 16),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "k" + std::to_string(i.param);
                         });

// Prediction equals reality: send one UDP datagram per flow across a k=8
// tree and check the packet transited exactly the predicted core (via
// per-switch rx counters — only the predicted core's counters move).
TEST(EcmpTraffic, ActualPacketsFollowPredictedPaths) {
  const std::size_t k = 8;
  BuiltTree t = makeTree(k);
  const PathOracle oracle(*t.tb);
  const std::size_t r = t.ix.radix();

  const std::size_t src = t.ix.host(0, 0, 0);
  const std::size_t dst = t.ix.host(k - 1, 0, 0);

  for (std::uint16_t f = 0; f < 16; ++f) {
    const std::uint16_t srcPort = 25000 + f;
    const auto hops =
        oracle.path(t.tb->host(src), t.tb->host(dst), srcPort, 26000);
    ASSERT_EQ(hops.size(), 5u);
    const std::size_t predictedCore = switchIndices(*t.tb, hops)[2];
    ASSERT_LT(predictedCore, t.ix.coreCount());

    std::vector<std::uint64_t> before(t.ix.coreCount());
    for (std::size_t c = 0; c < t.ix.coreCount(); ++c) {
      before[c] = t.tb->sw(t.ix.coreSw(c)).stats().totalRxPackets;
    }
    const std::uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    t.tb->host(src).sendUdp(t.tb->host(dst).mac(), t.tb->host(dst).ip(),
                            srcPort, 26000, payload);
    t.tb->run(t.tb->sim().now() + sim::Time::ms(1));

    for (std::size_t c = 0; c < t.ix.coreCount(); ++c) {
      const std::uint64_t delta =
          t.tb->sw(t.ix.coreSw(c)).stats().totalRxPackets - before[c];
      if (c == predictedCore) {
        EXPECT_EQ(delta, 1u) << "flow " << f << " missed predicted core";
      } else {
        EXPECT_EQ(delta, 0u)
            << "flow " << f << " transited unpredicted core " << c;
      }
    }
  }
  (void)r;
}

}  // namespace
}  // namespace tpp::host
