// Rewrites the checked-in golden traces from the scenario definitions in
// golden_scenarios.cpp. Invoked via the build target:
//     cmake --build build -t regen-golden
// which passes tests/golden/ as argv[1]. Review the resulting diff before
// committing — a golden change IS a behavior change.
#include <cstdio>
#include <string>

#include "tests/golden_scenarios.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <golden-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  for (const auto& name : tpp::test::goldenScenarioNames()) {
    const auto bytes = tpp::test::runGoldenScenario(name);
    const std::string path = dir + "/" + tpp::test::goldenFileName(name);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (wrote != bytes.size()) {
      std::fprintf(stderr, "short write to %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
  }
  return 0;
}
