#include "src/asic/tables.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/net/ethernet.hpp"

namespace tpp::asic {
namespace {

using net::Ipv4Address;
using net::MacAddress;

TEST(L2Table, ExactMatch) {
  L2Table t;
  t.add(MacAddress::fromIndex(1), 3);
  const auto r = t.match(MacAddress::fromIndex(1));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->outPort, 3u);
  EXPECT_FALSE(t.match(MacAddress::fromIndex(2)));
}

TEST(L2Table, UpdateBumpsVersions) {
  L2Table t;
  t.add(MacAddress::fromIndex(1), 3);
  const auto v1 = t.version();
  const auto e1 = t.match(MacAddress::fromIndex(1))->entryId;
  t.add(MacAddress::fromIndex(1), 4);  // move the host
  EXPECT_GT(t.version(), v1);
  const auto r = t.match(MacAddress::fromIndex(1));
  EXPECT_EQ(r->outPort, 4u);
  // Same entry index, new version — the ndb staleness signal.
  EXPECT_EQ(r->entryId & 0xffff, e1 & 0xffff);
  EXPECT_NE(r->entryId >> 16, e1 >> 16);
}

TEST(L2Table, RemoveDeletes) {
  L2Table t;
  t.add(MacAddress::fromIndex(1), 3);
  EXPECT_TRUE(t.remove(MacAddress::fromIndex(1)));
  EXPECT_FALSE(t.remove(MacAddress::fromIndex(1)));
  EXPECT_FALSE(t.match(MacAddress::fromIndex(1)));
  EXPECT_EQ(t.size(), 0u);
}

TEST(L3Lpm, LongestPrefixWins) {
  L3LpmTable t;
  t.add(Ipv4Address::fromOctets(10, 0, 0, 0), 8, 1);
  t.add(Ipv4Address::fromOctets(10, 1, 0, 0), 16, 2);
  t.add(Ipv4Address::fromOctets(10, 1, 2, 0), 24, 3);
  EXPECT_EQ(t.match(Ipv4Address::fromOctets(10, 1, 2, 3))->outPort, 3u);
  EXPECT_EQ(t.match(Ipv4Address::fromOctets(10, 1, 9, 9))->outPort, 2u);
  EXPECT_EQ(t.match(Ipv4Address::fromOctets(10, 9, 9, 9))->outPort, 1u);
  EXPECT_FALSE(t.match(Ipv4Address::fromOctets(11, 0, 0, 1)));
}

TEST(L3Lpm, AltRoutesCountsCoveringPrefixes) {
  L3LpmTable t;
  t.add(Ipv4Address::fromOctets(10, 0, 0, 0), 8, 1);
  t.add(Ipv4Address::fromOctets(10, 1, 0, 0), 16, 2);
  const auto r = t.match(Ipv4Address::fromOctets(10, 1, 2, 3));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->altRoutes, 1u);  // the /8 also covers it
  EXPECT_EQ(t.match(Ipv4Address::fromOctets(10, 9, 9, 9))->altRoutes, 0u);
}

TEST(L3Lpm, DefaultRouteMatchesEverything) {
  L3LpmTable t;
  t.add(Ipv4Address{0}, 0, 7);
  EXPECT_EQ(t.match(Ipv4Address::fromOctets(1, 2, 3, 4))->outPort, 7u);
  EXPECT_EQ(t.match(Ipv4Address::fromOctets(255, 255, 255, 255))->outPort,
            7u);
}

TEST(L3Lpm, HostRouteExactness) {
  L3LpmTable t;
  t.add(Ipv4Address::forHost(5), 32, 2);
  EXPECT_TRUE(t.match(Ipv4Address::forHost(5)));
  EXPECT_FALSE(t.match(Ipv4Address::forHost(6)));
}

TEST(L3Lpm, PrefixIsMaskedOnInsert) {
  L3LpmTable t;
  // Junk host bits must not break matching.
  t.add(Ipv4Address::fromOctets(10, 1, 2, 99), 24, 4);
  EXPECT_EQ(t.match(Ipv4Address::fromOctets(10, 1, 2, 7))->outPort, 4u);
}

TEST(L3Lpm, ReAddUpdatesInPlace) {
  L3LpmTable t;
  t.add(Ipv4Address::fromOctets(10, 0, 0, 0), 8, 1);
  const auto e1 = t.match(Ipv4Address::fromOctets(10, 0, 0, 1))->entryId;
  t.add(Ipv4Address::fromOctets(10, 0, 0, 0), 8, 2);
  const auto r = t.match(Ipv4Address::fromOctets(10, 0, 0, 1));
  EXPECT_EQ(r->outPort, 2u);
  EXPECT_EQ(r->entryId & 0xffff, e1 & 0xffff);
  EXPECT_NE(r->entryId, e1);
  EXPECT_EQ(t.size(), 1u);
}

TEST(L3Lpm, RemoveByPrefix) {
  L3LpmTable t;
  t.add(Ipv4Address::fromOctets(10, 0, 0, 0), 8, 1);
  EXPECT_TRUE(t.remove(Ipv4Address::fromOctets(10, 0, 0, 0), 8));
  EXPECT_FALSE(t.remove(Ipv4Address::fromOctets(10, 0, 0, 0), 8));
  EXPECT_FALSE(t.match(Ipv4Address::fromOctets(10, 0, 0, 1)));
}

Tcam::PacketFields fieldsFor(Ipv4Address dst) {
  Tcam::PacketFields f;
  f.dstMac = MacAddress::fromIndex(1);
  f.etherType = net::kEtherTypeIpv4;
  f.ipSrc = Ipv4Address::forHost(1);
  f.ipDst = dst;
  f.ipProto = net::kIpProtoUdp;
  return f;
}

TEST(Tcam, PriorityOrdersMatches) {
  Tcam t;
  TcamKey low;  // match-all
  t.add(low, TcamAction{1}, 10);
  TcamKey high;
  high.ipDst = {Ipv4Address::forHost(5), 32};
  t.add(high, TcamAction{2}, 20);
  EXPECT_EQ(t.match(fieldsFor(Ipv4Address::forHost(5)))->outPort, 2u);
  EXPECT_EQ(t.match(fieldsFor(Ipv4Address::forHost(6)))->outPort, 1u);
}

TEST(Tcam, AltRoutesCountsShadowedMatches) {
  Tcam t;
  t.add(TcamKey{}, TcamAction{1}, 10);
  TcamKey k;
  k.ipDst = {Ipv4Address::forHost(5), 32};
  t.add(k, TcamAction{2}, 20);
  EXPECT_EQ(t.match(fieldsFor(Ipv4Address::forHost(5)))->altRoutes, 1u);
}

TEST(Tcam, WildcardFieldsMatchAnything) {
  Tcam t;
  TcamKey k;  // all fields nullopt
  t.add(k, TcamAction{3}, 1);
  auto f = fieldsFor(Ipv4Address::forHost(9));
  f.ipProto = std::nullopt;
  f.ipSrc = std::nullopt;
  f.ipDst = std::nullopt;
  EXPECT_TRUE(t.match(f));
}

TEST(Tcam, ProtoFieldRequiresIp) {
  Tcam t;
  TcamKey k;
  k.ipProto = net::kIpProtoUdp;
  t.add(k, TcamAction{3}, 1);
  auto f = fieldsFor(Ipv4Address::forHost(1));
  f.ipProto = std::nullopt;  // non-IP packet
  EXPECT_FALSE(t.match(f));
}

TEST(Tcam, DropAction) {
  Tcam t;
  TcamKey k;
  k.ipDst = {Ipv4Address::forHost(5), 32};
  t.add(k, TcamAction{0, std::nullopt, true}, 10);
  const auto r = t.match(fieldsFor(Ipv4Address::forHost(5)));
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->drop);
}

TEST(Tcam, QueueSteeringAction) {
  Tcam t;
  t.add(TcamKey{}, TcamAction{1, std::uint8_t{5}, false}, 10);
  const auto r = t.match(fieldsFor(Ipv4Address::forHost(5)));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->queueId, std::uint8_t{5});
}

TEST(Tcam, UpdateBumpsEntryVersion) {
  Tcam t;
  const auto id = t.add(TcamKey{}, TcamAction{1}, 10);
  const auto before = *t.packedId(id);
  EXPECT_TRUE(t.update(id, TcamAction{2}));
  const auto after = *t.packedId(id);
  EXPECT_EQ(before & 0xffff, after & 0xffff);
  EXPECT_EQ((before >> 16) + 1, after >> 16);
  EXPECT_EQ(t.match(fieldsFor(Ipv4Address::forHost(1)))->entryId, after);
}

TEST(Tcam, RemoveAndUnknownIds) {
  Tcam t;
  const auto id = t.add(TcamKey{}, TcamAction{1}, 10);
  EXPECT_TRUE(t.remove(id));
  EXPECT_FALSE(t.remove(id));
  EXPECT_FALSE(t.update(id, TcamAction{2}));
  EXPECT_FALSE(t.packedId(id));
  EXPECT_FALSE(t.match(fieldsFor(Ipv4Address::forHost(1))));
}

TEST(Tcam, SrcPrefixMatching) {
  Tcam t;
  TcamKey k;
  k.ipSrc = {Ipv4Address::fromOctets(10, 0, 0, 0), 24};
  t.add(k, TcamAction{4}, 10);
  auto f = fieldsFor(Ipv4Address::forHost(1));
  f.ipSrc = Ipv4Address::fromOctets(10, 0, 0, 200);
  EXPECT_TRUE(t.match(f));
  f.ipSrc = Ipv4Address::fromOctets(10, 0, 1, 200);
  EXPECT_FALSE(t.match(f));
}


TEST(L3Lpm, MultipathSelectsByFlowHash) {
  L3LpmTable t;
  t.addMultipath(Ipv4Address{0}, 0, {2, 3, 4});
  const auto dst = Ipv4Address::forHost(1);
  std::set<std::size_t> seen;
  for (std::uint64_t h = 0; h < 16; ++h) {
    seen.insert(t.match(dst, h)->outPort);
  }
  EXPECT_EQ(seen, (std::set<std::size_t>{2, 3, 4}));
  // Same hash, same port: flows stay pinned.
  EXPECT_EQ(t.match(dst, 7)->outPort, t.match(dst, 7)->outPort);
}

TEST(L3Lpm, MultipathCountsSiblingsAsAltRoutes) {
  L3LpmTable t;
  t.addMultipath(Ipv4Address::fromOctets(10, 0, 0, 0), 8, {1, 2, 3});
  t.add(Ipv4Address{0}, 0, 9);
  const auto r = t.match(Ipv4Address::forHost(1), 0);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->altRoutes, 3u);  // 2 ECMP siblings + 1 covering default
}

TEST(L3Lpm, MultipathReAddReplacesPortSet) {
  L3LpmTable t;
  t.addMultipath(Ipv4Address{0}, 0, {1, 2});
  t.addMultipath(Ipv4Address{0}, 0, {5});
  EXPECT_EQ(t.match(Ipv4Address::forHost(1), 12345)->outPort, 5u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(L3Lpm, MultipathEmptyPortListIgnored) {
  L3LpmTable t;
  t.addMultipath(Ipv4Address{0}, 0, {});
  EXPECT_EQ(t.size(), 0u);
}

TEST(PackEntryId, Layout) {
  EXPECT_EQ(packEntryId(0x1234, 0x00ab), 0x00ab1234u);
}

}  // namespace
}  // namespace tpp::asic
