#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tpp::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), Time::zero());
}

TEST(Simulator, ScheduleAdvancesClock) {
  Simulator s;
  Time observed;
  s.schedule(Time::ms(5), [&] { observed = s.now(); });
  s.run();
  EXPECT_EQ(observed, Time::ms(5));
  EXPECT_EQ(s.now(), Time::ms(5));
}

TEST(Simulator, RelativeSchedulingNests) {
  Simulator s;
  std::vector<std::int64_t> at;
  s.schedule(Time::ms(1), [&] {
    at.push_back(s.now().nanos());
    s.schedule(Time::ms(1), [&] { at.push_back(s.now().nanos()); });
  });
  s.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], Time::ms(1).nanos());
  EXPECT_EQ(at[1], Time::ms(2).nanos());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int ran = 0;
  s.schedule(Time::ms(1), [&] { ++ran; });
  s.schedule(Time::ms(10), [&] { ++ran; });
  s.run(Time::ms(5));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), Time::ms(5));  // clock advances to the horizon
  s.run(Time::ms(20));
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, EventAtHorizonRuns) {
  Simulator s;
  bool ran = false;
  s.schedule(Time::ms(5), [&] { ran = true; });
  s.run(Time::ms(5));
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopHaltsLoop) {
  Simulator s;
  int ran = 0;
  s.schedule(Time::ms(1), [&] {
    ++ran;
    s.stop();
  });
  s.schedule(Time::ms(2), [&] { ++ran; });
  s.run();
  EXPECT_EQ(ran, 1);
  // A later run resumes with the remaining events.
  s.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, RunEventsBounded) {
  Simulator s;
  int ran = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule(Time::ms(i), [&] { ++ran; });
  }
  EXPECT_EQ(s.runEvents(3), 3u);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(s.runEvents(100), 7u);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  s.schedule(Time::ms(5), [&] {
    Time observed;
    s.schedule(Time::ms(-3), [&, start = s.now()] { observed = s.now(); });
    // The clamped event must not move time backwards.
    s.schedule(Time::ms(1), [&] { EXPECT_GE(s.now(), Time::ms(5)); });
  });
  s.run();
  EXPECT_GE(s.now(), Time::ms(5));
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator s;
  Time observed = Time::ns(-1);
  s.schedule(Time::ms(5), [&] {
    s.scheduleAt(Time::ms(1), [&] { observed = s.now(); });
  });
  s.run();
  EXPECT_EQ(observed, Time::ms(5));
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule(Time::ms(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.eventsExecuted(), 5u);
}

TEST(Simulator, CancelledEventsDoNotRun) {
  Simulator s;
  bool ran = false;
  auto h = s.schedule(Time::ms(1), [&] { ran = true; });
  h.cancel();
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, DeterministicOrderAtSameInstant) {
  // Two identical runs must execute same-time events identically.
  auto run = [] {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      s.schedule(Time::ms(1), [&order, i] { order.push_back(i); });
    }
    s.run();
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace tpp::sim
