#include "src/sim/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/net/ethernet.hpp"
#include "src/net/link.hpp"

namespace tpp::sim {
namespace {

std::vector<LinkFaultState::Verdict> verdicts(std::uint64_t seed,
                                              const std::string& name,
                                              LinkFaultPlan plan,
                                              std::size_t n) {
  Simulator sim;
  FaultInjector inj(sim, seed);
  auto& state = inj.link(name, plan);
  std::vector<LinkFaultState::Verdict> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(state.onTransmit());
  return out;
}

TEST(LinkFaultState, SameSeedSameStream) {
  const LinkFaultPlan plan{0.1, 0.05};
  EXPECT_EQ(verdicts(42, "a->b", plan, 500), verdicts(42, "a->b", plan, 500));
}

TEST(LinkFaultState, DifferentSeedDifferentStream) {
  const LinkFaultPlan plan{0.1, 0.05};
  EXPECT_NE(verdicts(42, "a->b", plan, 500), verdicts(43, "a->b", plan, 500));
}

TEST(LinkFaultState, StreamsAreIndependentPerLinkName) {
  // Link "a->b" draws the same decisions whether or not other links exist:
  // substreams are keyed by (seed, name), not registration order.
  Simulator sim;
  FaultInjector lone(sim, 7);
  auto& a1 = lone.link("a->b", {0.2, 0.0});
  FaultInjector crowd(sim, 7);
  crowd.link("x->y", {0.5, 0.1});
  auto& a2 = crowd.link("a->b", {0.2, 0.0});
  crowd.link("y->z", {0.9, 0.0});
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(a1.onTransmit(), a2.onTransmit()) << "diverged at " << i;
  }
}

TEST(LinkFaultState, ZeroPlanNeverDropsAndConsumesNoRandomness) {
  auto all = verdicts(1, "l", LinkFaultPlan{}, 1000);
  for (auto v : all) EXPECT_EQ(v, LinkFaultState::Verdict::Deliver);
}

TEST(LinkFaultState, DropRateTracksProbability) {
  Simulator sim;
  FaultInjector inj(sim, 99);
  auto& state = inj.link("lossy", {0.1, 0.0});
  for (int i = 0; i < 10'000; ++i) state.onTransmit();
  EXPECT_EQ(state.transmitted(), 10'000u);
  EXPECT_NEAR(static_cast<double>(state.randomDrops()), 1000.0, 150.0);
  EXPECT_EQ(state.corrupted(), 0u);
  EXPECT_EQ(state.totalDrops(), state.randomDrops());
}

TEST(LinkFaultState, DownWindowDropsEverything) {
  Simulator sim;
  FaultInjector inj(sim, 5);
  auto& state = inj.link("flaky", {});
  inj.linkDownWindow(state, Time::ms(10), Time::ms(20));
  sim.run(Time::ms(15));
  EXPECT_TRUE(state.down());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(state.onTransmit(), LinkFaultState::Verdict::Drop);
  }
  EXPECT_EQ(state.downDrops(), 10u);
  sim.run(Time::ms(25));
  EXPECT_FALSE(state.down());
  EXPECT_EQ(state.onTransmit(), LinkFaultState::Verdict::Deliver);
}

TEST(LinkFaultState, CorruptionTargetStaysInFrame) {
  Simulator sim;
  FaultInjector inj(sim, 11);
  auto& state = inj.link("noisy", {0.0, 1.0});
  for (int i = 0; i < 200; ++i) {
    const auto [byte, bit] = state.corruptionTarget(64);
    EXPECT_LT(byte, 64u);
    EXPECT_LT(bit, 8u);
  }
}

TEST(FaultInjector, LinkIsCreateOrGet) {
  Simulator sim;
  FaultInjector inj(sim, 3);
  auto& first = inj.link("a->b", {0.5, 0.0});
  auto& again = inj.link("a->b", {0.0, 0.0});  // plan ignored on get
  EXPECT_EQ(&first, &again);
  EXPECT_DOUBLE_EQ(again.plan().dropProbability, 0.5);
  EXPECT_EQ(inj.links().size(), 1u);
  EXPECT_EQ(inj.find("a->b"), &first);
  EXPECT_EQ(inj.find("nope"), nullptr);
}

TEST(FaultInjector, AggregateCounters) {
  Simulator sim;
  FaultInjector inj(sim, 21);
  auto& l1 = inj.link("l1", {1.0, 0.0});
  auto& l2 = inj.link("l2", {0.0, 1.0});
  for (int i = 0; i < 5; ++i) l1.onTransmit();
  for (int i = 0; i < 3; ++i) l2.onTransmit();
  EXPECT_EQ(inj.totalDrops(), 5u);
  EXPECT_EQ(inj.totalCorrupted(), 3u);
}

// ------------------------------------------------- channel integration

class CountingNode : public net::Node {
 public:
  CountingNode() : Node("sink") {}
  void receive(net::PacketPtr packet, std::size_t) override {
    ++packets;
    lastBytes = packet->bytes();
  }
  std::size_t packets = 0;
  std::vector<std::uint8_t> lastBytes;
};

TEST(ChannelFaults, ArmedChannelDropsPerPlan) {
  Simulator sim;
  CountingNode a, b;
  auto link = net::DuplexLink::connect(sim, a, 0, b, 0, 1'000'000'000,
                                       Time::zero());
  FaultInjector inj(sim, 77);
  auto& fault = inj.link("a->b", {1.0, 0.0});  // drop everything
  a.txChannel(0)->setFaultState(&fault);
  for (int i = 0; i < 4; ++i) a.txChannel(0)->transmit(net::Packet::make(100));
  sim.run();
  EXPECT_EQ(b.packets, 0u);
  EXPECT_EQ(a.txChannel(0)->packetsFaultDropped(), 4u);
  EXPECT_EQ(fault.randomDrops(), 4u);
  // Faults act on the wire: the serializer still charged all four packets.
  EXPECT_FALSE(a.txChannel(0)->idleAt(Time::zero()));
}

TEST(ChannelFaults, CorruptionFlipsExactlyOneBit) {
  Simulator sim;
  CountingNode a, b;
  auto link = net::DuplexLink::connect(sim, a, 0, b, 0, 1'000'000'000,
                                       Time::zero());
  FaultInjector inj(sim, 123);
  auto& fault = inj.link("a->b", {0.0, 1.0});  // corrupt everything
  a.txChannel(0)->setFaultState(&fault);
  a.txChannel(0)->transmit(net::Packet::make(64, 0x00));
  sim.run();
  ASSERT_EQ(b.packets, 1u);
  int flipped = 0;
  for (auto byte : b.lastBytes) {
    for (int bit = 0; bit < 8; ++bit) flipped += (byte >> bit) & 1;
  }
  EXPECT_EQ(flipped, 1);
  EXPECT_EQ(fault.corrupted(), 1u);
}

TEST(ChannelFaults, UnarmedChannelUnaffected) {
  Simulator sim;
  CountingNode a, b;
  auto link = net::DuplexLink::connect(sim, a, 0, b, 0, 1'000'000'000,
                                       Time::zero());
  a.txChannel(0)->transmit(net::Packet::make(100));
  sim.run();
  EXPECT_EQ(b.packets, 1u);
  EXPECT_EQ(a.txChannel(0)->packetsFaultDropped(), 0u);
}

}  // namespace
}  // namespace tpp::sim
