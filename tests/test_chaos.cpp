// Chaos suite: the fault-injection acceptance scenarios (ctest label
// `chaos`). Every test derives its randomness from TPP_CHAOS_SEED (env,
// default 1) through sim::FaultInjector's named substreams, so a failing
// seed reproduces bit-for-bit with
//     TPP_CHAOS_SEED=<seed> ctest -L chaos
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "src/apps/aggregate_limiter.hpp"
#include "src/apps/deployment.hpp"
#include "src/apps/microburst.hpp"
#include "src/apps/ndb.hpp"
#include "src/apps/rcpstar.hpp"
#include "src/core/interference.hpp"
#include "src/core/memory_map.hpp"
#include "src/host/telemetry.hpp"
#include "src/host/topology.hpp"
#include "src/sim/fault.hpp"
#include "tests/test_util.hpp"

namespace tpp {
namespace {

using host::Testbed;

std::uint64_t baseSeed() { return test::chaosSeed(); }

constexpr std::uint64_t kBottleneck = 10'000'000;

// Cross-checks what an armed SRAM race oracle observed against the static
// interference verdict for the shipped deployment: chaos (drops, reboots,
// dark links) must never produce an interleaving the analyzer ruled out.
void expectNoOracleDivergence(host::SramOracleSet& oracles,
                              std::uint16_t tokenAddress = core::kSramBase) {
  const auto dep = apps::shippedDeployment(tokenAddress);
  const auto report = core::analyzeInterference(dep.tasks, dep.options);
  ASSERT_TRUE(report.ok());
  for (const auto& line : oracles.divergences(report, dep.tasks)) {
    ADD_FAILURE() << "static/dynamic divergence: " << line;
  }
  for (const auto& c : oracles.conflicts()) {
    ADD_FAILURE() << "observed SRAM conflict: " << c.describe();
  }
}

// ------------------------------------------------------------- RCP* chaos

struct RcpChaosOutcome {
  double finalRateBps = 0;
  std::uint64_t drops = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t probesSent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t probeLosses = 0;
  std::uint64_t mdFallbacks = 0;
  std::uint64_t truncated = 0;
  std::uint64_t updates = 0;
  bool operator==(const RcpChaosOutcome&) const = default;
};

struct RcpChaosPlan {
  double dropProbability = 0.0;
  double corruptProbability = 0.0;
  bool reboot = false;               // left switch, at 3 s
  bool downWindow = false;           // bottleneck dark 1.0–1.5 s
};

RcpChaosOutcome runRcpChaos(std::uint64_t seed, const RcpChaosPlan& plan) {
  Testbed tb;
  asic::SwitchConfig scfg;
  scfg.bufferPerQueueBytes = 64 * 1024;
  scfg.utilizationWindow = sim::Time::ms(50);
  buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{kBottleneck, sim::Time::ms(1)}, scfg);
  for (std::size_t s = 0; s < tb.switchCount(); ++s) {
    for (std::size_t port = 0; port < tb.sw(s).config().ports; ++port) {
      tb.sw(s).scratchWrite(
          core::addr::RcpRateRegister,
          static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(port) / 1000),
          port);
    }
  }

  // Race oracle rides along: chaos must not create SRAM interleavings the
  // static interference analyzer ruled out.
  host::SramOracleSet oracles(tb.switchCount());
  host::armSramOracle(tb, oracles);

  host::FlowSpec spec;
  spec.dstMac = tb.host(1).mac();
  spec.dstIp = tb.host(1).ip();
  spec.srcPort = 21000;
  spec.dstPort = 21000;
  spec.payloadBytes = 1000;
  spec.rateBps = 100e3;
  host::PacedFlow flow(tb.host(0), spec, 1);

  apps::RcpStarController::Config ccfg;
  ccfg.params.alpha = 0.5;
  ccfg.params.beta = 1.0;
  ccfg.params.rttSeconds = 0.05;
  ccfg.period = sim::Time::ms(50);
  ccfg.dstMac = spec.dstMac;
  ccfg.dstIp = spec.dstIp;
  ccfg.probeTimeout = sim::Time::ms(5);
  ccfg.probeMaxBackoff = sim::Time::ms(20);
  apps::RcpStarController ctl(tb.host(0), flow, ccfg);

  sim::FaultInjector inj(tb.sim(), seed);
  auto& fwd = inj.link("bottleneck:l->r",
                       {plan.dropProbability, plan.corruptProbability});
  auto& rev = inj.link("bottleneck:r->l",
                       {plan.dropProbability, plan.corruptProbability});
  tb.linkAt(2).aToB().setFaultState(&fwd);  // link 2 = the bottleneck
  tb.linkAt(2).bToA().setFaultState(&rev);
  if (plan.downWindow) {
    inj.linkDownWindow(fwd, sim::Time::ms(1000), sim::Time::ms(1500));
    inj.linkDownWindow(rev, sim::Time::ms(1000), sim::Time::ms(1500));
  }
  if (plan.reboot) {
    inj.at(sim::Time::sec(3), [&] { tb.sw(0).reboot(); });
  }

  flow.start(sim::Time::zero());
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(6));

  RcpChaosOutcome out;
  out.finalRateBps = ctl.currentRateBps();
  out.drops = inj.totalDrops();
  out.corrupted = inj.totalCorrupted();
  out.probesSent = ctl.prober().probesSent();
  out.retransmits = ctl.prober().retransmits();
  out.probeLosses = ctl.probeLosses();
  out.mdFallbacks = ctl.mdFallbacks();
  out.truncated = ctl.truncatedCollects();
  out.updates = ctl.updatesSent();
  flow.stop();
  ctl.stop();
  expectNoOracleDivergence(oracles);
  return out;
}

TEST(ChaosRcp, ConvergesWithin25PercentOfFaultFreeUnderDropAndReboot) {
  const auto seed = baseSeed();
  const auto clean = runRcpChaos(seed, RcpChaosPlan{});
  RcpChaosPlan plan;
  plan.dropProbability = 0.01;  // the acceptance scenario: 1% loss
  plan.corruptProbability = 0.002;
  plan.reboot = true;
  const auto chaos = runRcpChaos(seed, plan);

  EXPECT_GT(chaos.drops, 0u);
  EXPECT_GT(chaos.retransmits, 0u);  // the prober actually worked for this
  EXPECT_GT(chaos.updates, 50u);
  EXPECT_NEAR(chaos.finalRateBps, clean.finalRateBps,
              0.25 * clean.finalRateBps);
  // And the clean run itself sits at the bottleneck.
  EXPECT_NEAR(clean.finalRateBps, static_cast<double>(kBottleneck),
              0.25 * static_cast<double>(kBottleneck));
}

TEST(ChaosRcp, DownWindowTriggersMdFallbackThenRecovers) {
  const auto seed = baseSeed() + 17;
  RcpChaosPlan plan;
  plan.downWindow = true;  // bottleneck dark for 0.5 s
  const auto out = runRcpChaos(seed, plan);
  // Whole control periods lost every probe: the controller must have taken
  // the multiplicative-decrease path instead of coasting on stale samples.
  EXPECT_GT(out.probeLosses, 0u);
  EXPECT_GE(out.mdFallbacks, 5u);
  // ... and still recovered to the bottleneck rate afterwards.
  EXPECT_NEAR(out.finalRateBps, static_cast<double>(kBottleneck),
              0.25 * static_cast<double>(kBottleneck));
}

TEST(ChaosRepro, SameSeedSameRunDifferentSeedDifferentRun) {
  RcpChaosPlan plan;
  plan.dropProbability = 0.01;
  plan.corruptProbability = 0.002;
  plan.reboot = true;
  const auto seed = baseSeed();
  const auto a = runRcpChaos(seed, plan);
  const auto b = runRcpChaos(seed, plan);
  EXPECT_EQ(a, b);  // bit-reproducible end to end
  const auto c = runRcpChaos(seed + 1, plan);
  EXPECT_FALSE(a == c);
}

// ------------------------------------------------------- sharded chaos

// runRcpChaos on a partitioned testbed: left switch + sender on shard 0,
// right switch + receiver on shard 1 (shards == 1 collapses to the legacy
// placement), with one FaultInjector per shard sharing the master seed.
// Link fault substreams fork from (seed, link name) only, so which shard's
// injector owns a state must never change its verdict stream.
RcpChaosOutcome runShardedRcpChaos(std::uint64_t seed,
                                   const RcpChaosPlan& plan,
                                   std::size_t shards) {
  host::ShardPlan sp;
  sp.shards = shards;
  if (shards == 2) {
    sp.switchShard = {0, 1};
    sp.hostShard = {0, 1};
  }
  Testbed tb(sp);
  asic::SwitchConfig scfg;
  scfg.bufferPerQueueBytes = 64 * 1024;
  scfg.utilizationWindow = sim::Time::ms(50);
  buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{kBottleneck, sim::Time::ms(1)}, scfg);
  for (std::size_t s = 0; s < tb.switchCount(); ++s) {
    for (std::size_t port = 0; port < tb.sw(s).config().ports; ++port) {
      tb.sw(s).scratchWrite(
          core::addr::RcpRateRegister,
          static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(port) / 1000),
          port);
    }
  }

  // Each switch's oracle records on its own shard; the set is read only
  // after the run joins.
  host::SramOracleSet oracles(tb.switchCount());
  host::armSramOracle(tb, oracles);

  host::FlowSpec spec;
  spec.dstMac = tb.host(1).mac();
  spec.dstIp = tb.host(1).ip();
  spec.srcPort = 21000;
  spec.dstPort = 21000;
  spec.payloadBytes = 1000;
  spec.rateBps = 100e3;
  host::PacedFlow flow(tb.host(0), spec, 1);

  apps::RcpStarController::Config ccfg;
  ccfg.params.alpha = 0.5;
  ccfg.params.beta = 1.0;
  ccfg.params.rttSeconds = 0.05;
  ccfg.period = sim::Time::ms(50);
  ccfg.dstMac = spec.dstMac;
  ccfg.dstIp = spec.dstIp;
  ccfg.probeTimeout = sim::Time::ms(5);
  ccfg.probeMaxBackoff = sim::Time::ms(20);
  apps::RcpStarController ctl(tb.host(0), flow, ccfg);

  // The bottleneck's forward channel transmits on the left switch's shard,
  // the reverse on the right's — each gets an injector on its own shard.
  sim::FaultInjector injL(tb.simOf(tb.sw(0)), seed);
  sim::FaultInjector injR(tb.simOf(tb.sw(1)), seed);
  auto& fwd = injL.link("bottleneck:l->r",
                        {plan.dropProbability, plan.corruptProbability});
  auto& rev = injR.link("bottleneck:r->l",
                        {plan.dropProbability, plan.corruptProbability});
  tb.linkAt(2).aToB().setFaultState(&fwd);
  tb.linkAt(2).bToA().setFaultState(&rev);
  if (plan.downWindow) {
    injL.linkDownWindow(fwd, sim::Time::ms(1000), sim::Time::ms(1500));
    injR.linkDownWindow(rev, sim::Time::ms(1000), sim::Time::ms(1500));
  }
  if (plan.reboot) {
    injL.at(sim::Time::sec(3), [&] { tb.sw(0).reboot(); });  // shard 0's
  }

  flow.start(sim::Time::zero());
  ctl.start(sim::Time::zero());
  tb.run(sim::Time::sec(6));

  RcpChaosOutcome out;
  out.finalRateBps = ctl.currentRateBps();
  out.drops = injL.totalDrops() + injR.totalDrops();
  out.corrupted = injL.totalCorrupted() + injR.totalCorrupted();
  out.probesSent = ctl.prober().probesSent();
  out.retransmits = ctl.prober().retransmits();
  out.probeLosses = ctl.probeLosses();
  out.mdFallbacks = ctl.mdFallbacks();
  out.truncated = ctl.truncatedCollects();
  out.updates = ctl.updatesSent();
  flow.stop();
  ctl.stop();
  expectNoOracleDivergence(oracles);
  return out;
}

TEST(ChaosSharded, DropRebootReproducibleOnTwoShardPartition) {
  const auto seed = baseSeed();
  RcpChaosPlan plan;
  plan.dropProbability = 0.01;  // the acceptance scenario: 1% loss + reboot
  plan.reboot = true;
  const auto a = runShardedRcpChaos(seed, plan, /*shards=*/2);
  const auto b = runShardedRcpChaos(seed, plan, /*shards=*/2);
  EXPECT_EQ(a, b) << "2-shard chaos run not reproducible from its seed";
  EXPECT_GT(a.drops, 0u);
  EXPECT_GT(a.retransmits, 0u);
  EXPECT_GT(a.updates, 50u);
}

TEST(ChaosSharded, FaultVerdictsIndependentOfShardPlacement) {
  // Collapsing the partition moves both fault states onto one injector on
  // one shard; because substreams hang off (seed, link name) alone — and
  // the sharded runner preserves exact event semantics — every verdict,
  // counter and the final control rate must come out identical.
  const auto seed = baseSeed() + 5;
  RcpChaosPlan plan;
  plan.dropProbability = 0.01;
  plan.reboot = true;
  const auto two = runShardedRcpChaos(seed, plan, /*shards=*/2);
  const auto one = runShardedRcpChaos(seed, plan, /*shards=*/1);
  EXPECT_EQ(two, one);
}

// ------------------------------------------------ CSTORE lock vs. reboot

// Satellite: an RCP* controller holding the bottleneck's CSTORE lock across
// a switch reboot must detect the wipe via the boot epoch and re-acquire —
// never deadlock on a lock word that no longer exists. Swept over >= 10
// seeds with staggered reboot instants.
TEST(ChaosLock, HeldLockSurvivesRebootAcrossTenSeeds) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    const std::uint64_t seed = baseSeed() * 1000 + i;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Testbed tb;
    asic::SwitchConfig scfg;
    scfg.bufferPerQueueBytes = 64 * 1024;
    scfg.utilizationWindow = sim::Time::ms(50);
    buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                  host::LinkParams{kBottleneck, sim::Time::ms(1)}, scfg);
    for (std::size_t s = 0; s < tb.switchCount(); ++s) {
      for (std::size_t port = 0; port < tb.sw(s).config().ports; ++port) {
        tb.sw(s).scratchWrite(
            core::addr::RcpRateRegister,
            static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(port) / 1000),
            port);
      }
    }
    host::FlowSpec spec;
    spec.dstMac = tb.host(1).mac();
    spec.dstIp = tb.host(1).ip();
    spec.srcPort = 21000;
    spec.dstPort = 21000;
    spec.payloadBytes = 1000;
    spec.rateBps = 100e3;
    host::PacedFlow flow(tb.host(0), spec, 1);
    apps::RcpStarController::Config ccfg;
    ccfg.params.alpha = 0.5;
    ccfg.params.beta = 1.0;
    ccfg.params.rttSeconds = 0.05;
    ccfg.period = sim::Time::ms(50);
    ccfg.dstMac = spec.dstMac;
    ccfg.dstIp = spec.dstIp;
    ccfg.probeTimeout = sim::Time::ms(5);
    ccfg.useCstoreLock = true;
    apps::RcpStarController ctl(tb.host(0), flow, ccfg);

    sim::FaultInjector inj(tb.sim(), seed);
    // Stagger the reboot across the control period so different seeds hit
    // different phases of the acquire/update cycle.
    const auto rebootAt =
        sim::Time::ms(1500 + static_cast<std::int64_t>(i) * 77);
    std::uint64_t updatesAtReboot = 0;
    bool heldAtReboot = false;
    inj.at(rebootAt, [&] {
      updatesAtReboot = ctl.updatesSent();
      heldAtReboot = ctl.lockHeld();
      tb.sw(0).reboot();
    });

    flow.start(sim::Time::zero());
    ctl.start(sim::Time::zero());
    tb.sim().run(sim::Time::sec(4));

    EXPECT_GE(ctl.lockAcquisitions(), 1u);
    EXPECT_GT(updatesAtReboot, 0u);   // lock path was live before the fault
    EXPECT_TRUE(heldAtReboot);        // single controller: lock stays held
    // The wiped lock was detected (epoch check), state reset, and updates
    // resumed — the no-deadlock property.
    EXPECT_GE(ctl.lockEpochResets(), 1u);
    EXPECT_GT(ctl.updatesSent(), updatesAtReboot);
    EXPECT_GE(ctl.lockAcquisitions(), 2u);  // re-acquired after the reset
    // No leaked lock: the word is free or owned by this controller.
    const auto lockWord =
        *tb.sw(0).scratchRead(core::addr::RcpLockRegister, 1);
    EXPECT_TRUE(lockWord == 0 || lockWord == ctl.lockOwnerId())
        << "leaked lock word " << lockWord;
    flow.stop();
    ctl.stop();
  }
}

TEST(ChaosLock, ForeignStuckLockClearsOnReboot) {
  // A dead controller's lock blocks ours (contention, no updates); the
  // reboot wipes it and ours proceeds. The complement of the epoch-reset
  // path: here the reboot is what *unsticks* the protocol.
  Testbed tb;
  asic::SwitchConfig scfg;
  scfg.bufferPerQueueBytes = 64 * 1024;
  scfg.utilizationWindow = sim::Time::ms(50);
  buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{kBottleneck, sim::Time::ms(1)}, scfg);
  for (std::size_t port = 0; port < tb.sw(0).config().ports; ++port) {
    tb.sw(0).scratchWrite(
        core::addr::RcpRateRegister,
        static_cast<std::uint32_t>(tb.sw(0).portCapacityBps(port) / 1000),
        port);
  }
  // Port 1 is the bottleneck egress; wedge its lock with a foreign owner.
  ASSERT_TRUE(
      tb.sw(0).scratchWrite(core::addr::RcpLockRegister, 0xdeadbeef, 1));

  host::FlowSpec spec;
  spec.dstMac = tb.host(1).mac();
  spec.dstIp = tb.host(1).ip();
  spec.srcPort = 21000;
  spec.dstPort = 21000;
  spec.payloadBytes = 1000;
  spec.rateBps = 100e3;
  host::PacedFlow flow(tb.host(0), spec, 1);
  apps::RcpStarController::Config ccfg;
  ccfg.params.alpha = 0.5;
  ccfg.params.beta = 1.0;
  ccfg.params.rttSeconds = 0.05;
  ccfg.period = sim::Time::ms(50);
  ccfg.dstMac = spec.dstMac;
  ccfg.dstIp = spec.dstIp;
  ccfg.useCstoreLock = true;
  apps::RcpStarController ctl(tb.host(0), flow, ccfg);

  sim::FaultInjector inj(tb.sim(), baseSeed());
  std::uint64_t updatesBeforeReboot = 0;
  inj.at(sim::Time::sec(2), [&] {
    updatesBeforeReboot = ctl.updatesSent();
    tb.sw(0).reboot();
  });

  flow.start(sim::Time::zero());
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(4));

  EXPECT_EQ(updatesBeforeReboot, 0u);   // wedged the whole first half
  EXPECT_GT(ctl.lockContention(), 10u);
  EXPECT_GT(ctl.updatesSent(), 0u);     // unwedged by the wipe
  EXPECT_GE(ctl.lockAcquisitions(), 1u);
  flow.stop();
  ctl.stop();
}

// ----------------------------------------- partial traces (holes) chaos

TEST(ChaosNdb, TppUnawareSwitchYieldsFlaggedPartialTraces) {
  Testbed tb;
  buildChain(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(5)});
  tb.sw(1).setTcpuEnabled(false);  // second hop forwards but never executes
  apps::TraceCollector collector(tb.host(1), /*taskId=*/0,
                                 /*expectedHops=*/2);
  const auto program = apps::makeTraceProgram(8);
  for (int i = 0; i < 20; ++i) {
    tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
  }
  tb.sim().run(sim::Time::ms(50));
  ASSERT_EQ(collector.count(), 20u);
  EXPECT_EQ(collector.incompleteCount(), 20u);
  for (const auto& trace : collector.traces()) {
    // The valid prefix survives: hop 0 parsed, the hole flagged.
    ASSERT_EQ(trace.hops.size(), 1u);
    EXPECT_EQ(trace.hops[0].switchId, tb.sw(0).config().switchId);
    EXPECT_TRUE(trace.incomplete);
  }

  // Re-enabling the TCPU heals the traces.
  tb.sw(1).setTcpuEnabled(true);
  collector.clear();
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
  tb.sim().run(tb.sim().now() + sim::Time::ms(10));
  ASSERT_EQ(collector.count(), 1u);
  EXPECT_EQ(collector.incompleteCount(), 0u);
  EXPECT_EQ(collector.traces()[0].hops.size(), 2u);
}

TEST(ChaosMicroburst, PartialResultsFlaggedButStillSampled) {
  Testbed tb;
  buildChain(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(5)});
  tb.sw(1).setTcpuEnabled(false);
  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = tb.host(1).mac();
  mcfg.dstIp = tb.host(1).ip();
  mcfg.interval = sim::Time::us(200);
  mcfg.expectedHops = 2;
  apps::MicroburstMonitor monitor(tb.host(0), mcfg);
  monitor.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(20));
  monitor.stop();
  EXPECT_GT(monitor.resultsReceived(), 10u);
  EXPECT_EQ(monitor.partialResults(), monitor.resultsReceived());
  // The one TPP-aware hop still produced usable samples.
  ASSERT_EQ(monitor.hopsObserved(), 1u);
  EXPECT_GT(monitor.hopSeries(0).size(), 10u);
}

// ------------------------------------------------ aggregate limiter chaos

TEST(ChaosLimiter, RebootWipesCounterAndRefillerReinstalls) {
  constexpr std::uint16_t kToken = core::kSramBase + 16;
  Testbed tb;
  buildDumbbell(tb, 4, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{1'000'000'000, sim::Time::us(10)});
  host::SramOracleSet oracles(tb.switchCount());
  host::armSramOracle(tb, oracles);
  apps::TokenRefiller::Config rcfg;
  rcfg.dstMac = tb.host(0).mac();
  rcfg.dstIp = tb.host(0).ip();
  rcfg.tokenAddress = kToken;
  rcfg.aggregateRateBps = 8e6;
  rcfg.bucketBytes = 20'000;
  rcfg.period = sim::Time::ms(5);
  apps::TokenRefiller refiller(tb.host(7), rcfg);

  host::FlowSpec spec;
  spec.dstMac = tb.host(4).mac();
  spec.dstIp = tb.host(4).ip();
  spec.srcPort = 27000;
  spec.dstPort = 27000;
  spec.payloadBytes = 1000;
  spec.rateBps = 100e6;
  host::PacedFlow flow(tb.host(0), spec, 1);
  apps::TokenBucketSender::Config scfg;
  scfg.tokenAddress = kToken;
  scfg.chunkBytes = 5000;
  apps::TokenBucketSender sender(tb.host(0), flow, scfg);

  sim::FaultInjector inj(tb.sim(), baseSeed());
  std::uint64_t refillsBefore = 0, sentBefore = 0;
  inj.at(sim::Time::ms(1500), [&] {
    refillsBefore = refiller.refills();
    sentBefore = sender.bytesSent();
    tb.sw(0).reboot();
  });

  refiller.start(sim::Time::zero());
  sender.start(sim::Time::ms(1));
  tb.sim().run(sim::Time::sec(3));
  refiller.stop();
  sender.stop();

  EXPECT_GT(refillsBefore, 2u);
  EXPECT_GT(sentBefore, 0u);
  // The wipe was noticed and SRAM state re-installed from zero...
  EXPECT_GE(refiller.epochResets(), 1u);
  EXPECT_GE(sender.epochResets(), 1u);
  // ...so refills and gated traffic kept flowing afterwards.
  EXPECT_GT(refiller.refills(), refillsBefore);
  EXPECT_GT(sender.bytesSent(), sentBefore);
  const auto tokens = tb.sw(0).scratchRead(kToken);
  ASSERT_TRUE(tokens.has_value());
  EXPECT_LE(*tokens, 20'000u);
  // The refiller's CSTOREs and the sender's reads interleaved across a
  // reboot — all within task 4, so the oracle must see no conflict.
  EXPECT_GT(oracles.accesses(), 0u);
  expectNoOracleDivergence(oracles, kToken);
}

// ------------------------------------------------- race oracle, multi-task

// Two scratch-active tasks (aggregate limiter CASing its token word,
// microburst monitor sampling queues) plus loss on the bottleneck: the
// observed per-word interleavings must stay inside the static verdict —
// the deployment the analyzer certified conflict-free really is.
TEST(ChaosOracle, MultiTaskScratchTrafficMatchesStaticVerdict) {
  constexpr std::uint16_t kToken = core::kSramBase + 16;
  Testbed tb;
  buildDumbbell(tb, 4, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{100'000'000, sim::Time::us(100)});
  host::SramOracleSet oracles(tb.switchCount());
  host::armSramOracle(tb, oracles);

  apps::TokenRefiller::Config rcfg;
  rcfg.dstMac = tb.host(0).mac();
  rcfg.dstIp = tb.host(0).ip();
  rcfg.tokenAddress = kToken;
  rcfg.aggregateRateBps = 8e6;
  rcfg.bucketBytes = 20'000;
  rcfg.period = sim::Time::ms(5);
  apps::TokenRefiller refiller(tb.host(7), rcfg);

  host::FlowSpec spec;
  spec.dstMac = tb.host(4).mac();
  spec.dstIp = tb.host(4).ip();
  spec.srcPort = 27000;
  spec.dstPort = 27000;
  spec.payloadBytes = 1000;
  spec.rateBps = 50e6;
  host::PacedFlow flow(tb.host(0), spec, 1);
  apps::TokenBucketSender::Config scfg;
  scfg.tokenAddress = kToken;
  scfg.chunkBytes = 5000;
  apps::TokenBucketSender sender(tb.host(0), flow, scfg);

  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = tb.host(5).mac();
  mcfg.dstIp = tb.host(5).ip();
  mcfg.interval = sim::Time::ms(1);
  apps::MicroburstMonitor monitor(tb.host(1), mcfg);

  sim::FaultInjector inj(tb.sim(), baseSeed());
  auto& fwd = inj.link("bottleneck", {0.005, 0.0});
  tb.linkAt(8).aToB().setFaultState(&fwd);  // link 8 = the bottleneck

  refiller.start(sim::Time::zero());
  sender.start(sim::Time::ms(1));
  monitor.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(2));
  refiller.stop();
  sender.stop();
  monitor.stop();

  EXPECT_GT(refiller.refills(), 0u);
  EXPECT_GT(oracles.accesses(), 0u);
  expectNoOracleDivergence(oracles, kToken);
}

}  // namespace
}  // namespace tpp
