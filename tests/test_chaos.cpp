// Chaos suite: the fault-injection acceptance scenarios (ctest label
// `chaos`). Every test derives its randomness from TPP_CHAOS_SEED (env,
// default 1) through sim::FaultInjector's named substreams, so a failing
// seed reproduces bit-for-bit with
//     TPP_CHAOS_SEED=<seed> ctest -L chaos
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/apps/aggregate_limiter.hpp"
#include "src/apps/deployment.hpp"
#include "src/apps/microburst.hpp"
#include "src/apps/ndb.hpp"
#include "src/apps/rcpstar.hpp"
#include "src/apps/tpp_tcp.hpp"
#include "src/core/interference.hpp"
#include "src/core/memory_map.hpp"
#include "src/host/tcp.hpp"
#include "src/host/telemetry.hpp"
#include "src/host/topology.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/random.hpp"
#include "src/workload/generators.hpp"
#include "tests/test_util.hpp"

namespace tpp {
namespace {

using host::Testbed;

std::uint64_t baseSeed() { return test::chaosSeed(); }

constexpr std::uint64_t kBottleneck = 10'000'000;

// Cross-checks what an armed SRAM race oracle observed against the static
// interference verdict for the shipped deployment: chaos (drops, reboots,
// dark links) must never produce an interleaving the analyzer ruled out.
void expectNoOracleDivergence(host::SramOracleSet& oracles,
                              std::uint16_t tokenAddress = core::kSramBase) {
  const auto dep = apps::shippedDeployment(tokenAddress);
  const auto report = core::analyzeInterference(dep.tasks, dep.options);
  ASSERT_TRUE(report.ok());
  for (const auto& line : oracles.divergences(report, dep.tasks)) {
    ADD_FAILURE() << "static/dynamic divergence: " << line;
  }
  for (const auto& c : oracles.conflicts()) {
    ADD_FAILURE() << "observed SRAM conflict: " << c.describe();
  }
}

// ------------------------------------------------------------- RCP* chaos

struct RcpChaosOutcome {
  double finalRateBps = 0;
  std::uint64_t drops = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t probesSent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t probeLosses = 0;
  std::uint64_t mdFallbacks = 0;
  std::uint64_t truncated = 0;
  std::uint64_t updates = 0;
  bool operator==(const RcpChaosOutcome&) const = default;
};

struct RcpChaosPlan {
  double dropProbability = 0.0;
  double corruptProbability = 0.0;
  bool reboot = false;               // left switch, at 3 s
  bool downWindow = false;           // bottleneck dark 1.0–1.5 s
};

RcpChaosOutcome runRcpChaos(std::uint64_t seed, const RcpChaosPlan& plan) {
  Testbed tb;
  asic::SwitchConfig scfg;
  scfg.bufferPerQueueBytes = 64 * 1024;
  scfg.utilizationWindow = sim::Time::ms(50);
  buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{kBottleneck, sim::Time::ms(1)}, scfg);
  for (std::size_t s = 0; s < tb.switchCount(); ++s) {
    for (std::size_t port = 0; port < tb.sw(s).config().ports; ++port) {
      tb.sw(s).scratchWrite(
          core::addr::RcpRateRegister,
          static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(port) / 1000),
          port);
    }
  }

  // Race oracle rides along: chaos must not create SRAM interleavings the
  // static interference analyzer ruled out.
  host::SramOracleSet oracles(tb.switchCount());
  host::armSramOracle(tb, oracles);

  host::FlowSpec spec;
  spec.dstMac = tb.host(1).mac();
  spec.dstIp = tb.host(1).ip();
  spec.srcPort = 21000;
  spec.dstPort = 21000;
  spec.payloadBytes = 1000;
  spec.rateBps = 100e3;
  host::PacedFlow flow(tb.host(0), spec, 1);

  apps::RcpStarController::Config ccfg;
  ccfg.params.alpha = 0.5;
  ccfg.params.beta = 1.0;
  ccfg.params.rttSeconds = 0.05;
  ccfg.period = sim::Time::ms(50);
  ccfg.dstMac = spec.dstMac;
  ccfg.dstIp = spec.dstIp;
  ccfg.probeTimeout = sim::Time::ms(5);
  ccfg.probeMaxBackoff = sim::Time::ms(20);
  apps::RcpStarController ctl(tb.host(0), flow, ccfg);

  sim::FaultInjector inj(tb.sim(), seed);
  auto& fwd = inj.link("bottleneck:l->r",
                       {plan.dropProbability, plan.corruptProbability});
  auto& rev = inj.link("bottleneck:r->l",
                       {plan.dropProbability, plan.corruptProbability});
  tb.linkAt(2).aToB().setFaultState(&fwd);  // link 2 = the bottleneck
  tb.linkAt(2).bToA().setFaultState(&rev);
  if (plan.downWindow) {
    inj.linkDownWindow(fwd, sim::Time::ms(1000), sim::Time::ms(1500));
    inj.linkDownWindow(rev, sim::Time::ms(1000), sim::Time::ms(1500));
  }
  if (plan.reboot) {
    inj.at(sim::Time::sec(3), [&] { tb.sw(0).reboot(); });
  }

  flow.start(sim::Time::zero());
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(6));

  RcpChaosOutcome out;
  out.finalRateBps = ctl.currentRateBps();
  out.drops = inj.totalDrops();
  out.corrupted = inj.totalCorrupted();
  out.probesSent = ctl.prober().probesSent();
  out.retransmits = ctl.prober().retransmits();
  out.probeLosses = ctl.probeLosses();
  out.mdFallbacks = ctl.mdFallbacks();
  out.truncated = ctl.truncatedCollects();
  out.updates = ctl.updatesSent();
  flow.stop();
  ctl.stop();
  expectNoOracleDivergence(oracles);
  return out;
}

TEST(ChaosRcp, ConvergesWithin25PercentOfFaultFreeUnderDropAndReboot) {
  const auto seed = baseSeed();
  const auto clean = runRcpChaos(seed, RcpChaosPlan{});
  RcpChaosPlan plan;
  plan.dropProbability = 0.01;  // the acceptance scenario: 1% loss
  plan.corruptProbability = 0.002;
  plan.reboot = true;
  const auto chaos = runRcpChaos(seed, plan);

  EXPECT_GT(chaos.drops, 0u);
  EXPECT_GT(chaos.retransmits, 0u);  // the prober actually worked for this
  EXPECT_GT(chaos.updates, 50u);
  EXPECT_NEAR(chaos.finalRateBps, clean.finalRateBps,
              0.25 * clean.finalRateBps);
  // And the clean run itself sits at the bottleneck.
  EXPECT_NEAR(clean.finalRateBps, static_cast<double>(kBottleneck),
              0.25 * static_cast<double>(kBottleneck));
}

TEST(ChaosRcp, DownWindowTriggersMdFallbackThenRecovers) {
  const auto seed = baseSeed() + 17;
  RcpChaosPlan plan;
  plan.downWindow = true;  // bottleneck dark for 0.5 s
  const auto out = runRcpChaos(seed, plan);
  // Whole control periods lost every probe: the controller must have taken
  // the multiplicative-decrease path instead of coasting on stale samples.
  EXPECT_GT(out.probeLosses, 0u);
  EXPECT_GE(out.mdFallbacks, 5u);
  // ... and still recovered to the bottleneck rate afterwards.
  EXPECT_NEAR(out.finalRateBps, static_cast<double>(kBottleneck),
              0.25 * static_cast<double>(kBottleneck));
}

TEST(ChaosRepro, SameSeedSameRunDifferentSeedDifferentRun) {
  RcpChaosPlan plan;
  plan.dropProbability = 0.01;
  plan.corruptProbability = 0.002;
  plan.reboot = true;
  const auto seed = baseSeed();
  const auto a = runRcpChaos(seed, plan);
  const auto b = runRcpChaos(seed, plan);
  EXPECT_EQ(a, b);  // bit-reproducible end to end
  const auto c = runRcpChaos(seed + 1, plan);
  EXPECT_FALSE(a == c);
}

// ------------------------------------------------------- sharded chaos

// runRcpChaos on a partitioned testbed: left switch + sender on shard 0,
// right switch + receiver on shard 1 (shards == 1 collapses to the legacy
// placement), with one FaultInjector per shard sharing the master seed.
// Link fault substreams fork from (seed, link name) only, so which shard's
// injector owns a state must never change its verdict stream.
RcpChaosOutcome runShardedRcpChaos(std::uint64_t seed,
                                   const RcpChaosPlan& plan,
                                   std::size_t shards) {
  host::ShardPlan sp;
  sp.shards = shards;
  if (shards == 2) {
    sp.switchShard = {0, 1};
    sp.hostShard = {0, 1};
  }
  Testbed tb(sp);
  asic::SwitchConfig scfg;
  scfg.bufferPerQueueBytes = 64 * 1024;
  scfg.utilizationWindow = sim::Time::ms(50);
  buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{kBottleneck, sim::Time::ms(1)}, scfg);
  for (std::size_t s = 0; s < tb.switchCount(); ++s) {
    for (std::size_t port = 0; port < tb.sw(s).config().ports; ++port) {
      tb.sw(s).scratchWrite(
          core::addr::RcpRateRegister,
          static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(port) / 1000),
          port);
    }
  }

  // Each switch's oracle records on its own shard; the set is read only
  // after the run joins.
  host::SramOracleSet oracles(tb.switchCount());
  host::armSramOracle(tb, oracles);

  host::FlowSpec spec;
  spec.dstMac = tb.host(1).mac();
  spec.dstIp = tb.host(1).ip();
  spec.srcPort = 21000;
  spec.dstPort = 21000;
  spec.payloadBytes = 1000;
  spec.rateBps = 100e3;
  host::PacedFlow flow(tb.host(0), spec, 1);

  apps::RcpStarController::Config ccfg;
  ccfg.params.alpha = 0.5;
  ccfg.params.beta = 1.0;
  ccfg.params.rttSeconds = 0.05;
  ccfg.period = sim::Time::ms(50);
  ccfg.dstMac = spec.dstMac;
  ccfg.dstIp = spec.dstIp;
  ccfg.probeTimeout = sim::Time::ms(5);
  ccfg.probeMaxBackoff = sim::Time::ms(20);
  apps::RcpStarController ctl(tb.host(0), flow, ccfg);

  // The bottleneck's forward channel transmits on the left switch's shard,
  // the reverse on the right's — each gets an injector on its own shard.
  sim::FaultInjector injL(tb.simOf(tb.sw(0)), seed);
  sim::FaultInjector injR(tb.simOf(tb.sw(1)), seed);
  auto& fwd = injL.link("bottleneck:l->r",
                        {plan.dropProbability, plan.corruptProbability});
  auto& rev = injR.link("bottleneck:r->l",
                        {plan.dropProbability, plan.corruptProbability});
  tb.linkAt(2).aToB().setFaultState(&fwd);
  tb.linkAt(2).bToA().setFaultState(&rev);
  if (plan.downWindow) {
    injL.linkDownWindow(fwd, sim::Time::ms(1000), sim::Time::ms(1500));
    injR.linkDownWindow(rev, sim::Time::ms(1000), sim::Time::ms(1500));
  }
  if (plan.reboot) {
    injL.at(sim::Time::sec(3), [&] { tb.sw(0).reboot(); });  // shard 0's
  }

  flow.start(sim::Time::zero());
  ctl.start(sim::Time::zero());
  tb.run(sim::Time::sec(6));

  RcpChaosOutcome out;
  out.finalRateBps = ctl.currentRateBps();
  out.drops = injL.totalDrops() + injR.totalDrops();
  out.corrupted = injL.totalCorrupted() + injR.totalCorrupted();
  out.probesSent = ctl.prober().probesSent();
  out.retransmits = ctl.prober().retransmits();
  out.probeLosses = ctl.probeLosses();
  out.mdFallbacks = ctl.mdFallbacks();
  out.truncated = ctl.truncatedCollects();
  out.updates = ctl.updatesSent();
  flow.stop();
  ctl.stop();
  expectNoOracleDivergence(oracles);
  return out;
}

TEST(ChaosSharded, DropRebootReproducibleOnTwoShardPartition) {
  const auto seed = baseSeed();
  RcpChaosPlan plan;
  plan.dropProbability = 0.01;  // the acceptance scenario: 1% loss + reboot
  plan.reboot = true;
  const auto a = runShardedRcpChaos(seed, plan, /*shards=*/2);
  const auto b = runShardedRcpChaos(seed, plan, /*shards=*/2);
  EXPECT_EQ(a, b) << "2-shard chaos run not reproducible from its seed";
  EXPECT_GT(a.drops, 0u);
  EXPECT_GT(a.retransmits, 0u);
  EXPECT_GT(a.updates, 50u);
}

TEST(ChaosSharded, FaultVerdictsIndependentOfShardPlacement) {
  // Collapsing the partition moves both fault states onto one injector on
  // one shard; because substreams hang off (seed, link name) alone — and
  // the sharded runner preserves exact event semantics — every verdict,
  // counter and the final control rate must come out identical.
  const auto seed = baseSeed() + 5;
  RcpChaosPlan plan;
  plan.dropProbability = 0.01;
  plan.reboot = true;
  const auto two = runShardedRcpChaos(seed, plan, /*shards=*/2);
  const auto one = runShardedRcpChaos(seed, plan, /*shards=*/1);
  EXPECT_EQ(two, one);
}

// ------------------------------------------------ CSTORE lock vs. reboot

// Satellite: an RCP* controller holding the bottleneck's CSTORE lock across
// a switch reboot must detect the wipe via the boot epoch and re-acquire —
// never deadlock on a lock word that no longer exists. Swept over >= 10
// seeds with staggered reboot instants.
TEST(ChaosLock, HeldLockSurvivesRebootAcrossTenSeeds) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    const std::uint64_t seed = baseSeed() * 1000 + i;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Testbed tb;
    asic::SwitchConfig scfg;
    scfg.bufferPerQueueBytes = 64 * 1024;
    scfg.utilizationWindow = sim::Time::ms(50);
    buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                  host::LinkParams{kBottleneck, sim::Time::ms(1)}, scfg);
    for (std::size_t s = 0; s < tb.switchCount(); ++s) {
      for (std::size_t port = 0; port < tb.sw(s).config().ports; ++port) {
        tb.sw(s).scratchWrite(
            core::addr::RcpRateRegister,
            static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(port) / 1000),
            port);
      }
    }
    host::FlowSpec spec;
    spec.dstMac = tb.host(1).mac();
    spec.dstIp = tb.host(1).ip();
    spec.srcPort = 21000;
    spec.dstPort = 21000;
    spec.payloadBytes = 1000;
    spec.rateBps = 100e3;
    host::PacedFlow flow(tb.host(0), spec, 1);
    apps::RcpStarController::Config ccfg;
    ccfg.params.alpha = 0.5;
    ccfg.params.beta = 1.0;
    ccfg.params.rttSeconds = 0.05;
    ccfg.period = sim::Time::ms(50);
    ccfg.dstMac = spec.dstMac;
    ccfg.dstIp = spec.dstIp;
    ccfg.probeTimeout = sim::Time::ms(5);
    ccfg.useCstoreLock = true;
    apps::RcpStarController ctl(tb.host(0), flow, ccfg);

    sim::FaultInjector inj(tb.sim(), seed);
    // Stagger the reboot across the control period so different seeds hit
    // different phases of the acquire/update cycle.
    const auto rebootAt =
        sim::Time::ms(1500 + static_cast<std::int64_t>(i) * 77);
    std::uint64_t updatesAtReboot = 0;
    bool heldAtReboot = false;
    inj.at(rebootAt, [&] {
      updatesAtReboot = ctl.updatesSent();
      heldAtReboot = ctl.lockHeld();
      tb.sw(0).reboot();
    });

    flow.start(sim::Time::zero());
    ctl.start(sim::Time::zero());
    tb.sim().run(sim::Time::sec(4));

    EXPECT_GE(ctl.lockAcquisitions(), 1u);
    EXPECT_GT(updatesAtReboot, 0u);   // lock path was live before the fault
    EXPECT_TRUE(heldAtReboot);        // single controller: lock stays held
    // The wiped lock was detected (epoch check), state reset, and updates
    // resumed — the no-deadlock property.
    EXPECT_GE(ctl.lockEpochResets(), 1u);
    EXPECT_GT(ctl.updatesSent(), updatesAtReboot);
    EXPECT_GE(ctl.lockAcquisitions(), 2u);  // re-acquired after the reset
    // No leaked lock: the word is free or owned by this controller.
    const auto lockWord =
        *tb.sw(0).scratchRead(core::addr::RcpLockRegister, 1);
    EXPECT_TRUE(lockWord == 0 || lockWord == ctl.lockOwnerId())
        << "leaked lock word " << lockWord;
    flow.stop();
    ctl.stop();
  }
}

TEST(ChaosLock, ForeignStuckLockClearsOnReboot) {
  // A dead controller's lock blocks ours (contention, no updates); the
  // reboot wipes it and ours proceeds. The complement of the epoch-reset
  // path: here the reboot is what *unsticks* the protocol.
  Testbed tb;
  asic::SwitchConfig scfg;
  scfg.bufferPerQueueBytes = 64 * 1024;
  scfg.utilizationWindow = sim::Time::ms(50);
  buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{kBottleneck, sim::Time::ms(1)}, scfg);
  for (std::size_t port = 0; port < tb.sw(0).config().ports; ++port) {
    tb.sw(0).scratchWrite(
        core::addr::RcpRateRegister,
        static_cast<std::uint32_t>(tb.sw(0).portCapacityBps(port) / 1000),
        port);
  }
  // Port 1 is the bottleneck egress; wedge its lock with a foreign owner.
  ASSERT_TRUE(
      tb.sw(0).scratchWrite(core::addr::RcpLockRegister, 0xdeadbeef, 1));

  host::FlowSpec spec;
  spec.dstMac = tb.host(1).mac();
  spec.dstIp = tb.host(1).ip();
  spec.srcPort = 21000;
  spec.dstPort = 21000;
  spec.payloadBytes = 1000;
  spec.rateBps = 100e3;
  host::PacedFlow flow(tb.host(0), spec, 1);
  apps::RcpStarController::Config ccfg;
  ccfg.params.alpha = 0.5;
  ccfg.params.beta = 1.0;
  ccfg.params.rttSeconds = 0.05;
  ccfg.period = sim::Time::ms(50);
  ccfg.dstMac = spec.dstMac;
  ccfg.dstIp = spec.dstIp;
  ccfg.useCstoreLock = true;
  apps::RcpStarController ctl(tb.host(0), flow, ccfg);

  sim::FaultInjector inj(tb.sim(), baseSeed());
  std::uint64_t updatesBeforeReboot = 0;
  inj.at(sim::Time::sec(2), [&] {
    updatesBeforeReboot = ctl.updatesSent();
    tb.sw(0).reboot();
  });

  flow.start(sim::Time::zero());
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(4));

  EXPECT_EQ(updatesBeforeReboot, 0u);   // wedged the whole first half
  EXPECT_GT(ctl.lockContention(), 10u);
  EXPECT_GT(ctl.updatesSent(), 0u);     // unwedged by the wipe
  EXPECT_GE(ctl.lockAcquisitions(), 1u);
  flow.stop();
  ctl.stop();
}

// ----------------------------------------- partial traces (holes) chaos

TEST(ChaosNdb, TppUnawareSwitchYieldsFlaggedPartialTraces) {
  Testbed tb;
  buildChain(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(5)});
  tb.sw(1).setTcpuEnabled(false);  // second hop forwards but never executes
  apps::TraceCollector collector(tb.host(1), /*taskId=*/0,
                                 /*expectedHops=*/2);
  const auto program = apps::makeTraceProgram(8);
  for (int i = 0; i < 20; ++i) {
    tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
  }
  tb.sim().run(sim::Time::ms(50));
  ASSERT_EQ(collector.count(), 20u);
  EXPECT_EQ(collector.incompleteCount(), 20u);
  for (const auto& trace : collector.traces()) {
    // The valid prefix survives: hop 0 parsed, the hole flagged.
    ASSERT_EQ(trace.hops.size(), 1u);
    EXPECT_EQ(trace.hops[0].switchId, tb.sw(0).config().switchId);
    EXPECT_TRUE(trace.incomplete);
  }

  // Re-enabling the TCPU heals the traces.
  tb.sw(1).setTcpuEnabled(true);
  collector.clear();
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
  tb.sim().run(tb.sim().now() + sim::Time::ms(10));
  ASSERT_EQ(collector.count(), 1u);
  EXPECT_EQ(collector.incompleteCount(), 0u);
  EXPECT_EQ(collector.traces()[0].hops.size(), 2u);
}

TEST(ChaosMicroburst, PartialResultsFlaggedButStillSampled) {
  Testbed tb;
  buildChain(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(5)});
  tb.sw(1).setTcpuEnabled(false);
  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = tb.host(1).mac();
  mcfg.dstIp = tb.host(1).ip();
  mcfg.interval = sim::Time::us(200);
  mcfg.expectedHops = 2;
  apps::MicroburstMonitor monitor(tb.host(0), mcfg);
  monitor.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(20));
  monitor.stop();
  EXPECT_GT(monitor.resultsReceived(), 10u);
  EXPECT_EQ(monitor.partialResults(), monitor.resultsReceived());
  // The one TPP-aware hop still produced usable samples.
  ASSERT_EQ(monitor.hopsObserved(), 1u);
  EXPECT_GT(monitor.hopSeries(0).size(), 10u);
}

// ------------------------------------------------ aggregate limiter chaos

TEST(ChaosLimiter, RebootWipesCounterAndRefillerReinstalls) {
  constexpr std::uint16_t kToken = core::kSramBase + 16;
  Testbed tb;
  buildDumbbell(tb, 4, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{1'000'000'000, sim::Time::us(10)});
  host::SramOracleSet oracles(tb.switchCount());
  host::armSramOracle(tb, oracles);
  apps::TokenRefiller::Config rcfg;
  rcfg.dstMac = tb.host(0).mac();
  rcfg.dstIp = tb.host(0).ip();
  rcfg.tokenAddress = kToken;
  rcfg.aggregateRateBps = 8e6;
  rcfg.bucketBytes = 20'000;
  rcfg.period = sim::Time::ms(5);
  apps::TokenRefiller refiller(tb.host(7), rcfg);

  host::FlowSpec spec;
  spec.dstMac = tb.host(4).mac();
  spec.dstIp = tb.host(4).ip();
  spec.srcPort = 27000;
  spec.dstPort = 27000;
  spec.payloadBytes = 1000;
  spec.rateBps = 100e6;
  host::PacedFlow flow(tb.host(0), spec, 1);
  apps::TokenBucketSender::Config scfg;
  scfg.tokenAddress = kToken;
  scfg.chunkBytes = 5000;
  apps::TokenBucketSender sender(tb.host(0), flow, scfg);

  sim::FaultInjector inj(tb.sim(), baseSeed());
  std::uint64_t refillsBefore = 0, sentBefore = 0;
  inj.at(sim::Time::ms(1500), [&] {
    refillsBefore = refiller.refills();
    sentBefore = sender.bytesSent();
    tb.sw(0).reboot();
  });

  refiller.start(sim::Time::zero());
  sender.start(sim::Time::ms(1));
  tb.sim().run(sim::Time::sec(3));
  refiller.stop();
  sender.stop();

  EXPECT_GT(refillsBefore, 2u);
  EXPECT_GT(sentBefore, 0u);
  // The wipe was noticed and SRAM state re-installed from zero...
  EXPECT_GE(refiller.epochResets(), 1u);
  EXPECT_GE(sender.epochResets(), 1u);
  // ...so refills and gated traffic kept flowing afterwards.
  EXPECT_GT(refiller.refills(), refillsBefore);
  EXPECT_GT(sender.bytesSent(), sentBefore);
  const auto tokens = tb.sw(0).scratchRead(kToken);
  ASSERT_TRUE(tokens.has_value());
  EXPECT_LE(*tokens, 20'000u);
  // The refiller's CSTOREs and the sender's reads interleaved across a
  // reboot — all within task 4, so the oracle must see no conflict.
  EXPECT_GT(oracles.accesses(), 0u);
  expectNoOracleDivergence(oracles, kToken);
}

// ------------------------------------------------- race oracle, multi-task

// Two scratch-active tasks (aggregate limiter CASing its token word,
// microburst monitor sampling queues) plus loss on the bottleneck: the
// observed per-word interleavings must stay inside the static verdict —
// the deployment the analyzer certified conflict-free really is.
TEST(ChaosOracle, MultiTaskScratchTrafficMatchesStaticVerdict) {
  constexpr std::uint16_t kToken = core::kSramBase + 16;
  Testbed tb;
  buildDumbbell(tb, 4, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{100'000'000, sim::Time::us(100)});
  host::SramOracleSet oracles(tb.switchCount());
  host::armSramOracle(tb, oracles);

  apps::TokenRefiller::Config rcfg;
  rcfg.dstMac = tb.host(0).mac();
  rcfg.dstIp = tb.host(0).ip();
  rcfg.tokenAddress = kToken;
  rcfg.aggregateRateBps = 8e6;
  rcfg.bucketBytes = 20'000;
  rcfg.period = sim::Time::ms(5);
  apps::TokenRefiller refiller(tb.host(7), rcfg);

  host::FlowSpec spec;
  spec.dstMac = tb.host(4).mac();
  spec.dstIp = tb.host(4).ip();
  spec.srcPort = 27000;
  spec.dstPort = 27000;
  spec.payloadBytes = 1000;
  spec.rateBps = 50e6;
  host::PacedFlow flow(tb.host(0), spec, 1);
  apps::TokenBucketSender::Config scfg;
  scfg.tokenAddress = kToken;
  scfg.chunkBytes = 5000;
  apps::TokenBucketSender sender(tb.host(0), flow, scfg);

  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = tb.host(5).mac();
  mcfg.dstIp = tb.host(5).ip();
  mcfg.interval = sim::Time::ms(1);
  apps::MicroburstMonitor monitor(tb.host(1), mcfg);

  sim::FaultInjector inj(tb.sim(), baseSeed());
  auto& fwd = inj.link("bottleneck", {0.005, 0.0});
  tb.linkAt(8).aToB().setFaultState(&fwd);  // link 8 = the bottleneck

  refiller.start(sim::Time::zero());
  sender.start(sim::Time::ms(1));
  monitor.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(2));
  refiller.stop();
  sender.stop();
  monitor.stop();

  EXPECT_GT(refiller.refills(), 0u);
  EXPECT_GT(oracles.accesses(), 0u);
  expectNoOracleDivergence(oracles, kToken);
}

// ---------------------------------------------------------------- TCP chaos
//
// The reliable-transport acceptance scenarios: Poisson/bounded-Pareto flows
// over real TCP connections crossing a faulty bottleneck. "Stuck" means a
// client connection that is neither closed cleanly nor failed by the end of
// a run that left ample time — the one outcome the give-up path exists to
// make impossible. (Server-side connections may legitimately idle in
// Established when their client gave up, so done() is asserted on clients.)

struct TcpChaosOutcome {
  std::size_t flows = 0;
  std::size_t finished = 0;
  std::size_t failed = 0;
  std::uint64_t offeredBytes = 0;
  std::uint64_t deliveredBytes = 0;
  std::uint64_t patternErrors = 0;
  std::uint64_t drops = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rtoFires = 0;
  std::vector<std::int64_t> fctNanos;  // per flow, schedule order
  bool operator==(const TcpChaosOutcome&) const = default;
};

struct TcpChaosPlan {
  double dropProbability = 0.0;
  double corruptProbability = 0.0;
  // Deterministic background transfer riding alongside the Poisson flows.
  // The heavy-tailed size draw can produce a tiny workload on an unlucky
  // seed (tens of KB => a few hundred bottleneck packets => a few percent
  // chance that 1% loss never bites); the bulk flow floors the fault trial
  // count in the thousands so "the faults actually bit" holds for ANY seed.
  std::uint64_t bulkBytes = 0;
};

// ~24 short TCP flows (Poisson arrivals, bounded-Pareto sizes) from two
// senders across a 50 Mb/s dumbbell bottleneck carrying the plan's faults.
// The run leaves ~7.5 s of slack past the 400 ms arrival horizon, so every
// flow either completes or gives up — never remains in flight.
TcpChaosOutcome runTcpChaos(std::uint64_t seed, const TcpChaosPlan& plan) {
  Testbed tb;
  asic::SwitchConfig scfg;
  scfg.bufferPerQueueBytes = 128 * 1024;
  buildDumbbell(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{50'000'000, sim::Time::us(50)}, scfg);

  host::TcpConnection::Config ccfg;
  ccfg.minRto = sim::Time::ms(5);
  host::Host& recv = tb.host(2);
  host::TcpListener listener(recv, 23000, ccfg);

  workload::TcpPoissonFlowGenerator::Config gcfg;
  gcfg.dstMac = recv.mac();
  gcfg.dstIp = recv.ip();
  gcfg.flowsPerSecond = 60.0;
  gcfg.minFlowBytes = 2.0 * 1024;
  gcfg.maxFlowBytes = 200.0 * 1024;
  gcfg.horizon = sim::Time::ms(400);
  gcfg.conn = ccfg;
  workload::TcpPoissonFlowGenerator gen({&tb.host(0), &tb.host(1)}, gcfg,
                                        sim::Rng(seed));

  sim::FaultInjector inj(tb.sim(), seed);
  auto& fwd = inj.link("bottleneck:l->r",
                       {plan.dropProbability, plan.corruptProbability});
  auto& rev = inj.link("bottleneck:r->l",
                       {plan.dropProbability, plan.corruptProbability});
  tb.linkAt(4).aToB().setFaultState(&fwd);  // link 4 = the bottleneck
  tb.linkAt(4).bToA().setFaultState(&rev);

  std::unique_ptr<host::TcpConnection> bulk;
  if (plan.bulkBytes > 0) {
    bulk = std::make_unique<host::TcpConnection>(tb.host(0), ccfg);
    tb.sim().scheduleAt(sim::Time::ms(1), [&] {
      bulk->connect(recv.mac(), recv.ip(), 23000, 39999, plan.bulkBytes);
    });
  }

  gen.start(sim::Time::ms(1));
  tb.sim().run(sim::Time::sec(8));

  TcpChaosOutcome out;
  out.flows = gen.flowCount();
  out.finished = gen.finishedCount();
  out.failed = gen.failedCount();
  out.deliveredBytes = listener.deliveredBytes();
  out.patternErrors = listener.patternErrors();
  out.drops = inj.totalDrops();
  out.corrupted = inj.totalCorrupted();
  for (std::size_t f = 0; f < gen.flowCount(); ++f) {
    const auto& rec = gen.records()[f];
    out.offeredBytes += rec.bytes;
    out.fctNanos.push_back(rec.finished() ? rec.fct().nanos() : -1);
    out.retransmits += gen.connection(f).retransmits();
    out.rtoFires += gen.connection(f).rtoFires();
    EXPECT_TRUE(gen.connection(f).done())
        << "flow " << f << " stuck in state "
        << static_cast<int>(gen.connection(f).state());
  }
  if (bulk) {
    EXPECT_TRUE(bulk->closedCleanly()) << "bulk flow: " << bulk->error();
    out.offeredBytes += plan.bulkBytes;
    out.retransmits += bulk->retransmits();
    out.rtoFires += bulk->rtoFires();
  }
  return out;
}

TEST(ChaosTcp, DropAndCorruptEveryByteDeliveredExactlyOnce) {
  const auto seed = baseSeed();
  TcpChaosPlan plan;
  plan.dropProbability = 0.01;  // the acceptance scenario: 1% loss
  plan.corruptProbability = 0.01;  // high enough that any seed sees flips
  plan.bulkBytes = 2 * 1024 * 1024;  // floors fault trials for any seed
  const auto out = runTcpChaos(seed, plan);

  EXPECT_GT(out.flows, 5u);
  EXPECT_EQ(out.finished, out.flows);  // zero stuck, zero given-up
  EXPECT_EQ(out.failed, 0u);
  // Exactly-once: the cumulative-ACK frontier advanced over every offered
  // byte, and every delivered byte matched its stream offset's pattern.
  EXPECT_EQ(out.deliveredBytes, out.offeredBytes);
  EXPECT_EQ(out.patternErrors, 0u);
  // The faults actually bit, and the machinery actually recovered.
  EXPECT_GT(out.drops, 0u);
  EXPECT_GT(out.corrupted, 0u);
  EXPECT_GT(out.retransmits, 0u);

  // Bit-reproducible from (seed, scenario) alone.
  const auto again = runTcpChaos(seed, plan);
  EXPECT_EQ(out, again);
}

TEST(ChaosTcp, FctInflationBoundedAcrossTenSeeds) {
  // Same seed => same flow schedule, so clean and chaos runs pair up
  // flow-for-flow. 1% loss may cost a flow RTO stalls but must never cost
  // it seconds: the additive bound is generous enough for any nightly seed
  // while still catching a stuck-retransmission regression.
  TcpChaosPlan plan;
  plan.dropProbability = 0.01;
  plan.corruptProbability = 0.01;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const std::uint64_t seed = baseSeed() * 1000 + i;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto clean = runTcpChaos(seed, TcpChaosPlan{});
    const auto chaos = runTcpChaos(seed, plan);
    ASSERT_EQ(clean.flows, chaos.flows);
    ASSERT_EQ(chaos.finished, chaos.flows);
    ASSERT_EQ(clean.finished, clean.flows);
    for (std::size_t f = 0; f < clean.flows; ++f) {
      EXPECT_LE(chaos.fctNanos[f],
                clean.fctNanos[f] + sim::Time::sec(3).nanos())
          << "flow " << f << " inflated from " << clean.fctNanos[f]
          << "ns to " << chaos.fctNanos[f] << "ns";
    }
  }
}

TEST(ChaosTcp, DownWindowRiddenOutOrSurfacedNeverStuck) {
  // The bottleneck goes dark for 500 ms mid-transfer. A patient connection
  // (default retry budget) must ride it out on capped exponential backoff
  // and still deliver every byte; an impatient one that runs out of budget
  // inside the window must surface a connection error — the two permitted
  // outcomes. Stuck is not one of them.
  Testbed tb;
  asic::SwitchConfig scfg;
  scfg.bufferPerQueueBytes = 128 * 1024;
  buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{10'000'000, sim::Time::us(50)}, scfg);

  host::TcpConnection::Config rider;
  rider.minRto = sim::Time::ms(5);  // backoff 5,10,…,200 spans the window
  host::TcpListener listener(tb.host(1), 23000, rider);

  sim::FaultInjector inj(tb.sim(), baseSeed());
  auto& fwd = inj.link("bottleneck:l->r", {});
  auto& rev = inj.link("bottleneck:r->l", {});
  tb.linkAt(2).aToB().setFaultState(&fwd);
  tb.linkAt(2).bToA().setFaultState(&rev);
  inj.linkDownWindow(fwd, sim::Time::ms(1000), sim::Time::ms(1500));
  inj.linkDownWindow(rev, sim::Time::ms(1000), sim::Time::ms(1500));

  // Patient: 2 MB at 10 Mb/s spans [0, ~1.7s+] — mid-stream when the link
  // dies.
  host::TcpConnection patient(tb.host(0), rider);
  patient.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000,
                  2u << 20);

  // Impatient: tries to open mid-window with a 2-timeout budget.
  host::TcpConnection::Config tiny;
  tiny.initialRto = sim::Time::ms(10);
  tiny.maxRto = sim::Time::ms(20);
  tiny.maxRetries = 2;
  host::TcpConnection impatient(tb.host(0), tiny);
  tb.sim().scheduleAt(sim::Time::ms(1050), [&] {
    impatient.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30001,
                      10'000);
  });

  tb.sim().run(sim::Time::sec(6));

  EXPECT_TRUE(patient.closedCleanly()) << patient.error();
  EXPECT_GT(patient.rtoFires(), 2u);  // it backed off through the window
  EXPECT_EQ(listener.connection(0).deliveredBytes(), 2u << 20);
  EXPECT_EQ(listener.patternErrors(), 0u);

  EXPECT_TRUE(impatient.failed());
  EXPECT_TRUE(impatient.done());
  EXPECT_FALSE(impatient.error().empty());
  // The give-up happened during the darkness, not after some later timeout.
  ASSERT_TRUE(impatient.closedAt().has_value());
  EXPECT_LT(*impatient.closedAt(), sim::Time::ms(1500));
}

TEST(ChaosTcp, RebootMidFlowWithTppControllerStillCompletes) {
  // A switch reboot (SRAM wipe + BootEpoch bump) mid-transfer: the TPP
  // controller must notice the epoch change and skip that round rather
  // than act on freshly-zeroed counters, and the transfer itself must be
  // oblivious — TCP keeps no switch state.
  Testbed tb;
  asic::SwitchConfig scfg;
  scfg.bufferPerQueueBytes = 64 * 1024;
  buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{50'000'000, sim::Time::us(50)}, scfg);
  host::TcpListener listener(tb.host(1), 23000);
  host::TcpConnection conn(tb.host(0), {});
  conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000, 2u << 20);
  apps::TppTcpController ctl(tb.host(0), conn, {});
  ctl.start(sim::Time::zero());

  sim::FaultInjector inj(tb.sim(), baseSeed());
  inj.at(sim::Time::ms(100), [&] { tb.sw(1).reboot(); });

  tb.sim().run(sim::Time::sec(5));
  ctl.stop();

  EXPECT_TRUE(conn.closedCleanly()) << conn.error();
  EXPECT_EQ(listener.deliveredBytes(), 2u << 20);
  EXPECT_EQ(listener.patternErrors(), 0u);
  EXPECT_GT(ctl.probesSent(), 10u);
  EXPECT_GE(ctl.epochChanges(), 1u);
}

// ----------------------------------------------------- TCP incast tail FCT

struct TcpIncastResult {
  std::size_t finished = 0;
  sim::Time maxFct = sim::Time::zero();  // p99 ~ max for 8 flows
  std::uint64_t rtoFires = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t probeCuts = 0;
};

// Fault-free 8-to-1 incast into a shallow-buffered star switch; entirely
// deterministic (no randomness), so the TPP-vs-plain comparison holds for
// any chaos seed. The regime is chosen so the transfer is long enough for
// steady-state behaviour to dominate the synchronized opening burst (which
// overflows the buffer before any probe echo can return): there the probe
// cuts keep the queue off the cliff and the win is robust across a wide
// band of thresholds (2-6 KB) and cut factors (0.6-0.8).
TcpIncastResult runTcpIncast(bool withTpp) {
  Testbed tb;
  asic::SwitchConfig scfg;
  scfg.ports = 9;
  scfg.bufferPerQueueBytes = 16 * 1024;
  buildStar(tb, 8, host::LinkParams{1'000'000'000, sim::Time::us(5)}, scfg);
  host::Host& recv = tb.host(8);
  host::TcpListener listener(recv, 23000);

  workload::TcpIncast::Config icfg;
  icfg.dstMac = recv.mac();
  icfg.dstIp = recv.ip();
  icfg.burstBytes = 512 * 1024;
  std::vector<host::Host*> senders;
  for (std::size_t i = 0; i < 8; ++i) senders.push_back(&tb.host(i));
  workload::TcpIncast incast(senders, icfg);
  incast.start(sim::Time::zero());

  std::vector<std::unique_ptr<apps::TppTcpController>> ctls;
  if (withTpp) {
    apps::TppTcpController::Config tcfg;
    tcfg.queueThresholdBytes = 4 * 1024;
    tcfg.cutFactor = 0.7;
    for (std::size_t i = 0; i < 8; ++i) {
      ctls.push_back(std::make_unique<apps::TppTcpController>(
          tb.host(i), incast.connection(i), tcfg));
      ctls.back()->start(sim::Time::us(50));
    }
  }

  tb.sim().run(sim::Time::sec(10));

  TcpIncastResult r;
  r.finished = incast.finishedCount();
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& rec = incast.records()[i];
    if (rec.finished()) r.maxFct = std::max(r.maxFct, rec.fct());
    r.rtoFires += incast.connection(i).rtoFires();
    r.retransmits += incast.connection(i).retransmits();
  }
  for (const auto& c : ctls) r.probeCuts += c->probeCuts();
  return r;
}

TEST(ChaosTcpIncast, TppProbeCutsImproveTailFct) {
  const auto plain = runTcpIncast(/*withTpp=*/false);
  const auto tpp = runTcpIncast(/*withTpp=*/true);

  ASSERT_EQ(plain.finished, 8u);
  ASSERT_EQ(tpp.finished, 8u);
  // Plain TCP discovers the 16 KB buffer by overflowing it.
  EXPECT_GT(plain.retransmits, 0u);
  // The probe path actually engaged…
  EXPECT_GT(tpp.probeCuts, 0u);
  // …and early cwnd cuts beat loss-driven recovery on the tail.
  EXPECT_LT(tpp.maxFct, plain.maxFct);
  EXPECT_LE(tpp.retransmits, plain.retransmits);
}

}  // namespace
}  // namespace tpp
