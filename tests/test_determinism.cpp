// Whole-experiment determinism: identical configurations must produce
// bit-identical results, run to run. This is what makes every number in
// EXPERIMENTS.md reproducible and every regression bisectable.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/apps/microburst.hpp"
#include "src/apps/rcpstar.hpp"
#include "src/core/memory_map.hpp"
#include "src/host/topology.hpp"
#include "src/workload/generators.hpp"

namespace tpp {
namespace {

using host::Testbed;

std::vector<std::pair<std::int64_t, double>> runRcpStarExperiment() {
  Testbed tb;
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 64 * 1024;
  buildDumbbell(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{10'000'000, sim::Time::ms(1)}, cfg);
  for (std::size_t s = 0; s < tb.switchCount(); ++s) {
    for (std::size_t p = 0; p < tb.sw(s).config().ports; ++p) {
      tb.sw(s).scratchWrite(
          core::addr::RcpRateRegister,
          static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(p) / 1000), p);
    }
  }
  host::FlowSpec spec;
  spec.dstMac = tb.host(2).mac();
  spec.dstIp = tb.host(2).ip();
  spec.srcPort = 21000;
  spec.dstPort = 21000;
  spec.rateBps = 100e3;
  host::PacedFlow flow(tb.host(0), spec, 1);
  apps::RcpStarController::Config ccfg;
  ccfg.period = sim::Time::ms(50);
  ccfg.params.rttSeconds = 0.05;
  ccfg.dstMac = spec.dstMac;
  ccfg.dstIp = spec.dstIp;
  apps::RcpStarController controller(tb.host(0), flow, ccfg);
  flow.start(sim::Time::zero());
  controller.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(3));
  std::vector<std::pair<std::int64_t, double>> out;
  for (const auto& [t, v] : controller.rateSeries().points()) {
    out.emplace_back(t.nanos(), v);
  }
  flow.stop();
  controller.stop();
  return out;
}

TEST(Determinism, RcpStarSeriesIsBitIdentical) {
  const auto a = runRcpStarExperiment();
  const auto b = runRcpStarExperiment();
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "timestamp " << i;
    EXPECT_EQ(a[i].second, b[i].second) << "value " << i;  // exact doubles
  }
}

std::vector<double> runIncastExperiment(std::uint64_t seed) {
  Testbed tb;
  buildStar(tb, 4, host::LinkParams{1'000'000'000, sim::Time::us(2)});
  // Two bursty senders whose on-periods overlap build real queues at the
  // receiver port, so the sampled series actually depends on the seed.
  workload::OnOffSender::Config ocfg;
  ocfg.flow.dstMac = tb.host(4).mac();
  ocfg.flow.dstIp = tb.host(4).ip();
  ocfg.peakRateBps = 800e6;
  ocfg.meanOn = sim::Time::ms(3);
  ocfg.meanOff = sim::Time::ms(3);
  workload::OnOffSender sender(tb.host(0), ocfg, sim::Rng(seed));
  ocfg.flow.srcPort = 20001;
  workload::OnOffSender sender2(tb.host(2), ocfg,
                                sim::Rng(seed).fork("second"));
  sender.start(sim::Time::zero());
  sender2.start(sim::Time::zero());

  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = tb.host(4).mac();
  mcfg.dstIp = tb.host(4).ip();
  mcfg.interval = sim::Time::us(500);
  apps::MicroburstMonitor monitor(tb.host(1), mcfg);
  monitor.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(100));
  sender.stop();
  sender2.stop();
  monitor.stop();
  std::vector<double> out;
  for (const auto& [t, v] : monitor.hopSeries(0).points()) out.push_back(v);
  return out;
}

TEST(Determinism, StochasticWorkloadsReproduceBySeed) {
  const auto a = runIncastExperiment(42);
  const auto b = runIncastExperiment(42);
  EXPECT_EQ(a, b);
  // And a different seed genuinely changes the workload.
  const auto c = runIncastExperiment(43);
  EXPECT_NE(a, c);
}

TEST(Determinism, SwitchCountersIdenticalAcrossRuns) {
  auto counters = [] {
    Testbed tb;
    buildChain(tb, 3, host::LinkParams{1'000'000'000, sim::Time::us(1)});
    workload::PoissonFlowGenerator::Config cfg;
    cfg.dstMac = tb.host(1).mac();
    cfg.dstIp = tb.host(1).ip();
    cfg.flowsPerSecond = 400;
    workload::PoissonFlowGenerator gen({&tb.host(0)}, cfg, sim::Rng(7));
    gen.start(sim::Time::zero());
    tb.sim().run(sim::Time::ms(200));
    gen.stop();
    tb.sim().run(tb.sim().now() + sim::Time::ms(50));
    std::vector<std::uint64_t> out;
    for (std::size_t s = 0; s < tb.switchCount(); ++s) {
      out.push_back(tb.sw(s).stats().totalRxPackets);
      out.push_back(tb.sw(s).stats().totalTxPackets);
      out.push_back(tb.sw(s).stats().totalDrops);
      out.push_back(tb.sw(s).portStats(1).txBytes);
    }
    return out;
  };
  EXPECT_EQ(counters(), counters());
}

}  // namespace
}  // namespace tpp
