// Resident-hook machinery: the salted column hash family, per-packet
// materialization, and the executeResident/execute differential the Tcpu
// header promises (semantics identical to wire execution in stack mode).
#include "src/core/hook.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "src/core/program.hpp"
#include "src/monitor/sketch.hpp"
#include "src/net/ethernet.hpp"
#include "src/tcpu/tcpu.hpp"

namespace tpp::core {
namespace {

// ------------------------------------------------------------ hash family

TEST(HookMix, ColumnsCoverEverySlot) {
  constexpr std::uint32_t kSlots = 64;
  std::vector<std::uint32_t> hits(kSlots, 0);
  for (std::uint64_t f = 0; f < 64 * kSlots; ++f) {
    ++hits[hookColumn(f * 0x9e3779b97f4a7c15ull, 1, kSlots)];
  }
  for (std::uint32_t c = 0; c < kSlots; ++c) {
    EXPECT_GT(hits[c], 0u) << "column " << c << " never selected";
  }
}

// Regression for the low-bit locality failure: raw FNV-1a's `mix % 2^k`
// depends only on the low k bits of its state, and the sketch's row salts
// differ in a single low byte — so two flows that collided in one row's
// column collided in EVERY row's column, and min-over-rows degenerated to
// a single hash. The (eps, delta) accuracy bound rests on the rows being
// independent draws, which is exactly what this asserts: among flows that
// collide with a reference flow in row 0, only ~1/width may also collide
// in row 1.
TEST(HookMix, RowSaltsGiveIndependentColumns) {
  constexpr std::uint32_t kWidth = 64;
  const std::uint64_t salt0 = monitor::CountMinSketch::rowSalt(0);
  const std::uint64_t salt1 = monitor::CountMinSketch::rowSalt(1);
  const std::uint64_t ref = 0x1234'5678'9abc'def0ull;
  const std::uint32_t refCol0 = hookColumn(ref, salt0, kWidth);
  const std::uint32_t refCol1 = hookColumn(ref, salt1, kWidth);

  std::uint32_t row0Collisions = 0;
  std::uint32_t bothCollisions = 0;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1 << 14; ++i) {
    const std::uint64_t f = rng();
    if (hookColumn(f, salt0, kWidth) != refCol0) continue;
    ++row0Collisions;
    if (hookColumn(f, salt1, kWidth) == refCol1) ++bothCollisions;
  }
  // ~256 row-0 collisions expected; of those, ~1/64 should carry into
  // row 1. The buggy hash carried ALL of them (bothCollisions ==
  // row0Collisions).
  ASSERT_GT(row0Collisions, 100u);
  EXPECT_LT(bothCollisions * 8, row0Collisions)
      << bothCollisions << " of " << row0Collisions
      << " row-0 collisions repeated in row 1 — the row hashes are not "
         "independent";
}

TEST(HookFlowSig, IsAlwaysNonZero) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(hookFlowSig(rng(), rng()), 0u);
  }
}

TEST(HookColumn, ZeroSlotsIsSafe) {
  EXPECT_EQ(hookColumn(123, 456, 0), 0u);
}

// -------------------------------------------------------- materialization

TEST(MaterializeHook, PatchesAddressesAndPmemSources) {
  ProgramBuilder b;
  b.task(8);
  b.imm(0);  // pmem[0]: FlowSig target
  b.imm(0);  // pmem[1]: SpinBit target
  b.imm(0);  // pmem[2]: SpinInverse target
  b.load(0x1000, 0);
  b.store(0x1000, 1);
  HookProgram hook;
  hook.program = *b.build();
  HookProgram::AddrPatch patch;
  patch.baseAddress = 0xe000;
  patch.slots = 16;
  patch.slotStride = 4;
  patch.salt = 99;
  patch.targets = {{0, 0}, {1, 3}};
  hook.addrPatches.push_back(patch);
  hook.pmemPatches = {{0, HookProgram::PmemSource::FlowSig, 5},
                      {1, HookProgram::PmemSource::SpinBit, 0},
                      {2, HookProgram::PmemSource::SpinInverse, 0}};

  const std::uint64_t flow = 0xdeadbeefull;
  const std::uint32_t col = 9;
  const Program m = materializeHook(hook, col, flow, /*spin=*/1);
  EXPECT_EQ(m.instructions[0].addr, 0xe000 + col * 4);
  EXPECT_EQ(m.instructions[1].addr, 0xe000 + col * 4 + 3);
  EXPECT_EQ(m.initialPmem[0], hookFlowSig(flow, 5));
  EXPECT_EQ(m.initialPmem[1], 1u);
  EXPECT_EQ(m.initialPmem[2], 0u);

  const Program m0 = materializeHook(hook, col, flow, /*spin=*/0);
  EXPECT_EQ(m0.initialPmem[1], 0u);
  EXPECT_EQ(m0.initialPmem[2], 1u);
}

// ------------------------------------- resident vs wire differential

// In-memory switch address space shared by both execution paths.
class FakeMemory final : public tcpu::AddressSpace {
 public:
  std::map<std::uint16_t, std::uint32_t> words;
  std::uint16_t readOnlyAbove = 0xffff;

  ReadResult read(std::uint16_t address, std::uint16_t) override {
    const auto it = words.find(address);
    if (it == words.end()) {
      return ReadResult::fail(Fault::UnmappedAddress);
    }
    return ReadResult::ok(it->second);
  }

  Fault write(std::uint16_t address, std::uint32_t value,
              std::uint16_t) override {
    if (address >= readOnlyAbove) return Fault::ReadOnlyViolation;
    if (!words.contains(address)) return Fault::UnmappedAddress;
    words[address] = value;
    return Fault::None;
  }
};

// Random stack-mode programs over a tiny mapped region must behave
// identically on the wire path (decode + TppView) and the resident path
// (pre-decoded instructions + caller-owned pmem): same report, same final
// packet memory, same final switch memory.
TEST(ExecuteResident, MatchesWireExecutionOnRandomPrograms) {
  std::mt19937_64 rng(42);
  constexpr std::uint16_t kBase = 0xb000;
  constexpr int kMapped = 6;

  for (int trial = 0; trial < 500; ++trial) {
    Program p;
    p.mode = AddressingMode::Stack;
    p.taskId = 8;
    p.pmemWords = 16;
    const std::size_t numImm = rng() % 6;
    for (std::size_t i = 0; i < numImm; ++i) {
      p.initialPmem.push_back(static_cast<std::uint32_t>(rng() % 7));
    }
    p.initialSp = static_cast<std::uint16_t>(numImm * kWordSize);
    const std::size_t numInstr = 1 + rng() % 6;
    for (std::size_t i = 0; i < numInstr; ++i) {
      static constexpr Opcode kOps[] = {
          Opcode::Push, Opcode::Load, Opcode::Store, Opcode::Add,
          Opcode::Sub,  Opcode::Min,  Opcode::Max,   Opcode::Cstore,
          Opcode::Cexec};
      Instruction ins;
      ins.op = kOps[rng() % std::size(kOps)];
      // Occasionally unmapped, to diff the fault paths too.
      ins.addr = static_cast<std::uint16_t>(kBase + rng() % (kMapped + 1));
      ins.pmemOff = static_cast<std::uint8_t>(rng() % 8);
      p.instructions.push_back(ins);
    }

    FakeMemory wireMem;
    for (int w = 0; w < kMapped; ++w) {
      wireMem.words[static_cast<std::uint16_t>(kBase + w)] =
          static_cast<std::uint32_t>(rng() % 5);
    }
    FakeMemory residentMem = wireMem;

    // Wire path.
    auto packet = buildTppFrame(net::MacAddress::fromIndex(1),
                                net::MacAddress::fromIndex(2), p);
    auto view = TppView::at(*packet, net::kEthernetHeaderSize);
    ASSERT_TRUE(view);
    tcpu::Tcpu tcpu;
    const auto wireReport = tcpu.execute(*view, wireMem);

    // Resident path: same decoded instructions, caller-owned pmem image.
    std::vector<std::uint32_t> pmem(p.pmemWords, 0);
    std::copy(p.initialPmem.begin(), p.initialPmem.end(), pmem.begin());
    const auto residentReport = tcpu.executeResident(
        p.instructions, pmem, p.taskId, residentMem, p.initialSp);

    EXPECT_EQ(wireReport.executed, residentReport.executed) << "trial "
                                                            << trial;
    EXPECT_EQ(wireReport.skipped, residentReport.skipped);
    EXPECT_EQ(wireReport.fault, residentReport.fault);
    EXPECT_EQ(wireReport.cexecSkipped, residentReport.cexecSkipped);
    EXPECT_EQ(wireReport.cycles, residentReport.cycles);
    for (std::size_t w = 0; w < p.pmemWords; ++w) {
      EXPECT_EQ(view->pmemWord(w), pmem[w])
          << "trial " << trial << " pmem word " << w;
    }
    EXPECT_EQ(wireMem.words, residentMem.words) << "trial " << trial;
  }
}

}  // namespace
}  // namespace tpp::core
