// Wireless SNR annotation (paper §2.3, "Other possibilities").
#include <gtest/gtest.h>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/host/collector.hpp"
#include "src/host/topology.hpp"

namespace tpp::asic {
namespace {

using host::Testbed;

TEST(Wireless, SnrIsInTheMemoryMap) {
  EXPECT_EQ(core::MemoryMap::standard().resolve("Link:SNR"),
            core::addr::WirelessSnr);
  EXPECT_FALSE(core::MemoryMap::writable(core::addr::WirelessSnr));
}

TEST(Wireless, SnrDefaultsToZero) {
  Testbed tb;
  buildChain(tb, 1, host::LinkParams{100'000'000, sim::Time::us(10)});
  EXPECT_EQ(tb.sw(0).portSnr(0), 0u);
}

TEST(Wireless, PhySetsAndTppReadsEgressSnr) {
  Testbed tb;
  buildChain(tb, 2, host::LinkParams{100'000'000, sim::Time::us(10)});
  // sw0's port 0 faces h0 (the "station"); sw1's port 1 faces h1.
  tb.sw(0).setPortSnr(0, 2375);  // 23.75 dB
  tb.sw(1).setPortSnr(1, 3150);

  core::ProgramBuilder b;
  b.push(core::addr::WirelessSnr);
  b.reserve(4);
  std::optional<core::ExecutedTpp> result;
  // Downlink probe: h1 -> h0, so the egress port at sw0 is the wireless one.
  tb.host(0).onTppArrival([&](const core::ExecutedTpp& t) { result = t; });
  tb.host(1).sendUdpWithTpp(tb.host(0).mac(), tb.host(0).ip(), 40, 40, {},
                            *b.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  const auto records = host::splitStackRecords(*result, 1);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1][0], 2375u);  // hop 2 = sw0, egress toward h0
}

TEST(Wireless, TppWriteToSnrFaults) {
  Testbed tb;
  buildChain(tb, 1, host::LinkParams{100'000'000, sim::Time::us(10)});
  core::ProgramBuilder b;
  b.storeImm(core::addr::WirelessSnr, 9999);
  std::optional<core::ExecutedTpp> result;
  tb.host(0).onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), *b.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  EXPECT_EQ(result->header.faultCode, core::Fault::ReadOnlyViolation);
  EXPECT_EQ(tb.sw(0).portSnr(1), 0u);
}

TEST(Wireless, RapidSnrChangesVisiblePerProbe) {
  Testbed tb;
  buildChain(tb, 1, host::LinkParams{100'000'000, sim::Time::us(10)});
  core::ProgramBuilder b;
  b.push(core::addr::WirelessSnr);
  b.reserve(2);
  const auto program = *b.build();
  std::vector<std::uint32_t> seen;
  tb.host(0).onTppResult([&](const core::ExecutedTpp& t) {
    const auto recs = host::splitStackRecords(t, 1);
    if (!recs.empty()) seen.push_back(recs[0][0]);
  });
  for (int i = 0; i < 5; ++i) {
    tb.sim().schedule(sim::Time::ms(i), [&, i] {
      tb.sw(0).setPortSnr(1, static_cast<std::uint32_t>(1000 + 100 * i));
      tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
    });
  }
  tb.sim().run();
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{1000, 1100, 1200, 1300, 1400}));
}

}  // namespace
}  // namespace tpp::asic
