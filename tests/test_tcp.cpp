// host::TcpConnection / TcpListener: the state machine under clean and
// lossy fabrics, plus the TppTcpController's early-cut behavior.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/apps/tpp_tcp.hpp"
#include "src/host/collector.hpp"
#include "src/host/tcp.hpp"
#include "src/host/telemetry.hpp"
#include "src/host/topology.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/trace.hpp"

namespace tpp {
namespace {

using host::TcpConnection;
using host::TcpListener;
using host::TcpSegment;
using host::Testbed;

host::LinkParams fastLink() {
  return host::LinkParams{1'000'000'000, sim::Time::us(5)};
}

// ------------------------------------------------------------ wire format

TEST(TcpSegment, SerializeParseRoundTrip) {
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  TcpSegment s;
  s.flags = TcpSegment::kAck | TcpSegment::kFin;
  s.seq = 0x01020304;
  s.ack = 0x0a0b0c0d;
  s.wnd = 65536;
  s.payload = payload;
  std::vector<std::uint8_t> wire;
  s.serialize(wire);
  const auto parsed = TcpSegment::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flags, s.flags);
  EXPECT_EQ(parsed->seq, s.seq);
  EXPECT_EQ(parsed->ack, s.ack);
  EXPECT_EQ(parsed->wnd, s.wnd);
  ASSERT_EQ(parsed->payload.size(), payload.size());
}

TEST(TcpSegment, AnySingleBitFlipIsRejected) {
  std::vector<std::uint8_t> payload(32);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  TcpSegment s;
  s.flags = TcpSegment::kAck;
  s.seq = 1234;
  s.ack = 5678;
  s.wnd = 1000;
  s.payload = payload;
  std::vector<std::uint8_t> wire;
  s.serialize(wire);
  ASSERT_TRUE(TcpSegment::parse(wire).has_value());
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = wire;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(TcpSegment::parse(flipped).has_value())
          << "bit " << bit << " of byte " << byte << " slipped through";
    }
  }
}

TEST(TcpSegment, TruncationIsRejected) {
  std::vector<std::uint8_t> payload(10, 0xab);
  TcpSegment s;
  s.payload = payload;
  std::vector<std::uint8_t> wire;
  s.serialize(wire);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(
        TcpSegment::parse(std::span(wire.data(), cut)).has_value());
  }
}

// --------------------------------------------------------- clean fabric

struct ChainRig {
  explicit ChainRig(std::size_t switches = 1,
                    TcpConnection::Config cfg = {}) {
    buildChain(tb, switches, fastLink());
    listener = std::make_unique<TcpListener>(tb.host(1), kPort, cfg);
    conn = std::make_unique<TcpConnection>(tb.host(0), cfg);
  }

  void connect(std::uint64_t bytes) {
    conn->connect(tb.host(1).mac(), tb.host(1).ip(), kPort, 30000, bytes);
  }

  static constexpr std::uint16_t kPort = 23000;
  Testbed tb;
  std::unique_ptr<TcpListener> listener;
  std::unique_ptr<TcpConnection> conn;
};

TEST(TcpConnection, HandshakeTransferAndTeardown) {
  ChainRig rig;
  bool established = false;
  bool closed = false;
  rig.conn->onEstablished([&] { established = true; });
  rig.conn->onClosed([&] { closed = true; });
  rig.connect(64 * 1024);
  rig.tb.sim().run(sim::Time::ms(100));

  EXPECT_TRUE(established);
  EXPECT_TRUE(closed);
  EXPECT_TRUE(rig.conn->closedCleanly());
  EXPECT_EQ(rig.conn->state(), TcpConnection::State::Closed);
  EXPECT_EQ(rig.conn->bytesAcked(), 64u * 1024);
  EXPECT_EQ(rig.conn->retransmits(), 0u);

  ASSERT_EQ(rig.listener->connectionCount(), 1u);
  const TcpConnection& srv = rig.listener->connection(0);
  EXPECT_EQ(srv.deliveredBytes(), 64u * 1024);
  EXPECT_EQ(srv.patternErrors(), 0u);
  EXPECT_TRUE(srv.closedCleanly());
}

TEST(TcpConnection, ZeroByteTransferStillHandshakesAndCloses) {
  ChainRig rig;
  rig.connect(0);
  rig.tb.sim().run(sim::Time::ms(50));
  EXPECT_TRUE(rig.conn->closedCleanly());
  ASSERT_EQ(rig.listener->connectionCount(), 1u);
  EXPECT_EQ(rig.listener->deliveredBytes(), 0u);
  EXPECT_TRUE(rig.listener->connection(0).closedCleanly());
}

TEST(TcpConnection, SlowStartGrowsCwndExponentially) {
  TcpConnection::Config cfg;
  cfg.initialCwndSegments = 2;
  ChainRig rig(1, cfg);
  const std::uint32_t initialCwnd = 2 * cfg.mss;
  rig.connect(256 * 1024);
  EXPECT_EQ(rig.conn->cwndBytes(), initialCwnd);
  rig.tb.sim().run(sim::Time::ms(100));
  EXPECT_TRUE(rig.conn->closedCleanly());
  EXPECT_GT(rig.conn->cwndBytes(), 4 * initialCwnd);  // it actually opened
  EXPECT_GT(rig.conn->srtt(), sim::Time::zero());
}

TEST(TcpConnection, SrttConvergesToPathRtt) {
  ChainRig rig(3);  // 4 links each way, 5us propagation each
  rig.connect(100 * 1024);
  rig.tb.sim().run(sim::Time::ms(100));
  ASSERT_TRUE(rig.conn->closedCleanly());
  // Path floor: 8 * 5us propagation + serialization. Queueing at the
  // first hop adds self-induced delay once the window opens, so the upper
  // bound only asserts sanity, not the bare floor.
  EXPECT_GT(rig.conn->srtt(), sim::Time::us(40));
  EXPECT_LT(rig.conn->srtt(), sim::Time::ms(2));
}

// --------------------------------------------------------- lossy fabric

struct LossyRig {
  explicit LossyRig(double dropProb, TcpConnection::Config cfg = {},
                    std::uint64_t seed = 7) {
    buildChain(tb, 1, fastLink());
    inj = std::make_unique<sim::FaultInjector>(tb.sim(), seed);
    auto& fwd = inj->link("chain:fwd", {dropProb, 0.0});
    auto& rev = inj->link("chain:rev", {dropProb, 0.0});
    tb.linkAt(0).aToB().setFaultState(&fwd);  // host0 -> sw0
    tb.linkAt(1).bToA().setFaultState(&rev);  // sw0 <- host1 (ack path)
    listener = std::make_unique<TcpListener>(tb.host(1), 23000, cfg);
    conn = std::make_unique<TcpConnection>(tb.host(0), cfg);
  }

  void connect(std::uint64_t bytes) {
    conn->connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000, bytes);
  }

  Testbed tb;
  std::unique_ptr<sim::FaultInjector> inj;
  std::unique_ptr<TcpListener> listener;
  std::unique_ptr<TcpConnection> conn;
};

TEST(TcpConnection, RecoversFromLossAndDeliversExactlyOnce) {
  LossyRig rig(0.02);
  rig.connect(200 * 1024);
  rig.tb.sim().run(sim::Time::sec(5));
  ASSERT_TRUE(rig.conn->closedCleanly()) << rig.conn->error();
  EXPECT_GT(rig.inj->totalDrops(), 0u);
  EXPECT_GT(rig.conn->retransmits(), 0u);
  ASSERT_EQ(rig.listener->connectionCount(), 1u);
  const TcpConnection& srv = rig.listener->connection(0);
  EXPECT_EQ(srv.deliveredBytes(), 200u * 1024);
  EXPECT_EQ(srv.patternErrors(), 0u);
}

TEST(TcpConnection, FastRetransmitFiresOnDupAcks) {
  // Enough loss to hit a mid-window drop while later segments still land.
  LossyRig rig(0.03, {}, /*seed=*/11);
  rig.connect(400 * 1024);
  rig.tb.sim().run(sim::Time::sec(5));
  ASSERT_TRUE(rig.conn->closedCleanly()) << rig.conn->error();
  EXPECT_GT(rig.conn->dupAcksSeen(), 0u);
  EXPECT_GT(rig.conn->fastRetransmits(), 0u);
  EXPECT_GT(rig.conn->cwndCuts(), 0u);
  const TcpConnection& srv = rig.listener->connection(0);
  EXPECT_GT(srv.outOfOrderSegments(), 0u);
  EXPECT_EQ(srv.deliveredBytes(), 400u * 1024);
  EXPECT_EQ(srv.patternErrors(), 0u);
}

TEST(TcpConnection, CorruptionIsDetectedAndRecovered) {
  Testbed tb;
  buildChain(tb, 1, fastLink());
  sim::FaultInjector inj(tb.sim(), 13);
  auto& fwd = inj.link("fwd", {0.0, 0.02});  // corrupt only, no drops
  tb.linkAt(0).aToB().setFaultState(&fwd);
  TcpListener listener(tb.host(1), 23000);
  TcpConnection conn(tb.host(0), {});
  conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000, 200 * 1024);
  tb.sim().run(sim::Time::sec(5));
  ASSERT_TRUE(conn.closedCleanly()) << conn.error();
  EXPECT_GT(inj.totalCorrupted(), 0u);
  ASSERT_EQ(listener.connectionCount(), 1u);
  const TcpConnection& srv = listener.connection(0);
  // Every corrupted segment was caught by a checksum somewhere (UDP-layer
  // parse or the TCP segment checksum) — none leaked into the stream.
  EXPECT_EQ(srv.deliveredBytes(), 200u * 1024);
  EXPECT_EQ(srv.patternErrors(), 0u);
}

TEST(TcpConnection, RtoBackoffIsCappedAndGiveUpSurfacesError) {
  TcpConnection::Config cfg;
  cfg.initialRto = sim::Time::ms(10);
  cfg.maxRto = sim::Time::ms(40);
  cfg.maxRetries = 5;
  Testbed tb;
  buildChain(tb, 1, fastLink());
  sim::Tracer tracer(1u << 12);
  host::armTracing(tb, tracer);

  // Black hole: the host->switch link drops everything.
  sim::FaultInjector inj(tb.sim(), 3);
  auto& fwd = inj.link("hole", {1.0, 0.0});
  tb.linkAt(0).aToB().setFaultState(&fwd);

  TcpConnection conn(tb.host(0), cfg);
  std::string error;
  conn.onError([&](const std::string& e) { error = e; });
  conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000, 10'000);
  tb.sim().run(sim::Time::sec(10));

  EXPECT_TRUE(conn.failed());
  EXPECT_TRUE(conn.done());
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(conn.rtoFires(), cfg.maxRetries + 1);
  // rto_ doubled from 10ms and must have pinned at the 40ms cap.
  EXPECT_EQ(conn.rto(), cfg.maxRto);

  if (sim::kTraceCompiledIn) {
    const auto decoded = sim::decodeTrace(tracer.serialize());
    ASSERT_TRUE(decoded.ok);
    std::vector<std::uint32_t> rtoUs;
    for (const auto& r : decoded.records) {
      if (r.kindOf() == sim::TraceKind::TcpRto) rtoUs.push_back(r.b);
    }
    // 5 backoffs recorded before the give-up: 20, 40, 40, 40, 40 ms.
    ASSERT_EQ(rtoUs.size(), cfg.maxRetries);
    EXPECT_EQ(rtoUs.front(), 20'000u);
    EXPECT_EQ(rtoUs.back(), 40'000u);
    for (const auto us : rtoUs) EXPECT_LE(us, 40'000u);
  }
}

TEST(TcpConnection, HandshakeLossIsRetried) {
  // Deterministic down-window covering the first SYN only.
  Testbed tb;
  buildChain(tb, 1, fastLink());
  sim::FaultInjector inj(tb.sim(), 1);
  auto& fwd = inj.link("fwd", {0.0, 0.0});
  tb.linkAt(0).aToB().setFaultState(&fwd);
  inj.linkDownWindow(fwd, sim::Time::zero(), sim::Time::ms(5));

  TcpListener listener(tb.host(1), 23000);
  TcpConnection conn(tb.host(0), {});
  conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000, 5'000);
  tb.sim().run(sim::Time::sec(2));
  EXPECT_TRUE(conn.closedCleanly()) << conn.error();
  EXPECT_GT(conn.retransmits(), 0u);  // the SYN itself was retransmitted
  EXPECT_EQ(listener.deliveredBytes(), 5'000u);
}

TEST(TcpConnection, CutCwndFloorsAtOneMssAndTraces) {
  Testbed tb;
  buildChain(tb, 1, fastLink());
  sim::Tracer tracer(1u << 10);
  host::armTracing(tb, tracer);
  TcpListener listener(tb.host(1), 23000);
  TcpConnection conn(tb.host(0), {});
  conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000, 1u << 20);
  tb.sim().run(sim::Time::ms(2));
  ASSERT_TRUE(conn.established());
  const auto before = conn.cwndBytes();
  conn.cutCwnd(0.5, /*reason=*/2);
  EXPECT_LT(conn.cwndBytes(), before);
  for (int i = 0; i < 40; ++i) conn.cutCwnd(0.5, 2);
  EXPECT_EQ(conn.cwndBytes(), 1000u);  // floored at one mss
  if (sim::kTraceCompiledIn) {
    const auto decoded = sim::decodeTrace(tracer.serialize());
    ASSERT_TRUE(decoded.ok);
    bool sawCut = false;
    for (const auto& r : decoded.records) {
      if (r.kindOf() == sim::TraceKind::TcpCwndCut && r.c == 2) {
        sawCut = true;
      }
    }
    EXPECT_TRUE(sawCut);
  }
  tb.sim().run(sim::Time::sec(2));
  EXPECT_TRUE(conn.closedCleanly());
}

TEST(TcpListener, DemuxesConcurrentConnectionsByPeer) {
  Testbed tb;
  buildStar(tb, 4, fastLink());
  host::Host& receiver = tb.host(4);
  TcpListener listener(receiver, 23000);
  std::vector<std::unique_ptr<TcpConnection>> conns;
  for (std::size_t i = 0; i < 4; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(tb.host(i), TcpConnection::Config{}));
    conns.back()->connect(receiver.mac(), receiver.ip(), 23000,
                          static_cast<std::uint16_t>(30000 + i),
                          (i + 1) * 10'000);
  }
  tb.sim().run(sim::Time::sec(1));
  ASSERT_EQ(listener.connectionCount(), 4u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(conns[i]->closedCleanly());
    total += listener.connection(i).deliveredBytes();
    EXPECT_EQ(listener.connection(i).patternErrors(), 0u);
  }
  EXPECT_EQ(total, 10'000u + 20'000 + 30'000 + 40'000);
}

// ------------------------------------------------------ TppTcpController

TEST(TppTcpController, ProbeProgramVerifiesAndParses) {
  const auto program = apps::makeTcpCongestionProbeProgram(4);
  EXPECT_EQ(program.taskId, apps::kTaskTcpTpp);
  Testbed tb;
  buildChain(tb, 2, fastLink());
  std::vector<core::ExecutedTpp> echoes;
  tb.host(0).onTppResult(
      [&](const core::ExecutedTpp& t) { echoes.push_back(t); });
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
  tb.sim().run(sim::Time::ms(10));
  ASSERT_EQ(echoes.size(), 1u);
  const auto split =
      host::splitStackRecordsChecked(echoes[0], apps::kTcpProbeValuesPerHop);
  EXPECT_FALSE(split.truncated);
  ASSERT_EQ(split.records.size(), 2u);
  EXPECT_EQ(split.records[0][0], tb.sw(0).config().switchId);
  EXPECT_EQ(split.records[1][0], tb.sw(1).config().switchId);
}

TEST(TppTcpController, CutsBeforeLossWhenQueueBuilds) {
  // A slow egress off a fast ingress: the switch queue builds while TCP
  // opens its window; the probe must cut cwnd before the buffer is full.
  Testbed tb;
  asic::SwitchConfig scfg;
  scfg.bufferPerQueueBytes = 64 * 1024;
  tb.addHost();
  tb.addHost();
  auto& sw = tb.addSwitch(scfg);
  tb.link(tb.host(0), 0, sw, 0, 1'000'000'000, sim::Time::us(5));
  tb.link(sw, 1, tb.host(1), 0, 100'000'000, sim::Time::us(5));
  tb.installAllRoutes();

  TcpListener listener(tb.host(1), 23000);
  TcpConnection conn(tb.host(0), {});
  apps::TppTcpController::Config tcfg;
  tcfg.queueThresholdBytes = 16 * 1024;
  conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000, 2u << 20);
  apps::TppTcpController ctl(tb.host(0), conn, tcfg);
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(5));
  ctl.stop();

  EXPECT_TRUE(conn.closedCleanly()) << conn.error();
  EXPECT_GT(ctl.probesSent(), 10u);
  EXPECT_GT(ctl.maxQueueSeen(), tcfg.queueThresholdBytes);
  EXPECT_GT(ctl.probeCuts(), 0u);
  EXPECT_EQ(listener.connection(0).patternErrors(), 0u);
  EXPECT_EQ(listener.deliveredBytes(), 2u << 20);
}

TEST(TppTcpController, DegradesToLossBasedOnProbeBlackout) {
  // TCPU off everywhere: probes come back unexecuted (truncated records),
  // so the controller never acts — and TCP still completes on its own.
  Testbed tb;
  buildChain(tb, 1, fastLink());
  tb.sw(0).setTcpuEnabled(false);
  TcpListener listener(tb.host(1), 23000);
  TcpConnection conn(tb.host(0), {});
  conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000, 200 * 1024);
  apps::TppTcpController ctl(tb.host(0), conn, {});
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(2));
  ctl.stop();
  EXPECT_TRUE(conn.closedCleanly());
  EXPECT_GT(ctl.truncatedRounds(), 0u);
  EXPECT_EQ(ctl.probeCuts(), 0u);
  EXPECT_EQ(listener.deliveredBytes(), 200u * 1024);
}

TEST(TppTcpController, SkipsRoundOnBootEpochChange) {
  Testbed tb;
  buildChain(tb, 2, fastLink());
  TcpListener listener(tb.host(1), 23000);
  TcpConnection conn(tb.host(0), {});
  conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000, 4u << 20);
  apps::TppTcpController ctl(tb.host(0), conn, {});
  ctl.start(sim::Time::zero());
  tb.sim().schedule(sim::Time::ms(5), [&] { tb.sw(1).reboot(); });
  tb.sim().run(sim::Time::sec(5));
  ctl.stop();
  EXPECT_TRUE(conn.closedCleanly()) << conn.error();
  EXPECT_GE(ctl.epochChanges(), 1u);
  EXPECT_EQ(listener.deliveredBytes(), 4u << 20);
  EXPECT_EQ(listener.patternErrors(), 0u);
}

}  // namespace
}  // namespace tpp
