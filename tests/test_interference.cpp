// Deployment-level interference analysis: effect summaries, the pairwise
// conflict matrix, lock discipline, the Testbed install-time gate, and the
// dynamic SRAM race oracle's cross-check against static verdicts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/apps/deployment.hpp"
#include "src/asic/sram_oracle.hpp"
#include "src/core/interference.hpp"
#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/host/telemetry.hpp"
#include "src/host/topology.hpp"

namespace tpp {
namespace {

using core::ConflictKind;
using core::EffectKind;
using core::EffectSummary;
using core::ProgramBuilder;

core::Program build(ProgramBuilder& b) {
  auto p = b.build();
  EXPECT_TRUE(p.has_value());
  return *p;
}

EffectSummary writerTask(std::uint16_t taskId, std::uint16_t addr,
                         std::string name) {
  ProgramBuilder b;
  b.task(taskId).storeImm(addr, 7);
  return core::summarize(build(b), std::move(name));
}

// ------------------------------------------------------------ summaries

TEST(EffectSummary, ClassifiesReadsWritesAndRmws) {
  ProgramBuilder b;
  b.task(9)
      .load(core::kSramBase, 0)
      .storeImm(core::kSramBase + 1, 5)
      .cstore(core::kSramBase + 2, 0, 1)
      .reserve(1);
  const auto s = core::summarize(build(b), "probe");

  ASSERT_EQ(s.effects.size(), 3u);
  EXPECT_EQ(s.taskId, 9u);
  EXPECT_EQ(s.programCount, 1u);
  EXPECT_EQ(s.effects[0].kind, EffectKind::Read);
  EXPECT_EQ(s.effects[0].address, core::kSramBase);
  EXPECT_EQ(s.effects[1].kind, EffectKind::Write);
  EXPECT_EQ(s.effects[2].kind, EffectKind::Rmw);
  // CSTORE protocol operands resolve from the initial pmem image.
  EXPECT_TRUE(s.effects[2].condKnown);
  EXPECT_TRUE(s.effects[2].srcKnown);
  EXPECT_EQ(s.effects[2].cond, 0u);
  EXPECT_EQ(s.effects[2].src, 1u);
}

TEST(EffectSummary, CexecGuardsAccumulateAndResolve) {
  ProgramBuilder b;
  b.cexec(core::addr::SwitchId, 0xffffffffu, 4).storeImm(core::kSramBase, 1);
  const auto s = core::summarize(build(b));

  // The CEXEC itself reads SwitchId; the guarded store carries the guard.
  ASSERT_EQ(s.effects.size(), 2u);
  const auto& store = s.effects[1];
  ASSERT_EQ(store.guards.size(), 1u);
  EXPECT_TRUE(store.guards[0].known);
  EXPECT_EQ(store.guards[0].addr, core::addr::SwitchId);
  EXPECT_EQ(store.guards[0].mask, 0xffffffffu);
  EXPECT_EQ(store.guards[0].value, 4u);
}

TEST(EffectSummary, GuardOperandsOutsideInitialImageAreUnknown) {
  // Hand-built program whose CEXEC operands lie past the initialized
  // packet-memory image: the guard condition cannot be resolved.
  core::Program p;
  p.instructions.push_back({core::Opcode::Cexec, core::addr::SwitchId, 0});
  p.instructions.push_back({core::Opcode::Store, core::kSramBase, 2});
  p.pmemWords = 3;
  const auto s = core::summarize(p);

  ASSERT_EQ(s.effects.size(), 2u);
  ASSERT_EQ(s.effects[1].guards.size(), 1u);
  EXPECT_FALSE(s.effects[1].guards[0].known);
}

TEST(EffectSummary, TracksEpochReadsPerProgram) {
  EffectSummary s;
  ProgramBuilder with;
  with.task(3).push(core::addr::SwitchBootEpoch).reserve(8);
  ProgramBuilder without;
  without.task(3).push(core::addr::SwitchId).reserve(8);
  core::summarizeProgram(build(with), s);
  core::summarizeProgram(build(without), s);

  ASSERT_EQ(s.programReadsEpoch.size(), 2u);
  EXPECT_TRUE(s.programReadsEpoch[0]);
  EXPECT_FALSE(s.programReadsEpoch[1]);
}

// ------------------------------------------------------ conflict matrix

TEST(Interference, FlagsWriteWriteRace) {
  const std::vector<EffectSummary> tasks = {
      writerTask(7, core::kSramBase, "alpha"),
      writerTask(8, core::kSramBase, "beta")};
  const auto report = core::analyzeInterference(tasks);

  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, ConflictKind::WriteWrite);
  EXPECT_EQ(report.sharedWords, 1u);
  const auto text = core::formatConflict(report.findings[0]);
  // Diagnostics name both tasks and the shared word.
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("Sram:Word0"), std::string::npos);
}

TEST(Interference, FlagsLostUpdateAgainstCstore) {
  ProgramBuilder cas;
  cas.task(4).cstore(core::kSramBase, 0, 1).reserve(1);
  const std::vector<EffectSummary> tasks = {
      core::summarize(build(cas), "limiter"),
      writerTask(8, core::kSramBase, "clobber")};
  const auto report = core::analyzeInterference(tasks);

  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, ConflictKind::LostUpdate);
  EXPECT_EQ(report.findings[0].severity, core::Severity::Error);
}

TEST(Interference, ReadWriteSharingIsAWarning) {
  ProgramBuilder reader;
  reader.task(5).push(core::kSramBase).reserve(8);
  const std::vector<EffectSummary> tasks = {
      core::summarize(build(reader), "watcher"),
      writerTask(8, core::kSramBase, "writer")};
  const auto report = core::analyzeInterference(tasks);

  EXPECT_TRUE(report.ok());  // warnings do not fail the deployment
  EXPECT_EQ(report.warnings, 1u);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, ConflictKind::ReadWrite);
}

TEST(Interference, SharedCstoreIsBenign) {
  ProgramBuilder a;
  a.task(4).cstore(core::kSramBase, 0, 1).reserve(1);
  ProgramBuilder b;
  b.task(9).cstore(core::kSramBase, 1, 0).reserve(1);
  const std::vector<EffectSummary> tasks = {core::summarize(build(a)),
                                            core::summarize(build(b))};
  const auto report = core::analyzeInterference(tasks);

  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.findings.empty());
  ASSERT_FALSE(report.benign.empty());
  EXPECT_EQ(report.benign[0].kind, ConflictKind::SharedRmw);
  EXPECT_EQ(report.sharedWords, 1u);
}

TEST(Interference, SwitchIdPinnedWritesAreDisjoint) {
  ProgramBuilder a;
  a.task(7).cexec(core::addr::SwitchId, 0xffffffffu, 1).storeImm(
      core::kSramBase, 1);
  ProgramBuilder b;
  b.task(8).cexec(core::addr::SwitchId, 0xffffffffu, 2).storeImm(
      core::kSramBase, 2);
  const std::vector<EffectSummary> tasks = {core::summarize(build(a)),
                                            core::summarize(build(b))};
  const auto report = core::analyzeInterference(tasks);

  EXPECT_TRUE(report.findings.empty());
  ASSERT_FALSE(report.benign.empty());
  EXPECT_EQ(report.benign[0].kind, ConflictKind::GuardDisjoint);
}

TEST(Interference, SameTaskNeverConflictsWithItself) {
  const std::vector<EffectSummary> tasks = {
      writerTask(7, core::kSramBase, "a"),
      writerTask(7, core::kSramBase, "b")};
  const auto report = core::analyzeInterference(tasks);
  EXPECT_TRUE(report.findings.empty());
}

// ------------------------------------------------------- lock discipline

TEST(Interference, LockMutatedWithPlainStoreIsFlagged) {
  const std::vector<EffectSummary> tasks = {
      writerTask(7, core::addr::RcpLockRegister, "rogue")};
  const auto report =
      core::analyzeInterference(tasks, apps::standardLockOptions());

  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, ConflictKind::LockPlainWrite);
}

TEST(Interference, LockCstoreWithoutEpochProofIsFlagged) {
  ProgramBuilder b;
  b.task(7).cstore(core::addr::RcpLockRegister, 0, 9).reserve(1);
  const std::vector<EffectSummary> tasks = {
      core::summarize(build(b), "no-epoch")};
  const auto report =
      core::analyzeInterference(tasks, apps::standardLockOptions());

  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, ConflictKind::LockNoEpochCheck);

  // Reading BootEpoch in the same program satisfies the discipline.
  ProgramBuilder fixed;
  fixed.task(7)
      .push(core::addr::SwitchBootEpoch)
      .cstore(core::addr::RcpLockRegister, 0, 9)
      .reserve(8);
  const std::vector<EffectSummary> ok = {
      core::summarize(build(fixed), "with-epoch")};
  EXPECT_TRUE(
      core::analyzeInterference(ok, apps::standardLockOptions()).ok());
}

TEST(Interference, ProtectedRegionWriteWithoutAcquireIsFlagged) {
  const std::vector<EffectSummary> tasks = {
      writerTask(7, core::addr::RcpRateRegister, "no-lock")};
  const auto report =
      core::analyzeInterference(tasks, apps::standardLockOptions());

  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, ConflictKind::LockNoAcquire);

  // A CSTORE on the lock anywhere in the task's summary (the acquire
  // program of a multi-program task) is the (id, epoch) proof.
  EffectSummary holder;
  ProgramBuilder acquire;
  acquire.task(7)
      .push(core::addr::SwitchBootEpoch)
      .cstore(core::addr::RcpLockRegister, 0, 9)
      .reserve(8);
  ProgramBuilder update;
  update.task(7).storeImm(core::addr::RcpRateRegister, 500);
  core::summarizeProgram(build(acquire), holder);
  core::summarizeProgram(build(update), holder);
  const std::vector<EffectSummary> ok = {holder};
  EXPECT_TRUE(
      core::analyzeInterference(ok, apps::standardLockOptions()).ok());
}

// ------------------------------------------- shipped deployment + gate

TEST(Interference, ShippedDeploymentIsConflictFree) {
  // Six probe-driven apps plus the three resident monitoring hooks.
  const auto dep = apps::shippedDeployment();
  ASSERT_EQ(dep.tasks.size(), 9u);
  const auto report = core::analyzeInterference(dep.tasks, dep.options);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.findings.empty())
      << core::formatConflict(report.findings.front());
  EXPECT_EQ(report.warnings, 0u);
}

TEST(TestbedGate, RejectsConflictingTaskAtInstallTime) {
  host::Testbed tb;
  for (auto& lock : apps::standardLockOptions().locks) {
    tb.declareLock(lock);
  }
  EXPECT_TRUE(tb.installTask(writerTask(7, core::kSramBase, "first")));

  std::string whyNot;
  EXPECT_FALSE(
      tb.installTask(writerTask(8, core::kSramBase, "second"), &whyNot));
  EXPECT_NE(whyNot.find("write-write"), std::string::npos);
  EXPECT_NE(whyNot.find("first"), std::string::npos);
  // The rejected candidate did not join the installed set.
  ASSERT_EQ(tb.installedTasks().size(), 1u);
  EXPECT_TRUE(tb.interferenceReport().ok());

  // A disjoint word is welcome.
  EXPECT_TRUE(tb.installTask(writerTask(8, core::kSramBase + 1, "second")));
  EXPECT_EQ(tb.installedTasks().size(), 2u);
}

TEST(TestbedGate, WholeShippedDeploymentInstalls) {
  host::Testbed tb;
  const auto dep = apps::shippedDeployment();
  for (auto& lock : dep.options.locks) tb.declareLock(lock);
  for (const auto& task : dep.tasks) {
    std::string whyNot;
    EXPECT_TRUE(tb.installTask(task, &whyNot)) << task.name << ": " << whyNot;
  }
}

// ------------------------------------------------------- dynamic oracle

TEST(SramOracle, FoldsReadPlusWriteIntoRmwPerExecution) {
  asic::SramRaceOracle oracle;
  using Access = asic::SramRaceOracle::Access;
  // Task 4 CASes word 0 (read + write in one execution = RMW)...
  oracle.beginExecution(4);
  oracle.record(core::StatNamespace::Sram, 0, 0, Access::Read);
  oracle.record(core::StatNamespace::Sram, 0, 0, Access::Write);
  // ...and task 8 plain-writes the same word.
  oracle.beginExecution(8);
  oracle.record(core::StatNamespace::Sram, 0, 0, Access::Write);
  oracle.flush();

  const auto conflicts = oracle.conflicts();
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].taskA, 8u);  // the plain writer
  EXPECT_EQ(conflicts[0].taskB, 4u);
  EXPECT_EQ(conflicts[0].address, core::kSramBase);
  EXPECT_TRUE(conflicts[0].lostUpdate());
  EXPECT_EQ(oracle.accesses(), 3u);
}

TEST(SramOracle, SingleTaskTrafficNeverConflicts) {
  asic::SramRaceOracle oracle;
  using Access = asic::SramRaceOracle::Access;
  for (int i = 0; i < 4; ++i) {
    oracle.beginExecution(4);
    oracle.record(core::StatNamespace::Sram, 0, 0, Access::Write);
    oracle.record(core::StatNamespace::PortScratch, 1, 0, Access::Read);
  }
  oracle.flush();
  EXPECT_TRUE(oracle.conflicts().empty());
}

TEST(SramOracle, PredictedConflictIsNotADivergence) {
  const std::vector<EffectSummary> tasks = {
      writerTask(7, core::kSramBase, "alpha"),
      writerTask(8, core::kSramBase, "beta")};
  const auto report = core::analyzeInterference(tasks);
  ASSERT_FALSE(report.findings.empty());

  asic::SramRaceOracle oracle;
  using Access = asic::SramRaceOracle::Access;
  oracle.beginExecution(7);
  oracle.record(core::StatNamespace::Sram, 0, 0, Access::Write);
  oracle.beginExecution(8);
  oracle.record(core::StatNamespace::Sram, 0, 0, Access::Write);
  oracle.flush();
  ASSERT_FALSE(oracle.conflicts().empty());

  EXPECT_TRUE(oracle.divergences(report, tasks).empty());
}

TEST(SramOracle, UnpredictedConflictIsAStaticFalseNegative) {
  // Static analysis saw nothing (empty deployment), but the wire observed
  // two tasks colliding: that is exactly the divergence the oracle exists
  // to surface.
  const std::vector<EffectSummary> tasks;
  const auto report = core::analyzeInterference(tasks);

  asic::SramRaceOracle oracle;
  using Access = asic::SramRaceOracle::Access;
  oracle.beginExecution(7);
  oracle.record(core::StatNamespace::Sram, 0, 3, Access::Write);
  oracle.beginExecution(8);
  oracle.record(core::StatNamespace::Sram, 0, 3, Access::Write);
  oracle.flush();

  const auto div = oracle.divergences(report, tasks);
  ASSERT_EQ(div.size(), 1u);
  EXPECT_NE(div[0].find("static false negative"), std::string::npos);
}

TEST(SramOracle, ArmedTestbedRecordsProbeScratchTraffic) {
  host::Testbed tb;
  buildChain(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(5)});
  host::SramOracleSet oracles(tb.switchCount());
  host::armSramOracle(tb, oracles);

  ProgramBuilder b;
  b.task(4).storeImm(core::kSramBase, 7);
  const auto program = build(b);
  std::uint64_t echoed = 0;
  tb.host(0).onTppResult([&](const core::ExecutedTpp&) { ++echoed; });
  for (int i = 0; i < 8; ++i) {
    tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
  }
  tb.sim().run();

  EXPECT_EQ(echoed, 8u);
  EXPECT_GT(oracles.accesses(), 0u);
  EXPECT_TRUE(oracles.conflicts().empty());

  // Disarming restores the single-null-check path; nothing records.
  const auto before = oracles.accesses();
  host::disarmSramOracle(tb);
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
  tb.sim().run();
  EXPECT_EQ(oracles.accesses(), before);
}

}  // namespace
}  // namespace tpp
